package cqm_test

import (
	"math"
	"testing"

	"cqm"
)

// TestFacadeEndToEnd drives the public API exactly the way the README's
// quick start does: generate data, train a classifier, observe it, build
// the quality measure, analyze, and filter.
func TestFacadeEndToEnd(t *testing.T) {
	set, err := cqm.GenerateDataset(cqm.GenerateConfig{
		Scenarios: []*cqm.Scenario{
			cqm.OfficeSession(cqm.DefaultStyle()),
			cqm.OfficeSession(cqm.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			cqm.OfficeSession(cqm.DefaultStyle()),
			cqm.OfficeSession(cqm.Style{Amplitude: 2.2, Tempo: 1.2, Irregularity: 0.8}),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := (&cqm.TSKTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := cqm.ClassifierAccuracy(clf, set)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("classifier accuracy %v implausibly low", acc)
	}
	obs, err := cqm.Observe(clf, set)
	if err != nil {
		t.Fatal(err)
	}
	measure, err := cqm.BuildMeasure(obs, nil, cqm.MeasureConfig{})
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := cqm.Analyze(measure, obs)
	if err != nil {
		t.Fatal(err)
	}
	if analysis.Threshold <= 0 || analysis.Threshold >= 1 {
		t.Fatalf("threshold %v outside (0,1)", analysis.Threshold)
	}
	filter, err := cqm.NewFilter(measure, analysis.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := filter.Run(obs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AcceptedAccuracy() < stats.RawAccuracy() {
		t.Errorf("filtering reduced accuracy: %v -> %v",
			stats.RawAccuracy(), stats.AcceptedAccuracy())
	}
}

func TestFacadeNormalize(t *testing.T) {
	if q, err := cqm.Normalize(1.2); err != nil || math.Abs(q-0.8) > 1e-12 {
		t.Errorf("Normalize(1.2) = %v, %v", q, err)
	}
	if _, err := cqm.Normalize(7); !cqm.IsEpsilon(err) {
		t.Errorf("Normalize(7) err = %v, want ε", err)
	}
}

func TestFacadeContexts(t *testing.T) {
	if len(cqm.AllContexts()) != 3 {
		t.Error("AllContexts should list 3 classes")
	}
	if cqm.ContextWriting.String() != "writing" {
		t.Error("context naming broken")
	}
}
