// Package cqm is the public API of the Context Quality Measure library — a
// faithful reproduction of "Using a Context Quality Measure for Improving
// Smart Appliances" (Berchtold, Decker, Riedel, Zimmer, Beigl; ICDCS
// Workshops 2007).
//
// The CQM is a real-time quality value q ∈ [0,1] attached to every context
// classification by a second TSK fuzzy inference system that treats the
// classifier as a black box. Appliances use q to discard untrustworthy
// classifications; the paper's AwarePen discards 33 % of classifications —
// exactly the wrong ones — this way.
//
// # Quick start
//
//	set, _ := cqm.GenerateDataset(cqm.GenerateConfig{
//	    Scenarios: []*cqm.Scenario{cqm.OfficeSession(cqm.DefaultStyle())},
//	    Seed:      1,
//	})
//	clf, _ := (&cqm.TSKTrainer{}).Train(set)
//	obs, _ := cqm.Observe(clf, set)
//	measure, _ := cqm.BuildMeasure(obs, nil, cqm.MeasureConfig{})
//	analysis, _ := cqm.Analyze(measure, obs)
//	filter, _ := cqm.NewFilter(measure, analysis.Threshold)
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package cqm

import (
	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/fusion"
	"cqm/internal/obs"
	"cqm/internal/predict"
	"cqm/internal/sensor"
)

// Re-exported context types (the AwarePen's classes).
type (
	// Context is a context class of a smart appliance.
	Context = sensor.Context
	// Style is a user's movement style for the simulated sensing.
	Style = sensor.Style
	// Scenario scripts a simulated recording session.
	Scenario = sensor.Scenario
	// Segment is one phase of a scenario.
	Segment = sensor.Segment
	// Reading is one labelled accelerometer sample.
	Reading = sensor.Reading
	// Accelerometer simulates the ADXL-style 3-axis sensor.
	Accelerometer = sensor.Accelerometer
)

// The AwarePen's contexts.
const (
	ContextUnknown = sensor.ContextUnknown
	ContextLying   = sensor.ContextLying
	ContextWriting = sensor.ContextWriting
	ContextPlaying = sensor.ContextPlaying
)

// Re-exported sensing helpers.
var (
	// AllContexts lists the recognizable contexts.
	AllContexts = sensor.AllContexts
	// DefaultStyle is the nominal user.
	DefaultStyle = sensor.DefaultStyle
	// OfficeSession scripts the paper's canonical whiteboard session.
	OfficeSession = sensor.OfficeSession
)

// Re-exported dataset types.
type (
	// Sample is one labelled cue vector.
	Sample = dataset.Sample
	// Dataset is an ordered labelled sample collection.
	Dataset = dataset.Set
	// GenerateConfig parameterizes scenario-driven generation.
	GenerateConfig = dataset.GenerateConfig
)

// GenerateDataset runs scripted scenarios into a labelled cue set.
var GenerateDataset = dataset.Generate

// Re-exported classification layer (the black boxes the CQM wraps).
type (
	// Classifier assigns cue vectors to contexts.
	Classifier = classify.Classifier
	// Trainer fits a Classifier to a labelled set.
	Trainer = classify.Trainer
	// TSKTrainer builds the AwarePen's TSK-FIS classifier.
	TSKTrainer = classify.TSKTrainer
	// KNNTrainer builds a k-nearest-neighbour baseline.
	KNNTrainer = classify.KNNTrainer
	// NaiveBayesTrainer builds a Gaussian naive-Bayes baseline.
	NaiveBayesTrainer = classify.NaiveBayesTrainer
	// NearestCentroidTrainer builds the simplest baseline.
	NearestCentroidTrainer = classify.NearestCentroidTrainer
)

// Classifier evaluation and persistence.
var (
	// ClassifierAccuracy evaluates a classifier on a labelled set.
	ClassifierAccuracy = classify.Accuracy
	// MarshalClassifier serializes any classifier of this library.
	MarshalClassifier = classify.MarshalClassifier
	// UnmarshalClassifier restores a serialized classifier.
	UnmarshalClassifier = classify.UnmarshalClassifier
)

// Re-exported CQM core — the paper's contribution.
type (
	// Measure is the Context Quality Measure.
	Measure = core.Measure
	// MeasureConfig parameterizes the automated FIS construction.
	MeasureConfig = core.BuildConfig
	// Observation is one classified sample with secondary knowledge.
	Observation = core.Observation
	// Analysis is the §2.3 statistical analysis.
	Analysis = core.Analysis
	// Filter applies the quality threshold to classifications.
	Filter = core.Filter
	// AdaptiveFilter tracks a drifting threshold from labelled feedback.
	AdaptiveFilter = core.AdaptiveFilter
	// AdaptiveConfig parameterizes the adaptive filter.
	AdaptiveConfig = core.AdaptiveConfig
	// Decision is one filtering outcome.
	Decision = core.Decision
	// FilterStats is the batch filtering account.
	FilterStats = core.FilterStats
)

// Core pipeline functions.
var (
	// Observe runs a black-box classifier over a labelled set.
	Observe = core.Observe
	// BuildMeasure constructs the quality FIS from observations.
	BuildMeasure = core.Build
	// Analyze fits the right/wrong densities and optimal threshold.
	Analyze = core.Analyze
	// NewFilter builds the acceptance filter at a threshold.
	NewFilter = core.NewFilter
	// NewAdaptiveFilter builds a filter whose threshold follows feedback.
	NewAdaptiveFilter = core.NewAdaptiveFilter
	// Normalize is the paper's normalization function L.
	Normalize = core.Normalize
	// IsEpsilon reports the ε error state.
	IsEpsilon = core.IsEpsilon
)

// ErrEpsilon is the normalization error state ε.
var ErrEpsilon = core.ErrEpsilon

// AugmentObservations builds the exhaustive counterfactual training set
// used by the context-prediction extension.
var AugmentObservations = core.AugmentObservations

// Re-exported observability layer. Every pipeline stage can be pointed at
// a MetricsRegistry (via MeasureConfig.Metrics, Filter.Instrument and the
// awareoffice simulation); a nil registry disables instrumentation at
// zero cost. Training progress is reported through TrainObserver hooks.
type (
	// MetricsRegistry collects counters, gauges, histograms and events,
	// exposable as Prometheus text or a JSON snapshot.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time structured view of a registry.
	MetricsSnapshot = obs.Snapshot
	// MetricsEvent is one recorded occurrence in a registry's event ring.
	MetricsEvent = obs.Event
	// TrainObserver receives per-epoch hybrid-learning progress.
	TrainObserver = core.TrainObserver
	// TrainObserverFuncs adapts plain functions to a TrainObserver.
	TrainObserverFuncs = core.TrainObserverFuncs
	// EpochEvent reports one completed training epoch.
	EpochEvent = core.EpochEvent
	// StopEvent reports the end of a training run.
	StopEvent = core.StopEvent
	// ThresholdEvent reports an adaptive-filter threshold move.
	ThresholdEvent = core.ThresholdEvent
)

// Observability constructors.
var (
	// NewMetricsRegistry builds an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// TrainObservers fans training events out to several observers.
	TrainObservers = core.TrainObservers
)

// Re-exported outlook extensions (paper §5): context prediction and
// quality-weighted fusion.
type (
	// PredictConfig parameterizes the quality-trend monitor.
	PredictConfig = predict.Config
	// PredictMonitor tracks per-class quality trends to anticipate
	// context changes.
	PredictMonitor = predict.Monitor
	// FusionReport is one appliance's context report.
	FusionReport = fusion.Report
	// FusionStrategy selects how reports are fused.
	FusionStrategy = fusion.Strategy
	// FusionConsensus is a fused outcome.
	FusionConsensus = fusion.Consensus
	// RoomAggregator maps fused contexts onto higher-level room states.
	RoomAggregator = fusion.Aggregator
)

// Fusion strategies.
const (
	FusionMajorityVote    = fusion.MajorityVote
	FusionQualityWeighted = fusion.QualityWeighted
	FusionBestQuality     = fusion.BestQuality
)

// Outlook-extension constructors.
var (
	// NewPredictMonitor builds a context-change monitor over a measure.
	NewPredictMonitor = predict.NewMonitor
	// Fuse combines appliance reports under a strategy.
	Fuse = fusion.Fuse
)
