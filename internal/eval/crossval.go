package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/parallel"
	"cqm/internal/stat"
)

// CrossValResult summarizes a k-fold cross-validation of the entire CQM
// pipeline: per fold, the quality FIS is built on the training fold's
// observations and evaluated on the held-out fold.
type CrossValResult struct {
	// Folds is the number of folds requested.
	Folds int
	// Evaluated is the number of folds that produced metrics. Folds whose
	// test split is one-sided (all-correct or all-wrong) cannot be
	// analyzed and are skipped, so Evaluated + len(Skipped) == Folds.
	Evaluated int
	// Skipped lists the zero-based indices of the skipped folds.
	Skipped []int
	// AUCs, Thresholds and Improvements per evaluated fold, in fold order.
	AUCs         []float64
	Thresholds   []float64
	Improvements []float64
}

// MeanStd returns the mean and population standard deviation of xs.
func meanStd(xs []float64) (float64, float64) {
	return stat.Mean(xs), stat.PopStdDev(xs)
}

// CrossValidate runs k-fold cross-validation of the quality pipeline: the
// classifier is trained once on clean data (the paper's pre-trained pen),
// then for every fold the quality FIS is built from the training fold and
// analyzed on the test fold. Unlike the single 24-point evaluation, this
// uses every observation exactly once for testing. Equivalent to
// CrossValidateWorkers with a single worker.
func CrossValidate(seed int64, k int) (*CrossValResult, error) {
	return CrossValidateWorkers(seed, k, 1)
}

// CrossValidateWorkers is CrossValidate with up to workers folds built
// and evaluated concurrently (0 = one worker per CPU, 1 = serial). The
// result is bit-identical at every setting: each fold's pipeline is an
// independent computation into its own slot, and outcomes — including
// which error is reported — are merged in fold order.
func CrossValidateWorkers(seed int64, k, workers int) (*CrossValResult, error) {
	if k == 0 {
		k = 5
	}
	if workers < 0 {
		return nil, fmt.Errorf("eval: invalid workers %d", workers)
	}
	base, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	// Rebuild the mixed observation pool as a dataset-shaped structure:
	// fold over all observations the setup produced.
	all := append(append(append([]core.Observation(nil), base.TrainObs...), base.CheckObs...), base.PoolObs...)
	obsSet := observationsAsSet(all)
	folds, err := obsSet.KFold(k, seed+50)
	if err != nil {
		return nil, err
	}
	return crossValidateFolds(folds, base.Config.Build, k, workers)
}

// foldOutcome is one fold's result slot, written by exactly one worker.
type foldOutcome struct {
	skipped       bool
	auc, thr, imp float64
	err           error
}

// crossValidateFolds evaluates every fold and merges the outcomes in fold
// order, so AUC/threshold/improvement vectors, the skip list, and the
// reported error (lowest fold index wins) do not depend on worker count.
func crossValidateFolds(folds []dataset.Fold, buildCfg core.BuildConfig, k, workers int) (*CrossValResult, error) {
	outs := make([]foldOutcome, len(folds))
	pool := parallel.Auto(workers, len(folds), 2)
	// The error is always nil — the context is never cancelled.
	_ = pool.ForEach(context.Background(), len(folds), 1, func(i int) {
		outs[i] = runFold(folds[i], buildCfg, i)
	})
	res := &CrossValResult{Folds: k}
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		if outs[i].skipped {
			res.Skipped = append(res.Skipped, i)
			continue
		}
		res.AUCs = append(res.AUCs, outs[i].auc)
		res.Thresholds = append(res.Thresholds, outs[i].thr)
		res.Improvements = append(res.Improvements, outs[i].imp)
	}
	res.Evaluated = len(res.AUCs)
	if res.Evaluated == 0 {
		return nil, core.ErrOneSided
	}
	return res, nil
}

// runFold builds and scores one fold's quality pipeline.
func runFold(fold dataset.Fold, buildCfg core.BuildConfig, i int) foldOutcome {
	trainObs := setAsObservations(fold.Train)
	testObs := setAsObservations(fold.Test)
	m, err := core.Build(trainObs, nil, buildCfg)
	if err != nil {
		return foldOutcome{err: fmt.Errorf("eval: fold %d build: %w", i, err)}
	}
	a, err := core.Analyze(m, testObs)
	if err != nil {
		// A fold without both right and wrong test observations cannot
		// be analyzed; skip it rather than fail the run.
		if errors.Is(err, core.ErrOneSided) {
			return foldOutcome{skipped: true}
		}
		return foldOutcome{err: fmt.Errorf("eval: fold %d analyze: %w", i, err)}
	}
	qs, correct, _, err := m.ScoreObservations(testObs)
	if err != nil {
		return foldOutcome{err: fmt.Errorf("eval: fold %d score: %w", i, err)}
	}
	filter, err := core.NewFilter(m, clampThreshold(a.Threshold))
	if err != nil {
		return foldOutcome{err: fmt.Errorf("eval: fold %d filter: %w", i, err)}
	}
	stats, err := filter.Run(testObs)
	if err != nil {
		return foldOutcome{err: fmt.Errorf("eval: fold %d filter run: %w", i, err)}
	}
	return foldOutcome{
		auc: stat.AUC(stat.ROC(qs, correct)),
		thr: a.Threshold,
		imp: stats.Improvement(),
	}
}

// observationsAsSet wraps observations as dataset samples so KFold can
// partition them. The sample's Truth encodes correctness via the original
// class (unused downstream); cues keep (v_C, class, correct) packed so
// setAsObservations can reverse the mapping losslessly.
func observationsAsSet(obs []core.Observation) *dataset.Set {
	s := &dataset.Set{}
	for _, o := range obs {
		cues := make([]float64, len(o.Cues)+2)
		copy(cues, o.Cues)
		cues[len(o.Cues)] = float64(o.Class.ID())
		if o.Correct {
			cues[len(o.Cues)+1] = 1
		}
		s.Append(dataset.Sample{Cues: cues, Truth: o.Class, Pure: o.Pure})
	}
	return s
}

// setAsObservations reverses observationsAsSet.
func setAsObservations(s *dataset.Set) []core.Observation {
	out := make([]core.Observation, 0, s.Len())
	for _, smp := range s.Samples {
		n := len(smp.Cues) - 2
		cues := make([]float64, n)
		copy(cues, smp.Cues[:n])
		out = append(out, core.Observation{
			Cues:    cues,
			Class:   smp.Truth,
			Correct: smp.Cues[n+1] == 1, //lint:ignore floatcmp the slot stores the 0/1 correctness flag verbatim, never computed
			Pure:    smp.Pure,
		})
	}
	return out
}

// Render summarizes the cross-validation.
func (r *CrossValResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Cross-validation — quality pipeline over k folds\n")
	aucM, aucS := meanStd(r.AUCs)
	thrM, thrS := meanStd(r.Thresholds)
	impM, impS := meanStd(r.Improvements)
	fmt.Fprintf(&sb, "  folds analyzed   %d of %d\n", r.Evaluated, r.Folds)
	if len(r.Skipped) > 0 {
		fmt.Fprintf(&sb, "  folds skipped    %v (one-sided test split)\n", r.Skipped)
	}
	fmt.Fprintf(&sb, "  AUC              %.3f ± %.3f\n", aucM, aucS)
	fmt.Fprintf(&sb, "  threshold        %.3f ± %.3f\n", thrM, thrS)
	fmt.Fprintf(&sb, "  improvement      %.3f ± %.3f\n", impM, impS)
	if math.IsNaN(aucM) {
		sb.WriteString("  (insufficient folds)\n")
	}
	return sb.String()
}
