package eval

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/stat"
)

// CrossValResult summarizes a k-fold cross-validation of the entire CQM
// pipeline: per fold, the quality FIS is built on the training fold's
// observations and evaluated on the held-out fold.
type CrossValResult struct {
	Folds int
	// AUCs, Thresholds and Improvements per fold.
	AUCs         []float64
	Thresholds   []float64
	Improvements []float64
}

// MeanStd returns the mean and population standard deviation of xs.
func meanStd(xs []float64) (float64, float64) {
	return stat.Mean(xs), stat.PopStdDev(xs)
}

// CrossValidate runs k-fold cross-validation of the quality pipeline: the
// classifier is trained once on clean data (the paper's pre-trained pen),
// then for every fold the quality FIS is built from the training fold and
// analyzed on the test fold. Unlike the single 24-point evaluation, this
// uses every observation exactly once for testing.
func CrossValidate(seed int64, k int) (*CrossValResult, error) {
	if k == 0 {
		k = 5
	}
	base, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	// Rebuild the mixed observation pool as a dataset-shaped structure:
	// fold over all observations the setup produced.
	all := append(append(append([]core.Observation(nil), base.TrainObs...), base.CheckObs...), base.PoolObs...)
	obsSet := observationsAsSet(all)
	folds, err := obsSet.KFold(k, seed+50)
	if err != nil {
		return nil, err
	}
	res := &CrossValResult{Folds: k}
	for i, fold := range folds {
		trainObs := setAsObservations(fold.Train)
		testObs := setAsObservations(fold.Test)
		m, err := core.Build(trainObs, nil, base.Config.Build)
		if err != nil {
			return nil, fmt.Errorf("eval: fold %d build: %w", i, err)
		}
		a, err := core.Analyze(m, testObs)
		if err != nil {
			// A fold without both right and wrong test observations
			// cannot be analyzed; skip it rather than fail the run.
			if errors.Is(err, core.ErrOneSided) {
				continue
			}
			return nil, fmt.Errorf("eval: fold %d analyze: %w", i, err)
		}
		qs, correct, _, err := m.ScoreObservations(testObs)
		if err != nil {
			return nil, err
		}
		filter, err := core.NewFilter(m, clampThreshold(a.Threshold))
		if err != nil {
			return nil, err
		}
		stats, err := filter.Run(testObs)
		if err != nil {
			return nil, err
		}
		res.AUCs = append(res.AUCs, stat.AUC(stat.ROC(qs, correct)))
		res.Thresholds = append(res.Thresholds, a.Threshold)
		res.Improvements = append(res.Improvements, stats.Improvement())
	}
	if len(res.AUCs) == 0 {
		return nil, core.ErrOneSided
	}
	return res, nil
}

// observationsAsSet wraps observations as dataset samples so KFold can
// partition them. The sample's Truth encodes correctness via the original
// class (unused downstream); cues keep (v_C, class, correct) packed so
// setAsObservations can reverse the mapping losslessly.
func observationsAsSet(obs []core.Observation) *dataset.Set {
	s := &dataset.Set{}
	for _, o := range obs {
		cues := make([]float64, len(o.Cues)+2)
		copy(cues, o.Cues)
		cues[len(o.Cues)] = float64(o.Class.ID())
		if o.Correct {
			cues[len(o.Cues)+1] = 1
		}
		s.Append(dataset.Sample{Cues: cues, Truth: o.Class, Pure: o.Pure})
	}
	return s
}

// setAsObservations reverses observationsAsSet.
func setAsObservations(s *dataset.Set) []core.Observation {
	out := make([]core.Observation, 0, s.Len())
	for _, smp := range s.Samples {
		n := len(smp.Cues) - 2
		cues := make([]float64, n)
		copy(cues, smp.Cues[:n])
		out = append(out, core.Observation{
			Cues:    cues,
			Class:   smp.Truth,
			Correct: smp.Cues[n+1] == 1, //lint:ignore floatcmp the slot stores the 0/1 correctness flag verbatim, never computed
			Pure:    smp.Pure,
		})
	}
	return out
}

// Render summarizes the cross-validation.
func (r *CrossValResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Cross-validation — quality pipeline over k folds\n")
	aucM, aucS := meanStd(r.AUCs)
	thrM, thrS := meanStd(r.Thresholds)
	impM, impS := meanStd(r.Improvements)
	fmt.Fprintf(&sb, "  folds analyzed   %d of %d\n", len(r.AUCs), r.Folds)
	fmt.Fprintf(&sb, "  AUC              %.3f ± %.3f\n", aucM, aucS)
	fmt.Fprintf(&sb, "  threshold        %.3f ± %.3f\n", thrM, thrS)
	fmt.Fprintf(&sb, "  improvement      %.3f ± %.3f\n", impM, impS)
	if math.IsNaN(aucM) {
		sb.WriteString("  (insufficient folds)\n")
	}
	return sb.String()
}
