package eval

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"cqm/internal/ckpt"
	"cqm/internal/core"
)

// ResumeConfig parameterizes the kill–resume durability sweep.
type ResumeConfig struct {
	// Workers is the hybrid-learning worker count; resumed runs must be
	// bit-identical at every setting. Default 1.
	Workers int
	// Epochs is the uninterrupted run's epoch budget. Default 12.
	Epochs int
	// KillAt lists the epochs at which training is cut short — each value
	// simulates a crash after that many completed epochs. Defaults to
	// {3, 7, 10}. Every value must lie in [1, Epochs).
	KillAt []int
	// Dir is the checkpoint workspace; empty uses a fresh temporary
	// directory that is removed when the experiment finishes.
	Dir string
	// Now supplies checkpoint-manifest timestamps. The experiment injects
	// a virtual clock by default so its artifacts are reproducible; set
	// this to override it.
	Now func() time.Time
}

func (c ResumeConfig) withDefaults() ResumeConfig {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Epochs == 0 {
		c.Epochs = 12
	}
	if len(c.KillAt) == 0 {
		c.KillAt = []int{3, 7, 10}
	}
	if c.Now == nil {
		// A virtual clock ticking one second per manifest write, so two
		// runs of the experiment produce byte-identical checkpoints.
		base := time.Date(2007, 6, 25, 0, 0, 0, 0, time.UTC) // ICDCS 2007
		ticks := 0
		c.Now = func() time.Time {
			ticks++
			return base.Add(time.Duration(ticks) * time.Second)
		}
	}
	return c
}

// ResumeRow is one kill–resume trial.
type ResumeRow struct {
	// KillEpoch is the number of epochs completed before the simulated
	// crash.
	KillEpoch int
	// ResumedFrom is the epoch of the checkpoint the resume loaded.
	ResumedFrom int
	// Skipped counts corrupt checkpoint files bypassed during resolution.
	Skipped int
	// Torn marks the trial where the newest checkpoint was deliberately
	// truncated before resuming.
	Torn bool
	// FinalError is the resumed run's kept (best) error.
	FinalError float64
	// Identical reports whether the resumed model is bit-identical to the
	// uninterrupted run's.
	Identical bool
}

// ResumeResult is the durability sweep's outcome.
type ResumeResult struct {
	// Workers and Epochs echo the configuration.
	Workers, Epochs int
	// ReferenceError is the uninterrupted run's kept (best) error.
	ReferenceError float64
	// Rows are the kill–resume trials, one per KillAt value plus the
	// torn-checkpoint trial.
	Rows []ResumeRow
}

// resumeBuild runs one quality-FIS build over the setup's observation
// sets with the given epoch budget, optional checkpoint directory, and
// optional resume state. It returns the serialized model (the
// bit-identity witness) and the stopping decision.
func resumeBuild(setup *Setup, cfg ResumeConfig, epochs int, dir, hash string,
	resume *core.TrainState) ([]byte, core.StopEvent, error) {
	var stop core.StopEvent
	build := core.BuildConfig{}
	build.Hybrid.Workers = cfg.Workers
	build.Hybrid.Epochs = epochs
	build.Hybrid.Resume = resume
	observers := []core.TrainObserver{core.TrainObserverFuncs{
		OnStop: func(ev core.StopEvent) { stop = ev },
	}}
	if dir != "" {
		checkpointer, err := ckpt.NewCheckpointer(ckpt.CheckpointConfig{
			Dir:        dir,
			ConfigHash: hash,
			Now:        cfg.Now,
		})
		if err != nil {
			return nil, stop, err
		}
		observers = append(observers, checkpointer)
	}
	build.Observer = core.TrainObservers(observers...)
	measure, err := core.Build(setup.TrainObs, setup.CheckObs, build)
	if err != nil {
		return nil, stop, err
	}
	data, err := json.Marshal(measure)
	if err != nil {
		return nil, stop, err
	}
	return data, stop, nil
}

// ResumeExperiment measures checkpoint durability on the paper's own
// pipeline: the quality-FIS training is cut short at several epochs,
// resumed from the newest on-disk checkpoint, and the resumed model is
// compared byte-for-byte against the uninterrupted run. A final trial
// tears the newest checkpoint file first, showing the resolver skip the
// corrupt artifact and still converge identically from the one before it.
func ResumeExperiment(setup *Setup, cfg ResumeConfig) (*ResumeResult, error) {
	cfg = cfg.withDefaults()
	for _, k := range cfg.KillAt {
		if k < 1 || k >= cfg.Epochs {
			return nil, fmt.Errorf("eval: kill epoch %d outside [1, %d)", k, cfg.Epochs)
		}
	}
	workspace := cfg.Dir
	if workspace == "" {
		tmp, err := os.MkdirTemp("", "cqm-resume-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		workspace = tmp
	}
	hash, err := ckpt.HashConfig(struct {
		Seed    int64 `json:"seed"`
		Workers int   `json:"workers"`
		Epochs  int   `json:"epochs"`
	}{Seed: setup.Config.Seed, Workers: cfg.Workers, Epochs: cfg.Epochs})
	if err != nil {
		return nil, err
	}

	reference, refStop, err := resumeBuild(setup, cfg, cfg.Epochs, "", hash, nil)
	if err != nil {
		return nil, fmt.Errorf("eval: reference run: %w", err)
	}
	result := &ResumeResult{
		Workers:        cfg.Workers,
		Epochs:         cfg.Epochs,
		ReferenceError: refStop.BestError,
	}

	trial := func(kill int, tear bool) (ResumeRow, error) {
		dir := fmt.Sprintf("%s/kill-%02d-torn-%v", workspace, kill, tear)
		if _, _, err := resumeBuild(setup, cfg, kill, dir, hash, nil); err != nil {
			return ResumeRow{}, fmt.Errorf("eval: killed run at %d: %w", kill, err)
		}
		if tear {
			// Truncate the newest periodic checkpoint to a torn prefix, as a
			// crash mid-write without the atomic rename would leave it.
			path := ckpt.CheckpointPath(dir, kill-1)
			data, err := os.ReadFile(path)
			if err != nil {
				return ResumeRow{}, err
			}
			if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
				return ResumeRow{}, err
			}
		}
		res, err := ckpt.LatestState(dir, hash, nil)
		if err != nil {
			return ResumeRow{}, fmt.Errorf("eval: resolving checkpoint after kill at %d: %w", kill, err)
		}
		resumed, stop, err := resumeBuild(setup, cfg, cfg.Epochs, "", hash, res.State)
		if err != nil {
			return ResumeRow{}, fmt.Errorf("eval: resumed run from %d: %w", res.State.Epoch, err)
		}
		return ResumeRow{
			KillEpoch:   kill,
			ResumedFrom: res.State.Epoch,
			Skipped:     res.Skipped,
			Torn:        tear,
			FinalError:  stop.BestError,
			Identical:   string(resumed) == string(reference),
		}, nil
	}

	for _, kill := range cfg.KillAt {
		row, err := trial(kill, false)
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, row)
	}
	// The torn trial: the newest checkpoint is corrupt, so the resolver
	// must fall back to the epoch before the kill.
	lastKill := cfg.KillAt[len(cfg.KillAt)-1]
	row, err := trial(lastKill, true)
	if err != nil {
		return nil, err
	}
	result.Rows = append(result.Rows, row)
	return result, nil
}

// Render renders the durability sweep table.
func (r *ResumeResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Kill–resume durability — %d epochs, %d worker(s), reference error %.6f\n",
		r.Epochs, r.Workers, r.ReferenceError)
	fmt.Fprintf(&sb, "  %-12s %-13s %-8s %-6s %12s %11s\n",
		"kill epoch", "resumed from", "skipped", "torn", "final error", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-12d %-13d %-8d %-6v %12.6f %11v\n",
			row.KillEpoch, row.ResumedFrom, row.Skipped, row.Torn, row.FinalError, row.Identical)
	}
	return sb.String()
}
