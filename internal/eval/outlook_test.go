package eval

import (
	"strings"
	"testing"

	"cqm/internal/fusion"
)

func TestPredictionExperiment(t *testing.T) {
	out, err := PredictionExperiment(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Transitions != 3 {
		t.Fatalf("transitions = %d, want 3", out.Transitions)
	}
	if out.Anticipated == 0 {
		t.Error("no transition anticipated")
	}
	// Stable phases must stay quiet: the indicator is useless if it cries
	// wolf all session long.
	if rate := out.FalseAlarmRate(); rate > 0.2 {
		t.Errorf("false-alarm rate %v, want <= 0.2", rate)
	}
	if !strings.Contains(out.Render(), "anticipated") {
		t.Error("render incomplete")
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var sb strings.Builder
	if err := WriteReport(&sb, DefaultSeed); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"E1 — Figure 5", "E2 — Figure 6", "E3 — probabilities",
		"E4 — improvement", "E5 — classifier agnosticism",
		"E7 — whiteboard camera", "E8 — context prediction",
		"E9 — fusion", "Extensions", "Ablations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}

func TestCueAblation(t *testing.T) {
	rows, err := CueAblation(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Cues != "stddev (paper)" || rows[0].Dim != 3 {
		t.Errorf("first row should be the paper's cue set: %+v", rows[0])
	}
	for _, r := range rows {
		// Whatever the cue set does to the classifier, the quality
		// measure must keep ranking right above wrong.
		if r.AUC < 0.85 {
			t.Errorf("%s: AUC %v", r.Cues, r.AUC)
		}
		if r.Improvement < 0 {
			t.Errorf("%s: negative improvement %v", r.Cues, r.Improvement)
		}
	}
	if !strings.Contains(RenderCues(rows), "stddev") {
		t.Error("render incomplete")
	}
}

func TestCrossValidate(t *testing.T) {
	res, err := CrossValidate(DefaultSeed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AUCs) < 3 {
		t.Fatalf("only %d folds analyzed", len(res.AUCs))
	}
	for i, auc := range res.AUCs {
		if auc < 0.8 {
			t.Errorf("fold %d AUC = %v", i, auc)
		}
		if res.Improvements[i] <= 0 {
			t.Errorf("fold %d improvement = %v", i, res.Improvements[i])
		}
	}
	if !strings.Contains(res.Render(), "AUC") {
		t.Error("render incomplete")
	}
}

func TestThresholdConfidence(t *testing.T) {
	s := canonicalSetup(t)
	res, err := ThresholdConfidence(s, 200, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ThreshCI.Contains(res.Threshold) {
		t.Errorf("CI [%v, %v] excludes the point estimate %v",
			res.ThreshCI.Lo, res.ThreshCI.Hi, res.Threshold)
	}
	if res.ThreshCI.Width() <= 0 || res.ThreshCI.Width() > 1 {
		t.Errorf("threshold CI width %v implausible", res.ThreshCI.Width())
	}
	if res.DiscardCI.Lo < 0 || res.DiscardCI.Hi > 1 {
		t.Errorf("discard CI [%v, %v] outside [0,1]", res.DiscardCI.Lo, res.DiscardCI.Hi)
	}
	if !strings.Contains(res.Render(), "CI") {
		t.Error("render incomplete")
	}
}

func TestNoiseRobustnessSweep(t *testing.T) {
	rows, err := NoiseRobustnessSweep(DefaultSeed, []float64{0.005, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AUC < 0.85 {
			t.Errorf("noise %v: AUC %v, want the measure to keep ranking", r.Sigma, r.AUC)
		}
		if r.Improvement <= 0 {
			t.Errorf("noise %v: improvement %v", r.Sigma, r.Improvement)
		}
	}
	if _, err := NoiseRobustnessSweep(DefaultSeed, []float64{-1}); err == nil {
		t.Error("negative sigma accepted")
	}
	if !strings.Contains(RenderNoise(rows), "noise") {
		t.Error("render incomplete")
	}
}

func TestFusionExperiment(t *testing.T) {
	res, err := FusionExperiment(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	var majority, weighted float64
	for _, s := range res.Strategies {
		switch s.Strategy {
		case fusion.MajorityVote:
			majority = s.Accuracy
		case fusion.QualityWeighted:
			weighted = s.Accuracy
		}
	}
	if weighted < majority {
		t.Errorf("quality-weighted %.3f lost to majority %.3f", weighted, majority)
	}
	if weighted < 0.8 {
		t.Errorf("quality-weighted accuracy %.3f too low", weighted)
	}
	// The best individual source should not beat the weighted consensus
	// by much — fusing must not destroy information.
	bestSource := 0.0
	for _, acc := range res.PerSource {
		if acc > bestSource {
			bestSource = acc
		}
	}
	if weighted < bestSource-0.1 {
		t.Errorf("fusion %.3f far below best source %.3f", weighted, bestSource)
	}
}
