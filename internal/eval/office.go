package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"cqm/internal/awareoffice"
	"cqm/internal/sensor"
)

// CameraResult is the E7 outcome: whiteboard-camera snapshot quality with
// and without CQM filtering, under an unreliable network.
type CameraResult struct {
	// Without and With are the snapshot scores of the two cameras.
	Without, With awareoffice.SnapshotScore
	// IgnoredEvents is the number of context events the filtering camera
	// rejected for low quality.
	IgnoredEvents int
	// Truths is the number of true end-of-writing moments.
	Truths int
	// NetworkDropped is the number of deliveries the lossy medium ate.
	NetworkDropped int
}

// CameraConfig parameterizes the E7 experiment.
type CameraConfig struct {
	// Seed drives the simulation.
	Seed int64
	// Sessions is the number of office sessions the pen records. Default 6.
	Sessions int
	// Link is the broadcast medium; the zero value is a mildly lossy
	// wireless link (20 ms ± 30 ms, 5 % loss, 2 % duplicates).
	Link awareoffice.Link
	// Tolerance is the snapshot-to-truth matching window in seconds.
	// Default 2.5 (a camera firing within a couple of seconds of the real
	// end of writing captured the right board state).
	Tolerance float64
}

func (c CameraConfig) withDefaults() CameraConfig {
	if c.Sessions == 0 {
		c.Sessions = 6
	}
	if c.Link == (awareoffice.Link{}) {
		c.Link = awareoffice.Link{Latency: 0.02, Jitter: 0.03, Loss: 0.05, Duplicate: 0.02}
	}
	if c.Tolerance == 0 {
		c.Tolerance = 2.5
	}
	return c
}

// CameraExperiment runs the paper's motivating appliance end to end (E7):
// one AwarePen publishes context events with CQM annotations; two
// whiteboard cameras subscribe — one trusting every event, one filtering
// at the optimal threshold. Both are scored against the true end-of-
// writing moments. The sessions alternate nominal and erratic users so a
// meaningful share of classifications is wrong.
func CameraExperiment(setup *Setup, cfg CameraConfig) (*CameraResult, error) {
	cfg = cfg.withDefaults()
	sim := awareoffice.NewSimulation(cfg.Seed)
	bus, err := awareoffice.NewBus(sim, cfg.Link)
	if err != nil {
		return nil, err
	}
	plain := &awareoffice.Camera{Name: "camera-plain"}
	plain.Attach(bus)
	filtered := &awareoffice.Camera{
		Name:       "camera-cqm",
		UseQuality: true,
		MinQuality: setup.Analysis.Threshold,
	}
	filtered.Attach(bus)

	pen := &awareoffice.Pen{
		Classifier: setup.Classifier,
		Measure:    setup.Measure,
		WindowSize: setup.Config.WindowSize,
	}
	pen.Attach(bus)

	// The second style is calibrated so its writing windows flicker
	// between "writing" and "playing" — the intermittent misclassification
	// that makes a trusting camera fire spuriously mid-session.
	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var truths []float64
	offset := 0.0
	for i := 0; i < cfg.Sessions; i++ {
		scenario := sensor.OfficeSession(styles[i%len(styles)])
		readings, err := scenario.Run(rng)
		if err != nil {
			return nil, fmt.Errorf("eval: camera session %d: %w", i, err)
		}
		for k := range readings {
			readings[k].T += offset
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			return nil, fmt.Errorf("eval: feeding session %d: %w", i, err)
		}
		truths = append(truths, awareoffice.EndOfWritingTimes(readings)...)
		offset = readings[len(readings)-1].T + 2 // inter-session gap
	}
	sim.Run(offset + 5)

	dropped := bus.Stats().Dropped
	return &CameraResult{
		Without:        awareoffice.ScoreSnapshots(plain.Snapshots(), truths, cfg.Tolerance),
		With:           awareoffice.ScoreSnapshots(filtered.Snapshots(), truths, cfg.Tolerance),
		IgnoredEvents:  filtered.Ignored(),
		Truths:         len(truths),
		NetworkDropped: dropped,
	}, nil
}

// Render summarizes the E7 comparison.
func (r *CameraResult) Render() string {
	var sb strings.Builder
	sb.WriteString("E7 — whiteboard camera with vs without CQM filtering\n")
	fmt.Fprintf(&sb, "  true end-of-writing moments  %d (network drops: %d)\n", r.Truths, r.NetworkDropped)
	fmt.Fprintf(&sb, "  %-16s %6s %9s %10s %8s\n", "camera", "hits", "spurious", "precision", "recall")
	fmt.Fprintf(&sb, "  %-16s %6d %9d %10.3f %8.3f\n",
		"plain", r.Without.Hits, r.Without.Spurious, r.Without.Precision(), r.Without.Recall())
	fmt.Fprintf(&sb, "  %-16s %6d %9d %10.3f %8.3f  (ignored %d events)\n",
		"cqm-filtered", r.With.Hits, r.With.Spurious, r.With.Precision(), r.With.Recall(), r.IgnoredEvents)
	return sb.String()
}
