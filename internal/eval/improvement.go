package eval

import (
	"fmt"
	"strings"

	"cqm/internal/core"
)

// ImprovementResult is the E4 headline experiment: filtering the test set
// with the optimal threshold and accounting for what was discarded.
type ImprovementResult struct {
	Stats     core.FilterStats
	Threshold float64
	// Separable reports full right/wrong separability on the test set
	// (the paper's 24-point set separates perfectly).
	Separable bool
}

// ImprovementExperiment applies the filter at the analysis threshold to
// the setup's test set (E4 — "the appliance can discard 33 % of the
// classifications, which equals all wrong contextual classifications").
func ImprovementExperiment(s *Setup) (*ImprovementResult, error) {
	filter, err := core.NewFilter(s.Measure, s.Analysis.Threshold)
	if err != nil {
		return nil, err
	}
	stats, err := filter.Run(s.TestObs)
	if err != nil {
		return nil, err
	}
	return &ImprovementResult{
		Stats:     stats,
		Threshold: s.Analysis.Threshold,
		Separable: s.Analysis.Separable,
	}, nil
}

// Render summarizes the experiment against the paper's numbers.
func (r *ImprovementResult) Render() string {
	var sb strings.Builder
	s := r.Stats
	sb.WriteString("E4 — filtering at the optimal threshold (paper: discard 33 %, all wrong)\n")
	fmt.Fprintf(&sb, "  threshold s            %.4f (paper 0.81)\n", r.Threshold)
	fmt.Fprintf(&sb, "  test set               %d samples (%d right, %d wrong)\n",
		s.Total, s.AcceptedRight+s.DiscardedRight, s.AcceptedWrong+s.DiscardedWrong)
	fmt.Fprintf(&sb, "  discarded              %d (%.1f %%; paper 33 %%)\n",
		s.Discarded, 100*s.DiscardRate())
	fmt.Fprintf(&sb, "  discarded wrong        %d of %d wrong\n",
		s.DiscardedWrong, s.AcceptedWrong+s.DiscardedWrong)
	fmt.Fprintf(&sb, "  discarded right        %d\n", s.DiscardedRight)
	fmt.Fprintf(&sb, "  accuracy raw→filtered  %.3f → %.3f (improvement %.3f)\n",
		s.RawAccuracy(), s.AcceptedAccuracy(), s.Improvement())
	fmt.Fprintf(&sb, "  fully separable        %v (paper: yes)\n", r.Separable)
	return sb.String()
}
