package eval

import (
	"fmt"
	"strings"

	"cqm/internal/core"
	"cqm/internal/stat"
)

// Fig5Point is one sample of Figure 5: a test-set quality measure with its
// actual rightness.
type Fig5Point struct {
	Index   int
	Quality float64
	Correct bool
}

// Fig5Result reproduces Figure 5: the quality measure for every test-set
// point (o right, + wrong) with the statistical mean per group.
type Fig5Result struct {
	Points    []Fig5Point
	MeanRight float64
	MeanWrong float64
	Epsilon   int
}

// Figure5 scores the setup's test set point by point.
func Figure5(s *Setup) (*Fig5Result, error) {
	qs, correct, eps, err := s.Measure.ScoreObservations(s.TestObs)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Epsilon: len(eps)}
	var right, wrong []float64
	for i, q := range qs {
		res.Points = append(res.Points, Fig5Point{Index: i + 1, Quality: q, Correct: correct[i]})
		if correct[i] {
			right = append(right, q)
		} else {
			wrong = append(wrong, q)
		}
	}
	res.MeanRight = stat.Mean(right)
	res.MeanWrong = stat.Mean(wrong)
	return res, nil
}

// Render draws the figure as an ASCII scatter: sample index on the X axis,
// quality on the Y axis, with the group means as dashed lines.
func (r *Fig5Result) Render() string {
	const rows = 21
	var sb strings.Builder
	sb.WriteString("Figure 5 — quality measure per test sample (o right, + wrong; -- group means)\n")
	rowOf := func(q float64) int {
		row := int(q*float64(rows-1) + 0.5)
		if row < 0 {
			row = 0
		}
		if row > rows-1 {
			row = rows - 1
		}
		return rows - 1 - row
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(r.Points)*3+1))
	}
	markRow := func(q float64, mark byte) {
		row := rowOf(q)
		for c := range grid[row] {
			if grid[row][c] == ' ' && c%2 == 0 {
				grid[row][c] = mark
			}
		}
	}
	markRow(r.MeanRight, '-')
	markRow(r.MeanWrong, '-')
	for i, p := range r.Points {
		mark := byte('o')
		if !p.Correct {
			mark = '+'
		}
		grid[rowOf(p.Quality)][i*3+1] = mark
	}
	for i, line := range grid {
		q := 1 - float64(i)/float64(rows-1)
		fmt.Fprintf(&sb, "%4.2f |%s\n", q, string(line))
	}
	fmt.Fprintf(&sb, "      mean(right)=%.4f  mean(wrong)=%.4f  ε=%d\n",
		r.MeanRight, r.MeanWrong, r.Epsilon)
	return sb.String()
}

// Fig6Result reproduces Figure 6: the Gaussian density functions for right
// and wrong classified data with the threshold at their intersection.
type Fig6Result struct {
	Right, Wrong stat.Gaussian
	Threshold    float64
	Analysis     *core.Analysis
}

// Figure6 extracts the densities and threshold from the setup's analysis.
func Figure6(s *Setup) (*Fig6Result, error) {
	if s.Analysis == nil {
		return nil, core.ErrNoObservations
	}
	return &Fig6Result{
		Right:     s.Analysis.Right,
		Wrong:     s.Analysis.Wrong,
		Threshold: s.Analysis.Threshold,
		Analysis:  s.Analysis,
	}, nil
}

// Render draws both densities over q ∈ [0,1] with the threshold column
// marked (| column), wrong density as '#', right density as '*'.
func (r *Fig6Result) Render() string {
	const cols = 61
	const rows = 16
	var sb strings.Builder
	sb.WriteString("Figure 6 — density functions for right (*) and wrong (#) classifications, threshold (|)\n")
	maxD := 0.0
	rightD := make([]float64, cols)
	wrongD := make([]float64, cols)
	for c := 0; c < cols; c++ {
		q := float64(c) / float64(cols-1)
		rightD[c] = r.Right.PDF(q)
		wrongD[c] = r.Wrong.PDF(q)
		if rightD[c] > maxD {
			maxD = rightD[c]
		}
		if wrongD[c] > maxD {
			maxD = wrongD[c]
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	thrCol := int(r.Threshold*float64(cols-1) + 0.5)
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
		if thrCol >= 0 && thrCol < cols {
			grid[i][thrCol] = '|'
		}
	}
	put := func(c int, d float64, mark byte) {
		row := rows - 1 - int(d/maxD*float64(rows-1)+0.5)
		if row < 0 {
			row = 0
		}
		if row > rows-1 {
			row = rows - 1
		}
		if grid[row][c] == ' ' || grid[row][c] == '|' {
			grid[row][c] = mark
		}
	}
	for c := 0; c < cols; c++ {
		put(c, wrongD[c], '#')
		put(c, rightD[c], '*')
	}
	for _, line := range grid {
		sb.WriteString("  ")
		sb.Write(line)
		sb.WriteByte('\n')
	}
	sb.WriteString("  0.0" + strings.Repeat(" ", cols-10) + "1.0\n")
	fmt.Fprintf(&sb, "  wrong: N(%.4f, %.4f)  right: N(%.4f, %.4f)  s = %.4f\n",
		r.Wrong.Mu, r.Wrong.Sigma, r.Right.Mu, r.Right.Sigma, r.Threshold)
	return sb.String()
}

// ProbabilityRow is one line of the §3.2 probability table.
type ProbabilityRow struct {
	Name     string
	Paper    float64
	Measured float64
}

// ProbabilityTable compares the paper's reported §3.2 numbers against the
// measured ones (E3).
func ProbabilityTable(s *Setup) []ProbabilityRow {
	a := s.Analysis
	return []ProbabilityRow{
		{Name: "threshold s", Paper: 0.81, Measured: a.Threshold},
		{Name: "P(right | q > s)", Paper: 0.8112, Measured: a.PRightAccept},
		{Name: "P(wrong | q < s)", Paper: 0.8112, Measured: a.PWrongReject},
		{Name: "P(wrong | q > s)", Paper: 0.0217, Measured: a.PWrongAccept},
		{Name: "P(right | q < s)", Paper: 0.0846, Measured: a.PRightReject},
	}
}

// RenderProbabilityTable renders the E3 table.
func RenderProbabilityTable(rows []ProbabilityRow) string {
	var sb strings.Builder
	sb.WriteString("E3 — probabilities (paper §3.2 vs measured)\n")
	fmt.Fprintf(&sb, "  %-20s %10s %10s\n", "quantity", "paper", "measured")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-20s %10.4f %10.4f\n", r.Name, r.Paper, r.Measured)
	}
	return sb.String()
}
