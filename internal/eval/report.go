package eval

import (
	"fmt"
	"io"
)

// WriteReport runs the complete evaluation at the given seed and writes
// one consolidated plain-text report: every figure, table, sweep,
// extension, and ablation in DESIGN.md §4 order. This is the single
// artifact a reviewer reads next to the paper.
func WriteReport(w io.Writer, seed int64) error {
	setup, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return err
	}
	section := func(title string) {
		fmt.Fprintf(w, "\n%s\n%s\n", title, underline(len(title)))
	}

	fmt.Fprintf(w, "CQM evaluation report (seed %d)\n", seed)
	fmt.Fprintf(w, "Paper: Using a Context Quality Measure for Improving Smart Appliances (ICDCS WS 2007)\n")

	section("E1 — Figure 5")
	f5, err := Figure5(setup)
	if err != nil {
		return err
	}
	io.WriteString(w, f5.Render())

	section("E2 — Figure 6")
	f6, err := Figure6(setup)
	if err != nil {
		return err
	}
	io.WriteString(w, f6.Render())

	section("E3 — probabilities")
	io.WriteString(w, RenderProbabilityTable(ProbabilityTable(setup)))

	section("E4 — improvement headline")
	imp, err := ImprovementExperiment(setup)
	if err != nil {
		return err
	}
	io.WriteString(w, imp.Render())

	section("E5 — classifier agnosticism")
	ag, err := AgnosticismSweep(seed)
	if err != nil {
		return err
	}
	io.WriteString(w, RenderAgnostic(ag))

	section("E6 — balance and size sweeps")
	bal, err := ThresholdBalanceSweep(seed, nil)
	if err != nil {
		return err
	}
	io.WriteString(w, RenderBalance(bal))
	sz, err := TestSizeSweep(seed, nil)
	if err != nil {
		return err
	}
	io.WriteString(w, RenderSizes(sz))

	section("E7 — whiteboard camera")
	cam, err := CameraExperiment(setup, CameraConfig{Seed: seed})
	if err != nil {
		return err
	}
	io.WriteString(w, cam.Render())

	section("E8 — context prediction (outlook)")
	pred, err := PredictionExperiment(seed)
	if err != nil {
		return err
	}
	io.WriteString(w, pred.Render())

	section("E9 — fusion (outlook)")
	fus, err := FusionExperiment(seed)
	if err != nil {
		return err
	}
	io.WriteString(w, fus.Render())

	section("Extensions")
	conf, err := ThresholdConfidence(setup, 500, 0.95)
	if err != nil {
		return err
	}
	io.WriteString(w, conf.Render())
	cv, err := CrossValidate(seed, 5)
	if err != nil {
		return err
	}
	io.WriteString(w, cv.Render())
	noise, err := NoiseRobustnessSweep(seed, nil)
	if err != nil {
		return err
	}
	io.WriteString(w, RenderNoise(noise))
	cues, err := CueAblation(seed)
	if err != nil {
		return err
	}
	io.WriteString(w, RenderCues(cues))

	section("Ablations")
	for _, a := range []struct {
		title string
		fn    func(int64) ([]AblationRow, error)
	}{
		{"Hybrid learning", AblationHybrid},
		{"Consequent order", AblationConsequents},
		{"Clustering method", AblationClustering},
		{"Density model", AblationDensity},
		{"Normalization", AblationNormalization},
	} {
		rows, err := a.fn(seed)
		if err != nil {
			return fmt.Errorf("eval: report %s: %w", a.title, err)
		}
		io.WriteString(w, RenderAblation(a.title, rows))
	}
	return nil
}

func underline(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '='
	}
	return string(out)
}
