package eval

import (
	"fmt"
	"io"
)

// reportWriter funnels every write of the report through one place and
// remembers the first failure, so the report body stays a linear script
// while a full disk or closed pipe still surfaces as an error.
type reportWriter struct {
	w   io.Writer
	err error
}

func (rw *reportWriter) str(s string) {
	if rw.err == nil {
		_, rw.err = io.WriteString(rw.w, s)
	}
}

func (rw *reportWriter) strf(format string, args ...any) {
	rw.str(fmt.Sprintf(format, args...))
}

// WriteReport runs the complete evaluation at the given seed and writes
// one consolidated plain-text report: every figure, table, sweep,
// extension, and ablation in DESIGN.md §4 order. This is the single
// artifact a reviewer reads next to the paper.
func WriteReport(w io.Writer, seed int64) error {
	setup, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return err
	}
	rw := &reportWriter{w: w}
	section := func(title string) {
		rw.strf("\n%s\n%s\n", title, underline(len(title)))
	}

	rw.strf("CQM evaluation report (seed %d)\n", seed)
	rw.strf("Paper: Using a Context Quality Measure for Improving Smart Appliances (ICDCS WS 2007)\n")

	section("E1 — Figure 5")
	f5, err := Figure5(setup)
	if err != nil {
		return err
	}
	rw.str(f5.Render())

	section("E2 — Figure 6")
	f6, err := Figure6(setup)
	if err != nil {
		return err
	}
	rw.str(f6.Render())

	section("E3 — probabilities")
	rw.str(RenderProbabilityTable(ProbabilityTable(setup)))

	section("E4 — improvement headline")
	imp, err := ImprovementExperiment(setup)
	if err != nil {
		return err
	}
	rw.str(imp.Render())

	section("E5 — classifier agnosticism")
	ag, err := AgnosticismSweep(seed)
	if err != nil {
		return err
	}
	rw.str(RenderAgnostic(ag))

	section("E6 — balance and size sweeps")
	bal, err := ThresholdBalanceSweep(seed, nil)
	if err != nil {
		return err
	}
	rw.str(RenderBalance(bal))
	sz, err := TestSizeSweep(seed, nil)
	if err != nil {
		return err
	}
	rw.str(RenderSizes(sz))

	section("E7 — whiteboard camera")
	cam, err := CameraExperiment(setup, CameraConfig{Seed: seed})
	if err != nil {
		return err
	}
	rw.str(cam.Render())

	section("E8 — context prediction (outlook)")
	pred, err := PredictionExperiment(seed)
	if err != nil {
		return err
	}
	rw.str(pred.Render())

	section("E9 — fusion (outlook)")
	fus, err := FusionExperiment(seed)
	if err != nil {
		return err
	}
	rw.str(fus.Render())

	section("Extensions")
	conf, err := ThresholdConfidence(setup, 500, 0.95)
	if err != nil {
		return err
	}
	rw.str(conf.Render())
	cv, err := CrossValidate(seed, 5)
	if err != nil {
		return err
	}
	rw.str(cv.Render())
	noise, err := NoiseRobustnessSweep(seed, nil)
	if err != nil {
		return err
	}
	rw.str(RenderNoise(noise))
	cues, err := CueAblation(seed)
	if err != nil {
		return err
	}
	rw.str(RenderCues(cues))

	section("Ablations")
	for _, a := range []struct {
		title string
		fn    func(int64) ([]AblationRow, error)
	}{
		{"Hybrid learning", AblationHybrid},
		{"Consequent order", AblationConsequents},
		{"Clustering method", AblationClustering},
		{"Density model", AblationDensity},
		{"Normalization", AblationNormalization},
	} {
		rows, err := a.fn(seed)
		if err != nil {
			return fmt.Errorf("eval: report %s: %w", a.title, err)
		}
		rw.str(RenderAblation(a.title, rows))
	}
	return rw.err
}

func underline(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '='
	}
	return string(out)
}
