package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"cqm/internal/awareoffice"
	"cqm/internal/core"
	"cqm/internal/fault"
	"cqm/internal/feature"
	"cqm/internal/sensor"
)

// FaultConfig parameterizes the E8 fault-intensity sweep.
type FaultConfig struct {
	// Seed drives the simulation and the fault schedules.
	Seed int64
	// Sessions is the number of office sessions per intensity. Default 4.
	Sessions int
	// Intensities are the fault intensities to sweep, each in [0,1];
	// default {0, 0.1, 0.2, 0.4, 0.6}.
	Intensities []float64
	// Workers is the pen's PreScoreWorkers; any value >= 1 produces
	// bit-identical sweeps (the determinism contract). Default 1.
	Workers int
	// Retransmit enables the bus's reliability layer with the default
	// policy.
	Retransmit bool
	// Tolerance is the snapshot-to-truth matching window in seconds.
	// Default 2.5.
	Tolerance float64
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.Sessions == 0 {
		c.Sessions = 4
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0, 0.1, 0.2, 0.4, 0.6}
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Tolerance == 0 {
		c.Tolerance = 2.5
	}
	return c
}

// FaultPoint is the outcome of one intensity level: window-level
// classification quality plus the camera's event intake under the faulted
// network.
type FaultPoint struct {
	// Intensity is the fault intensity in [0,1].
	Intensity float64
	// Windows is the number of classification windows produced.
	Windows int
	// Epsilon is the number of windows in the ε state (degraded input or
	// uninterpretable quality).
	Epsilon int
	// Accuracy is the fraction of classified windows matching ground
	// truth — what a quality-blind appliance acts on.
	Accuracy float64
	// FilteredAccuracy is the accuracy over windows accepted by the CQM
	// threshold — what a quality-aware appliance acts on.
	FilteredAccuracy float64
	// Accepted is the number of windows the CQM threshold accepted.
	Accepted int
	// CameraAccepted is the number of events the filtering camera let
	// through duplicate suppression and the quality filter.
	CameraAccepted int
	// CameraFallbacks is the number of timeout fallback snapshots.
	CameraFallbacks int
	// Score is the filtering camera's snapshot score at this intensity.
	Score awareoffice.SnapshotScore
	// Bus is the delivery accounting at this intensity.
	Bus awareoffice.BusStats
	// InjectedSamples is the total number of samples touched by sensor
	// faults.
	InjectedSamples int
}

// EpsilonRate returns the fraction of windows in the ε state.
func (p FaultPoint) EpsilonRate() float64 {
	if p.Windows == 0 {
		return 0
	}
	return float64(p.Epsilon) / float64(p.Windows)
}

// FaultResult is the E8 outcome: the sweep across intensities.
type FaultResult struct {
	// Points are the per-intensity outcomes, in sweep order.
	Points []FaultPoint
	// Retransmit records whether the reliability layer was on.
	Retransmit bool
}

// Recovery returns one point's camera intake relative to the sweep's
// first (baseline) point, or 1 when the baseline accepted nothing.
func (r *FaultResult) Recovery(i int) float64 {
	if i <= 0 || len(r.Points) == 0 || r.Points[0].CameraAccepted == 0 {
		return 1
	}
	return float64(r.Points[i].CameraAccepted) / float64(r.Points[0].CameraAccepted)
}

// faultSchedule builds the sensor-fault injector for one intensity: a
// spike storm, an over-driven front end, a mid-recording dropout, and a
// drifting clock, all scaled by the intensity. Intensity 0 injects
// nothing.
func faultSchedule(seed int64, intensity float64) *fault.Injector {
	if intensity <= 0 {
		return fault.NewInjector(seed)
	}
	return fault.NewInjector(seed,
		&fault.SpikeNoise{Prob: 0.2 * intensity},
		&fault.Saturation{Gain: 1 + 0.8*intensity},
		&fault.Dropout{Start: 8, Duration: 2 * intensity},
		&fault.ClockDrift{Rate: 0.15 * intensity},
	)
}

// FaultSweep runs the E8 robustness experiment: the E7 appliance chain
// (pen → bus → filtering camera) under increasing fault intensity at the
// sensor (spikes, saturation, dropout, clock drift) and channel (burst
// loss, frame truncation) layers, with degraded-input detection routing
// bad windows into ε. Each point reports window accuracy with and without
// CQM filtering and the camera's surviving event intake. Identical seed
// and config produce byte-identical results at any worker count.
func FaultSweep(setup *Setup, cfg FaultConfig) (*FaultResult, error) {
	cfg = cfg.withDefaults()
	result := &FaultResult{Retransmit: cfg.Retransmit}
	for round, intensity := range cfg.Intensities {
		if intensity < 0 || intensity > 1 {
			return nil, fmt.Errorf("eval: fault intensity %v outside [0,1]", intensity)
		}
		point, err := faultPoint(setup, cfg, round, intensity)
		if err != nil {
			return nil, err
		}
		result.Points = append(result.Points, *point)
	}
	return result, nil
}

// faultPoint runs one intensity level end to end.
func faultPoint(setup *Setup, cfg FaultConfig, round int, intensity float64) (*FaultPoint, error) {
	sim := awareoffice.NewSimulation(cfg.Seed + int64(round))
	link := awareoffice.Link{Latency: 0.02, Jitter: 0.03, Duplicate: 0.02}
	if intensity > 0 {
		link.LossModel = fault.BurstLoss(0.3 * intensity)
		link.FrameFault = &fault.Truncate{Prob: 0.05 * intensity}
	}
	bus, err := awareoffice.NewBus(sim, link)
	if err != nil {
		return nil, err
	}
	if cfg.Retransmit {
		if err := bus.EnableReliability(awareoffice.DefaultReliability()); err != nil {
			return nil, err
		}
	}
	degrade := &feature.DegradationConfig{}
	camera := &awareoffice.Camera{
		Name:            "camera-cqm",
		UseQuality:      true,
		MinQuality:      setup.Analysis.Threshold,
		FallbackTimeout: 15,
	}
	camera.Attach(bus)
	pen := &awareoffice.Pen{
		Classifier:      setup.Classifier,
		Measure:         setup.Measure,
		WindowSize:      setup.Config.WindowSize,
		Degradation:     degrade,
		PreScoreWorkers: cfg.Workers,
	}
	pen.Attach(bus)

	injector := faultSchedule(cfg.Seed+int64(round)*101, intensity)
	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
	}
	// The recording RNG restarts identically per point, so every intensity
	// perturbs the same base sessions.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	point := &FaultPoint{Intensity: intensity}
	var truths []float64
	var faulted [][]sensor.Reading
	offset := 0.0
	for i := 0; i < cfg.Sessions; i++ {
		scenario := sensor.OfficeSession(styles[i%len(styles)])
		readings, err := scenario.Run(rng)
		if err != nil {
			return nil, fmt.Errorf("eval: fault session %d: %w", i, err)
		}
		readings, err = injector.Apply(readings)
		if err != nil {
			return nil, fmt.Errorf("eval: injecting session %d: %w", i, err)
		}
		for k := range readings {
			readings[k].T += offset
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			return nil, fmt.Errorf("eval: feeding session %d: %w", i, err)
		}
		truths = append(truths, awareoffice.EndOfWritingTimes(readings)...)
		faulted = append(faulted, readings)
		offset = readings[len(readings)-1].T + 2
	}
	sim.Run(offset + 30)

	for _, n := range injector.Counts() {
		point.InjectedSamples += n
	}
	if err := scoreWindows(setup, cfg, degrade, faulted, point); err != nil {
		return nil, err
	}
	point.CameraAccepted = camera.Accepted()
	point.CameraFallbacks = camera.Fallbacks()
	point.Score = awareoffice.ScoreSnapshots(camera.Snapshots(), truths, cfg.Tolerance)
	point.Bus = bus.Stats()
	return point, nil
}

// scoreWindows computes the window-level accuracy statistics over the
// faulted recordings — the same windows the pen published, evaluated
// against ground truth.
func scoreWindows(setup *Setup, cfg FaultConfig, degrade *feature.DegradationConfig, sessions [][]sensor.Reading, point *FaultPoint) error {
	threshold := setup.Analysis.Threshold
	var correct, filteredCorrect int
	classified := 0
	for _, readings := range sessions {
		windows, err := (feature.Windower{
			Size:        setup.Config.WindowSize,
			Degradation: degrade,
		}).Slide(readings)
		if err != nil {
			return fmt.Errorf("eval: scoring fault windows: %w", err)
		}
		for _, w := range windows {
			point.Windows++
			class, err := setup.Classifier.Classify(w.Cues)
			if err != nil || class == sensor.ContextUnknown {
				point.Epsilon++
				continue
			}
			classified++
			if class == w.Truth {
				correct++
			}
			if w.Degraded.Any() {
				point.Epsilon++
				continue
			}
			q, err := setup.Measure.Score(w.Cues, class)
			if err != nil {
				if core.IsEpsilon(err) {
					point.Epsilon++
					continue
				}
				return err
			}
			if q > threshold {
				point.Accepted++
				if class == w.Truth {
					filteredCorrect++
				}
			}
		}
	}
	if classified > 0 {
		point.Accuracy = float64(correct) / float64(classified)
	}
	if point.Accepted > 0 {
		point.FilteredAccuracy = float64(filteredCorrect) / float64(point.Accepted)
	}
	return nil
}

// Render summarizes the E8 sweep.
func (r *FaultResult) Render() string {
	var sb strings.Builder
	mode := "fire-and-forget"
	if r.Retransmit {
		mode = "ack/retransmit"
	}
	sb.WriteString("E8 — graceful degradation under injected faults (" + mode + ")\n")
	fmt.Fprintf(&sb, "  %9s %8s %7s %9s %9s %9s %9s %7s %9s\n",
		"intensity", "windows", "ε-rate", "accuracy", "cqm-acc", "events", "recovery", "drops", "retx/gave")
	for i, p := range r.Points {
		fmt.Fprintf(&sb, "  %9.2f %8d %6.1f%% %9.3f %9.3f %9d %8.1f%% %7d %5d/%-3d\n",
			p.Intensity, p.Windows, 100*p.EpsilonRate(), p.Accuracy, p.FilteredAccuracy,
			p.CameraAccepted, 100*r.Recovery(i), p.Bus.Dropped, p.Bus.Retransmits, p.Bus.GaveUp)
	}
	return sb.String()
}
