package eval

import (
	"fmt"
	"math/rand"

	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/fusion"
	"cqm/internal/predict"
	"cqm/internal/sensor"
)

// PredictionExperiment runs the paper's §5 context-prediction extension
// (E8): a quality measure built from counterfactually augmented
// observations monitors the per-class quality trends of a session with
// slow transitions, and must anticipate context changes without alarming
// during stable phases.
func PredictionExperiment(seed int64) (*predict.Outcome, error) {
	s, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	// The prediction measure needs calibrated counterfactual scores:
	// rebuild it from augmented observations of the same mixed workload.
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios:  evaluationScenarios(1),
		WindowSize: s.Config.WindowSize,
		WindowStep: s.Config.WindowSize / 2,
		Seed:       seed + 1,
	})
	if err != nil {
		return nil, err
	}
	augmented, err := core.AugmentObservations(mixed, sensor.AllContexts())
	if err != nil {
		return nil, err
	}
	measure, err := core.Build(augmented, nil, core.BuildConfig{})
	if err != nil {
		return nil, fmt.Errorf("eval: building augmented measure: %w", err)
	}

	rng := rand.New(rand.NewSource(seed + 2))
	scenario := &sensor.Scenario{
		Segments: []sensor.Segment{
			{Context: sensor.ContextWriting, Duration: 8},
			{Context: sensor.ContextPlaying, Duration: 8},
			{Context: sensor.ContextWriting, Duration: 8},
			{Context: sensor.ContextLying, Duration: 8},
		},
		Transition: 1.5,
	}
	readings, err := scenario.Run(rng)
	if err != nil {
		return nil, err
	}
	return predict.RunExperiment(s.Classifier, measure, readings, s.Config.WindowSize, predict.Config{})
}

// FusionExperiment runs the paper's §5 fusion extension (E9): several
// appliances with different user styles observe the same room; the
// quality-weighted fuser must beat quality-blind majority voting.
func FusionExperiment(seed int64) (*fusion.Result, error) {
	s, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	return fusion.RunExperiment(s.Classifier, s.Measure, fusion.ExperimentConfig{Seed: seed + 3})
}
