// Package eval regenerates the paper's evaluation: every figure, every
// reported number, and the ablations justifying the design choices.
//
// Experiment index (see DESIGN.md §4 for the full mapping):
//
//	E1 / Fig. 5  — Figure5: quality measures for the 24-point test set
//	E2 / Fig. 6  — Figure6: right/wrong Gaussian densities and threshold s
//	E3 / §3.2    — ProbabilityTable: the four median-cut probabilities
//	E4 / §3.2    — ImprovementExperiment: the 33 % discard headline
//	E5 / §2      — AgnosticismSweep: CQM over four different classifiers
//	E6 / §3.2    — ThresholdBalanceSweep & TestSizeSweep
//	E7 / §1      — CameraExperiment: whiteboard camera with/without CQM
//	Ablations    — clustering method, hybrid learning, consequent order,
//	               normalization
//
// All experiments run on the synthetic AwarePen substrate (DESIGN.md §2)
// from a fixed seed, so results are reproducible bit for bit. The paper's
// absolute numbers came from 24 hand-collected physical data points; ours
// come from the simulator, so EXPERIMENTS.md compares shapes (who wins,
// where the threshold falls, what gets discarded), not decimals.
package eval
