package eval

import (
	"reflect"
	"strings"
	"testing"

	"cqm/internal/core"
	"cqm/internal/dataset"
)

// TestCrossValidateSerialParallelEquivalence: parallel folds must
// reproduce the serial run bit-for-bit — same AUC/threshold/improvement
// vectors, same skip list.
func TestCrossValidateSerialParallelEquivalence(t *testing.T) {
	want, err := CrossValidateWorkers(DefaultSeed, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CrossValidateWorkers(DefaultSeed, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// reflect.DeepEqual on float slices is exact comparison — precisely
	// the point: fold pipelines are independent, so parallelism must not
	// change a single bit.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel result differs from serial:\n got %+v\nwant %+v", got, want)
	}
}

// TestCrossValidateWorkersValidation rejects a negative worker count.
func TestCrossValidateWorkersValidation(t *testing.T) {
	if _, err := CrossValidateWorkers(DefaultSeed, 3, -1); err == nil {
		t.Fatal("Workers=-1: expected error")
	}
}

// TestCrossValidateReportsSkippedFolds is the regression test for the
// silent-skip bug: a one-sided fold used to vanish from the result with
// Folds still claiming the full count and nothing identifying the gap.
// Doctoring one fold's test split to be one-sided must now surface it in
// Evaluated, Skipped, and Render.
func TestCrossValidateReportsSkippedFolds(t *testing.T) {
	base, err := NewSetup(SetupConfig{Seed: DefaultSeed})
	if err != nil {
		t.Fatal(err)
	}
	all := append(append(append([]core.Observation(nil), base.TrainObs...), base.CheckObs...), base.PoolObs...)
	folds, err := observationsAsSet(all).KFold(4, DefaultSeed+50)
	if err != nil {
		t.Fatal(err)
	}
	// Force fold 2 one-sided: keep only the observations marked correct
	// (the correctness flag rides in the last packed cue slot).
	onlyCorrect := &dataset.Set{}
	for _, smp := range folds[2].Test.Samples {
		if smp.Cues[len(smp.Cues)-1] == 1 { //lint:ignore floatcmp the slot stores the 0/1 correctness flag verbatim, never computed
			onlyCorrect.Append(smp)
		}
	}
	if onlyCorrect.Len() == 0 {
		t.Fatal("doctored fold has no correct observations; pick another fold")
	}
	folds[2].Test = onlyCorrect

	res, err := crossValidateFolds(folds, base.Config.Build, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folds != 4 || res.Evaluated != 3 {
		t.Fatalf("Folds=%d Evaluated=%d, want 4 and 3", res.Folds, res.Evaluated)
	}
	if !reflect.DeepEqual(res.Skipped, []int{2}) {
		t.Fatalf("Skipped = %v, want [2]", res.Skipped)
	}
	if len(res.AUCs) != 3 || len(res.Thresholds) != 3 || len(res.Improvements) != 3 {
		t.Fatalf("metric vectors %d/%d/%d entries, want 3 each",
			len(res.AUCs), len(res.Thresholds), len(res.Improvements))
	}
	out := res.Render()
	if !strings.Contains(out, "3 of 4") || !strings.Contains(out, "skipped") {
		t.Fatalf("Render does not report the skipped fold:\n%s", out)
	}
}
