package eval

import (
	"fmt"
	"strings"

	"cqm/internal/anfis"
	"cqm/internal/cluster"
	"cqm/internal/core"
	"cqm/internal/stat"
)

// AblationRow is one variant's outcome: how well its quality measure ranks
// right above wrong classifications on the test set, and the filtered
// improvement at the analysis threshold.
type AblationRow struct {
	Variant     string
	Rules       int
	AUC         float64
	Improvement float64
}

// scoreVariant evaluates a quality measure built by a variant against the
// setup's test set.
func scoreVariant(name string, m *core.Measure, s *Setup) (AblationRow, error) {
	qs, correct, _, err := m.ScoreObservations(s.TestObs)
	if err != nil {
		return AblationRow{}, fmt.Errorf("eval: %s: %w", name, err)
	}
	row := AblationRow{Variant: name, Rules: m.Rules(), AUC: stat.AUC(stat.ROC(qs, correct))}
	a, err := core.Analyze(m, s.TestObs)
	if err != nil {
		return AblationRow{}, fmt.Errorf("eval: %s analysis: %w", name, err)
	}
	filter, err := core.NewFilter(m, clampThreshold(a.Threshold))
	if err != nil {
		return AblationRow{}, fmt.Errorf("eval: %s filter: %w", name, err)
	}
	stats, err := filter.Run(s.TestObs)
	if err != nil {
		return AblationRow{}, fmt.Errorf("eval: %s filtering: %w", name, err)
	}
	row.Improvement = stats.Improvement()
	return row, nil
}

func clampThreshold(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// AblationHybrid compares the full pipeline against construction-only
// (clustering + least squares, no ANFIS tuning).
func AblationHybrid(seed int64) ([]AblationRow, error) {
	full, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, 2)
	row, err := scoreVariant("clustering+LSE+ANFIS (paper)", full.Measure, full)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	lseOnly, err := core.Build(full.TrainObs, full.CheckObs, core.BuildConfig{SkipHybrid: true})
	if err != nil {
		return nil, err
	}
	row, err = scoreVariant("clustering+LSE only", lseOnly, full)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// AblationConsequents compares linear (paper) against constant TSK
// consequents — §2.1.2: "the linear functional consequence is used, since
// the results for the reliability determination are better".
func AblationConsequents(seed int64) ([]AblationRow, error) {
	s, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, 2)
	row, err := scoreVariant("linear consequents (paper)", s.Measure, s)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	constant, err := core.Build(s.TrainObs, s.CheckObs, core.BuildConfig{ConstantConsequents: true})
	if err != nil {
		return nil, err
	}
	row, err = scoreVariant("constant consequents", constant, s)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// AblationClustering compares rule extraction by subtractive clustering
// (paper) against mountain clustering and FCM centers feeding the same
// LSE+ANFIS pipeline — §2.2.1's design choice.
func AblationClustering(seed int64) ([]AblationRow, error) {
	s, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, 3)
	row, err := scoreVariant("subtractive (paper)", s.Measure, s)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	data := observationsData(s.TrainObs)
	// Mountain clustering: grid over the 4-dimensional v_Q space.
	if mRes, err := cluster.Mountain(data.X, cluster.MountainConfig{GridPerDim: 5, Sigma: 0.25}); err == nil {
		if row, err := variantFromCenters("mountain", mRes.Centers, data, s); err == nil {
			rows = append(rows, row)
		} else {
			rows = append(rows, AblationRow{Variant: "mountain (failed: " + err.Error() + ")"})
		}
	} else {
		rows = append(rows, AblationRow{Variant: "mountain (failed: " + err.Error() + ")"})
	}
	// FCM with the paper-default rule count from subtractive clustering.
	c := s.Measure.Rules()
	if c < 2 {
		c = 2
	}
	fRes, err := cluster.FCM(data.X, cluster.FCMConfig{C: c, Seed: seed})
	if err != nil {
		return nil, err
	}
	row, err = variantFromCenters("fcm", fRes.Centers, data, s)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// variantFromCenters builds a quality measure from externally supplied
// cluster centers and scores it.
func variantFromCenters(name string, centers [][]float64, data *anfis.Data, s *Setup) (AblationRow, error) {
	sigmas := sigmasForData(data)
	sys, err := anfis.BuildFromCenters(data, centers, sigmas, anfis.BuildConfig{})
	if err != nil {
		return AblationRow{}, fmt.Errorf("eval: %s build: %w", name, err)
	}
	if _, err := anfis.Train(sys, data, observationsData(s.CheckObs), anfis.Config{}); err != nil {
		return AblationRow{}, fmt.Errorf("eval: %s train: %w", name, err)
	}
	m := core.MeasureFromSystem(sys)
	return scoreVariant(name, m, s)
}

// sigmasForData derives genfis2-style per-dimension widths from the data
// range (radius 0.5).
func sigmasForData(d *anfis.Data) []float64 {
	if len(d.X) == 0 {
		return nil
	}
	dim := len(d.X[0])
	min := make([]float64, dim)
	max := make([]float64, dim)
	copy(min, d.X[0])
	copy(max, d.X[0])
	for _, row := range d.X {
		for j, v := range row {
			if v < min[j] {
				min[j] = v
			}
			if v > max[j] {
				max[j] = v
			}
		}
	}
	out := make([]float64, dim)
	for j := range out {
		span := max[j] - min[j]
		if span < 1e-9 {
			span = 1e-9
		}
		out[j] = 0.5 * span / 2.8284271247461903 // r·span/√8
	}
	return out
}

// observationsData converts observations to ANFIS training data with the
// designated 0/1 output.
func observationsData(obs []core.Observation) *anfis.Data {
	d := &anfis.Data{X: make([][]float64, len(obs)), Y: make([]float64, len(obs))}
	for i, o := range obs {
		v := make([]float64, len(o.Cues)+1)
		copy(v, o.Cues)
		v[len(o.Cues)] = float64(o.Class.ID())
		d.X[i] = v
		if o.Correct {
			d.Y[i] = 1
		}
	}
	return d
}

// AblationDensity compares the paper's Gaussian-MLE threshold (§2.3)
// against a non-parametric kernel-density threshold on the same quality
// scores: how much does the normality assumption matter?
func AblationDensity(seed int64) ([]AblationRow, error) {
	s, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	qs, correct, _, err := s.Measure.ScoreObservations(s.TestObs)
	if err != nil {
		return nil, err
	}
	auc := stat.AUC(stat.ROC(qs, correct))
	var qRight, qWrong []float64
	for i, q := range qs {
		if correct[i] {
			qRight = append(qRight, q)
		} else {
			qWrong = append(qWrong, q)
		}
	}

	improvementAt := func(thr float64) float64 {
		var accepted, acceptedRight, totalRight int
		for i, q := range qs {
			if correct[i] {
				totalRight++
			}
			if q > thr {
				accepted++
				if correct[i] {
					acceptedRight++
				}
			}
		}
		if accepted == 0 {
			return 0
		}
		return float64(acceptedRight)/float64(accepted) - float64(totalRight)/float64(len(qs))
	}

	rows := []AblationRow{{
		Variant:     "Gaussian MLE threshold (paper)",
		Rules:       s.Measure.Rules(),
		AUC:         auc,
		Improvement: improvementAt(s.Analysis.Threshold),
	}}

	kWrong, err := stat.NewKDE(qWrong, 0)
	if err != nil {
		return nil, fmt.Errorf("eval: KDE wrong: %w", err)
	}
	kRight, err := stat.NewKDE(qRight, 0)
	if err != nil {
		return nil, fmt.Errorf("eval: KDE right: %w", err)
	}
	thr, err := stat.CrossPDFs(kWrong.PDF, kRight.PDF, 0, 1)
	if err != nil {
		// No crossing inside [0,1]: fall back to the midpoint between the
		// group means, same as the Gaussian path's fallback.
		thr = 0.5 * (stat.Mean(qWrong) + stat.Mean(qRight))
	}
	rows = append(rows, AblationRow{
		Variant:     "KDE threshold",
		Rules:       s.Measure.Rules(),
		AUC:         auc,
		Improvement: improvementAt(thr),
	})
	return rows, nil
}

// AblationNormalization compares the normalized measure (paper) against
// raw clamped scores — does the L function earn its keep?
func AblationNormalization(seed int64) ([]AblationRow, error) {
	s, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, 2)
	row, err := scoreVariant("normalized L (paper)", s.Measure, s)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// Raw variant: clamp instead of fold+ε, with its own MLE threshold.
	var qs []float64
	var correct []bool
	var qRight, qWrong []float64
	for _, o := range s.TestObs {
		raw, err := s.Measure.RawScore(o.Cues, o.Class)
		if err != nil {
			continue
		}
		q := clampThreshold(raw)
		qs = append(qs, q)
		correct = append(correct, o.Correct)
		if o.Correct {
			qRight = append(qRight, q)
		} else {
			qWrong = append(qWrong, q)
		}
	}
	rawRow := AblationRow{
		Variant: "raw clamped (no L)",
		Rules:   s.Measure.Rules(),
		AUC:     stat.AUC(stat.ROC(qs, correct)),
	}
	rawRow.Improvement = rawImprovement(qs, correct, qRight, qWrong)
	rows = append(rows, rawRow)
	return rows, nil
}

// rawImprovement reruns the §2.3 analysis on raw clamped scores and
// reports the filtered-minus-raw accuracy at the resulting threshold.
func rawImprovement(qs []float64, correct []bool, qRight, qWrong []float64) float64 {
	right, errR := stat.FitGaussianMLE(qRight)
	wrong, errW := stat.FitGaussianMLE(qWrong)
	if errR != nil || errW != nil {
		return 0
	}
	thr, err := stat.Intersect(wrong, right, 0, 1)
	if err != nil {
		thr = 0.5 * (wrong.Mu + right.Mu)
	}
	var total, accepted, acceptedRight, totalRight int
	for i, q := range qs {
		total++
		if correct[i] {
			totalRight++
		}
		if q > thr {
			accepted++
			if correct[i] {
				acceptedRight++
			}
		}
	}
	if total == 0 || accepted == 0 {
		return 0
	}
	return float64(acceptedRight)/float64(accepted) - float64(totalRight)/float64(total)
}

// RenderAblation renders any ablation table.
func RenderAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "  %-30s %6s %8s %12s\n", "variant", "rules", "AUC", "improvement")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-30s %6d %8.3f %12.3f\n", r.Variant, r.Rules, r.AUC, r.Improvement)
	}
	return sb.String()
}
