package eval

import (
	"fmt"
	"strings"

	"cqm/internal/stat"
)

// ConfidenceResult quantifies the sampling uncertainty of the paper's
// headline quantities on the 24-point evaluation set via bootstrap
// resampling — a 24-point sample pins the threshold down only loosely,
// which is worth knowing before deploying s on an appliance.
type ConfidenceResult struct {
	// Threshold is the point estimate and its interval.
	Threshold float64
	ThreshCI  stat.Interval
	// DiscardRate is the point estimate and interval of the discard rate
	// at the resample-specific optimal threshold.
	DiscardRate float64
	DiscardCI   stat.Interval
}

// ThresholdConfidence bootstraps the optimal threshold and the discard
// rate over the canonical test set's quality scores.
func ThresholdConfidence(s *Setup, resamples int, level float64) (*ConfidenceResult, error) {
	if resamples == 0 {
		resamples = 500
	}
	if level == 0 {
		level = 0.95
	}
	qs, correct, _, err := s.Measure.ScoreObservations(s.TestObs)
	if err != nil {
		return nil, err
	}

	thresholdStat := func(q []float64, lab []bool) (float64, error) {
		return thresholdOf(q, lab)
	}
	discardStat := func(q []float64, lab []bool) (float64, error) {
		thr, err := thresholdOf(q, lab)
		if err != nil {
			return 0, err
		}
		discarded := 0
		for _, v := range q {
			if v <= thr {
				discarded++
			}
		}
		return float64(discarded) / float64(len(q)), nil
	}

	res := &ConfidenceResult{Threshold: s.Analysis.Threshold}
	if res.ThreshCI, err = stat.BootstrapPaired(qs, correct, thresholdStat, resamples, level, s.Config.Seed+100); err != nil {
		return nil, fmt.Errorf("eval: bootstrapping threshold: %w", err)
	}
	imp, err := ImprovementExperiment(s)
	if err != nil {
		return nil, err
	}
	res.DiscardRate = imp.Stats.DiscardRate()
	if res.DiscardCI, err = stat.BootstrapPaired(qs, correct, discardStat, resamples, level, s.Config.Seed+101); err != nil {
		return nil, fmt.Errorf("eval: bootstrapping discard rate: %w", err)
	}
	return res, nil
}

// thresholdOf reruns the §2.3 analysis on one (scores, labels) resample.
func thresholdOf(q []float64, lab []bool) (float64, error) {
	var right, wrong []float64
	for i, v := range q {
		if lab[i] {
			right = append(right, v)
		} else {
			wrong = append(wrong, v)
		}
	}
	if len(right) == 0 || len(wrong) == 0 {
		return 0, stat.ErrNoData
	}
	gr, err := stat.FitGaussianMLE(right)
	if err != nil {
		return 0, err
	}
	gw, err := stat.FitGaussianMLE(wrong)
	if err != nil {
		return 0, err
	}
	s, err := stat.Intersect(gw, gr, 0, 1)
	if err != nil {
		return 0.5 * (gw.Mu + gr.Mu), nil
	}
	return s, nil
}

// Render summarizes the bootstrap analysis.
func (r *ConfidenceResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Bootstrap confidence — how much does a 24-point evaluation pin down?\n")
	fmt.Fprintf(&sb, "  threshold s    %.3f, %2.0f%% CI [%.3f, %.3f] (width %.3f)\n",
		r.Threshold, 100*r.ThreshCI.Level, r.ThreshCI.Lo, r.ThreshCI.Hi, r.ThreshCI.Width())
	fmt.Fprintf(&sb, "  discard rate   %.3f, %2.0f%% CI [%.3f, %.3f]\n",
		r.DiscardRate, 100*r.DiscardCI.Level, r.DiscardCI.Lo, r.DiscardCI.Hi)
	return sb.String()
}
