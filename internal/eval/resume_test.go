package eval

import "testing"

func TestResumeExperimentBitIdentical(t *testing.T) {
	setup := canonicalSetup(t)
	for _, workers := range []int{1, 4} {
		res, err := ResumeExperiment(setup, ResumeConfig{
			Workers: workers,
			Epochs:  8,
			KillAt:  []int{2, 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("workers %d: %d rows, want 3 (two kills + torn)", workers, len(res.Rows))
		}
		for _, row := range res.Rows {
			if !row.Identical {
				t.Errorf("workers %d: kill %d (torn=%v) not bit-identical", workers, row.KillEpoch, row.Torn)
			}
			if row.ResumedFrom >= row.KillEpoch {
				t.Errorf("workers %d: resumed from %d at kill %d", workers, row.ResumedFrom, row.KillEpoch)
			}
		}
		torn := res.Rows[len(res.Rows)-1]
		if !torn.Torn || torn.Skipped != 1 {
			t.Errorf("workers %d: torn row = %+v, want Torn with 1 skipped", workers, torn)
		}
		// The torn checkpoint forces a one-epoch-earlier resume point than
		// the intact trial at the same kill epoch.
		intact := res.Rows[len(res.Rows)-2]
		if torn.ResumedFrom != intact.ResumedFrom-1 {
			t.Errorf("workers %d: torn resumed from %d, intact from %d", workers, torn.ResumedFrom, intact.ResumedFrom)
		}
	}
}

func TestResumeExperimentValidation(t *testing.T) {
	setup := canonicalSetup(t)
	if _, err := ResumeExperiment(setup, ResumeConfig{Epochs: 4, KillAt: []int{4}}); err == nil {
		t.Error("kill epoch == epochs accepted")
	}
	if _, err := ResumeExperiment(setup, ResumeConfig{Epochs: 4, KillAt: []int{0}}); err == nil {
		t.Error("kill epoch 0 accepted")
	}
}
