package eval

import (
	"fmt"
	"strings"

	"cqm/internal/classify"
	"cqm/internal/stat"
)

// AgnosticRow is the E5 result for one black-box classifier.
type AgnosticRow struct {
	Classifier string
	// RawAccuracy is the classifier's unfiltered test accuracy.
	RawAccuracy float64
	// AUC measures how well the CQM ranks right above wrong
	// classifications for this classifier.
	AUC float64
	// Threshold is the optimal s for this classifier's quality densities.
	Threshold float64
	// Improvement is the filtered-minus-raw accuracy gain.
	Improvement float64
	// DiscardRate is the fraction of classifications discarded at s.
	DiscardRate float64
}

// AgnosticismSweep runs the full CQM pipeline over several classifier
// types (E5): the paper's central claim is that the quality system is "an
// add-on for any context recognition system", so the gain must not depend
// on the classifier being a TSK-FIS.
func AgnosticismSweep(seed int64) ([]AgnosticRow, error) {
	trainers := []struct {
		name string
		tr   classify.Trainer
	}{
		{"tsk-fis", &classify.TSKTrainer{}},
		{"knn", &classify.KNNTrainer{K: 5}},
		{"naive-bayes", &classify.NaiveBayesTrainer{}},
		{"nearest-centroid", classify.NearestCentroidTrainer{}},
		{"decision-tree", &classify.DecisionTreeTrainer{}},
		{"softmax", &classify.SoftmaxTrainer{}},
	}
	rows := make([]AgnosticRow, 0, len(trainers))
	for _, t := range trainers {
		setup, err := NewSetup(SetupConfig{Seed: seed, Trainer: t.tr})
		if err != nil {
			return nil, fmt.Errorf("eval: agnosticism %s: %w", t.name, err)
		}
		row, err := agnosticRow(t.name, setup)
		if err != nil {
			return nil, fmt.Errorf("eval: agnosticism %s: %w", t.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func agnosticRow(name string, setup *Setup) (AgnosticRow, error) {
	qs, correct, _, err := setup.Measure.ScoreObservations(setup.TestObs)
	if err != nil {
		return AgnosticRow{}, err
	}
	imp, err := ImprovementExperiment(setup)
	if err != nil {
		return AgnosticRow{}, err
	}
	return AgnosticRow{
		Classifier:  name,
		RawAccuracy: imp.Stats.RawAccuracy(),
		AUC:         stat.AUC(stat.ROC(qs, correct)),
		Threshold:   setup.Analysis.Threshold,
		Improvement: imp.Stats.Improvement(),
		DiscardRate: imp.Stats.DiscardRate(),
	}, nil
}

// RenderAgnostic renders the E5 table.
func RenderAgnostic(rows []AgnosticRow) string {
	var sb strings.Builder
	sb.WriteString("E5 — CQM as a black-box add-on across classifiers\n")
	fmt.Fprintf(&sb, "  %-18s %8s %8s %10s %12s %9s\n",
		"classifier", "raw acc", "AUC", "threshold", "improvement", "discard")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-18s %8.3f %8.3f %10.3f %12.3f %8.1f%%\n",
			r.Classifier, r.RawAccuracy, r.AUC, r.Threshold, r.Improvement, 100*r.DiscardRate)
	}
	return sb.String()
}
