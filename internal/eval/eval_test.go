package eval

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"cqm/internal/core"
)

// The canonical setup is expensive; build it once per test binary.
var (
	setupOnce sync.Once
	setupVal  *Setup
	setupErr  error
)

func canonicalSetup(t testing.TB) *Setup {
	t.Helper()
	setupOnce.Do(func() {
		setupVal, setupErr = NewSetup(SetupConfig{Seed: DefaultSeed})
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return setupVal
}

func TestNewSetupShape(t *testing.T) {
	s := canonicalSetup(t)
	if len(s.TestObs) != 24 {
		t.Fatalf("test set has %d points, want 24", len(s.TestObs))
	}
	right, wrong := core.SplitByCorrectness(s.TestObs)
	if len(right) != 16 || len(wrong) != 8 {
		t.Fatalf("test set %d right / %d wrong, want 16/8", len(right), len(wrong))
	}
	if s.Analysis == nil || s.Measure == nil || s.Classifier == nil {
		t.Fatal("setup incomplete")
	}
	if len(s.TrainObs) == 0 || len(s.CheckObs) == 0 || len(s.PoolObs) == 0 {
		t.Fatal("observation sets empty")
	}
}

func TestNewSetupDeterministic(t *testing.T) {
	a, err := NewSetup(SetupConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSetup(SetupConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Analysis.Threshold != b.Analysis.Threshold {
		t.Errorf("thresholds differ: %v vs %v", a.Analysis.Threshold, b.Analysis.Threshold)
	}
	if len(a.TestObs) != len(b.TestObs) {
		t.Error("test sets differ")
	}
}

func TestNewSetupValidation(t *testing.T) {
	if _, err := NewSetup(SetupConfig{Seed: 1, TestRight: -1, TestWrong: 8}); err == nil {
		t.Error("negative test size accepted")
	}
}

func TestFigure5MatchesPaperShape(t *testing.T) {
	s := canonicalSetup(t)
	f5, err := Figure5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Points)+f5.Epsilon != 24 {
		t.Fatalf("%d points + %d ε, want 24", len(f5.Points), f5.Epsilon)
	}
	// Paper shape: right mean high, wrong mean low, well apart.
	if f5.MeanRight < 0.8 {
		t.Errorf("mean(right) = %v, want high", f5.MeanRight)
	}
	if f5.MeanWrong > 0.5 {
		t.Errorf("mean(wrong) = %v, want low", f5.MeanWrong)
	}
	if f5.MeanRight-f5.MeanWrong < 0.4 {
		t.Errorf("means not separated: %v vs %v", f5.MeanRight, f5.MeanWrong)
	}
	render := f5.Render()
	for _, want := range []string{"o", "+", "Figure 5", "mean(right)"} {
		if !strings.Contains(render, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure6MatchesPaperShape(t *testing.T) {
	s := canonicalSetup(t)
	f6, err := Figure6(s)
	if err != nil {
		t.Fatal(err)
	}
	if f6.Right.Mu <= f6.Wrong.Mu {
		t.Errorf("right mean %v below wrong mean %v", f6.Right.Mu, f6.Wrong.Mu)
	}
	if f6.Threshold <= f6.Wrong.Mu || f6.Threshold >= f6.Right.Mu {
		t.Errorf("threshold %v not between the means", f6.Threshold)
	}
	// Paper: threshold closer to the high end than the midpoint (s = 0.81)
	// because the training set has far more right than wrong samples.
	if f6.Threshold < 0.55 {
		t.Errorf("threshold %v, want paper-like (> 0.55)", f6.Threshold)
	}
	render := f6.Render()
	for _, want := range []string{"#", "*", "|", "s ="} {
		if !strings.Contains(render, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestProbabilityTable(t *testing.T) {
	s := canonicalSetup(t)
	rows := ProbabilityTable(s)
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	var ta, tr float64
	for _, r := range rows {
		switch r.Name {
		case "P(right | q > s)":
			ta = r.Measured
		case "P(wrong | q < s)":
			tr = r.Measured
		}
	}
	if ta != tr {
		t.Errorf("median-cut identity broken: %v vs %v", ta, tr)
	}
	if ta < 0.8 {
		t.Errorf("P(right|q>s) = %v, want >= 0.8 (paper 0.8112)", ta)
	}
	if out := RenderProbabilityTable(rows); !strings.Contains(out, "threshold s") {
		t.Error("render missing threshold row")
	}
}

func TestImprovementMatchesHeadline(t *testing.T) {
	s := canonicalSetup(t)
	imp, err := ImprovementExperiment(s)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: a third of the classifications discarded, all
	// of them wrong, improving the application's decision by 33 %.
	if rate := imp.Stats.DiscardRate(); rate < 0.25 || rate > 0.45 {
		t.Errorf("discard rate = %v, want ~1/3", rate)
	}
	if imp.Stats.DiscardedWrong < 7 {
		t.Errorf("discarded %d of 8 wrong, want >= 7", imp.Stats.DiscardedWrong)
	}
	if imp.Stats.Improvement() < 0.2 {
		t.Errorf("improvement = %v, want >= 0.2 (paper 0.33)", imp.Stats.Improvement())
	}
	if !imp.Separable {
		t.Error("canonical test set not separable (paper: fully separable)")
	}
	if out := imp.Render(); !strings.Contains(out, "discarded") {
		t.Error("render incomplete")
	}
}

func TestThresholdBalanceSweep(t *testing.T) {
	rows, err := ThresholdBalanceSweep(DefaultSeed, []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper: balanced training → s ≈ 0.5; skewed-right training → s high.
	sSkewed, sBalanced := rows[0].Threshold, rows[1].Threshold
	if sBalanced > sSkewed {
		t.Errorf("balanced threshold %v above skewed %v", sBalanced, sSkewed)
	}
	if sBalanced < 0.25 || sBalanced > 0.75 {
		t.Errorf("balanced threshold = %v, want ≈ 0.5", sBalanced)
	}
	if _, err := ThresholdBalanceSweep(DefaultSeed, []float64{1.5}); err == nil {
		t.Error("bad fraction accepted")
	}
	if out := RenderBalance(rows); !strings.Contains(out, "wrong fraction") {
		t.Error("render incomplete")
	}
}

func TestTestSizeSweep(t *testing.T) {
	rows, err := TestSizeSweep(DefaultSeed, []int{24, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AUC < 0.7 {
			t.Errorf("size %d AUC = %v, want >= 0.7", r.TestSize, r.AUC)
		}
	}
	// Paper: "For a large set of data the odds for separating the data are
	// worse" — the false-accept probability must not improve with size.
	if rows[1].PWrongAccept+1e-9 < rows[0].PWrongAccept {
		t.Errorf("larger set separated better: FA %v -> %v",
			rows[0].PWrongAccept, rows[1].PWrongAccept)
	}
	if _, err := TestSizeSweep(DefaultSeed, []int{3}); err == nil {
		t.Error("absurd size accepted")
	}
	if out := RenderSizes(rows); !strings.Contains(out, "separable") {
		t.Error("render incomplete")
	}
}

func TestCameraExperiment(t *testing.T) {
	s := canonicalSetup(t)
	res, err := CameraExperiment(s, CameraConfig{Seed: DefaultSeed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths == 0 {
		t.Fatal("no end-of-writing truths")
	}
	// The CQM-filtered camera must not be less precise than the trusting
	// one, and must actually filter something.
	if res.With.Precision() < res.Without.Precision() {
		t.Errorf("filtered precision %v below plain %v",
			res.With.Precision(), res.Without.Precision())
	}
	if res.With.Spurious > res.Without.Spurious {
		t.Errorf("filtered camera fired more spuriously: %d vs %d",
			res.With.Spurious, res.Without.Spurious)
	}
	if res.IgnoredEvents == 0 {
		t.Error("filter ignored nothing")
	}
	if res.With.Recall() == 0 {
		t.Error("filtered camera never fired")
	}
	if out := res.Render(); !strings.Contains(out, "cqm-filtered") {
		t.Error("render incomplete")
	}
}

func TestAgnosticismSweep(t *testing.T) {
	rows, err := AgnosticismSweep(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		// The add-on claim: whatever the classifier, the CQM ranks right
		// above wrong classifications far better than chance.
		if r.AUC < 0.7 {
			t.Errorf("%s: AUC = %v, want >= 0.7", r.Classifier, r.AUC)
		}
		if r.Improvement <= 0 {
			t.Errorf("%s: improvement = %v, want > 0", r.Classifier, r.Improvement)
		}
	}
	if out := RenderAgnostic(rows); !strings.Contains(out, "tsk-fis") {
		t.Error("render incomplete")
	}
}

func TestAblations(t *testing.T) {
	t.Run("hybrid", func(t *testing.T) {
		rows, err := AblationHybrid(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("%d rows", len(rows))
		}
		if rows[0].AUC < rows[1].AUC-0.1 {
			t.Errorf("full pipeline AUC %v well below LSE-only %v", rows[0].AUC, rows[1].AUC)
		}
	})
	t.Run("consequents", func(t *testing.T) {
		rows, err := AblationConsequents(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		// The paper's claim: linear consequents are better for the
		// reliability determination.
		if rows[0].AUC+1e-9 < rows[1].AUC {
			t.Errorf("linear AUC %v below constant %v", rows[0].AUC, rows[1].AUC)
		}
	})
	t.Run("clustering", func(t *testing.T) {
		rows, err := AblationClustering(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) < 3 {
			t.Fatalf("%d rows", len(rows))
		}
		if rows[0].AUC < 0.9 {
			t.Errorf("subtractive AUC = %v", rows[0].AUC)
		}
	})
	t.Run("density", func(t *testing.T) {
		rows, err := AblationDensity(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("%d rows", len(rows))
		}
		// On fully separable data both density models should earn the
		// full improvement.
		for _, r := range rows {
			if r.Improvement < 0.2 {
				t.Errorf("%s: improvement %v", r.Variant, r.Improvement)
			}
		}
	})
	t.Run("normalization", func(t *testing.T) {
		rows, err := AblationNormalization(DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("%d rows", len(rows))
		}
		if out := RenderAblation("x", rows); !strings.Contains(out, "raw clamped") {
			t.Error("render incomplete")
		}
	})
}

func TestDrawTestSetInsufficient(t *testing.T) {
	s := canonicalSetup(t)
	if _, err := drawTestSet(s.Measure, s.PoolObs[:2], 100, 100); !errors.Is(err, ErrInsufficient) {
		t.Errorf("err = %v, want ErrInsufficient", err)
	}
}
