package eval

import (
	"fmt"
	"strings"

	"cqm/internal/core"
	"cqm/internal/stat"
)

// BalanceRow is one point of the E6 class-balance sweep.
type BalanceRow struct {
	// WrongFraction is the fraction of wrong classifications in the
	// quality training set.
	WrongFraction float64
	// Threshold is the resulting optimal s.
	Threshold float64
}

// ThresholdBalanceSweep rebuilds the quality FIS with training sets of
// varying right/wrong balance and reports the optimal threshold (E6). The
// paper remarks: "If the training set has equal amount of right and wrong
// samples the measure would lead to a threshold s ≈ 0.5"; with mostly
// right samples the threshold sits high (0.81 in the paper).
func ThresholdBalanceSweep(seed int64, fractions []float64) ([]BalanceRow, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	base, err := NewSetup(SetupConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	right, wrong := core.SplitByCorrectness(append(base.TrainObs, base.CheckObs...))
	rows := make([]BalanceRow, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 || f >= 1 {
			return nil, fmt.Errorf("eval: wrong fraction %v outside (0,1)", f)
		}
		train, err := rebalance(right, wrong, f)
		if err != nil {
			return nil, err
		}
		m, err := core.Build(train, nil, base.Config.Build)
		if err != nil {
			return nil, fmt.Errorf("eval: rebuilding at fraction %v: %w", f, err)
		}
		// Analyze on a balanced-out test view drawn from the same pool.
		a, err := core.Analyze(m, base.TestObs)
		if err != nil {
			return nil, fmt.Errorf("eval: analyzing at fraction %v: %w", f, err)
		}
		rows = append(rows, BalanceRow{WrongFraction: f, Threshold: a.Threshold})
	}
	return rows, nil
}

// rebalance builds a training set with the requested wrong fraction,
// limited by the available samples.
func rebalance(right, wrong []core.Observation, wrongFrac float64) ([]core.Observation, error) {
	if len(right) == 0 || len(wrong) == 0 {
		return nil, core.ErrOneSided
	}
	// Choose counts n_w = f·n, n_r = (1−f)·n maximizing n within bounds.
	nFromWrong := float64(len(wrong)) / wrongFrac
	nFromRight := float64(len(right)) / (1 - wrongFrac)
	n := nFromWrong
	if nFromRight < n {
		n = nFromRight
	}
	nw := int(wrongFrac * n)
	nr := int((1 - wrongFrac) * n)
	if nw < 1 || nr < 1 {
		return nil, fmt.Errorf("%w: rebalance to %v impossible with %d right, %d wrong",
			ErrInsufficient, wrongFrac, len(right), len(wrong))
	}
	// Proportional interleave so every prefix (and thus the automatic
	// check split) keeps roughly the requested balance.
	out := make([]core.Observation, 0, nw+nr)
	ri, wi := 0, 0
	for ri < nr || wi < nw {
		// Emit whichever group is furthest behind its quota.
		rBehind := float64(ri)/float64(nr) <= float64(wi)/float64(nw)
		if (rBehind && ri < nr) || wi >= nw {
			out = append(out, right[ri])
			ri++
		} else {
			out = append(out, wrong[wi])
			wi++
		}
	}
	return out, nil
}

// RenderBalance renders the E6 balance table.
func RenderBalance(rows []BalanceRow) string {
	var sb strings.Builder
	sb.WriteString("E6a — threshold vs training-set balance (paper: balanced → s ≈ 0.5)\n")
	fmt.Fprintf(&sb, "  %-16s %10s\n", "wrong fraction", "threshold")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-16.2f %10.3f\n", r.WrongFraction, r.Threshold)
	}
	return sb.String()
}

// SizeRow is one point of the E6 test-size sweep.
type SizeRow struct {
	TestSize     int
	Separable    bool
	AUC          float64
	PWrongAccept float64
}

// TestSizeSweep grows the evaluation set and reports separability (E6):
// the paper warns "For a large set of data the odds for separating the
// data are worse" — perfect separation on 24 points does not survive
// hundreds.
func TestSizeSweep(seed int64, sizes []int) ([]SizeRow, error) {
	if len(sizes) == 0 {
		sizes = []int{24, 48, 96, 192}
	}
	rows := make([]SizeRow, 0, len(sizes))
	for _, n := range sizes {
		if n < 6 {
			return nil, fmt.Errorf("eval: test size %d too small", n)
		}
		wrong := n / 3
		right := n - wrong
		setup, err := NewSetup(SetupConfig{Seed: seed, TestRight: right, TestWrong: wrong})
		if err != nil {
			return nil, fmt.Errorf("eval: size %d: %w", n, err)
		}
		qs, correct, _, err := setup.Measure.ScoreObservations(setup.TestObs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizeRow{
			TestSize:     n,
			Separable:    setup.Analysis.Separable,
			AUC:          stat.AUC(stat.ROC(qs, correct)),
			PWrongAccept: setup.Analysis.PWrongAccept,
		})
	}
	return rows, nil
}

// RenderSizes renders the E6 size table.
func RenderSizes(rows []SizeRow) string {
	var sb strings.Builder
	sb.WriteString("E6b — separability vs test-set size (paper: larger sets separate worse)\n")
	fmt.Fprintf(&sb, "  %-10s %11s %8s %14s\n", "test size", "separable", "AUC", "P(wrong|q>s)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10d %11v %8.3f %14.4f\n", r.TestSize, r.Separable, r.AUC, r.PWrongAccept)
	}
	return sb.String()
}
