package eval

import (
	"fmt"
	"strings"

	"cqm/internal/stat"
)

// NoiseRow is one point of the noise-robustness sweep.
type NoiseRow struct {
	// Sigma is the accelerometer white-noise level in g.
	Sigma float64
	// RawAccuracy is the classifier's unfiltered test accuracy.
	RawAccuracy float64
	// AUC measures the quality ranking under this noise level.
	AUC float64
	// Improvement is the filtered-minus-raw accuracy gain at the optimal
	// threshold.
	Improvement float64
}

// NoiseRobustnessSweep rebuilds the whole pipeline at increasing sensor
// noise. The paper's hardware fixed this knob; the sweep shows the CQM's
// value is not an artifact of one noise level — the measure keeps ranking
// right above wrong classifications as the substrate degrades.
func NoiseRobustnessSweep(seed int64, sigmas []float64) ([]NoiseRow, error) {
	if len(sigmas) == 0 {
		sigmas = []float64{0.005, 0.02, 0.05, 0.1}
	}
	rows := make([]NoiseRow, 0, len(sigmas))
	for _, sigma := range sigmas {
		if sigma <= 0 {
			return nil, fmt.Errorf("eval: noise sigma %v must be positive", sigma)
		}
		setup, err := NewSetup(SetupConfig{Seed: seed, NoiseSigma: sigma})
		if err != nil {
			return nil, fmt.Errorf("eval: noise %v: %w", sigma, err)
		}
		qs, correct, _, err := setup.Measure.ScoreObservations(setup.TestObs)
		if err != nil {
			return nil, err
		}
		imp, err := ImprovementExperiment(setup)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NoiseRow{
			Sigma:       sigma,
			RawAccuracy: imp.Stats.RawAccuracy(),
			AUC:         stat.AUC(stat.ROC(qs, correct)),
			Improvement: imp.Stats.Improvement(),
		})
	}
	return rows, nil
}

// RenderNoise renders the sweep table.
func RenderNoise(rows []NoiseRow) string {
	var sb strings.Builder
	sb.WriteString("Noise robustness — CQM vs accelerometer noise level\n")
	fmt.Fprintf(&sb, "  %-12s %9s %8s %12s\n", "noise [g]", "raw acc", "AUC", "improvement")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-12.3f %9.3f %8.3f %12.3f\n", r.Sigma, r.RawAccuracy, r.AUC, r.Improvement)
	}
	return sb.String()
}
