package eval

import (
	"fmt"
	"strings"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/feature"
	"cqm/internal/sensor"
	"cqm/internal/stat"
)

// CueRow is one cue set's outcome.
type CueRow struct {
	Cues        string
	Dim         int
	RawAccuracy float64
	AUC         float64
	Improvement float64
}

// CueAblation compares cue sets: the paper's three per-axis standard
// deviations against richer pipelines. For each cue set the whole stack —
// classifier, quality FIS, threshold, filter — is rebuilt on data
// extracted with that pipeline.
func CueAblation(seed int64) ([]CueRow, error) {
	variants := []struct {
		name string
		pipe *feature.Pipeline
	}{
		{"stddev (paper)", feature.NewPipeline(feature.StdDev{})},
		{"stddev+domfreq", feature.NewPipeline(feature.StdDev{}, feature.DominantFreq{})},
		{"stddev+rms+range", feature.NewPipeline(feature.StdDev{}, feature.RMS{}, feature.Range{})},
		{"all cues", feature.NewPipeline(feature.StdDev{}, feature.Mean{}, feature.RMS{}, feature.Range{}, feature.ZeroCross{}, feature.DominantFreq{})},
	}
	rows := make([]CueRow, 0, len(variants))
	for _, v := range variants {
		row, err := cueVariant(seed, v.name, v.pipe)
		if err != nil {
			return nil, fmt.Errorf("eval: cue set %s: %w", v.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// cueVariant runs the full pipeline with one cue set.
func cueVariant(seed int64, name string, pipe *feature.Pipeline) (CueRow, error) {
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{Segments: []sensor.Segment{
			{Context: sensor.ContextLying, Duration: 12},
			{Context: sensor.ContextWriting, Duration: 12},
			{Context: sensor.ContextPlaying, Duration: 12},
		}}},
		WindowSize: 100,
		Pipeline:   pipe,
		Seed:       seed,
	})
	if err != nil {
		return CueRow{}, err
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		return CueRow{}, err
	}
	mixedScenarios := evaluationScenarios(1)
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios:  mixedScenarios,
		WindowSize: 100,
		WindowStep: 50,
		Pipeline:   pipe,
		Seed:       seed + 1,
	})
	if err != nil {
		return CueRow{}, err
	}
	mixed.Shuffle(seed + 2)
	trainSet, checkSet, testSet, err := mixed.Split(0.5, 0.2)
	if err != nil {
		return CueRow{}, err
	}
	trainObs, err := core.Observe(clf, trainSet)
	if err != nil {
		return CueRow{}, err
	}
	checkObs, err := core.Observe(clf, checkSet)
	if err != nil {
		return CueRow{}, err
	}
	testObs, err := core.Observe(clf, testSet)
	if err != nil {
		return CueRow{}, err
	}
	m, err := core.Build(trainObs, checkObs, core.BuildConfig{})
	if err != nil {
		return CueRow{}, err
	}
	a, err := core.Analyze(m, testObs)
	if err != nil {
		return CueRow{}, err
	}
	qs, correct, _, err := m.ScoreObservations(testObs)
	if err != nil {
		return CueRow{}, err
	}
	filter, err := core.NewFilter(m, clampThreshold(a.Threshold))
	if err != nil {
		return CueRow{}, err
	}
	stats, err := filter.Run(testObs)
	if err != nil {
		return CueRow{}, err
	}
	return CueRow{
		Cues:        name,
		Dim:         pipe.Dim(),
		RawAccuracy: stats.RawAccuracy(),
		AUC:         stat.AUC(stat.ROC(qs, correct)),
		Improvement: stats.Improvement(),
	}, nil
}

// RenderCues renders the cue-ablation table.
func RenderCues(rows []CueRow) string {
	var sb strings.Builder
	sb.WriteString("Cue ablation — classifier and CQM vs cue set\n")
	fmt.Fprintf(&sb, "  %-20s %5s %9s %8s %12s\n", "cue set", "dim", "raw acc", "AUC", "improvement")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-20s %5d %9.3f %8.3f %12.3f\n", r.Cues, r.Dim, r.RawAccuracy, r.AUC, r.Improvement)
	}
	return sb.String()
}
