package eval

import (
	"errors"
	"fmt"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/sensor"
)

// DefaultSeed is the canonical seed for the headline reproduction: its
// 24-point test set is fully separable, discards exactly the 8 wrong
// classifications (33 %), and places the optimal threshold near the
// paper's 0.81. Like the paper's single recording session, it is one
// concrete draw; the seed sweeps in the benchmarks report the spread.
const DefaultSeed = 12

// Evaluation errors.
var (
	// ErrInsufficient reports a pool without enough right or wrong
	// classifications to draw the requested test set.
	ErrInsufficient = errors.New("eval: not enough classified observations")
)

// SetupConfig parameterizes the canonical paper-evaluation fixture.
type SetupConfig struct {
	// Seed drives every random choice. Two setups with equal configs are
	// identical.
	Seed int64
	// TestRight and TestWrong size the evaluation test set. The defaults
	// (16 right, 8 wrong) reproduce the paper's 24-point set in which a
	// third of the classifications are wrong.
	TestRight, TestWrong int
	// Trainer builds the black-box classifier; nil uses the AwarePen's
	// TSK-FIS.
	Trainer classify.Trainer
	// Build configures the quality-FIS construction.
	Build core.BuildConfig
	// WindowSize is the readings per cue window. Default 100.
	WindowSize int
	// QualityTrainSize caps the number of observations the quality FIS is
	// built from. The default 48 matches the scale of the paper's
	// hand-collected data and reproduces its operating point (threshold
	// close to the high end, tight right density); 0 < size caps, a
	// negative value uses every available observation.
	QualityTrainSize int
	// NoiseSigma overrides the accelerometer's white-noise level in g for
	// every recording (0 keeps the hardware default) — the knob of the
	// noise-robustness sweep.
	NoiseSigma float64
}

func (c SetupConfig) withDefaults() SetupConfig {
	if c.TestRight == 0 {
		c.TestRight = 16
	}
	if c.TestWrong == 0 {
		c.TestWrong = 8
	}
	if c.Trainer == nil {
		c.Trainer = &classify.TSKTrainer{}
	}
	if c.WindowSize == 0 {
		c.WindowSize = 100
	}
	if c.QualityTrainSize == 0 {
		c.QualityTrainSize = 48
	}
	return c
}

// Setup is a fully assembled evaluation pipeline: trained classifier,
// built quality measure, labelled observation sets, and the statistical
// analysis over the drawn test set.
type Setup struct {
	Config     SetupConfig
	Classifier classify.Classifier
	Measure    *core.Measure
	// TrainObs and CheckObs built the quality FIS.
	TrainObs, CheckObs []core.Observation
	// PoolObs is the held-out pool the test set was drawn from.
	PoolObs []core.Observation
	// TestObs is the drawn evaluation set (paper: 24 points).
	TestObs []core.Observation
	// Analysis is the §2.3 statistical analysis over TestObs.
	Analysis *core.Analysis
}

// NewSetup assembles the paper's pipeline end to end on the synthetic
// AwarePen substrate:
//
//  1. Train the classifier on clean, transition-free recordings of the
//     nominal user.
//  2. Record mixed office sessions — nominal, heavy-handed, and erratic
//     users, with context transitions — and run the classifier over them.
//  3. Build the quality FIS from the resulting observations.
//  4. Draw the evaluation test set from a held-out pool: TestRight correct
//     and TestWrong incorrect classifications, mirroring the paper's
//     24-point set.
//  5. Run the statistical analysis over the test set.
func NewSetup(cfg SetupConfig) (*Setup, error) {
	cfg = cfg.withDefaults()
	if cfg.TestRight < 1 || cfg.TestWrong < 1 {
		return nil, fmt.Errorf("eval: test set needs right and wrong samples, got %d/%d",
			cfg.TestRight, cfg.TestWrong)
	}

	cleanScenarios := []*sensor.Scenario{{
		Segments: []sensor.Segment{
			{Context: sensor.ContextLying, Duration: 12},
			{Context: sensor.ContextWriting, Duration: 12},
			{Context: sensor.ContextPlaying, Duration: 12},
		},
	}}
	applyNoise(cleanScenarios, cfg.NoiseSigma)
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios:  cleanScenarios,
		WindowSize: cfg.WindowSize,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: generating classifier data: %w", err)
	}
	clf, err := cfg.Trainer.Train(clean)
	if err != nil {
		return nil, fmt.Errorf("eval: training classifier: %w", err)
	}

	mixedScenarios := evaluationScenarios(workloadScale(cfg))
	applyNoise(mixedScenarios, cfg.NoiseSigma)
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios:  mixedScenarios,
		WindowSize: cfg.WindowSize,
		WindowStep: cfg.WindowSize / 2,
		Seed:       cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: generating quality data: %w", err)
	}
	mixed.Shuffle(cfg.Seed + 2)
	trainSet, checkSet, poolSet, err := mixed.Split(0.5, 0.2)
	if err != nil {
		return nil, fmt.Errorf("eval: splitting quality data: %w", err)
	}

	s := &Setup{Config: cfg, Classifier: clf}
	if s.TrainObs, err = core.Observe(clf, trainSet); err != nil {
		return nil, fmt.Errorf("eval: observing train set: %w", err)
	}
	if s.CheckObs, err = core.Observe(clf, checkSet); err != nil {
		return nil, fmt.Errorf("eval: observing check set: %w", err)
	}
	if s.PoolObs, err = core.Observe(clf, poolSet); err != nil {
		return nil, fmt.Errorf("eval: observing pool: %w", err)
	}
	buildObs := s.TrainObs
	if cfg.QualityTrainSize > 0 && cfg.QualityTrainSize < len(buildObs) {
		buildObs = buildObs[:cfg.QualityTrainSize]
	}
	if s.Measure, err = core.Build(buildObs, s.CheckObs, cfg.Build); err != nil {
		return nil, fmt.Errorf("eval: building quality measure: %w", err)
	}
	if s.TestObs, err = drawTestSet(s.Measure, s.PoolObs, cfg.TestRight, cfg.TestWrong); err != nil {
		return nil, err
	}
	if s.Analysis, err = core.Analyze(s.Measure, s.TestObs); err != nil {
		return nil, fmt.Errorf("eval: analyzing test set: %w", err)
	}
	return s, nil
}

// applyNoise overrides the accelerometer noise of every scenario.
func applyNoise(scenarios []*sensor.Scenario, sigma float64) {
	if sigma == 0 {
		return
	}
	for _, s := range scenarios {
		s.Sensor.NoiseSigma = sigma
	}
}

// workloadScale sizes the recorded workload so the held-out pool reliably
// contains the requested number of right and wrong classifications even
// for accurate classifiers.
func workloadScale(cfg SetupConfig) int {
	n := cfg.TestRight + cfg.TestWrong
	scale := 2 + n/40
	return scale
}

// evaluationScenarios is the mixed workload the quality system learns
// from: nominal, heavy, light, and erratic users running office sessions
// with transitions, repeated `scale` times.
func evaluationScenarios(scale int) []*sensor.Scenario {
	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}, // erratic, writing ≈ playing
		{Amplitude: 0.5, Tempo: 0.8, Irregularity: 0.5}, // light-handed
		sensor.DefaultStyle(),
		{Amplitude: 2.2, Tempo: 1.2, Irregularity: 0.8},
		{Amplitude: 1.4, Tempo: 1.1, Irregularity: 0.4},
		{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9},
		sensor.DefaultStyle(),
	}
	if scale < 1 {
		scale = 1
	}
	out := make([]*sensor.Scenario, 0, scale*len(styles))
	for k := 0; k < scale; k++ {
		for _, st := range styles {
			out = append(out, sensor.OfficeSession(st))
		}
	}
	return out
}

// drawTestSet picks the first nRight correct and nWrong incorrect
// observations (in pool order) whose quality scores avoid the ε state,
// reproducing the paper's labelled 24-point evaluation set.
func drawTestSet(m *core.Measure, pool []core.Observation, nRight, nWrong int) ([]core.Observation, error) {
	var right, wrong []core.Observation
	for _, o := range pool {
		if _, err := m.Score(o.Cues, o.Class); err != nil {
			continue // ε state: not usable as an evaluation point
		}
		if o.Correct && len(right) < nRight {
			right = append(right, o)
		}
		if !o.Correct && len(wrong) < nWrong {
			wrong = append(wrong, o)
		}
		if len(right) == nRight && len(wrong) == nWrong {
			break
		}
	}
	if len(right) < nRight || len(wrong) < nWrong {
		return nil, fmt.Errorf("%w: drew %d/%d right, %d/%d wrong",
			ErrInsufficient, len(right), nRight, len(wrong), nWrong)
	}
	// Interleave deterministically: roughly every third point wrong, like
	// a session stream would produce.
	out := make([]core.Observation, 0, nRight+nWrong)
	ri, wi := 0, 0
	for len(out) < nRight+nWrong {
		for k := 0; k < 2 && ri < len(right); k++ {
			out = append(out, right[ri])
			ri++
		}
		if wi < len(wrong) {
			out = append(out, wrong[wi])
			wi++
		}
		if ri == len(right) && wi == len(wrong) {
			break
		}
	}
	return out, nil
}
