package particle

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func samplePacket() ContextPacket {
	return ContextPacket{
		Type:       TypeContext,
		Node:       NodeIDFromString("awarepen"),
		Seq:        1234,
		SentMillis: 567890,
		ClassID:    2,
		Quality:    0.8112,
		HasQuality: true,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != FrameLen {
		t.Fatalf("frame length %d, want %d", len(frame), FrameLen)
	}
	back, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != p.Type || back.Node != p.Node || back.Seq != p.Seq ||
		back.SentMillis != p.SentMillis || back.ClassID != p.ClassID {
		t.Errorf("round trip changed fields: %+v vs %+v", back, p)
	}
	if !back.HasQuality {
		t.Fatal("quality annotation lost")
	}
	if math.Abs(back.Quality-p.Quality) > 2*QualityResolution {
		t.Errorf("quality %v -> %v beyond fixed-point resolution", p.Quality, back.Quality)
	}
}

func TestEncodeDecodeNoQuality(t *testing.T) {
	p := samplePacket()
	p.HasQuality = false
	p.Quality = 0
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if back.HasQuality {
		t.Error("phantom quality appeared")
	}
}

func TestEncodeRejectsBadQuality(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		p := samplePacket()
		p.Quality = q
		if _, err := Encode(p); !errors.Is(err, ErrQuality) {
			t.Errorf("quality %v: err = %v", q, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := Encode(samplePacket())
	if err != nil {
		t.Fatal(err)
	}
	t.Run("short", func(t *testing.T) {
		if _, err := Decode(good[:10]); !errors.Is(err, ErrFrameLength) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad sync", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 0x00
		if _, err := Decode(bad); !errors.Is(err, ErrSync) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[1] = 99
		// Re-CRC so only the version is wrong.
		crc := CRC16(bad[:20])
		bad[20] = byte(crc >> 8)
		bad[21] = byte(crc)
		if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("corrupted payload", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[17] ^= 0x01
		if _, err := Decode(bad); !errors.Is(err, ErrCRC) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestEveryBitFlipIsDetected(t *testing.T) {
	// Single-bit corruption anywhere in the frame must never decode
	// silently: either the sync/version check or the CRC catches it.
	good, err := Encode(samplePacket())
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < FrameLen*8; bit++ {
		if _, err := Decode(FlipBit(good, bit)); err == nil {
			t.Fatalf("bit flip at %d decoded cleanly", bit)
		}
	}
}

func TestCRC16KnownValue(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1 — the standard check value.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16 = 0x%04X, want 0x29B1", got)
	}
	if got := CRC16(nil); got != 0xFFFF {
		t.Errorf("CRC16(empty) = 0x%04X, want init value", got)
	}
}

func TestNodeIDString(t *testing.T) {
	if got := NodeIDFromString("pen-1").String(); got != "pen-1" {
		t.Errorf("NodeID round trip = %q", got)
	}
	long := NodeIDFromString("a-very-long-appliance-name")
	if len(long.String()) != 8 {
		t.Errorf("long name not truncated: %q", long.String())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := ContextPacket{
			Type:       PacketType(1 + r.Intn(2)),
			Seq:        uint16(r.Intn(65536)),
			SentMillis: r.Uint32(),
			ClassID:    byte(r.Intn(4)),
			HasQuality: r.Intn(2) == 0,
		}
		r.Read(p.Node[:])
		if p.HasQuality {
			p.Quality = r.Float64()
		}
		frame, err := Encode(p)
		if err != nil {
			return false
		}
		back, err := Decode(frame)
		if err != nil {
			return false
		}
		if back.HasQuality != p.HasQuality {
			return false
		}
		if p.HasQuality && math.Abs(back.Quality-p.Quality) > 2*QualityResolution {
			return false
		}
		return back.Node == p.Node && back.Seq == p.Seq && back.ClassID == p.ClassID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	p := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeErrorTable drives every typed decode error from one table, so
// a new error class cannot ship without a row proving a frame triggers it.
// The reencode hook repairs the CRC after a header mutation, isolating the
// mutation under test from the checksum that would otherwise mask it.
func TestDecodeErrorTable(t *testing.T) {
	reCRC := func(frame []byte) []byte {
		crc := CRC16(frame[:20])
		frame[20] = byte(crc >> 8)
		frame[21] = byte(crc)
		return frame
	}
	cases := []struct {
		name   string
		mutate func(frame []byte) []byte
		want   error
	}{
		{"nil frame", func(f []byte) []byte { return nil }, ErrFrameLength},
		{"empty frame", func(f []byte) []byte { return f[:0] }, ErrFrameLength},
		{"one short", func(f []byte) []byte { return f[:FrameLen-1] }, ErrFrameLength},
		{"one long", func(f []byte) []byte { return append(f, 0x00) }, ErrFrameLength},
		{"sync zero", func(f []byte) []byte { f[0] = 0x00; return f }, ErrSync},
		{"sync inverted", func(f []byte) []byte { f[0] = ^f[0]; return reCRC(f) }, ErrSync},
		{"version zero", func(f []byte) []byte { f[1] = 0; return reCRC(f) }, ErrVersion},
		{"version future", func(f []byte) []byte { f[1] = Version + 1; return reCRC(f) }, ErrVersion},
		{"payload bit flip", func(f []byte) []byte { f[17] ^= 0x01; return f }, ErrCRC},
		{"node bit flip", func(f []byte) []byte { f[7] ^= 0x80; return f }, ErrCRC},
		{"checksum bit flip", func(f []byte) []byte { f[21] ^= 0x01; return f }, ErrCRC},
		{"quality above scale", func(f []byte) []byte {
			// 0x8000: past the q15 designated one but not the no-quality
			// sentinel — the only reachable ErrQuality on decode.
			f[18], f[19] = 0x80, 0x00
			return reCRC(f)
		}, ErrQuality},
		{"quality near sentinel", func(f []byte) []byte {
			f[18], f[19] = 0xFF, 0xFE
			return reCRC(f)
		}, ErrQuality},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			good, err := Encode(samplePacket())
			if err != nil {
				t.Fatal(err)
			}
			frame := tc.mutate(good)
			if _, err := Decode(frame); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
			// Typed means matchable: no error class may shadow another.
			for _, other := range []error{ErrFrameLength, ErrSync, ErrVersion, ErrCRC, ErrQuality} {
				if other != tc.want && errors.Is(err, other) {
					t.Errorf("error %v also matches %v", err, other)
				}
			}
		})
	}
}
