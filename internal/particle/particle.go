// Package particle implements the wire format of the paper's hardware
// platform: Particle Computer nodes broadcasting context over the
// AwareCon-style RF network. The AwarePen "was augmented with a Particle
// Computer as sensing and computing platform" (§5); every context event in
// the AwareOffice travels as one small radio packet.
//
// The format is a compact, fixed-layout frame:
//
//	offset size  field
//	0      1     sync byte (0xAA)
//	1      1     protocol version (1)
//	2      1     packet type
//	3      8     node identifier
//	11     2     sequence number (big endian)
//	13     4     send time, milliseconds (big endian)
//	17     1     context class identifier
//	18     2     quality, fixed-point q15 in [0,1]; 0xFFFF = no quality
//	20     2     CRC-16/CCITT over bytes 0..19
//
// Decoding verifies the sync byte, version, and CRC, so the lossy-medium
// simulation can flip bits and the receiver behaves like real hardware:
// corrupted frames are dropped, not misinterpreted.
package particle

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Frame layout constants.
const (
	// SyncByte marks the start of every frame.
	SyncByte = 0xAA
	// Version is the protocol version this codec speaks.
	Version = 1
	// FrameLen is the fixed frame length in bytes.
	FrameLen = 22
	// noQuality is the wire encoding of "no quality annotation".
	noQuality = 0xFFFF
	// qualityScale is the q15 fixed-point scale.
	qualityScale = 0x7FFF
)

// PacketType identifies the payload kind.
type PacketType byte

// Packet types.
const (
	// TypeContext carries a context classification event.
	TypeContext PacketType = 0x01
	// TypeHeartbeat carries liveness only.
	TypeHeartbeat PacketType = 0x02
)

// Codec errors.
var (
	// ErrFrameLength reports a frame of the wrong size.
	ErrFrameLength = errors.New("particle: bad frame length")
	// ErrSync reports a missing sync byte.
	ErrSync = errors.New("particle: bad sync byte")
	// ErrVersion reports an unsupported protocol version.
	ErrVersion = errors.New("particle: unsupported version")
	// ErrCRC reports a checksum mismatch (corrupted frame).
	ErrCRC = errors.New("particle: CRC mismatch")
	// ErrNodeID reports an invalid node identifier.
	ErrNodeID = errors.New("particle: bad node id")
	// ErrQuality reports a quality outside [0,1].
	ErrQuality = errors.New("particle: quality outside [0,1]")
)

// NodeID is the 8-byte Particle node identifier (location-based in the
// original hardware).
type NodeID [8]byte

// NodeIDFromString derives a NodeID from a name, truncating or
// zero-padding to 8 bytes.
func NodeIDFromString(name string) NodeID {
	var id NodeID
	copy(id[:], name)
	return id
}

// String renders the identifier, trimming trailing zero bytes.
func (n NodeID) String() string {
	end := len(n)
	for end > 0 && n[end-1] == 0 {
		end--
	}
	return string(n[:end])
}

// ContextPacket is the decoded form of a context frame.
type ContextPacket struct {
	// Type is the packet type.
	Type PacketType
	// Node identifies the sender.
	Node NodeID
	// Seq is the sender's 16-bit sequence number.
	Seq uint16
	// SentMillis is the send time in milliseconds of virtual time.
	SentMillis uint32
	// ClassID is the context class identifier (sensor.Context's ID).
	ClassID byte
	// Quality is the CQM annotation; valid when HasQuality.
	Quality float64
	// HasQuality distinguishes annotated frames.
	HasQuality bool
}

// Encode serializes the packet into a fresh frame.
func Encode(p ContextPacket) ([]byte, error) {
	if p.HasQuality && (p.Quality < 0 || p.Quality > 1 || math.IsNaN(p.Quality)) {
		return nil, fmt.Errorf("%w: %v", ErrQuality, p.Quality)
	}
	frame := make([]byte, FrameLen)
	frame[0] = SyncByte
	frame[1] = Version
	frame[2] = byte(p.Type)
	copy(frame[3:11], p.Node[:])
	binary.BigEndian.PutUint16(frame[11:13], p.Seq)
	binary.BigEndian.PutUint32(frame[13:17], p.SentMillis)
	frame[17] = p.ClassID
	q := uint16(noQuality)
	if p.HasQuality {
		q = uint16(math.Round(p.Quality * qualityScale))
	}
	binary.BigEndian.PutUint16(frame[18:20], q)
	binary.BigEndian.PutUint16(frame[20:22], CRC16(frame[:20]))
	return frame, nil
}

// Decode parses and verifies a frame.
func Decode(frame []byte) (ContextPacket, error) {
	if len(frame) != FrameLen {
		return ContextPacket{}, fmt.Errorf("%w: %d bytes, want %d", ErrFrameLength, len(frame), FrameLen)
	}
	if frame[0] != SyncByte {
		return ContextPacket{}, fmt.Errorf("%w: 0x%02X", ErrSync, frame[0])
	}
	if frame[1] != Version {
		return ContextPacket{}, fmt.Errorf("%w: %d", ErrVersion, frame[1])
	}
	if got, want := binary.BigEndian.Uint16(frame[20:22]), CRC16(frame[:20]); got != want {
		return ContextPacket{}, fmt.Errorf("%w: got 0x%04X, want 0x%04X", ErrCRC, got, want)
	}
	p := ContextPacket{
		Type:       PacketType(frame[2]),
		Seq:        binary.BigEndian.Uint16(frame[11:13]),
		SentMillis: binary.BigEndian.Uint32(frame[13:17]),
		ClassID:    frame[17],
	}
	copy(p.Node[:], frame[3:11])
	q := binary.BigEndian.Uint16(frame[18:20])
	if q != noQuality {
		if q > qualityScale {
			return ContextPacket{}, fmt.Errorf("%w: raw 0x%04X", ErrQuality, q)
		}
		p.Quality = float64(q) / qualityScale
		p.HasQuality = true
	}
	return p, nil
}

// QualityResolution is the worst-case quantization error of the q15
// quality encoding.
const QualityResolution = 0.5 / qualityScale

// CRC16 computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over data.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// FlipBit returns a copy of frame with bit `bit` inverted — the corruption
// primitive for the bit-error simulations.
func FlipBit(frame []byte, bit int) []byte {
	out := make([]byte, len(frame))
	copy(out, frame)
	if bit >= 0 && bit < len(out)*8 {
		out[bit/8] ^= 1 << (bit % 8)
	}
	return out
}
