package particle

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// seedFrames builds the fuzz corpus: a valid frame plus the mutations the
// fault harness produces in flight — truncation, version skew, bit flips.
func seedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	valid, err := Encode(ContextPacket{
		Type:       TypeContext,
		Node:       NodeIDFromString("awarepen"),
		Seq:        7,
		SentMillis: 1234,
		ClassID:    2,
		Quality:    0.5,
		HasQuality: true,
	})
	if err != nil {
		tb.Fatalf("Encode: %v", err)
	}
	truncated := valid[:FrameLen-3]
	skewed := append([]byte(nil), valid...)
	skewed[1] = Version + 1
	binary.BigEndian.PutUint16(skewed[20:22], CRC16(skewed[:20]))
	flipped := FlipBit(valid, 42)
	noQ, err := Encode(ContextPacket{Type: TypeHeartbeat, Node: NodeIDFromString("n"), Seq: 65535})
	if err != nil {
		tb.Fatalf("Encode: %v", err)
	}
	return [][]byte{valid, truncated, skewed, flipped, noQ, {}, {SyncByte}}
}

// FuzzFrameDecode throws arbitrary byte strings at the frame decoder: it
// must never panic, and any frame it accepts must re-encode to the exact
// same bytes (the codec is bijective on its accepted set).
func FuzzFrameDecode(f *testing.F) {
	for _, frame := range seedFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		p, err := Decode(frame)
		if err != nil {
			return
		}
		if p.HasQuality && (p.Quality < 0 || p.Quality > 1) {
			t.Fatalf("decoded quality %v outside [0,1]", p.Quality)
		}
		re, err := Encode(p)
		if err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		if !bytes.Equal(re, frame) {
			t.Fatalf("round trip diverged:\n in %x\nout %x", frame, re)
		}
	})
}
