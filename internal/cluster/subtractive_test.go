package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs generates three well-separated Gaussian blobs in 2D.
func threeBlobs(seed int64, perBlob int) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {5, 5}, {0, 5}}
	var data [][]float64
	for _, c := range centers {
		for i := 0; i < perBlob; i++ {
			data = append(data, []float64{
				c[0] + 0.3*r.NormFloat64(),
				c[1] + 0.3*r.NormFloat64(),
			})
		}
	}
	return data
}

func TestSubtractiveFindsThreeBlobs(t *testing.T) {
	data := threeBlobs(1, 40)
	res, err := Subtractive(data, SubtractiveConfig{Radius: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("found %d centers, want 3: %v", len(res.Centers), res.Centers)
	}
	// Each true blob center has a found center nearby.
	for _, truth := range [][]float64{{0, 0}, {5, 5}, {0, 5}} {
		best := math.Inf(1)
		for _, c := range res.Centers {
			if d := math.Sqrt(sqDist(truth, c)); d < best {
				best = d
			}
		}
		if best > 0.8 {
			t.Errorf("no center near %v (closest %.2f away)", truth, best)
		}
	}
}

func TestSubtractivePotentialsDescending(t *testing.T) {
	data := threeBlobs(2, 30)
	res, err := Subtractive(data, SubtractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Potentials); i++ {
		if res.Potentials[i] > res.Potentials[i-1]+1e-9 {
			t.Errorf("potentials not descending: %v", res.Potentials)
		}
	}
}

func TestSubtractiveCentersAreDataPoints(t *testing.T) {
	data := threeBlobs(3, 20)
	res, err := Subtractive(data, SubtractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Centers {
		found := false
		for _, p := range data {
			if sqDist(c, p) < 1e-18 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("center %v is not a data point", c)
		}
	}
}

func TestSubtractiveRadiusControlsGranularity(t *testing.T) {
	data := threeBlobs(4, 30)
	fine, err := Subtractive(data, SubtractiveConfig{Radius: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Subtractive(data, SubtractiveConfig{Radius: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(fine.Centers) < len(coarse.Centers) {
		t.Errorf("fine radius gave %d centers, coarse %d; want fine >= coarse",
			len(fine.Centers), len(coarse.Centers))
	}
}

func TestSubtractiveMaxClusters(t *testing.T) {
	data := threeBlobs(5, 30)
	res, err := Subtractive(data, SubtractiveConfig{Radius: 0.2, MaxClusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Errorf("got %d centers, want capped at 2", len(res.Centers))
	}
}

func TestSubtractiveSigmasMatchGenfis2(t *testing.T) {
	// σ_j = r_a·span_j/√8 for each dimension.
	data := [][]float64{{0, 0}, {1, 10}, {0.5, 5}}
	res, err := Subtractive(data, SubtractiveConfig{Radius: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	wantX := 0.5 * 1.0 / math.Sqrt(8)
	wantY := 0.5 * 10.0 / math.Sqrt(8)
	if math.Abs(res.Sigmas[0]-wantX) > 1e-12 || math.Abs(res.Sigmas[1]-wantY) > 1e-12 {
		t.Errorf("Sigmas = %v, want [%v %v]", res.Sigmas, wantX, wantY)
	}
}

func TestSubtractiveSinglePoint(t *testing.T) {
	res, err := Subtractive([][]float64{{1, 2}}, SubtractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 || res.Centers[0][0] != 1 || res.Centers[0][1] != 2 {
		t.Errorf("Centers = %v", res.Centers)
	}
}

func TestSubtractiveIdenticalPoints(t *testing.T) {
	data := [][]float64{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	res, err := Subtractive(data, SubtractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 {
		t.Errorf("identical points gave %d centers, want 1", len(res.Centers))
	}
}

func TestSubtractiveErrors(t *testing.T) {
	if _, err := Subtractive(nil, SubtractiveConfig{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Subtractive([][]float64{{1}, {1, 2}}, SubtractiveConfig{}); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged: %v", err)
	}
	bad := []SubtractiveConfig{
		{Radius: -1},
		{SquashFactor: -1},
		{AcceptRatio: 2},
		{AcceptRatio: 0.2, RejectRatio: 0.5},
		{MaxClusters: -1},
	}
	for i, cfg := range bad {
		if _, err := Subtractive([][]float64{{1}, {2}}, cfg); !errors.Is(err, ErrBadParam) {
			t.Errorf("bad config %d: %v", i, err)
		}
	}
}

func TestSubtractiveDeterministic(t *testing.T) {
	data := threeBlobs(6, 25)
	a, err := Subtractive(data, SubtractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Subtractive(data, SubtractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Centers) != len(b.Centers) {
		t.Fatal("non-deterministic center count")
	}
	for i := range a.Centers {
		if sqDist(a.Centers[i], b.Centers[i]) != 0 {
			t.Fatal("non-deterministic centers")
		}
	}
}

func TestSubtractiveCentersWithinDataRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(40)
		data := make([][]float64, n)
		for i := range data {
			data[i] = []float64{r.NormFloat64() * 3, r.NormFloat64() * 3}
		}
		res, err := Subtractive(data, SubtractiveConfig{})
		if err != nil {
			return false
		}
		b, _ := newBounds(data)
		for _, c := range res.Centers {
			for j, v := range c {
				if v < b.min[j]-1e-9 || v > b.min[j]+b.span[j]+1e-9 {
					return false
				}
			}
		}
		return len(res.Centers) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
