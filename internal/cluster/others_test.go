package cluster

import (
	"errors"
	"math"
	"testing"
)

func TestMountainFindsBlobPeaks(t *testing.T) {
	data := threeBlobs(7, 40)
	res, err := Mountain(data, MountainConfig{GridPerDim: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) < 3 {
		t.Fatalf("found %d peaks, want >= 3", len(res.Centers))
	}
	for _, truth := range [][]float64{{0, 0}, {5, 5}, {0, 5}} {
		best := math.Inf(1)
		for _, c := range res.Centers {
			if d := math.Sqrt(sqDist(truth, c)); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("no peak near %v (closest %.2f)", truth, best)
		}
	}
}

func TestMountainGridDependence(t *testing.T) {
	// The paper rejects mountain clustering for being "highly dependent on
	// the grid structure": a coarse grid must quantize the centers.
	data := threeBlobs(8, 40)
	coarse, err := Mountain(data, MountainConfig{GridPerDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With a 3-vertex grid, every center coordinate sits on the quantized
	// lattice {min, mid, max} per dimension — never on the actual blob
	// means unless they coincide with lattice points.
	b, _ := newBounds(data)
	for _, c := range coarse.Centers {
		for j, v := range c {
			norm := (v - b.min[j]) / b.span[j]
			onLattice := false
			for _, g := range []float64{0, 0.5, 1} {
				if math.Abs(norm-g) < 1e-9 {
					onLattice = true
				}
			}
			if !onLattice {
				t.Errorf("center coordinate %v not on the 3-point lattice", v)
			}
		}
	}
}

func TestMountainRejectsHighDims(t *testing.T) {
	row := make([]float64, 8)
	if _, err := Mountain([][]float64{row, row}, MountainConfig{}); !errors.Is(err, ErrBadParam) {
		t.Errorf("err = %v, want ErrBadParam for 8 dims", err)
	}
}

func TestMountainErrors(t *testing.T) {
	if _, err := Mountain(nil, MountainConfig{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	bad := []MountainConfig{
		{GridPerDim: 1},
		{Sigma: -1},
		{StopRatio: 2},
		{MaxClusters: -1},
	}
	for i, cfg := range bad {
		if _, err := Mountain([][]float64{{1}, {2}}, cfg); !errors.Is(err, ErrBadParam) {
			t.Errorf("bad config %d: %v", i, err)
		}
	}
}

func TestKMeansThreeBlobs(t *testing.T) {
	data := threeBlobs(9, 40)
	res, err := KMeans(data, KMeansConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("got %d centers", len(res.Centers))
	}
	for _, truth := range [][]float64{{0, 0}, {5, 5}, {0, 5}} {
		best := math.Inf(1)
		for _, c := range res.Centers {
			if d := math.Sqrt(sqDist(truth, c)); d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Errorf("no k-means center near %v (closest %.2f)", truth, best)
		}
	}
	if res.Inertia <= 0 {
		t.Errorf("Inertia = %v, want > 0 for noisy blobs", res.Inertia)
	}
	if len(res.Assignment) != len(data) {
		t.Error("assignment length mismatch")
	}
}

func TestKMeansAssignmentsAreNearest(t *testing.T) {
	data := threeBlobs(10, 20)
	res, err := KMeans(data, KMeansConfig{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range data {
		assigned := sqDist(p, res.Centers[res.Assignment[i]])
		for _, c := range res.Centers {
			if sqDist(p, c) < assigned-1e-12 {
				t.Fatalf("point %d not assigned to nearest center", i)
			}
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	data := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	res, err := KMeans(data, KMeansConfig{K: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-18 {
		t.Errorf("K=N inertia = %v, want 0", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, KMeansConfig{K: 2}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	if _, err := KMeans([][]float64{{1}}, KMeansConfig{K: 2}); !errors.Is(err, ErrBadParam) {
		t.Errorf("k>n: %v", err)
	}
	if _, err := KMeans([][]float64{{1}}, KMeansConfig{K: 0}); !errors.Is(err, ErrBadParam) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, KMeansConfig{K: 1}); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged: %v", err)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	data := threeBlobs(11, 25)
	a, _ := KMeans(data, KMeansConfig{K: 3, Seed: 42})
	b, _ := KMeans(data, KMeansConfig{K: 3, Seed: 42})
	for i := range a.Centers {
		if sqDist(a.Centers[i], b.Centers[i]) != 0 {
			t.Fatal("same seed produced different centers")
		}
	}
}

func TestFCMThreeBlobs(t *testing.T) {
	data := threeBlobs(12, 40)
	res, err := FCM(data, FCMConfig{C: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, truth := range [][]float64{{0, 0}, {5, 5}, {0, 5}} {
		best := math.Inf(1)
		for _, c := range res.Centers {
			if d := math.Sqrt(sqDist(truth, c)); d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Errorf("no FCM center near %v (closest %.2f)", truth, best)
		}
	}
}

func TestFCMMembershipRowsSumToOne(t *testing.T) {
	data := threeBlobs(13, 20)
	res, err := FCM(data, FCMConfig{C: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Memberships {
		var sum float64
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("membership out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestFCMHarden(t *testing.T) {
	m := [][]float64{
		{0.9, 0.1},
		{0.2, 0.8},
		{0.5, 0.5},
	}
	got := Harden(m)
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("Harden = %v", got)
	}
}

func TestFCMErrors(t *testing.T) {
	if _, err := FCM(nil, FCMConfig{C: 2}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	if _, err := FCM([][]float64{{1}}, FCMConfig{C: 5}); !errors.Is(err, ErrBadParam) {
		t.Errorf("c>n: %v", err)
	}
	if _, err := FCM([][]float64{{1}, {2}}, FCMConfig{C: 2, Fuzziness: 1}); !errors.Is(err, ErrBadParam) {
		t.Errorf("fuzziness=1: %v", err)
	}
	if _, err := FCM([][]float64{{1}, {1, 2}}, FCMConfig{C: 1}); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged: %v", err)
	}
}

func BenchmarkSubtractive(b *testing.B) {
	data := threeBlobs(1, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Subtractive(data, SubtractiveConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	data := threeBlobs(1, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(data, KMeansConfig{K: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
