package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// FCMConfig parameterizes fuzzy c-means.
type FCMConfig struct {
	// C is the number of clusters; required.
	C int
	// Fuzziness is the exponent m > 1 controlling membership softness.
	// Default 2.
	Fuzziness float64
	// MaxIter bounds the alternating optimization. Default 200.
	MaxIter int
	// Tol stops iteration when the membership matrix changes less than Tol
	// in max norm. Default 1e-6.
	Tol float64
	// Seed drives the deterministic random membership initialization.
	Seed int64
}

func (c FCMConfig) withDefaults() FCMConfig {
	if c.Fuzziness == 0 {
		c.Fuzziness = 2
	}
	if c.MaxIter == 0 {
		c.MaxIter = 200
	}
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
	return c
}

// FCMResult describes a fuzzy c-means clustering.
type FCMResult struct {
	Centers [][]float64
	// Memberships[i][k] is the degree to which point i belongs to cluster
	// k; each row sums to 1.
	Memberships [][]float64
	Iterations  int
	// Objective is the final weighted within-cluster scatter J_m.
	Objective float64
}

// FCM runs fuzzy c-means (Bezdek) with random membership initialization.
func FCM(data [][]float64, cfg FCMConfig) (*FCMResult, error) {
	cfg = cfg.withDefaults()
	if len(data) == 0 {
		return nil, ErrNoData
	}
	if cfg.C <= 0 || cfg.C > len(data) {
		return nil, fmt.Errorf("%w: c=%d for %d points", ErrBadParam, cfg.C, len(data))
	}
	if cfg.Fuzziness <= 1 {
		return nil, fmt.Errorf("%w: fuzziness %v must exceed 1", ErrBadParam, cfg.Fuzziness)
	}
	dims := len(data[0])
	for i, row := range data {
		if len(row) != dims {
			return nil, fmt.Errorf("%w: row %d has %d dims, want %d", ErrRagged, i, len(row), dims)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(data)
	u := make([][]float64, n)
	for i := range u {
		row := make([]float64, cfg.C)
		var sum float64
		for k := range row {
			row[k] = rng.Float64() + 1e-9
			sum += row[k]
		}
		for k := range row {
			row[k] /= sum
		}
		u[i] = row
	}

	centers := make([][]float64, cfg.C)
	for k := range centers {
		centers[k] = make([]float64, dims)
	}
	m := cfg.Fuzziness
	var iter int
	for iter = 0; iter < cfg.MaxIter; iter++ {
		// Update centers: v_k = Σ_i u_ik^m x_i / Σ_i u_ik^m.
		for k := 0; k < cfg.C; k++ {
			var denom float64
			num := make([]float64, dims)
			for i, p := range data {
				w := math.Pow(u[i][k], m)
				denom += w
				for d, v := range p {
					num[d] += w * v
				}
			}
			if denom == 0 {
				denom = 1e-12
			}
			for d := range num {
				num[d] /= denom
			}
			centers[k] = num
		}
		// Update memberships.
		var maxDelta float64
		exp := 2 / (m - 1)
		for i, p := range data {
			// Exact-hit handling: full membership to coincident centers.
			hit := -1
			for k, c := range centers {
				if sqDist(p, c) == 0 {
					hit = k
					break
				}
			}
			newRow := make([]float64, cfg.C)
			if hit >= 0 {
				newRow[hit] = 1
			} else {
				for k := range centers {
					dk := math.Sqrt(sqDist(p, centers[k]))
					var sum float64
					for l := range centers {
						dl := math.Sqrt(sqDist(p, centers[l]))
						sum += math.Pow(dk/dl, exp)
					}
					newRow[k] = 1 / sum
				}
			}
			for k := range newRow {
				if d := math.Abs(newRow[k] - u[i][k]); d > maxDelta {
					maxDelta = d
				}
			}
			u[i] = newRow
		}
		if maxDelta <= cfg.Tol {
			iter++
			break
		}
	}

	var obj float64
	for i, p := range data {
		for k, c := range centers {
			obj += math.Pow(u[i][k], m) * sqDist(p, c)
		}
	}
	return &FCMResult{
		Centers:     centers,
		Memberships: u,
		Iterations:  iter,
		Objective:   obj,
	}, nil
}

// Harden converts a fuzzy membership matrix into crisp assignments by
// maximum membership.
func Harden(memberships [][]float64) []int {
	out := make([]int, len(memberships))
	for i, row := range memberships {
		best := 0
		for k, v := range row {
			if v > row[best] {
				best = k
			}
		}
		out[i] = best
	}
	return out
}
