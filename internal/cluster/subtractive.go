package cluster

import (
	"context"
	"fmt"
	"math"

	"cqm/internal/obs"
	"cqm/internal/parallel"
)

// SubtractiveConfig parameterizes Chiu's subtractive clustering. The
// defaults follow Chiu (1997), the reference the paper cites for "good
// cluster determination".
type SubtractiveConfig struct {
	// Radius is the cluster neighbourhood radius r_a in normalized units
	// (each dimension scaled into [0,1]). Default 0.5.
	Radius float64
	// SquashFactor scales r_a into the penalty radius r_b = squash·r_a
	// that suppresses potential around accepted centers. Default 1.25.
	SquashFactor float64
	// AcceptRatio: a candidate whose remaining potential exceeds
	// AcceptRatio times the first center's potential is accepted outright.
	// Default 0.5.
	AcceptRatio float64
	// RejectRatio: a candidate below RejectRatio times the first potential
	// ends the search. Candidates in between are accepted only if they are
	// far enough from existing centers (Chiu's grey-zone criterion).
	// Default 0.15.
	RejectRatio float64
	// MaxClusters optionally caps the number of centers; 0 means no cap.
	MaxClusters int
	// Workers sets the parallelism of the O(n²) potential field and the
	// post-selection revision: 0 picks one worker per CPU (falling back
	// to serial below a size cutoff), 1 forces serial execution. The
	// result is bit-identical at every setting — each point's potential
	// is one serially-evaluated sum, so workers only change scheduling.
	Workers int
	// Metrics, when non-nil, instruments the worker pool (occupancy,
	// chunk counts and timings) on this registry.
	Metrics *obs.Registry
}

// withDefaults fills zero fields with Chiu's recommended values.
func (c SubtractiveConfig) withDefaults() SubtractiveConfig {
	if c.Radius == 0 {
		c.Radius = 0.5
	}
	if c.SquashFactor == 0 {
		c.SquashFactor = 1.25
	}
	if c.AcceptRatio == 0 {
		c.AcceptRatio = 0.5
	}
	if c.RejectRatio == 0 {
		c.RejectRatio = 0.15
	}
	return c
}

func (c SubtractiveConfig) validate() error {
	switch {
	case c.Radius <= 0 || c.Radius > 10:
		return fmt.Errorf("%w: radius %v", ErrBadParam, c.Radius)
	case c.SquashFactor <= 0:
		return fmt.Errorf("%w: squash factor %v", ErrBadParam, c.SquashFactor)
	case c.AcceptRatio <= 0 || c.AcceptRatio > 1:
		return fmt.Errorf("%w: accept ratio %v", ErrBadParam, c.AcceptRatio)
	case c.RejectRatio < 0 || c.RejectRatio > c.AcceptRatio:
		return fmt.Errorf("%w: reject ratio %v (accept %v)", ErrBadParam, c.RejectRatio, c.AcceptRatio)
	case c.MaxClusters < 0:
		return fmt.Errorf("%w: max clusters %v", ErrBadParam, c.MaxClusters)
	case c.Workers < 0:
		return fmt.Errorf("%w: workers %v", ErrBadParam, c.Workers)
	default:
		return nil
	}
}

// SubtractiveResult describes the clusters found.
type SubtractiveResult struct {
	// Centers are the cluster centers in the original (unnormalized) space.
	Centers [][]float64
	// Potentials are the (normalized-space) potentials at selection time,
	// in selection order; Potentials[0] is the global maximum P₁*.
	Potentials []float64
	// Sigmas are per-dimension Gaussian widths derived from the radius:
	// σ_j = r_a · span_j / √8 (the genfis2 convention), suitable as the
	// initial membership-function widths for one TSK rule per cluster.
	Sigmas []float64
}

// Parallelization constants for Subtractive. The grains shape the chunk
// partition and are therefore part of the deterministic-reduction
// contract: fixed here, never derived from worker count or environment.
const (
	// subtractiveCutoff is the input size below which the auto worker
	// setting stays serial (the O(n²) field is cheap enough).
	subtractiveCutoff = 512
	// potentialGrain chunks the O(n) per-point potential sums.
	potentialGrain = 8
	// revisionGrain chunks the O(1) per-point potential revisions.
	revisionGrain = 64
)

// Subtractive runs Chiu's subtractive clustering over data (rows are
// points). Every data point is a candidate center: the potential of point
// i is P_i = Σ_j exp(−α‖x_i−x_j‖²) with α = 4/r_a², computed in the unit
// hypercube. After selecting a center its neighbourhood potential is
// subtracted with β = 4/r_b².
func Subtractive(data [][]float64, cfg SubtractiveConfig) (*SubtractiveResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b, err := newBounds(data)
	if err != nil {
		return nil, err
	}
	norm := b.normalize(data)
	n := len(norm)

	alpha := 4 / (cfg.Radius * cfg.Radius)
	rb := cfg.SquashFactor * cfg.Radius
	beta := 4 / (rb * rb)

	pool := parallel.Auto(cfg.Workers, n, subtractiveCutoff)
	pool.Instrument(cfg.Metrics)

	// Initial potentials: P_i is one serially-evaluated inner sum, so
	// parallelizing over i is bit-identical to the serial double loop.
	// The errors are always nil — the context is never cancelled.
	pot := make([]float64, n)
	_ = pool.ForEach(context.Background(), n, potentialGrain, func(i int) {
		var p float64
		for j := 0; j < n; j++ {
			p += math.Exp(-alpha * sqDist(norm[i], norm[j]))
		}
		pot[i] = p
	})

	var (
		centersNorm [][]float64
		potentials  []float64
	)
	firstPot := 0.0
	for {
		if cfg.MaxClusters > 0 && len(centersNorm) >= cfg.MaxClusters {
			break
		}
		// Highest remaining potential.
		best := 0
		for i := 1; i < n; i++ {
			if pot[i] > pot[best] {
				best = i
			}
		}
		p := pot[best]
		// !(p > 0) rather than p <= 0: a NaN potential (NaN parameters or
		// data) fails both comparisons of a <=, which would otherwise let
		// the selection loop run forever accepting the same point.
		if len(centersNorm) == 0 {
			if !(p > 0) {
				break
			}
			firstPot = p
		} else {
			if !(p > 0) {
				// Exhausted potential everywhere (possible when
				// RejectRatio is 0): nothing left worth selecting.
				goto done
			}
			switch {
			case p > cfg.AcceptRatio*firstPot:
				// Accept outright.
			case p < cfg.RejectRatio*firstPot:
				// Too weak: stop searching.
				pot[best] = 0
				goto done
			default:
				// Grey zone: accept only when the candidate trades
				// potential for distance (Chiu: d_min/r_a + P/P₁ ≥ 1).
				dmin := math.Inf(1)
				for _, c := range centersNorm {
					if d := math.Sqrt(sqDist(norm[best], c)); d < dmin {
						dmin = d
					}
				}
				if dmin/cfg.Radius+p/firstPot < 1 {
					// Reject this point and retry with the next best.
					pot[best] = 0
					continue
				}
			}
		}
		center := make([]float64, len(norm[best]))
		copy(center, norm[best])
		centersNorm = append(centersNorm, center)
		potentials = append(potentials, p)
		// Subtract the accepted center's influence. Elementwise revision:
		// each slot is revised by exactly one worker.
		_ = pool.ForEach(context.Background(), n, revisionGrain, func(i int) {
			pot[i] -= p * math.Exp(-beta*sqDist(norm[i], center))
			if pot[i] < 0 {
				pot[i] = 0
			}
		})
	}
done:
	if len(centersNorm) == 0 {
		return nil, fmt.Errorf("%w: no cluster center found", ErrNoData)
	}
	res := &SubtractiveResult{
		Centers:    make([][]float64, len(centersNorm)),
		Potentials: potentials,
		Sigmas:     make([]float64, len(b.span)),
	}
	for i, c := range centersNorm {
		res.Centers[i] = b.denormalize(c)
	}
	span := b.Span()
	for j := range res.Sigmas {
		res.Sigmas[j] = cfg.Radius * span[j] / math.Sqrt(8)
	}
	return res, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
