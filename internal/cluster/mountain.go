package cluster

import (
	"fmt"
	"math"
)

// MountainConfig parameterizes Yager–Filev mountain clustering. The paper
// considered it "suitable, but highly dependent on the grid structure" and
// chose subtractive clustering instead; it is implemented here for the
// ablation experiment that reproduces that judgement.
type MountainConfig struct {
	// GridPerDim is the number of grid vertices per dimension. Default 10.
	// The total grid is GridPerDim^dims vertices, so high-dimensional use
	// is intentionally painful — that is the point the paper makes.
	GridPerDim int
	// Sigma is the mountain-function width in normalized units. Default 0.1.
	Sigma float64
	// Beta is the destruction width used when flattening an accepted peak.
	// Default 1.5·Sigma.
	Beta float64
	// StopRatio ends the search when the next peak falls below
	// StopRatio times the first peak. Default 0.2.
	StopRatio float64
	// MaxClusters optionally caps the number of peaks; 0 means no cap.
	MaxClusters int
	// MaxDims rejects data whose dimensionality would make the grid
	// explode. Default 6.
	MaxDims int
}

func (c MountainConfig) withDefaults() MountainConfig {
	if c.GridPerDim == 0 {
		c.GridPerDim = 10
	}
	if c.Sigma == 0 {
		c.Sigma = 0.1
	}
	if c.Beta == 0 {
		c.Beta = 1.5 * c.Sigma
	}
	if c.StopRatio == 0 {
		c.StopRatio = 0.2
	}
	if c.MaxDims == 0 {
		c.MaxDims = 6
	}
	return c
}

func (c MountainConfig) validate() error {
	switch {
	case c.GridPerDim < 2:
		return fmt.Errorf("%w: grid per dim %d", ErrBadParam, c.GridPerDim)
	case c.Sigma <= 0:
		return fmt.Errorf("%w: sigma %v", ErrBadParam, c.Sigma)
	case c.Beta <= 0:
		return fmt.Errorf("%w: beta %v", ErrBadParam, c.Beta)
	case c.StopRatio <= 0 || c.StopRatio >= 1:
		return fmt.Errorf("%w: stop ratio %v", ErrBadParam, c.StopRatio)
	case c.MaxClusters < 0:
		return fmt.Errorf("%w: max clusters %d", ErrBadParam, c.MaxClusters)
	default:
		return nil
	}
}

// MountainResult describes the grid peaks selected as cluster centers.
type MountainResult struct {
	// Centers are peak locations in the original space. Unlike subtractive
	// clustering the centers are grid vertices, not data points.
	Centers [][]float64
	// Heights are the mountain-function values at selection time.
	Heights []float64
}

// Mountain runs mountain clustering: it builds a regular grid over the
// normalized data, computes the mountain function
// M(v) = Σ_j exp(−‖v−x_j‖²/(2σ²)) at every vertex, then repeatedly selects
// the highest vertex and subtracts its mountain.
func Mountain(data [][]float64, cfg MountainConfig) (*MountainResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b, err := newBounds(data)
	if err != nil {
		return nil, err
	}
	dims := len(data[0])
	if dims > cfg.MaxDims {
		return nil, fmt.Errorf("%w: %d dims exceed grid limit %d", ErrBadParam, dims, cfg.MaxDims)
	}
	norm := b.normalize(data)

	total := 1
	for d := 0; d < dims; d++ {
		total *= cfg.GridPerDim
	}
	// Vertex coordinates from the flat index.
	vertex := func(idx int) []float64 {
		v := make([]float64, dims)
		for d := 0; d < dims; d++ {
			v[d] = float64(idx%cfg.GridPerDim) / float64(cfg.GridPerDim-1)
			idx /= cfg.GridPerDim
		}
		return v
	}

	twoSigmaSq := 2 * cfg.Sigma * cfg.Sigma
	heights := make([]float64, total)
	vertices := make([][]float64, total)
	for i := 0; i < total; i++ {
		v := vertex(i)
		vertices[i] = v
		var h float64
		for _, x := range norm {
			h += math.Exp(-sqDist(v, x) / twoSigmaSq)
		}
		heights[i] = h
	}

	twoBetaSq := 2 * cfg.Beta * cfg.Beta
	var (
		centers [][]float64
		peaks   []float64
	)
	var firstPeak float64
	for {
		if cfg.MaxClusters > 0 && len(centers) >= cfg.MaxClusters {
			break
		}
		best := 0
		for i := 1; i < total; i++ {
			if heights[i] > heights[best] {
				best = i
			}
		}
		h := heights[best]
		if h <= 0 {
			break
		}
		if len(centers) == 0 {
			firstPeak = h
		} else if h < cfg.StopRatio*firstPeak {
			break
		}
		centers = append(centers, b.denormalize(vertices[best]))
		peaks = append(peaks, h)
		for i := 0; i < total; i++ {
			heights[i] -= h * math.Exp(-sqDist(vertices[i], vertices[best])/twoBetaSq)
			if heights[i] < 0 {
				heights[i] = 0
			}
		}
	}
	if len(centers) == 0 {
		return nil, fmt.Errorf("%w: no mountain peak found", ErrNoData)
	}
	return &MountainResult{Centers: centers, Heights: peaks}, nil
}
