package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeansConfig parameterizes Lloyd's algorithm with k-means++ seeding.
type KMeansConfig struct {
	// K is the number of clusters; required.
	K int
	// MaxIter bounds the Lloyd iterations. Default 100.
	MaxIter int
	// Seed drives the deterministic k-means++ initialization.
	Seed int64
	// Tol stops iteration when no center moves more than Tol. Default 1e-9.
	Tol float64
}

func (c KMeansConfig) withDefaults() KMeansConfig {
	if c.MaxIter == 0 {
		c.MaxIter = 100
	}
	if c.Tol == 0 {
		c.Tol = 1e-9
	}
	return c
}

// KMeansResult describes the clustering found.
type KMeansResult struct {
	Centers    [][]float64
	Assignment []int // data row → center index
	Inertia    float64
	Iterations int
}

// KMeans runs Lloyd's algorithm with k-means++ initialization. It returns
// ErrBadParam when K exceeds the number of points or is non-positive.
func KMeans(data [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	cfg = cfg.withDefaults()
	if len(data) == 0 {
		return nil, ErrNoData
	}
	if cfg.K <= 0 || cfg.K > len(data) {
		return nil, fmt.Errorf("%w: k=%d for %d points", ErrBadParam, cfg.K, len(data))
	}
	dims := len(data[0])
	for i, row := range data {
		if len(row) != dims {
			return nil, fmt.Errorf("%w: row %d has %d dims, want %d", ErrRagged, i, len(row), dims)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := kppInit(data, cfg.K, rng)
	assign := make([]int, len(data))

	var iter int
	for iter = 0; iter < cfg.MaxIter; iter++ {
		// Assignment step.
		for i, p := range data {
			best, bestD := 0, math.Inf(1)
			for k, c := range centers {
				if d := sqDist(p, c); d < bestD {
					best, bestD = k, d
				}
			}
			assign[i] = best
		}
		// Update step.
		sums := make([][]float64, cfg.K)
		counts := make([]int, cfg.K)
		for k := range sums {
			sums[k] = make([]float64, dims)
		}
		for i, p := range data {
			k := assign[i]
			counts[k]++
			for d, v := range p {
				sums[k][d] += v
			}
		}
		var moved float64
		for k := range centers {
			if counts[k] == 0 {
				// Re-seed an empty cluster at the farthest point from its
				// center to keep K clusters alive.
				far, farD := 0, -1.0
				for i, p := range data {
					if d := sqDist(p, centers[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(sums[k], data[far])
				counts[k] = 1
			}
			for d := range sums[k] {
				sums[k][d] /= float64(counts[k])
			}
			if d := math.Sqrt(sqDist(sums[k], centers[k])); d > moved {
				moved = d
			}
			centers[k] = sums[k]
		}
		if moved <= cfg.Tol {
			iter++
			break
		}
	}

	var inertia float64
	for i, p := range data {
		inertia += sqDist(p, centers[assign[i]])
	}
	return &KMeansResult{
		Centers:    centers,
		Assignment: assign,
		Inertia:    inertia,
		Iterations: iter,
	}, nil
}

// kppInit performs k-means++ seeding: the first center is uniform, each
// subsequent one is drawn with probability proportional to its squared
// distance from the nearest existing center.
func kppInit(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	first := data[rng.Intn(len(data))]
	centers = append(centers, cloneRow(first))
	d2 := make([]float64, len(data))
	for len(centers) < k {
		var total float64
		for i, p := range data {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centers: duplicate arbitrarily.
			centers = append(centers, cloneRow(data[rng.Intn(len(data))]))
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := len(data) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, cloneRow(data[pick]))
	}
	return centers
}

func cloneRow(r []float64) []float64 {
	out := make([]float64, len(r))
	copy(out, r)
	return out
}
