// Package cluster implements the structure-identification algorithms the
// CQM paper builds its fuzzy systems with (§2.2.1).
//
// The paper selects subtractive clustering (Chiu 1994) because it needs no
// prior cluster count and no grid: every data point is a candidate cluster
// center. Each cluster found becomes one TSK rule; the cluster center and
// the neighbourhood radius define the initial Gaussian membership
// functions.
//
// Mountain clustering (Yager & Filev), fuzzy c-means and k-means are
// implemented alongside for the ablation experiments that justify the
// paper's choice.
package cluster
