package cluster

import (
	"errors"
	"math/rand"
	"testing"
)

// randBlobs draws n points in dims dimensions around a few blob centers —
// clusterable data with deterministic seeding.
func randBlobs(rng *rand.Rand, n, dims int) [][]float64 {
	centers := 2 + rng.Intn(3)
	mu := make([][]float64, centers)
	for c := range mu {
		mu[c] = make([]float64, dims)
		for j := range mu[c] {
			mu[c][j] = rng.Float64() * 10
		}
	}
	data := make([][]float64, n)
	for i := range data {
		c := mu[i%centers]
		row := make([]float64, dims)
		for j := range row {
			row[j] = c[j] + rng.NormFloat64()*0.5
		}
		data[i] = row
	}
	return data
}

// sameSubtractive asserts exact equality of two clustering results. The
// == on floats is intentional: the parallel layer's whole contract is
// bit-identical outputs, so any ULP of drift is a bug.
func sameSubtractive(t *testing.T, label string, want, got *SubtractiveResult) {
	t.Helper()
	if len(got.Centers) != len(want.Centers) {
		t.Fatalf("%s: %d centers, want %d", label, len(got.Centers), len(want.Centers))
	}
	for c := range want.Centers {
		for j := range want.Centers[c] {
			//lint:ignore floatcmp the parallel contract is bit-identical output, so exact equality is the assertion
			if got.Centers[c][j] != want.Centers[c][j] {
				t.Fatalf("%s: center %d dim %d: %v != %v", label, c, j, got.Centers[c][j], want.Centers[c][j])
			}
		}
	}
	for c := range want.Potentials {
		//lint:ignore floatcmp the parallel contract is bit-identical output, so exact equality is the assertion
		if got.Potentials[c] != want.Potentials[c] {
			t.Fatalf("%s: potential %d: %v != %v", label, c, got.Potentials[c], want.Potentials[c])
		}
	}
	for j := range want.Sigmas {
		//lint:ignore floatcmp the parallel contract is bit-identical output, so exact equality is the assertion
		if got.Sigmas[j] != want.Sigmas[j] {
			t.Fatalf("%s: sigma %d: %v != %v", label, j, got.Sigmas[j], want.Sigmas[j])
		}
	}
}

// TestSubtractiveSerialParallelEquivalence is the clustering property
// test: serial and parallel runs must agree bit-for-bit on randomized
// seeded inputs for every worker count 2..8.
func TestSubtractiveSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		n := 40 + rng.Intn(360)
		dims := 1 + rng.Intn(4)
		data := randBlobs(rng, n, dims)
		cfg := SubtractiveConfig{
			Radius:      0.3 + rng.Float64()*0.4,
			RejectRatio: 0.1,
		}
		cfg.Workers = 1
		want, err := Subtractive(data, cfg)
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		for workers := 2; workers <= 8; workers++ {
			cfg.Workers = workers
			got, err := Subtractive(data, cfg)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			sameSubtractive(t, "trial", want, got)
		}
	}
}

func TestSubtractiveWorkersValidation(t *testing.T) {
	data := randBlobs(rand.New(rand.NewSource(1)), 30, 2)
	if _, err := Subtractive(data, SubtractiveConfig{Workers: -1}); !errors.Is(err, ErrBadParam) {
		t.Errorf("Workers=-1: err = %v, want ErrBadParam", err)
	}
	// Auto (0) must behave like any other setting result-wise.
	want, err := Subtractive(data, SubtractiveConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Subtractive(data, SubtractiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sameSubtractive(t, "auto", want, got)
}

// FuzzSubtractive drives clustering config and data edge cases: tiny and
// degenerate inputs, extreme ratios, every worker count. Valid configs
// must produce bit-identical serial/parallel results; invalid ones must
// fail with an error, never a panic or a hang.
func FuzzSubtractive(f *testing.F) {
	f.Add([]byte{}, 0.5, 1.25, 0.5, 0.15, 0, 4)                            // empty data
	f.Add([]byte{1, 2, 3}, 0.5, 1.25, 0.5, 0.15, 0, 2)                     // single dim, 3 points
	f.Add([]byte{9, 9, 9, 9, 9, 9}, 0.5, 1.25, 0.5, 0.15, 1, 8)            // identical points (zero span)
	f.Add([]byte{0, 255, 3, 7, 20, 250, 66, 91}, 0.2, 2.0, 0.9, 0.0, 0, 3) // reject ratio 0
	f.Add([]byte{5, 6, 7, 8}, -1.0, 1.25, 0.5, 0.15, 0, 1)                 // invalid radius
	f.Fuzz(func(t *testing.T, raw []byte, radius, squash, accept, reject float64, maxClusters, workers int) {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		dims := 1 + len(raw)%3
		n := len(raw) / dims
		data := make([][]float64, n)
		for i := range data {
			row := make([]float64, dims)
			for j := range row {
				row[j] = float64(raw[i*dims+j]) / 255
			}
			data[i] = row
		}
		workers = 2 + abs(workers)%7 // 2..8
		cfg := SubtractiveConfig{
			Radius:       radius,
			SquashFactor: squash,
			AcceptRatio:  accept,
			RejectRatio:  reject,
			MaxClusters:  maxClusters,
			Workers:      1,
		}
		want, serr := Subtractive(data, cfg)
		cfg.Workers = workers
		got, perr := Subtractive(data, cfg)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("serial err %v, workers=%d err %v", serr, workers, perr)
		}
		if serr != nil {
			return
		}
		sameSubtractive(t, "fuzz", want, got)
	})
}

func abs(v int) int {
	if v < 0 {
		// The int minimum has no positive counterpart; any fixed
		// in-range value keeps the fuzz input usable.
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}
