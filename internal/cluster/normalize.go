package cluster

import (
	"errors"
	"fmt"
)

// Clustering errors shared by the algorithms in this package.
var (
	// ErrNoData reports clustering over an empty data set.
	ErrNoData = errors.New("cluster: no data")
	// ErrRagged reports rows of differing dimensionality.
	ErrRagged = errors.New("cluster: ragged data rows")
	// ErrBadParam reports an out-of-range algorithm parameter.
	ErrBadParam = errors.New("cluster: invalid parameter")
)

// bounds holds per-dimension min/max used to map data into the unit
// hypercube and back.
type bounds struct {
	min, span []float64 // span is max−min, floored at a tiny epsilon
}

// newBounds scans the data once and records per-dimension ranges.
func newBounds(data [][]float64) (*bounds, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	dim := len(data[0])
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional rows", ErrRagged)
	}
	b := &bounds{
		min:  make([]float64, dim),
		span: make([]float64, dim),
	}
	max := make([]float64, dim)
	copy(b.min, data[0])
	copy(max, data[0])
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("%w: row %d has %d dims, want %d", ErrRagged, i, len(row), dim)
		}
		for j, v := range row {
			if v < b.min[j] {
				b.min[j] = v
			}
			if v > max[j] {
				max[j] = v
			}
		}
	}
	const minSpan = 1e-12
	for j := range b.span {
		b.span[j] = max[j] - b.min[j]
		if b.span[j] < minSpan {
			b.span[j] = minSpan
		}
	}
	return b, nil
}

// normalize maps every row into the unit hypercube (copies; the input is
// untouched).
func (b *bounds) normalize(data [][]float64) [][]float64 {
	out := make([][]float64, len(data))
	for i, row := range data {
		nr := make([]float64, len(row))
		for j, v := range row {
			nr[j] = (v - b.min[j]) / b.span[j]
		}
		out[i] = nr
	}
	return out
}

// denormalize maps a unit-hypercube point back to the original space.
func (b *bounds) denormalize(p []float64) []float64 {
	out := make([]float64, len(p))
	for j, v := range p {
		out[j] = v*b.span[j] + b.min[j]
	}
	return out
}

// Span returns the per-dimension data ranges (max−min); the FIS builder
// uses these to convert the neighbourhood radius into per-dimension
// Gaussian sigmas.
func (b *bounds) Span() []float64 {
	out := make([]float64, len(b.span))
	copy(out, b.span)
	return out
}
