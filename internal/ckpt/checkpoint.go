package ckpt

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cqm/internal/anfis"
	"cqm/internal/obs"
)

// Checkpoint resolution errors.
var (
	// ErrNoCheckpoint reports a checkpoint directory with no usable
	// checkpoint (missing, empty, or everything corrupt).
	ErrNoCheckpoint = errors.New("ckpt: no usable checkpoint")
	// ErrConfigMismatch reports a checkpoint written under a different
	// training configuration than the resume requested. Resuming across a
	// config change would silently blend two training runs, so it is
	// refused rather than skipped.
	ErrConfigMismatch = errors.New("ckpt: checkpoint config hash mismatch")
)

// bestCheckpointName is the best-so-far checkpoint file, overwritten
// atomically whenever an epoch becomes the kept snapshot.
const bestCheckpointName = "ckpt-best.json"

// CheckpointPath returns the periodic checkpoint file for an epoch.
func CheckpointPath(dir string, epoch int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%06d.json", epoch))
}

// BestCheckpointPath returns the best-so-far checkpoint file.
func BestCheckpointPath(dir string) string {
	return filepath.Join(dir, bestCheckpointName)
}

// CheckpointConfig parameterizes a Checkpointer.
type CheckpointConfig struct {
	// Dir is the checkpoint directory; created if missing.
	Dir string
	// Interval writes a periodic checkpoint every Interval epochs.
	// Default 1 (every epoch — the cadence exact kill-resume needs).
	Interval int
	// ConfigHash, when non-empty, is stamped into every checkpoint
	// manifest so LatestState can refuse resumes across a config change.
	ConfigHash string
	// Now supplies manifest timestamps; nil leaves CreatedAt zero. The
	// clock is injected so checkpointing stays deterministic in tests and
	// simulations.
	Now func() time.Time
	// Metrics, when non-nil, counts writes, write errors, and divergence
	// rollbacks on this registry.
	Metrics *obs.Registry
}

// Checkpointer persists ANFIS training state through the
// TrainObserver/SnapshotObserver hook path: a periodic checkpoint every
// Interval epochs plus a best-so-far checkpoint whenever the kept snapshot
// changes. Write failures never interrupt training — they increment a
// counter and the run continues on the previous checkpoint cadence.
type Checkpointer struct {
	cfg CheckpointConfig
	met ckptMetrics

	mu        sync.Mutex
	last      *anfis.TrainState
	stop      *anfis.StopEvent
	writeErrs int
}

// NewCheckpointer creates the checkpoint directory and returns a
// checkpointer ready to be passed as (part of) an anfis Observer.
func NewCheckpointer(cfg CheckpointConfig) (*Checkpointer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ckpt: checkpoint dir must be set")
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("ckpt: checkpoint interval %d", cfg.Interval)
	}
	if cfg.Interval == 0 {
		cfg.Interval = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating checkpoint dir: %w", err)
	}
	return &Checkpointer{cfg: cfg, met: newCkptMetrics(cfg.Metrics)}, nil
}

// TrainEpoch implements anfis.TrainObserver; it counts divergence
// rollbacks (the state capture itself arrives through TrainSnapshot).
func (c *Checkpointer) TrainEpoch(ev anfis.EpochEvent) {
	if ev.Diverged {
		c.met.divergence.Inc()
	}
}

// TrainStop implements anfis.TrainObserver, recording the stopping
// decision for manifest enrichment by the caller.
func (c *Checkpointer) TrainStop(ev anfis.StopEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stop = &ev
}

// TrainSnapshot implements anfis.SnapshotObserver: it keeps the newest
// finite state in memory and writes the periodic and best-so-far
// checkpoint artifacts.
func (c *Checkpointer) TrainSnapshot(ev anfis.SnapshotEvent) {
	st := ev.State
	if st == nil || !stateFinite(st) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last = st
	if st.Epoch%c.cfg.Interval == 0 {
		c.write(CheckpointPath(c.cfg.Dir, st.Epoch), st)
	}
	if ev.Best {
		c.write(BestCheckpointPath(c.cfg.Dir), st)
	}
}

// write persists one checkpoint artifact; failures are counted, not fatal.
func (c *Checkpointer) write(path string, st *anfis.TrainState) {
	man := Manifest{
		Kind:       KindCheckpoint,
		ConfigHash: c.cfg.ConfigHash,
		Epoch:      st.Epoch,
		BestEpoch:  st.BestEpoch,
		TrainRMSE:  st.TrainRMSE[len(st.TrainRMSE)-1],
	}
	if len(st.CheckRMSE) > 0 {
		man.CheckRMSE = st.CheckRMSE[len(st.CheckRMSE)-1]
	}
	if c.cfg.Now != nil {
		man.CreatedAt = c.cfg.Now()
	}
	if err := WriteArtifact(path, man, st); err != nil {
		c.writeErrs++
		c.met.writeErrors.Inc()
		return
	}
	c.met.writes.Inc()
}

// LastState returns a copy of the newest finite state seen, or nil before
// the first completed epoch. Divergence-recovery paths restart from it
// without touching the disk.
func (c *Checkpointer) LastState() *anfis.TrainState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last.Clone()
}

// LastStop returns the recorded stopping decision, if training finished.
func (c *Checkpointer) LastStop() (anfis.StopEvent, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop == nil {
		return anfis.StopEvent{}, false
	}
	return *c.stop, true
}

// WriteErrors returns the number of checkpoint writes that failed.
func (c *Checkpointer) WriteErrors() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeErrs
}

// stateFinite reports whether every scalar in the state serializes to
// JSON — i.e. is neither NaN nor ±Inf. Train never snapshots a diverged
// epoch, but a finite-RMSE state can still carry non-finite parameters in
// pathological cases, and a checkpoint that cannot round-trip is worse
// than none.
func stateFinite(st *anfis.TrainState) bool {
	finite := func(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
	if !finite(st.BestError) || !finite(st.PrevTrain) || !finite(st.Rate) {
		return false
	}
	for _, v := range st.TrainRMSE {
		if !finite(v) {
			return false
		}
	}
	for _, v := range st.CheckRMSE {
		if !finite(v) {
			return false
		}
	}
	for _, v := range st.LearningRates {
		if !finite(v) {
			return false
		}
	}
	return true
}

// Resume is the result of locating the newest usable checkpoint.
type Resume struct {
	// State is the training state to hand to anfis.Config.Resume.
	State *anfis.TrainState
	// Manifest is the checkpoint artifact's manifest.
	Manifest Manifest
	// Skipped counts corrupt or invalid checkpoint files that were
	// bypassed (each also increments cqm_ckpt_skipped_total).
	Skipped int
}

// LatestState locates the newest usable checkpoint in dir: periodic
// checkpoint files are tried newest-epoch-first, corrupt or invalid ones
// are skipped with a warning counter, and the first one that decodes and
// validates wins. A non-empty configHash must match the checkpoint's
// manifest (ErrConfigMismatch otherwise); ErrNoCheckpoint reports that
// nothing usable exists.
func LatestState(dir, configHash string, reg *obs.Registry) (*Resume, error) {
	met := newCkptMetrics(reg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoCheckpoint, err)
	}
	type candidate struct {
		epoch int
		name  string
	}
	var cands []candidate
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".json") || name == bestCheckpointName {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".json")
		epoch, err := strconv.Atoi(num)
		if err != nil || epoch < 0 {
			continue
		}
		cands = append(cands, candidate{epoch: epoch, name: name})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no checkpoint files in %s", ErrNoCheckpoint, dir)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].epoch > cands[j].epoch })
	met.resumes.Inc()
	skipped := 0
	for _, cand := range cands {
		var st anfis.TrainState
		man, err := ReadArtifact(filepath.Join(dir, cand.name), KindCheckpoint, &st)
		if err == nil && configHash != "" && man.ConfigHash != configHash {
			return nil, fmt.Errorf("%w: checkpoint %s has hash %q, current config %q",
				ErrConfigMismatch, cand.name, man.ConfigHash, configHash)
		}
		if err == nil {
			err = st.Validate()
		}
		if err == nil && st.Epoch != cand.epoch {
			err = fmt.Errorf("%w: file %s claims epoch %d", ErrCorrupt, cand.name, st.Epoch)
		}
		if err != nil {
			skipped++
			met.skipped.Inc()
			continue
		}
		return &Resume{State: &st, Manifest: man, Skipped: skipped}, nil
	}
	return nil, fmt.Errorf("%w: all %d checkpoint files in %s are corrupt",
		ErrNoCheckpoint, len(cands), dir)
}
