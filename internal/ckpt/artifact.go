package ckpt

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// SchemaVersion is the on-disk artifact envelope version. Readers reject
// envelopes from a different version with ErrSchema instead of guessing.
const SchemaVersion = 1

// Artifact kinds. The kind in the manifest guards against loading one
// model family as another (a checkpoint as a serving model, say).
const (
	// KindMeasure is a serialized core.Measure (the quality FIS).
	KindMeasure = "measure"
	// KindClassifier is a serialized context classifier.
	KindClassifier = "classifier"
	// KindCheckpoint is a serialized anfis.TrainState.
	KindCheckpoint = "checkpoint"
	// KindQualityReference is a training-time quality reference
	// distribution (quality.Reference) used for serving-time drift
	// detection.
	KindQualityReference = "quality-reference"
)

// Typed artifact errors. Callers branch on these with errors.Is.
var (
	// ErrCorrupt reports an artifact that does not decode: truncated,
	// torn, or structurally invalid JSON, or a payload that fails its own
	// validation.
	ErrCorrupt = errors.New("ckpt: artifact corrupt")
	// ErrChecksum reports a payload whose CRC32C does not match the
	// manifest — the bytes changed after the writer sealed them.
	ErrChecksum = errors.New("ckpt: artifact checksum mismatch")
	// ErrSchema reports an envelope written under a different schema
	// version.
	ErrSchema = errors.New("ckpt: artifact schema version skew")
	// ErrKind reports an artifact of the wrong kind for the requested use.
	ErrKind = errors.New("ckpt: artifact kind mismatch")
)

// Manifest describes an artifact: what it is, where it came from, and the
// training state it captures. CreatedAt comes from a caller-injected clock
// so library code never reads the wall clock.
type Manifest struct {
	// Schema is the envelope version; WriteArtifact stamps SchemaVersion.
	Schema int `json:"schema"`
	// Kind names the payload family (KindMeasure, KindClassifier,
	// KindCheckpoint).
	Kind string `json:"kind"`
	// CreatedAt is the caller-supplied creation time (zero when the caller
	// has no clock).
	CreatedAt time.Time `json:"created_at"`
	// ConfigHash fingerprints the training configuration that produced the
	// payload; resume and reload paths refuse silent config drift.
	ConfigHash string `json:"config_hash,omitempty"`
	// Epoch is the zero-based training epoch the payload captures.
	Epoch int `json:"epoch,omitempty"`
	// BestEpoch is the epoch of the best-so-far snapshot at capture time.
	BestEpoch int `json:"best_epoch,omitempty"`
	// TrainRMSE is the training error at Epoch.
	TrainRMSE float64 `json:"train_rmse,omitempty"`
	// CheckRMSE is the check-set error at Epoch (0 without a check set).
	CheckRMSE float64 `json:"check_rmse,omitempty"`
}

// envelope is the artifact wire format: manifest, verbatim payload, and a
// CRC32C (Castagnoli) checksum of the payload bytes in lowercase hex.
type envelope struct {
	Manifest Manifest        `json:"manifest"`
	Payload  json.RawMessage `json:"payload"`
	Checksum string          `json:"crc32c"`
}

// castagnoli is the CRC32C polynomial table shared by all artifacts.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteArtifact atomically persists payload at path inside a checksummed,
// versioned envelope. The manifest's Schema field is stamped with
// SchemaVersion; every other field is the caller's. The write is
// crash-safe: a reader sees either the previous complete file or the new
// complete file, never a torn mixture.
func WriteArtifact(path string, man Manifest, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("ckpt: encoding %s payload: %w", man.Kind, err)
	}
	man.Schema = SchemaVersion
	env := envelope{
		Manifest: man,
		Payload:  raw,
		Checksum: hex.EncodeToString(checksumBytes(raw)),
	}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: encoding %s envelope: %w", man.Kind, err)
	}
	return AtomicWriteFile(path, data, 0o644)
}

// checksumBytes returns the big-endian CRC32C of data.
func checksumBytes(data []byte) []byte {
	sum := crc32.Checksum(data, castagnoli)
	return []byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)}
}

// ReadArtifact loads the artifact at path, verifies its integrity, and
// decodes its payload into payload (skipped when payload is nil). kind, if
// non-empty, must match the manifest's kind. Failures carry the typed
// errors ErrCorrupt, ErrChecksum, ErrSchema, and ErrKind.
func ReadArtifact(path, kind string, payload any) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("ckpt: reading artifact: %w", err)
	}
	return DecodeArtifact(data, kind, payload)
}

// DecodeArtifact is ReadArtifact on in-memory bytes: envelope decode,
// checksum, schema, and kind verification, then payload decode. It never
// panics, whatever the input — the fuzz target FuzzCheckpointDecode pins
// that.
func DecodeArtifact(data []byte, kind string, payload any) (Manifest, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Manifest{}, fmt.Errorf("%w: envelope: %v", ErrCorrupt, err)
	}
	if len(env.Payload) == 0 {
		return env.Manifest, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	want, err := hex.DecodeString(env.Checksum)
	if err != nil || len(want) != 4 {
		return env.Manifest, fmt.Errorf("%w: unparseable checksum %q", ErrCorrupt, env.Checksum)
	}
	// The envelope is written indented for inspectability, which re-indents
	// the embedded payload; the checksum covers the canonical (compact)
	// payload bytes, so it is insensitive to whitespace and nothing else.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return env.Manifest, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	got := checksumBytes(compact.Bytes())
	for i := range want {
		if want[i] != got[i] {
			return env.Manifest, fmt.Errorf("%w: crc32c %s, manifest says %s",
				ErrChecksum, hex.EncodeToString(got), env.Checksum)
		}
	}
	if env.Manifest.Schema != SchemaVersion {
		return env.Manifest, fmt.Errorf("%w: file schema %d, reader schema %d",
			ErrSchema, env.Manifest.Schema, SchemaVersion)
	}
	if kind != "" && env.Manifest.Kind != kind {
		return env.Manifest, fmt.Errorf("%w: artifact is %q, want %q",
			ErrKind, env.Manifest.Kind, kind)
	}
	if payload != nil {
		if err := json.Unmarshal(env.Payload, payload); err != nil {
			return env.Manifest, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
		}
	}
	return env.Manifest, nil
}

// AtomicWriteFile writes data to path crash-safely: the bytes land in a
// temporary file in the same directory, are fsynced, and are renamed over
// path in one atomic step, followed by a directory sync so the rename
// itself is durable. On any error the temporary file is removed and the
// previous content of path is untouched.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return fmt.Errorf("ckpt: creating temp file: %w", err)
	}
	name := tmp.Name()
	fail := func(step string, err error) error {
		_ = tmp.Close()
		_ = os.Remove(name)
		return fmt.Errorf("ckpt: %s %s: %w", step, name, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("writing", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail("chmodding", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("ckpt: closing %s: %w", name, err)
	}
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("ckpt: renaming into place: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: opening dir for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("ckpt: syncing dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("ckpt: closing dir: %w", cerr)
	}
	return nil
}

// HashConfig fingerprints any JSON-serializable configuration value as a
// short hex string (CRC32C of its canonical JSON). Checkpoint manifests
// carry it so a resume under a changed config is refused instead of
// silently blending two training runs.
func HashConfig(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("ckpt: hashing config: %w", err)
	}
	return hex.EncodeToString(checksumBytes(raw)), nil
}
