package ckpt

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cqm/internal/anfis"
	"cqm/internal/cluster"
	"cqm/internal/fuzzy"
	"cqm/internal/obs"
)

// sineData samples y = sin(x + phase) over [0, 2π] — the deterministic
// fixture every resume test trains on.
func sineData(n int, phase float64) *anfis.Data {
	d := &anfis.Data{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		d.X[i] = []float64{x}
		d.Y[i] = math.Sin(x + phase)
	}
	return d
}

// buildSine constructs the initial FIS for the sine fixture.
func buildSine(t *testing.T, train *anfis.Data) *fuzzy.TSK {
	t.Helper()
	sys, err := anfis.Build(train, anfis.BuildConfig{
		Clustering: cluster.SubtractiveConfig{Radius: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// testClock is a deterministic manifest clock.
func testClock() time.Time {
	return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
}

// marshal byte-serializes v for bit-identity comparison.
func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

const totalEpochs = 12

// trainWithCheckpoints runs the sine fixture for epochs epochs with a
// per-epoch checkpointer writing into dir, returning the trained system.
func trainWithCheckpoints(t *testing.T, dir, hash string, epochs, workers int, resume *anfis.TrainState, reg *obs.Registry) *fuzzy.TSK {
	t.Helper()
	train, check := sineData(60, 0), sineData(25, 0.05)
	sys := buildSine(t, train)
	cp, err := NewCheckpointer(CheckpointConfig{
		Dir:        dir,
		ConfigHash: hash,
		Now:        testClock,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anfis.Train(sys, train, check, anfis.Config{
		Epochs:   epochs,
		Observer: cp,
		Workers:  workers,
		Resume:   resume,
	}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestKillResumeBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		// The reference: an uninterrupted run.
		want := marshal(t, trainWithCheckpoints(t, t.TempDir(), "h1", totalEpochs, workers, nil, nil))

		// The "killed" run: training stops cold after a few epochs — as a
		// SIGKILL at a random epoch would — leaving only its checkpoints.
		for _, killAt := range []int{3, 7, totalEpochs - 1} {
			dir := t.TempDir()
			trainWithCheckpoints(t, dir, "h1", killAt, workers, nil, nil)

			res, err := LatestState(dir, "h1", nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Skipped != 0 {
				t.Errorf("skipped %d checkpoints in a clean dir", res.Skipped)
			}
			got := marshal(t, trainWithCheckpoints(t, dir, "h1", totalEpochs, workers, res.State, nil))
			if got != want {
				t.Errorf("workers=%d kill@%d: resumed weights differ from uninterrupted run",
					workers, killAt)
			}
		}
	}
}

func TestKillResumeSkipsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	want := marshal(t, trainWithCheckpoints(t, t.TempDir(), "h1", totalEpochs, 1, nil, nil))
	trainWithCheckpoints(t, dir, "h1", 7, 1, nil, nil)

	// Simulate a torn write of the newest checkpoint. The atomic writer
	// makes real torn files impossible, so tear it by hand.
	newest := CheckpointPath(dir, 6)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	res, err := LatestState(dir, "h1", reg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", res.Skipped)
	}
	if got := reg.Counter(MetricCkptSkipped).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCkptSkipped, got)
	}
	if res.State.Epoch != 5 {
		t.Errorf("resumed from epoch %d, want 5", res.State.Epoch)
	}
	got := marshal(t, trainWithCheckpoints(t, dir, "h1", totalEpochs, 1, res.State, nil))
	if got != want {
		t.Error("resume past a torn checkpoint did not converge to the uninterrupted weights")
	}
}

func TestLatestStateErrors(t *testing.T) {
	t.Run("missing dir", func(t *testing.T) {
		_, err := LatestState(filepath.Join(t.TempDir(), "nope"), "", nil)
		if !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("err = %v, want ErrNoCheckpoint", err)
		}
	})
	t.Run("empty dir", func(t *testing.T) {
		_, err := LatestState(t.TempDir(), "", nil)
		if !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("err = %v, want ErrNoCheckpoint", err)
		}
	})
	t.Run("all corrupt", func(t *testing.T) {
		dir := t.TempDir()
		trainWithCheckpoints(t, dir, "h1", 3, 1, nil, nil)
		for epoch := 0; epoch < 3; epoch++ {
			if err := os.WriteFile(CheckpointPath(dir, epoch), []byte("{"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		_, err := LatestState(dir, "h1", nil)
		if !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("err = %v, want ErrNoCheckpoint", err)
		}
	})
	t.Run("config mismatch", func(t *testing.T) {
		dir := t.TempDir()
		trainWithCheckpoints(t, dir, "h1", 3, 1, nil, nil)
		_, err := LatestState(dir, "other", nil)
		if !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("err = %v, want ErrConfigMismatch", err)
		}
	})
	t.Run("no hash check when empty", func(t *testing.T) {
		dir := t.TempDir()
		trainWithCheckpoints(t, dir, "h1", 3, 1, nil, nil)
		if _, err := LatestState(dir, "", nil); err != nil {
			t.Errorf("hashless resume refused: %v", err)
		}
	})
}

func TestCheckpointerArtifacts(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	trainWithCheckpoints(t, dir, "h1", 5, 1, nil, reg)

	for epoch := 0; epoch < 4; epoch++ {
		var st anfis.TrainState
		man, err := ReadArtifact(CheckpointPath(dir, epoch), KindCheckpoint, &st)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if man.Epoch != epoch || man.ConfigHash != "h1" {
			t.Errorf("epoch %d manifest = %+v", epoch, man)
		}
		if !man.CreatedAt.Equal(testClock()) {
			t.Errorf("epoch %d CreatedAt = %v", epoch, man.CreatedAt)
		}
		if err := st.Validate(); err != nil {
			t.Errorf("epoch %d state invalid: %v", epoch, err)
		}
	}
	var best anfis.TrainState
	bestMan, err := ReadArtifact(BestCheckpointPath(dir), KindCheckpoint, &best)
	if err != nil {
		t.Fatal(err)
	}
	if bestMan.Epoch != best.Epoch {
		t.Errorf("best manifest epoch %d, state epoch %d", bestMan.Epoch, best.Epoch)
	}
	if got := reg.Counter(MetricCkptWrites).Value(); got == 0 {
		t.Errorf("%s = 0 after training", MetricCkptWrites)
	}
	if got := reg.Counter(MetricCkptWriteErrors).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", MetricCkptWriteErrors, got)
	}
}

func TestCheckpointerInterval(t *testing.T) {
	dir := t.TempDir()
	train, check := sineData(60, 0), sineData(25, 0.05)
	sys := buildSine(t, train)
	cp, err := NewCheckpointer(CheckpointConfig{Dir: dir, Interval: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anfis.Train(sys, train, check, anfis.Config{Epochs: 8, Observer: cp}); err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 7; epoch++ {
		_, statErr := os.Stat(CheckpointPath(dir, epoch))
		wantExists := epoch%3 == 0
		if gotExists := statErr == nil; gotExists != wantExists {
			t.Errorf("checkpoint for epoch %d: exists=%v, want %v", epoch, gotExists, wantExists)
		}
	}
	if st := cp.LastState(); st == nil {
		t.Error("LastState nil after training")
	}
	if _, ok := cp.LastStop(); !ok {
		t.Error("LastStop unset after training")
	}
}

func TestCheckpointerWriteErrorsDoNotAbort(t *testing.T) {
	dir := t.TempDir()
	cp, err := NewCheckpointer(CheckpointConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the checkpointer: every write
	// fails, training must still complete.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	train, check := sineData(60, 0), sineData(25, 0.05)
	sys := buildSine(t, train)
	hist, err := anfis.Train(sys, train, check, anfis.Config{Epochs: 4, Observer: cp})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.TrainRMSE) == 0 {
		t.Fatal("no epochs ran")
	}
	if cp.WriteErrors() == 0 {
		t.Error("write errors not counted")
	}
	if cp.LastState() == nil {
		t.Error("in-memory state lost on write failure")
	}
}

func TestNewCheckpointerValidation(t *testing.T) {
	if _, err := NewCheckpointer(CheckpointConfig{}); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := NewCheckpointer(CheckpointConfig{Dir: t.TempDir(), Interval: -1}); err == nil {
		t.Error("negative interval accepted")
	}
}
