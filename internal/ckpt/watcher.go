package ckpt

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cqm/internal/core"
	"cqm/internal/obs"
)

// LastGoodName is the default file name for the last accepted model,
// written next to the watched path so a restart can serve it immediately.
const LastGoodName = "model.lastgood.json"

// Handle is an atomically swappable reference to the served core.Measure.
// Scoring paths Load it once per unit of work (window, batch) so a swap
// mid-stream never mixes two models inside one scoring decision, and no
// score is ever dropped during a reload.
type Handle struct {
	ptr atomic.Pointer[core.Measure]
}

// NewHandle returns a handle serving m (which may be nil: empty handle).
func NewHandle(m *core.Measure) *Handle {
	h := &Handle{}
	if m != nil {
		h.ptr.Store(m)
	}
	return h
}

// Load returns the currently served measure, or nil when none is set.
func (h *Handle) Load() *core.Measure {
	if h == nil {
		return nil
	}
	return h.ptr.Load()
}

// Store atomically swaps the served measure.
func (h *Handle) Store(m *core.Measure) {
	h.ptr.Store(m)
}

// WatchConfig parameterizes a ModelWatcher.
type WatchConfig struct {
	// Path is the watched model artifact (kind "measure").
	Path string
	// LastGood is where accepted models are copied; default is
	// model.lastgood.json next to Path.
	LastGood string
	// Smoke validates a decoded candidate before it is swapped in; nil uses
	// SmokeProbe. A non-nil error rejects the candidate.
	Smoke func(*core.Measure) error
	// Metrics, when non-nil, counts reload attempts, successes, rejections,
	// and rollbacks on this registry.
	Metrics *obs.Registry
	// DeferLastGood stops Poll from copying an accepted candidate to the
	// last-good file automatically. A promotion supervisor sets this so the
	// last-good copy keeps holding the pre-promotion incumbent — the
	// rollback target — until the canary watch passes and it calls
	// MarkGood explicitly.
	DeferLastGood bool
}

// ModelWatcher polls a model artifact and hot-swaps the served measure
// behind a Handle. A candidate is accepted only if it decodes (envelope,
// checksum, schema, kind) and passes the smoke check; accepted models are
// also copied to the last-good file, and a rejected candidate leaves the
// handle untouched — serving continues on the previous model. An empty
// handle falls back to the last-good copy.
type ModelWatcher struct {
	cfg    WatchConfig
	handle *Handle
	met    reloadMetrics

	// generation counts handle swaps performed by this watcher (accepted
	// candidates and last-good fallbacks alike), monotonically.
	generation atomic.Int64

	mu       sync.Mutex
	seenMod  time.Time
	seenSize int64
	seenOnce bool

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool
	stopCh    chan struct{}
	done      chan struct{}
}

// NewModelWatcher watches path for handle. It does not poll by itself
// until Start; call Poll directly for single-shot (or externally
// scheduled) checks.
func NewModelWatcher(cfg WatchConfig, handle *Handle) (*ModelWatcher, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("ckpt: watch path must be set")
	}
	if handle == nil {
		return nil, fmt.Errorf("ckpt: watch handle must be set")
	}
	if cfg.LastGood == "" {
		cfg.LastGood = filepath.Join(filepath.Dir(cfg.Path), LastGoodName)
	}
	if cfg.Smoke == nil {
		cfg.Smoke = SmokeProbe
	}
	return &ModelWatcher{
		cfg:    cfg,
		handle: handle,
		met:    newReloadMetrics(cfg.Metrics),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Poll checks the watched path once. It reports whether a new model was
// swapped in; a nil error with swapped=false means "no change" or "file
// absent". A changed file is marked seen before validation, so a bad push
// is rejected once, not on every poll. When the handle is empty and the
// candidate was rejected (or absent), Poll falls back to the last-good
// copy.
func (w *ModelWatcher) Poll() (swapped bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()

	info, statErr := os.Stat(w.cfg.Path)
	changed := false
	if statErr == nil {
		if !w.seenOnce || !info.ModTime().Equal(w.seenMod) || info.Size() != w.seenSize {
			changed = true
			w.seenOnce = true
			w.seenMod = info.ModTime()
			w.seenSize = info.Size()
		}
	}

	if changed {
		w.met.attempts.Inc()
		man, m, loadErr := loadMeasure(w.cfg.Path, w.cfg.Smoke)
		if loadErr == nil {
			w.handle.Store(m)
			w.met.success.Inc()
			w.met.modelEpoch.Set(float64(man.Epoch))
			w.met.generation.Set(float64(w.generation.Add(1)))
			if !w.cfg.DeferLastGood {
				// Non-fatal — the model is already serving — but counted:
				// a failed copy means the rollback target is stale.
				if lgErr := w.persistLastGood(); lgErr != nil {
					w.met.lastGoodErrs.Inc()
				}
			}
			return true, nil
		}
		w.met.rejected.Inc()
		err = fmt.Errorf("ckpt: rejected candidate %s: %w", w.cfg.Path, loadErr)
	}

	// Serving continues on the previous model after a rejection; only an
	// empty handle needs the on-disk last-good fallback.
	if w.handle.Load() == nil {
		if man, m, lgErr := loadMeasure(w.cfg.LastGood, w.cfg.Smoke); lgErr == nil {
			w.handle.Store(m)
			w.met.rollbacks.Inc()
			w.met.modelEpoch.Set(float64(man.Epoch))
			w.met.generation.Set(float64(w.generation.Add(1)))
			return true, err
		}
	}
	return false, err
}

// Generation returns the number of handle swaps this watcher has performed
// (monotonic). Tests and the canary watcher compare generations around an
// operation to assert "exactly one swap happened" instead of sleeping.
func (w *ModelWatcher) Generation() int64 {
	return w.generation.Load()
}

// LastGoodPath returns the resolved last-good file path.
func (w *ModelWatcher) LastGoodPath() string {
	return w.cfg.LastGood
}

// MarkGood copies the currently watched artifact to the last-good file and
// reports whether the copy landed. Under DeferLastGood this is the
// explicit accept step a supervisor calls after its canary watch passes;
// a promotion supervisor must treat an error as "no rollback target" and
// refuse to overwrite the incumbent.
func (w *ModelWatcher) MarkGood() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.persistLastGood(); err != nil {
		w.met.lastGoodErrs.Inc()
		return err
	}
	return nil
}

// persistLastGood copies the watched artifact bytes to the last-good path
// atomically.
func (w *ModelWatcher) persistLastGood() error {
	data, err := os.ReadFile(w.cfg.Path)
	if err != nil {
		return fmt.Errorf("ckpt: reading %s for last-good copy: %w", w.cfg.Path, err)
	}
	if err := AtomicWriteFile(w.cfg.LastGood, data, 0o644); err != nil {
		return fmt.Errorf("ckpt: persisting last-good %s: %w", w.cfg.LastGood, err)
	}
	return nil
}

// loadMeasure reads a measure artifact and runs the smoke check.
func loadMeasure(path string, smoke func(*core.Measure) error) (Manifest, *core.Measure, error) {
	var m core.Measure
	man, err := ReadArtifact(path, KindMeasure, &m)
	if err != nil {
		return man, nil, err
	}
	if smoke != nil {
		if err := smoke(&m); err != nil {
			return man, nil, fmt.Errorf("smoke check: %w", err)
		}
	}
	return man, &m, nil
}

// SmokeProbe is the default candidate validation: the measure must expose
// a non-empty rule base, and evaluating the system at each rule's
// antecedent centers — inputs guaranteed to activate — must produce at
// least one finite raw score. A model that cannot score even its own rule
// centers would serve nothing but ε.
func SmokeProbe(m *core.Measure) error {
	sys := m.System()
	if sys == nil || sys.NumRules() == 0 {
		return fmt.Errorf("no rules")
	}
	finite := 0
	for j := 0; j < sys.NumRules(); j++ {
		rule := sys.Rule(j)
		v := make([]float64, sys.Inputs())
		for i, mf := range rule.Antecedent {
			v[i] = mf.Mu
		}
		raw, err := sys.Eval(v)
		if err != nil {
			continue
		}
		if !math.IsNaN(raw) && !math.IsInf(raw, 0) {
			finite++
		}
	}
	if finite == 0 {
		return fmt.Errorf("no rule center produced a finite score")
	}
	return nil
}

// Start polls every interval on a background goroutine until Stop. Poll
// errors are delivered to onErr when non-nil (rejected candidates are
// expected operational events, not crashes). Subsequent calls are no-ops.
func (w *ModelWatcher) Start(interval time.Duration, onErr func(error)) {
	w.startOnce.Do(func() {
		w.started.Store(true)
		ticker := time.NewTicker(interval)
		go func() {
			defer close(w.done)
			defer ticker.Stop()
			for {
				select {
				case <-w.stopCh:
					return
				case <-ticker.C:
					if _, err := w.Poll(); err != nil && onErr != nil {
						onErr(err)
					}
				}
			}
		}()
	})
}

// Stop terminates the polling goroutine and waits for it to exit. Safe to
// call multiple times; a watcher that was never started stops immediately.
func (w *ModelWatcher) Stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
	if w.started.Load() {
		<-w.done
	}
}
