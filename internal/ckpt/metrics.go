package ckpt

import "cqm/internal/obs"

// Metric names of the durability layer. Checkpointing registers under
// cqm_ckpt_*, hot reload under cqm_reload_*.
const (
	// MetricCkptWrites counts checkpoint artifacts written successfully.
	MetricCkptWrites = "cqm_ckpt_writes_total"
	// MetricCkptWriteErrors counts checkpoint writes that failed; training
	// continues, the failure is observable.
	MetricCkptWriteErrors = "cqm_ckpt_write_errors_total"
	// MetricCkptSkipped counts corrupt or invalid checkpoint files bypassed
	// while locating a resume point.
	MetricCkptSkipped = "cqm_ckpt_skipped_total"
	// MetricCkptResumes counts training runs restarted from a checkpoint.
	MetricCkptResumes = "cqm_ckpt_resumes_total"
	// MetricCkptDivergence counts NaN/Inf epochs rolled back to the best
	// finite snapshot.
	MetricCkptDivergence = "cqm_ckpt_divergence_rollbacks_total"
	// MetricReloadAttempts counts candidate-model evaluations by the
	// watcher (new or changed files only).
	MetricReloadAttempts = "cqm_reload_attempts_total"
	// MetricReloadSuccess counts candidate models accepted and swapped in.
	MetricReloadSuccess = "cqm_reload_success_total"
	// MetricReloadRejected counts candidate models refused by decode,
	// checksum, schema, kind, or smoke-score validation.
	MetricReloadRejected = "cqm_reload_rejected_total"
	// MetricReloadRollbacks counts loads of the on-disk last-good model
	// after a rejected candidate left nothing in memory.
	MetricReloadRollbacks = "cqm_reload_rollbacks_total"
	// MetricReloadModelEpoch is the training epoch of the currently served
	// model, from its manifest.
	MetricReloadModelEpoch = "cqm_reload_model_epoch"
	// MetricReloadGeneration is the watcher's monotonic swap count — how
	// many times the served model handle has been replaced.
	MetricReloadGeneration = "cqm_reload_generation"
	// MetricReloadLastGoodErrors counts failed copies of an accepted model
	// to the last-good file — each one means the rollback target is stale.
	MetricReloadLastGoodErrors = "cqm_reload_lastgood_errors_total"
)

// ckptMetrics are the pre-resolved checkpointing counters; the zero value
// (no registry) makes every update a nil-safe no-op.
type ckptMetrics struct {
	writes      *obs.Counter
	writeErrors *obs.Counter
	skipped     *obs.Counter
	resumes     *obs.Counter
	divergence  *obs.Counter
}

// newCkptMetrics resolves the checkpoint counters once.
func newCkptMetrics(reg *obs.Registry) ckptMetrics {
	if reg == nil {
		return ckptMetrics{}
	}
	reg.Help(MetricCkptWrites, "Checkpoint artifacts written successfully.")
	reg.Help(MetricCkptWriteErrors, "Checkpoint artifact writes that failed.")
	reg.Help(MetricCkptSkipped, "Corrupt checkpoint files bypassed during resume.")
	reg.Help(MetricCkptResumes, "Training runs restarted from a checkpoint.")
	reg.Help(MetricCkptDivergence, "Diverged epochs rolled back to the best finite snapshot.")
	return ckptMetrics{
		writes:      reg.Counter(MetricCkptWrites),
		writeErrors: reg.Counter(MetricCkptWriteErrors),
		skipped:     reg.Counter(MetricCkptSkipped),
		resumes:     reg.Counter(MetricCkptResumes),
		divergence:  reg.Counter(MetricCkptDivergence),
	}
}

// reloadMetrics are the pre-resolved hot-reload counters.
type reloadMetrics struct {
	attempts     *obs.Counter
	success      *obs.Counter
	rejected     *obs.Counter
	rollbacks    *obs.Counter
	lastGoodErrs *obs.Counter
	modelEpoch   *obs.Gauge
	generation   *obs.Gauge
}

// newReloadMetrics resolves the hot-reload metrics once.
func newReloadMetrics(reg *obs.Registry) reloadMetrics {
	if reg == nil {
		return reloadMetrics{}
	}
	reg.Help(MetricReloadAttempts, "Candidate model files evaluated by the watcher.")
	reg.Help(MetricReloadSuccess, "Candidate models accepted and swapped into serving.")
	reg.Help(MetricReloadRejected, "Candidate models refused by validation or smoke-score.")
	reg.Help(MetricReloadRollbacks, "Last-good model loads after a rejected candidate.")
	reg.Help(MetricReloadModelEpoch, "Training epoch of the currently served model.")
	reg.Help(MetricReloadGeneration, "Monotonic count of served-model handle swaps.")
	reg.Help(MetricReloadLastGoodErrors, "Failed last-good copies (stale rollback target).")
	return reloadMetrics{
		attempts:     reg.Counter(MetricReloadAttempts),
		success:      reg.Counter(MetricReloadSuccess),
		rejected:     reg.Counter(MetricReloadRejected),
		rollbacks:    reg.Counter(MetricReloadRollbacks),
		lastGoodErrs: reg.Counter(MetricReloadLastGoodErrors),
		modelEpoch:   reg.Gauge(MetricReloadModelEpoch),
		generation:   reg.Gauge(MetricReloadGeneration),
	}
}
