package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cqm/internal/anfis"
)

// FuzzCheckpointDecode throws arbitrary bytes at the artifact decoder. The
// contract under fuzzing: never panic, and any failure must carry one of
// the typed artifact errors so callers can branch on it.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"manifest":{"schema":1,"kind":"checkpoint"},"payload":{},"crc32c":"00000000"}`))
	f.Add([]byte(`{"manifest":{"schema":1,"kind":"checkpoint"},"payload":null,"crc32c":""}`))
	f.Add([]byte(`{"manifest":{"schema":2,"kind":"x"},"payload":1,"crc32c":"zz"}`))
	// A well-formed artifact as a mutation seed.
	seedPath := filepath.Join(f.TempDir(), "seed.json")
	seed := struct {
		V []float64 `json:"v"`
	}{V: []float64{0.5, 1}}
	if err := WriteArtifact(seedPath, Manifest{Kind: KindCheckpoint, Epoch: 1}, seed); err != nil {
		f.Fatal(err)
	}
	seedBytes, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seedBytes)

	f.Fuzz(func(t *testing.T, data []byte) {
		var st anfis.TrainState
		man, err := DecodeArtifact(data, KindCheckpoint, &st)
		if err != nil {
			known := errors.Is(err, ErrCorrupt) || errors.Is(err, ErrChecksum) ||
				errors.Is(err, ErrSchema) || errors.Is(err, ErrKind)
			if !known {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Success implies full integrity: right schema, right kind.
		if man.Schema != SchemaVersion || man.Kind != KindCheckpoint {
			t.Fatalf("accepted artifact with manifest %+v", man)
		}
	})
}
