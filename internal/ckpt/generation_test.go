package ckpt

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cqm/internal/obs"
)

// bumpMTime forces the watcher's change detection even when two writes
// land within the filesystem timestamp resolution.
func bumpMTime(t *testing.T, path string, s int64) {
	t.Helper()
	at := time.Unix(1_700_000_000+s, 0)
	if err := os.Chtimes(path, at, at); err != nil {
		t.Fatal(err)
	}
}

// TestWatcherGeneration asserts the swap counter increments exactly once
// per accepted swap, stays flat on no-change polls and rejections, and is
// mirrored on the cqm_reload_generation gauge.
func TestWatcherGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	reg := obs.NewRegistry()
	h := NewHandle(nil)
	w, err := NewModelWatcher(WatchConfig{Path: path, Metrics: reg}, h)
	if err != nil {
		t.Fatal(err)
	}
	if g := w.Generation(); g != 0 {
		t.Fatalf("initial generation = %d, want 0", g)
	}

	writeMeasureArtifact(t, path, testMeasure(t, 0.7), 1)
	bumpMTime(t, path, 1)
	if _, err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if g := w.Generation(); g != 1 {
		t.Fatalf("after first accept: generation = %d, want 1", g)
	}

	// Unchanged file: no swap.
	if _, err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if g := w.Generation(); g != 1 {
		t.Fatalf("after no-change poll: generation = %d, want 1", g)
	}

	// Rejected candidate: no swap.
	if err := os.WriteFile(path, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	bumpMTime(t, path, 2)
	if _, err := w.Poll(); err == nil {
		t.Fatal("expected rejection error")
	}
	if g := w.Generation(); g != 1 {
		t.Fatalf("after rejection: generation = %d, want 1", g)
	}

	// Second accepted candidate: exactly one more swap.
	writeMeasureArtifact(t, path, testMeasure(t, 0.8), 2)
	bumpMTime(t, path, 3)
	if _, err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if g := w.Generation(); g != 2 {
		t.Fatalf("after second accept: generation = %d, want 2", g)
	}
	if v := reg.Gauge(MetricReloadGeneration).Value(); v != 2 {
		t.Errorf("gauge %s = %v, want 2", MetricReloadGeneration, v)
	}
}

// TestWatcherDeferLastGood asserts DeferLastGood keeps the last-good file
// holding the previous incumbent across an accepted swap until MarkGood,
// so a canary supervisor retains its rollback target.
func TestWatcherDeferLastGood(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	h := NewHandle(nil)
	w, err := NewModelWatcher(WatchConfig{Path: path, DeferLastGood: true}, h)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.LastGoodPath(), filepath.Join(dir, LastGoodName); got != want {
		t.Fatalf("LastGoodPath = %q, want %q", got, want)
	}

	// Incumbent accepted; under DeferLastGood nothing is persisted until
	// the caller marks it good.
	writeMeasureArtifact(t, path, testMeasure(t, 0.7), 1)
	bumpMTime(t, path, 1)
	if _, err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(w.LastGoodPath()); !os.IsNotExist(err) {
		t.Fatalf("last-good exists before MarkGood (err=%v)", err)
	}
	w.MarkGood()
	incumbent, err := os.ReadFile(w.LastGoodPath())
	if err != nil {
		t.Fatal(err)
	}

	// Candidate promoted; last-good must still hold the incumbent.
	writeMeasureArtifact(t, path, testMeasure(t, 0.2), 2)
	bumpMTime(t, path, 2)
	if _, err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(w.LastGoodPath())
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(incumbent) {
		t.Fatal("last-good changed across deferred promotion; rollback target lost")
	}
	if q := scoreThrough(t, h); math.Abs(q-0.2) > 1e-9 {
		t.Fatalf("served model q = %v, want promoted 0.2", q)
	}

	// Canary pass: MarkGood adopts the promoted artifact.
	w.MarkGood()
	final, err := os.ReadFile(w.LastGoodPath())
	if err != nil {
		t.Fatal(err)
	}
	if string(final) == string(incumbent) {
		t.Fatal("MarkGood did not adopt the promoted artifact")
	}
}
