package ckpt

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

type testPayload struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func writeTestArtifact(t *testing.T, path string) (Manifest, testPayload) {
	t.Helper()
	payload := testPayload{Name: "alpha", Values: []float64{0.25, 0.5, 1}}
	man := Manifest{
		Kind:       KindCheckpoint,
		CreatedAt:  time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		ConfigHash: "cafe1234",
		Epoch:      7,
		BestEpoch:  5,
		TrainRMSE:  0.125,
		CheckRMSE:  0.25,
	}
	if err := WriteArtifact(path, man, payload); err != nil {
		t.Fatal(err)
	}
	return man, payload
}

func TestArtifactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.json")
	wantMan, wantPayload := writeTestArtifact(t, path)

	var got testPayload
	man, err := ReadArtifact(path, KindCheckpoint, &got)
	if err != nil {
		t.Fatal(err)
	}
	wantMan.Schema = SchemaVersion
	if man != wantMan {
		t.Errorf("manifest = %+v, want %+v", man, wantMan)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(wantPayload)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("payload = %s, want %s", gotJSON, wantJSON)
	}

	// Manifest-only read: nil payload skips payload decoding.
	if _, err := ReadArtifact(path, KindCheckpoint, nil); err != nil {
		t.Errorf("manifest-only read: %v", err)
	}
	// Any-kind read: empty kind skips the kind check.
	if _, err := ReadArtifact(path, "", &testPayload{}); err != nil {
		t.Errorf("any-kind read: %v", err)
	}
}

func TestArtifactTypedErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	writeTestArtifact(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name   string
		mutate func([]byte) []byte
		kind   string
		want   error
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, KindCheckpoint, ErrCorrupt},
		{"empty", func([]byte) []byte { return nil }, KindCheckpoint, ErrCorrupt},
		{"not json", func([]byte) []byte { return []byte("hello") }, KindCheckpoint, ErrCorrupt},
		{"flipped payload byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			i := strings.Index(string(out), "alpha")
			out[i] = 'A'
			return out
		}, KindCheckpoint, ErrChecksum},
		{"schema skew", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"schema": 1`, `"schema": 99`, 1))
		}, KindCheckpoint, ErrSchema},
		{"kind mismatch", func(b []byte) []byte { return b }, KindMeasure, ErrKind},
		{"bad checksum field", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"crc32c": "`, `"crc32c": "zz`, 1))
		}, KindCheckpoint, ErrCorrupt},
		{"payload type mismatch", func(b []byte) []byte {
			env := struct {
				Manifest Manifest        `json:"manifest"`
				Payload  json.RawMessage `json:"payload"`
				Checksum string          `json:"crc32c"`
			}{}
			if err := json.Unmarshal(b, &env); err != nil {
				t.Fatal(err)
			}
			env.Payload = json.RawMessage(`[1,2,3]`)
			env.Checksum = checksumHexForTest(env.Payload)
			out, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}, KindCheckpoint, ErrCorrupt},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var got testPayload
			_, err := DecodeArtifact(tt.mutate(append([]byte(nil), data...)), tt.kind, &got)
			if !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

// checksumHexForTest recomputes a valid payload checksum so a test can
// isolate a later validation stage.
func checksumHexForTest(payload []byte) string {
	return hex.EncodeToString(checksumBytes(payload))
}

func TestWriteArtifactRejectsNonFinitePayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.json")
	nan := struct {
		V float64 `json:"v"`
	}{V: inf()}
	if err := WriteArtifact(path, Manifest{Kind: KindCheckpoint}, nan); err == nil {
		t.Fatal("non-finite payload accepted")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("failed write left a file behind")
	}
}

// inf returns +Inf.
func inf() float64 { return math.Inf(1) }

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := AtomicWriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Errorf("content = %q, want %q", got, "two")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("temp files left behind: %v", names)
	}

	if err := AtomicWriteFile(filepath.Join(dir, "missing", "out.txt"), []byte("x"), 0o644); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}

func TestHashConfig(t *testing.T) {
	type cfg struct {
		Epochs int
		Rate   float64
	}
	h1, err := HashConfig(cfg{Epochs: 10, Rate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashConfig(cfg{Epochs: 10, Rate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	h3, err := HashConfig(cfg{Epochs: 11, Rate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("equal configs hash differently: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Errorf("different configs collide: %s", h1)
	}
	if len(h1) != 8 {
		t.Errorf("hash %q is not 8 hex chars", h1)
	}
	if _, err := HashConfig(func() {}); err == nil {
		t.Error("unserializable config accepted")
	}
}
