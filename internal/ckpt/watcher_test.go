package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"cqm/internal/core"
	"cqm/internal/fuzzy"
	"cqm/internal/obs"
	"cqm/internal/sensor"
)

// testMeasure builds a small valid quality FIS over (cue, class): one wide
// rule whose consequent is the constant bias, so every score is bias.
func testMeasure(t *testing.T, bias float64) *core.Measure {
	t.Helper()
	sys, err := fuzzy.NewTSK(2, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 0.5, Sigma: 10}, {Mu: 0, Sigma: 10}},
		Coeffs:     []float64{0, 0, bias},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return core.MeasureFromSystem(sys)
}

// writeMeasureArtifact persists m as a measure artifact at path.
func writeMeasureArtifact(t *testing.T, path string, m *core.Measure, epoch int) {
	t.Helper()
	man := Manifest{Kind: KindMeasure, CreatedAt: testClock(), Epoch: epoch}
	if err := WriteArtifact(path, man, m); err != nil {
		t.Fatal(err)
	}
}

// scoreThrough scores one observation through the handle's current model.
func scoreThrough(t *testing.T, h *Handle) float64 {
	t.Helper()
	m := h.Load()
	if m == nil {
		t.Fatal("handle empty")
	}
	q, err := m.Score([]float64{0.5}, sensor.Context(0))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestWatcherAcceptsValidModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	reg := obs.NewRegistry()
	h := NewHandle(nil)
	w, err := NewModelWatcher(WatchConfig{Path: path, Metrics: reg}, h)
	if err != nil {
		t.Fatal(err)
	}

	// Nothing to load yet: no attempt, no error.
	swapped, err := w.Poll()
	if swapped || err != nil {
		t.Fatalf("empty poll: swapped=%v err=%v", swapped, err)
	}

	writeMeasureArtifact(t, path, testMeasure(t, 0.75), 9)
	swapped, err = w.Poll()
	if err != nil || !swapped {
		t.Fatalf("poll: swapped=%v err=%v", swapped, err)
	}
	if q := scoreThrough(t, h); q != 0.75 {
		t.Errorf("score through swapped model = %v, want 0.75", q)
	}
	if _, err := os.Stat(filepath.Join(dir, LastGoodName)); err != nil {
		t.Errorf("last-good copy missing: %v", err)
	}
	if got := reg.Counter(MetricReloadSuccess).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricReloadSuccess, got)
	}
	if got := reg.Gauge(MetricReloadModelEpoch).Value(); got != 9 {
		t.Errorf("%s = %v, want 9", MetricReloadModelEpoch, got)
	}

	// Unchanged file: no further attempts.
	if swapped, err := w.Poll(); swapped || err != nil {
		t.Errorf("unchanged poll: swapped=%v err=%v", swapped, err)
	}
	if got := reg.Counter(MetricReloadAttempts).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricReloadAttempts, got)
	}
}

func TestWatcherRejectsBadModelKeepsServing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	reg := obs.NewRegistry()
	h := NewHandle(nil)
	w, err := NewModelWatcher(WatchConfig{Path: path, Metrics: reg}, h)
	if err != nil {
		t.Fatal(err)
	}
	writeMeasureArtifact(t, path, testMeasure(t, 0.25), 3)
	if _, err := w.Poll(); err != nil {
		t.Fatal(err)
	}

	bads := map[string][]byte{
		"torn":       []byte(`{"manifest":{"schema":1,"kind":"measure"`),
		"garbage":    []byte("not json at all"),
		"wrong kind": nil, // filled below
	}
	ckptPath := filepath.Join(dir, "ckpt.json")
	if err := WriteArtifact(ckptPath, Manifest{Kind: KindCheckpoint}, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	wrongKind, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	bads["wrong kind"] = wrongKind

	attempts := reg.Counter(MetricReloadAttempts).Value()
	names := make([]string, 0, len(bads))
	for name := range bads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bad := bads[name]
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			// A changed mtime is not guaranteed within one test; force the
			// size-change path by construction (all bads differ in size from
			// the good artifact and from each other).
			swapped, err := w.Poll()
			if swapped {
				t.Error("bad model swapped in")
			}
			if err == nil {
				t.Error("bad model accepted without error")
			}
			if q := scoreThrough(t, h); q != 0.25 {
				t.Errorf("serving score = %v, want last-good 0.25", q)
			}
		})
	}
	if got := reg.Counter(MetricReloadRejected).Value(); got != int64(len(bads)) {
		t.Errorf("%s = %d, want %d", MetricReloadRejected, got, len(bads))
	}
	// Each bad push was evaluated exactly once, then marked seen.
	if got := reg.Counter(MetricReloadAttempts).Value(); got != attempts+int64(len(bads)) {
		t.Errorf("%s = %d, want %d", MetricReloadAttempts, got, attempts+int64(len(bads)))
	}
	if swapped, err := w.Poll(); swapped || err != nil {
		t.Errorf("re-poll of seen bad file: swapped=%v err=%v", swapped, err)
	}
}

func TestWatcherSmokeRejection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	h := NewHandle(testMeasure(t, 0.5))
	w, err := NewModelWatcher(WatchConfig{Path: path}, h)
	if err != nil {
		t.Fatal(err)
	}
	// A structurally valid artifact whose FIS overflows at its own rule
	// center: the smoke probe must refuse it.
	sys, err := fuzzy.NewTSK(2, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 1, Sigma: 10}, {Mu: 0, Sigma: 10}},
		Coeffs:     []float64{1e308, 0, 1e308},
	}})
	if err != nil {
		t.Fatal(err)
	}
	writeMeasureArtifact(t, path, core.MeasureFromSystem(sys), 1)
	swapped, err := w.Poll()
	if swapped || err == nil {
		t.Fatalf("smoke-failing model: swapped=%v err=%v", swapped, err)
	}
	if q := scoreThrough(t, h); q != 0.5 {
		t.Errorf("serving score = %v, want pre-push 0.5", q)
	}
}

func TestWatcherLastGoodFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	lastGood := filepath.Join(dir, LastGoodName)
	writeMeasureArtifact(t, lastGood, testMeasure(t, 0.625), 4)
	// The candidate is corrupt and the handle empty — a cold start against
	// a bad push must come up serving the last-good model.
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	h := NewHandle(nil)
	w, err := NewModelWatcher(WatchConfig{Path: path, Metrics: reg}, h)
	if err != nil {
		t.Fatal(err)
	}
	swapped, pollErr := w.Poll()
	if !swapped {
		t.Fatal("last-good fallback did not populate the handle")
	}
	if pollErr == nil {
		t.Error("corrupt candidate produced no error")
	}
	if q := scoreThrough(t, h); q != 0.625 {
		t.Errorf("serving score = %v, want last-good 0.625", q)
	}
	if got := reg.Counter(MetricReloadRollbacks).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricReloadRollbacks, got)
	}
}

// TestMarkGoodReportsError pins the promotion-safety contract: MarkGood
// must report a failed last-good copy (here: no watched artifact to copy)
// so a supervisor can refuse to overwrite the incumbent without a rollback
// target, and the failure lands on the error counter.
func TestMarkGoodReportsError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	reg := obs.NewRegistry()
	w, err := NewModelWatcher(WatchConfig{Path: path, DeferLastGood: true, Metrics: reg}, NewHandle(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.MarkGood(); err == nil {
		t.Fatal("MarkGood reported success with no watched artifact")
	}
	if _, err := os.Stat(w.LastGoodPath()); err == nil {
		t.Fatal("last-good file exists after failed MarkGood")
	}
	if got := reg.Counter(MetricReloadLastGoodErrors).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricReloadLastGoodErrors, got)
	}

	writeMeasureArtifact(t, path, testMeasure(t, 0.5), 1)
	if err := w.MarkGood(); err != nil {
		t.Fatalf("MarkGood with a readable artifact: %v", err)
	}
	if _, err := os.Stat(w.LastGoodPath()); err != nil {
		t.Errorf("last-good copy missing after MarkGood: %v", err)
	}
}

func TestWatcherValidation(t *testing.T) {
	if _, err := NewModelWatcher(WatchConfig{}, NewHandle(nil)); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := NewModelWatcher(WatchConfig{Path: "x"}, nil); err == nil {
		t.Error("nil handle accepted")
	}
}

func TestHandleNil(t *testing.T) {
	var h *Handle
	if h.Load() != nil {
		t.Error("nil handle Load != nil")
	}
}

func TestHotSwapZeroDroppedScores(t *testing.T) {
	// Concurrent scorers load the handle while models are swapped under
	// them: every single score must succeed — no nil model, no error —
	// whichever model serves it.
	h := NewHandle(testMeasure(t, 0.25))
	const scorers = 4
	const rounds = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make([]error, scorers)
	for s := 0; s < scorers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := h.Load()
				if m == nil {
					errs[s] = errors.New("nil model observed")
					return
				}
				q, err := m.Score([]float64{0.5}, sensor.Context(0))
				if err != nil {
					errs[s] = err
					return
				}
				if q != 0.25 && q != 0.75 {
					errs[s] = errors.New("score from a mixed model")
					return
				}
			}
		}(s)
	}
	for i := 0; i < rounds; i++ {
		bias := 0.25
		if i%2 == 1 {
			bias = 0.75
		}
		h.Store(testMeasure(t, bias))
	}
	close(stop)
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Errorf("scorer %d: %v", s, err)
		}
	}
}

func TestWatcherStartStop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	h := NewHandle(nil)
	w, err := NewModelWatcher(WatchConfig{Path: path}, h)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(time.Millisecond, nil)
	writeMeasureArtifact(t, path, testMeasure(t, 0.5), 2)
	deadline := time.Now().Add(5 * time.Second)
	for h.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background watcher never picked up the model")
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	w.Stop() // idempotent

	// A never-started watcher stops without blocking.
	w2, err := NewModelWatcher(WatchConfig{Path: path}, NewHandle(nil))
	if err != nil {
		t.Fatal(err)
	}
	w2.Stop()
}
