// Package ckpt is the durability layer of the CQM pipeline: crash-safe
// model artifacts, epoch-granular training checkpoints, and hot model
// reload with last-good rollback.
//
// The paper's quality measure is only trustworthy if the trained FIS that
// reaches an appliance is exactly the one ANFIS produced. Three mechanisms
// guarantee that end to end:
//
//   - Artifacts. WriteArtifact persists any JSON-serializable payload
//     atomically (write-temp + fsync + rename, then a directory sync) inside
//     a versioned envelope carrying a manifest (schema version, kind,
//     created-at from an injected clock, training-config hash, epoch, RMSE)
//     and a CRC32C checksum of the payload bytes. ReadArtifact detects
//     truncation and corruption (ErrCorrupt), bit rot (ErrChecksum), schema
//     skew (ErrSchema), and kind confusion (ErrKind) with typed errors, so
//     a torn or hostile file is never mistaken for a model.
//
//   - Checkpoints. Checkpointer plugs into anfis.Train through the
//     TrainObserver/SnapshotObserver hook path and writes periodic and
//     best-so-far checkpoints of the full anfis.TrainState. LatestState
//     locates the newest usable checkpoint, skipping corrupt files with a
//     warning counter, and refuses to resume across a training-config
//     change (ErrConfigMismatch). Resuming replays the remaining epochs
//     bit-identically to an uninterrupted run.
//
//   - Hot reload. ModelWatcher polls a candidate model artifact, validates
//     it (decode, checksum, smoke-score), atomically swaps the served
//     core.Measure behind a Handle, and keeps the last accepted model on
//     disk as model.lastgood.json; a bad push never reaches scoring and a
//     cold start falls back to the last-good copy.
//
// Every operation is instrumented under cqm_ckpt_* and cqm_reload_*
// counters when a metrics registry is supplied. The package is
// stdlib-only and, like the rest of the tree, takes time from injected
// clocks so library behaviour stays reproducible.
package ckpt
