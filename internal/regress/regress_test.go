package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExactRecovery(t *testing.T) {
	// y = 2x₁ − 3x₂ + 1 with a bias column; noiseless data recovers the
	// coefficients exactly for both methods.
	r := rand.New(rand.NewSource(1))
	want := []float64{2, -3, 1}
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = []float64{r.NormFloat64(), r.NormFloat64(), 1}
		y[i] = want[0]*x[i][0] + want[1]*x[i][1] + want[2]
	}
	for _, method := range []Method{MethodSVD, MethodQR} {
		w, err := LeastSquares(x, y, method)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		for j := range want {
			if math.Abs(w[j]-want[j]) > 1e-8 {
				t.Errorf("%v: w[%d] = %v, want %v", method, j, w[j], want[j])
			}
		}
	}
}

func TestLeastSquaresNoisyClose(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	want := []float64{0.5, -1.2}
	n := 500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{r.NormFloat64(), r.NormFloat64()}
		y[i] = want[0]*x[i][0] + want[1]*x[i][1] + 0.01*r.NormFloat64()
	}
	w, err := LeastSquares(x, y, MethodSVD)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(w[j]-want[j]) > 0.01 {
			t.Errorf("w[%d] = %v, want ~%v", j, w[j], want[j])
		}
	}
}

func TestLeastSquaresRankDeficientSVD(t *testing.T) {
	// Perfectly collinear features: SVD returns the minimum-norm solution;
	// QR reports singularity.
	x := [][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	}
	y := []float64{5, 10, 15}
	w, err := LeastSquares(x, y, MethodSVD)
	if err != nil {
		t.Fatalf("SVD: %v", err)
	}
	pred, err := Predict(x, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(pred[i]-y[i]) > 1e-8 {
			t.Errorf("pred[%d] = %v, want %v", i, pred[i], y[i])
		}
	}
	if _, err := LeastSquares(x, y, MethodQR); err == nil {
		t.Error("QR on collinear design should fail")
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil, MethodSVD); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}, MethodSVD); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatch: err = %v", err)
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1}, Method(99)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestZeroValueMethodDefaultsToSVD(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{2, 4, 6}
	w, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-2) > 1e-10 {
		t.Errorf("w = %v, want [2]", w)
	}
}

func TestRidgeShrinksTowardZero(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := make([][]float64, 30)
	y := make([]float64, 30)
	for i := range x {
		x[i] = []float64{r.NormFloat64()}
		y[i] = 3*x[i][0] + 0.1*r.NormFloat64()
	}
	w0, err := Ridge(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	wBig, err := Ridge(x, y, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wBig[0]) >= math.Abs(w0[0]) {
		t.Errorf("ridge did not shrink: |%v| >= |%v|", wBig[0], w0[0])
	}
	if _, err := Ridge(x, y, -1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestRidgeHandlesCollinearity(t *testing.T) {
	x := [][]float64{
		{1, 1},
		{2, 2},
		{3, 3},
	}
	y := []float64{2, 4, 6}
	w, err := Ridge(x, y, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric problem: weights split evenly.
	if math.Abs(w[0]-w[1]) > 1e-8 {
		t.Errorf("collinear weights not symmetric: %v", w)
	}
}

func TestPredictAndMSE(t *testing.T) {
	x := [][]float64{{1, 0}, {0, 1}}
	w := []float64{2, 3}
	pred, err := Predict(x, w)
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 2 || pred[1] != 3 {
		t.Errorf("Predict = %v", pred)
	}
	mse, err := MSE(pred, []float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mse-2) > 1e-12 {
		t.Errorf("MSE = %v, want 2", mse)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("MSE mismatch err = %v", err)
	}
	if _, err := MSE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MSE empty err = %v", err)
	}
	if _, err := Predict([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("Predict mismatch err = %v", err)
	}
}

func TestMethodString(t *testing.T) {
	if MethodSVD.String() != "svd" || MethodQR.String() != "qr" {
		t.Error("Method.String labels wrong")
	}
	if Method(42).String() == "" {
		t.Error("unknown Method.String empty")
	}
}

func TestResidualNeverBeatenProperty(t *testing.T) {
	// The least-squares solution minimizes the residual: perturbing the
	// weights never reduces the MSE.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(20)
		d := 1 + r.Intn(3)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			row := make([]float64, d)
			for j := range row {
				row[j] = r.NormFloat64()
			}
			x[i] = row
			y[i] = r.NormFloat64()
		}
		w, err := LeastSquares(x, y, MethodSVD)
		if err != nil {
			return false
		}
		base, _ := Predict(x, w)
		baseMSE, _ := MSE(base, y)
		for trial := 0; trial < 5; trial++ {
			wp := make([]float64, len(w))
			for j := range wp {
				wp[j] = w[j] + 0.1*r.NormFloat64()
			}
			pred, _ := Predict(x, wp)
			mse, _ := MSE(pred, y)
			if mse < baseMSE-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLeastSquaresSVD(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), 1}
		y[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(x, y, MethodSVD); err != nil {
			b.Fatal(err)
		}
	}
}
