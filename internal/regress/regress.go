// Package regress implements the linear least-squares layer of the CQM
// pipeline (paper §2.2.2): fitting the linear TSK consequent functions to
// the designated output with an SVD-backed solver, exactly as the paper
// prescribes ("The single value decomposition (SVD) is used to solve the
// over-determined linear equation").
//
// A QR path is provided for well-conditioned problems and a ridge variant
// for ablation experiments.
package regress

import (
	"errors"
	"fmt"
	"math"

	"cqm/internal/mat"
)

// Regression errors.
var (
	// ErrDimension reports mismatched design-matrix and target lengths.
	ErrDimension = errors.New("regress: dimension mismatch")
	// ErrEmpty reports a fit attempt with no samples.
	ErrEmpty = errors.New("regress: empty training data")
)

// Method selects the numerical algorithm used to solve the normal problem.
type Method int

// Supported least-squares methods. SVD is the paper's choice and the
// default; QR is faster when the design matrix is well conditioned.
const (
	MethodSVD Method = iota + 1
	MethodQR
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MethodSVD:
		return "svd"
	case MethodQR:
		return "qr"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// LeastSquares solves min ‖X·w − y‖₂ for w. X is given as rows; y runs in
// parallel with the rows. The SVD method returns the minimum-norm solution
// for rank-deficient systems instead of failing.
func LeastSquares(x [][]float64, y []float64, method Method) ([]float64, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrDimension, len(x), len(y))
	}
	xm, err := mat.NewFromRows(x)
	if err != nil {
		return nil, fmt.Errorf("regress: building design matrix: %w", err)
	}
	switch method {
	case MethodQR:
		f, err := mat.FactorQR(xm)
		if err != nil {
			return nil, fmt.Errorf("regress: QR factorization: %w", err)
		}
		w, err := f.Solve(y)
		if err != nil {
			return nil, fmt.Errorf("regress: QR solve: %w", err)
		}
		return w, nil
	case MethodSVD, 0: // zero value falls through to the paper's default
		d, err := mat.FactorSVD(xm)
		if err != nil {
			return nil, fmt.Errorf("regress: SVD factorization: %w", err)
		}
		w, err := d.Solve(y, 0)
		if err != nil {
			return nil, fmt.Errorf("regress: SVD solve: %w", err)
		}
		return w, nil
	default:
		return nil, fmt.Errorf("regress: unknown method %v", method)
	}
}

// Ridge solves the Tikhonov-regularized problem
// min ‖X·w − y‖₂² + λ‖w‖₂² by augmenting the design matrix with √λ·I.
// λ must be non-negative; λ = 0 reduces to plain least squares.
func Ridge(x [][]float64, y []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("regress: negative ridge lambda %v", lambda)
	}
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrDimension, len(x), len(y))
	}
	if lambda == 0 {
		return LeastSquares(x, y, MethodSVD)
	}
	cols := len(x[0])
	aug := make([][]float64, 0, len(x)+cols)
	aug = append(aug, x...)
	sq := sqrtLambdaRows(lambda, cols)
	aug = append(aug, sq...)
	augY := make([]float64, len(y)+cols)
	copy(augY, y)
	return LeastSquares(aug, augY, MethodSVD)
}

func sqrtLambdaRows(lambda float64, cols int) [][]float64 {
	rows := make([][]float64, cols)
	s := math.Sqrt(lambda)
	for i := range rows {
		row := make([]float64, cols)
		row[i] = s
		rows[i] = row
	}
	return rows
}

// Predict evaluates the linear model w over each row of x (no intercept is
// added; include a bias column in x if needed).
func Predict(x [][]float64, w []float64) ([]float64, error) {
	out := make([]float64, len(x))
	for i, row := range x {
		if len(row) != len(w) {
			return nil, fmt.Errorf("%w: row %d has %d features, weights %d", ErrDimension, i, len(row), len(w))
		}
		out[i] = mat.Dot(row, w)
	}
	return out, nil
}

// MSE returns the mean squared error between predictions and targets.
func MSE(pred, y []float64) (float64, error) {
	if len(pred) != len(y) {
		return 0, fmt.Errorf("%w: %d predictions vs %d targets", ErrDimension, len(pred), len(y))
	}
	if len(y) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i := range y {
		d := pred[i] - y[i]
		ss += d * d
	}
	return ss / float64(len(y)), nil
}
