package feature

import (
	"fmt"
	"strings"

	"cqm/internal/sensor"
)

// Degradation flags one window's detected input faults. A window with any
// flag set carries cues computed from untrustworthy samples; the pen
// routes such windows into the quality measure's ε error state instead of
// publishing a quality that was never grounded in real motion.
type Degradation struct {
	// StuckAxis marks an axis bit-exact constant across the window.
	StuckAxis bool
	// Saturated marks too many samples pinned at the clipping rail.
	Saturated bool
	// Gap marks a sampling gap far above the window's median step.
	Gap bool
	// ClockSkew marks a median sample period off the nominal one.
	ClockSkew bool
}

// Any reports whether at least one degradation flag is set.
func (d Degradation) Any() bool {
	return d.StuckAxis || d.Saturated || d.Gap || d.ClockSkew
}

// String lists the set flags, or "ok" when none are.
func (d Degradation) String() string {
	var parts []string
	if d.StuckAxis {
		parts = append(parts, "stuck-axis")
	}
	if d.Saturated {
		parts = append(parts, "saturated")
	}
	if d.Gap {
		parts = append(parts, "gap")
	}
	if d.ClockSkew {
		parts = append(parts, "clock-skew")
	}
	if len(parts) == 0 {
		return "ok"
	}
	return strings.Join(parts, "+")
}

// DegradationConfig tunes the per-window input-fault detectors. The
// detectors are pure functions of the window's readings, so detection is
// deterministic and identical at any worker count.
type DegradationConfig struct {
	// SaturationLimit is the clipping rail in g. Default 2 (the
	// accelerometer's default RangeG).
	SaturationLimit float64
	// SaturationFraction is the fraction of rail-pinned samples that
	// flags the window. Default 0.2.
	SaturationFraction float64
	// GapFactor flags a window whose largest time step exceeds GapFactor
	// times its median step. Default 4.
	GapFactor float64
	// NominalStep is the expected sample period in seconds; a median step
	// outside NominalStep±StepTolerance flags clock skew. 0 disables the
	// skew detector.
	NominalStep float64
	// StepTolerance is the fractional skew tolerance. Default 0.05.
	StepTolerance float64
}

func (c DegradationConfig) withDefaults() DegradationConfig {
	if c.SaturationLimit == 0 {
		c.SaturationLimit = 2
	}
	if c.SaturationFraction == 0 {
		c.SaturationFraction = 0.2
	}
	if c.GapFactor == 0 {
		c.GapFactor = 4
	}
	if c.StepTolerance == 0 {
		c.StepTolerance = 0.05
	}
	return c
}

func (c DegradationConfig) validate() error {
	switch {
	case c.SaturationLimit < 0 || c.NominalStep < 0:
		return fmt.Errorf("%w: saturation limit %v nominal step %v", ErrBadWindow, c.SaturationLimit, c.NominalStep)
	case c.SaturationFraction <= 0 || c.SaturationFraction > 1:
		return fmt.Errorf("%w: saturation fraction %v", ErrBadWindow, c.SaturationFraction)
	case c.GapFactor < 1:
		return fmt.Errorf("%w: gap factor %v", ErrBadWindow, c.GapFactor)
	case c.StepTolerance <= 0:
		return fmt.Errorf("%w: step tolerance %v", ErrBadWindow, c.StepTolerance)
	default:
		return nil
	}
}

// Detect runs the configured detectors over one window of readings.
func (c DegradationConfig) Detect(readings []sensor.Reading) Degradation {
	var d Degradation
	constant := sensor.ConstantAxes(readings)
	d.StuckAxis = constant[0] || constant[1] || constant[2]
	d.Saturated = sensor.SaturatedFraction(readings, c.SaturationLimit) >= c.SaturationFraction
	median := sensor.MedianStep(readings)
	if median > 0 {
		d.Gap = sensor.MaxStep(readings) > c.GapFactor*median
		if c.NominalStep > 0 {
			skew := median - c.NominalStep
			if skew < 0 {
				skew = -skew
			}
			d.ClockSkew = skew > c.StepTolerance*c.NominalStep
		}
	}
	return d
}
