package feature

import (
	"math"
	"math/rand"
	"testing"

	"cqm/internal/sensor"
)

// sineWindow builds a window carrying a pure tone on the X axis.
func sineWindow(freq, sampleRate float64, n int) []sensor.Reading {
	out := make([]sensor.Reading, n)
	for i := range out {
		t := float64(i) / sampleRate
		out[i] = sensor.Reading{
			T:     t,
			Accel: sensor.Accel{X: math.Sin(2 * math.Pi * freq * t), Z: 1},
		}
	}
	return out
}

func TestDominantFreqRecoversTone(t *testing.T) {
	for _, freq := range []float64{1.0, 3.0, 5.0, 8.0} {
		w := sineWindow(freq, 100, 100)
		cues, err := DominantFreq{}.Extract(w)
		if err != nil {
			t.Fatal(err)
		}
		// Bin resolution at 100 samples over 1 s is 1 Hz.
		if math.Abs(cues[0]-freq) > 1.01 {
			t.Errorf("tone %v Hz detected as %v Hz", freq, cues[0])
		}
	}
}

func TestDominantFreqIgnoresDC(t *testing.T) {
	// Constant gravity on Z must not register as a "frequency".
	w := sineWindow(4, 100, 100)
	cues, err := DominantFreq{}.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	if cues[2] > 3 {
		t.Errorf("static axis dominant frequency = %v, want low", cues[2])
	}
}

func TestDominantFreqSeparatesWritingFromPlaying(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	var acc sensor.Accelerometer
	writing, err := acc.Record(sensor.NewWriting(sensor.DefaultStyle()), sensor.ContextWriting, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	playing, err := acc.Record(sensor.NewPlaying(sensor.DefaultStyle()), sensor.ContextPlaying, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	freqOf := func(readings []sensor.Reading) float64 {
		windows, err := (Windower{Size: 200, Pipeline: NewPipeline(DominantFreq{})}).Slide(readings)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		n := 0
		for _, w := range windows {
			if w.Cues[0] > 0 {
				sum += w.Cues[0]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	fWrite := freqOf(writing)
	fPlay := freqOf(playing)
	if fWrite <= fPlay {
		t.Errorf("writing dominant freq %v not above playing %v", fWrite, fPlay)
	}
}

func TestDominantFreqEdgeCases(t *testing.T) {
	if _, err := (DominantFreq{}).Extract(nil); err == nil {
		t.Error("empty window accepted")
	}
	// Tiny windows degrade to zeros rather than erroring.
	cues, err := DominantFreq{}.Extract(sineWindow(5, 100, 3))
	if err != nil {
		t.Fatal(err)
	}
	if cues[0] != 0 {
		t.Errorf("tiny window freq = %v, want 0", cues[0])
	}
	// Zero-duration window (identical timestamps).
	w := []sensor.Reading{{T: 1}, {T: 1}, {T: 1}, {T: 1}}
	cues, err = DominantFreq{}.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	if cues[0] != 0 {
		t.Errorf("degenerate window freq = %v", cues[0])
	}
}

func TestPipelineWithFrequencyCues(t *testing.T) {
	p := NewPipeline(StdDev{}, DominantFreq{})
	if p.Dim() != 6 {
		t.Fatalf("Dim = %d", p.Dim())
	}
	cues, err := p.Cues(sineWindow(5, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(cues) != 6 {
		t.Fatalf("len = %d", len(cues))
	}
}
