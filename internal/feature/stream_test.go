package feature

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"cqm/internal/sensor"
)

func TestStreamerMatchesBatchWindower(t *testing.T) {
	// Online and batch extraction over the same stream must agree exactly
	// for every (size, step) combination, including step > size.
	rng := rand.New(rand.NewSource(30))
	var acc sensor.Accelerometer
	readings, err := acc.Record(sensor.NewWriting(sensor.DefaultStyle()), sensor.ContextWriting, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ size, step int }{
		{100, 0}, {100, 50}, {64, 16}, {50, 75}, {30, 30},
	} {
		batch, err := (Windower{Size: tc.size, Step: tc.step}).Slide(readings)
		if err != nil {
			t.Fatal(err)
		}
		streamer, err := NewStreamer(tc.size, tc.step, nil)
		if err != nil {
			t.Fatal(err)
		}
		var online []Window
		for _, r := range readings {
			w, ok, err := streamer.Push(r)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				online = append(online, w)
			}
		}
		if len(online) != len(batch) {
			t.Fatalf("size=%d step=%d: %d online vs %d batch windows",
				tc.size, tc.step, len(online), len(batch))
		}
		for i := range batch {
			if online[i].Start != batch[i].Start || online[i].End != batch[i].End {
				t.Fatalf("window %d spans differ: %v-%v vs %v-%v",
					i, online[i].Start, online[i].End, batch[i].Start, batch[i].End)
			}
			for j := range batch[i].Cues {
				if online[i].Cues[j] != batch[i].Cues[j] {
					t.Fatalf("window %d cue %d differs", i, j)
				}
			}
			if online[i].Truth != batch[i].Truth || online[i].Pure != batch[i].Pure {
				t.Fatalf("window %d labels differ", i)
			}
		}
		if streamer.Emitted() != len(batch) {
			t.Errorf("Emitted = %d, want %d", streamer.Emitted(), len(batch))
		}
	}
}

func TestStreamerValidation(t *testing.T) {
	if _, err := NewStreamer(1, 0, nil); !errors.Is(err, ErrBadWindow) {
		t.Errorf("size 1: %v", err)
	}
	if _, err := NewStreamer(10, -1, nil); !errors.Is(err, ErrBadWindow) {
		t.Errorf("negative step: %v", err)
	}
}

func TestStreamerReset(t *testing.T) {
	s, err := NewStreamer(4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := s.Push(sensor.Reading{T: float64(i)}); err != nil || ok {
			t.Fatalf("premature window at %d (ok=%v err=%v)", i, ok, err)
		}
	}
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Reset()
	if s.Pending() != 0 {
		t.Error("Reset kept readings")
	}
	// After a reset the window restarts from scratch.
	for i := 0; i < 4; i++ {
		w, ok, err := s.Push(sensor.Reading{T: 10 + float64(i), Truth: sensor.ContextLying})
		if err != nil {
			t.Fatal(err)
		}
		if (i == 3) != ok {
			t.Fatalf("push %d ok=%v", i, ok)
		}
		if ok && w.Start != 10 {
			t.Errorf("window start = %v, want 10", w.Start)
		}
	}
}

func TestStreamerEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 2 + r.Intn(20)
		step := 1 + r.Intn(30)
		n := size + r.Intn(100)
		readings := make([]sensor.Reading, n)
		for i := range readings {
			readings[i] = sensor.Reading{
				T:     float64(i),
				Accel: sensor.Accel{X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()},
				Truth: sensor.ContextLying,
			}
		}
		batch, err := (Windower{Size: size, Step: step}).Slide(readings)
		if err != nil {
			return false
		}
		s, err := NewStreamer(size, step, nil)
		if err != nil {
			return false
		}
		count := 0
		for _, rd := range readings {
			w, ok, err := s.Push(rd)
			if err != nil {
				return false
			}
			if ok {
				if count >= len(batch) || w.Start != batch[count].Start {
					return false
				}
				count++
			}
		}
		return count == len(batch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
