// Package feature turns raw accelerometer streams into the cue vectors the
// classifier and the quality FIS consume (paper §2.1: "Each cue represents
// a single sensor. Cues are computed from sensor data and identify basic
// features for the context classification").
//
// The AwarePen's cue set is the per-axis standard deviation over a sliding
// window (paper §3.1); additional extractors (mean, RMS, range, zero
// crossings, energy) are available for the extended experiments.
package feature

import (
	"errors"
	"fmt"

	"cqm/internal/sensor"
	"cqm/internal/stat"
)

// Extraction errors.
var (
	// ErrEmptyWindow reports extraction over a window without samples.
	ErrEmptyWindow = errors.New("feature: empty window")
	// ErrBadWindow reports invalid windowing parameters.
	ErrBadWindow = errors.New("feature: invalid window parameters")
)

// Extractor computes one cue per axis from a window of readings.
type Extractor interface {
	// Name identifies the extractor in reports.
	Name() string
	// Extract returns the per-axis cues (x, y, z order).
	Extract(window []sensor.Reading) ([]float64, error)
}

// axes splits a window into per-axis series.
func axes(window []sensor.Reading) (xs, ys, zs []float64, err error) {
	if len(window) == 0 {
		return nil, nil, nil, ErrEmptyWindow
	}
	xs = make([]float64, len(window))
	ys = make([]float64, len(window))
	zs = make([]float64, len(window))
	for i, r := range window {
		xs[i] = r.Accel.X
		ys[i] = r.Accel.Y
		zs[i] = r.Accel.Z
	}
	return xs, ys, zs, nil
}

// StdDev is the paper's cue: population standard deviation per axis.
type StdDev struct{}

// Name returns "stddev".
func (StdDev) Name() string { return "stddev" }

// Extract returns the per-axis standard deviations.
func (StdDev) Extract(window []sensor.Reading) ([]float64, error) {
	xs, ys, zs, err := axes(window)
	if err != nil {
		return nil, err
	}
	return []float64{stat.PopStdDev(xs), stat.PopStdDev(ys), stat.PopStdDev(zs)}, nil
}

// Mean extracts the per-axis mean — mostly gravity orientation.
type Mean struct{}

// Name returns "mean".
func (Mean) Name() string { return "mean" }

// Extract returns the per-axis means.
func (Mean) Extract(window []sensor.Reading) ([]float64, error) {
	xs, ys, zs, err := axes(window)
	if err != nil {
		return nil, err
	}
	return []float64{stat.Mean(xs), stat.Mean(ys), stat.Mean(zs)}, nil
}

// RMS extracts per-axis root-mean-square energy.
type RMS struct{}

// Name returns "rms".
func (RMS) Name() string { return "rms" }

// Extract returns the per-axis RMS values.
func (RMS) Extract(window []sensor.Reading) ([]float64, error) {
	xs, ys, zs, err := axes(window)
	if err != nil {
		return nil, err
	}
	return []float64{stat.RMS(xs), stat.RMS(ys), stat.RMS(zs)}, nil
}

// Range extracts the per-axis peak-to-peak amplitude.
type Range struct{}

// Name returns "range".
func (Range) Name() string { return "range" }

// Extract returns the per-axis max−min spans.
func (Range) Extract(window []sensor.Reading) ([]float64, error) {
	xs, ys, zs, err := axes(window)
	if err != nil {
		return nil, err
	}
	span := func(v []float64) float64 {
		min, max := stat.MinMax(v)
		return max - min
	}
	return []float64{span(xs), span(ys), span(zs)}, nil
}

// ZeroCross extracts the per-axis mean-crossing rate — a cheap frequency
// cue that separates writing's fast strokes from playing's slow swings.
type ZeroCross struct{}

// Name returns "zerocross".
func (ZeroCross) Name() string { return "zerocross" }

// Extract returns the per-axis crossing counts normalized by window length.
func (ZeroCross) Extract(window []sensor.Reading) ([]float64, error) {
	xs, ys, zs, err := axes(window)
	if err != nil {
		return nil, err
	}
	n := float64(len(window))
	return []float64{
		float64(stat.ZeroCrossings(xs)) / n,
		float64(stat.ZeroCrossings(ys)) / n,
		float64(stat.ZeroCrossings(zs)) / n,
	}, nil
}

// Compile-time interface checks.
var (
	_ Extractor = StdDev{}
	_ Extractor = Mean{}
	_ Extractor = RMS{}
	_ Extractor = Range{}
	_ Extractor = ZeroCross{}
)

// Pipeline combines several extractors into one cue vector per window.
type Pipeline struct {
	extractors []Extractor
}

// NewPipeline returns a pipeline over the given extractors; with none it
// defaults to the paper's StdDev cues.
func NewPipeline(extractors ...Extractor) *Pipeline {
	if len(extractors) == 0 {
		extractors = []Extractor{StdDev{}}
	}
	return &Pipeline{extractors: extractors}
}

// Cues returns the concatenated cues of all extractors for the window.
func (p *Pipeline) Cues(window []sensor.Reading) ([]float64, error) {
	var out []float64
	for _, e := range p.extractors {
		cues, err := e.Extract(window)
		if err != nil {
			return nil, fmt.Errorf("feature: %s: %w", e.Name(), err)
		}
		out = append(out, cues...)
	}
	return out, nil
}

// Dim returns the cue vector length the pipeline produces (3 per
// extractor).
func (p *Pipeline) Dim() int { return 3 * len(p.extractors) }
