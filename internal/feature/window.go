package feature

import (
	"fmt"
	"sort"

	"cqm/internal/sensor"
)

// Window is one extracted observation: the cue vector of a reading window
// together with its ground-truth labelling.
type Window struct {
	// Start and End are the window's time span in seconds.
	Start, End float64
	// Cues is the extracted cue vector.
	Cues []float64
	// Truth is the majority ground-truth context within the window.
	Truth sensor.Context
	// Pure reports whether every reading in the window shares the same
	// ground truth. Impure windows span a context transition — the hard
	// cases the quality measure exists for.
	Pure bool
	// Degraded carries the input-fault flags detected for this window;
	// the zero value (no Windower.Degradation config) means no detection
	// ran.
	Degraded Degradation
}

// Windower slides fixed-size windows over a recording and extracts cues.
type Windower struct {
	// Size is the number of readings per window. Required.
	Size int
	// Step is the hop between window starts; Step == Size gives
	// non-overlapping windows. Default: Size (no overlap).
	Step int
	// Pipeline extracts the cues; nil defaults to the paper's StdDev.
	Pipeline *Pipeline
	// Degradation, when non-nil, runs the input-fault detectors over
	// every window and records the flags in Window.Degraded.
	Degradation *DegradationConfig
}

// Slide extracts windows over the readings. Trailing readings that do not
// fill a window are dropped (the online system would wait for more data).
func (w Windower) Slide(readings []sensor.Reading) ([]Window, error) {
	if w.Size < 2 {
		return nil, fmt.Errorf("%w: size %d", ErrBadWindow, w.Size)
	}
	step := w.Step
	if step == 0 {
		step = w.Size
	}
	if step < 1 {
		return nil, fmt.Errorf("%w: step %d", ErrBadWindow, step)
	}
	pipe := w.Pipeline
	if pipe == nil {
		pipe = NewPipeline()
	}
	var degrade DegradationConfig
	if w.Degradation != nil {
		degrade = w.Degradation.withDefaults()
		if err := degrade.validate(); err != nil {
			return nil, err
		}
	}
	var out []Window
	for start := 0; start+w.Size <= len(readings); start += step {
		chunk := readings[start : start+w.Size]
		cues, err := pipe.Cues(chunk)
		if err != nil {
			return nil, err
		}
		win := Window{
			Start: chunk[0].T,
			End:   chunk[len(chunk)-1].T,
			Cues:  cues,
			Truth: majorityTruth(chunk),
			Pure:  isPure(chunk),
		}
		if w.Degradation != nil {
			win.Degraded = degrade.Detect(chunk)
		}
		out = append(out, win)
	}
	return out, nil
}

// majorityTruth returns the most frequent ground-truth context. Candidates
// are visited in sorted order so a tie between two equally frequent
// contexts resolves to the smaller one rather than to whichever the map
// iterator yields first.
func majorityTruth(chunk []sensor.Reading) sensor.Context {
	counts := make(map[sensor.Context]int, 3)
	for _, r := range chunk {
		counts[r.Truth]++
	}
	seen := make([]sensor.Context, 0, len(counts))
	for c := range counts {
		seen = append(seen, c)
	}
	sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
	best := chunk[0].Truth
	for _, c := range seen {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return best
}

// isPure reports whether all readings share one ground truth.
func isPure(chunk []sensor.Reading) bool {
	for _, r := range chunk[1:] {
		if r.Truth != chunk[0].Truth {
			return false
		}
	}
	return true
}
