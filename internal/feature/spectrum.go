package feature

import (
	"math"

	"cqm/internal/sensor"
)

// DominantFreq extracts the per-axis dominant frequency in Hz — a
// frequency-domain cue separating writing's fast strokes (~5 Hz) from
// playing's slow swings (~1–2 Hz), which amplitude cues alone cannot
// always tell apart. The sample rate is inferred from the window's
// timestamps.
type DominantFreq struct {
	// MaxHz bounds the analysis band. Default 12 (well above any pen
	// motion, well below the Nyquist of the default 100 Hz sampling).
	MaxHz float64
}

// Name returns "domfreq".
func (DominantFreq) Name() string { return "domfreq" }

// Extract returns the per-axis frequency with the largest DFT magnitude
// within (0, MaxHz]. The DC bin is excluded: gravity dominates it.
func (d DominantFreq) Extract(window []sensor.Reading) ([]float64, error) {
	xs, ys, zs, err := axes(window)
	if err != nil {
		return nil, err
	}
	if len(window) < 4 {
		return []float64{0, 0, 0}, nil
	}
	duration := window[len(window)-1].T - window[0].T
	if duration <= 0 {
		return []float64{0, 0, 0}, nil
	}
	sampleRate := float64(len(window)-1) / duration
	maxHz := d.MaxHz
	if maxHz == 0 {
		maxHz = 12
	}
	if nyquist := sampleRate / 2; maxHz > nyquist {
		maxHz = nyquist
	}
	return []float64{
		dominantFrequency(xs, sampleRate, maxHz),
		dominantFrequency(ys, sampleRate, maxHz),
		dominantFrequency(zs, sampleRate, maxHz),
	}, nil
}

// dominantFrequency scans DFT bins 1..k_max for the largest magnitude.
// The naive O(n·k) transform is fine: windows are ~100 samples and the
// band of interest a dozen bins.
func dominantFrequency(signal []float64, sampleRate, maxHz float64) float64 {
	n := len(signal)
	mean := 0.0
	for _, v := range signal {
		mean += v
	}
	mean /= float64(n)

	binHz := sampleRate / float64(n)
	kMax := int(maxHz / binHz)
	if kMax >= n/2 {
		kMax = n/2 - 1
	}
	if kMax < 1 {
		return 0
	}
	bestK, bestMag := 0, -1.0
	for k := 1; k <= kMax; k++ {
		var re, im float64
		for i, v := range signal {
			angle := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			centered := v - mean
			re += centered * math.Cos(angle)
			im += centered * math.Sin(angle)
		}
		if mag := re*re + im*im; mag > bestMag {
			bestK, bestMag = k, mag
		}
	}
	return float64(bestK) * binHz
}

// Compile-time interface check.
var _ Extractor = DominantFreq{}
