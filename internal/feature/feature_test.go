package feature

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cqm/internal/sensor"
)

// constantWindow builds a window of identical readings.
func constantWindow(n int, x, y, z float64, truth sensor.Context) []sensor.Reading {
	out := make([]sensor.Reading, n)
	for i := range out {
		out[i] = sensor.Reading{
			T:     float64(i) * 0.01,
			Accel: sensor.Accel{X: x, Y: y, Z: z},
			Truth: truth,
		}
	}
	return out
}

func TestStdDevExtractor(t *testing.T) {
	// Alternating ±1 on X has population stddev 1; constant axes have 0.
	w := make([]sensor.Reading, 10)
	for i := range w {
		x := 1.0
		if i%2 == 1 {
			x = -1
		}
		w[i] = sensor.Reading{Accel: sensor.Accel{X: x, Y: 2, Z: 3}}
	}
	cues, err := StdDev{}.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cues[0]-1) > 1e-12 || cues[1] != 0 || cues[2] != 0 {
		t.Errorf("cues = %v, want [1 0 0]", cues)
	}
}

func TestMeanExtractor(t *testing.T) {
	cues, err := Mean{}.Extract(constantWindow(5, 0.1, 0.2, 1.0, sensor.ContextLying))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.2, 1.0}
	for i := range want {
		if math.Abs(cues[i]-want[i]) > 1e-12 {
			t.Errorf("cues = %v, want %v", cues, want)
			break
		}
	}
}

func TestRMSExtractor(t *testing.T) {
	cues, err := RMS{}.Extract(constantWindow(5, 3, 0, 4, sensor.ContextLying))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cues[0]-3) > 1e-12 || cues[1] != 0 || math.Abs(cues[2]-4) > 1e-12 {
		t.Errorf("cues = %v, want [3 0 4]", cues)
	}
}

func TestRangeExtractor(t *testing.T) {
	w := []sensor.Reading{
		{Accel: sensor.Accel{X: -1, Y: 0, Z: 1}},
		{Accel: sensor.Accel{X: 3, Y: 0, Z: 2}},
	}
	cues, err := Range{}.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	if cues[0] != 4 || cues[1] != 0 || cues[2] != 1 {
		t.Errorf("cues = %v, want [4 0 1]", cues)
	}
}

func TestZeroCrossExtractor(t *testing.T) {
	w := make([]sensor.Reading, 8)
	for i := range w {
		x := 1.0
		if i%2 == 1 {
			x = -1
		}
		w[i] = sensor.Reading{Accel: sensor.Accel{X: x}}
	}
	cues, err := ZeroCross{}.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	// 7 crossings over 8 samples.
	if math.Abs(cues[0]-7.0/8.0) > 1e-12 {
		t.Errorf("cues[0] = %v, want 0.875", cues[0])
	}
}

func TestExtractorNames(t *testing.T) {
	want := map[string]Extractor{
		"stddev":    StdDev{},
		"mean":      Mean{},
		"rms":       RMS{},
		"range":     Range{},
		"zerocross": ZeroCross{},
		"domfreq":   DominantFreq{},
	}
	for name, e := range want {
		if e.Name() != name {
			t.Errorf("%T.Name() = %q, want %q", e, e.Name(), name)
		}
	}
}

func TestExtractorsRejectEmpty(t *testing.T) {
	for _, e := range []Extractor{StdDev{}, Mean{}, RMS{}, Range{}, ZeroCross{}} {
		if _, err := e.Extract(nil); !errors.Is(err, ErrEmptyWindow) {
			t.Errorf("%s: err = %v, want ErrEmptyWindow", e.Name(), err)
		}
	}
}

func TestPipelineDefaultsToStdDev(t *testing.T) {
	p := NewPipeline()
	if p.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", p.Dim())
	}
	cues, err := p.Cues(constantWindow(4, 1, 1, 1, sensor.ContextLying))
	if err != nil {
		t.Fatal(err)
	}
	if len(cues) != 3 {
		t.Fatalf("len(cues) = %d", len(cues))
	}
}

func TestPipelineConcatenates(t *testing.T) {
	p := NewPipeline(StdDev{}, Mean{}, RMS{})
	if p.Dim() != 9 {
		t.Fatalf("Dim = %d, want 9", p.Dim())
	}
	cues, err := p.Cues(constantWindow(4, 0.5, 0, 0, sensor.ContextLying))
	if err != nil {
		t.Fatal(err)
	}
	if len(cues) != 9 {
		t.Fatalf("len(cues) = %d, want 9", len(cues))
	}
	// StdDev of constants is 0; Mean X is 0.5; RMS X is 0.5.
	if cues[0] != 0 || cues[3] != 0.5 || cues[6] != 0.5 {
		t.Errorf("cues = %v", cues)
	}
}

func TestWindowerSlideNonOverlapping(t *testing.T) {
	readings := constantWindow(100, 1, 2, 3, sensor.ContextWriting)
	windows, err := Windower{Size: 25}.Slide(readings)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 4 {
		t.Fatalf("got %d windows, want 4", len(windows))
	}
	for _, w := range windows {
		if w.Truth != sensor.ContextWriting || !w.Pure {
			t.Errorf("window %+v mislabelled", w)
		}
		if len(w.Cues) != 3 {
			t.Errorf("cue dim %d", len(w.Cues))
		}
	}
}

func TestWindowerSlideOverlapping(t *testing.T) {
	readings := constantWindow(100, 1, 2, 3, sensor.ContextWriting)
	windows, err := Windower{Size: 50, Step: 25}.Slide(readings)
	if err != nil {
		t.Fatal(err)
	}
	// Starts at 0, 25, 50 → 3 windows.
	if len(windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(windows))
	}
}

func TestWindowerDropsPartialTail(t *testing.T) {
	readings := constantWindow(30, 1, 2, 3, sensor.ContextLying)
	windows, err := Windower{Size: 20}.Slide(readings)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 1 {
		t.Errorf("got %d windows, want 1 (tail dropped)", len(windows))
	}
}

func TestWindowerImpureAndMajority(t *testing.T) {
	a := constantWindow(30, 0, 0, 1, sensor.ContextWriting)
	b := constantWindow(10, 1, 1, 1, sensor.ContextPlaying)
	for i := range b {
		b[i].T = 0.3 + float64(i)*0.01
	}
	readings := append(a, b...)
	windows, err := Windower{Size: 40}.Slide(readings)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 1 {
		t.Fatalf("got %d windows", len(windows))
	}
	w := windows[0]
	if w.Pure {
		t.Error("window spanning a transition reported pure")
	}
	if w.Truth != sensor.ContextWriting {
		t.Errorf("majority truth = %v, want writing (30 vs 10)", w.Truth)
	}
}

func TestWindowerValidation(t *testing.T) {
	readings := constantWindow(10, 0, 0, 1, sensor.ContextLying)
	if _, err := (Windower{Size: 1}).Slide(readings); !errors.Is(err, ErrBadWindow) {
		t.Errorf("size 1: %v", err)
	}
	if _, err := (Windower{Size: 4, Step: -1}).Slide(readings); !errors.Is(err, ErrBadWindow) {
		t.Errorf("negative step: %v", err)
	}
}

func TestEndToEndCuesSeparateContexts(t *testing.T) {
	// Integration with the sensor package: windows from different contexts
	// produce separable stddev cues.
	rng := rand.New(rand.NewSource(21))
	var acc sensor.Accelerometer
	var all []sensor.Reading
	for _, c := range sensor.AllContexts() {
		r, err := acc.Record(sensor.NewModel(c, sensor.DefaultStyle()), c, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, r...)
	}
	windows, err := Windower{Size: 100}.Slide(all[:400])
	if err != nil {
		t.Fatal(err)
	}
	lyingMax := 0.0
	for _, w := range windows {
		if w.Truth == sensor.ContextLying && w.Cues[0] > lyingMax {
			lyingMax = w.Cues[0]
		}
	}
	if lyingMax > 0.05 {
		t.Errorf("lying stddev cue %v unexpectedly energetic", lyingMax)
	}
}
