package feature

import (
	"fmt"

	"cqm/internal/sensor"
)

// Streamer is the online counterpart of Windower: readings are pushed one
// at a time — the way a real appliance consumes its sensor — and complete
// windows are emitted as they fill. The zero value is not usable; build
// one with NewStreamer.
type Streamer struct {
	size     int
	step     int
	pipeline *Pipeline
	buf      []sensor.Reading
	skip     int // readings to discard before refilling (step > size)
	emitted  int
}

// NewStreamer returns a streaming windower emitting one window per step
// readings once size readings are buffered. step == 0 means step == size
// (non-overlapping). The pipeline may be nil for the paper's stddev cues.
func NewStreamer(size, step int, pipeline *Pipeline) (*Streamer, error) {
	if size < 2 {
		return nil, fmt.Errorf("%w: size %d", ErrBadWindow, size)
	}
	if step == 0 {
		step = size
	}
	if step < 1 {
		return nil, fmt.Errorf("%w: step %d", ErrBadWindow, step)
	}
	if pipeline == nil {
		pipeline = NewPipeline()
	}
	return &Streamer{size: size, step: step, pipeline: pipeline}, nil
}

// Push appends one reading; when it completes a window, the extracted
// window is returned with ok == true.
func (s *Streamer) Push(r sensor.Reading) (Window, bool, error) {
	if s.skip > 0 {
		s.skip--
		return Window{}, false, nil
	}
	s.buf = append(s.buf, r)
	if len(s.buf) < s.size {
		return Window{}, false, nil
	}
	chunk := s.buf[len(s.buf)-s.size:]
	cues, err := s.pipeline.Cues(chunk)
	if err != nil {
		return Window{}, false, err
	}
	w := Window{
		Start: chunk[0].T,
		End:   chunk[len(chunk)-1].T,
		Cues:  cues,
		Truth: majorityTruth(chunk),
		Pure:  isPure(chunk),
	}
	// Slide forward by step: keep the tail the next window reuses, or —
	// when the hop exceeds the window — discard the gap readings.
	if s.step >= s.size {
		s.skip = s.step - s.size
		s.buf = s.buf[:0]
	} else {
		keep := s.size - s.step
		s.buf = append(s.buf[:0], s.buf[len(s.buf)-keep:]...)
	}
	s.emitted++
	return w, true, nil
}

// Emitted returns the number of windows produced so far.
func (s *Streamer) Emitted() int { return s.emitted }

// Reset drops buffered readings (e.g. after a sensing gap).
func (s *Streamer) Reset() {
	s.buf = s.buf[:0]
}

// Pending returns the number of buffered readings awaiting a full window.
func (s *Streamer) Pending() int { return len(s.buf) }
