// Package predict implements the first item of the paper's outlook (§5):
// "Future research will cover the use of the context quality system for
// context prediction. The measure can i.e. indicate that a context
// classification changes in direction to another context."
//
// The key observation is that the quality FIS S_Q scores any (cues, class)
// pair — not only the class the classifier chose. A Monitor therefore
// scores the current cue window against *every* class each step. While the
// pen is solidly writing, the quality trends are flat; as the movement
// drifts toward playing, q(playing) rises window over window while
// q(writing) falls. The Monitor predicts a change toward the alternative
// whose quality has been rising persistently while the current context's
// quality degrades — the "changes in direction to another context" signal
// the paper describes.
//
// Direction (rising/falling), not absolute level, is the trigger: the
// quality FIS extrapolates arbitrary levels for (cues, class) pairings it
// never saw in training, but it only produces *sustained slopes* when the
// cues themselves are moving.
package predict

import (
	"errors"
	"fmt"

	"cqm/internal/core"
	"cqm/internal/sensor"
)

// Prediction errors.
var (
	// ErrNotReady reports a monitor built without its dependencies.
	ErrNotReady = errors.New("predict: monitor not configured")
	// ErrBadConfig reports invalid monitor parameters.
	ErrBadConfig = errors.New("predict: invalid configuration")
)

// Config parameterizes a Monitor.
type Config struct {
	// Smoothing is the EWMA factor α ∈ (0, 1] applied to per-class
	// quality trends; 1 disables smoothing. Default 0.5.
	Smoothing float64
	// RiseDelta is the minimum per-window trend increase that counts as
	// "rising" (filters noise jitter). Default 0.02.
	RiseDelta float64
	// Persistence is how many consecutive rising windows an alternative
	// needs before it can trigger a prediction. Default 2.
	Persistence int
	// MinQuality gates predictions: alternatives whose trend is below
	// this level never trigger. Default 0.3.
	MinQuality float64
}

func (c Config) withDefaults() Config {
	if c.Smoothing == 0 {
		c.Smoothing = 0.5
	}
	if c.RiseDelta == 0 {
		c.RiseDelta = 0.02
	}
	if c.Persistence == 0 {
		c.Persistence = 2
	}
	if c.MinQuality == 0 {
		c.MinQuality = 0.3
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Smoothing <= 0 || c.Smoothing > 1:
		return fmt.Errorf("%w: smoothing %v", ErrBadConfig, c.Smoothing)
	case c.RiseDelta < 0 || c.RiseDelta > 1:
		return fmt.Errorf("%w: rise delta %v", ErrBadConfig, c.RiseDelta)
	case c.Persistence < 1:
		return fmt.Errorf("%w: persistence %d", ErrBadConfig, c.Persistence)
	case c.MinQuality < 0 || c.MinQuality > 1:
		return fmt.Errorf("%w: min quality %v", ErrBadConfig, c.MinQuality)
	default:
		return nil
	}
}

// Step is the monitor's output for one cue window.
type Step struct {
	// Current is the classifier's context for this window.
	Current sensor.Context
	// Qualities maps every class to its smoothed quality trend.
	Qualities map[sensor.Context]float64
	// Predicted is the context the movement is drifting toward, or
	// ContextUnknown when no change is indicated.
	Predicted sensor.Context
	// ChangeIndicated reports whether a context change is predicted.
	ChangeIndicated bool
}

// Monitor tracks per-class quality trends over a classified stream.
type Monitor struct {
	measure *core.Measure
	classes []sensor.Context
	cfg     Config
	trend   map[sensor.Context]float64
	rising  map[sensor.Context]int
	falling map[sensor.Context]int
	primed  bool
}

// NewMonitor returns a monitor over the measure for the given classes.
func NewMonitor(measure *core.Measure, classes []sensor.Context, cfg Config) (*Monitor, error) {
	if measure == nil {
		return nil, fmt.Errorf("%w: nil measure", ErrNotReady)
	}
	if len(classes) < 2 {
		return nil, fmt.Errorf("%w: need >= 2 classes, got %d", ErrBadConfig, len(classes))
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Monitor{
		measure: measure,
		classes: append([]sensor.Context(nil), classes...),
		cfg:     cfg,
		trend:   make(map[sensor.Context]float64, len(classes)),
		rising:  make(map[sensor.Context]int, len(classes)),
		falling: make(map[sensor.Context]int, len(classes)),
	}, nil
}

// Observe feeds one classified window into the monitor and returns the
// prediction step. ε-state scores contribute a quality of 0 for that
// class (the measure itself says the pairing is uninterpretable).
func (m *Monitor) Observe(cues []float64, current sensor.Context) (Step, error) {
	if m == nil || m.measure == nil {
		return Step{}, ErrNotReady
	}
	step := Step{
		Current:   current,
		Qualities: make(map[sensor.Context]float64, len(m.classes)),
		Predicted: sensor.ContextUnknown,
	}
	for _, c := range m.classes {
		q, err := m.measure.Score(cues, c)
		if err != nil {
			if core.IsEpsilon(err) {
				q = 0
			} else {
				return Step{}, fmt.Errorf("predict: scoring class %v: %w", c, err)
			}
		}
		if !m.primed {
			m.trend[c] = q
		} else {
			alpha := m.cfg.Smoothing
			next := alpha*q + (1-alpha)*m.trend[c]
			switch {
			case next >= m.trend[c]+m.cfg.RiseDelta:
				m.rising[c]++
				m.falling[c] = 0
			case next <= m.trend[c]-m.cfg.RiseDelta:
				m.falling[c]++
				m.rising[c] = 0
			default:
				m.rising[c] = 0
				m.falling[c] = 0
			}
			m.trend[c] = next
		}
		step.Qualities[c] = m.trend[c]
	}
	m.primed = true

	// Change is indicated toward the strongest rising alternative once the
	// current context's quality degrades below the alternative's level.
	// With a measure built from augmented (counterfactual) observations —
	// see core.AugmentObservations — the per-class qualities are
	// calibrated, so the crossing is a genuine "changes in direction to
	// another context" signal.
	if m.falling[current] >= 1 || m.trend[current] < m.cfg.MinQuality {
		bestAlt := sensor.ContextUnknown
		bestQ := -1.0
		for _, c := range m.classes {
			if c == current {
				continue
			}
			if m.rising[c] >= m.cfg.Persistence && m.trend[c] > bestQ {
				bestAlt, bestQ = c, m.trend[c]
			}
		}
		if bestAlt != sensor.ContextUnknown && bestQ >= m.cfg.MinQuality {
			step.Predicted = bestAlt
			step.ChangeIndicated = true
		}
	}
	return step, nil
}

// Reset clears the monitor's trend state (e.g. between sessions).
func (m *Monitor) Reset() {
	m.trend = make(map[sensor.Context]float64, len(m.classes))
	m.rising = make(map[sensor.Context]int, len(m.classes))
	m.falling = make(map[sensor.Context]int, len(m.classes))
	m.primed = false
}
