package predict

import (
	"fmt"
	"strings"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/feature"
	"cqm/internal/sensor"
)

// Outcome summarizes a prediction experiment over a labelled stream with
// known transition times.
type Outcome struct {
	// Transitions is the number of true context changes in the stream.
	Transitions int
	// Anticipated is how many true changes were predicted at or before
	// the window in which the ground truth actually changed.
	Anticipated int
	// MeanLeadWindows is the average number of windows by which
	// anticipated changes were predicted early.
	MeanLeadWindows float64
	// FalseAlarms is the number of change predictions in stable phases
	// that no true change followed within the horizon.
	FalseAlarms int
	// StableWindows is the number of windows in stable phases (the base
	// for the false-alarm rate).
	StableWindows int
}

// FalseAlarmRate returns FalseAlarms/StableWindows.
func (o Outcome) FalseAlarmRate() float64 {
	if o.StableWindows == 0 {
		return 0
	}
	return float64(o.FalseAlarms) / float64(o.StableWindows)
}

// AnticipationRate returns Anticipated/Transitions.
func (o Outcome) AnticipationRate() float64 {
	if o.Transitions == 0 {
		return 0
	}
	return float64(o.Anticipated) / float64(o.Transitions)
}

// Render summarizes the outcome.
func (o Outcome) Render() string {
	var sb strings.Builder
	sb.WriteString("Context prediction (paper §5 outlook)\n")
	fmt.Fprintf(&sb, "  true transitions       %d\n", o.Transitions)
	fmt.Fprintf(&sb, "  anticipated            %d (%.0f %%)\n", o.Anticipated, 100*o.AnticipationRate())
	fmt.Fprintf(&sb, "  mean lead              %.1f windows\n", o.MeanLeadWindows)
	fmt.Fprintf(&sb, "  false alarms           %d over %d stable windows (%.1f %%)\n",
		o.FalseAlarms, o.StableWindows, 100*o.FalseAlarmRate())
	return sb.String()
}

// Horizon is how many windows before a true change a prediction counts as
// anticipation rather than a false alarm.
const Horizon = 3

// RunExperiment streams a recording through classifier + monitor and
// scores predictions against the ground-truth transitions.
func RunExperiment(
	clf classify.Classifier,
	measure *core.Measure,
	readings []sensor.Reading,
	windowSize int,
	cfg Config,
) (*Outcome, error) {
	// Overlapping windows (quarter-window hop): the drift through a
	// transition then spans several observations, giving the trend
	// monitor something to anticipate. Non-overlapping windows flip the
	// classifier in the same observation the truth changes — there is no
	// lead time to win at that granularity.
	step := windowSize / 4
	if step < 1 {
		step = 1
	}
	windows, err := (feature.Windower{Size: windowSize, Step: step}).Slide(readings)
	if err != nil {
		return nil, fmt.Errorf("predict: windowing: %w", err)
	}
	monitor, err := NewMonitor(measure, sensor.AllContexts(), cfg)
	if err != nil {
		return nil, err
	}

	// Truth-change window indices.
	changeAt := make(map[int]bool)
	for i := 1; i < len(windows); i++ {
		if windows[i].Truth != windows[i-1].Truth {
			changeAt[i] = true
		}
	}

	type flagged struct {
		window    int
		predicted sensor.Context
	}
	var flags []flagged
	for i, w := range windows {
		class, err := clf.Classify(w.Cues)
		if err != nil {
			return nil, fmt.Errorf("predict: classifying window %d: %w", i, err)
		}
		step, err := monitor.Observe(w.Cues, class)
		if err != nil {
			return nil, err
		}
		if step.ChangeIndicated {
			flags = append(flags, flagged{window: i, predicted: step.Predicted})
		}
	}

	out := &Outcome{Transitions: len(changeAt)}
	var leadSum float64
	usedFlags := make(map[int]bool)
	for i := 1; i < len(windows); i++ {
		if !changeAt[i] {
			continue
		}
		target := windows[i].Truth
		// Anticipated: the predicted target class was flagged within the
		// horizon before (or exactly at) the change.
		for fi, f := range flags {
			if usedFlags[fi] {
				continue
			}
			if f.window <= i && f.window >= i-Horizon && f.predicted == target {
				out.Anticipated++
				leadSum += float64(i - f.window)
				usedFlags[fi] = true
				break
			}
		}
	}
	if out.Anticipated > 0 {
		out.MeanLeadWindows = leadSum / float64(out.Anticipated)
	}
	// Stable windows: not within Horizon of any change in either
	// direction (the turbulence right after a change belongs to the
	// transition, not to the stable phase).
	nearChange := func(i int) bool {
		for d := 0; d <= Horizon; d++ {
			if changeAt[i+d] || (i-d >= 0 && changeAt[i-d]) {
				return true
			}
		}
		return false
	}
	for i := range windows {
		if nearChange(i) {
			continue
		}
		out.StableWindows++
	}
	for fi, f := range flags {
		if usedFlags[fi] || nearChange(f.window) {
			continue
		}
		out.FalseAlarms++
	}
	return out, nil
}
