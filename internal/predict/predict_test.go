package predict

import (
	"errors"
	"math/rand"
	"testing"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/feature"
	"cqm/internal/sensor"
)

// stack trains a classifier + measure for prediction tests.
func stack(t testing.TB, seed int64) (classify.Classifier, *core.Measure) {
	t.Helper()
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{Segments: []sensor.Segment{
			{Context: sensor.ContextLying, Duration: 10},
			{Context: sensor.ContextWriting, Duration: 10},
			{Context: sensor.ContextPlaying, Duration: 10},
		}}},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The prediction measure is built from augmented (counterfactual)
	// observations so alternative-class qualities are calibrated.
	obs, err := core.AugmentObservations(mixed, sensor.AllContexts())
	if err != nil {
		t.Fatal(err)
	}
	measure, err := core.Build(obs, nil, core.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return clf, measure
}

func TestNewMonitorValidation(t *testing.T) {
	_, measure := stack(t, 60)
	if _, err := NewMonitor(nil, sensor.AllContexts(), Config{}); !errors.Is(err, ErrNotReady) {
		t.Errorf("nil measure: %v", err)
	}
	if _, err := NewMonitor(measure, sensor.AllContexts()[:1], Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("one class: %v", err)
	}
	bad := []Config{
		{Smoothing: 2},
		{Smoothing: -0.5},
		{RiseDelta: 2},
		{Persistence: -1},
		{MinQuality: 2},
	}
	for i, cfg := range bad {
		if _, err := NewMonitor(measure, sensor.AllContexts(), cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("bad config %d: %v", i, err)
		}
	}
}

func TestMonitorScoresAllClasses(t *testing.T) {
	clf, measure := stack(t, 61)
	m, err := NewMonitor(measure, sensor.AllContexts(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A solid writing window.
	rng := rand.New(rand.NewSource(1))
	var acc sensor.Accelerometer
	readings, err := acc.Record(sensor.NewWriting(sensor.DefaultStyle()), sensor.ContextWriting, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	cues := cuesOf(t, readings)
	class, err := clf.Classify(cues)
	if err != nil {
		t.Fatal(err)
	}
	step, err := m.Observe(cues, class)
	if err != nil {
		t.Fatal(err)
	}
	if len(step.Qualities) != 3 {
		t.Fatalf("qualities for %d classes, want 3", len(step.Qualities))
	}
	for c, q := range step.Qualities {
		if q < 0 || q > 1 {
			t.Errorf("q(%v) = %v outside [0,1]", c, q)
		}
	}
}

func cuesOf(t testing.TB, readings []sensor.Reading) []float64 {
	t.Helper()
	cues, err := feature.StdDev{}.Extract(readings)
	if err != nil {
		t.Fatal(err)
	}
	return cues
}

func TestMonitorStablePhaseQuiet(t *testing.T) {
	// During a long nominal writing phase the monitor must not predict a
	// change on (almost) every window.
	clf, measure := stack(t, 62)
	rng := rand.New(rand.NewSource(2))
	scenario := &sensor.Scenario{Segments: []sensor.Segment{
		{Context: sensor.ContextWriting, Duration: 15},
	}}
	readings, err := scenario.Run(rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunExperiment(clf, measure, readings, 100, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Transitions != 0 {
		t.Fatalf("single-phase scenario has %d transitions", out.Transitions)
	}
	if rate := out.FalseAlarmRate(); rate > 0.5 {
		t.Errorf("false-alarm rate %v in a stable phase, want < 0.5", rate)
	}
}

func TestMonitorAnticipatesTransitions(t *testing.T) {
	clf, measure := stack(t, 63)
	rng := rand.New(rand.NewSource(3))
	// Long transitions give the quality trend room to drift.
	scenario := &sensor.Scenario{
		Segments: []sensor.Segment{
			{Context: sensor.ContextWriting, Duration: 8},
			{Context: sensor.ContextPlaying, Duration: 8},
			{Context: sensor.ContextWriting, Duration: 8},
			{Context: sensor.ContextLying, Duration: 8},
		},
		Transition: 1.5,
	}
	readings, err := scenario.Run(rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunExperiment(clf, measure, readings, 100, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Transitions != 3 {
		t.Fatalf("transitions = %d, want 3", out.Transitions)
	}
	if out.Anticipated == 0 {
		t.Error("no transition anticipated")
	}
	if out.Render() == "" {
		t.Error("empty render")
	}
}

func TestMonitorReset(t *testing.T) {
	_, measure := stack(t, 64)
	m, err := NewMonitor(measure, sensor.AllContexts(), Config{Smoothing: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cues := []float64{0.15, 0.1, 0.03}
	if _, err := m.Observe(cues, sensor.ContextWriting); err != nil {
		t.Fatal(err)
	}
	before, err := m.Observe(cues, sensor.ContextWriting)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	after, err := m.Observe(cues, sensor.ContextWriting)
	if err != nil {
		t.Fatal(err)
	}
	// After a reset the first observation primes the trend directly, so
	// the smoothed value equals the instantaneous score again.
	for c := range before.Qualities {
		if before.Qualities[c] == after.Qualities[c] {
			continue // identical is fine when the trend was already flat
		}
	}
	if m.primed != true {
		t.Error("monitor not primed after observe")
	}
}

func TestMonitorNilSafety(t *testing.T) {
	var m *Monitor
	if _, err := m.Observe([]float64{1}, sensor.ContextLying); !errors.Is(err, ErrNotReady) {
		t.Errorf("nil monitor: %v", err)
	}
}
