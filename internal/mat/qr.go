package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix with m ≥ n:
// A = Q·R with Q orthogonal (m×m, stored implicitly) and R upper triangular.
type QR struct {
	qr   *Matrix   // packed factors: R in the upper triangle, reflectors below
	tau  []float64 // Householder scalars
	rows int
	cols int
}

// FactorQR computes the Householder QR factorization of a. It returns
// ErrShape for matrices with fewer rows than columns.
func FactorQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("%w: QR requires rows >= cols, got %dx%d", ErrShape, m, n)
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the norm of column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		tau[k] = norm
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau, rows: m, cols: n}, nil
}

// R returns the upper-triangular factor as an n×n matrix.
func (f *QR) R() *Matrix {
	r := New(f.cols, f.cols)
	for i := 0; i < f.cols; i++ {
		for j := i; j < f.cols; j++ {
			if i == j {
				r.Set(i, j, -f.tau[i])
			} else {
				r.Set(i, j, f.qr.At(i, j))
			}
		}
	}
	return r
}

// Solve solves the least-squares problem min ‖A·x − b‖₂ using the stored
// factorization. It returns ErrSingular when R has a (near-)zero diagonal.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.rows {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), f.rows)
	}
	y := make([]float64, f.rows)
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < f.cols; k++ {
		if f.tau[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.rows; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.rows; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution against R. Pivots are judged against the largest
	// diagonal magnitude: a relative tolerance catches numerically
	// rank-deficient systems, not just exact zeros.
	var maxDiag float64
	for _, tv := range f.tau {
		if a := math.Abs(tv); a > maxDiag {
			maxDiag = a
		}
	}
	pivotTol := 1e-12 * maxDiag
	x := make([]float64, f.cols)
	for i := f.cols - 1; i >= 0; i-- {
		diag := -f.tau[i]
		if math.Abs(diag) <= pivotTol {
			return nil, fmt.Errorf("%w: negligible pivot at column %d", ErrSingular, i)
		}
		s := y[i]
		for j := i + 1; j < f.cols; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / diag
	}
	return x, nil
}
