// Package mat provides the dense linear-algebra substrate used by the CQM
// pipeline: matrices, vectors, Householder QR, one-sided Jacobi SVD, linear
// solving, and Moore–Penrose pseudo-inverses.
//
// The package is deliberately small and self-contained (stdlib only). The
// matrices produced by the CQM training pipeline are tall and thin — design
// matrices with one row per training sample and one column per consequent
// parameter — so the implementations favour numerical robustness over
// asymptotic cleverness. One-sided Jacobi SVD in particular is simple and
// accurate for these shapes.
//
// All operations are value-safe: no function retains or aliases caller
// slices unless documented otherwise.
package mat
