package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0×0) matrix ready to use with the query
// methods; use New, NewFromRows or Identity to build non-empty matrices.
type Matrix struct {
	rows, cols int
	data       []float64
}

// Common matrix construction and shape errors.
var (
	// ErrShape reports incompatible matrix dimensions for an operation.
	ErrShape = errors.New("mat: incompatible matrix shapes")
	// ErrSingular reports a matrix too close to singular to solve against.
	ErrSingular = errors.New("mat: matrix is singular to working precision")
	// ErrBounds reports an out-of-range row or column index.
	ErrBounds = errors.New("mat: index out of range")
)

// New returns an r×c matrix of zeros. It panics if r or c is negative.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromRows builds a matrix from a slice of equal-length rows. The input
// is copied. It returns ErrShape if rows have differing lengths.
func NewFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j. It panics with ErrBounds
// semantics if the indices are out of range.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies src into row i. It panics if src has the wrong length.
func (m *Matrix) SetRow(i int, src []float64) {
	if len(src) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d, want %d", len(src), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], src)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m·b. It returns ErrShape if the inner
// dimensions disagree.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix–vector product m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrShape, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var sum float64
		for j, rv := range row {
			sum += rv * v[j]
		}
		out[i] = sum
	}
	return out, nil
}

// Add returns m + b elementwise.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Sub returns m − b elementwise.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range m.data {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			ssq = 1 + ssq*(scale/av)*(scale/av)
			scale = av
		} else {
			ssq += (av / scale) * (av / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element value, or 0 for empty matrices.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether m and b have the same shape and all elements within
// tol of each other.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.4g", m.data[i*m.cols+j])
		}
	}
	sb.WriteByte(']')
	return sb.String()
}
