package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSolveExact(t *testing.T) {
	// Square, well conditioned system with known solution.
	a, _ := NewFromRows([][]float64{
		{2, 1, 0},
		{1, 3, 1},
		{0, 1, 4},
	})
	want := []float64{1, -2, 3}
	b, _ := a.MulVec(want)
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQRLeastSquaresResidualOrthogonal(t *testing.T) {
	// Over-determined system: the residual must be orthogonal to the
	// column space of A.
	r := rand.New(rand.NewSource(7))
	a := randomMatrix(r, 20, 4)
	b := make([]float64, 20)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	res := SubVec(b, ax)
	at := a.T()
	proj, _ := at.MulVec(res)
	if n := Norm2(proj); n > 1e-9 {
		t.Errorf("Aᵀ·residual norm = %v, want ~0", n)
	}
}

func TestQRWideMatrixRejected(t *testing.T) {
	if _, err := FactorQR(New(2, 5)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestQRRIsUpperTriangular(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomMatrix(r, 6, 4)
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	rm := f.R()
	for i := 1; i < rm.Rows(); i++ {
		for j := 0; j < i; j++ {
			if rm.At(i, j) != 0 {
				t.Errorf("R(%d,%d) = %v, want 0", i, j, rm.At(i, j))
			}
		}
	}
}

func TestQRSingularDetected(t *testing.T) {
	a, _ := NewFromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSVDReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, shape := range []struct{ m, n int }{{5, 3}, {3, 5}, {4, 4}, {1, 1}, {10, 2}} {
		a := randomMatrix(r, shape.m, shape.n)
		d, err := FactorSVD(a)
		if err != nil {
			t.Fatalf("%dx%d: %v", shape.m, shape.n, err)
		}
		recon := reconstruct(d)
		if !recon.Equal(a, 1e-9) {
			t.Errorf("%dx%d: U·S·Vᵀ does not reconstruct A", shape.m, shape.n)
		}
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomMatrix(r, 8, 5)
	d, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d.S); i++ {
		if d.S[i] > d.S[i-1] {
			t.Errorf("S not sorted: S[%d]=%v > S[%d]=%v", i, d.S[i], i-1, d.S[i-1])
		}
		if d.S[i] < 0 {
			t.Errorf("S[%d] = %v < 0", i, d.S[i])
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 4) has singular values {4, 3}.
	a, _ := NewFromRows([][]float64{{3, 0}, {0, 4}})
	d, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.S[0]-4) > 1e-12 || math.Abs(d.S[1]-3) > 1e-12 {
		t.Errorf("S = %v, want [4 3]", d.S)
	}
}

func TestSVDOrthonormalColumns(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randomMatrix(r, 7, 4)
	d, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	utu, _ := d.U.T().Mul(d.U)
	if !utu.Equal(Identity(4), 1e-9) {
		t.Error("UᵀU != I")
	}
	vtv, _ := d.V.T().Mul(d.V)
	if !vtv.Equal(Identity(4), 1e-9) {
		t.Error("VᵀV != I")
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix.
	a, _ := NewFromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	d, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Rank(0); got != 1 {
		t.Errorf("Rank = %d, want 1", got)
	}
	if !math.IsInf(d.Cond(), 1) && d.Cond() < 1e12 {
		t.Errorf("Cond = %v, want very large", d.Cond())
	}
}

func TestSVDSolveMinimumNorm(t *testing.T) {
	// Under-determined consistent system: solution must satisfy A·x = b
	// and be the minimum-norm one (orthogonal to the null space).
	a, _ := NewFromRows([][]float64{{1, 1, 0}})
	d, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := d.Solve([]float64{2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	if math.Abs(ax[0]-2) > 1e-10 {
		t.Errorf("A·x = %v, want 2", ax[0])
	}
	want := []float64{1, 1, 0} // minimum-norm solution
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x = %v, want %v", x, want)
			break
		}
	}
}

func TestSVDSolveMatchesQROnFullRank(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a := randomMatrix(r, 15, 4)
	b := make([]float64, 15)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	qr, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	xq, err := qr.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := d.Solve(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xq {
		if math.Abs(xq[i]-xs[i]) > 1e-8 {
			t.Errorf("x[%d]: QR %v vs SVD %v", i, xq[i], xs[i])
		}
	}
}

func TestPseudoInverseProperties(t *testing.T) {
	// Moore–Penrose condition A·A⁺·A = A on a rank-deficient matrix.
	a, _ := NewFromRows([][]float64{
		{1, 2},
		{2, 4},
		{0, 1},
	})
	d, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	pinv := d.PseudoInverse(0)
	apa, _ := a.Mul(pinv)
	apa, _ = apa.Mul(a)
	if !apa.Equal(a, 1e-9) {
		t.Error("A·A⁺·A != A")
	}
	pap, _ := pinv.Mul(a)
	pap, _ = pap.Mul(pinv)
	if !pap.Equal(pinv, 1e-9) {
		t.Error("A⁺·A·A⁺ != A⁺")
	}
}

func TestSVDEmptyRejected(t *testing.T) {
	if _, err := FactorSVD(New(0, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestSVDReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(8)
		n := 1 + r.Intn(8)
		a := randomMatrix(r, m, n)
		d, err := FactorSVD(a)
		if err != nil {
			return false
		}
		return reconstruct(d).Equal(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func reconstruct(d *SVD) *Matrix {
	k := len(d.S)
	s := New(k, k)
	for i, sv := range d.S {
		s.Set(i, i, sv)
	}
	us, _ := d.U.Mul(s)
	recon, _ := us.Mul(d.V.T())
	return recon
}

func BenchmarkSVDTall(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomMatrix(r, 200, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorSVD(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRSolve(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomMatrix(r, 200, 10)
	rhs := make([]float64, 200)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := FactorQR(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}
