package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("NewFromRows: %v", err)
	}
	if got := m.At(2, 1); got != 6 {
		t.Errorf("At(2,1) = %v, want 6", got)
	}
}

func TestNewFromRowsRagged(t *testing.T) {
	_, err := NewFromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestNewFromRowsEmpty(t *testing.T) {
	m, err := NewFromRows(nil)
	if err != nil {
		t.Fatalf("NewFromRows(nil): %v", err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Errorf("shape = %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestNewFromRowsCopies(t *testing.T) {
	row := []float64{1, 2}
	m, err := NewFromRows([][]float64{row})
	if err != nil {
		t.Fatal(err)
	}
	row[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("NewFromRows aliases caller slice")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if m.At(1, 0) != 7.5 {
		t.Errorf("At(1,0) = %v, want 7.5", m.At(1, 0))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestRowColCopies(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row returned aliased storage")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Col(1) = %v, want [2 4]", c)
	}
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Error("Col returned aliased storage")
	}
}

func TestSetRow(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 {
		t.Errorf("At(1,2) = %v, want 9", m.At(1, 2))
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 {
		t.Errorf("T(2,1) = %v, want 6", tr.At(2, 1))
	}
}

func TestMul(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromRows([][]float64{{5, 5}, {5, 5}})
	if !sum.Equal(want, 0) {
		t.Errorf("Add = %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(a, 0) {
		t.Errorf("Sub round trip = %v", diff)
	}
	sc := a.Scale(2)
	if sc.At(1, 1) != 8 {
		t.Errorf("Scale(2) At(1,1) = %v, want 8", sc.At(1, 1))
	}
	// Originals untouched.
	if a.At(0, 0) != 1 {
		t.Error("Add/Scale mutated receiver")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := NewFromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestMaxAbs(t *testing.T) {
	m, _ := NewFromRows([][]float64{{-7, 2}, {3, 4}})
	if got := m.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
}

func TestString(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Error("String returned empty")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 3, 4)
		b := randomMatrix(r, 4, 2)
		c := randomMatrix(r, 2, 5)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equal(abc2, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 1+r.Intn(6), 1+r.Intn(6))
		return a.T().T().Equal(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	return m
}
