package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"parallel", []float64{1, 2, 3}, []float64{1, 2, 3}, 14},
		{"empty", nil, nil, 0},
		{"negative", []float64{-1, 2}, []float64{3, 4}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.want {
				t.Errorf("Dot = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	tests := []struct {
		name string
		v    []float64
		want float64
	}{
		{"pythagorean", []float64{3, 4}, 5},
		{"zero", []float64{0, 0, 0}, 0},
		{"empty", nil, 0},
		{"single", []float64{-2}, 2},
		{"huge values no overflow", []float64{1e200, 1e200}, math.Sqrt2 * 1e200},
		{"tiny values no underflow", []float64{1e-200, 1e-200}, math.Sqrt2 * 1e-200},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Norm2(tt.v)
			if math.Abs(got-tt.want) > 1e-12*math.Max(1, tt.want) {
				t.Errorf("Norm2 = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVecArithmetic(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := AddVec(a, b); got[2] != 9 {
		t.Errorf("AddVec = %v", got)
	}
	if got := SubVec(b, a); got[0] != 3 {
		t.Errorf("SubVec = %v", got)
	}
	if got := ScaleVec(2, a); got[1] != 4 {
		t.Errorf("ScaleVec = %v", got)
	}
	if a[0] != 1 || b[0] != 4 {
		t.Error("vector ops mutated inputs")
	}
}

func TestDistance(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Distance(a, b); got != 5 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := SquaredDistance(a, b); got != 25 {
		t.Errorf("SquaredDistance = %v, want 25", got)
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
			c[i] = r.NormFloat64()
		}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
