package mat

import (
	"fmt"
	"math"
)

// Vector helpers operate on plain []float64 slices so callers can pass cue
// vectors around without wrapping them in a type.

// Dot returns the dot product of a and b. It panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i, av := range a {
		sum += av * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of v, computed with scaling to avoid
// overflow.
func Norm2(v []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			ssq = 1 + ssq*(scale/ax)*(scale/ax)
			scale = ax
		} else {
			ssq += (ax / scale) * (ax / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// AddVec returns a + b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: AddVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a − b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: SubVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns s·v as a new slice.
func ScaleVec(s float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = s * x
	}
	return out
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Distance length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// SquaredDistance returns the squared Euclidean distance between a and b.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: SquaredDistance length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}
