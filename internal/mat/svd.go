package mat

import (
	"fmt"
	"math"
)

// SVD holds a thin singular value decomposition A = U·diag(S)·Vᵀ of an
// m×n matrix. U is m×n with orthonormal columns, V is n×n orthogonal, and
// S holds the singular values in non-increasing order.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// maxJacobiSweeps bounds the one-sided Jacobi iteration; convergence is
// typically reached in well under 30 sweeps for the shapes we handle.
const maxJacobiSweeps = 60

// FactorSVD computes the thin SVD of a using one-sided Jacobi rotations.
// The method orthogonalizes the columns of a working copy of A by plane
// rotations accumulated into V; the singular values are the resulting
// column norms and U the normalized columns.
//
// Matrices with more columns than rows are handled by decomposing the
// transpose and swapping U and V.
func FactorSVD(a *Matrix) (*SVD, error) {
	m, n := a.Rows(), a.Cols()
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("%w: SVD of empty %dx%d matrix", ErrShape, m, n)
	}
	if m < n {
		t, err := FactorSVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVD{U: t.V, S: t.S, V: t.U}, nil
	}

	w := a.Clone() // working copy whose columns get orthogonalized
	v := Identity(n)

	const eps = 1e-15
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		offDiag := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				offDiag = true
				// Compute the Jacobi rotation that zeroes gamma.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					w.Set(i, p, c*wp-s*wq)
					w.Set(i, q, s*wp+c*wq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if !offDiag {
			break
		}
	}

	// Extract singular values and normalize the columns into U.
	s := make([]float64, n)
	u := New(m, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm = math.Hypot(norm, w.At(i, j))
		}
		s[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, w.At(i, j)/norm)
			}
		}
	}

	// Sort singular values (and the corresponding columns) descending.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		max := i
		for j := i + 1; j < n; j++ {
			if s[order[j]] > s[order[max]] {
				max = j
			}
		}
		order[i], order[max] = order[max], order[i]
	}
	su := New(m, n)
	sv := New(n, n)
	ss := make([]float64, n)
	for dst, src := range order {
		ss[dst] = s[src]
		for i := 0; i < m; i++ {
			su.Set(i, dst, u.At(i, src))
		}
		for i := 0; i < n; i++ {
			sv.Set(i, dst, v.At(i, src))
		}
	}
	return &SVD{U: su, S: ss, V: sv}, nil
}

// Rank returns the numerical rank: the number of singular values larger
// than tol·max(S). A non-positive tol selects a default based on machine
// epsilon and the matrix size.
func (d *SVD) Rank(tol float64) int {
	if len(d.S) == 0 {
		return 0
	}
	if tol <= 0 {
		tol = float64(maxInt(d.U.Rows(), d.V.Rows())) * 2.220446049250313e-16
	}
	cut := tol * d.S[0]
	rank := 0
	for _, sv := range d.S {
		if sv > cut {
			rank++
		}
	}
	return rank
}

// Cond returns the 2-norm condition number S_max/S_min, or +Inf when the
// smallest singular value is zero.
func (d *SVD) Cond() float64 {
	if len(d.S) == 0 {
		return 0
	}
	min := d.S[len(d.S)-1]
	if min == 0 {
		return math.Inf(1)
	}
	return d.S[0] / min
}

// Solve computes the minimum-norm least-squares solution of A·x = b using
// the decomposition, truncating singular values below tol·max(S)
// (a non-positive tol selects a machine-epsilon default).
func (d *SVD) Solve(b []float64, tol float64) ([]float64, error) {
	m := d.U.Rows()
	n := d.V.Rows()
	if len(b) != m {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), m)
	}
	if tol <= 0 {
		tol = float64(maxInt(m, n)) * 2.220446049250313e-16
	}
	var cut float64
	if len(d.S) > 0 {
		cut = tol * d.S[0]
	}
	// y = Σ_j (u_jᵀ b / s_j) v_j for s_j above the cutoff.
	x := make([]float64, n)
	for j, sv := range d.S {
		if sv <= cut {
			continue
		}
		var uj float64
		for i := 0; i < m; i++ {
			uj += d.U.At(i, j) * b[i]
		}
		scale := uj / sv
		for i := 0; i < n; i++ {
			x[i] += scale * d.V.At(i, j)
		}
	}
	return x, nil
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse built from the
// decomposition with the given singular-value tolerance (non-positive for
// the default).
func (d *SVD) PseudoInverse(tol float64) *Matrix {
	m := d.U.Rows()
	n := d.V.Rows()
	if tol <= 0 {
		tol = float64(maxInt(m, n)) * 2.220446049250313e-16
	}
	var cut float64
	if len(d.S) > 0 {
		cut = tol * d.S[0]
	}
	pinv := New(n, m)
	for j, sv := range d.S {
		if sv <= cut {
			continue
		}
		inv := 1 / sv
		for r := 0; r < n; r++ {
			vr := d.V.At(r, j) * inv
			if vr == 0 {
				continue
			}
			for c := 0; c < m; c++ {
				pinv.Set(r, c, pinv.At(r, c)+vr*d.U.At(c, j))
			}
		}
	}
	return pinv
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
