package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cqm/internal/obs"
)

// faultyConfig enables every fault kind at once.
func faultyConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		ResetProb:     0.05,
		BlackholeRate: 0.1,
		TruncateProb:  0.05,
		CorruptProb:   0.05,
		DribbleProb:   0.1,
		DelayProb:     0.3,
		DelayBase:     time.Millisecond,
		DelayMax:      5 * time.Millisecond,
		DribbleDelay:  time.Millisecond,
		Record:        true,
	}
}

func TestDeciderDeterminism(t *testing.T) {
	cfg := faultyConfig(42)
	a, b := NewDecider(cfg, 3), NewDecider(cfg, 3)
	for i := 0; i < 10_000; i++ {
		a.Next()
		b.Next()
	}
	if !reflect.DeepEqual(a.Schedule(), b.Schedule()) {
		t.Fatal("same seed and stream produced different schedules")
	}
	// A different stream index must decorrelate.
	c := NewDecider(cfg, 4)
	for i := 0; i < 10_000; i++ {
		c.Next()
	}
	if reflect.DeepEqual(a.Schedule(), c.Schedule()) {
		t.Fatal("different streams produced identical schedules")
	}
}

func TestDeciderCoversEveryKind(t *testing.T) {
	cfg := faultyConfig(7)
	d := NewDecider(cfg, 0)
	var seen [kindCount]int
	for i := 0; i < 20_000; i++ {
		seen[d.Next().Kind]++
	}
	for k := Kind(0); k < kindCount; k++ {
		if seen[k] == 0 {
			t.Errorf("kind %s never drawn in 20k decisions", k)
		}
	}
}

func TestDecisionArgsContentIndependent(t *testing.T) {
	cfg := faultyConfig(11)
	d := NewDecider(cfg, 0)
	for i := 0; i < 5_000; i++ {
		dec := d.Next()
		switch dec.Kind {
		case Truncate:
			if dec.Arg < 0 || dec.Arg >= 1000 {
				t.Fatalf("truncate permille %d outside [0,1000)", dec.Arg)
			}
		case Delay:
			got := time.Duration(dec.Arg)
			if got < cfg.DelayBase || got > cfg.DelayMax {
				t.Fatalf("delay %v outside [%v,%v]", got, cfg.DelayBase, cfg.DelayMax)
			}
		case Dribble:
			if time.Duration(dec.Arg) != cfg.DribbleDelay {
				t.Fatalf("dribble arg %d, want %d", dec.Arg, cfg.DribbleDelay)
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{ResetProb: -0.1},
		{ResetProb: 1.5},
		{TruncateProb: 0.5, CorruptProb: 0.6},
		{BlackholeRate: -1},
		{DelayBase: -time.Second},
		{DelayBase: time.Second, DelayMax: time.Millisecond},
		{DribbleDelay: -time.Second},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d validated", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Forward: "forward", Delay: "delay", Dribble: "dribble",
		Truncate: "truncate", Corrupt: "corrupt", Blackhole: "blackhole",
		Reset: "reset", Kind(99): "Kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), k.String(), s)
		}
	}
}

// echoServer accepts connections and echoes bytes until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { _ = conn.Close() }()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		wg.Wait()
	})
	return ln
}

// startProxy wires a chaos proxy in front of target and cleans it up.
func startProxy(t *testing.T, cfg Config, target string, reg *obs.Registry) *Proxy {
	t.Helper()
	p, err := New(cfg, target, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// roundTrip sends msg through conn and reads len(msg) bytes back.
func roundTrip(t *testing.T, conn net.Conn, msg []byte) ([]byte, error) {
	t.Helper()
	if _, err := conn.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	_, err := io.ReadFull(conn, got)
	return got, err
}

func TestProxyForwardsClean(t *testing.T) {
	ln := echoServer(t)
	reg := obs.NewRegistry()
	p := startProxy(t, Config{Seed: 1, Record: true}, ln.Addr().String(), reg)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	msg := []byte("through the looking glass")
	got, err := roundTrip(t, conn, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo corrupted: %q", got)
	}
	counts := p.Counts()
	if counts[Forward] < 2 {
		t.Fatalf("expected ≥2 forward decisions, got %v", counts)
	}
	for k := Kind(1); k < kindCount; k++ {
		if counts[k] != 0 {
			t.Fatalf("zero-fault config took a %s decision", k)
		}
	}
}

func TestProxyScheduleMatchesDecider(t *testing.T) {
	// The proxy's recorded schedule must be exactly the prefix of the pure
	// decider stream for that (seed, stream) — the proxy adds no hidden
	// draws.
	ln := echoServer(t)
	cfg := Config{Seed: 99, DelayProb: 1, DelayBase: time.Microsecond, DelayMax: 2 * time.Microsecond, Record: true}
	p := startProxy(t, cfg, ln.Addr().String(), nil)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("schedule check")
	if _, err := roundTrip(t, conn, msg); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	_ = p.Close()

	for stream, got := range p.Schedules() {
		ref := NewDecider(cfg, stream)
		for i, dec := range got {
			if want := ref.Next(); dec != want {
				t.Fatalf("stream %d decision %d = %+v, want %+v", stream, i, dec, want)
			}
		}
	}
	if len(p.Schedules()) != 2 {
		t.Fatalf("want 2 recorded streams, got %d", len(p.Schedules()))
	}
}

func TestProxyReset(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, Config{Seed: 5, ResetProb: 1}, ln.Addr().String(), nil)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded through a reset-everything proxy")
	}
	if c := p.Counts(); c[Reset] == 0 {
		t.Fatalf("no reset decision recorded: %v", c)
	}
}

func TestProxyBlackhole(t *testing.T) {
	ln := echoServer(t)
	// Rate 0.8 drives the Gilbert–Elliott chain into the bad state on the
	// first transition, so every chunk is swallowed.
	p := startProxy(t, Config{Seed: 2, BlackholeRate: 0.8}, ln.Addr().String(), nil)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read through a blackhole returned %v, want deadline", err)
	}
	if c := p.Counts(); c[Blackhole] == 0 {
		t.Fatalf("no blackhole decision recorded: %v", c)
	}
}

func TestProxyTruncateClosesStream(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, Config{Seed: 3, TruncateProb: 1}, ln.Addr().String(), nil)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	msg := bytes.Repeat([]byte("x"), 1000)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := io.Copy(io.Discard, conn)
	if err != nil {
		t.Fatalf("truncated stream should end in EOF, got %v", err)
	}
	if n >= int64(len(msg)) {
		t.Fatalf("truncation delivered all %d bytes", n)
	}
	if c := p.Counts(); c[Truncate] == 0 {
		t.Fatalf("no truncate decision recorded: %v", c)
	}
}

func TestProxyCorrupt(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, Config{Seed: 4, CorruptProb: 1}, ln.Addr().String(), nil)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	msg := bytes.Repeat([]byte("a"), 256)
	got, err := roundTrip(t, conn, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("corrupt-everything proxy delivered clean bytes")
	}
	if c := p.Counts(); c[Corrupt] == 0 {
		t.Fatalf("no corrupt decision recorded: %v", c)
	}
}

func TestProxyDribbleDelivers(t *testing.T) {
	ln := echoServer(t)
	cfg := Config{Seed: 6, DribbleProb: 1, DribbleDelay: time.Millisecond}
	p := startProxy(t, cfg, ln.Addr().String(), nil)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	msg := bytes.Repeat([]byte("slow"), 64)
	got, err := roundTrip(t, conn, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("dribbled bytes corrupted")
	}
	if c := p.Counts(); c[Dribble] == 0 {
		t.Fatalf("no dribble decision recorded: %v", c)
	}
}

func TestProxyDialFailureClosesClient(t *testing.T) {
	// Port 1 on loopback refuses connections; the client must see its
	// connection closed, not hang.
	p := startProxy(t, Config{Seed: 8}, "127.0.0.1:1", nil)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after failed upstream dial, got %v", err)
	}
}

func TestProxyIdleTimeoutUnsticksPumps(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, Config{Seed: 9, IdleTimeout: 50 * time.Millisecond}, ln.Addr().String(), nil)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// Write nothing: both pumps must give up on their own, and Close must
	// not hang waiting for them.
	done := make(chan struct{})
	go func() {
		_ = p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an idle connection")
	}
}

func TestProxyRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{ResetProb: 2}, "127.0.0.1:1", nil); err == nil {
		t.Fatal("bad config accepted")
	} else if !strings.Contains(err.Error(), "probability") {
		t.Fatalf("unexpected error %v", err)
	}
}
