// Package chaos is a seeded, deterministic fault-injecting TCP proxy for
// the serving stack: it sits between a client and cqmserve's binary front
// and subjects the byte stream to the failure modes a radio link or a
// congested datacenter path exhibits — added latency with a heavy tail,
// abrupt connection resets, slow-loris byte dribbling, frame truncation
// and bit corruption, and Gilbert–Elliott burst blackhole windows (reusing
// internal/fault's two-state channel so blackholes arrive in bursts, not
// as i.i.d. coin flips).
//
// Determinism is the package's contract: every fault decision is drawn
// from a per-direction RNG seeded by (Config.Seed, stream index) with a
// fixed number of draws per decision, so the decision stream — the chaos
// schedule — is a pure function of the seed. Two runs with the same seed
// replay bit-identical schedules regardless of outcomes, which is what
// lets the chaos invariant tests assert exact conservation properties
// under fire. (What a schedule entry is applied to — the chunk a TCP read
// happens to return — still depends on kernel timing; the schedule itself
// does not.)
//
// The proxy never silently eats accounting: every decision is counted by
// kind, and a recorded schedule can be dumped per stream for replay
// comparison.
package chaos
