package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"cqm/internal/fault"
)

// Kind enumerates what the proxy may do to one forwarded chunk.
type Kind uint8

// Decision kinds, in precedence order (Reset beats Blackhole beats the
// probabilistic faults beats Forward).
const (
	// Forward passes the chunk through untouched.
	Forward Kind = iota
	// Delay forwards the chunk after sleeping Arg nanoseconds; the delay
	// distribution is heavy-tailed (most delays near DelayBase, a few near
	// DelayMax), mimicking queueing jitter rather than a fixed RTT.
	Delay
	// Dribble forwards the chunk in small slices with Arg nanoseconds
	// between them — the slow-loris pattern that exercises per-frame idle
	// deadlines on the server.
	Dribble
	// Truncate forwards only a prefix of the chunk (Arg is the permille
	// kept) and then closes the connection, leaving the peer with a
	// partial frame.
	Truncate
	// Corrupt XORs one byte of the chunk (position and mask derived from
	// Arg) and forwards it, exercising the receiver's CRC path.
	Corrupt
	// Blackhole silently swallows the chunk. Blackholes arrive in
	// Gilbert–Elliott bursts, not as independent coin flips.
	Blackhole
	// Reset tears the connection down with an RST (SetLinger(0) + Close).
	Reset
)

// kindCount is the number of decision kinds.
const kindCount = 7

// String names the kind for stats and logs.
func (k Kind) String() string {
	switch k {
	case Forward:
		return "forward"
	case Delay:
		return "delay"
	case Dribble:
		return "dribble"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	case Blackhole:
		return "blackhole"
	case Reset:
		return "reset"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Decision is one entry of a chaos schedule: what to do to the next chunk
// and with what argument. Arg is content-independent (a duration, a
// fraction, or raw random material) so the schedule is a pure function of
// the seed — it never depends on what bytes happen to flow.
type Decision struct {
	Kind Kind
	Arg  int64
}

// Config parameterizes a chaos proxy. All probabilities are per forwarded
// chunk; the zero value forwards everything untouched.
type Config struct {
	// Seed roots every per-stream RNG. Two proxies with equal Config
	// produce bit-identical decision schedules stream for stream.
	Seed int64
	// ResetProb is the per-chunk probability of an RST teardown.
	ResetProb float64
	// BlackholeRate is the long-run fraction of chunks swallowed by the
	// Gilbert–Elliott burst channel (clamped to [0, 0.8] by fault.BurstLoss).
	BlackholeRate float64
	// TruncateProb, CorruptProb, DribbleProb, DelayProb select among the
	// non-fatal faults; their sum must not exceed 1.
	TruncateProb float64
	CorruptProb  float64
	DribbleProb  float64
	DelayProb    float64
	// DelayBase and DelayMax bound the heavy-tailed injected latency.
	DelayBase time.Duration
	DelayMax  time.Duration
	// DribbleDelay is the pause between dribbled slices.
	DribbleDelay time.Duration
	// IdleTimeout disconnects a proxied stream with no traffic for this
	// long (0 = a 30s default; negative = unbounded). It keeps blackholed
	// streams from pinning pump goroutines forever.
	IdleTimeout time.Duration
	// Record keeps every stream's decision schedule in memory for replay
	// comparison (tests only; unbounded growth otherwise).
	Record bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for _, p := range []float64{c.ResetProb, c.TruncateProb, c.CorruptProb, c.DribbleProb, c.DelayProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("chaos: probability %v outside [0,1]", p)
		}
	}
	if sum := c.TruncateProb + c.CorruptProb + c.DribbleProb + c.DelayProb; sum > 1 {
		return fmt.Errorf("chaos: fault probabilities sum to %v > 1", sum)
	}
	if c.BlackholeRate < 0 {
		return fmt.Errorf("chaos: negative blackhole rate %v", c.BlackholeRate)
	}
	if c.DelayBase < 0 || c.DelayMax < c.DelayBase {
		return fmt.Errorf("chaos: delay range [%v, %v] invalid", c.DelayBase, c.DelayMax)
	}
	if c.DribbleDelay < 0 {
		return fmt.Errorf("chaos: negative dribble delay %v", c.DribbleDelay)
	}
	return nil
}

// streamSeed mixes the proxy seed with a stream index (SplitMix64 finalizer)
// so per-stream RNGs are decorrelated but reproducible.
func streamSeed(seed, stream int64) int64 {
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Decider draws the chaos schedule of one proxied stream direction. Every
// Next call consumes exactly five RNG draws (two inside the burst channel,
// three here) regardless of the outcome, so decision streams from the same
// seed are bit-identical no matter which faults fire. Not safe for
// concurrent use; each pump goroutine owns its own Decider.
type Decider struct {
	cfg      Config
	rng      *rand.Rand
	ge       *fault.GilbertElliott
	schedule []Decision
}

// NewDecider returns the decider of stream `stream` under cfg. Stream
// indices are assigned by the proxy: connection n uses 2n for the
// client→server direction and 2n+1 for server→client.
func NewDecider(cfg Config, stream int64) *Decider {
	return &Decider{
		cfg: cfg,
		rng: rand.New(rand.NewSource(streamSeed(cfg.Seed, stream))),
		ge:  fault.BurstLoss(cfg.BlackholeRate),
	}
}

// Next draws the decision for the next chunk.
func (d *Decider) Next() Decision {
	drop := d.ge.Drop(d.rng)
	resetDraw := d.rng.Float64()
	faultDraw := d.rng.Float64()
	mag := d.rng.Int63()

	var dec Decision
	switch {
	case resetDraw < d.cfg.ResetProb:
		dec = Decision{Kind: Reset}
	case drop:
		dec = Decision{Kind: Blackhole}
	default:
		dec = d.pick(faultDraw, mag)
	}
	if d.cfg.Record {
		d.schedule = append(d.schedule, dec)
	}
	return dec
}

// pick selects among the non-fatal faults by cumulative probability and
// derives the decision argument from mag.
func (d *Decider) pick(p float64, mag int64) Decision {
	if p < d.cfg.TruncateProb {
		return Decision{Kind: Truncate, Arg: mag % 1000}
	}
	p -= d.cfg.TruncateProb
	if p < d.cfg.CorruptProb {
		return Decision{Kind: Corrupt, Arg: mag}
	}
	p -= d.cfg.CorruptProb
	if p < d.cfg.DribbleProb {
		return Decision{Kind: Dribble, Arg: int64(d.cfg.DribbleDelay)}
	}
	p -= d.cfg.DribbleProb
	if p < d.cfg.DelayProb {
		return Decision{Kind: Delay, Arg: int64(d.delay(mag))}
	}
	return Decision{Kind: Forward}
}

// delay maps raw random material onto the heavy-tailed latency range:
// cubing the uniform draw concentrates mass near DelayBase while keeping a
// thin tail out to DelayMax.
func (d *Decider) delay(mag int64) time.Duration {
	u := float64(mag%1_000_000) / 1e6
	return d.cfg.DelayBase + time.Duration(u*u*u*float64(d.cfg.DelayMax-d.cfg.DelayBase))
}

// Schedule returns a copy of the recorded decision stream (empty unless
// Config.Record).
func (d *Decider) Schedule() []Decision {
	out := make([]Decision, len(d.schedule))
	copy(out, d.schedule)
	return out
}
