package chaos

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cqm/internal/obs"
)

// MetricDecisions counts chaos decisions taken, by kind.
const MetricDecisions = "cqm_chaos_decisions_total"

// defaultIdleTimeout bounds a silent proxied stream when Config.IdleTimeout
// is zero.
const defaultIdleTimeout = 30 * time.Second

// chunkSize is the pump read buffer: one chaos decision is taken per read
// of up to this many bytes.
const chunkSize = 32 << 10

// dribbleSlices is how many slices a dribbled chunk is cut into.
const dribbleSlices = 8

// Proxy is a fault-injecting TCP proxy: it accepts connections, dials the
// target for each, and pumps bytes both ways, subjecting every chunk to
// one seeded chaos decision per direction. Connection n's directions use
// stream indices 2n (client→server) and 2n+1 (server→client), so the full
// set of schedules is reproducible from Config.Seed alone.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener
	conns  sync.WaitGroup
	accept sync.WaitGroup

	next   atomic.Int64
	counts [kindCount]atomic.Uint64
	met    [kindCount]*obs.Counter

	mu        sync.Mutex
	schedules map[int64][]Decision
}

// New starts a proxy on 127.0.0.1 (ephemeral port) forwarding to target.
// Close stops it. reg may be nil (no metrics).
func New(cfg Config, target string, reg *obs.Registry) (*Proxy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = defaultIdleTimeout
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, target: target, ln: ln}
	if cfg.Record {
		p.schedules = make(map[int64][]Decision)
	}
	if reg != nil {
		reg.Help(MetricDecisions, "Chaos proxy decisions taken, by kind.")
		for k := Kind(0); k < kindCount; k++ {
			p.met[k] = reg.Counter(MetricDecisions, "kind", k.String())
		}
	}
	p.accept.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting, tears down the listener, and waits for every
// pump goroutine to finish.
func (p *Proxy) Close() error {
	err := p.ln.Close()
	p.accept.Wait()
	p.conns.Wait()
	return err
}

// Counts returns the number of decisions taken so far, by kind.
func (p *Proxy) Counts() [kindCount]uint64 {
	var out [kindCount]uint64
	for i := range out {
		out[i] = p.counts[i].Load()
	}
	return out
}

// Schedules returns a copy of every finished stream's recorded decision
// schedule, keyed by stream index (empty unless Config.Record; a stream
// appears once its pump has ended).
func (p *Proxy) Schedules() map[int64][]Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int64][]Decision, len(p.schedules))
	for k, v := range p.schedules {
		out[k] = v
	}
	return out
}

// serve is the accept loop.
func (p *Proxy) serve() {
	defer p.accept.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.next.Add(1) - 1
		p.conns.Add(1)
		go p.relay(client, n)
	}
}

// relay dials the target and pumps both directions of one connection.
func (p *Proxy) relay(client net.Conn, n int64) {
	defer p.conns.Done()
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		_ = client.Close()
		return
	}
	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		p.pump(server, client, 2*n)
	}()
	go func() {
		defer pumps.Done()
		p.pump(client, server, 2*n+1)
	}()
	pumps.Wait()
	_ = client.Close()
	_ = server.Close()
}

// pump copies src to dst chunk by chunk, taking one chaos decision per
// chunk. It returns when either side errors, the idle timeout fires, or a
// fatal decision (Reset, Truncate) tears the stream down.
func (p *Proxy) pump(dst, src net.Conn, stream int64) {
	d := NewDecider(p.cfg, stream)
	if p.cfg.Record {
		defer func() {
			p.mu.Lock()
			p.schedules[stream] = d.Schedule()
			p.mu.Unlock()
		}()
	}
	buf := make([]byte, chunkSize)
	for {
		if p.cfg.IdleTimeout > 0 {
			_ = src.SetReadDeadline(time.Now().Add(p.cfg.IdleTimeout)) //lint:ignore nondeterminism idle deadlines are wall-clock; chaos decisions draw only from the seeded rng
		}
		n, err := src.Read(buf)
		if n > 0 {
			dec := d.Next()
			p.counts[dec.Kind].Add(1)
			p.met[dec.Kind].Inc()
			if !p.apply(dst, src, buf[:n], dec) {
				return
			}
		}
		if err != nil {
			// A clean EOF half-closes the forward direction when the
			// transport supports it; anything else kills the stream. The
			// peer's pump keeps running either way until its own side ends.
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if tcp, ok := dst.(*net.TCPConn); ok {
				_ = tcp.CloseWrite()
			} else {
				_ = dst.Close()
			}
			return
		}
	}
}

// apply executes one decision on one chunk. It reports false when the
// stream must end (reset, truncation, or a write failure).
func (p *Proxy) apply(dst, src net.Conn, chunk []byte, dec Decision) bool {
	switch dec.Kind {
	case Blackhole:
		return true
	case Reset:
		rst(src)
		rst(dst)
		return false
	case Delay:
		time.Sleep(time.Duration(dec.Arg))
		return p.write(dst, chunk)
	case Dribble:
		step := len(chunk) / dribbleSlices
		if step == 0 {
			step = 1
		}
		for off := 0; off < len(chunk); off += step {
			end := off + step
			if end > len(chunk) {
				end = len(chunk)
			}
			if !p.write(dst, chunk[off:end]) {
				return false
			}
			time.Sleep(time.Duration(dec.Arg))
		}
		return true
	case Truncate:
		keep := int(dec.Arg) * len(chunk) / 1000
		_ = p.write(dst, chunk[:keep])
		_ = dst.Close()
		_ = src.Close()
		return false
	case Corrupt:
		pos := int(uint64(dec.Arg) % uint64(len(chunk)))
		chunk[pos] ^= byte(dec.Arg>>32) | 1
		return p.write(dst, chunk)
	default: // Forward
		return p.write(dst, chunk)
	}
}

// write forwards one slice with the idle write deadline armed.
func (p *Proxy) write(dst net.Conn, b []byte) bool {
	if len(b) == 0 {
		return true
	}
	if p.cfg.IdleTimeout > 0 {
		_ = dst.SetWriteDeadline(time.Now().Add(p.cfg.IdleTimeout)) //lint:ignore nondeterminism idle deadlines are wall-clock; chaos decisions draw only from the seeded rng
	}
	_, err := dst.Write(b)
	return err == nil
}

// rst arranges an abortive close: SetLinger(0) makes Close send an RST
// instead of a FIN, which is what the resilient client's reconnect path
// must survive.
func rst(conn net.Conn) {
	if tcp, ok := conn.(*net.TCPConn); ok {
		_ = tcp.SetLinger(0)
	}
	_ = conn.Close()
}
