// Package anfis implements the Adaptive-Network-based Fuzzy Inference
// System (Jang 1993) used by the CQM paper (§2.2.3–§2.2.4) to tune the
// automatically constructed quality TSK-FIS.
//
// The pipeline matches the paper exactly:
//
//  1. Structure identification: subtractive clustering proposes one rule
//     per cluster with Gaussian membership functions centered on the
//     cluster (Build).
//  2. Least squares: with the membership functions fixed, the system
//     output is linear in the consequent coefficients, so they are fitted
//     globally by an SVD-backed least-squares solve (FitConsequents — the
//     forward pass).
//  3. Hybrid learning (Train): each epoch backpropagates the output error
//     to the Gaussian layer with gradient descent (backward pass), then
//     re-runs the least-squares fit with the adapted membership functions
//     (forward pass). Training stops "when a degradation of the error for
//     a different check data set is continuously observed", keeping the
//     parameters from the best check-set epoch.
package anfis
