package anfis

import (
	"fmt"
	"sort"

	"cqm/internal/fuzzy"
	"cqm/internal/regress"
)

// PruneConfig parameterizes rule-base pruning.
type PruneConfig struct {
	// MinActivationShare drops rules whose share of the total firing
	// strength over the data set falls below this fraction. Default 0.01.
	MinActivationShare float64
	// MaxRMSEGrowth aborts the prune (returning the original system) when
	// the training RMSE would grow by more than this factor. Default 1.2.
	MaxRMSEGrowth float64
	// LSMethod selects the consequent re-fit solver; zero value is SVD.
	LSMethod regress.Method
}

func (c PruneConfig) withDefaults() PruneConfig {
	if c.MinActivationShare == 0 {
		c.MinActivationShare = 0.01
	}
	if c.MaxRMSEGrowth == 0 {
		c.MaxRMSEGrowth = 1.2
	}
	return c
}

// PruneResult reports what pruning did.
type PruneResult struct {
	// Before and After are the rule counts.
	Before, After int
	// RMSEBefore and RMSEAfter are the training errors.
	RMSEBefore, RMSEAfter float64
	// Pruned reports whether the pruned system was adopted (false when
	// the RMSE guard rejected it).
	Pruned bool
}

// Prune removes rules that barely ever fire over the data set — dead
// weight from over-eager clustering — and re-fits the remaining
// consequents. The Particle node the AwarePen runs on has a few kB of
// RAM; every rule costs 2·(n+1) parameters, so small rule bases matter.
//
// The system is modified in place only when the pruned variant's training
// RMSE stays within MaxRMSEGrowth of the original.
func Prune(sys *fuzzy.TSK, data *Data, cfg PruneConfig) (*PruneResult, error) {
	cfg = cfg.withDefaults()
	if err := data.Validate(sys.Inputs()); err != nil {
		return nil, err
	}
	m := sys.NumRules()
	res := &PruneResult{Before: m, After: m, RMSEBefore: RMSE(sys, data), RMSEAfter: RMSE(sys, data)}
	if m <= 1 {
		return res, nil
	}

	// Accumulate each rule's share of the total firing strength.
	shares := make([]float64, m)
	var total float64
	for _, v := range data.X {
		detail, err := sys.EvalDetail(v)
		if err != nil {
			continue
		}
		for j, w := range detail.Weights {
			shares[j] += w
			total += w
		}
	}
	if total == 0 {
		return res, nil
	}
	keep := make([]int, 0, m)
	for j := range shares {
		if shares[j]/total >= cfg.MinActivationShare {
			keep = append(keep, j)
		}
	}
	if len(keep) == m {
		return res, nil
	}
	if len(keep) == 0 {
		// Keep at least the strongest rule.
		best := 0
		for j := 1; j < m; j++ {
			if shares[j] > shares[best] {
				best = j
			}
		}
		keep = []int{best}
	}
	sort.Ints(keep)
	rules := make([]fuzzy.Rule, len(keep))
	for i, j := range keep {
		rules[i] = sys.Rule(j)
	}
	pruned, err := fuzzy.NewTSK(sys.Inputs(), rules)
	if err != nil {
		return nil, fmt.Errorf("anfis: assembling pruned system: %w", err)
	}
	if err := FitConsequents(pruned, data, cfg.LSMethod); err != nil {
		return nil, fmt.Errorf("anfis: re-fitting pruned consequents: %w", err)
	}
	prunedRMSE := RMSE(pruned, data)
	if prunedRMSE > res.RMSEBefore*cfg.MaxRMSEGrowth {
		// Guard: pruning would hurt too much; keep the original.
		return res, nil
	}
	*sys = *pruned
	res.After = len(keep)
	res.RMSEAfter = prunedRMSE
	res.Pruned = true
	return res, nil
}
