package anfis

import (
	"errors"
	"math"
	"testing"

	"cqm/internal/cluster"
)

func TestBuildFromCentersMatchesSubtractiveBuild(t *testing.T) {
	d := sineData(60, 20, 0)
	res, err := cluster.Subtractive(d.X, cluster.SubtractiveConfig{Radius: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Build(d, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	viaCenters, err := BuildFromCenters(d, res.Centers, res.Sigmas, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if direct.NumRules() != viaCenters.NumRules() {
		t.Fatalf("rule counts differ: %d vs %d", direct.NumRules(), viaCenters.NumRules())
	}
	for _, x := range d.X[:10] {
		a, _ := direct.Eval(x)
		b, _ := viaCenters.Eval(x)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("outputs differ at %v: %v vs %v", x, a, b)
		}
	}
}

func TestBuildFromCentersBroadcastSigma(t *testing.T) {
	d := sineData(40, 21, 0)
	centers := [][]float64{{1}, {3}, {5}}
	sys, err := BuildFromCenters(d, centers, []float64{0.8}, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumRules() != 3 {
		t.Fatalf("rules = %d", sys.NumRules())
	}
	for j := 0; j < 3; j++ {
		if got := sys.Rule(j).Antecedent[0].Sigma; math.Abs(got-0.8) > 1e-12 {
			t.Errorf("rule %d sigma = %v", j, got)
		}
	}
}

func TestBuildFromCentersErrors(t *testing.T) {
	d := sineData(20, 22, 0)
	if _, err := BuildFromCenters(d, nil, []float64{1}, BuildConfig{}); !errors.Is(err, ErrNoRules) {
		t.Errorf("no centers: %v", err)
	}
	if _, err := BuildFromCenters(d, [][]float64{{1, 2}}, []float64{1}, BuildConfig{}); !errors.Is(err, ErrMismatch) {
		t.Errorf("dim mismatch: %v", err)
	}
	if _, err := BuildFromCenters(d, [][]float64{{1}}, []float64{0}, BuildConfig{}); !errors.Is(err, ErrMismatch) {
		t.Errorf("zero sigma: %v", err)
	}
}

func TestConstantConsequentsAreConstant(t *testing.T) {
	d := sineData(60, 23, 0)
	sys, err := Build(d, BuildConfig{
		Clustering:          cluster.SubtractiveConfig{Radius: 0.3},
		ConstantConsequents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < sys.NumRules(); j++ {
		r := sys.Rule(j)
		for k := 0; k < sys.Inputs(); k++ {
			if r.Coeffs[k] != 0 {
				t.Fatalf("rule %d has non-zero linear coefficient %v", j, r.Coeffs[k])
			}
		}
	}
}

func TestLinearBeatsConstantOnSine(t *testing.T) {
	// The paper prefers linear consequents "since the results … are
	// better": with the same rule structure, the linear fit must reach a
	// lower (or equal) training RMSE than the constant fit.
	d := sineData(80, 24, 0)
	cfg := cluster.SubtractiveConfig{Radius: 0.5}
	linear, err := Build(d, BuildConfig{Clustering: cfg})
	if err != nil {
		t.Fatal(err)
	}
	constant, err := Build(d, BuildConfig{Clustering: cfg, ConstantConsequents: true})
	if err != nil {
		t.Fatal(err)
	}
	if RMSE(linear, d) > RMSE(constant, d)+1e-12 {
		t.Errorf("linear RMSE %v worse than constant %v", RMSE(linear, d), RMSE(constant, d))
	}
}

func TestTrainWithConstantConsequentsKeepsThemConstant(t *testing.T) {
	d := sineData(50, 25, 0.02)
	sys, err := Build(d, BuildConfig{ConstantConsequents: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(sys, d, nil, Config{Epochs: 10, ConstantConsequents: true}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < sys.NumRules(); j++ {
		r := sys.Rule(j)
		for k := 0; k < sys.Inputs(); k++ {
			if r.Coeffs[k] != 0 {
				t.Fatalf("training reintroduced linear coefficients: rule %d", j)
			}
		}
	}
}
