package anfis

import (
	"testing"

	"cqm/internal/cluster"
)

// recordingObserver captures every event for order assertions.
type recordingObserver struct {
	epochs []EpochEvent
	stops  []StopEvent
}

func (r *recordingObserver) TrainEpoch(ev EpochEvent) { r.epochs = append(r.epochs, ev) }
func (r *recordingObserver) TrainStop(ev StopEvent)   { r.stops = append(r.stops, ev) }

func TestObserverReceivesEpochsInOrder(t *testing.T) {
	train := sineData(60, 4, 0.02)
	check := sineData(30, 5, 0.02)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingObserver{}
	hist, err := Train(sys, train, check, Config{
		Epochs: 30, LearningRate: 0.05, Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(rec.epochs) == 0 {
		t.Fatal("observer received no epoch events")
	}
	if len(rec.epochs) != len(hist.TrainRMSE) {
		t.Errorf("observer saw %d epochs, history records %d", len(rec.epochs), len(hist.TrainRMSE))
	}
	for i, ev := range rec.epochs {
		if ev.Epoch != i {
			t.Fatalf("epoch event %d carries Epoch=%d — out of order", i, ev.Epoch)
		}
		if ev.TrainRMSE != hist.TrainRMSE[i] {
			t.Errorf("epoch %d: event TrainRMSE %v != history %v", i, ev.TrainRMSE, hist.TrainRMSE[i])
		}
		if !ev.HasCheck {
			t.Errorf("epoch %d: HasCheck false with a check set", i)
		}
		if ev.CheckRMSE != hist.CheckRMSE[i] {
			t.Errorf("epoch %d: event CheckRMSE %v != history %v", i, ev.CheckRMSE, hist.CheckRMSE[i])
		}
		if ev.LearningRate != hist.LearningRates[i] {
			t.Errorf("epoch %d: event rate %v != history %v", i, ev.LearningRate, hist.LearningRates[i])
		}
	}

	if len(rec.stops) != 1 {
		t.Fatalf("observer received %d stop events, want exactly 1", len(rec.stops))
	}
	stop := rec.stops[0]
	if stop.Reason != hist.Reason {
		t.Errorf("stop reason %q != history %q", stop.Reason, hist.Reason)
	}
	if stop.Epochs != len(hist.TrainRMSE) {
		t.Errorf("stop epochs %d != %d", stop.Epochs, len(hist.TrainRMSE))
	}
	if stop.BestEpoch != hist.BestEpoch {
		t.Errorf("stop best epoch %d != %d", stop.BestEpoch, hist.BestEpoch)
	}
}

func TestObserverBestFlagMatchesBestEpoch(t *testing.T) {
	train := sineData(50, 9, 0.05)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingObserver{}
	hist, err := Train(sys, train, nil, Config{Epochs: 25, LearningRate: 0.05, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	lastBest := -1
	for _, ev := range rec.epochs {
		if ev.Best {
			lastBest = ev.Epoch
		}
		if ev.HasCheck {
			t.Errorf("epoch %d: HasCheck true without a check set", ev.Epoch)
		}
	}
	if lastBest != hist.BestEpoch {
		t.Errorf("last Best-flagged epoch %d != history BestEpoch %d", lastBest, hist.BestEpoch)
	}
}

func TestObserversFanOutAndDropNil(t *testing.T) {
	a, b := &recordingObserver{}, &recordingObserver{}
	multi := Observers(nil, a, nil, b)
	multi.TrainEpoch(EpochEvent{Epoch: 3})
	multi.TrainStop(StopEvent{Reason: StopEpochs})
	for name, rec := range map[string]*recordingObserver{"a": a, "b": b} {
		if len(rec.epochs) != 1 || rec.epochs[0].Epoch != 3 {
			t.Errorf("observer %s epochs = %+v", name, rec.epochs)
		}
		if len(rec.stops) != 1 || rec.stops[0].Reason != StopEpochs {
			t.Errorf("observer %s stops = %+v", name, rec.stops)
		}
	}
	if got := Observers(nil, nil); got != nil {
		t.Errorf("Observers of all nil = %v, want nil", got)
	}
	if got := Observers(a); got != TrainObserver(a) {
		t.Errorf("Observers of one = %v, want the observer itself", got)
	}
}
