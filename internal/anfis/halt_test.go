package anfis

import (
	"testing"

	"cqm/internal/cluster"
)

// TestHaltStopsTraining asserts the Halt hook ends training before the
// named epoch runs, records StopHalted, and keeps the best snapshot.
func TestHaltStopsTraining(t *testing.T) {
	train := sineData(60, 72, 0.02)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	var consulted []int
	hist, err := Train(sys, train, nil, Config{
		Epochs:       50,
		LearningRate: 0.02,
		Tol:          1e-300, // keep convergence from stopping first
		Halt: func(epoch int) bool {
			consulted = append(consulted, epoch)
			return epoch >= 7
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Reason != StopHalted {
		t.Fatalf("reason = %q, want %q", hist.Reason, StopHalted)
	}
	if got := len(hist.TrainRMSE); got != 7 {
		t.Fatalf("ran %d epochs, want 7 (halt consulted before epoch 7 ran)", got)
	}
	if len(consulted) != 8 || consulted[len(consulted)-1] != 7 {
		t.Fatalf("halt consultations = %v, want epochs 0..7", consulted)
	}
	// The returned system must be the best snapshot among completed epochs.
	if hist.BestEpoch < 0 || hist.BestEpoch >= 7 {
		t.Fatalf("best epoch %d outside completed range [0,7)", hist.BestEpoch)
	}
	if rm := RMSE(sys, train); rm != hist.TrainRMSE[hist.BestEpoch] {
		t.Fatalf("returned system RMSE %v != best epoch RMSE %v", rm, hist.TrainRMSE[hist.BestEpoch])
	}
}

// TestHaltImmediately asserts a hook that halts at epoch 0 yields an
// untrained run with StopHalted and no history.
func TestHaltImmediately(t *testing.T) {
	train := sineData(40, 73, 0.02)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	before := RMSE(sys, train)
	hist, err := Train(sys, train, nil, Config{
		Epochs: 50,
		Halt:   func(int) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Reason != StopHalted {
		t.Fatalf("reason = %q, want %q", hist.Reason, StopHalted)
	}
	if len(hist.TrainRMSE) != 0 {
		t.Fatalf("history has %d epochs, want 0", len(hist.TrainRMSE))
	}
	if after := RMSE(sys, train); after != before {
		t.Fatalf("system changed across an immediately-halted run: %v -> %v", before, after)
	}
}
