package anfis

import (
	"fmt"

	"cqm/internal/cluster"
	"cqm/internal/fuzzy"
	"cqm/internal/regress"
)

// BuildConfig parameterizes structure identification (paper §2.2.1–2.2.2).
type BuildConfig struct {
	// Clustering configures the subtractive clustering that determines the
	// number of rules and the initial membership functions. The zero value
	// uses Chiu's defaults.
	Clustering cluster.SubtractiveConfig
	// LSMethod selects the least-squares solver for the initial consequent
	// fit; the zero value is the paper's SVD.
	LSMethod regress.Method
	// ConstantConsequents fits zero-order (constant) consequents instead
	// of the paper's first-order linear ones — the ablation behind the
	// paper's remark that "the linear functional consequence is used,
	// since the results … are better".
	ConstantConsequents bool
}

// Build performs automated FIS construction: subtractive clustering over
// the input rows determines m rules whose Gaussian antecedents are centered
// on the cluster centers with genfis2 widths, then a global least-squares
// fit (SVD) determines the linear consequents against the targets.
func Build(data *Data, cfg BuildConfig) (*fuzzy.TSK, error) {
	if err := data.Validate(0); err != nil {
		return nil, err
	}
	res, err := cluster.Subtractive(data.X, cfg.Clustering)
	if err != nil {
		return nil, fmt.Errorf("anfis: structure identification: %w", err)
	}
	return BuildFromCenters(data, res.Centers, res.Sigmas, cfg)
}

// BuildFromCenters assembles a TSK system with one rule per externally
// supplied cluster center (mountain clustering, FCM, k-means — the
// clustering ablation) and fits the consequents by least squares. sigmas
// gives the per-dimension Gaussian widths; a single-element slice is
// broadcast across dimensions.
func BuildFromCenters(data *Data, centers [][]float64, sigmas []float64, cfg BuildConfig) (*fuzzy.TSK, error) {
	if err := data.Validate(0); err != nil {
		return nil, err
	}
	if len(centers) == 0 {
		return nil, ErrNoRules
	}
	n := len(data.X[0])
	sigmaAt := func(i int) float64 {
		if len(sigmas) == 1 {
			return sigmas[0]
		}
		if i < len(sigmas) {
			return sigmas[i]
		}
		return 0
	}
	rules := make([]fuzzy.Rule, len(centers))
	for j, center := range centers {
		if len(center) != n {
			return nil, fmt.Errorf("%w: center %d has %d dims, want %d", ErrMismatch, j, len(center), n)
		}
		ante := make([]fuzzy.Gaussian, n)
		for i := 0; i < n; i++ {
			s := sigmaAt(i)
			if s <= 0 {
				return nil, fmt.Errorf("%w: sigma %v for dimension %d", ErrMismatch, s, i)
			}
			ante[i] = fuzzy.Gaussian{Mu: center[i], Sigma: s}
		}
		rules[j] = fuzzy.Rule{
			Antecedent: ante,
			Coeffs:     make([]float64, n+1), // filled by the consequent fit
		}
	}
	sys, err := fuzzy.NewTSK(n, rules)
	if err != nil {
		return nil, fmt.Errorf("anfis: assembling initial FIS: %w", err)
	}
	if cfg.ConstantConsequents {
		err = FitConstantConsequents(sys, data, cfg.LSMethod)
	} else {
		err = FitConsequents(sys, data, cfg.LSMethod)
	}
	if err != nil {
		return nil, fmt.Errorf("anfis: initial consequent fit: %w", err)
	}
	return sys, nil
}

// FitConsequents performs the ANFIS forward pass: with the membership
// functions fixed, the TSK output is linear in the consequent coefficients
//
//	S(v) = Σ_j ŵ_j(v)·(a_j·v + b_j),  ŵ_j = w_j / Σ_k w_k,
//
// so one global least-squares solve over rows
// [ŵ_1·v, ŵ_1, …, ŵ_m·v, ŵ_m] fits all m·(n+1) coefficients at once.
// Samples that activate no rule are skipped (they carry no gradient and no
// linear information).
func FitConsequents(sys *fuzzy.TSK, data *Data, method regress.Method) error {
	if err := data.Validate(sys.Inputs()); err != nil {
		return err
	}
	n := sys.Inputs()
	m := sys.NumRules()
	cols := m * (n + 1)
	rows := make([][]float64, 0, data.Len())
	targets := make([]float64, 0, data.Len())
	for i, v := range data.X {
		detail, err := sys.EvalDetail(v)
		if err != nil {
			// No rule fired for this sample: skip it.
			continue
		}
		row := make([]float64, cols)
		for j := 0; j < m; j++ {
			wn := detail.Weights[j] / detail.WeightSum
			base := j * (n + 1)
			for k := 0; k < n; k++ {
				row[base+k] = wn * v[k]
			}
			row[base+n] = wn
		}
		rows = append(rows, row)
		targets = append(targets, data.Y[i])
	}
	if len(rows) == 0 {
		return fmt.Errorf("%w: no sample activates any rule", ErrEmptyData)
	}
	w, err := regress.LeastSquares(rows, targets, method)
	if err != nil {
		return fmt.Errorf("anfis: consequent least squares: %w", err)
	}
	for j := 0; j < m; j++ {
		rule := sys.Rule(j)
		copy(rule.Coeffs, w[j*(n+1):(j+1)*(n+1)])
		if err := sys.SetRule(j, rule); err != nil {
			return fmt.Errorf("anfis: writing consequents of rule %d: %w", j, err)
		}
	}
	return nil
}

// FitConstantConsequents fits zero-order consequents: each rule gets only
// a constant term, so the design matrix has one column per rule holding
// the normalized firing strength. Linear coefficients are zeroed.
func FitConstantConsequents(sys *fuzzy.TSK, data *Data, method regress.Method) error {
	if err := data.Validate(sys.Inputs()); err != nil {
		return err
	}
	n := sys.Inputs()
	m := sys.NumRules()
	rows := make([][]float64, 0, data.Len())
	targets := make([]float64, 0, data.Len())
	for i, v := range data.X {
		detail, err := sys.EvalDetail(v)
		if err != nil {
			continue
		}
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			row[j] = detail.Weights[j] / detail.WeightSum
		}
		rows = append(rows, row)
		targets = append(targets, data.Y[i])
	}
	if len(rows) == 0 {
		return fmt.Errorf("%w: no sample activates any rule", ErrEmptyData)
	}
	w, err := regress.LeastSquares(rows, targets, method)
	if err != nil {
		return fmt.Errorf("anfis: constant consequent least squares: %w", err)
	}
	for j := 0; j < m; j++ {
		rule := sys.Rule(j)
		for k := 0; k < n; k++ {
			rule.Coeffs[k] = 0
		}
		rule.Coeffs[n] = w[j]
		if err := sys.SetRule(j, rule); err != nil {
			return fmt.Errorf("anfis: writing constant consequent of rule %d: %w", j, err)
		}
	}
	return nil
}
