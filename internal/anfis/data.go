package anfis

import (
	"errors"
	"fmt"
)

// Data is a supervised training set: input rows X with targets Y running
// in parallel.
type Data struct {
	X [][]float64
	Y []float64
}

// Data and configuration errors.
var (
	// ErrEmptyData reports an operation over an empty data set.
	ErrEmptyData = errors.New("anfis: empty data set")
	// ErrMismatch reports X and Y of differing lengths or ragged X rows.
	ErrMismatch = errors.New("anfis: data shape mismatch")
	// ErrNoRules reports structure identification that yielded no rules.
	ErrNoRules = errors.New("anfis: no rules identified")
)

// Validate checks the data set's internal consistency and, when n > 0,
// that every row has n features.
func (d *Data) Validate(n int) error {
	if len(d.X) == 0 {
		return ErrEmptyData
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("%w: %d inputs vs %d targets", ErrMismatch, len(d.X), len(d.Y))
	}
	dim := len(d.X[0])
	if n > 0 && dim != n {
		return fmt.Errorf("%w: rows have %d features, want %d", ErrMismatch, dim, n)
	}
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("%w: row %d has %d features, want %d", ErrMismatch, i, len(row), dim)
		}
	}
	return nil
}

// Len returns the number of samples.
func (d *Data) Len() int { return len(d.X) }
