package anfis

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cqm/internal/cluster"
)

// snapshotRecorder retains every snapshot Train emits.
type snapshotRecorder struct {
	snaps []SnapshotEvent
}

func (r *snapshotRecorder) TrainEpoch(EpochEvent)          {}
func (r *snapshotRecorder) TrainStop(StopEvent)            {}
func (r *snapshotRecorder) TrainSnapshot(ev SnapshotEvent) { r.snaps = append(r.snaps, ev) }

// marshalSys byte-serializes a system for bit-identity comparison.
func marshalSys(t *testing.T, sys any) string {
	t.Helper()
	b, err := json.Marshal(sys)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func trainSineSystem(t *testing.T, workers int) (*History, string, *snapshotRecorder) {
	t.Helper()
	train := sineData(60, 11, 0.05)
	check := sineData(25, 12, 0.05)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &snapshotRecorder{}
	hist, err := Train(sys, train, check, Config{
		Epochs:   12,
		Observer: rec,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hist, marshalSys(t, sys), rec
}

func TestResumeBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, wantSys, rec := trainSineSystem(t, workers)
		if len(rec.snaps) == 0 {
			t.Fatal("no snapshots recorded")
		}
		// Resume from every intermediate snapshot; each must reproduce the
		// uninterrupted run's final weights bit for bit.
		for _, cut := range []int{0, len(rec.snaps) / 2, len(rec.snaps) - 2} {
			if cut < 0 || cut >= len(rec.snaps) {
				continue
			}
			st := rec.snaps[cut].State
			train := sineData(60, 11, 0.05)
			check := sineData(25, 12, 0.05)
			sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Train(sys, train, check, Config{
				Epochs:  12,
				Resume:  st.Clone(),
				Workers: workers,
			}); err != nil {
				t.Fatal(err)
			}
			if got := marshalSys(t, sys); got != wantSys {
				t.Errorf("workers=%d resume from epoch %d: weights differ from uninterrupted run",
					workers, st.Epoch)
			}
		}
	}
}

func TestResumeCrossWorkerCount(t *testing.T) {
	// The deterministic-reduction contract means a checkpoint taken at one
	// worker count must resume bit-identically at another.
	_, wantSys, rec := trainSineSystem(t, 1)
	st := rec.snaps[len(rec.snaps)/2].State
	train := sineData(60, 11, 0.05)
	check := sineData(25, 12, 0.05)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(sys, train, check, Config{Epochs: 12, Resume: st.Clone(), Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if got := marshalSys(t, sys); got != wantSys {
		t.Error("resume at workers=4 of a workers=1 checkpoint diverged")
	}
}

func TestResumeValidation(t *testing.T) {
	train := sineData(30, 3, 0)
	sys, err := Build(train, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("invalid state rejected", func(t *testing.T) {
		_, err := Train(sys.Clone(), train, nil, Config{Resume: &TrainState{Epoch: -1}})
		if err == nil {
			t.Fatal("invalid resume state accepted")
		}
	})
	t.Run("check set requires check history", func(t *testing.T) {
		st := &TrainState{
			Epoch:         0,
			Sys:           sys.Clone(),
			Best:          sys.Clone(),
			BestError:     1,
			PrevTrain:     1,
			Rate:          0.02,
			TrainRMSE:     []float64{1},
			LearningRates: []float64{0.02},
		}
		_, err := Train(sys.Clone(), train, sineData(10, 4, 0), Config{Resume: st})
		if err == nil || !strings.Contains(err.Error(), "check history") {
			t.Fatalf("err = %v, want check-history rejection", err)
		}
	})
}

func TestStateValidate(t *testing.T) {
	train := sineData(30, 3, 0)
	sys, err := Build(train, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	good := func() *TrainState {
		return &TrainState{
			Epoch: 1, Sys: sys.Clone(), Best: sys.Clone(),
			BestEpoch: 1, BestError: 0.5, PrevTrain: 0.5, Rate: 0.02,
			TrainRMSE: []float64{1, 0.5}, LearningRates: []float64{0.02, 0.02},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	mutations := map[string]func(*TrainState){
		"nil sys":           func(s *TrainState) { s.Sys = nil },
		"negative epoch":    func(s *TrainState) { s.Epoch = -1 },
		"short history":     func(s *TrainState) { s.TrainRMSE = s.TrainRMSE[:1] },
		"bad check history": func(s *TrainState) { s.CheckRMSE = []float64{1} },
		"best out of range": func(s *TrainState) { s.BestEpoch = 7 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			s := good()
			mutate(s)
			if err := s.Validate(); err == nil {
				t.Error("invalid state accepted")
			}
		})
	}
	var nilState *TrainState
	if err := nilState.Validate(); err == nil {
		t.Error("nil state accepted")
	}
	if nilState.Clone() != nil {
		t.Error("nil clone not nil")
	}
}

func TestDivergenceRollbackRecovers(t *testing.T) {
	// An absurd adaptive-rate growth factor explodes the step size after a
	// few decreasing epochs and drives the parameters to NaN. With retries
	// the loop must roll back to the best finite snapshot, disable the
	// heuristic, and finish with finite weights.
	train := sineData(60, 21, 0.1)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	hist, err := Train(sys, train, nil, Config{
		Epochs:            40,
		LearningRate:      0.05,
		Tol:               1e-300,
		AdaptiveRate:      true,
		RateGrow:          1e300,
		DivergenceRetries: 3,
		Observer: ObserverFuncs{OnEpoch: func(ev EpochEvent) {
			if ev.Diverged {
				diverged++
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.DivergenceRollbacks == 0 {
		t.Fatal("training did not diverge under the forcing configuration")
	}
	if diverged != hist.DivergenceRollbacks && diverged != hist.DivergenceRollbacks+1 {
		t.Errorf("observer saw %d diverged epochs, history says %d rollbacks",
			diverged, hist.DivergenceRollbacks)
	}
	if hist.Reason == StopDiverged {
		t.Errorf("training aborted with %q despite retries", hist.Reason)
	}
	for i, v := range hist.TrainRMSE {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("TrainRMSE[%d] = %v after recovery", i, v)
		}
	}
	if !finiteParams(sys) {
		t.Error("final parameters not finite after recovery")
	}
}

func TestDivergenceWithoutRetriesStops(t *testing.T) {
	train := sineData(60, 21, 0.1)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Train(sys, train, nil, Config{
		Epochs:       40,
		LearningRate: 0.05,
		Tol:          1e-300,
		AdaptiveRate: true,
		RateGrow:     1e300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.DivergenceRollbacks != 0 {
		t.Errorf("rollbacks = %d with DivergenceRetries=0", hist.DivergenceRollbacks)
	}
	if hist.Reason != StopDiverged {
		t.Errorf("reason = %v, want %v", hist.Reason, StopDiverged)
	}
}

func TestHistoryBestError(t *testing.T) {
	train := sineData(60, 5, 0.05)
	check := sineData(25, 6, 0.05)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Train(sys, train, check, Config{Epochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.CheckRMSE) == 0 {
		t.Fatal("no check history")
	}
	want := hist.CheckRMSE[hist.BestEpoch]
	if hist.BestError != want {
		t.Errorf("BestError = %v, want CheckRMSE[BestEpoch] = %v", hist.BestError, want)
	}
}

func TestSnapshotsOnlyWhenRequested(t *testing.T) {
	// A plain observer must not trigger snapshot capture; combining it with
	// a snapshot observer must.
	train := sineData(40, 7, 0)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	plain := ObserverFuncs{}
	if _, ok := Observers(plain, nil).(SnapshotObserver); ok {
		t.Error("plain observer combination implements SnapshotObserver")
	}
	rec := &snapshotRecorder{}
	combined := Observers(plain, rec)
	if _, ok := combined.(SnapshotObserver); !ok {
		t.Fatal("combined observer lost SnapshotObserver")
	}
	hist, err := Train(sys, train, nil, Config{Epochs: 3, Observer: combined})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.snaps) != len(hist.TrainRMSE) {
		t.Errorf("snapshots = %d, epochs = %d", len(rec.snaps), len(hist.TrainRMSE))
	}
	for _, ev := range rec.snaps {
		if err := ev.State.Validate(); err != nil {
			t.Fatalf("emitted snapshot invalid: %v", err)
		}
	}
}
