package anfis

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cqm/internal/cluster"
	"cqm/internal/fuzzy"
	"cqm/internal/parallel"
	"cqm/internal/regress"
)

// sineData samples y = sin(x) over [0, 2π].
func sineData(n int, seed int64, noise float64) *Data {
	r := rand.New(rand.NewSource(seed))
	d := &Data{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		d.X[i] = []float64{x}
		d.Y[i] = math.Sin(x) + noise*r.NormFloat64()
	}
	return d
}

func TestDataValidate(t *testing.T) {
	tests := []struct {
		name string
		d    Data
		n    int
		want error
	}{
		{"empty", Data{}, 0, ErrEmptyData},
		{"length mismatch", Data{X: [][]float64{{1}}, Y: []float64{1, 2}}, 0, ErrMismatch},
		{"ragged", Data{X: [][]float64{{1}, {1, 2}}, Y: []float64{1, 2}}, 0, ErrMismatch},
		{"wrong arity", Data{X: [][]float64{{1}}, Y: []float64{1}}, 2, ErrMismatch},
		{"ok", Data{X: [][]float64{{1}}, Y: []float64{1}}, 1, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.d.Validate(tt.n)
			if tt.want == nil && err != nil {
				t.Errorf("err = %v, want nil", err)
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestBuildLinearTargetIsExact(t *testing.T) {
	// A linear target is representable exactly by TSK linear consequents,
	// whatever the rule partition: the initial LSE fit must nail it.
	r := rand.New(rand.NewSource(1))
	d := &Data{}
	for i := 0; i < 60; i++ {
		x1, x2 := r.Float64(), r.Float64()
		d.X = append(d.X, []float64{x1, x2})
		d.Y = append(d.Y, 2*x1-3*x2+0.5)
	}
	sys, err := Build(d, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := RMSE(sys, d); rmse > 1e-6 {
		t.Errorf("RMSE = %v, want ~0 for linear target", rmse)
	}
}

func TestBuildSineApproximation(t *testing.T) {
	d := sineData(80, 2, 0)
	sys, err := Build(d, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumRules() < 2 {
		t.Fatalf("only %d rules for a sine", sys.NumRules())
	}
	if rmse := RMSE(sys, d); rmse > 0.1 {
		t.Errorf("sine RMSE = %v, want < 0.1", rmse)
	}
}

func TestBuildEmptyData(t *testing.T) {
	if _, err := Build(&Data{}, BuildConfig{}); !errors.Is(err, ErrEmptyData) {
		t.Errorf("err = %v, want ErrEmptyData", err)
	}
}

func TestFitConsequentsRecoverLinear(t *testing.T) {
	// One wide rule over 1D data: the consequent must become y = 2x + 1.
	sys, err := fuzzy.NewTSK(1, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 0.5, Sigma: 10}},
		Coeffs:     []float64{0, 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	d := &Data{}
	for i := 0; i < 20; i++ {
		x := float64(i) / 19
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 2*x+1)
	}
	if err := FitConsequents(sys, d, regress.MethodSVD); err != nil {
		t.Fatal(err)
	}
	rule := sys.Rule(0)
	if math.Abs(rule.Coeffs[0]-2) > 1e-8 || math.Abs(rule.Coeffs[1]-1) > 1e-8 {
		t.Errorf("Coeffs = %v, want [2 1]", rule.Coeffs)
	}
}

func TestFitConsequentsArityMismatch(t *testing.T) {
	sys, _ := fuzzy.NewTSK(2, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 0, Sigma: 1}, {Mu: 0, Sigma: 1}},
		Coeffs:     []float64{0, 0, 0},
	}})
	d := &Data{X: [][]float64{{1}}, Y: []float64{1}}
	if err := FitConsequents(sys, d, 0); !errors.Is(err, ErrMismatch) {
		t.Errorf("err = %v, want ErrMismatch", err)
	}
}

func TestBackwardPassGradientMatchesNumerical(t *testing.T) {
	// Verify the analytic gradients of the backward pass against central
	// finite differences of the batch loss L = ½ Σ (S(v)−y)².
	d := sineData(15, 3, 0)
	sys, err := fuzzy.NewTSK(1, []fuzzy.Rule{
		{Antecedent: []fuzzy.Gaussian{{Mu: 1, Sigma: 1.2}}, Coeffs: []float64{0.3, 0.2}},
		{Antecedent: []fuzzy.Gaussian{{Mu: 4, Sigma: 1.5}}, Coeffs: []float64{-0.4, 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	loss := func(s *fuzzy.TSK) float64 {
		var l float64
		for i, v := range d.X {
			out, err := s.Eval(v)
			if err != nil {
				t.Fatal(err)
			}
			e := out - d.Y[i]
			l += 0.5 * e * e
		}
		return l
	}
	const lr = 1e-6 // tiny step so the update ≈ −lr/count·∇L
	before := sys.Clone()
	backwardPass(sys, d, Config{LearningRate: lr, MinSigma: 1e-9}.withDefaults(), parallel.New(1))
	count := float64(d.Len())
	const h = 1e-6
	for j := 0; j < sys.NumRules(); j++ {
		ruleBefore := before.Rule(j)
		ruleAfter := sys.Rule(j)
		// Analytic gradient recovered from the parameter delta.
		gradMu := -(ruleAfter.Antecedent[0].Mu - ruleBefore.Antecedent[0].Mu) * count / lr
		gradSigma := -(ruleAfter.Antecedent[0].Sigma - ruleBefore.Antecedent[0].Sigma) * count / lr
		// Numerical gradients.
		perturb := func(dMu, dSigma float64) float64 {
			cp := before.Clone()
			r := cp.Rule(j)
			r.Antecedent[0].Mu += dMu
			r.Antecedent[0].Sigma += dSigma
			if err := cp.SetRule(j, r); err != nil {
				t.Fatal(err)
			}
			return loss(cp)
		}
		numMu := (perturb(h, 0) - perturb(-h, 0)) / (2 * h)
		numSigma := (perturb(0, h) - perturb(0, -h)) / (2 * h)
		if math.Abs(gradMu-numMu) > 1e-3*math.Max(1, math.Abs(numMu)) {
			t.Errorf("rule %d: gradMu = %v, numerical %v", j, gradMu, numMu)
		}
		if math.Abs(gradSigma-numSigma) > 1e-3*math.Max(1, math.Abs(numSigma)) {
			t.Errorf("rule %d: gradSigma = %v, numerical %v", j, gradSigma, numSigma)
		}
	}
}

func TestTrainImprovesSineFit(t *testing.T) {
	train := sineData(60, 4, 0.02)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	before := RMSE(sys, train)
	hist, err := Train(sys, train, nil, Config{Epochs: 40, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	after := RMSE(sys, train)
	if after > before+1e-12 {
		t.Errorf("training worsened RMSE: %v -> %v", before, after)
	}
	if len(hist.TrainRMSE) == 0 {
		t.Error("no training history recorded")
	}
	if hist.Reason == "" {
		t.Error("no stop reason recorded")
	}
	if hist.BestEpoch < 0 || hist.BestEpoch >= len(hist.TrainRMSE) {
		t.Errorf("BestEpoch %d out of range", hist.BestEpoch)
	}
}

func TestTrainRollsBackToBestCheckEpoch(t *testing.T) {
	// A destructive learning rate degrades the system quickly; the
	// check-set stopping rule must both stop early and roll back so the
	// final system is the best one seen.
	train := sineData(40, 5, 0.05)
	check := sineData(25, 6, 0.05)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Train(sys, train, check, Config{Epochs: 200, LearningRate: 8, Patience: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.CheckRMSE) == 0 {
		t.Fatal("no check history")
	}
	finalCheck := RMSE(sys, check)
	bestSeen := hist.CheckRMSE[0]
	for _, e := range hist.CheckRMSE {
		if e < bestSeen {
			bestSeen = e
		}
	}
	if finalCheck > bestSeen+1e-9 {
		t.Errorf("rollback failed: final check RMSE %v, best seen %v", finalCheck, bestSeen)
	}
}

func TestTrainStopsOnCheckDegradation(t *testing.T) {
	// Noisy data with a fine rule partition overfits quickly: the check
	// error must degrade and stop training well before the epoch budget.
	train := sineData(40, 7, 0.15)
	check := sineData(25, 8, 0.15)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Train(sys, train, check, Config{Epochs: 500, LearningRate: 2, Patience: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Reason != StopCheckDegraded {
		t.Errorf("Reason = %q after %d epochs, want check degradation",
			hist.Reason, len(hist.TrainRMSE))
	}
}

func TestTrainValidatesInputs(t *testing.T) {
	sys, _ := fuzzy.NewTSK(1, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 0, Sigma: 1}},
		Coeffs:     []float64{0, 0},
	}})
	if _, err := Train(sys, &Data{}, nil, Config{}); err == nil {
		t.Error("empty train set accepted")
	}
	good := &Data{X: [][]float64{{1}}, Y: []float64{1}}
	badCheck := &Data{X: [][]float64{{1, 2}}, Y: []float64{1}}
	if _, err := Train(sys, good, badCheck, Config{}); err == nil {
		t.Error("bad check set accepted")
	}
	if _, err := Train(sys, good, nil, Config{LearningRate: -1}); err == nil {
		t.Error("negative learning rate accepted")
	}
}

func TestRMSEPenalizesNoActivation(t *testing.T) {
	sys, _ := fuzzy.NewTSK(1, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 0, Sigma: 1e-3}},
		Coeffs:     []float64{0, 0},
	}})
	d := &Data{X: [][]float64{{1e9}}, Y: []float64{0}}
	if got := RMSE(sys, d); got != 1 {
		t.Errorf("RMSE = %v, want 1 (worst case) for dead input", got)
	}
	if got := RMSE(sys, &Data{}); got != 0 {
		t.Errorf("RMSE of empty data = %v, want 0", got)
	}
}

func TestSigmaFloorHolds(t *testing.T) {
	train := sineData(30, 9, 0)
	sys, err := Build(train, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const floor = 0.05
	if _, err := Train(sys, train, nil, Config{Epochs: 50, LearningRate: 10, MinSigma: floor}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < sys.NumRules(); j++ {
		for _, mf := range sys.Rule(j).Antecedent {
			if mf.Sigma < floor {
				t.Errorf("sigma %v fell below the floor %v", mf.Sigma, floor)
			}
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	d := sineData(100, 1, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(d, BuildConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	d := sineData(100, 1, 0.01)
	sys, err := Build(d, BuildConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := sys.Clone()
		if _, err := Train(cp, d, nil, Config{Epochs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
