package anfis

import (
	"context"
	"fmt"
	"math"

	"cqm/internal/fuzzy"
	"cqm/internal/obs"
	"cqm/internal/parallel"
	"cqm/internal/regress"
)

// Parallelization constants for training. The grains shape the chunk
// partition of the gradient and error reductions and are therefore part
// of the deterministic-reduction contract: fixed here, never derived
// from worker count or environment.
const (
	// anfisCutoff is the sample count below which the auto worker
	// setting stays serial.
	anfisCutoff = 512
	// gradGrain chunks the per-sample gradient accumulation.
	gradGrain = 32
	// rmseGrain chunks the per-sample squared-error accumulation.
	rmseGrain = 32
)

// StopReason explains why hybrid learning ended.
type StopReason string

// Stop reasons recorded in the training history.
const (
	// StopEpochs: the epoch budget ran out.
	StopEpochs StopReason = "epoch budget exhausted"
	// StopCheckDegraded: the check-set error degraded for Patience
	// consecutive epochs (the paper's stopping rule).
	StopCheckDegraded StopReason = "check error degraded"
	// StopConverged: the training error improvement fell below Tol.
	StopConverged StopReason = "training error converged"
	// StopDiverged: an epoch produced a NaN/Inf error or parameter and the
	// divergence-retry budget was exhausted (or zero). The system is rolled
	// back to the best finite snapshot, as with any other stop.
	StopDiverged StopReason = "training diverged"
	// StopHalted: the Config.Halt hook asked training to end before the
	// epoch ran. The system is rolled back to the best snapshot so far, as
	// with any other stop.
	StopHalted StopReason = "halted by budget hook"
)

// EpochEvent reports one completed hybrid-learning epoch to a
// TrainObserver.
type EpochEvent struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// TrainRMSE is the training error after this epoch.
	TrainRMSE float64
	// CheckRMSE is the check-set error after this epoch; valid only when
	// HasCheck.
	CheckRMSE float64
	// HasCheck reports whether a check set drives the early stop.
	HasCheck bool
	// LearningRate is the gradient step size used this epoch.
	LearningRate float64
	// Best reports whether this epoch's parameters became the kept
	// snapshot.
	Best bool
	// Diverged reports that this epoch produced a NaN/Inf error or
	// parameter. When divergence retries remain, the epoch index will be
	// re-attempted from the best finite snapshot at a reduced step size;
	// otherwise training stops with StopDiverged.
	Diverged bool
}

// StopEvent reports the end of a hybrid-learning run.
type StopEvent struct {
	// Reason explains why training stopped.
	Reason StopReason
	// Epochs is the number of epochs actually run.
	Epochs int
	// BestEpoch is the epoch whose parameters were kept.
	BestEpoch int
	// BestError is the error of the kept snapshot (check error with a
	// check set, train error otherwise).
	BestError float64
}

// TrainObserver receives per-epoch progress and the stopping decision of a
// hybrid-learning run. Epoch is called once per completed epoch, in order;
// Stop is called exactly once afterwards. Observers run synchronously on
// the training goroutine, so they must be fast.
type TrainObserver interface {
	TrainEpoch(EpochEvent)
	TrainStop(StopEvent)
}

// ObserverFuncs adapts plain functions to a TrainObserver; nil fields are
// skipped.
type ObserverFuncs struct {
	OnEpoch func(EpochEvent)
	OnStop  func(StopEvent)
}

// TrainEpoch implements TrainObserver.
func (o ObserverFuncs) TrainEpoch(ev EpochEvent) {
	if o.OnEpoch != nil {
		o.OnEpoch(ev)
	}
}

// TrainStop implements TrainObserver.
func (o ObserverFuncs) TrainStop(ev StopEvent) {
	if o.OnStop != nil {
		o.OnStop(ev)
	}
}

// TrainState is the complete internal state of a hybrid-learning run after
// some epoch: the current and best-so-far parameters plus every counter the
// loop consults (early-stop patience, adaptive-rate bookkeeping, history).
// Resuming Train from a TrainState replays the remaining epochs with
// arithmetic bit-identical to a run that was never interrupted, because the
// loop's float operations see exactly the same operands in the same order.
// All fields are finite after any completed epoch, so the state serializes
// cleanly to JSON.
type TrainState struct {
	// Epoch is the zero-based index of the last completed epoch.
	Epoch int `json:"epoch"`
	// Sys holds the parameters as of the end of Epoch.
	Sys *fuzzy.TSK `json:"sys"`
	// Best holds the kept (lowest-error) snapshot so far.
	Best *fuzzy.TSK `json:"best"`
	// BestEpoch is the epoch Best was captured at.
	BestEpoch int `json:"best_epoch"`
	// BestError is the error of Best (check error with a check set, train
	// error otherwise).
	BestError float64 `json:"best_error"`
	// Degraded counts consecutive check-error degradations so far.
	Degraded int `json:"degraded"`
	// PrevTrain is the training error the next epoch's Tol check compares
	// against.
	PrevTrain float64 `json:"prev_train"`
	// Rate is the learning rate the next epoch will step with.
	Rate float64 `json:"rate"`
	// Decreases counts consecutive training-error decreases (adaptive
	// rate).
	Decreases int `json:"decreases"`
	// Swings counts consecutive decrease/increase alternations (adaptive
	// rate).
	Swings int `json:"swings"`
	// TrainRMSE, CheckRMSE, and LearningRates mirror History up to Epoch.
	TrainRMSE     []float64 `json:"train_rmse"`
	CheckRMSE     []float64 `json:"check_rmse,omitempty"`
	LearningRates []float64 `json:"learning_rates"`
}

// Validate checks the structural invariants a resumable state must hold.
func (s *TrainState) Validate() error {
	switch {
	case s == nil:
		return fmt.Errorf("anfis: nil train state")
	case s.Sys == nil || s.Best == nil:
		return fmt.Errorf("anfis: train state missing system snapshots")
	case s.Epoch < 0:
		return fmt.Errorf("anfis: train state epoch %d", s.Epoch)
	case len(s.TrainRMSE) != s.Epoch+1 || len(s.LearningRates) != s.Epoch+1:
		return fmt.Errorf("anfis: train state history length %d/%d does not cover epoch %d",
			len(s.TrainRMSE), len(s.LearningRates), s.Epoch)
	case len(s.CheckRMSE) != 0 && len(s.CheckRMSE) != s.Epoch+1:
		return fmt.Errorf("anfis: train state check history length %d for epoch %d",
			len(s.CheckRMSE), s.Epoch)
	case s.BestEpoch < 0 || s.BestEpoch > s.Epoch:
		return fmt.Errorf("anfis: train state best epoch %d outside [0,%d]", s.BestEpoch, s.Epoch)
	case s.Sys.Inputs() != s.Best.Inputs():
		return fmt.Errorf("anfis: train state snapshots disagree on arity (%d vs %d)",
			s.Sys.Inputs(), s.Best.Inputs())
	}
	return nil
}

// Clone returns a deep copy of the state.
func (s *TrainState) Clone() *TrainState {
	if s == nil {
		return nil
	}
	out := *s
	out.Sys = s.Sys.Clone()
	out.Best = s.Best.Clone()
	out.TrainRMSE = append([]float64(nil), s.TrainRMSE...)
	out.CheckRMSE = append([]float64(nil), s.CheckRMSE...)
	out.LearningRates = append([]float64(nil), s.LearningRates...)
	return &out
}

// SnapshotEvent hands a checkpointable TrainState to a SnapshotObserver at
// the end of a completed epoch. The state is a deep copy: the observer may
// retain or serialize it freely.
type SnapshotEvent struct {
	// State is the full training state after the completed epoch.
	State *TrainState
	// Best reports whether this epoch's parameters became the kept
	// snapshot, so checkpointers can maintain a best-so-far artifact.
	Best bool
}

// SnapshotObserver is an optional extension of TrainObserver: when the
// configured observer also implements it, Train hands it a deep-copied
// TrainState after every completed epoch — the hook checkpointers persist
// through. Snapshot capture clones the system twice per epoch, so Train
// only pays for it when the observer asks.
type SnapshotObserver interface {
	TrainSnapshot(SnapshotEvent)
}

// Observers fans one event stream out to several observers, in argument
// order; nil entries are dropped. All-nil input yields nil, and a single
// survivor is returned unwrapped, so Train's Observer != nil check keeps
// meaning "someone is listening". When any member implements
// SnapshotObserver the combined observer does too, forwarding snapshots to
// the members that want them; otherwise it deliberately does not, so Train
// skips the per-epoch state capture.
func Observers(list ...TrainObserver) TrainObserver {
	kept := make([]TrainObserver, 0, len(list))
	for _, o := range list {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	for _, o := range kept {
		if _, ok := o.(SnapshotObserver); ok {
			return multiSnapshotObserver{kept}
		}
	}
	return multiObserver(kept)
}

type multiObserver []TrainObserver

func (m multiObserver) TrainEpoch(ev EpochEvent) {
	for _, o := range m {
		o.TrainEpoch(ev)
	}
}

func (m multiObserver) TrainStop(ev StopEvent) {
	for _, o := range m {
		o.TrainStop(ev)
	}
}

// multiSnapshotObserver is a multiObserver with at least one
// snapshot-hungry member.
type multiSnapshotObserver struct {
	multiObserver
}

// TrainSnapshot forwards the snapshot to every member that implements
// SnapshotObserver.
func (m multiSnapshotObserver) TrainSnapshot(ev SnapshotEvent) {
	for _, o := range m.multiObserver {
		if s, ok := o.(SnapshotObserver); ok {
			s.TrainSnapshot(ev)
		}
	}
}

// Config parameterizes hybrid learning (paper §2.2.4).
type Config struct {
	// Epochs bounds the number of hybrid iterations. Default 100.
	Epochs int
	// LearningRate is the gradient-descent step size of the backward pass.
	// Default 0.02.
	LearningRate float64
	// MinSigma floors the Gaussian widths so membership functions cannot
	// collapse. Default 1e-4.
	MinSigma float64
	// Patience is the number of consecutive check-error degradations that
	// stops training. Default 5.
	Patience int
	// Tol stops training when the train RMSE improves by less than Tol
	// between epochs. Default 1e-9.
	Tol float64
	// LSMethod selects the forward-pass solver; zero value is SVD.
	LSMethod regress.Method
	// ConstantConsequents makes the forward pass fit zero-order
	// consequents, matching a system built with the same option.
	ConstantConsequents bool
	// AdaptiveRate enables Jang's step-size heuristic: after four
	// consecutive training-error decreases the learning rate grows by
	// RateGrow; after two decrease/increase oscillations it shrinks by
	// RateShrink.
	AdaptiveRate bool
	// RateGrow is the multiplicative increase factor. Default 1.1.
	RateGrow float64
	// RateShrink is the multiplicative decrease factor. Default 0.9.
	RateShrink float64
	// Observer, when non-nil, receives one EpochEvent per epoch and a
	// final StopEvent — the training-progress hook the CLIs and the
	// metrics layer report through. An observer that also implements
	// SnapshotObserver additionally receives a checkpointable TrainState
	// after every completed epoch.
	Observer TrainObserver
	// Resume, when non-nil, restarts training from a previously captured
	// TrainState instead of from scratch: the loop continues at
	// Resume.Epoch+1 with every counter restored, so the remaining epochs
	// are bit-identical to an uninterrupted run with the same data and
	// config. Epochs still names the total budget, not an increment.
	Resume *TrainState
	// DivergenceRetries bounds how many times a NaN/Inf epoch may be
	// retried: on divergence the parameters roll back to the best finite
	// snapshot, the step size shrinks by DivergenceShrink (and the
	// adaptive-rate heuristic, the usual cause of the blow-up, is disabled
	// for the rest of the run), and the same epoch index runs again. 0 (the
	// default) stops immediately with StopDiverged.
	DivergenceRetries int
	// DivergenceShrink is the step-size reduction factor applied on each
	// divergence rollback. Default 0.5.
	DivergenceShrink float64
	// Halt, when non-nil, is consulted with the upcoming epoch index before
	// each epoch runs; returning true stops training with StopHalted and
	// rolls back to the best snapshot so far. It is how external budgets
	// (virtual-time deadlines, adaptation retrain caps) bound a run without
	// anfis ever reading a clock itself — the hook must be a deterministic
	// function of the epoch index and the caller's own state for the
	// bit-identical-replay contract to hold.
	Halt func(epoch int) bool
	// Workers parallelizes the backward gradient pass and the per-epoch
	// RMSE evaluations: 0 picks one worker per CPU (falling back to
	// serial below a size cutoff), 1 forces serial execution. Training
	// results are bit-identical at every setting — gradient and error
	// sums are chunked by input shape and merged in chunk order
	// regardless of worker count.
	Workers int
	// Metrics, when non-nil, instruments the training worker pool
	// (occupancy, chunk counts and timings) on this registry.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 100
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.02
	}
	if c.MinSigma == 0 {
		c.MinSigma = 1e-4
	}
	if c.Patience == 0 {
		c.Patience = 5
	}
	if c.Tol == 0 {
		c.Tol = 1e-9
	}
	if c.RateGrow == 0 {
		c.RateGrow = 1.1
	}
	if c.RateShrink == 0 {
		c.RateShrink = 0.9
	}
	if c.DivergenceShrink == 0 {
		c.DivergenceShrink = 0.5
	}
	return c
}

// History records per-epoch errors and the stopping decision.
type History struct {
	// TrainRMSE[k] is the training RMSE after epoch k.
	TrainRMSE []float64
	// CheckRMSE[k] is the check-set RMSE after epoch k (empty without a
	// check set).
	CheckRMSE []float64
	// BestEpoch is the epoch whose parameters were kept (lowest check
	// RMSE; lowest train RMSE when no check set is given).
	BestEpoch int
	// BestError is the error of the kept snapshot — the check-set RMSE at
	// BestEpoch with a check set, the training RMSE otherwise — so logs and
	// checkpoint manifests can report the early-stopping state without
	// re-deriving it from the weights. +Inf when no epoch ran.
	BestError float64
	// Reason explains why training stopped.
	Reason StopReason
	// LearningRates records the per-epoch step size (constant unless
	// AdaptiveRate is enabled).
	LearningRates []float64
	// DivergenceRollbacks counts NaN/Inf epochs that were rolled back to
	// the best finite snapshot and retried at a reduced step size.
	DivergenceRollbacks int
}

// Train runs hybrid learning on sys in place: per epoch a backward
// gradient pass adapts every Gaussian (µ, σ) and a forward pass re-fits
// the consequents by least squares. check may be nil; with a check set the
// system is rolled back to the epoch with the lowest check error.
func Train(sys *fuzzy.TSK, train, check *Data, cfg Config) (*History, error) {
	cfg = cfg.withDefaults()
	if cfg.LearningRate < 0 || cfg.Epochs < 0 || cfg.Patience < 1 || cfg.Workers < 0 || cfg.DivergenceRetries < 0 {
		return nil, fmt.Errorf("anfis: invalid config %+v", cfg)
	}
	if err := train.Validate(sys.Inputs()); err != nil {
		return nil, fmt.Errorf("anfis: train set: %w", err)
	}
	if check != nil {
		if err := check.Validate(sys.Inputs()); err != nil {
			return nil, fmt.Errorf("anfis: check set: %w", err)
		}
	}

	pool := parallel.Auto(cfg.Workers, train.Len(), anfisCutoff)
	pool.Instrument(cfg.Metrics)

	hist := &History{}
	best := sys.Clone()
	bestErr := math.Inf(1)
	degraded := 0
	prevTrain := math.Inf(1)
	rate := cfg.LearningRate
	decreases := 0 // consecutive training-error decreases
	swings := 0    // consecutive decrease/increase alternations
	adaptive := cfg.AdaptiveRate
	startEpoch := 0
	if cfg.Resume != nil {
		st := cfg.Resume
		if err := st.Validate(); err != nil {
			return nil, fmt.Errorf("anfis: resume: %w", err)
		}
		if err := train.Validate(st.Sys.Inputs()); err != nil {
			return nil, fmt.Errorf("anfis: resume state vs train set: %w", err)
		}
		if check != nil && len(st.CheckRMSE) == 0 && st.Epoch >= 0 {
			return nil, fmt.Errorf("anfis: resume state has no check history but a check set is given")
		}
		*sys = *st.Sys.Clone()
		best = st.Best.Clone()
		bestErr = st.BestError
		degraded = st.Degraded
		prevTrain = st.PrevTrain
		rate = st.Rate
		decreases = st.Decreases
		swings = st.Swings
		hist.BestEpoch = st.BestEpoch
		hist.TrainRMSE = append(hist.TrainRMSE, st.TrainRMSE...)
		hist.CheckRMSE = append(hist.CheckRMSE, st.CheckRMSE...)
		hist.LearningRates = append(hist.LearningRates, st.LearningRates...)
		startEpoch = st.Epoch + 1
	}

	forward := FitConsequents
	if cfg.ConstantConsequents {
		forward = FitConstantConsequents
	}
	snap, _ := cfg.Observer.(SnapshotObserver)
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		if cfg.Halt != nil && cfg.Halt(epoch) {
			hist.Reason = StopHalted
			break
		}
		stepCfg := cfg
		stepCfg.LearningRate = rate
		backwardPass(sys, train, stepCfg, pool)
		if err := forward(sys, train, cfg.LSMethod); err != nil {
			return nil, fmt.Errorf("anfis: forward pass at epoch %d: %w", epoch, err)
		}

		trainErr := rmseWith(sys, train, pool)
		stepRate := rate
		checkErr := 0.0
		if check != nil {
			checkErr = rmseWith(sys, check, pool)
		}
		if !isFinite(trainErr) || (check != nil && !isFinite(checkErr)) || !finiteParams(sys) {
			// Divergence: the step blew the parameters (or the error) out
			// of the finite domain. Nothing from this epoch is kept — not
			// even history entries, so checkpoints stay JSON-serializable.
			if cfg.Observer != nil {
				cfg.Observer.TrainEpoch(EpochEvent{
					Epoch:        epoch,
					TrainRMSE:    trainErr,
					CheckRMSE:    checkErr,
					HasCheck:     check != nil,
					LearningRate: stepRate,
					Diverged:     true,
				})
			}
			if hist.DivergenceRollbacks < cfg.DivergenceRetries {
				hist.DivergenceRollbacks++
				*sys = *best.Clone()
				// Reduced fixed step: the adaptive heuristic is what grows
				// the rate into the blow-up, so it stays off from here on.
				rate = math.Min(rate, cfg.LearningRate) * cfg.DivergenceShrink
				adaptive = false
				decreases, swings = 0, 0
				prevTrain = math.Inf(1)
				epoch-- // retry the same epoch index from the rollback
				continue
			}
			hist.Reason = StopDiverged
			break
		}
		hist.TrainRMSE = append(hist.TrainRMSE, trainErr)
		hist.LearningRates = append(hist.LearningRates, rate)
		if adaptive && epoch > 0 {
			prev := hist.TrainRMSE[epoch-1]
			if trainErr < prev {
				decreases++
				if swings > 0 {
					swings++
				}
			} else {
				decreases = 0
				swings++
			}
			// Jang's heuristic: sustained progress → larger steps;
			// oscillation → smaller steps.
			if decreases >= 4 {
				rate *= cfg.RateGrow
				decreases = 0
			}
			if swings >= 4 {
				rate *= cfg.RateShrink
				swings = 0
			}
		}

		scoreErr := trainErr
		if check != nil {
			hist.CheckRMSE = append(hist.CheckRMSE, checkErr)
			scoreErr = checkErr
		}
		isBest := scoreErr < bestErr
		if isBest {
			bestErr = scoreErr
			best = sys.Clone()
			hist.BestEpoch = epoch
			degraded = 0
		} else {
			degraded++
		}
		if cfg.Observer != nil {
			cfg.Observer.TrainEpoch(EpochEvent{
				Epoch:        epoch,
				TrainRMSE:    trainErr,
				CheckRMSE:    checkErr,
				HasCheck:     check != nil,
				LearningRate: stepRate,
				Best:         isBest,
			})
		}
		if !isBest && check != nil && degraded >= cfg.Patience {
			hist.Reason = StopCheckDegraded
			break
		}
		if math.Abs(prevTrain-trainErr) < cfg.Tol {
			hist.Reason = StopConverged
			break
		}
		prevTrain = trainErr
		if snap != nil {
			snap.TrainSnapshot(SnapshotEvent{
				State: &TrainState{
					Epoch:         epoch,
					Sys:           sys.Clone(),
					Best:          best.Clone(),
					BestEpoch:     hist.BestEpoch,
					BestError:     bestErr,
					Degraded:      degraded,
					PrevTrain:     prevTrain,
					Rate:          rate,
					Decreases:     decreases,
					Swings:        swings,
					TrainRMSE:     append([]float64(nil), hist.TrainRMSE...),
					CheckRMSE:     append([]float64(nil), hist.CheckRMSE...),
					LearningRates: append([]float64(nil), hist.LearningRates...),
				},
				Best: isBest,
			})
		}
	}
	if hist.Reason == "" {
		hist.Reason = StopEpochs
	}
	hist.BestError = bestErr
	// Roll back to the best snapshot.
	*sys = *best
	if cfg.Observer != nil {
		cfg.Observer.TrainStop(StopEvent{
			Reason:    hist.Reason,
			Epochs:    len(hist.TrainRMSE),
			BestEpoch: hist.BestEpoch,
			BestError: bestErr,
		})
	}
	return hist, nil
}

// isFinite reports whether x is neither NaN nor ±Inf.
func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// finiteParams reports whether every antecedent and consequent parameter of
// sys is finite. A diverging gradient can push µ (and with it the
// consequents fit against the resulting weights) to NaN/Inf while the RMSE
// stays finite — every sample then simply fires no rule and contributes the
// worst-case error of 1 — so divergence detection must look at the
// parameters, not just the error.
func finiteParams(sys *fuzzy.TSK) bool {
	for j := 0; j < sys.NumRules(); j++ {
		r := sys.Rule(j)
		for _, mf := range r.Antecedent {
			if !isFinite(mf.Mu) || !isFinite(mf.Sigma) {
				return false
			}
		}
		for _, c := range r.Coeffs {
			if !isFinite(c) {
				return false
			}
		}
	}
	return true
}

// backwardPass performs one batch gradient-descent step on every Gaussian
// membership parameter. For the Gaussian antecedents the chain rule gives,
// per sample with error e = S(v) − y and normalized context:
//
//	∂E/∂µ_ij = e · (f_j − S)/Σw · w_j · (v_i − µ_ij)/σ_ij²
//	∂E/∂σ_ij = e · (f_j − S)/Σw · w_j · (v_i − µ_ij)²/σ_ij³
//
// The w_j·GradF/F terms are folded analytically so vanishing membership
// degrees cause no division by zero.
//
// The gradient sum is chunked by sample index even when pool is serial:
// partials accumulate within fixed spans and merge in span order, so the
// float association — and hence the trained parameters — are bit-identical
// at every worker count.
func backwardPass(sys *fuzzy.TSK, train *Data, cfg Config, pool *parallel.Pool) {
	n := sys.Inputs()
	m := sys.NumRules()
	gradMu := make([][]float64, m)
	gradSigma := make([][]float64, m)
	for j := 0; j < m; j++ {
		gradMu[j] = make([]float64, n)
		gradSigma[j] = make([]float64, n)
	}
	rules := make([]fuzzy.Rule, m)
	for j := 0; j < m; j++ {
		rules[j] = sys.Rule(j)
	}

	count := 0
	// The error is always nil: the context is never cancelled. EvalDetail
	// is read-only on sys, and rules are only read until the merge is done.
	_ = parallel.ReduceOrdered(context.Background(), pool, train.Len(), gradGrain,
		func(s parallel.Span) gradPartial {
			part := newGradPartial(m, n)
			for idx := s.Lo; idx < s.Hi; idx++ {
				v := train.X[idx]
				detail, err := sys.EvalDetail(v)
				if err != nil {
					continue // sample fires no rule: no gradient
				}
				part.count++
				e := detail.Output - train.Y[idx]
				for j := 0; j < m; j++ {
					common := e * (detail.Consequents[j] - detail.Output) / detail.WeightSum * detail.Weights[j]
					for i := 0; i < n; i++ {
						mf := rules[j].Antecedent[i]
						d := v[i] - mf.Mu
						s2 := mf.Sigma * mf.Sigma
						part.mu[j][i] += common * d / s2
						part.sigma[j][i] += common * d * d / (s2 * mf.Sigma)
					}
				}
			}
			return part
		},
		func(part gradPartial) {
			count += part.count
			for j := 0; j < m; j++ {
				for i := 0; i < n; i++ {
					gradMu[j][i] += part.mu[j][i]
					gradSigma[j][i] += part.sigma[j][i]
				}
			}
		})
	if count == 0 {
		return
	}
	scale := cfg.LearningRate / float64(count)
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			rules[j].Antecedent[i].Mu -= scale * gradMu[j][i]
			sigma := rules[j].Antecedent[i].Sigma - scale*gradSigma[j][i]
			// The !(>=) form also floors NaN (all NaN comparisons are
			// false), which `sigma < MinSigma` would wave through — and a
			// NaN sigma fails rule validation and panics in SetRule.
			if !(sigma >= cfg.MinSigma) {
				sigma = cfg.MinSigma
			}
			rules[j].Antecedent[i].Sigma = sigma
		}
		// SetRule validates; the sigma floor guarantees success.
		if err := sys.SetRule(j, rules[j]); err != nil {
			panic(fmt.Sprintf("anfis: internal rule update failed: %v", err))
		}
	}
}

// gradPartial accumulates one chunk's share of the batch gradient.
type gradPartial struct {
	mu, sigma [][]float64
	count     int
}

func newGradPartial(m, n int) gradPartial {
	p := gradPartial{mu: make([][]float64, m), sigma: make([][]float64, m)}
	for j := 0; j < m; j++ {
		p.mu[j] = make([]float64, n)
		p.sigma[j] = make([]float64, n)
	}
	return p
}

// RMSE returns the root-mean-square error of the system over the data.
// Samples that activate no rule contribute the worst-case error of 1 so
// degenerate systems are penalized rather than hidden. Equivalent to
// RMSEParallel with a single worker.
func RMSE(sys *fuzzy.TSK, data *Data) float64 {
	return rmseWith(sys, data, parallel.New(1))
}

// RMSEParallel computes RMSE with up to workers goroutines (0 = one per
// CPU, falling back to serial below a size cutoff; 1 = serial). The
// result is bit-identical to RMSE at every worker count: the sum of
// squares is chunked by input shape and merged in chunk order either way.
func RMSEParallel(sys *fuzzy.TSK, data *Data, workers int) float64 {
	return rmseWith(sys, data, parallel.Auto(workers, data.Len(), anfisCutoff))
}

func rmseWith(sys *fuzzy.TSK, data *Data, pool *parallel.Pool) float64 {
	if data.Len() == 0 {
		return 0
	}
	var ss float64
	// The error is always nil — the context is never cancelled.
	_ = parallel.ReduceOrdered(context.Background(), pool, data.Len(), rmseGrain,
		func(s parallel.Span) float64 {
			var part float64
			for i := s.Lo; i < s.Hi; i++ {
				out, err := sys.Eval(data.X[i])
				if err != nil {
					part += 1
					continue
				}
				d := out - data.Y[i]
				part += d * d
			}
			return part
		},
		func(part float64) { ss += part })
	return math.Sqrt(ss / float64(data.Len()))
}
