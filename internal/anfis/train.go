package anfis

import (
	"fmt"
	"math"

	"cqm/internal/fuzzy"
	"cqm/internal/regress"
)

// StopReason explains why hybrid learning ended.
type StopReason string

// Stop reasons recorded in the training history.
const (
	// StopEpochs: the epoch budget ran out.
	StopEpochs StopReason = "epoch budget exhausted"
	// StopCheckDegraded: the check-set error degraded for Patience
	// consecutive epochs (the paper's stopping rule).
	StopCheckDegraded StopReason = "check error degraded"
	// StopConverged: the training error improvement fell below Tol.
	StopConverged StopReason = "training error converged"
)

// EpochEvent reports one completed hybrid-learning epoch to a
// TrainObserver.
type EpochEvent struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// TrainRMSE is the training error after this epoch.
	TrainRMSE float64
	// CheckRMSE is the check-set error after this epoch; valid only when
	// HasCheck.
	CheckRMSE float64
	// HasCheck reports whether a check set drives the early stop.
	HasCheck bool
	// LearningRate is the gradient step size used this epoch.
	LearningRate float64
	// Best reports whether this epoch's parameters became the kept
	// snapshot.
	Best bool
}

// StopEvent reports the end of a hybrid-learning run.
type StopEvent struct {
	// Reason explains why training stopped.
	Reason StopReason
	// Epochs is the number of epochs actually run.
	Epochs int
	// BestEpoch is the epoch whose parameters were kept.
	BestEpoch int
	// BestError is the error of the kept snapshot (check error with a
	// check set, train error otherwise).
	BestError float64
}

// TrainObserver receives per-epoch progress and the stopping decision of a
// hybrid-learning run. Epoch is called once per completed epoch, in order;
// Stop is called exactly once afterwards. Observers run synchronously on
// the training goroutine, so they must be fast.
type TrainObserver interface {
	TrainEpoch(EpochEvent)
	TrainStop(StopEvent)
}

// ObserverFuncs adapts plain functions to a TrainObserver; nil fields are
// skipped.
type ObserverFuncs struct {
	OnEpoch func(EpochEvent)
	OnStop  func(StopEvent)
}

// TrainEpoch implements TrainObserver.
func (o ObserverFuncs) TrainEpoch(ev EpochEvent) {
	if o.OnEpoch != nil {
		o.OnEpoch(ev)
	}
}

// TrainStop implements TrainObserver.
func (o ObserverFuncs) TrainStop(ev StopEvent) {
	if o.OnStop != nil {
		o.OnStop(ev)
	}
}

// Observers fans one event stream out to several observers, in argument
// order; nil entries are dropped. All-nil input yields nil, and a single
// survivor is returned unwrapped, so Train's Observer != nil check keeps
// meaning "someone is listening".
func Observers(list ...TrainObserver) TrainObserver {
	kept := make([]TrainObserver, 0, len(list))
	for _, o := range list {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiObserver(kept)
}

type multiObserver []TrainObserver

func (m multiObserver) TrainEpoch(ev EpochEvent) {
	for _, o := range m {
		o.TrainEpoch(ev)
	}
}

func (m multiObserver) TrainStop(ev StopEvent) {
	for _, o := range m {
		o.TrainStop(ev)
	}
}

// Config parameterizes hybrid learning (paper §2.2.4).
type Config struct {
	// Epochs bounds the number of hybrid iterations. Default 100.
	Epochs int
	// LearningRate is the gradient-descent step size of the backward pass.
	// Default 0.02.
	LearningRate float64
	// MinSigma floors the Gaussian widths so membership functions cannot
	// collapse. Default 1e-4.
	MinSigma float64
	// Patience is the number of consecutive check-error degradations that
	// stops training. Default 5.
	Patience int
	// Tol stops training when the train RMSE improves by less than Tol
	// between epochs. Default 1e-9.
	Tol float64
	// LSMethod selects the forward-pass solver; zero value is SVD.
	LSMethod regress.Method
	// ConstantConsequents makes the forward pass fit zero-order
	// consequents, matching a system built with the same option.
	ConstantConsequents bool
	// AdaptiveRate enables Jang's step-size heuristic: after four
	// consecutive training-error decreases the learning rate grows by
	// RateGrow; after two decrease/increase oscillations it shrinks by
	// RateShrink.
	AdaptiveRate bool
	// RateGrow is the multiplicative increase factor. Default 1.1.
	RateGrow float64
	// RateShrink is the multiplicative decrease factor. Default 0.9.
	RateShrink float64
	// Observer, when non-nil, receives one EpochEvent per epoch and a
	// final StopEvent — the training-progress hook the CLIs and the
	// metrics layer report through.
	Observer TrainObserver
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 100
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.02
	}
	if c.MinSigma == 0 {
		c.MinSigma = 1e-4
	}
	if c.Patience == 0 {
		c.Patience = 5
	}
	if c.Tol == 0 {
		c.Tol = 1e-9
	}
	if c.RateGrow == 0 {
		c.RateGrow = 1.1
	}
	if c.RateShrink == 0 {
		c.RateShrink = 0.9
	}
	return c
}

// History records per-epoch errors and the stopping decision.
type History struct {
	// TrainRMSE[k] is the training RMSE after epoch k.
	TrainRMSE []float64
	// CheckRMSE[k] is the check-set RMSE after epoch k (empty without a
	// check set).
	CheckRMSE []float64
	// BestEpoch is the epoch whose parameters were kept (lowest check
	// RMSE; lowest train RMSE when no check set is given).
	BestEpoch int
	// Reason explains why training stopped.
	Reason StopReason
	// LearningRates records the per-epoch step size (constant unless
	// AdaptiveRate is enabled).
	LearningRates []float64
}

// Train runs hybrid learning on sys in place: per epoch a backward
// gradient pass adapts every Gaussian (µ, σ) and a forward pass re-fits
// the consequents by least squares. check may be nil; with a check set the
// system is rolled back to the epoch with the lowest check error.
func Train(sys *fuzzy.TSK, train, check *Data, cfg Config) (*History, error) {
	cfg = cfg.withDefaults()
	if cfg.LearningRate < 0 || cfg.Epochs < 0 || cfg.Patience < 1 {
		return nil, fmt.Errorf("anfis: invalid config %+v", cfg)
	}
	if err := train.Validate(sys.Inputs()); err != nil {
		return nil, fmt.Errorf("anfis: train set: %w", err)
	}
	if check != nil {
		if err := check.Validate(sys.Inputs()); err != nil {
			return nil, fmt.Errorf("anfis: check set: %w", err)
		}
	}

	hist := &History{}
	best := sys.Clone()
	bestErr := math.Inf(1)
	degraded := 0
	prevTrain := math.Inf(1)

	forward := FitConsequents
	if cfg.ConstantConsequents {
		forward = FitConstantConsequents
	}
	rate := cfg.LearningRate
	decreases := 0 // consecutive training-error decreases
	swings := 0    // consecutive decrease/increase alternations
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		stepCfg := cfg
		stepCfg.LearningRate = rate
		backwardPass(sys, train, stepCfg)
		if err := forward(sys, train, cfg.LSMethod); err != nil {
			return nil, fmt.Errorf("anfis: forward pass at epoch %d: %w", epoch, err)
		}

		trainErr := RMSE(sys, train)
		stepRate := rate
		hist.TrainRMSE = append(hist.TrainRMSE, trainErr)
		hist.LearningRates = append(hist.LearningRates, rate)
		if cfg.AdaptiveRate && epoch > 0 {
			prev := hist.TrainRMSE[epoch-1]
			if trainErr < prev {
				decreases++
				if swings > 0 {
					swings++
				}
			} else {
				decreases = 0
				swings++
			}
			// Jang's heuristic: sustained progress → larger steps;
			// oscillation → smaller steps.
			if decreases >= 4 {
				rate *= cfg.RateGrow
				decreases = 0
			}
			if swings >= 4 {
				rate *= cfg.RateShrink
				swings = 0
			}
		}

		scoreErr := trainErr
		checkErr := 0.0
		if check != nil {
			checkErr = RMSE(sys, check)
			hist.CheckRMSE = append(hist.CheckRMSE, checkErr)
			scoreErr = checkErr
		}
		isBest := scoreErr < bestErr
		if isBest {
			bestErr = scoreErr
			best = sys.Clone()
			hist.BestEpoch = epoch
			degraded = 0
		} else {
			degraded++
		}
		if cfg.Observer != nil {
			cfg.Observer.TrainEpoch(EpochEvent{
				Epoch:        epoch,
				TrainRMSE:    trainErr,
				CheckRMSE:    checkErr,
				HasCheck:     check != nil,
				LearningRate: stepRate,
				Best:         isBest,
			})
		}
		if !isBest && check != nil && degraded >= cfg.Patience {
			hist.Reason = StopCheckDegraded
			break
		}
		if math.Abs(prevTrain-trainErr) < cfg.Tol {
			hist.Reason = StopConverged
			break
		}
		prevTrain = trainErr
	}
	if hist.Reason == "" {
		hist.Reason = StopEpochs
	}
	// Roll back to the best snapshot.
	*sys = *best
	if cfg.Observer != nil {
		cfg.Observer.TrainStop(StopEvent{
			Reason:    hist.Reason,
			Epochs:    len(hist.TrainRMSE),
			BestEpoch: hist.BestEpoch,
			BestError: bestErr,
		})
	}
	return hist, nil
}

// backwardPass performs one batch gradient-descent step on every Gaussian
// membership parameter. For the Gaussian antecedents the chain rule gives,
// per sample with error e = S(v) − y and normalized context:
//
//	∂E/∂µ_ij = e · (f_j − S)/Σw · w_j · (v_i − µ_ij)/σ_ij²
//	∂E/∂σ_ij = e · (f_j − S)/Σw · w_j · (v_i − µ_ij)²/σ_ij³
//
// The w_j·GradF/F terms are folded analytically so vanishing membership
// degrees cause no division by zero.
func backwardPass(sys *fuzzy.TSK, train *Data, cfg Config) {
	n := sys.Inputs()
	m := sys.NumRules()
	gradMu := make([][]float64, m)
	gradSigma := make([][]float64, m)
	for j := 0; j < m; j++ {
		gradMu[j] = make([]float64, n)
		gradSigma[j] = make([]float64, n)
	}
	rules := make([]fuzzy.Rule, m)
	for j := 0; j < m; j++ {
		rules[j] = sys.Rule(j)
	}

	count := 0
	for idx, v := range train.X {
		detail, err := sys.EvalDetail(v)
		if err != nil {
			continue // sample fires no rule: no gradient
		}
		count++
		e := detail.Output - train.Y[idx]
		for j := 0; j < m; j++ {
			common := e * (detail.Consequents[j] - detail.Output) / detail.WeightSum * detail.Weights[j]
			for i := 0; i < n; i++ {
				mf := rules[j].Antecedent[i]
				d := v[i] - mf.Mu
				s2 := mf.Sigma * mf.Sigma
				gradMu[j][i] += common * d / s2
				gradSigma[j][i] += common * d * d / (s2 * mf.Sigma)
			}
		}
	}
	if count == 0 {
		return
	}
	scale := cfg.LearningRate / float64(count)
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			rules[j].Antecedent[i].Mu -= scale * gradMu[j][i]
			sigma := rules[j].Antecedent[i].Sigma - scale*gradSigma[j][i]
			if sigma < cfg.MinSigma {
				sigma = cfg.MinSigma
			}
			rules[j].Antecedent[i].Sigma = sigma
		}
		// SetRule validates; the sigma floor guarantees success.
		if err := sys.SetRule(j, rules[j]); err != nil {
			panic(fmt.Sprintf("anfis: internal rule update failed: %v", err))
		}
	}
}

// RMSE returns the root-mean-square error of the system over the data.
// Samples that activate no rule contribute the worst-case error of 1 so
// degenerate systems are penalized rather than hidden.
func RMSE(sys *fuzzy.TSK, data *Data) float64 {
	if data.Len() == 0 {
		return 0
	}
	var ss float64
	for i, v := range data.X {
		out, err := sys.Eval(v)
		if err != nil {
			ss += 1
			continue
		}
		d := out - data.Y[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(data.Len()))
}
