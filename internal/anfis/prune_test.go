package anfis

import (
	"testing"

	"cqm/internal/fuzzy"
)

// deadRuleSystem builds a system where one rule sits far outside the data
// and never fires.
func deadRuleSystem(t *testing.T) (*fuzzy.TSK, *Data) {
	t.Helper()
	d := sineData(50, 80, 0)
	sys, err := fuzzy.NewTSK(1, []fuzzy.Rule{
		{Antecedent: []fuzzy.Gaussian{{Mu: 1.5, Sigma: 1.5}}, Coeffs: []float64{0, 0}},
		{Antecedent: []fuzzy.Gaussian{{Mu: 4.7, Sigma: 1.5}}, Coeffs: []float64{0, 0}},
		{Antecedent: []fuzzy.Gaussian{{Mu: 1e6, Sigma: 0.5}}, Coeffs: []float64{0, 0}}, // dead
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := FitConsequents(sys, d, 0); err != nil {
		t.Fatal(err)
	}
	return sys, d
}

func TestPruneRemovesDeadRule(t *testing.T) {
	sys, d := deadRuleSystem(t)
	res, err := Prune(sys, d, PruneConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pruned {
		t.Fatal("dead rule not pruned")
	}
	if res.Before != 3 || res.After != 2 {
		t.Errorf("rules %d -> %d, want 3 -> 2", res.Before, res.After)
	}
	if sys.NumRules() != 2 {
		t.Errorf("system has %d rules after prune", sys.NumRules())
	}
	if res.RMSEAfter > res.RMSEBefore*1.2+1e-12 {
		t.Errorf("prune hurt RMSE: %v -> %v", res.RMSEBefore, res.RMSEAfter)
	}
}

func TestPruneKeepsLiveRules(t *testing.T) {
	// A freshly built system has no dead rules: pruning is a no-op.
	d := sineData(60, 81, 0)
	sys, err := Build(d, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.NumRules()
	res, err := Prune(sys, d, PruneConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned {
		t.Errorf("healthy system pruned: %d -> %d", res.Before, res.After)
	}
	if sys.NumRules() != before {
		t.Error("no-op prune changed the system")
	}
}

func TestPruneGuardRejectsHarmfulPrune(t *testing.T) {
	// With an absurd activation threshold every rule would be pruned to
	// one; the RMSE guard must refuse when that destroys the fit.
	d := sineData(60, 82, 0)
	sys, err := Build(d, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumRules() < 2 {
		t.Skip("build produced a single rule")
	}
	before := sys.NumRules()
	res, err := Prune(sys, d, PruneConfig{MinActivationShare: 0.9, MaxRMSEGrowth: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned && sys.NumRules() < before && res.RMSEAfter > res.RMSEBefore*1.01 {
		t.Error("guard allowed a harmful prune")
	}
	if !res.Pruned && sys.NumRules() != before {
		t.Error("rejected prune still modified the system")
	}
}

func TestPruneSingleRuleNoop(t *testing.T) {
	d := sineData(20, 83, 0)
	sys, err := fuzzy.NewTSK(1, []fuzzy.Rule{
		{Antecedent: []fuzzy.Gaussian{{Mu: 3, Sigma: 2}}, Coeffs: []float64{0.1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Prune(sys, d, PruneConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned || res.After != 1 {
		t.Errorf("single-rule prune: %+v", res)
	}
}

func TestPruneValidatesData(t *testing.T) {
	sys, _ := deadRuleSystem(t)
	if _, err := Prune(sys, &Data{}, PruneConfig{}); err == nil {
		t.Error("empty data accepted")
	}
}
