package anfis

import (
	"math"
	"testing"

	"cqm/internal/cluster"
)

// almostEqual compares floats with a tolerance suited to the unit-scale
// learning rates these tests assert on.
func almostEqual(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

func TestAdaptiveRateChangesStepSize(t *testing.T) {
	train := sineData(60, 70, 0.02)
	sys, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Train(sys, train, nil, Config{
		Epochs:       60,
		LearningRate: 0.05,
		AdaptiveRate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.LearningRates) != len(hist.TrainRMSE) {
		t.Fatalf("rate history %d entries vs %d errors",
			len(hist.LearningRates), len(hist.TrainRMSE))
	}
	changed := false
	for i := 1; i < len(hist.LearningRates); i++ {
		if hist.LearningRates[i] != hist.LearningRates[0] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("adaptive rate never adapted over 60 epochs")
	}
}

func TestAdaptiveRateDoesNotHurtFit(t *testing.T) {
	train := sineData(60, 71, 0.02)
	base, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	fixed := base.Clone()
	adaptive := base.Clone()
	if _, err := Train(fixed, train, nil, Config{Epochs: 40, LearningRate: 0.05}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(adaptive, train, nil, Config{Epochs: 40, LearningRate: 0.05, AdaptiveRate: true}); err != nil {
		t.Fatal(err)
	}
	fixedErr := RMSE(fixed, train)
	adaptiveErr := RMSE(adaptive, train)
	if adaptiveErr > fixedErr*1.5+1e-9 {
		t.Errorf("adaptive rate much worse: %v vs fixed %v", adaptiveErr, fixedErr)
	}
}

func TestFixedRateHistoryIsConstant(t *testing.T) {
	train := sineData(30, 72, 0.02)
	sys, err := Build(train, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Train(sys, train, nil, Config{Epochs: 10, LearningRate: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.LearningRates {
		if !almostEqual(r, 0.03) {
			t.Fatalf("fixed-rate training recorded rate %v", r)
		}
	}
}
