package anfis

import (
	"math/rand"
	"strings"
	"testing"

	"cqm/internal/cluster"
	"cqm/internal/fuzzy"
	"cqm/internal/parallel"
)

// sameSystem asserts exact parameter equality of two TSK systems. The ==
// on floats is intentional: the parallel layer's contract is bit-identical
// training, so any ULP of drift is a bug.
func sameSystem(t *testing.T, label string, want, got *fuzzy.TSK) {
	t.Helper()
	if got.NumRules() != want.NumRules() {
		t.Fatalf("%s: %d rules, want %d", label, got.NumRules(), want.NumRules())
	}
	for j := 0; j < want.NumRules(); j++ {
		wr, gr := want.Rule(j), got.Rule(j)
		for i := range wr.Antecedent {
			//lint:ignore floatcmp the parallel contract is bit-identical training, so exact equality is the assertion
			if gr.Antecedent[i].Mu != wr.Antecedent[i].Mu || gr.Antecedent[i].Sigma != wr.Antecedent[i].Sigma {
				t.Fatalf("%s: rule %d antecedent %d: (%v,%v) != (%v,%v)", label, j, i,
					gr.Antecedent[i].Mu, gr.Antecedent[i].Sigma, wr.Antecedent[i].Mu, wr.Antecedent[i].Sigma)
			}
		}
		for k := range wr.Coeffs {
			//lint:ignore floatcmp the parallel contract is bit-identical training, so exact equality is the assertion
			if gr.Coeffs[k] != wr.Coeffs[k] {
				t.Fatalf("%s: rule %d coeff %d: %v != %v", label, j, k, gr.Coeffs[k], wr.Coeffs[k])
			}
		}
	}
}

// TestTrainSerialParallelEquivalence is the training property test: the
// whole hybrid-learning trajectory — every epoch's RMSE and the final
// parameters — must agree bit-for-bit between serial and parallel runs
// for every worker count 2..8.
func TestTrainSerialParallelEquivalence(t *testing.T) {
	train := sineData(300, 5, 0.05)
	check := sineData(90, 6, 0.05)
	base, err := Build(train, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Epochs: 8, AdaptiveRate: true, Workers: 1}
	refSys := base.Clone()
	refHist, err := Train(refSys, train, check, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers++ {
		cfg.Workers = workers
		sys := base.Clone()
		hist, err := Train(sys, train, check, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(hist.TrainRMSE) != len(refHist.TrainRMSE) {
			t.Fatalf("workers=%d: %d epochs, want %d", workers, len(hist.TrainRMSE), len(refHist.TrainRMSE))
		}
		for e := range refHist.TrainRMSE {
			//lint:ignore floatcmp the parallel contract is bit-identical training, so exact equality is the assertion
			if hist.TrainRMSE[e] != refHist.TrainRMSE[e] || hist.CheckRMSE[e] != refHist.CheckRMSE[e] {
				t.Fatalf("workers=%d epoch %d: (%v,%v) != (%v,%v)", workers, e,
					hist.TrainRMSE[e], hist.CheckRMSE[e], refHist.TrainRMSE[e], refHist.CheckRMSE[e])
			}
		}
		if hist.BestEpoch != refHist.BestEpoch || hist.Reason != refHist.Reason {
			t.Fatalf("workers=%d: best %d (%s), want %d (%s)", workers,
				hist.BestEpoch, hist.Reason, refHist.BestEpoch, refHist.Reason)
		}
		sameSystem(t, "trained", refSys, sys)
	}
}

// TestRMSEParallelEquivalence checks the chunked error reduction alone,
// on data large enough to clear the serial cutoff.
func TestRMSEParallelEquivalence(t *testing.T) {
	d := sineData(1200, 7, 0.1)
	sys, err := Build(d, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	want := RMSE(sys, d)
	for workers := 0; workers <= 8; workers++ {
		//lint:ignore floatcmp the parallel contract is bit-identical output, so exact equality is the assertion
		if got := RMSEParallel(sys, d, workers); got != want {
			t.Fatalf("workers=%d: RMSE %v != serial %v", workers, got, want)
		}
	}
}

// TestTrainWorkersValidation rejects a negative worker count up front.
func TestTrainWorkersValidation(t *testing.T) {
	train := sineData(40, 8, 0)
	sys, err := Build(train, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Train(sys, train, nil, Config{Epochs: 1, Workers: -2})
	if err == nil || !strings.Contains(err.Error(), "invalid config") {
		t.Fatalf("Workers=-2: err = %v, want invalid config", err)
	}
}

// TestBackwardPassPoolEquivalence exercises the gradient reduction in
// isolation: one step at several worker counts must move every parameter
// identically.
func TestBackwardPassPoolEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := &Data{}
	for i := 0; i < 500; i++ {
		x1, x2 := rng.Float64()*4, rng.Float64()*4
		d.X = append(d.X, []float64{x1, x2})
		d.Y = append(d.Y, x1*x2/4)
	}
	base, err := Build(d, BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LearningRate: 0.05}.withDefaults()
	ref := base.Clone()
	backwardPass(ref, d, cfg, parallel.New(1))
	for workers := 2; workers <= 8; workers++ {
		sys := base.Clone()
		backwardPass(sys, d, cfg, parallel.New(workers))
		sameSystem(t, "backward", ref, sys)
	}
}
