// Package trace records and replays accelerometer streams. The AwareOffice
// methodology depends on recorded sessions — the paper's training, check
// and test sets were captured from the live pen — so the library supports
// persisting a labelled recording and replaying it bit-for-bit later:
// train on Monday's session, evaluate tomorrow's model change on exactly
// the same data.
//
// The format is a compact binary stream:
//
//	magic   4 bytes  "CQTR"
//	version 1 byte   (1)
//	count   4 bytes  big-endian reading count
//	flags   1 byte   reserved (0)
//	readings, each 33 bytes:
//	    T     float64 (IEEE 754 bits, big endian)
//	    X,Y,Z float64
//	    truth 1 byte  (sensor.Context identifier)
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cqm/internal/sensor"
)

// Format constants.
const (
	magic       = "CQTR"
	version     = 1
	headerLen   = 10
	readingLen  = 33
	maxReadings = 1 << 26 // 64 Mi readings ≈ a week at 100 Hz; sanity cap

	// initialAlloc bounds the slice capacity allocated up front from the
	// header's count field — about 64 KiB of readings. The count is
	// attacker-controlled (a corrupt or hostile 4-byte field), so a larger
	// promise must be earned by actually delivering bytes; the slice grows
	// by appending past this point.
	initialAlloc = 64 * 1024 / readingLen
)

// Codec errors.
var (
	// ErrMagic reports a stream that is not a trace.
	ErrMagic = errors.New("trace: bad magic")
	// ErrVersion reports an unsupported trace version.
	ErrVersion = errors.New("trace: unsupported version")
	// ErrTruncated reports a stream shorter than its header promises.
	ErrTruncated = errors.New("trace: truncated stream")
	// ErrTooLarge reports an implausibly large reading count.
	ErrTooLarge = errors.New("trace: reading count exceeds sanity cap")
	// ErrEmpty reports writing an empty recording.
	ErrEmpty = errors.New("trace: empty recording")
)

// Write serializes the readings to w.
func Write(w io.Writer, readings []sensor.Reading) error {
	if len(readings) == 0 {
		return ErrEmpty
	}
	if len(readings) > maxReadings {
		return fmt.Errorf("%w: %d readings", ErrTooLarge, len(readings))
	}
	header := make([]byte, headerLen)
	copy(header, magic)
	header[4] = version
	binary.BigEndian.PutUint32(header[5:9], uint32(len(readings)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	buf := make([]byte, readingLen)
	for i, r := range readings {
		binary.BigEndian.PutUint64(buf[0:8], math.Float64bits(r.T))
		binary.BigEndian.PutUint64(buf[8:16], math.Float64bits(r.Accel.X))
		binary.BigEndian.PutUint64(buf[16:24], math.Float64bits(r.Accel.Y))
		binary.BigEndian.PutUint64(buf[24:32], math.Float64bits(r.Accel.Z))
		buf[32] = byte(r.Truth.ID())
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("trace: writing reading %d: %w", i, err)
		}
	}
	return nil
}

// Read parses a trace stream.
func Read(r io.Reader) ([]sensor.Reading, error) {
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if string(header[:4]) != magic {
		return nil, fmt.Errorf("%w: %q", ErrMagic, header[:4])
	}
	if header[4] != version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, header[4])
	}
	count := binary.BigEndian.Uint32(header[5:9])
	if count > maxReadings {
		return nil, fmt.Errorf("%w: %d", ErrTooLarge, count)
	}
	out := make([]sensor.Reading, 0, min(count, initialAlloc))
	buf := make([]byte, readingLen)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: reading %d: %v", ErrTruncated, i, err)
		}
		out = append(out, sensor.Reading{
			T: math.Float64frombits(binary.BigEndian.Uint64(buf[0:8])),
			Accel: sensor.Accel{
				X: math.Float64frombits(binary.BigEndian.Uint64(buf[8:16])),
				Y: math.Float64frombits(binary.BigEndian.Uint64(buf[16:24])),
				Z: math.Float64frombits(binary.BigEndian.Uint64(buf[24:32])),
			},
			Truth: sensor.ContextByID(int(buf[32])),
		})
	}
	return out, nil
}

// Clip returns the readings within [from, to) seconds, preserving order.
func Clip(readings []sensor.Reading, from, to float64) []sensor.Reading {
	var out []sensor.Reading
	for _, r := range readings {
		if r.T >= from && r.T < to {
			out = append(out, r)
		}
	}
	return out
}

// Relabel returns a copy of the readings with every ground truth replaced —
// useful when annotating a raw capture after the fact.
func Relabel(readings []sensor.Reading, truth sensor.Context) []sensor.Reading {
	out := make([]sensor.Reading, len(readings))
	copy(out, readings)
	for i := range out {
		out[i].Truth = truth
	}
	return out
}

// Concat joins recordings, re-stamping times so each part starts after
// the previous one plus gap seconds.
func Concat(gap float64, parts ...[]sensor.Reading) []sensor.Reading {
	var out []sensor.Reading
	offset := 0.0
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		base := part[0].T
		for _, r := range part {
			r.T = r.T - base + offset
			out = append(out, r)
		}
		offset = out[len(out)-1].T + gap
	}
	return out
}
