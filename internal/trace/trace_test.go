package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cqm/internal/sensor"
)

func sampleRecording(t testing.TB, seed int64) []sensor.Reading {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rng)
	if err != nil {
		t.Fatal(err)
	}
	return readings
}

func TestWriteReadRoundTrip(t *testing.T) {
	readings := sampleRecording(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, readings); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(readings) {
		t.Fatalf("round trip lost readings: %d vs %d", len(back), len(readings))
	}
	for i := range readings {
		if back[i] != readings[i] {
			t.Fatalf("reading %d differs: %+v vs %+v", i, back[i], readings[i])
		}
	}
}

func TestWriteEmpty(t *testing.T) {
	if err := Write(&bytes.Buffer{}, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestReadErrors(t *testing.T) {
	readings := sampleRecording(t, 2)[:10]
	var buf bytes.Buffer
	if err := Write(&buf, readings); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrMagic) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = 99
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(good[:5])); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(good[:len(good)-7])); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("absurd count", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[5], bad[6], bad[7], bad[8] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrTooLarge) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestClip(t *testing.T) {
	readings := []sensor.Reading{
		{T: 0}, {T: 1}, {T: 2}, {T: 3}, {T: 4},
	}
	got := Clip(readings, 1, 3)
	if len(got) != 2 || got[0].T != 1 || got[1].T != 2 {
		t.Errorf("Clip = %+v", got)
	}
	if Clip(readings, 10, 20) != nil {
		t.Error("out-of-range Clip should be empty")
	}
}

func TestRelabel(t *testing.T) {
	readings := []sensor.Reading{
		{T: 0, Truth: sensor.ContextLying},
		{T: 1, Truth: sensor.ContextWriting},
	}
	got := Relabel(readings, sensor.ContextPlaying)
	for _, r := range got {
		if r.Truth != sensor.ContextPlaying {
			t.Fatalf("Relabel missed: %+v", r)
		}
	}
	if readings[0].Truth != sensor.ContextLying {
		t.Error("Relabel mutated input")
	}
}

func TestConcat(t *testing.T) {
	a := []sensor.Reading{{T: 5}, {T: 6}}
	b := []sensor.Reading{{T: 100}, {T: 101}}
	got := Concat(2, a, b, nil)
	want := []float64{0, 1, 3, 4}
	if len(got) != 4 {
		t.Fatalf("Concat length %d", len(got))
	}
	for i, w := range want {
		if math.Abs(got[i].T-w) > 1e-12 {
			t.Errorf("T[%d] = %v, want %v", i, got[i].T, w)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		readings := make([]sensor.Reading, n)
		contexts := sensor.AllContexts()
		for i := range readings {
			readings[i] = sensor.Reading{
				T: r.Float64() * 100,
				Accel: sensor.Accel{
					X: r.NormFloat64(),
					Y: r.NormFloat64(),
					Z: r.NormFloat64(),
				},
				Truth: contexts[r.Intn(len(contexts))],
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, readings); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil || len(back) != n {
			return false
		}
		for i := range readings {
			if back[i] != readings[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrainOnReplayedTrace(t *testing.T) {
	// The methodology the package exists for: persist a session, replay
	// it, and get the identical dataset back.
	readings := sampleRecording(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, readings); err != nil {
		t.Fatal(err)
	}
	replayed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(readings) {
		t.Fatal("replay length mismatch")
	}
	for i := range readings {
		if replayed[i] != readings[i] {
			t.Fatal("replayed trace differs from live capture")
		}
	}
}

func TestReadHostileCountAllocation(t *testing.T) {
	// A corrupt count field must not translate into a giant up-front
	// allocation: the header below promises 60 Mi readings (~2 GiB of
	// slice) but delivers zero bytes. Read must fail with ErrTruncated
	// while allocating no more than the small initial capacity.
	header := make([]byte, headerLen)
	copy(header, magic)
	header[4] = version
	binary.BigEndian.PutUint32(header[5:9], maxReadings-1)

	allocs := testing.AllocsPerRun(1, func() {
		if _, err := Read(bytes.NewReader(header)); !errors.Is(err, ErrTruncated) {
			t.Errorf("Read = %v, want ErrTruncated", err)
		}
	})
	// The exact count is incidental; the point is it stays O(1) — a
	// ~2 GiB slice would also be caught by the test blowing the heap.
	if allocs > 16 {
		t.Errorf("Read of hostile header made %.0f allocations", allocs)
	}
}

func TestReadCountBeyondInitialAlloc(t *testing.T) {
	// Streams honestly larger than the initial capacity still round-trip:
	// the slice grows by appending past initialAlloc.
	readings := sampleRecording(t, 9)
	for len(readings) <= initialAlloc {
		readings = append(readings, readings...)
	}
	readings = readings[:initialAlloc+17]
	for i := range readings {
		readings[i].T = float64(i) * 0.01
	}
	var buf bytes.Buffer
	if err := Write(&buf, readings); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(readings) {
		t.Fatalf("got %d readings, want %d", len(back), len(readings))
	}
	for i := range readings {
		if back[i] != readings[i] {
			t.Fatalf("reading %d differs after round trip", i)
		}
	}
}
