package quality

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"cqm/internal/core"
	"cqm/internal/stat"
)

func TestReferenceRoundTrip(t *testing.T) {
	ref := testRef()
	ref.BaselineD = 0.12
	path := filepath.Join(t.TempDir(), "quality_ref.json")
	if err := SaveReference(path, ref, time.Unix(1700000000, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReference(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *ref {
		t.Errorf("round trip changed the reference:\n got %+v\nwant %+v", got, ref)
	}
}

func TestReferenceValidate(t *testing.T) {
	cases := []struct {
		name string
		ref  *Reference
	}{
		{"nil", nil},
		{"zero sigma", &Reference{Right: stat.Gaussian{Sigma: 0}, Wrong: stat.Gaussian{Sigma: 1}}},
		{"bad weight", &Reference{Right: stat.Gaussian{Sigma: 1}, Wrong: stat.Gaussian{Sigma: 1}, WeightRight: 1.5}},
		{"bad baseline", &Reference{Right: stat.Gaussian{Sigma: 1}, Wrong: stat.Gaussian{Sigma: 1}, BaselineD: 1}},
	}
	for _, c := range cases {
		if err := c.ref.Validate(); !errors.Is(err, ErrBadReference) {
			t.Errorf("%s: err = %v, want ErrBadReference", c.name, err)
		}
	}
	if err := testRef().Validate(); err != nil {
		t.Errorf("valid reference rejected: %v", err)
	}
}

func TestSaveReferenceRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ref.json")
	err := SaveReference(path, &Reference{}, time.Unix(0, 0))
	if !errors.Is(err, ErrBadReference) {
		t.Errorf("err = %v, want ErrBadReference", err)
	}
}

func TestLoadReferenceMissingFile(t *testing.T) {
	if _, err := LoadReference(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing reference succeeded")
	}
}

func TestNewReferenceCalibratesBaseline(t *testing.T) {
	a := &core.Analysis{
		Right:     stat.Gaussian{Mu: 0.9, Sigma: 0.05},
		Wrong:     stat.Gaussian{Mu: 0.2, Sigma: 0.1},
		Threshold: 0.6,
		QRight:    []float64{0.85, 0.88, 0.9, 0.92, 0.95, 0.99, 0.99, 0.99},
		QWrong:    []float64{0.1, 0.3},
	}
	ref := NewReference(a)
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	if want := 0.8; ref.WeightRight != want { //lint:ignore floatcmp exact ratio of small ints
		t.Errorf("weight = %v, want %v", ref.WeightRight, want)
	}
	if ref.BaselineD <= 0 {
		t.Errorf("baseline D = %v, want > 0 (the fit is not exact)", ref.BaselineD)
	}
	// The training sample itself must not be declared drifting.
	pool := append(append([]float64(nil), a.QRight...), a.QWrong...)
	r := KSAgainst(ref, pool, KSConfig{MinCount: 8})
	if r.Drifting {
		t.Errorf("training pool flagged as drifting against its own calibrated reference: %+v", r)
	}
}
