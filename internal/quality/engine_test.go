package quality

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// streamFor synthesizes a deterministic observation stream: healthy q
// around 0.9 with isolated misclassifications, epsilons, and degraded
// inputs.
func streamFor(source string, n int, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		o := Observation{Source: source, At: float64(i), HasQ: true, Q: 0.85 + 0.1*rng.Float64()}
		switch {
		case i%17 == 16:
			o.HasQ, o.Q = false, 0
		case i%11 == 10:
			o.Q = 0.1 * rng.Float64()
		}
		o.Degraded = i%13 == 12
		out = append(out, o)
	}
	return out
}

// TestWindowStatsMatchNaiveRecompute is the eviction property test: the
// O(1) ring aggregates must equal a from-scratch recomputation over the
// window at every step.
func TestWindowStatsMatchNaiveRecompute(t *testing.T) {
	const window = 16
	e := NewEngine(Config{Window: window, Threshold: 0.6})
	var all []Observation
	for i, o := range streamFor("pen", 200, 3) {
		e.Observe(o)
		all = append(all, o)

		lo := 0
		if len(all) > window {
			lo = len(all) - window
		}
		var sum, sum2 float64
		var withQ, accept, eps, degraded int
		for _, w := range all[lo:] {
			if w.HasQ {
				sum += w.Q
				sum2 += w.Q * w.Q
				withQ++
				if w.Q > 0.6 {
					accept++
				}
			} else {
				eps++
			}
			if w.Degraded {
				degraded++
			}
		}
		s := e.sources["pen"]
		if s.wWithQ != withQ || s.wEpsilon != eps || s.wAccept != accept || s.wDegraded != degraded {
			t.Fatalf("step %d: counts (q=%d ε=%d acc=%d deg=%d), want (q=%d ε=%d acc=%d deg=%d)",
				i, s.wWithQ, s.wEpsilon, s.wAccept, s.wDegraded, withQ, eps, accept, degraded)
		}
		if math.Abs(s.wSum-sum) > 1e-9 || math.Abs(s.wSum2-sum2) > 1e-9 {
			t.Fatalf("step %d: sums (%v, %v), want (%v, %v)", i, s.wSum, s.wSum2, sum, sum2)
		}
	}
}

func TestNilEngineIsNoOp(t *testing.T) {
	var e *Engine
	e.Observe(Observation{Source: "x", HasQ: true, Q: 0.5})
	if got := e.Sources(); got != nil {
		t.Errorf("Sources on nil engine = %v", got)
	}
	rep := e.Report()
	if rep == nil || rep.Health != HealthOptimal {
		t.Errorf("nil engine report = %+v", rep)
	}
}

func TestReportSourcesSortedAndFinite(t *testing.T) {
	e := NewEngine(Config{Threshold: 0.6, Reference: testRef()})
	for _, src := range []string{"zeta", "alpha", "mid"} {
		for _, o := range streamFor(src, 80, 11) {
			o.Source = src
			e.Observe(o)
		}
	}
	rep := e.Report()
	if len(rep.Sources) != 3 {
		t.Fatalf("%d sources, want 3", len(rep.Sources))
	}
	for i := 1; i < len(rep.Sources); i++ {
		if rep.Sources[i-1].Name >= rep.Sources[i].Name {
			t.Errorf("sources not sorted: %q before %q", rep.Sources[i-1].Name, rep.Sources[i].Name)
		}
	}
	for i := 1; i < len(rep.Alerts); i++ {
		a, b := rep.Alerts[i-1], rep.Alerts[i]
		if a.Source > b.Source || (a.Source == b.Source && a.Kind > b.Kind) {
			t.Errorf("alerts not sorted: %v before %v", a, b)
		}
	}
	if rep.Observations != 240 {
		t.Errorf("observations = %d, want 240", rep.Observations)
	}
	if rep.At != 79 {
		t.Errorf("report at = %v, want latest virtual time 79", rep.At)
	}
	assertFinite(t, reflect.ValueOf(*rep), "report")
}

// assertFinite walks a value recursively and fails on any NaN or ±Inf.
func assertFinite(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("%s = %v", path, f)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			assertFinite(t, v.Field(i), path+"."+v.Type().Field(i).Name)
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			assertFinite(t, v.Index(i), path)
		}
	case reflect.Ptr:
		if !v.IsNil() {
			assertFinite(t, v.Elem(), path)
		}
	}
}

func TestEngineDerivesAcceptanceFromThreshold(t *testing.T) {
	e := NewEngine(Config{Threshold: 0.5})
	e.Observe(Observation{Source: "s", At: 1, HasQ: true, Q: 0.9})
	e.Observe(Observation{Source: "s", At: 2, HasQ: true, Q: 0.2})
	e.Observe(Observation{Source: "s", At: 3})
	rep := e.Report()
	src := rep.Sources[0]
	if src.Accepted != 1 || src.Discarded != 1 || src.Epsilons != 1 {
		t.Errorf("accepted/discarded/epsilons = %d/%d/%d, want 1/1/1",
			src.Accepted, src.Discarded, src.Epsilons)
	}
}

func TestEngineAlertsOnCollapse(t *testing.T) {
	e := NewEngine(Config{Threshold: 0.6, Reference: testRef()})
	for i := 0; i < 40; i++ {
		e.Observe(Observation{Source: "pen", At: float64(i), HasQ: true, Q: 0.9})
	}
	for i := 40; i < 104; i++ {
		e.Observe(Observation{Source: "pen", At: float64(i), HasQ: true, Q: 0.05})
	}
	rep := e.Report()
	src := rep.Sources[0]
	if src.PageHinkley.Fired == 0 {
		t.Error("Page–Hinkley did not fire on a sustained collapse")
	}
	if len(src.PageHinkley.Epochs) == 0 {
		t.Error("no drift epochs recorded")
	} else if ep := src.PageHinkley.Epochs[0]; ep.At < 40 {
		t.Errorf("first epoch at t=%v, before the collapse began", ep.At)
	}
	if !src.KS.Drifting {
		t.Error("KS did not flag the collapsed window")
	}
	kinds := map[string]Severity{}
	for _, a := range rep.Alerts {
		kinds[a.Kind] = a.Severity
	}
	if kinds["drift-ph"] != SeverityError {
		t.Errorf("drift-ph alert = %q, want error", kinds["drift-ph"])
	}
	if kinds["drift-ks"] != SeverityError {
		t.Errorf("drift-ks alert = %q, want error", kinds["drift-ks"])
	}
	if kinds["low-accept"] != SeverityWarning {
		t.Errorf("low-accept alert = %q, want warning", kinds["low-accept"])
	}
	if rep.Health == HealthOptimal || rep.HealthScore >= 0.75 {
		t.Errorf("health %s (%v) despite error alerts", rep.Health, rep.HealthScore)
	}
}

func TestEngineReplaysBitIdentically(t *testing.T) {
	run := func() *Report {
		e := NewEngine(Config{Threshold: 0.6, Reference: testRef()})
		for _, src := range []string{"a", "b"} {
			for _, o := range streamFor(src, 150, 9) {
				o.Source = src
				e.Observe(o)
			}
		}
		return e.Report()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("two replays differ:\n%+v\n%+v", a, b)
	}
}

func TestTrendsClassification(t *testing.T) {
	cases := []struct {
		vel, std  float64
		direction Direction
		vol       Volatility
	}{
		{0, 0.01, DirectionStable, VolatilityLow},
		{-0.01, 0.1, DirectionDeclining, VolatilityMedium},
		{0.01, 0.2, DirectionImproving, VolatilityHigh},
	}
	for _, c := range cases {
		tr := trendsOf(c.vel, c.std)
		if tr.Direction != c.direction || tr.Volatility != c.vol {
			t.Errorf("trendsOf(%v, %v) = %+v, want %s/%s", c.vel, c.std, tr, c.direction, c.vol)
		}
	}
}
