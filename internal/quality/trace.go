package quality

import (
	"sync"

	"cqm/internal/obs"
)

// Stage names one step of the sensing pipeline in a trace.
type Stage string

// Pipeline stages, in causal order.
const (
	// StageSample is the pen capturing a raw cue sample.
	StageSample Stage = "sample"
	// StageScore is the CQM measure scoring a feature window.
	StageScore Stage = "score"
	// StagePublish is the pen handing the event to the bus.
	StagePublish Stage = "publish"
	// StageRetransmit is one bus retry after a failed attempt.
	StageRetransmit Stage = "retransmit"
	// StageDeliver is the bus delivering the frame to a subscriber.
	StageDeliver Stage = "deliver"
	// StageDrop is the bus giving up on a frame (loss or corruption).
	StageDrop Stage = "drop"
	// StageFuse is the camera folding the event into its fusion state.
	StageFuse Stage = "fuse"
	// StageDecide is the camera's accept/discard/fallback decision.
	StageDecide Stage = "decide"
)

// TraceEvent is one recorded stage of a trace.
type TraceEvent struct {
	// Stage is the pipeline step.
	Stage Stage `json:"stage"`
	// At is the stage's virtual time in seconds.
	At float64 `json:"at"`
	// Detail carries stage-specific context (subscriber name, drop
	// reason, decision).
	Detail string `json:"detail,omitempty"`
}

// Trace is the recorded life of one sampled observation through the
// pipeline.
type Trace struct {
	// Seq is the observation's sequence number, reduced modulo 65536 to
	// match the 16-bit wire encoding.
	Seq int `json:"seq"`
	// Source is the producing sensor.
	Source string `json:"source"`
	// StartAt is the virtual time the trace began.
	StartAt float64 `json:"start_at"`
	// Events are the recorded stages, in arrival order.
	Events []TraceEvent `json:"events"`
}

// seqMask reduces sequence numbers to the 16-bit wire space; bus frames
// encode Seq as uint16, so trace correlation must survive the wrap.
const seqMask = 0xFFFF

// DefaultTraceCapacity bounds the in-memory trace ring when NewTracer is
// given a non-positive capacity.
const DefaultTraceCapacity = 64

// Tracer samples observations and records their pipeline stages into a
// bounded ring, observing per-stage virtual-time latency into
// cqm_trace_stage_virtual_seconds. It is safe for concurrent use, and a
// nil *Tracer is a no-op on every method, so pipeline code can call it
// unconditionally.
type Tracer struct {
	mu      sync.Mutex
	every   int
	ring    []Trace
	next, n int
	pos     map[int]int // seq (mod 65536) → ring position of live trace
	begun   int64

	reg      *obs.Registry
	sampledC *obs.Counter
	stageH   map[Stage]*obs.Histogram
}

// NewTracer returns a tracer that begins a trace for every Nth
// observation offered (every <= 0 disables sampling entirely and returns
// nil) into a ring of the given capacity (non-positive uses
// DefaultTraceCapacity). reg, when non-nil, receives the cqm_trace_*
// series.
func NewTracer(every, capacity int, reg *obs.Registry) *Tracer {
	if every <= 0 {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{
		every:  every,
		ring:   make([]Trace, capacity),
		pos:    make(map[int]int),
		reg:    reg,
		stageH: make(map[Stage]*obs.Histogram),
	}
	if reg != nil {
		reg.Help(MetricTracesSampled, "Pipeline traces started by the sampler.")
		reg.Help(MetricTraceStageSeconds, "Per-stage pipeline latency in virtual seconds, by stage.")
		t.sampledC = reg.Counter(MetricTracesSampled)
	}
	return t
}

// Begin offers one observation to the sampler and reports whether a trace
// was started for it. The first offer and every Nth after it are traced.
func (t *Tracer) Begin(source string, seq int, at float64) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begun++
	if (t.begun-1)%int64(t.every) != 0 {
		return false
	}
	t.sampledC.Inc()
	key := seq & seqMask
	// Claim a ring slot, unlinking whatever trace previously lived there.
	if t.n == len(t.ring) {
		old := t.ring[t.next]
		if p, ok := t.pos[old.Seq]; ok && p == t.next {
			delete(t.pos, old.Seq)
		}
	} else {
		t.n++
	}
	t.ring[t.next] = Trace{Seq: key, Source: source, StartAt: at}
	t.pos[key] = t.next
	t.next = (t.next + 1) % len(t.ring)
	return true
}

// Record appends a stage to the live trace for seq, if one is being
// sampled, and observes the virtual-time delta from the previous stage
// into the per-stage latency histogram. Unsampled sequences are ignored,
// so pipeline code records unconditionally.
func (t *Tracer) Record(seq int, stage Stage, at float64, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.pos[seq&seqMask]
	if !ok {
		return
	}
	tr := &t.ring[p]
	last := tr.StartAt
	if len(tr.Events) > 0 {
		last = tr.Events[len(tr.Events)-1].At
	}
	delta := at - last
	if delta < 0 {
		delta = 0
	}
	t.hist(stage).Observe(delta)
	tr.Events = append(tr.Events, TraceEvent{Stage: stage, At: at, Detail: detail})
}

// hist lazily resolves the per-stage latency histogram; callers hold t.mu.
func (t *Tracer) hist(stage Stage) *obs.Histogram {
	if t.reg == nil {
		return nil
	}
	h, ok := t.stageH[stage]
	if !ok {
		h = t.reg.Histogram(MetricTraceStageSeconds, traceBuckets(), "stage", string(stage))
		t.stageH[stage] = h
	}
	return h
}

// traceBuckets are the latency bounds for pipeline stages: 0.5 ms up to
// ~16 virtual seconds, exponentially spaced.
func traceBuckets() []float64 {
	return obs.ExponentialBuckets(0.0005, 2, 16)
}

// Snapshot returns copies of the retained traces, oldest first.
func (t *Tracer) Snapshot() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		tr := t.ring[(start+i)%len(t.ring)]
		tr.Events = append([]TraceEvent(nil), tr.Events...)
		out = append(out, tr)
	}
	return out
}

// Begun returns how many observations have been offered to the sampler.
func (t *Tracer) Begun() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.begun
}
