package quality

import (
	"testing"

	"cqm/internal/obs"
)

func TestTracerSamplesEveryNth(t *testing.T) {
	tr := NewTracer(3, 8, nil)
	var sampled []int
	for seq := 0; seq < 9; seq++ {
		if tr.Begin("pen", seq, float64(seq)) {
			sampled = append(sampled, seq)
		}
	}
	want := []int{0, 3, 6}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}
	if tr.Begun() != 9 {
		t.Errorf("Begun() = %d, want 9", tr.Begun())
	}
}

func TestTracerRecordsStages(t *testing.T) {
	tr := NewTracer(1, 8, nil)
	if !tr.Begin("pen", 7, 1.0) {
		t.Fatal("every=1 must sample every event")
	}
	tr.Record(7, StageScore, 1.1, "q=0.9")
	tr.Record(7, StagePublish, 1.2, "")
	tr.Record(7, StageDeliver, 1.35, "camera")
	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Seq != 7 || got.Source != "pen" || got.StartAt != 1.0 {
		t.Errorf("trace header = %+v", got)
	}
	if len(got.Events) != 3 {
		t.Fatalf("%d events, want 3", len(got.Events))
	}
	if got.Events[2].Stage != StageDeliver || got.Events[2].Detail != "camera" {
		t.Errorf("last event = %+v", got.Events[2])
	}
}

func TestTracerIgnoresUnsampledSeq(t *testing.T) {
	tr := NewTracer(2, 8, nil)
	tr.Begin("pen", 0, 0) // sampled
	tr.Begin("pen", 1, 1) // not sampled
	tr.Record(1, StageScore, 1.1, "")
	for _, trace := range tr.Snapshot() {
		if trace.Seq == 1 {
			t.Error("unsampled sequence appeared in the snapshot")
		}
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(1, 2, nil)
	for seq := 0; seq < 5; seq++ {
		tr.Begin("pen", seq, float64(seq))
	}
	traces := tr.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("%d traces retained, want 2", len(traces))
	}
	if traces[0].Seq != 3 || traces[1].Seq != 4 {
		t.Errorf("retained seqs %d, %d; want oldest-first 3, 4", traces[0].Seq, traces[1].Seq)
	}
}

func TestTracerSeqWraparound(t *testing.T) {
	tr := NewTracer(1, 4, nil)
	// Wire sequence numbers are 16-bit; an evicted slot's key must not
	// swallow records meant for the trace that reused it.
	tr.Begin("pen", 100, 0)
	tr.Record(100, StageScore, 0.5, "first")
	// 65636 & 0xFFFF == 100: same masked key, later trace.
	tr.Begin("pen", 100, 10)
	tr.Record(100, StageScore, 10.5, "second")
	traces := tr.Snapshot()
	var last Trace
	for _, c := range traces {
		last = c
	}
	if last.StartAt != 10 || len(last.Events) != 1 || last.Events[0].Detail != "second" {
		t.Errorf("wrapped trace = %+v", last)
	}
}

func TestTracerNilAndDisabled(t *testing.T) {
	if tr := NewTracer(0, 8, nil); tr != nil {
		t.Error("every=0 must disable tracing")
	}
	var tr *Tracer
	if tr.Begin("pen", 1, 0) {
		t.Error("nil tracer sampled an event")
	}
	tr.Record(1, StageScore, 0, "")
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil tracer snapshot = %v", got)
	}
	if tr.Begun() != 0 {
		t.Errorf("nil tracer Begun() = %d", tr.Begun())
	}
}

func TestTracerObservesStageLatencies(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracer(1, 8, reg)
	tr.Begin("pen", 1, 0)
	tr.Record(1, StageScore, 0.1, "")
	tr.Record(1, StagePublish, 0.25, "")
	var total int64
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == MetricTraceStageSeconds {
			total += h.Count
		}
	}
	if total != 2 {
		t.Errorf("%s observations = %d, want 2 (one per recorded stage)", MetricTraceStageSeconds, total)
	}
}
