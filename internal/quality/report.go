package quality

import "math"

// Direction labels the quality trend over the window.
type Direction string

// Trend directions.
const (
	// DirectionImproving means windowed quality is rising.
	DirectionImproving Direction = "improving"
	// DirectionDeclining means windowed quality is falling.
	DirectionDeclining Direction = "declining"
	// DirectionStable means no material slope either way.
	DirectionStable Direction = "stable"
)

// Volatility buckets the windowed quality standard deviation.
type Volatility string

// Volatility grades.
const (
	// VolatilityLow is a windowed standard deviation below 0.05.
	VolatilityLow Volatility = "low"
	// VolatilityMedium is a windowed standard deviation in [0.05, 0.15).
	VolatilityMedium Volatility = "medium"
	// VolatilityHigh is a windowed standard deviation of 0.15 or more.
	VolatilityHigh Volatility = "high"
)

// Severity ranks an alert.
type Severity string

// Alert severities.
const (
	// SeverityInfo flags something worth a look, no action implied.
	SeverityInfo Severity = "info"
	// SeverityWarning flags degradation needing attention soon.
	SeverityWarning Severity = "warning"
	// SeverityError flags active quality failure needing action now.
	SeverityError Severity = "error"
)

// Health grades the overall system quality state.
type Health string

// Health grades, best first.
const (
	// HealthOptimal is a score of 0.9 or above.
	HealthOptimal Health = "optimal"
	// HealthHealthy is a score in [0.75, 0.9).
	HealthHealthy Health = "healthy"
	// HealthDegrading is a score in [0.5, 0.75).
	HealthDegrading Health = "degrading"
	// HealthCritical is a score below 0.5.
	HealthCritical Health = "critical"
)

// Grading and alert thresholds. All deterministic constants so the same
// observation stream always yields the same report.
const (
	// velocityDecliningPerSec is the degradation-velocity magnitude (quality
	// units per virtual second) below which the trend counts as declining.
	velocityDecliningPerSec = -0.002
	// velocityImprovingPerSec is the symmetric improving threshold.
	velocityImprovingPerSec = 0.002
	// volatilityMediumAt and volatilityHighAt bucket the windowed stddev.
	volatilityMediumAt = 0.05
	volatilityHighAt   = 0.15
	// alertEpsilonRate is the windowed ε rate that raises a warning.
	alertEpsilonRate = 0.5
	// alertAcceptRate is the windowed accept rate below which a warning is
	// raised (once the window has minAlertCount samples).
	alertAcceptRate = 0.2
	// alertDegradedRate is the windowed degraded-input rate that raises an
	// info alert.
	alertDegradedRate = 0.5
	// minAlertCount is the window occupancy required before rate alerts
	// fire, guarding against cold-start noise.
	minAlertCount = 8
	// Health score penalties per alert severity.
	penaltyError   = 0.3
	penaltyWarning = 0.15
	penaltyInfo    = 0.05
	// Health grade cut points.
	healthOptimalAt   = 0.9
	healthHealthyAt   = 0.75
	healthDegradingAt = 0.5
)

// WindowStats are the sliding-window statistics of one source.
type WindowStats struct {
	// Count is the number of decisions in the window.
	Count int `json:"count"`
	// WithQuality is how many of them carried a q score (non-ε).
	WithQuality int `json:"with_quality"`
	// Mean and StdDev summarize the windowed q values.
	Mean float64 `json:"mean"`
	// StdDev is documented with Mean.
	StdDev float64 `json:"stddev"`
	// AcceptRate is accepted decisions over window count.
	AcceptRate float64 `json:"accept_rate"`
	// EpsilonRate is ε decisions over window count.
	EpsilonRate float64 `json:"epsilon_rate"`
	// DegradedRate is degraded-flagged observations over window count.
	DegradedRate float64 `json:"degraded_rate"`
}

// Trends is the direction-volatility-velocity summary of one source.
type Trends struct {
	// Direction is improving, declining, or stable.
	Direction Direction `json:"direction"`
	// Volatility is low, medium, or high.
	Volatility Volatility `json:"volatility"`
	// DegradationVelocity is the OLS slope of q against virtual time over
	// the window, in quality units per virtual second.
	DegradationVelocity float64 `json:"degradation_velocity"`
}

// PHState is the Page–Hinkley detector state at report time.
type PHState struct {
	// Stat is the current cumulative decline statistic.
	Stat float64 `json:"stat"`
	// Count is observations folded in since the last reset.
	Count int `json:"count"`
	// Fired is the lifetime alarm count.
	Fired int64 `json:"fired"`
	// Epochs are the most recent alarms (bounded).
	Epochs []DriftEpoch `json:"epochs,omitempty"`
}

// Alert is one actionable finding in a report.
type Alert struct {
	// Source is the source the alert is about.
	Source string `json:"source"`
	// Severity is info, warning, or error.
	Severity Severity `json:"severity"`
	// Kind is a stable machine-readable alert type.
	Kind string `json:"kind"`
	// Message is the human-readable finding.
	Message string `json:"message"`
	// Recommendation says what to do about it.
	Recommendation string `json:"recommendation"`
}

// SourceReport is one source's section of a quality report.
type SourceReport struct {
	// Name is the source name.
	Name string `json:"name"`
	// Observed through Degraded are lifetime decision counts.
	Observed int64 `json:"observed"`
	// Accepted is documented with Observed.
	Accepted int64 `json:"accepted"`
	// Discarded is documented with Observed.
	Discarded int64 `json:"discarded"`
	// Epsilons is documented with Observed.
	Epsilons int64 `json:"epsilons"`
	// Degraded is documented with Observed.
	Degraded int64 `json:"degraded"`
	// Triggers is the lifetime count of structured drift triggers emitted
	// for this source (Page–Hinkley alarms plus new KS drift onsets).
	Triggers int64 `json:"triggers"`
	// FirstAt and LastAt bound the observed virtual-time span.
	FirstAt float64 `json:"first_at"`
	// LastAt is documented with FirstAt.
	LastAt float64 `json:"last_at"`
	// LifetimeMean and LifetimeStdDev summarize every q ever scored.
	LifetimeMean float64 `json:"lifetime_mean"`
	// LifetimeStdDev is documented with LifetimeMean.
	LifetimeStdDev float64 `json:"lifetime_stddev"`
	// Window is the sliding-window view.
	Window WindowStats `json:"window"`
	// Trends is the direction/volatility/velocity summary.
	Trends Trends `json:"trends"`
	// PageHinkley is the sequential decline detector's state.
	PageHinkley PHState `json:"page_hinkley"`
	// KS is the latest Kolmogorov–Smirnov evaluation against the
	// training-time reference mixture.
	KS KSResult `json:"ks"`
}

// Report is a structured quality report over every tracked source.
type Report struct {
	// At is the report's virtual timestamp: the latest observation time
	// seen (reports are deterministic, so no wall clock appears here).
	At float64 `json:"at"`
	// Observations is the total decisions tracked across all sources.
	Observations int64 `json:"observations"`
	// Health is the overall grade derived from HealthScore.
	Health Health `json:"health"`
	// HealthScore is 1.0 minus alert penalties, clamped to [0,1].
	HealthScore float64 `json:"health_score"`
	// Sources are the per-source sections, sorted by name.
	Sources []SourceReport `json:"sources"`
	// Alerts are the active findings, sorted by source then kind.
	Alerts []Alert `json:"alerts"`
}

// sanitize maps NaN and ±Inf to 0 so reports always marshal to JSON
// (encoding/json rejects non-finite values).
func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// trendsOf grades a velocity/stddev pair.
func trendsOf(velocity, stddev float64) Trends {
	t := Trends{Direction: DirectionStable, Volatility: VolatilityLow, DegradationVelocity: velocity}
	if velocity < velocityDecliningPerSec {
		t.Direction = DirectionDeclining
	} else if velocity > velocityImprovingPerSec {
		t.Direction = DirectionImproving
	}
	if stddev >= volatilityHighAt {
		t.Volatility = VolatilityHigh
	} else if stddev >= volatilityMediumAt {
		t.Volatility = VolatilityMedium
	}
	return t
}

// alertsFor derives the active alerts for one source report.
func alertsFor(sr *SourceReport) []Alert {
	var out []Alert
	add := func(sev Severity, kind, msg, rec string) {
		out = append(out, Alert{Source: sr.Name, Severity: sev, Kind: kind, Message: msg, Recommendation: rec})
	}
	if len(sr.PageHinkley.Epochs) > 0 && sr.PageHinkley.Fired > 0 {
		add(SeverityError, "drift-ph",
			"Page–Hinkley decline alarm on the quality stream",
			"inspect the sensor and retrain or reload the measure; the q distribution has collapsed below its training-time level")
	}
	if sr.KS.Evaluated && sr.KS.Drifting {
		add(SeverityError, "drift-ks",
			"live quality window departs from the training-time right/wrong mixture (KS)",
			"recalibrate the acceptance threshold against current conditions or retrain the measure")
	}
	if sr.Window.Count >= minAlertCount {
		if sr.Window.EpsilonRate > alertEpsilonRate {
			add(SeverityWarning, "epsilon-flood",
				"majority of recent decisions were ε (no quality computable)",
				"check sensor connectivity and cue coverage; the measure is flying blind")
		}
		if sr.Window.AcceptRate < alertAcceptRate {
			add(SeverityWarning, "low-accept",
				"windowed accept rate fell below 20%",
				"verify the acceptance threshold still matches the deployed environment")
		}
		if sr.Window.DegradedRate > alertDegradedRate {
			add(SeverityInfo, "degraded-input",
				"majority of recent observations carried degraded cues",
				"review upstream degradation injection or sensor health")
		}
	}
	if sr.Trends.Direction == DirectionDeclining {
		add(SeverityWarning, "declining",
			"windowed quality is trending downward",
			"watch the degradation velocity; schedule recalibration before the accept rate collapses")
	}
	return out
}

// healthOf folds alert penalties into a score and grade.
func healthOf(alerts []Alert) (float64, Health) {
	score := 1.0
	for _, a := range alerts {
		switch a.Severity {
		case SeverityError:
			score -= penaltyError
		case SeverityWarning:
			score -= penaltyWarning
		default:
			score -= penaltyInfo
		}
	}
	if score < 0 {
		score = 0
	}
	switch {
	case score >= healthOptimalAt:
		return score, HealthOptimal
	case score >= healthHealthyAt:
		return score, HealthHealthy
	case score >= healthDegradingAt:
		return score, HealthDegrading
	default:
		return score, HealthCritical
	}
}
