package quality

import (
	"sort"
	"sync"

	"cqm/internal/obs"
)

// DefaultWindow is the sliding-window size used when Config.Window is
// unset.
const DefaultWindow = 64

// Config parameterizes an Engine. The zero value is usable: default
// window, default detector tuning, no reference (KS disabled), no
// metrics.
type Config struct {
	// Window is the per-source sliding-window size in decisions.
	// Default DefaultWindow.
	Window int
	// Threshold is the acceptance threshold the engine uses to derive
	// accept/discard from q (a scored observation is accepted when
	// q > Threshold).
	Threshold float64
	// Reference is the training-time quality distribution for the KS
	// drift test; nil disables the test.
	Reference *Reference
	// PH tunes the Page–Hinkley decline detector (zero fields take
	// defaults).
	PH PHConfig
	// KS tunes the Kolmogorov–Smirnov drift test (zero fields take
	// defaults).
	KS KSConfig
	// Metrics, when non-nil, receives cqm_quality_* series.
	Metrics *obs.Registry
	// OnTrigger, when non-nil, receives one structured Trigger per
	// detector firing (a Page–Hinkley alarm, or a KS test newly turning
	// drifting), synchronously from Observe while the engine lock is
	// held — the hook must be fast and must not call back into the
	// engine. This is the typed feed the adaptation supervisor consumes
	// instead of parsing report Recommendation strings.
	OnTrigger func(Trigger)
}

// Observation is one scoring decision fed to the engine.
type Observation struct {
	// Source names the producing sensor/pipeline (one tracking state per
	// distinct name).
	Source string
	// At is the observation's virtual time in seconds.
	At float64
	// Q is the context quality score, meaningful only when HasQ.
	Q float64
	// HasQ is false for ε decisions (quality not computable).
	HasQ bool
	// Degraded marks observations whose input cues were degraded.
	Degraded bool
}

// Engine tracks per-source quality streams and assembles QualityReports.
// It is safe for concurrent use; determinism is the caller's contract:
// feed observations in a deterministic order (as the simulation's ordered
// publish path does) and every statistic, alert, and drift epoch replays
// bit-identically. A nil *Engine is a no-op on every method.
type Engine struct {
	mu       sync.Mutex
	cfg      Config
	met      engineMetrics
	sources  map[string]*source
	names    []string // sorted source names
	observed int64
}

// NewEngine returns an engine over cfg (zero fields take defaults).
func NewEngine(cfg Config) *Engine {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	cfg.PH = cfg.PH.withDefaults()
	cfg.KS = cfg.KS.withDefaults()
	return &Engine{
		cfg:     cfg,
		met:     newEngineMetrics(cfg.Metrics),
		sources: make(map[string]*source),
	}
}

// Observe folds one decision into the engine: window statistics, lifetime
// statistics, the Page–Hinkley detector, and (every KS.Every decisions per
// source) the KS drift test.
//
//cqm:hotpath
func (e *Engine) Observe(o Observation) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sources[o.Source]
	if !ok {
		s = newSource(o.Source, e.cfg.Window, e.cfg.PH)
		s.met = newSourceMetrics(e.cfg.Metrics, o.Source)
		e.sources[o.Source] = s
		e.names = append(e.names, o.Source) //lint:ignore hotpath-alloc first sight of a new source only; amortized to nothing per observation
		sort.Strings(e.names)
	}
	e.observed++
	sm := sample{
		at:       o.At,
		q:        o.Q,
		hasQ:     o.HasQ,
		accepted: o.HasQ && o.Q > e.cfg.Threshold,
		degraded: o.Degraded,
	}
	fired := s.add(sm)

	s.met.observations.Inc()
	if !o.HasQ {
		s.met.epsilons.Inc()
	}
	if fired {
		s.met.driftPH.Inc()
		e.fireTrigger(s, TriggerPH, o)
	}
	// KS runs on a stride so its amortized cost stays O(1)-ish per
	// observation; a fresh evaluation also happens at report time.
	if e.cfg.Reference != nil && s.observed%int64(e.cfg.KS.Every) == 0 {
		prev := s.ks.Evaluated && s.ks.Drifting
		s.ks = KSAgainst(e.cfg.Reference, s.windowQs(), e.cfg.KS)
		if s.ks.Evaluated && s.ks.Drifting && !prev {
			s.met.driftKS.Inc()
			e.fireTrigger(s, TriggerKS, o)
		}
	}
	// O(1) windowed gauges refresh on every observation; velocity (O(W))
	// refreshes at report time only.
	if e.cfg.Metrics != nil {
		n := float64(s.n)
		s.met.windowMean.Set(s.windowMean())
		s.met.windowStdDev.Set(s.windowStdDev())
		s.met.acceptRate.Set(float64(s.wAccept) / n)
		s.met.epsilonRate.Set(float64(s.wEpsilon) / n)
	}
}

// fireTrigger counts one detector firing and hands the structured event to
// the OnTrigger hook. Called with the engine lock held; the per-source
// observation index of the firing observation is s.observed-1 (add already
// folded it in).
func (e *Engine) fireTrigger(s *source, kind string, o Observation) {
	s.triggers++
	if e.cfg.OnTrigger == nil {
		return
	}
	e.cfg.OnTrigger(Trigger{
		Source:   o.Source,
		Kind:     kind,
		Severity: SeverityError,
		At:       o.At,
		Index:    s.observed - 1,
		Window:   windowStatsOf(s),
	})
}

// Report assembles the current QualityReport: per-source statistics,
// trends, a fresh KS evaluation, alerts, and the overall health grade.
// Per-source sections are sorted by name and every float is finite, so
// the JSON encoding is stable and never fails.
func (e *Engine) Report() *Report {
	if e == nil {
		return &Report{Health: HealthOptimal, HealthScore: 1}
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	rep := &Report{
		Observations: e.observed,
		Sources:      make([]SourceReport, 0, len(e.names)),
	}
	for _, name := range e.names {
		s := e.sources[name]
		if s.lastAt > rep.At {
			rep.At = s.lastAt
		}
		if e.cfg.Reference != nil {
			s.ks = KSAgainst(e.cfg.Reference, s.windowQs(), e.cfg.KS)
		}
		vel := sanitize(s.velocity())
		std := sanitize(s.windowStdDev())
		sr := SourceReport{
			Name:           name,
			Observed:       s.observed,
			Accepted:       s.accepted,
			Discarded:      s.discarded,
			Epsilons:       s.epsilons,
			Degraded:       s.degraded,
			Triggers:       s.triggers,
			FirstAt:        sanitize(s.firstAt),
			LastAt:         sanitize(s.lastAt),
			LifetimeMean:   sanitize(s.lifetime.Mean()),
			LifetimeStdDev: sanitize(s.lifetime.StdDev()),
			Window:         windowStatsOf(s),
			Trends:         trendsOf(vel, std),
			PageHinkley: PHState{
				Stat:   sanitize(s.ph.Stat()),
				Count:  s.ph.Count(),
				Fired:  s.phFired,
				Epochs: append([]DriftEpoch(nil), s.phEpochs...),
			},
			KS: s.ks,
		}
		sr.KS.Stat = sanitize(sr.KS.Stat)
		sr.KS.Critical = sanitize(sr.KS.Critical)
		rep.Alerts = append(rep.Alerts, alertsFor(&sr)...)
		rep.Sources = append(rep.Sources, sr)
		s.met.velocity.Set(vel)
	}
	sort.Slice(rep.Alerts, func(i, j int) bool {
		if rep.Alerts[i].Source != rep.Alerts[j].Source {
			return rep.Alerts[i].Source < rep.Alerts[j].Source
		}
		return rep.Alerts[i].Kind < rep.Alerts[j].Kind
	})
	rep.HealthScore, rep.Health = healthOf(rep.Alerts)

	var info, warn, errs int
	for _, a := range rep.Alerts {
		switch a.Severity {
		case SeverityError:
			errs++
		case SeverityWarning:
			warn++
		default:
			info++
		}
	}
	e.met.health.Set(rep.HealthScore)
	e.met.info.Set(float64(info))
	e.met.warn.Set(float64(warn))
	e.met.errs.Set(float64(errs))
	return rep
}

// Sources returns the tracked source names, sorted.
func (e *Engine) Sources() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.names...)
}
