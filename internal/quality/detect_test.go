package quality

import (
	"math"
	"testing"

	"cqm/internal/stat"
)

func testRef() *Reference {
	return &Reference{
		Right:       stat.Gaussian{Mu: 0.9, Sigma: 0.05},
		Wrong:       stat.Gaussian{Mu: 0.2, Sigma: 0.1},
		WeightRight: 0.8,
		Threshold:   0.6,
	}
}

func TestPageHinkleyQuietOnStableStream(t *testing.T) {
	ph := NewPageHinkley(PHConfig{})
	// A healthy bimodal stream: mostly high q with isolated collapses.
	for i := 0; i < 500; i++ {
		q := 0.9 + 0.05*math.Sin(float64(i))
		if i%25 == 24 {
			q = 0.1 // isolated misclassification
		}
		if ph.Add(q) {
			t.Fatalf("alarm on a stable stream at i=%d (stat %v)", i, ph.Stat())
		}
	}
}

func TestPageHinkleyFiresOnSustainedCollapse(t *testing.T) {
	ph := NewPageHinkley(PHConfig{})
	for i := 0; i < 100; i++ {
		if ph.Add(0.9) {
			t.Fatal("alarm during the healthy prefix")
		}
	}
	fired := -1
	for i := 0; i < 20; i++ {
		if ph.Add(0.05) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("no alarm after 20 collapsed observations")
	}
	// With defaults (Delta 0.2, Lambda 3) roughly five collapsed windows
	// against a ≈0.9 running mean should fire.
	if fired > 8 {
		t.Errorf("alarm only after %d collapsed observations, want ≤ 8", fired+1)
	}
	// Firing resets the detector.
	if ph.Count() != 0 {
		t.Errorf("count after alarm = %d, want 0", ph.Count())
	}
	if ph.Stat() > 0 {
		t.Errorf("stat after alarm = %v, want 0", ph.Stat())
	}
}

func TestPageHinkleyMinCountGuardsColdStart(t *testing.T) {
	ph := NewPageHinkley(PHConfig{MinCount: 10})
	// An immediate collapse may not alarm before MinCount observations.
	ph.Add(0.9)
	for i := 0; i < 8; i++ {
		if ph.Add(0.0) {
			t.Fatalf("alarm on observation %d, before MinCount", i+2)
		}
	}
}

func TestKSAgainstAcceptsInDistributionSample(t *testing.T) {
	ref := testRef()
	// Draw a deterministic in-distribution sample via inverse-CDF strata:
	// 80% right-cluster quantiles, 20% wrong-cluster quantiles.
	var qs []float64
	for i := 0; i < 48; i++ {
		p := (float64(i) + 0.5) / 48
		qs = append(qs, ref.Right.Quantile(p))
	}
	for i := 0; i < 12; i++ {
		p := (float64(i) + 0.5) / 12
		qs = append(qs, ref.Wrong.Quantile(p))
	}
	r := KSAgainst(ref, qs, KSConfig{})
	if !r.Evaluated {
		t.Fatal("test did not run")
	}
	if r.Drifting {
		t.Errorf("in-distribution sample declared drifting: D=%v critical=%v", r.Stat, r.Critical)
	}
}

func TestKSAgainstFlagsShiftedSample(t *testing.T) {
	ref := testRef()
	var qs []float64
	for i := 0; i < 64; i++ {
		qs = append(qs, 0.3+0.005*float64(i)) // collapsed to the wrong cluster
	}
	r := KSAgainst(ref, qs, KSConfig{})
	if !r.Evaluated || !r.Drifting {
		t.Errorf("shifted sample not flagged: %+v", r)
	}
}

func TestKSBaselineDiscountsApproximationError(t *testing.T) {
	ref := testRef()
	var qs []float64
	for i := 0; i < 64; i++ {
		qs = append(qs, 0.3+0.005*float64(i))
	}
	strict := KSAgainst(ref, qs, KSConfig{})
	ref.BaselineD = 0.9
	discounted := KSAgainst(ref, qs, KSConfig{})
	if !strict.Drifting {
		t.Fatal("uncalibrated test should flag the shifted sample")
	}
	if discounted.Drifting {
		t.Error("baseline discount should absorb the distance")
	}
	if discounted.Critical <= strict.Critical {
		t.Errorf("critical %v not raised over %v", discounted.Critical, strict.Critical)
	}
}

func TestKSAgainstGates(t *testing.T) {
	if r := KSAgainst(nil, make([]float64, 64), KSConfig{}); r.Evaluated {
		t.Error("nil reference must not evaluate")
	}
	if r := KSAgainst(testRef(), make([]float64, 3), KSConfig{}); r.Evaluated {
		t.Error("short sample must not evaluate")
	}
}

func TestKSAgainstDoesNotMutateInput(t *testing.T) {
	qs := []float64{0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4, 0.95, 0.05, 0.85, 0.15, 0.75, 0.25, 0.65, 0.35}
	want := append([]float64(nil), qs...)
	KSAgainst(testRef(), qs, KSConfig{})
	for i := range qs {
		if qs[i] != want[i] { //lint:ignore floatcmp exact copy comparison
			t.Fatalf("input mutated at %d", i)
		}
	}
}
