package quality

// Trigger kinds. Each names the detector that fired.
const (
	// TriggerPH is a Page–Hinkley decline alarm on the q stream.
	TriggerPH = "drift-ph"
	// TriggerKS is a Kolmogorov–Smirnov departure of the live window from
	// the training-time right/wrong mixture.
	TriggerKS = "drift-ks"
)

// Trigger is one structured drift event: the machine-readable companion of
// the human-facing Alert, emitted synchronously from Engine.Observe the
// moment a detector fires. Consumers (the adaptation supervisor) branch on
// its typed fields instead of parsing Recommendation strings out of a
// report. Triggers are a pure function of the observation stream, so under
// virtual time they replay bit-identically.
type Trigger struct {
	// Source is the stream the detector fired on.
	Source string `json:"source"`
	// Kind is TriggerPH or TriggerKS.
	Kind string `json:"kind"`
	// Severity mirrors the alert severity the same finding would carry.
	Severity Severity `json:"severity"`
	// At is the virtual time of the observation that fired the detector.
	At float64 `json:"at"`
	// Index is the zero-based per-source observation index at firing.
	Index int64 `json:"index"`
	// Window snapshots the source's sliding-window statistics at firing —
	// the state a retrain decision is made on.
	Window WindowStats `json:"window"`
}

// windowStatsOf assembles the exported windowed statistics of a source
// (shared by triggers and reports; every value is finite by construction
// since q ∈ [0,1]).
func windowStatsOf(s *source) WindowStats {
	ws := WindowStats{
		Count:       s.n,
		WithQuality: s.wWithQ,
		Mean:        sanitize(s.windowMean()),
		StdDev:      sanitize(s.windowStdDev()),
	}
	if s.n > 0 {
		n := float64(s.n)
		ws.AcceptRate = sanitize(float64(s.wAccept) / n)
		ws.EpsilonRate = sanitize(float64(s.wEpsilon) / n)
		ws.DegradedRate = sanitize(float64(s.wDegraded) / n)
	}
	return ws
}
