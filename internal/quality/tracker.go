package quality

import (
	"math"

	"cqm/internal/stat"
)

// sample is one tracked scoring decision in a source's ring window.
type sample struct {
	at       float64
	q        float64
	hasQ     bool
	accepted bool
	degraded bool
}

// DriftEpoch records one Page–Hinkley alarm: when it fired (virtual time)
// and on which per-source observation.
type DriftEpoch struct {
	// At is the virtual time of the observation that fired the alarm.
	At float64 `json:"at"`
	// Index is the zero-based per-source observation index.
	Index int64 `json:"index"`
}

// maxDriftEpochs bounds the epochs retained per source for reporting.
const maxDriftEpochs = 32

// source is the per-source tracking state: a ring window of recent
// decisions with incrementally maintained windowed statistics, lifetime
// Welford statistics, and the drift detectors.
type source struct {
	name string

	// Ring window of the most recent samples, oldest overwritten first.
	ring []sample
	next int
	n    int

	// Windowed aggregates, maintained in O(1) per observation by adding
	// the incoming sample and subtracting the evicted one. q ∈ [0,1], so
	// the running sums stay well-conditioned.
	wSum, wSum2               float64
	wWithQ, wAccept, wEpsilon int
	wDegraded                 int

	// Lifetime statistics over every q value this source ever produced.
	lifetime                                          stat.Online
	observed, accepted, discarded, epsilons, degraded int64
	firstAt, lastAt                                   float64

	// Drift detection.
	ph       *PageHinkley
	phFired  int64
	phEpochs []DriftEpoch
	ks       KSResult
	// triggers counts lifetime detector firings (PH alarms plus new KS
	// drift onsets) — the events handed to the OnTrigger hook.
	triggers int64

	met sourceMetrics
}

// newSource returns tracking state for one source name. It runs once per
// source lifetime (first sight), so its allocations are amortized to
// nothing on the per-observation path.
//
//cqm:coldpath
func newSource(name string, window int, ph PHConfig) *source {
	return &source{
		name: name,
		ring: make([]sample, window),
		ph:   NewPageHinkley(ph),
	}
}

// add folds one decision into the window and the lifetime statistics and
// runs the Page–Hinkley detector; it reports whether PH fired.
func (s *source) add(sm sample) bool {
	if s.observed == 0 {
		s.firstAt = sm.at
	}
	s.lastAt = sm.at
	index := s.observed
	s.observed++

	// Evict the slot being overwritten once the ring has wrapped.
	if s.n == len(s.ring) {
		old := s.ring[s.next]
		if old.hasQ {
			s.wSum -= old.q
			s.wSum2 -= old.q * old.q
			s.wWithQ--
		} else {
			s.wEpsilon--
		}
		if old.accepted {
			s.wAccept--
		}
		if old.degraded {
			s.wDegraded--
		}
	} else {
		s.n++
	}
	s.ring[s.next] = sm
	s.next = (s.next + 1) % len(s.ring)

	if sm.hasQ {
		s.wSum += sm.q
		s.wSum2 += sm.q * sm.q
		s.wWithQ++
		s.lifetime.Add(sm.q)
	} else {
		s.wEpsilon++
		s.epsilons++
	}
	if sm.accepted {
		s.wAccept++
		s.accepted++
	} else if sm.hasQ {
		s.discarded++
	}
	if sm.degraded {
		s.wDegraded++
		s.degraded++
	}

	if !sm.hasQ {
		return false
	}
	if s.ph.Add(sm.q) {
		s.phFired++
		//lint:ignore hotpath-alloc drift epochs are rare alarm events, bounded by maxDriftEpochs
		s.phEpochs = append(s.phEpochs, DriftEpoch{At: sm.at, Index: index})
		if len(s.phEpochs) > maxDriftEpochs {
			s.phEpochs = s.phEpochs[len(s.phEpochs)-maxDriftEpochs:]
		}
		return true
	}
	return false
}

// windowMean returns the mean q over the current window (0 when no
// quality-carrying sample is present).
func (s *source) windowMean() float64 {
	if s.wWithQ == 0 {
		return 0
	}
	return s.wSum / float64(s.wWithQ)
}

// windowStdDev returns the population standard deviation of q over the
// current window.
func (s *source) windowStdDev() float64 {
	if s.wWithQ < 2 {
		return 0
	}
	mean := s.wSum / float64(s.wWithQ)
	v := s.wSum2/float64(s.wWithQ) - mean*mean
	if v < 0 {
		// Floating-point cancellation on near-constant windows.
		v = 0
	}
	return math.Sqrt(v)
}

// windowQs returns the quality values currently in the window, oldest
// first — the KS detector's live sample. It runs every KS.Every
// observations, so its allocation is stride-amortized.
//
//cqm:coldpath
func (s *source) windowQs() []float64 {
	out := make([]float64, 0, s.wWithQ)
	s.eachWindowed(func(sm sample) {
		if sm.hasQ {
			out = append(out, sm.q)
		}
	})
	return out
}

// velocity returns the degradation velocity: the ordinary-least-squares
// slope of q against virtual time over the window, in quality units per
// virtual second. Negative values mean declining quality. It is a pure
// function of the windowed samples in stream order, so it replays
// bit-identically.
func (s *source) velocity() float64 {
	if s.wWithQ < 2 {
		return 0
	}
	var sumT, sumQ float64
	nf := float64(s.wWithQ)
	s.eachWindowed(func(sm sample) {
		if sm.hasQ {
			sumT += sm.at
			sumQ += sm.q
		}
	})
	meanT, meanQ := sumT/nf, sumQ/nf
	var cov, varT float64
	s.eachWindowed(func(sm sample) {
		if sm.hasQ {
			dt := sm.at - meanT
			cov += dt * (sm.q - meanQ)
			varT += dt * dt
		}
	})
	if varT <= 0 {
		return 0
	}
	return cov / varT
}

// eachWindowed visits the windowed samples oldest first.
func (s *source) eachWindowed(fn func(sample)) {
	start := s.next - s.n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.n; i++ {
		fn(s.ring[(start+i)%len(s.ring)])
	}
}
