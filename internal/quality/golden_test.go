package quality

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cqm/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata/")

// goldenEngine builds an engine + tracer over a fixed scripted stream so
// the /quality JSON and the Prometheus exposition are reproducible
// byte-for-byte.
func goldenEngine() (*Engine, *Tracer, *obs.Registry) {
	reg := obs.NewRegistry()
	ref := testRef()
	ref.BaselineD = 0.1
	e := NewEngine(Config{Window: 8, Threshold: 0.6, Reference: ref, Metrics: reg})
	tr := NewTracer(4, 4, reg)

	qs := []float64{0.91, 0.88, 0.05, 0.93, 0.9, 0.87, 0.92, 0.9, 0.85, 0.94}
	for i, q := range qs {
		at := float64(i)
		hasQ := i != 5 // one ε decision
		e.Observe(Observation{Source: "pen-a", At: at, Q: q, HasQ: hasQ, Degraded: i == 2})
		if tr.Begin("pen-a", i, at) {
			tr.Record(i, StageScore, at+0.01, "scored")
			tr.Record(i, StagePublish, at+0.02, "")
			tr.Record(i, StageDeliver, at+0.05, "camera")
			tr.Record(i, StageDecide, at+0.05, "camera:accept")
		}
	}
	// A second source that collapses, so alerts and PH epochs appear.
	for i := 0; i < 24; i++ {
		q := 0.9
		if i >= 8 {
			q = 0.04
		}
		e.Observe(Observation{Source: "pen-b", At: 100 + float64(i), Q: q, HasQ: true})
	}
	return e, tr, reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/quality -update-golden` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestQualityEndpointGolden(t *testing.T) {
	e, tr, _ := goldenEngine()
	rec := httptest.NewRecorder()
	Handler(e, tr).ServeHTTP(rec, httptest.NewRequest("GET", "/quality", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.Bytes()
	if bytes.Contains(body, []byte("NaN")) || bytes.Contains(body, []byte("Inf")) {
		t.Error("non-finite value leaked into the JSON payload")
	}
	checkGolden(t, "quality_endpoint.golden", body)

	// ?traces=0 must suppress the trace dump but keep the report.
	rec = httptest.NewRecorder()
	Handler(e, tr).ServeHTTP(rec, httptest.NewRequest("GET", "/quality?traces=0", nil))
	if bytes.Contains(rec.Body.Bytes(), []byte(`"traces"`)) {
		t.Error("?traces=0 still rendered traces")
	}
}

func TestQualityPrometheusGolden(t *testing.T) {
	e, _, reg := goldenEngine()
	_ = e.Report() // refresh report-time gauges (health, velocity, alerts)
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The le="+Inf" terminal bucket label is part of the format; sample
	// values themselves must be finite.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		value := line[strings.LastIndexByte(line, ' ')+1:]
		if strings.Contains(value, "NaN") || strings.Contains(value, "Inf") {
			t.Errorf("non-finite sample value in %q", line)
		}
	}
	for _, name := range []string{
		MetricObservations, MetricEpsilons, MetricDrift,
		MetricWindowMean, MetricWindowStdDev, MetricAcceptRate,
		MetricEpsilonRate, MetricVelocity, MetricHealth, MetricAlerts,
		MetricTraceStageSeconds, MetricTracesSampled,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition is missing %s", name)
		}
	}
	checkGolden(t, "quality_metrics.golden", b.Bytes())
}

func TestQualityHandlerNilSafe(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/quality", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"health": "optimal"`)) {
		t.Errorf("nil-engine payload = %s", rec.Body.String())
	}
}
