package quality

import (
	"fmt"
	"testing"
)

// benchStream pre-builds a deterministic observation stream so the
// benchmark loop measures tracking cost only, not synthesis.
func benchStream(sources, n int) []Observation {
	out := make([]Observation, 0, sources*n)
	for s := 0; s < sources; s++ {
		name := fmt.Sprintf("pen-%d", s)
		for _, o := range streamFor(name, n, int64(s)+5) {
			o.Source = name
			out = append(out, o)
		}
	}
	return out
}

// BenchmarkObserve measures the per-observation tracking overhead on
// the serving hot path: ring update, O(1) window aggregates, and the
// Page–Hinkley step.
func BenchmarkObserve(b *testing.B) {
	stream := benchStream(1, 4096)
	e := NewEngine(Config{Threshold: 0.6, Reference: testRef()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(stream[i%len(stream)])
	}
}

// BenchmarkReport measures full report generation — per-source stats,
// OLS velocity, KS test, alert derivation, health grading — over a
// warm 4-source engine.
func BenchmarkReport(b *testing.B) {
	e := NewEngine(Config{Threshold: 0.6, Reference: testRef()})
	for _, o := range benchStream(4, 512) {
		e.Observe(o)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := e.Report(); rep == nil {
			b.Fatal("nil report")
		}
	}
}
