package quality

import (
	"testing"

	"cqm/internal/stat"
)

// collapseStream returns a stream that starts healthy then collapses, so
// the Page–Hinkley detector is guaranteed to fire.
func collapseStream(source string, healthy, collapsed int) []Observation {
	out := make([]Observation, 0, healthy+collapsed)
	for i := 0; i < healthy; i++ {
		out = append(out, Observation{Source: source, At: float64(i), HasQ: true, Q: 0.9})
	}
	for i := 0; i < collapsed; i++ {
		out = append(out, Observation{Source: source, At: float64(healthy + i), HasQ: true, Q: 0.05})
	}
	return out
}

// TestTriggerPHFields asserts the OnTrigger hook receives a structured
// Page–Hinkley trigger whose fields match the firing observation and the
// source window state, and that the report's trigger count agrees.
func TestTriggerPHFields(t *testing.T) {
	var got []Trigger
	e := NewEngine(Config{
		Window:    8,
		Threshold: 0.6,
		OnTrigger: func(tr Trigger) { got = append(got, tr) },
	})
	stream := collapseStream("pen", 20, 30)
	for _, o := range stream {
		e.Observe(o)
	}
	if len(got) == 0 {
		t.Fatal("expected at least one PH trigger on a collapsed stream")
	}
	tr := got[0]
	if tr.Source != "pen" {
		t.Errorf("Source = %q, want pen", tr.Source)
	}
	if tr.Kind != TriggerPH {
		t.Errorf("Kind = %q, want %q", tr.Kind, TriggerPH)
	}
	if tr.Severity != SeverityError {
		t.Errorf("Severity = %q, want %q", tr.Severity, SeverityError)
	}
	// The firing observation is at index tr.Index of the stream, and its
	// virtual time must match.
	if tr.Index < 0 || tr.Index >= int64(len(stream)) {
		t.Fatalf("Index = %d out of stream range", tr.Index)
	}
	if stream[tr.Index].At != tr.At {
		t.Errorf("At = %v, but stream[%d].At = %v", tr.At, tr.Index, stream[tr.Index].At)
	}
	if tr.Window.Count == 0 {
		t.Error("Window.Count = 0, want populated window stats")
	}
	rep := e.Report()
	if rep.Sources[0].Triggers != int64(len(got)) {
		t.Errorf("report Triggers = %d, want %d (hook invocations)", rep.Sources[0].Triggers, len(got))
	}
	// PH metrics counter and trigger count agree for a PH-only engine
	// (no Reference, so KS never fires).
	if rep.Sources[0].PageHinkley.Fired != int64(len(got)) {
		t.Errorf("PH fired = %d, want %d", rep.Sources[0].PageHinkley.Fired, len(got))
	}
}

// TestTriggerKSOnNewDrift asserts a KS trigger fires exactly when the KS
// test newly turns drifting on its evaluation stride, not on every stride
// while drift persists.
func TestTriggerKSOnNewDrift(t *testing.T) {
	ref := referenceFor(t)
	var kinds []string
	e := NewEngine(Config{
		Window:    32,
		Threshold: 0.6,
		Reference: ref,
		KS:        KSConfig{Every: 8, MinCount: 8},
		// Detune PH so only KS can fire.
		PH:        PHConfig{Delta: 10, Lambda: 1e9, MinCount: 1 << 30},
		OnTrigger: func(tr Trigger) { kinds = append(kinds, tr.Kind) },
	})
	// A stream far from the reference mixture: constant mid-scale q.
	for i := 0; i < 128; i++ {
		e.Observe(Observation{Source: "pen", At: float64(i), HasQ: true, Q: 0.45 + 0.001*float64(i%7)})
	}
	var ks int
	for _, k := range kinds {
		if k != TriggerKS {
			t.Fatalf("unexpected trigger kind %q", k)
		}
		ks++
	}
	if ks != 1 {
		t.Errorf("KS triggers = %d, want exactly 1 (fires on onset, not every stride)", ks)
	}
}

// TestTriggerNilHook asserts the engine counts triggers but never panics
// when no hook is configured.
func TestTriggerNilHook(t *testing.T) {
	e := NewEngine(Config{Window: 8, Threshold: 0.6})
	for _, o := range collapseStream("pen", 20, 30) {
		e.Observe(o)
	}
	rep := e.Report()
	if rep.Sources[0].Triggers == 0 {
		t.Error("Triggers = 0, want counted firings even without a hook")
	}
}

// referenceFor builds a small training-time reference with well-separated
// right/wrong quality distributions.
func referenceFor(t *testing.T) *Reference {
	t.Helper()
	r := &Reference{
		Right:       stat.Gaussian{Mu: 0.9, Sigma: 0.05},
		Wrong:       stat.Gaussian{Mu: 0.2, Sigma: 0.1},
		WeightRight: 0.8,
		Threshold:   0.6,
	}
	return r
}
