// Package quality is the quality analytics engine: it watches the stream
// of CQM scoring decisions per source, maintains sliding-window statistics
// (mean, variance, accept rate, ε rate, degradation velocity), detects
// distribution drift away from the training-time right/wrong densities
// (Page–Hinkley on the q stream, a Kolmogorov–Smirnov test against the
// reference Gaussian mixture), and assembles structured QualityReports
// with trends, alerts, and an overall health grade.
//
// The engine is deterministic by construction: every statistic is a pure
// function of the observation stream in arrival order and virtual time.
// Given a seeded simulation, drift-detection epochs replay bit-identically
// across runs and worker counts. Nothing in this package reads the wall
// clock or a random source.
//
// A companion Tracer records per-observation pipeline traces — pen sample
// → score → publish → bus delivery (including retransmits) → camera
// fusion → decision — into a bounded in-memory ring with per-stage
// virtual-time latency histograms.
package quality
