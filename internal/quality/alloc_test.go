package quality

import "testing"

// TestObserveSteadyStateZeroAlloc guards the //cqm:hotpath contract on
// Engine.Observe: once a source's tracking state and metric handles exist
// (first sight) and between KS strides, folding an observation must not
// allocate. First-sight and stride work carry //cqm:coldpath or waivers
// in the lint walk; this test pins the steady state at zero.
func TestObserveSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(Config{Window: 32, Threshold: 0.6})
	for _, o := range streamFor("pen", 100, 1) {
		e.Observe(o)
	}
	o := Observation{Source: "pen", At: 1000, HasQ: true, Q: 0.9}
	if allocs := testing.AllocsPerRun(500, func() {
		o.At++
		e.Observe(o)
	}); allocs != 0 {
		t.Errorf("Observe steady state allocates %v per run, want 0", allocs)
	}
}
