package quality

import (
	"math"
	"sort"
)

// PHConfig parameterizes the Page–Hinkley decline detector. The zero
// value takes the documented defaults.
type PHConfig struct {
	// Delta is the drift insensitivity: declines smaller than Delta below
	// the running mean never accumulate. The q stream is bimodal (right
	// classifications score near 1, wrong ones near 0), so Delta is set
	// well above incidental wobble: an isolated misclassification
	// (q ≈ 0.1 against a ≈ 0.9 running mean) contributes ≈ 0.6 to the
	// statistic, and only a run of them alarms. Default 0.2.
	Delta float64 `json:"delta"`
	// Lambda is the alarm threshold on the cumulative decline statistic.
	// With the default Delta, roughly five consecutive collapsed windows
	// fire — a sustained quality collapse, not a bad window. Default 3.
	Lambda float64 `json:"lambda"`
	// MinCount is the minimum number of observations since the last reset
	// before an alarm may fire, guarding against cold-start noise.
	// Default 8.
	MinCount int `json:"min_count"`
}

// withDefaults fills zero fields with the documented defaults.
func (c PHConfig) withDefaults() PHConfig {
	if c.Delta <= 0 {
		c.Delta = 0.2
	}
	if c.Lambda <= 0 {
		c.Lambda = 3
	}
	if c.MinCount == 0 {
		c.MinCount = 8
	}
	return c
}

// PageHinkley is the one-sided Page–Hinkley test for a decrease in the
// mean of a stream — the classic sequential change detector, here watching
// the q stream for quality collapses. It is a pure function of the
// observation sequence: no randomness, no clock, so detection epochs
// replay bit-identically. After an alarm the detector resets and starts
// accumulating afresh, so repeated drifts fire repeated alarms.
type PageHinkley struct {
	cfg  PHConfig
	n    int
	mean float64
	m    float64
}

// NewPageHinkley returns a detector with the given configuration (zero
// fields take defaults).
func NewPageHinkley(cfg PHConfig) *PageHinkley {
	return &PageHinkley{cfg: cfg.withDefaults()}
}

// Add folds one observation in and reports whether the decline alarm
// fired on it. Firing resets the detector.
func (p *PageHinkley) Add(x float64) bool {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.m += p.mean - x - p.cfg.Delta
	if p.m < 0 {
		p.m = 0
	}
	if p.n >= p.cfg.MinCount && p.m > p.cfg.Lambda {
		p.Reset()
		return true
	}
	return false
}

// Stat returns the current cumulative decline statistic m_t.
func (p *PageHinkley) Stat() float64 { return p.m }

// Count returns the observations folded in since the last reset.
func (p *PageHinkley) Count() int { return p.n }

// Reset restarts accumulation, as after a fired alarm or a model reload.
func (p *PageHinkley) Reset() {
	p.n = 0
	p.mean = 0
	p.m = 0
}

// KSConfig parameterizes the Kolmogorov–Smirnov drift test of the live
// window against the reference mixture. The zero value takes defaults.
type KSConfig struct {
	// Coefficient is the critical-value coefficient c(α); the live window
	// of n quality values is declared drifting when
	// D_n > BaselineD + Coefficient/√n (see Reference.BaselineD).
	// Default 1.36 (α ≈ 0.05).
	Coefficient float64 `json:"coefficient"`
	// MinCount is the minimum window occupancy before the test runs.
	// Default 16.
	MinCount int `json:"min_count"`
	// Every is the per-source observation stride between in-stream
	// evaluations (the test also always runs at report time). Default 16.
	Every int `json:"every"`
}

// withDefaults fills zero fields with the documented defaults.
func (c KSConfig) withDefaults() KSConfig {
	if c.Coefficient <= 0 {
		c.Coefficient = 1.36
	}
	if c.MinCount == 0 {
		c.MinCount = 16
	}
	if c.Every == 0 {
		c.Every = 16
	}
	return c
}

// KSResult is one evaluation of the KS drift test.
type KSResult struct {
	// Stat is the KS statistic D_n = sup|F_n − F_ref|.
	Stat float64 `json:"stat"`
	// Critical is the threshold D_n was compared against.
	Critical float64 `json:"critical"`
	// N is the number of quality values tested.
	N int `json:"n"`
	// Drifting reports Stat > Critical.
	Drifting bool `json:"drifting"`
	// Evaluated reports whether the test ran at all (enough data and a
	// reference present).
	Evaluated bool `json:"evaluated"`
}

// KSAgainst runs the one-sample Kolmogorov–Smirnov test of qs against the
// reference mixture CDF. The reference's BaselineD — the training
// sample's own distance to the fitted mixture, i.e. the parametric
// approximation error — is added to the critical value, so the test
// alarms on drift beyond what the Gaussian fit already missed at
// training time. The input slice is not modified.
//
// The engine invokes this every KS.Every observations, so its scratch
// allocation is stride-amortized off the per-observation path.
//
//cqm:coldpath
func KSAgainst(ref *Reference, qs []float64, cfg KSConfig) KSResult {
	cfg = cfg.withDefaults()
	if ref == nil || len(qs) < cfg.MinCount {
		return KSResult{}
	}
	d := ksDistance(ref, qs)
	crit := ref.BaselineD + cfg.Coefficient/math.Sqrt(float64(len(qs)))
	return KSResult{Stat: d, Critical: crit, N: len(qs), Drifting: d > crit, Evaluated: true}
}

// ksDistance returns the raw KS statistic D_n = sup|F_n − F_ref| of qs
// against the reference mixture CDF, with no baseline discount.
func ksDistance(ref *Reference, qs []float64) float64 {
	sorted := make([]float64, len(qs))
	copy(sorted, qs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := ref.CDF(x)
		if above := float64(i+1)/n - f; above > d {
			d = above
		}
		if below := f - float64(i)/n; below > d {
			d = below
		}
	}
	return d
}
