package quality

import "cqm/internal/obs"

// Metric names of the quality analytics engine. Gauges carry the most
// recent report's view; counters accumulate over the engine's lifetime.
const (
	// MetricObservations counts tracked scoring decisions, per source.
	MetricObservations = "cqm_quality_observations_total"
	// MetricEpsilons counts tracked ε (no-quality) decisions, per source.
	MetricEpsilons = "cqm_quality_epsilons_total"
	// MetricDrift counts drift alarms, labelled source and
	// detector=ph|ks.
	MetricDrift = "cqm_quality_drift_total"
	// MetricWindowMean is the windowed mean q, per source.
	MetricWindowMean = "cqm_quality_window_mean"
	// MetricWindowStdDev is the windowed q standard deviation, per source.
	MetricWindowStdDev = "cqm_quality_window_stddev"
	// MetricAcceptRate is the windowed accept rate, per source.
	MetricAcceptRate = "cqm_quality_accept_rate"
	// MetricEpsilonRate is the windowed ε rate, per source.
	MetricEpsilonRate = "cqm_quality_epsilon_rate"
	// MetricVelocity is the degradation velocity (dq/dt over the window,
	// quality units per virtual second), per source.
	MetricVelocity = "cqm_quality_degradation_velocity"
	// MetricHealth is the overall health score of the last report, in
	// [0,1].
	MetricHealth = "cqm_quality_health"
	// MetricAlerts is the number of active alerts in the last report,
	// labelled by severity.
	MetricAlerts = "cqm_quality_alerts"
	// MetricTraceStageSeconds is the distribution of per-stage pipeline
	// latency in virtual seconds, labelled by stage.
	MetricTraceStageSeconds = "cqm_trace_stage_virtual_seconds"
	// MetricTracesSampled counts pipeline traces started by the sampler.
	MetricTracesSampled = "cqm_trace_sampled_total"
)

// engineMetrics are the engine's pre-resolved registry handles; the zero
// value (nil registry) makes every update a no-op.
type engineMetrics struct {
	reg    *obs.Registry
	health *obs.Gauge
	info   *obs.Gauge
	warn   *obs.Gauge
	errs   *obs.Gauge
}

// newEngineMetrics resolves the engine-level metrics once.
func newEngineMetrics(reg *obs.Registry) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	reg.Help(MetricObservations, "Scoring decisions tracked by the quality engine, by source.")
	reg.Help(MetricEpsilons, "Tracked epsilon (no-quality) decisions, by source.")
	reg.Help(MetricDrift, "Drift alarms, by source and detector.")
	reg.Help(MetricWindowMean, "Windowed mean quality, by source.")
	reg.Help(MetricWindowStdDev, "Windowed quality standard deviation, by source.")
	reg.Help(MetricAcceptRate, "Windowed accept rate, by source.")
	reg.Help(MetricEpsilonRate, "Windowed epsilon rate, by source.")
	reg.Help(MetricVelocity, "Degradation velocity dq/dt over the window, by source.")
	reg.Help(MetricHealth, "Overall health score of the last quality report.")
	reg.Help(MetricAlerts, "Active alerts in the last quality report, by severity.")
	return engineMetrics{
		reg:    reg,
		health: reg.Gauge(MetricHealth),
		info:   reg.Gauge(MetricAlerts, "severity", string(SeverityInfo)),
		warn:   reg.Gauge(MetricAlerts, "severity", string(SeverityWarning)),
		errs:   reg.Gauge(MetricAlerts, "severity", string(SeverityError)),
	}
}

// sourceMetrics are one source's pre-resolved series.
type sourceMetrics struct {
	observations *obs.Counter
	epsilons     *obs.Counter
	driftPH      *obs.Counter
	driftKS      *obs.Counter
	windowMean   *obs.Gauge
	windowStdDev *obs.Gauge
	acceptRate   *obs.Gauge
	epsilonRate  *obs.Gauge
	velocity     *obs.Gauge
}

// newSourceMetrics resolves one source's labelled series. Registration
// runs once per source lifetime (first sight); after that the resolved
// handles are reused, so lookup-path allocations are off the
// per-observation path.
//
//cqm:coldpath
func newSourceMetrics(reg *obs.Registry, name string) sourceMetrics {
	if reg == nil {
		return sourceMetrics{}
	}
	return sourceMetrics{
		observations: reg.Counter(MetricObservations, "source", name),
		epsilons:     reg.Counter(MetricEpsilons, "source", name),
		driftPH:      reg.Counter(MetricDrift, "source", name, "detector", "ph"),
		driftKS:      reg.Counter(MetricDrift, "source", name, "detector", "ks"),
		windowMean:   reg.Gauge(MetricWindowMean, "source", name),
		windowStdDev: reg.Gauge(MetricWindowStdDev, "source", name),
		acceptRate:   reg.Gauge(MetricAcceptRate, "source", name),
		epsilonRate:  reg.Gauge(MetricEpsilonRate, "source", name),
		velocity:     reg.Gauge(MetricVelocity, "source", name),
	}
}
