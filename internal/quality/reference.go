package quality

import (
	"errors"
	"fmt"
	"time"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/stat"
)

// Reference errors.
var (
	// ErrBadReference reports a reference whose densities or weights are
	// unusable.
	ErrBadReference = errors.New("quality: invalid reference")
)

// Reference is the training-time quality distribution the live stream is
// compared against: the MLE Gaussian densities of the q values of right
// and wrong classifications (paper §2.3.1) plus their mixture weight. It
// is persisted into the model artifact set by cqmtrain so a serving
// process can detect drift without retraining.
type Reference struct {
	// Right and Wrong are the densities of correct and incorrect
	// classifications' q values.
	Right stat.Gaussian `json:"right"`
	// Wrong is documented with Right.
	Wrong stat.Gaussian `json:"wrong"`
	// WeightRight is the fraction of non-ε training observations that were
	// correct — the mixture weight of Right (Wrong gets 1−WeightRight).
	WeightRight float64 `json:"weight_right"`
	// Threshold is the optimal acceptance threshold s at training time.
	Threshold float64 `json:"threshold"`
	// BaselineD is the KS distance of the pooled training q sample
	// against the fitted mixture itself — the parametric approximation
	// error. The live KS test discounts it, so only drift beyond what
	// the Gaussian fit already missed at training time alarms.
	BaselineD float64 `json:"baseline_d"`
}

// Validate reports whether the reference is usable for drift detection.
func (r *Reference) Validate() error {
	if r == nil {
		return fmt.Errorf("%w: nil", ErrBadReference)
	}
	if r.Right.Sigma <= 0 || r.Wrong.Sigma <= 0 {
		return fmt.Errorf("%w: sigmas %v, %v", ErrBadReference, r.Right.Sigma, r.Wrong.Sigma)
	}
	if r.WeightRight < 0 || r.WeightRight > 1 {
		return fmt.Errorf("%w: weight %v", ErrBadReference, r.WeightRight)
	}
	if r.BaselineD < 0 || r.BaselineD >= 1 {
		return fmt.Errorf("%w: baseline D %v", ErrBadReference, r.BaselineD)
	}
	return nil
}

// NewReference builds the drift reference from a training-time analysis:
// the fitted right/wrong densities, their empirical mixture weight, the
// acceptance threshold, and the calibrated KS baseline over the pooled
// training q sample.
func NewReference(a *core.Analysis) *Reference {
	ref := &Reference{
		Right:       a.Right,
		Wrong:       a.Wrong,
		WeightRight: float64(len(a.QRight)) / float64(len(a.QRight)+len(a.QWrong)),
		Threshold:   a.Threshold,
	}
	pool := make([]float64, 0, len(a.QRight)+len(a.QWrong))
	pool = append(pool, a.QRight...)
	pool = append(pool, a.QWrong...)
	ref.BaselineD = ksDistance(ref, pool)
	return ref
}

// CDF returns the mixture cumulative distribution
// w·Φ_right(x) + (1−w)·Φ_wrong(x) — the null hypothesis the KS detector
// tests the live window against.
func (r *Reference) CDF(x float64) float64 {
	return r.WeightRight*r.Right.CDF(x) + (1-r.WeightRight)*r.Wrong.CDF(x)
}

// SaveReference atomically persists the reference as a checksummed
// quality-reference artifact beside the model files. createdAt is the
// caller's clock (library code never reads the wall clock itself).
func SaveReference(path string, ref *Reference, createdAt time.Time) error {
	if err := ref.Validate(); err != nil {
		return err
	}
	man := ckpt.Manifest{Kind: ckpt.KindQualityReference, CreatedAt: createdAt}
	return ckpt.WriteArtifact(path, man, ref)
}

// LoadReference reads a quality-reference artifact written by
// SaveReference, verifying checksum, schema, and kind.
func LoadReference(path string) (*Reference, error) {
	var ref Reference
	if _, err := ckpt.ReadArtifact(path, ckpt.KindQualityReference, &ref); err != nil {
		return nil, err
	}
	if err := ref.Validate(); err != nil {
		return nil, err
	}
	return &ref, nil
}
