package quality

import (
	"encoding/json"
	"net/http"
)

// Snapshot is the /quality endpoint payload: the current report plus,
// when tracing is enabled, the retained pipeline traces.
type Snapshot struct {
	// Report is the quality report at serve time.
	Report *Report `json:"report"`
	// Traces are the retained pipeline traces, oldest first (omitted when
	// tracing is off or ?traces=0).
	Traces []Trace `json:"traces,omitempty"`
}

// Handler serves the engine's QualityReport as indented JSON, with the
// tracer's retained traces attached when tr is non-nil. Wire it at
// /quality next to the /metrics handler. ?traces=0 suppresses the trace
// dump. Both e and tr may be nil.
func Handler(e *Engine, tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := Snapshot{Report: e.Report()}
		if req.URL.Query().Get("traces") != "0" {
			snap.Traces = tr.Snapshot()
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(data, '\n'))
	})
}
