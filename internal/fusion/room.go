package fusion

import (
	"fmt"

	"cqm/internal/sensor"
)

// RoomState is a higher-level context aggregated from a history of fused
// low-level contexts — the complex situations the paper's outlook aims at.
type RoomState int

// Room states of the AwareOffice.
const (
	RoomUnknown RoomState = iota
	// RoomIdle: nobody is using the whiteboard (pens lying still).
	RoomIdle
	// RoomSession: active work at the whiteboard (sustained writing).
	RoomSession
	// RoomBreak: people are present but not working (playing dominates).
	RoomBreak
)

// String names the room state.
func (s RoomState) String() string {
	switch s {
	case RoomIdle:
		return "idle"
	case RoomSession:
		return "session"
	case RoomBreak:
		return "break"
	case RoomUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("RoomState(%d)", int(s))
	}
}

// Aggregator maps a sliding history of fused contexts onto room states
// with hysteresis: a state switch needs a clear majority, so brief
// flickers do not bounce the room state around.
type Aggregator struct {
	// History is the number of recent consensus windows considered.
	// Default 8.
	History int
	// SwitchFraction is the fraction of the history a context must
	// dominate before the room state switches. Default 0.5.
	SwitchFraction float64

	recent []sensor.Context
	state  RoomState
}

// Observe feeds one fused context and returns the (possibly unchanged)
// room state.
func (a *Aggregator) Observe(c sensor.Context) RoomState {
	history := a.History
	if history == 0 {
		history = 8
	}
	frac := a.SwitchFraction
	if frac == 0 {
		frac = 0.5
	}
	a.recent = append(a.recent, c)
	if len(a.recent) > history {
		a.recent = a.recent[len(a.recent)-history:]
	}
	counts := make(map[sensor.Context]int, 3)
	for _, r := range a.recent {
		counts[r]++
	}
	need := int(frac*float64(len(a.recent))) + 1
	switch {
	case counts[sensor.ContextWriting] >= need:
		a.state = RoomSession
	case counts[sensor.ContextPlaying] >= need:
		a.state = RoomBreak
	case counts[sensor.ContextLying] >= need:
		a.state = RoomIdle
	}
	return a.state
}

// State returns the current room state.
func (a *Aggregator) State() RoomState { return a.state }

// Reset clears the history and state.
func (a *Aggregator) Reset() {
	a.recent = nil
	a.state = RoomUnknown
}
