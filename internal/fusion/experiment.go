package fusion

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/feature"
	"cqm/internal/sensor"
)

// ExperimentConfig parameterizes the multi-appliance fusion experiment.
type ExperimentConfig struct {
	// Seed drives the simulated recordings.
	Seed int64
	// Styles gives one user style per simulated appliance; appliances
	// with off-nominal styles misclassify more, which is what the fuser
	// must cope with. Default: one nominal, one borderline, one erratic.
	Styles []sensor.Style
	// WindowSize is the readings per classification window. Default 100.
	WindowSize int
}

func (c ExperimentConfig) withDefaults() ExperimentConfig {
	if len(c.Styles) == 0 {
		c.Styles = []sensor.Style{
			sensor.DefaultStyle(),
			{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
			{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9},
		}
	}
	if c.WindowSize == 0 {
		c.WindowSize = 100
	}
	return c
}

// StrategyResult is one strategy's consensus accuracy.
type StrategyResult struct {
	Strategy Strategy
	Accuracy float64
}

// Result summarizes the fusion experiment.
type Result struct {
	// Windows is the number of fused decision points.
	Windows int
	// PerSource is each appliance's individual accuracy.
	PerSource map[string]float64
	// Strategies lists consensus accuracy per fusion strategy.
	Strategies []StrategyResult
	// RoomAccuracy is the higher-level aggregation accuracy (room state
	// derived from quality-weighted consensus vs true room state).
	RoomAccuracy float64
}

// Render summarizes the experiment.
func (r *Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fusion — higher-level context from multiple appliances (paper §5 outlook)\n")
	fmt.Fprintf(&sb, "  fused windows %d\n", r.Windows)
	names := make([]string, 0, len(r.PerSource))
	for name := range r.PerSource {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "  source %-22s accuracy %.3f\n", name, r.PerSource[name])
	}
	for _, s := range r.Strategies {
		fmt.Fprintf(&sb, "  fusion %-22s accuracy %.3f\n", s.Strategy, s.Accuracy)
	}
	fmt.Fprintf(&sb, "  room-state aggregation        accuracy %.3f\n", r.RoomAccuracy)
	return sb.String()
}

// RunExperiment simulates several appliances observing the same room
// session — each with its own user style, hence its own error profile —
// and fuses their per-window reports under every strategy. All appliances
// share the classifier and quality measure (the same pre-trained AwarePen
// firmware on every pen).
func RunExperiment(
	clf classify.Classifier,
	measure *core.Measure,
	cfg ExperimentConfig,
) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// One shared room script; each appliance observes it with its own
	// style and sensor noise.
	scenario := func(style sensor.Style) *sensor.Scenario {
		return &sensor.Scenario{
			Segments: []sensor.Segment{
				{Context: sensor.ContextLying, Duration: 6},
				{Context: sensor.ContextWriting, Duration: 10},
				{Context: sensor.ContextPlaying, Duration: 6},
				{Context: sensor.ContextWriting, Duration: 10},
				{Context: sensor.ContextLying, Duration: 6},
			},
			Style: style,
		}
	}

	type sourceData struct {
		name    string
		windows []feature.Window
	}
	sources := make([]sourceData, len(cfg.Styles))
	for i, style := range cfg.Styles {
		readings, err := scenario(style).Run(rng)
		if err != nil {
			return nil, fmt.Errorf("fusion: recording source %d: %w", i, err)
		}
		windows, err := (feature.Windower{Size: cfg.WindowSize}).Slide(readings)
		if err != nil {
			return nil, fmt.Errorf("fusion: windowing source %d: %w", i, err)
		}
		sources[i] = sourceData{name: fmt.Sprintf("pen-%d(amp=%.1f)", i+1, styleAmp(style)), windows: windows}
	}
	n := len(sources[0].windows)
	for _, s := range sources[1:] {
		if len(s.windows) < n {
			n = len(s.windows)
		}
	}
	if n == 0 {
		return nil, ErrNoReports
	}

	res := &Result{
		Windows:   n,
		PerSource: make(map[string]float64, len(sources)),
	}
	srcCorrect := make([]int, len(sources))
	strategies := []Strategy{MajorityVote, QualityWeighted, BestQuality}
	stratCorrect := make([]int, len(strategies))
	var agg Aggregator
	roomCorrect := 0

	for w := 0; w < n; w++ {
		truth := sources[0].windows[w].Truth
		reports := make([]Report, 0, len(sources))
		for si, src := range sources {
			win := src.windows[w]
			class, err := clf.Classify(win.Cues)
			if err != nil {
				return nil, fmt.Errorf("fusion: classifying %s window %d: %w", src.name, w, err)
			}
			if class == win.Truth {
				srcCorrect[si]++
			}
			rep := Report{Source: src.name, Class: class}
			if q, err := measure.Score(win.Cues, class); err == nil {
				rep.Quality = q
				rep.HasQuality = true
			}
			reports = append(reports, rep)
		}
		for sti, strategy := range strategies {
			consensus, err := Fuse(reports, strategy)
			if err != nil {
				return nil, fmt.Errorf("fusion: %v at window %d: %w", strategy, w, err)
			}
			if consensus.Class == truth {
				stratCorrect[sti]++
			}
			if strategy == QualityWeighted {
				state := agg.Observe(consensus.Class)
				if state == trueRoomState(truth) {
					roomCorrect++
				}
			}
		}
	}

	for si, src := range sources {
		res.PerSource[src.name] = float64(srcCorrect[si]) / float64(n)
	}
	for sti, strategy := range strategies {
		res.Strategies = append(res.Strategies, StrategyResult{
			Strategy: strategy,
			Accuracy: float64(stratCorrect[sti]) / float64(n),
		})
	}
	res.RoomAccuracy = float64(roomCorrect) / float64(n)
	return res, nil
}

func styleAmp(s sensor.Style) float64 {
	if s.Amplitude == 0 {
		return 1
	}
	return s.Amplitude
}

// trueRoomState maps a ground-truth pen context onto the room state it
// implies in the shared script.
func trueRoomState(c sensor.Context) RoomState {
	switch c {
	case sensor.ContextWriting:
		return RoomSession
	case sensor.ContextPlaying:
		return RoomBreak
	case sensor.ContextLying:
		return RoomIdle
	default:
		return RoomUnknown
	}
}
