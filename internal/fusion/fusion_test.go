package fusion

import (
	"errors"
	"math"
	"strings"
	"testing"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/sensor"
)

func TestFuseMajorityVote(t *testing.T) {
	reports := []Report{
		{Source: "a", Class: sensor.ContextWriting},
		{Source: "b", Class: sensor.ContextWriting},
		{Source: "c", Class: sensor.ContextPlaying},
	}
	c, err := Fuse(reports, MajorityVote)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != sensor.ContextWriting || c.Supporters != 2 {
		t.Errorf("consensus = %+v", c)
	}
	if math.Abs(c.Confidence-2.0/3.0) > 1e-12 {
		t.Errorf("confidence = %v, want 2/3", c.Confidence)
	}
}

func TestFuseQualityWeightedOverridesMajority(t *testing.T) {
	// Two confident-sounding but low-quality reports against one
	// high-quality report: the quality-weighted fuser believes the
	// trustworthy source; the majority fuser does not.
	reports := []Report{
		{Source: "bad1", Class: sensor.ContextPlaying, Quality: 0.1, HasQuality: true},
		{Source: "bad2", Class: sensor.ContextPlaying, Quality: 0.1, HasQuality: true},
		{Source: "good", Class: sensor.ContextWriting, Quality: 0.95, HasQuality: true},
	}
	maj, err := Fuse(reports, MajorityVote)
	if err != nil {
		t.Fatal(err)
	}
	if maj.Class != sensor.ContextPlaying {
		t.Fatalf("majority = %v, want playing", maj.Class)
	}
	qw, err := Fuse(reports, QualityWeighted)
	if err != nil {
		t.Fatal(err)
	}
	if qw.Class != sensor.ContextWriting {
		t.Errorf("quality-weighted = %v, want writing", qw.Class)
	}
}

func TestFuseBestQuality(t *testing.T) {
	reports := []Report{
		{Source: "a", Class: sensor.ContextLying, Quality: 0.6, HasQuality: true},
		{Source: "b", Class: sensor.ContextWriting, Quality: 0.9, HasQuality: true},
		{Source: "c", Class: sensor.ContextLying, Quality: 0.7, HasQuality: true},
	}
	c, err := Fuse(reports, BestQuality)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != sensor.ContextWriting {
		t.Errorf("best-quality = %v, want writing", c.Class)
	}
	if math.Abs(c.Confidence-0.9) > 1e-12 {
		t.Errorf("confidence = %v, want 0.9", c.Confidence)
	}
}

func TestFuseUnannotatedReportsGetFloorWeight(t *testing.T) {
	reports := []Report{
		{Source: "legacy", Class: sensor.ContextPlaying}, // no quality
		{Source: "modern", Class: sensor.ContextWriting, Quality: 0.9, HasQuality: true},
	}
	c, err := Fuse(reports, QualityWeighted)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != sensor.ContextWriting {
		t.Errorf("fused = %v, want the annotated report to win", c.Class)
	}
}

func TestFuseSkipsUnknownAndErrors(t *testing.T) {
	reports := []Report{
		{Source: "a", Class: sensor.ContextUnknown},
	}
	if _, err := Fuse(reports, MajorityVote); !errors.Is(err, ErrNoReports) {
		t.Errorf("all-unknown: %v", err)
	}
	if _, err := Fuse(nil, MajorityVote); !errors.Is(err, ErrNoReports) {
		t.Errorf("empty: %v", err)
	}
	good := []Report{{Source: "a", Class: sensor.ContextLying}}
	if _, err := Fuse(good, Strategy(99)); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("unknown strategy: %v", err)
	}
}

func TestFuseTieBreaksDeterministically(t *testing.T) {
	reports := []Report{
		{Source: "a", Class: sensor.ContextPlaying},
		{Source: "b", Class: sensor.ContextLying},
	}
	c, err := Fuse(reports, MajorityVote)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != sensor.ContextLying {
		t.Errorf("tie broke to %v, want lying (smaller identifier)", c.Class)
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{MajorityVote, QualityWeighted, BestQuality, Strategy(42)} {
		if s.String() == "" {
			t.Errorf("empty name for %d", int(s))
		}
	}
}

func TestAggregatorHysteresis(t *testing.T) {
	var a Aggregator
	a.History = 4
	// Sustained writing establishes a session.
	for i := 0; i < 4; i++ {
		a.Observe(sensor.ContextWriting)
	}
	if a.State() != RoomSession {
		t.Fatalf("state = %v, want session", a.State())
	}
	// One playing flicker does not flip the state.
	if got := a.Observe(sensor.ContextPlaying); got != RoomSession {
		t.Errorf("one flicker flipped the state to %v", got)
	}
	// Sustained playing does.
	for i := 0; i < 4; i++ {
		a.Observe(sensor.ContextPlaying)
	}
	if a.State() != RoomBreak {
		t.Errorf("state = %v, want break", a.State())
	}
	a.Reset()
	if a.State() != RoomUnknown {
		t.Error("reset did not clear state")
	}
}

func TestRoomStateString(t *testing.T) {
	for _, s := range []RoomState{RoomIdle, RoomSession, RoomBreak, RoomUnknown, RoomState(42)} {
		if s.String() == "" {
			t.Errorf("empty name for %d", int(s))
		}
	}
}

// fusionStack trains a shared classifier + measure for the experiment.
func fusionStack(t testing.TB, seed int64) (classify.Classifier, *core.Measure) {
	t.Helper()
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{Segments: []sensor.Segment{
			{Context: sensor.ContextLying, Duration: 10},
			{Context: sensor.ContextWriting, Duration: 10},
			{Context: sensor.ContextPlaying, Duration: 10},
		}}},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := core.Observe(clf, mixed)
	if err != nil {
		t.Fatal(err)
	}
	measure, err := core.Build(obs, nil, core.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return clf, measure
}

func TestRunExperimentQualityWeightingWins(t *testing.T) {
	clf, measure := fusionStack(t, 90)
	res, err := RunExperiment(clf, measure, ExperimentConfig{Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows == 0 {
		t.Fatal("no fused windows")
	}
	var majority, weighted float64
	for _, s := range res.Strategies {
		switch s.Strategy {
		case MajorityVote:
			majority = s.Accuracy
		case QualityWeighted:
			weighted = s.Accuracy
		}
	}
	// The paper's point: the quality measure tells the fuser which
	// reports to believe, so weighting must not lose to blind voting.
	if weighted < majority {
		t.Errorf("quality-weighted %.3f below majority %.3f", weighted, majority)
	}
	if weighted < 0.7 {
		t.Errorf("quality-weighted accuracy %.3f implausibly low", weighted)
	}
	if res.RoomAccuracy < 0.5 {
		t.Errorf("room aggregation accuracy %.3f too low", res.RoomAccuracy)
	}
	if out := res.Render(); !strings.Contains(out, "quality-weighted") {
		t.Error("render incomplete")
	}
}

func TestRunExperimentDeterministic(t *testing.T) {
	clf, measure := fusionStack(t, 92)
	a, err := RunExperiment(clf, measure, ExperimentConfig{Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment(clf, measure, ExperimentConfig{Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Strategies {
		if a.Strategies[i].Accuracy != b.Strategies[i].Accuracy {
			t.Fatal("experiment not deterministic")
		}
	}
}
