// Package fusion implements the second item of the paper's outlook (§5):
// "Our research will also look into how to support fusion and aggregation
// for higher level contexts … In order to process reasonable output,
// higher level context processors require a quality measure to decide
// which of the simpler context information to believe."
//
// A Fuser combines the context reports of several appliances observing the
// same situation into one consensus. Three strategies are provided; the
// experiments show that weighting each report by its CQM beats both
// quality-blind majority voting and trusting the single best source,
// because the measure tells the fuser exactly which reports to discount.
//
// On top of the per-window consensus, an Aggregator maps a history of
// fused contexts onto higher-level room states (idle, working session,
// break) — the "higher level contexts that may be able to classify complex
// situations" the paper envisions.
package fusion

import (
	"errors"
	"fmt"

	"cqm/internal/sensor"
)

// Fusion errors.
var (
	// ErrNoReports reports fusion over an empty report set.
	ErrNoReports = errors.New("fusion: no reports")
	// ErrUnknownStrategy reports an unsupported fusion strategy.
	ErrUnknownStrategy = errors.New("fusion: unknown strategy")
)

// Report is one low-level context report from an appliance.
type Report struct {
	// Source names the reporting appliance.
	Source string
	// Class is the context the appliance recognized.
	Class sensor.Context
	// Quality is the CQM q of the classification; valid when HasQuality.
	Quality float64
	// HasQuality marks reports carrying a quality annotation. Reports
	// without one (legacy appliances, ε states) are treated as minimally
	// trustworthy by quality-aware strategies.
	HasQuality bool
}

// Strategy selects how reports are combined.
type Strategy int

// Fusion strategies.
const (
	// MajorityVote counts one vote per report, ignoring quality — the
	// quality-blind baseline.
	MajorityVote Strategy = iota + 1
	// QualityWeighted weights each report's vote by its quality measure;
	// unannotated reports contribute a small floor weight.
	QualityWeighted
	// BestQuality adopts the single report with the highest quality.
	BestQuality
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case MajorityVote:
		return "majority-vote"
	case QualityWeighted:
		return "quality-weighted"
	case BestQuality:
		return "best-quality"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// floorWeight is the vote weight of reports without a quality annotation
// under quality-aware strategies: trusted a little, never fully.
const floorWeight = 0.1

// Consensus is the fused outcome.
type Consensus struct {
	// Class is the fused context.
	Class sensor.Context
	// Confidence aggregates the supporting weight behind Class as a
	// fraction of the total weight (1 = unanimous).
	Confidence float64
	// Supporters is the number of reports voting for Class.
	Supporters int
}

// Fuse combines the reports under the strategy. Reports with
// ContextUnknown are skipped; if nothing remains, ErrNoReports is
// returned.
func Fuse(reports []Report, strategy Strategy) (Consensus, error) {
	usable := reports[:0:0]
	for _, r := range reports {
		if r.Class != sensor.ContextUnknown {
			usable = append(usable, r)
		}
	}
	if len(usable) == 0 {
		return Consensus{}, ErrNoReports
	}
	switch strategy {
	case MajorityVote:
		return voteFuse(usable, func(Report) float64 { return 1 }), nil
	case QualityWeighted:
		return voteFuse(usable, func(r Report) float64 {
			if !r.HasQuality {
				return floorWeight
			}
			if r.Quality < floorWeight {
				return floorWeight
			}
			return r.Quality
		}), nil
	case BestQuality:
		best := usable[0]
		for _, r := range usable[1:] {
			if weightOf(r) > weightOf(best) {
				best = r
			}
		}
		count := 0
		for _, r := range usable {
			if r.Class == best.Class {
				count++
			}
		}
		return Consensus{Class: best.Class, Confidence: weightOf(best), Supporters: count}, nil
	default:
		return Consensus{}, fmt.Errorf("%w: %v", ErrUnknownStrategy, strategy)
	}
}

func weightOf(r Report) float64 {
	if !r.HasQuality {
		return floorWeight
	}
	return r.Quality
}

// voteFuse tallies weighted votes per class; ties break toward the
// smaller class identifier for determinism.
func voteFuse(reports []Report, weight func(Report) float64) Consensus {
	votes := make(map[sensor.Context]float64, 3)
	counts := make(map[sensor.Context]int, 3)
	var total float64
	for _, r := range reports {
		w := weight(r)
		votes[r.Class] += w
		counts[r.Class]++
		total += w
	}
	best := sensor.ContextUnknown
	bestW := -1.0
	for _, c := range sensor.AllContexts() {
		if w, ok := votes[c]; ok && w > bestW {
			best, bestW = c, w
		}
	}
	conf := 0.0
	if total > 0 {
		conf = bestW / total
	}
	return Consensus{Class: best, Confidence: conf, Supporters: counts[best]}
}
