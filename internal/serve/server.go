package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/obs"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// Admission errors returned by Submit. Fronts translate them into 429 /
// 503 / reject frames; anything else from Submit is a request-validation
// error (a protocol fault of the caller).
var (
	// ErrOverloaded reports a full shard queue — explicit backpressure.
	ErrOverloaded = errors.New("serve: shard queue full")
	// ErrDraining reports a server that has stopped admitting work.
	ErrDraining = errors.New("serve: server draining")
	// ErrUnavailable reports that no model is currently loaded.
	ErrUnavailable = errors.New("serve: no model loaded")
	// ErrInternal reports a scoring failure that is not the ε state.
	ErrInternal = errors.New("serve: internal scoring failure")
)

// Config parameterizes a Server.
type Config struct {
	// Shards is the worker-shard count; sources are assigned to shards
	// by consistent hashing. Default 1.
	Shards int
	// QueueDepth bounds each shard's queue; a full queue rejects with
	// ErrOverloaded. Default 1024.
	QueueDepth int
	// BatchSize caps how many queued requests are folded into one
	// ScoreBatch call. Default 256.
	BatchSize int
	// Threshold is the acceptance threshold s applied to q.
	Threshold float64
	// Handle supplies the served model; it may be hot-swapped at any
	// time (ckpt.ModelWatcher). Each batch loads the handle exactly
	// once, so a swap never mixes two models inside one batch.
	Handle *ckpt.Handle
	// Metrics, when non-nil, receives cqm_serve_* series.
	Metrics *obs.Registry
	// Quality, when non-nil, receives one engine observation per scored
	// request (source = the request's node id).
	Quality *quality.Engine
	// BatchObserver, when non-nil, is called synchronously after every
	// batch with the model that scored it and the per-request outcomes
	// (the slice is reused across batches — copy to retain). Test and
	// analytics hook; keep it fast.
	BatchObserver func(m *core.Measure, outs []Outcome)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	return c
}

// Outcome is the scored result of one admitted request.
type Outcome struct {
	// Status is the decision: accepted, discarded, or ε.
	Status Status
	// Q is the quality value (meaningful unless Status is ε).
	Q float64
}

// result travels from a shard back to the submitting goroutine.
type result struct {
	out    Outcome
	reject RejectCode // RejectNone when scored
}

// task is one admitted request waiting on a shard queue. Tasks are pooled:
// the done channel is allocated once and reused across requests.
type task struct {
	req    Request
	source string
	done   chan result
}

// Stats is a consistent snapshot of the server's accounting counters.
// After Drain returns, Admitted == Accepted+Discarded+Epsilon+
// RejectedUnavailable+RejectedInternal: every admitted request was scored
// or explicitly rejected, never silently dropped.
type Stats struct {
	// Admitted counts requests that entered a shard queue.
	Admitted uint64
	// Accepted, Discarded, and Epsilon count scoring outcomes.
	Accepted  uint64
	Discarded uint64
	Epsilon   uint64
	// RejectedOverload counts admissions refused on a full queue.
	RejectedOverload uint64
	// RejectedDraining counts admissions refused during drain.
	RejectedDraining uint64
	// RejectedUnavailable counts admitted requests rejected because no
	// model was loaded when their batch ran.
	RejectedUnavailable uint64
	// RejectedInternal counts admitted requests rejected on a non-ε
	// scoring failure.
	RejectedInternal uint64
	// Batches counts ScoreBatch invocations across all shards.
	Batches uint64
	// MaxBatch is the largest batch folded so far.
	MaxBatch uint64
}

// Scored returns the number of admitted requests that produced a decision.
func (s Stats) Scored() uint64 { return s.Accepted + s.Discarded + s.Epsilon }

// Server is the sharded scoring service: admission control in Submit,
// per-shard batching workers, and a drain protocol that accounts for
// every admitted request.
type Server struct {
	cfg    Config
	ring   *Ring
	shards []*shard
	met    serveMetrics
	pool   sync.Pool

	// admission guards the draining flag against in-flight Submits:
	// admission is under RLock, the drain transition under Lock.
	admission sync.RWMutex
	draining  bool
	inflight  sync.WaitGroup
	drained   chan struct{} // closed once all shards have exited
	drainOnce sync.Once

	admitted    atomic.Uint64
	accepted    atomic.Uint64
	discarded   atomic.Uint64
	epsilon     atomic.Uint64
	rejOverload atomic.Uint64
	rejDraining atomic.Uint64
	rejNoModel  atomic.Uint64
	rejInternal atomic.Uint64
	batches     atomic.Uint64
	maxBatch    atomic.Uint64
}

// shard is one worker: a bounded task queue and reusable batch buffers.
type shard struct {
	srv   *Server
	tasks chan *task
	batch []*task
	obs   []core.Observation
	outs  []Outcome
	done  chan struct{}
}

// New validates cfg, builds the shard ring, and starts the shard workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Handle == nil {
		return nil, fmt.Errorf("serve: config needs a model handle")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("serve: shard count %d < 1", cfg.Shards)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: queue depth %d < 1", cfg.QueueDepth)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("serve: batch size %d < 1", cfg.BatchSize)
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("serve: threshold %v outside [0,1]", cfg.Threshold)
	}
	ring, err := NewRing(cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		ring:    ring,
		met:     newServeMetrics(cfg.Metrics),
		drained: make(chan struct{}),
	}
	s.pool.New = func() any { return &task{done: make(chan result, 1)} }
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{
			srv:   s,
			tasks: make(chan *task, cfg.QueueDepth),
			batch: make([]*task, 0, cfg.BatchSize),
			obs:   make([]core.Observation, 0, cfg.BatchSize),
			outs:  make([]Outcome, 0, cfg.BatchSize),
			done:  make(chan struct{}),
		}
		s.shards[i] = sh
		go sh.run()
	}
	return s, nil
}

// Threshold returns the acceptance threshold the server applies.
func (s *Server) Threshold() float64 { return s.cfg.Threshold }

// Shards returns the worker-shard count.
func (s *Server) Shards() int { return s.cfg.Shards }

// ShardOf exposes the shard assignment of a source id (the consistent-hash
// map the fronts and tests share).
func (s *Server) ShardOf(source []byte) int { return s.ring.Shard(source) }

// Submit scores one request through its source's shard, blocking until the
// shard answers. The error is nil for a scored outcome, or one of the
// admission errors (ErrOverloaded, ErrDraining, ErrUnavailable,
// ErrInternal); a request failing Validate is returned unscored with the
// validation error.
func (s *Server) Submit(req Request) (Outcome, error) {
	if err := req.Validate(); err != nil {
		return Outcome{}, err
	}
	t := s.pool.Get().(*task)
	t.req = req
	t.source = req.Node.String()

	sh := s.shards[s.ring.Shard(req.Node[:])]
	s.admission.RLock()
	if s.draining {
		s.admission.RUnlock()
		s.pool.Put(t)
		s.rejDraining.Add(1)
		s.met.reject(RejectDraining)
		return Outcome{}, ErrDraining
	}
	select {
	case sh.tasks <- t:
		s.inflight.Add(1)
		s.admitted.Add(1)
		s.admission.RUnlock()
	default:
		s.admission.RUnlock()
		s.pool.Put(t)
		s.rejOverload.Add(1)
		s.met.reject(RejectOverloaded)
		return Outcome{}, ErrOverloaded
	}
	s.met.admitted.Inc()

	r := <-t.done
	s.inflight.Done()
	t.req.Cues = nil // drop the reference so pooled tasks do not pin cue slices
	s.pool.Put(t)
	switch r.reject {
	case RejectNone:
		return r.out, nil
	case RejectUnavailable:
		return Outcome{}, ErrUnavailable
	default:
		return Outcome{}, ErrInternal
	}
}

// Drain stops admitting new requests, waits until every already-admitted
// request has been answered, and stops the shard workers. It is
// idempotent and safe to call concurrently with Submit: a Submit racing
// the transition either completes normally or reports ErrDraining.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.admission.Lock()
		s.draining = true
		s.admission.Unlock()
		// Every admitted task has been queued; wait for its answer.
		s.inflight.Wait()
		for _, sh := range s.shards {
			close(sh.tasks)
		}
		for _, sh := range s.shards {
			<-sh.done
		}
		close(s.drained)
	})
	<-s.drained
}

// Draining reports whether the server has begun (or finished) draining.
func (s *Server) Draining() bool {
	s.admission.RLock()
	defer s.admission.RUnlock()
	return s.draining
}

// Stats snapshots the accounting counters.
func (s *Server) Stats() Stats {
	return Stats{
		Admitted:            s.admitted.Load(),
		Accepted:            s.accepted.Load(),
		Discarded:           s.discarded.Load(),
		Epsilon:             s.epsilon.Load(),
		RejectedOverload:    s.rejOverload.Load(),
		RejectedDraining:    s.rejDraining.Load(),
		RejectedUnavailable: s.rejNoModel.Load(),
		RejectedInternal:    s.rejInternal.Load(),
		Batches:             s.batches.Load(),
		MaxBatch:            s.maxBatch.Load(),
	}
}

// run is the shard worker loop: block for the first task, fold every
// further queued task up to the batch cap without blocking, score the
// batch against a single model snapshot, and answer each task. This is
// the serving hot loop — its buffers are shard-owned and reused, so the
// steady state performs no allocation beyond ScoreBatch's own accounted
// buffers.
//
//cqm:hotpath
func (sh *shard) run() {
	defer close(sh.done)
	for {
		t, ok := <-sh.tasks
		if !ok {
			return
		}
		sh.batch = append(sh.batch[:0], t) //lint:ignore hotpath-alloc shard-owned buffer at fixed cap; append never grows past BatchSize
	fold:
		for len(sh.batch) < sh.srv.cfg.BatchSize {
			select {
			case t2, ok2 := <-sh.tasks:
				if !ok2 {
					break fold
				}
				sh.batch = append(sh.batch, t2) //lint:ignore hotpath-alloc shard-owned buffer at fixed cap; append never grows past BatchSize
			default:
				break fold
			}
		}
		sh.score()
	}
}

// score answers every task in the current batch. The model handle is
// loaded exactly once per batch: a hot swap lands between batches, never
// inside one.
func (sh *shard) score() {
	srv := sh.srv
	n := uint64(len(sh.batch))
	srv.batches.Add(1)
	for prev := srv.maxBatch.Load(); n > prev && !srv.maxBatch.CompareAndSwap(prev, n); prev = srv.maxBatch.Load() {
	}
	srv.met.batches.Inc()
	srv.met.batchSize.Observe(float64(n))

	m := srv.cfg.Handle.Load()
	if m == nil {
		sh.rejectAll(RejectUnavailable)
		return
	}
	sh.obs = sh.obs[:0]
	for _, t := range sh.batch {
		sh.obs = append(sh.obs, core.Observation{ //lint:ignore hotpath-alloc shard-owned buffer at fixed cap; append never grows past BatchSize
			Cues:  t.req.Cues,
			Class: sensor.ContextByID(int(t.req.ClassID)),
		})
	}
	qs, okv, err := m.ScoreBatch(sh.obs, nil)
	if err != nil {
		// ScoreBatch fails as a whole only on an unbuilt system or a
		// non-ε scoring error; both are explicit rejections, not drops.
		sh.rejectAll(RejectInternal)
		return
	}
	sh.outs = sh.outs[:0]
	for i, t := range sh.batch {
		var out Outcome
		if !okv[i] {
			out.Status = StatusEpsilon
			srv.epsilon.Add(1)
		} else if out.Q = qs[i]; out.Q > srv.cfg.Threshold {
			out.Status = StatusAccepted
			srv.accepted.Add(1)
		} else {
			out.Status = StatusDiscarded
			srv.discarded.Add(1)
		}
		srv.met.scored(out.Status)
		if srv.cfg.Quality != nil {
			srv.cfg.Quality.Observe(quality.Observation{
				Source: t.source,
				At:     float64(t.req.SentMillis) / 1000,
				Q:      out.Q,
				HasQ:   out.Status != StatusEpsilon,
			})
		}
		sh.outs = append(sh.outs, out) //lint:ignore hotpath-alloc shard-owned buffer at fixed cap; append never grows past BatchSize
		t.done <- result{out: out}
	}
	if srv.cfg.BatchObserver != nil {
		srv.cfg.BatchObserver(m, sh.outs)
	}
}

// rejectAll answers the whole batch with one explicit rejection code.
func (sh *shard) rejectAll(code RejectCode) {
	srv := sh.srv
	for _, t := range sh.batch {
		if code == RejectUnavailable {
			srv.rejNoModel.Add(1)
		} else {
			srv.rejInternal.Add(1)
		}
		srv.met.reject(code)
		t.done <- result{reject: code}
	}
}
