package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/obs"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// Admission errors returned by Submit. Fronts translate them into 429 /
// 503 / reject frames; anything else from Submit is a request-validation
// error (a protocol fault of the caller).
var (
	// ErrOverloaded reports a full shard queue — explicit backpressure.
	ErrOverloaded = errors.New("serve: shard queue full")
	// ErrDraining reports a server that has stopped admitting work.
	ErrDraining = errors.New("serve: server draining")
	// ErrUnavailable reports that no model is currently loaded.
	ErrUnavailable = errors.New("serve: no model loaded")
	// ErrInternal reports a scoring failure that is not the ε state.
	ErrInternal = errors.New("serve: internal scoring failure")
	// ErrDeadline reports an admitted request whose deadline budget
	// expired while it waited on a shard queue; the server rejects it
	// instead of spending a ScoreBatch slot on an answer nobody wants.
	ErrDeadline = errors.New("serve: deadline expired before scoring")
	// ErrShed reports an admitted request dropped by the CoDel-style
	// adaptive load shedder: queue sojourn stayed above the target for a
	// full interval, so the shard traded this request for queue health.
	ErrShed = errors.New("serve: shed on sustained queue delay")
)

// Config parameterizes a Server.
type Config struct {
	// Shards is the worker-shard count; sources are assigned to shards
	// by consistent hashing. Default 1.
	Shards int
	// QueueDepth bounds each shard's queue; a full queue rejects with
	// ErrOverloaded. Default 1024.
	QueueDepth int
	// BatchSize caps how many queued requests are folded into one
	// ScoreBatch call. Default 256.
	BatchSize int
	// Threshold is the acceptance threshold s applied to q.
	Threshold float64
	// Handle supplies the served model; it may be hot-swapped at any
	// time (ckpt.ModelWatcher). Each batch loads the handle exactly
	// once, so a swap never mixes two models inside one batch.
	Handle *ckpt.Handle
	// Metrics, when non-nil, receives cqm_serve_* series.
	Metrics *obs.Registry
	// Quality, when non-nil, receives one engine observation per scored
	// request (source = the request's node id).
	Quality *quality.Engine
	// BatchObserver, when non-nil, is called synchronously after every
	// batch with the model that scored it and the per-request outcomes
	// (the slice is reused across batches — copy to retain). Test and
	// analytics hook; keep it fast.
	BatchObserver func(m *core.Measure, outs []Outcome)
	// DecisionObserver, when non-nil, is called synchronously per scored
	// request with the source, the request's virtual time in seconds, its
	// cues and class id, and the outcome — the adaptation supervisor's
	// decision feed. The cues slice is the request's own; copy to retain.
	// Keep it fast: it runs on the shard's scoring path.
	DecisionObserver func(source string, at float64, cues []float64, classID int, out Outcome)
	// ShedTarget enables CoDel-style adaptive load shedding: when the
	// queue sojourn of dequeued requests stays above this target for a
	// full ShedInterval, shards start rejecting (RejectShed) at an
	// inverse-sqrt-accelerating rate until sojourn drops back under the
	// target. Zero disables shedding (only the fixed queue bound
	// applies).
	ShedTarget time.Duration
	// ShedInterval is the CoDel observation interval. Default 100ms.
	ShedInterval time.Duration
	// IdleTimeout bounds how long a binary connection may go without
	// completing a frame in either direction before the server hangs up —
	// the defence against stalled and byte-dribbling (slow-loris) peers.
	// Zero means the 2-minute default; negative disables the deadlines.
	IdleTimeout time.Duration
	// Clock overrides the time source (admission stamps, deadline and
	// shedding decisions). Test hook; nil means time.Now.
	Clock func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.ShedInterval == 0 {
		c.ShedInterval = 100 * time.Millisecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Outcome is the scored result of one admitted request.
type Outcome struct {
	// Status is the decision: accepted, discarded, or ε.
	Status Status
	// Q is the quality value (meaningful unless Status is ε).
	Q float64
}

// result travels from a shard back to the submitting goroutine.
type result struct {
	out    Outcome
	reject RejectCode // RejectNone when scored
}

// task is one admitted request waiting on a shard queue. Tasks are pooled:
// the done channel is allocated once and reused across requests.
type task struct {
	req    Request
	source string
	done   chan result
	// enqueued is the admission stamp feeding the sojourn-time shedder.
	enqueued time.Time
	// deadline is the absolute expiry derived from the request's budget;
	// the zero value means no deadline.
	deadline time.Time
}

// Stats is a consistent snapshot of the server's accounting counters.
// After Drain returns, Admitted == Scored() + AdmittedRejects(): every
// admitted request was scored or explicitly rejected with a typed reason,
// never silently dropped — the invariant holds across shard panics,
// deadline expiry, and load shedding.
type Stats struct {
	// Admitted counts requests that entered a shard queue.
	Admitted uint64
	// Accepted, Discarded, and Epsilon count scoring outcomes.
	Accepted  uint64
	Discarded uint64
	Epsilon   uint64
	// RejectedOverload counts admissions refused on a full queue.
	RejectedOverload uint64
	// RejectedDraining counts admissions refused during drain.
	RejectedDraining uint64
	// RejectedUnavailable counts admitted requests rejected because no
	// model was loaded when their batch ran.
	RejectedUnavailable uint64
	// RejectedInternal counts admitted requests rejected on a non-ε
	// scoring failure (including requests orphaned by a shard panic).
	RejectedInternal uint64
	// RejectedDeadline counts admitted requests whose deadline budget
	// expired before their batch ran.
	RejectedDeadline uint64
	// RejectedShed counts admitted requests dropped by the adaptive
	// queue-delay shedder.
	RejectedShed uint64
	// ShardRestarts counts shard workers restarted after a panic.
	ShardRestarts uint64
	// Batches counts ScoreBatch invocations across all shards.
	Batches uint64
	// MaxBatch is the largest batch folded so far.
	MaxBatch uint64
}

// Scored returns the number of admitted requests that produced a decision.
func (s Stats) Scored() uint64 { return s.Accepted + s.Discarded + s.Epsilon }

// AdmittedRejects returns the admitted requests answered with an explicit
// rejection instead of a score. Admitted == Scored() + AdmittedRejects()
// once the server has drained.
func (s Stats) AdmittedRejects() uint64 {
	return s.RejectedUnavailable + s.RejectedInternal + s.RejectedDeadline + s.RejectedShed
}

// Server is the sharded scoring service: admission control in Submit,
// per-shard batching workers, and a drain protocol that accounts for
// every admitted request.
type Server struct {
	cfg    Config
	ring   *Ring
	shards []*shard
	met    serveMetrics
	pool   sync.Pool

	// admission guards the draining flag against in-flight Submits:
	// admission is under RLock, the drain transition under Lock.
	admission sync.RWMutex
	draining  bool
	inflight  sync.WaitGroup
	drained   chan struct{} // closed once all shards have exited
	drainOnce sync.Once

	admitted    atomic.Uint64
	accepted    atomic.Uint64
	discarded   atomic.Uint64
	epsilon     atomic.Uint64
	rejOverload atomic.Uint64
	rejDraining atomic.Uint64
	rejNoModel  atomic.Uint64
	rejInternal atomic.Uint64
	rejDeadline atomic.Uint64
	rejShed     atomic.Uint64
	restarts    atomic.Uint64
	batches     atomic.Uint64
	maxBatch    atomic.Uint64
}

// shard is one worker: a bounded task queue and reusable batch buffers.
// Entries of batch are nilled as they are answered, so the panic
// supervisor can tell which tasks of an interrupted batch still owe a
// response.
type shard struct {
	srv   *Server
	tasks chan *task
	batch []*task
	obs   []core.Observation
	outs  []Outcome
	shed  codel
	done  chan struct{}
}

// New validates cfg, builds the shard ring, and starts the shard workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Handle == nil {
		return nil, fmt.Errorf("serve: config needs a model handle")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("serve: shard count %d < 1", cfg.Shards)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: queue depth %d < 1", cfg.QueueDepth)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("serve: batch size %d < 1", cfg.BatchSize)
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("serve: threshold %v outside [0,1]", cfg.Threshold)
	}
	if cfg.ShedTarget < 0 {
		return nil, fmt.Errorf("serve: shed target %v negative", cfg.ShedTarget)
	}
	if cfg.ShedInterval < 0 {
		return nil, fmt.Errorf("serve: shed interval %v negative", cfg.ShedInterval)
	}
	ring, err := NewRing(cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		ring:    ring,
		met:     newServeMetrics(cfg.Metrics),
		drained: make(chan struct{}),
	}
	s.pool.New = func() any { return &task{done: make(chan result, 1)} }
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{
			srv:   s,
			tasks: make(chan *task, cfg.QueueDepth),
			batch: make([]*task, 0, cfg.BatchSize),
			obs:   make([]core.Observation, 0, cfg.BatchSize),
			outs:  make([]Outcome, 0, cfg.BatchSize),
			shed:  codel{target: cfg.ShedTarget, interval: cfg.ShedInterval},
			done:  make(chan struct{}),
		}
		s.shards[i] = sh
		go sh.supervise()
	}
	return s, nil
}

// Threshold returns the acceptance threshold the server applies.
func (s *Server) Threshold() float64 { return s.cfg.Threshold }

// Shards returns the worker-shard count.
func (s *Server) Shards() int { return s.cfg.Shards }

// ShardOf exposes the shard assignment of a source id (the consistent-hash
// map the fronts and tests share).
func (s *Server) ShardOf(source []byte) int { return s.ring.Shard(source) }

// Submit scores one request through its source's shard, blocking until the
// shard answers. The error is nil for a scored outcome, or one of the
// admission errors (ErrOverloaded, ErrDraining, ErrUnavailable,
// ErrInternal); a request failing Validate is returned unscored with the
// validation error.
func (s *Server) Submit(req Request) (Outcome, error) {
	if err := req.Validate(); err != nil {
		return Outcome{}, err
	}
	t := s.pool.Get().(*task)
	t.req = req
	t.source = req.Node.String()
	t.enqueued = s.cfg.Clock()
	t.deadline = time.Time{}
	if req.DeadlineMillis > 0 {
		t.deadline = t.enqueued.Add(time.Duration(req.DeadlineMillis) * time.Millisecond)
	}

	sh := s.shards[s.ring.Shard(req.Node[:])]
	s.admission.RLock()
	if s.draining {
		s.admission.RUnlock()
		s.pool.Put(t)
		s.rejDraining.Add(1)
		s.met.reject(RejectDraining)
		return Outcome{}, ErrDraining
	}
	select {
	case sh.tasks <- t:
		s.inflight.Add(1)
		s.admitted.Add(1)
		s.admission.RUnlock()
	default:
		s.admission.RUnlock()
		s.pool.Put(t)
		s.rejOverload.Add(1)
		s.met.reject(RejectOverloaded)
		return Outcome{}, ErrOverloaded
	}
	s.met.admitted.Inc()

	r := <-t.done
	s.inflight.Done()
	t.req.Cues = nil // drop the reference so pooled tasks do not pin cue slices
	s.pool.Put(t)
	switch r.reject {
	case RejectNone:
		return r.out, nil
	case RejectUnavailable:
		return Outcome{}, ErrUnavailable
	case RejectDeadline:
		return Outcome{}, ErrDeadline
	case RejectShed:
		return Outcome{}, ErrShed
	default:
		return Outcome{}, ErrInternal
	}
}

// Drain stops admitting new requests, waits until every already-admitted
// request has been answered, and stops the shard workers. It is
// idempotent and safe to call concurrently with Submit: a Submit racing
// the transition either completes normally or reports ErrDraining.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.admission.Lock()
		s.draining = true
		s.admission.Unlock()
		// Every admitted task has been queued; wait for its answer.
		s.inflight.Wait()
		for _, sh := range s.shards {
			close(sh.tasks)
		}
		for _, sh := range s.shards {
			<-sh.done
		}
		close(s.drained)
	})
	<-s.drained
}

// Draining reports whether the server has begun (or finished) draining.
func (s *Server) Draining() bool {
	s.admission.RLock()
	defer s.admission.RUnlock()
	return s.draining
}

// Stats snapshots the accounting counters.
func (s *Server) Stats() Stats {
	return Stats{
		Admitted:            s.admitted.Load(),
		Accepted:            s.accepted.Load(),
		Discarded:           s.discarded.Load(),
		Epsilon:             s.epsilon.Load(),
		RejectedOverload:    s.rejOverload.Load(),
		RejectedDraining:    s.rejDraining.Load(),
		RejectedUnavailable: s.rejNoModel.Load(),
		RejectedInternal:    s.rejInternal.Load(),
		RejectedDeadline:    s.rejDeadline.Load(),
		RejectedShed:        s.rejShed.Load(),
		ShardRestarts:       s.restarts.Load(),
		Batches:             s.batches.Load(),
		MaxBatch:            s.maxBatch.Load(),
	}
}

// supervise keeps the shard worker alive: a panic anywhere in the scoring
// path (a hostile model, an observer hook) answers the interrupted batch's
// unanswered tasks with RejectInternal — the drain invariant survives the
// crash — then restarts the worker loop. The done channel closes only on
// the worker's normal exit (tasks channel closed by Drain).
func (sh *shard) supervise() {
	defer close(sh.done)
	for !sh.runRecovering() {
		sh.srv.restarts.Add(1)
		sh.srv.met.restarts.Inc()
	}
}

// runRecovering runs the worker loop once, converting a panic into
// explicit rejections of the unanswered remainder of the current batch.
// It reports whether the loop exited normally.
func (sh *shard) runRecovering() (normal bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.answerUnanswered(RejectInternal)
		}
	}()
	sh.run()
	return true
}

// answerUnanswered rejects every batch entry not yet nilled by an answer,
// then empties the batch so a later crash cannot double-answer.
func (sh *shard) answerUnanswered(code RejectCode) {
	for i, t := range sh.batch {
		if t == nil {
			continue
		}
		sh.batch[i] = nil
		sh.answerReject(t, code)
	}
	sh.batch = sh.batch[:0]
}

// answerReject counts and answers one explicit per-task rejection.
func (sh *shard) answerReject(t *task, code RejectCode) {
	srv := sh.srv
	switch code {
	case RejectUnavailable:
		srv.rejNoModel.Add(1)
	case RejectDeadline:
		srv.rejDeadline.Add(1)
	case RejectShed:
		srv.rejShed.Add(1)
	default:
		srv.rejInternal.Add(1)
	}
	srv.met.reject(code)
	t.done <- result{reject: code}
}

// run is the shard worker loop: block for the first task, fold every
// further queued task up to the batch cap without blocking, score the
// batch against a single model snapshot, and answer each task. This is
// the serving hot loop — its buffers are shard-owned and reused, so the
// steady state performs no allocation beyond ScoreBatch's own accounted
// buffers.
//
//cqm:hotpath
func (sh *shard) run() {
	for {
		t, ok := <-sh.tasks
		if !ok {
			return
		}
		sh.batch = append(sh.batch[:0], t) //lint:ignore hotpath-alloc shard-owned buffer at fixed cap; append never grows past BatchSize
	fold:
		for len(sh.batch) < sh.srv.cfg.BatchSize {
			select {
			case t2, ok2 := <-sh.tasks:
				if !ok2 {
					break fold
				}
				sh.batch = append(sh.batch, t2) //lint:ignore hotpath-alloc shard-owned buffer at fixed cap; append never grows past BatchSize
			default:
				break fold
			}
		}
		sh.score()
	}
}

// score answers every task in the current batch: expired and shed tasks
// with typed rejections before a ScoreBatch slot is spent, the rest with
// scoring outcomes. The model handle is loaded exactly once per batch: a
// hot swap lands between batches, never inside one.
func (sh *shard) score() {
	srv := sh.srv
	n := uint64(len(sh.batch))
	srv.batches.Add(1)
	for prev := srv.maxBatch.Load(); n > prev && !srv.maxBatch.CompareAndSwap(prev, n); prev = srv.maxBatch.Load() {
	}
	srv.met.batches.Inc()
	srv.met.batchSize.Observe(float64(n))

	// Dequeue-time admission: one clock read covers the whole batch.
	// Expired deadlines answer RejectDeadline, the CoDel shedder answers
	// RejectShed, and the batch compacts in place to the live remainder
	// (the tail is nilled so the panic supervisor sees answered slots).
	now := srv.cfg.Clock()
	live := sh.batch[:0]
	for _, t := range sh.batch {
		srv.met.sojourn(now.Sub(t.enqueued))
		switch {
		case !t.deadline.IsZero() && now.After(t.deadline):
			sh.answerReject(t, RejectDeadline)
		case sh.shed.drop(now, now.Sub(t.enqueued)):
			sh.answerReject(t, RejectShed)
		default:
			live = append(live, t) //lint:ignore hotpath-alloc in-place filter over the shard-owned batch; capacity never grows
		}
	}
	for i := len(live); i < len(sh.batch); i++ {
		sh.batch[i] = nil
	}
	sh.batch = live
	if len(sh.batch) == 0 {
		return
	}

	m := srv.cfg.Handle.Load()
	if m == nil {
		sh.answerUnanswered(RejectUnavailable)
		return
	}
	sh.obs = sh.obs[:0]
	for _, t := range sh.batch {
		sh.obs = append(sh.obs, core.Observation{ //lint:ignore hotpath-alloc shard-owned buffer at fixed cap; append never grows past BatchSize
			Cues:  t.req.Cues,
			Class: sensor.ContextByID(int(t.req.ClassID)),
		})
	}
	qs, okv, err := m.ScoreBatch(sh.obs, nil)
	if err != nil {
		// ScoreBatch fails as a whole only on an unbuilt system or a
		// non-ε scoring error; both are explicit rejections, not drops.
		sh.answerUnanswered(RejectInternal)
		return
	}
	sh.outs = sh.outs[:0]
	for i, t := range sh.batch {
		var out Outcome
		if !okv[i] {
			out.Status = StatusEpsilon
			srv.epsilon.Add(1)
		} else if out.Q = qs[i]; out.Q > srv.cfg.Threshold {
			out.Status = StatusAccepted
			srv.accepted.Add(1)
		} else {
			out.Status = StatusDiscarded
			srv.discarded.Add(1)
		}
		srv.met.scored(out.Status)
		if srv.cfg.Quality != nil {
			srv.cfg.Quality.Observe(quality.Observation{
				Source: t.source,
				At:     float64(t.req.SentMillis) / 1000,
				Q:      out.Q,
				HasQ:   out.Status != StatusEpsilon,
			})
		}
		if srv.cfg.DecisionObserver != nil {
			srv.cfg.DecisionObserver(t.source, float64(t.req.SentMillis)/1000,
				t.req.Cues, int(t.req.ClassID), out)
		}
		sh.outs = append(sh.outs, out) //lint:ignore hotpath-alloc shard-owned buffer at fixed cap; append never grows past BatchSize
		sh.batch[i] = nil
		t.done <- result{out: out}
	}
	sh.batch = sh.batch[:0]
	if srv.cfg.BatchObserver != nil {
		srv.cfg.BatchObserver(m, sh.outs)
	}
}

// codel is the per-shard CoDel-style shedding state (Nichols & Jacobson's
// controlled-delay AQM, transplanted from packet queues to the shard task
// queue). The signal is queue sojourn time at dequeue — the only statistic
// that directly measures what a client feels — rather than queue length,
// which a bursty arrival process renders meaningless. Sojourn below target
// resets the controller; sojourn above target for a full interval enters
// the dropping state, where every drop advances the next one by
// interval/sqrt(count), the control law that nudges the queue back to the
// target delay without collapsing goodput.
type codel struct {
	target   time.Duration
	interval time.Duration

	firstAbove time.Time // when the current above-target excursion ends its grace interval
	dropNext   time.Time // next scheduled drop while dropping
	dropping   bool
	count      int // drops in the current dropping episode
}

// drop decides whether the task dequeued at now after the given sojourn
// is shed. A zero target disables the controller.
func (c *codel) drop(now time.Time, sojourn time.Duration) bool {
	if c.target <= 0 {
		return false
	}
	if sojourn < c.target {
		// Below target: leave dropping state, forget the excursion.
		c.firstAbove = time.Time{}
		c.dropping = false
		return false
	}
	if c.firstAbove.IsZero() {
		// First above-target observation: grace of one interval.
		c.firstAbove = now.Add(c.interval)
		return false
	}
	if !c.dropping {
		if now.Before(c.firstAbove) {
			return false
		}
		c.dropping = true
		// Resume the drop cadence near where the last episode left off
		// (CoDel's hysteresis) rather than from scratch.
		if c.count > 2 {
			c.count -= 2
		} else {
			c.count = 1
		}
		c.dropNext = now
	}
	if now.Before(c.dropNext) {
		return false
	}
	c.count++
	c.dropNext = now.Add(time.Duration(float64(c.interval) / math.Sqrt(float64(c.count))))
	return true
}
