package serve

import (
	"reflect"
	"testing"

	"cqm/internal/core"
	"cqm/internal/sensor"
)

func TestWorkloadValidates(t *testing.T) {
	if _, err := NewWorkload(WorkloadConfig{FaultFraction: 1.5}); err == nil {
		t.Error("fault fraction 1.5 accepted")
	}
	if _, err := NewWorkload(WorkloadConfig{ErrorRate: -0.1}); err == nil {
		t.Error("error rate -0.1 accepted")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a, err := NewWorkload(WorkloadConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkload(WorkloadConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.Len() == 0 {
		t.Fatalf("lens: %d vs %d", a.Len(), b.Len())
	}
	for pen := 0; pen < 50; pen++ {
		for round := 0; round < 4; round++ {
			ia, ib := a.Item(pen, round), b.Item(pen, round)
			if !reflect.DeepEqual(ia, ib) {
				t.Fatalf("pen %d round %d: %+v vs %+v", pen, round, ia, ib)
			}
		}
	}
	// A different seed replays different traffic.
	c, err := NewWorkload(WorkloadConfig{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for pen := 0; pen < 50; pen++ {
		if reflect.DeepEqual(a.Item(pen, 0), c.Item(pen, 0)) {
			same++
		}
	}
	if same == 50 {
		t.Error("seeds 11 and 12 produced identical traffic")
	}
}

func TestWorkloadItemsAreValidRequests(t *testing.T) {
	w, err := NewWorkload(WorkloadConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for pen := 0; pen < 20; pen++ {
		item := w.Item(pen, pen)
		req := Request{Node: PenNode(pen), Seq: uint16(pen), ClassID: item.ClassID, Cues: item.Cues}
		if err := req.Validate(); err != nil {
			t.Fatalf("pen %d item invalid: %v", pen, err)
		}
		if _, err := EncodeRequest(req); err != nil {
			t.Fatalf("pen %d item unencodable: %v", pen, err)
		}
	}
}

func TestWorkloadItemIsPure(t *testing.T) {
	w, err := NewWorkload(WorkloadConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Item must be a pure function of (pen, round) — a million pens keep
	// no per-pen state.
	for trial := 0; trial < 3; trial++ {
		if !reflect.DeepEqual(w.Item(123456, 7), w.Item(123456, 7)) {
			t.Fatal("Item(123456, 7) not stable")
		}
	}
	// Different pens start at different pool offsets (hash-derived), so
	// the simulated fleet does not move in lockstep.
	distinct := false
	base := w.Item(0, 0)
	for pen := 1; pen < 32 && !distinct; pen++ {
		if !reflect.DeepEqual(w.Item(pen, 0), base) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all pens replay the pool in lockstep")
	}
}

func TestPenNodeDistinct(t *testing.T) {
	seen := make(map[string]int)
	for i := 0; i < 10000; i++ {
		key := PenNode(i).String()
		if prev, dup := seen[key]; dup {
			t.Fatalf("pens %d and %d share node id %q", prev, i, key)
		}
		seen[key] = i
	}
}

func TestWrongClassNeverTruth(t *testing.T) {
	w, err := NewWorkload(WorkloadConfig{Seed: 9, ErrorRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With ErrorRate 1 every item's class was flipped; flipping must never
	// return the truth, so the pool still only contains recognized classes.
	for i := 0; i < w.Len(); i++ {
		item := w.items[i]
		ctx := sensor.ContextByID(int(item.ClassID))
		if ctx == sensor.ContextUnknown {
			t.Fatalf("item %d: class %d is not a recognized context", i, item.ClassID)
		}
	}
}

func TestTrainQuickModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training the quick stack takes seconds")
	}
	m, threshold, err := TrainQuickModel(21, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Rules() == 0 {
		t.Fatal("trained measure empty")
	}
	if threshold < 0 || threshold > 1 {
		t.Fatalf("threshold %v outside [0,1]", threshold)
	}
	// The trained model must actually serve the workload it will be asked
	// to score: at least one pool item scores without error.
	w, err := NewWorkload(WorkloadConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	item := w.Item(0, 0)
	if _, err := m.Score(item.Cues, sensor.ContextByID(int(item.ClassID))); err != nil && !core.IsEpsilon(err) {
		t.Fatalf("trained model cannot score workload item: %v", err)
	}
}
