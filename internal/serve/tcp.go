package serve

import (
	"bufio"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// connWorkers is the per-connection submit pool: the number of requests a
// single pipelined connection may have in flight. It is what lets shard
// batches form — a connection submitting serially would cap every batch
// at one frame.
const connWorkers = 128

// connQueue bounds the decoded-request and encoded-response queues of one
// connection.
const connQueue = 512

// ServeBinary accepts connections speaking the binary frame protocol
// until the listener is closed, then waits for the open connections'
// in-flight requests to finish. Each connection is fully pipelined:
// requests are decoded as fast as they arrive, scored concurrently by a
// bounded worker pool, and answered in completion order (clients match on
// the echoed node/seq). A malformed frame answers with one best-effort
// reject frame and closes the connection — a desynchronized byte stream
// cannot be re-synchronized safely. A peer that stalls mid-frame or
// dribbles bytes slower than Config.IdleTimeout per frame is disconnected
// rather than allowed to pin its serving goroutines forever.
func (s *Server) ServeBinary(ln net.Listener) error {
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			s.serveConn(conn)
		}()
	}
}

// armDeadline pushes conn's read or write deadline idle seconds into the
// future; a non-positive idle leaves the connection unbounded.
func armDeadline(set func(time.Time) error, idle time.Duration) {
	if idle <= 0 {
		return
	}
	_ = set(time.Now().Add(idle)) //lint:ignore nondeterminism connection deadlines are wall-clock by definition
}

// serveConn runs one connection: a reader decoding frames, a pool of
// submit workers, and a writer coalescing response frames into large
// writes.
func (s *Server) serveConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	idle := s.cfg.IdleTimeout

	reqCh := make(chan Request, connQueue)
	respCh := make(chan []byte, connQueue)

	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		writeResponses(conn, respCh, idle)
	}()

	var workers sync.WaitGroup
	for i := 0; i < connWorkers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for req := range reqCh {
				respCh <- s.answer(req)
			}
		}()
	}

	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		// The deadline is re-armed per frame: a whole frame must land
		// within the idle window, so a byte-dribbling client cannot hold
		// the reader beyond one window.
		armDeadline(conn.SetReadDeadline, idle)
		req, err := ReadRequest(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				// Best-effort protocol reject before closing; the client
				// cannot be answered per-request once framing is lost.
				if frame, encErr := EncodeResponse(Response{Rejected: true, Reject: RejectProtocol}); encErr == nil {
					respCh <- frame
				}
			}
			break
		}
		reqCh <- req
	}
	close(reqCh)
	workers.Wait()
	close(respCh)
	writer.Wait()
}

// answer scores one request and encodes its response frame.
func (s *Server) answer(req Request) []byte {
	out, err := s.Submit(req)
	resp := Response{Node: req.Node, Seq: req.Seq, SentMillis: req.SentMillis}
	if err != nil {
		resp.Rejected = true
		resp.Reject = rejectCodeFor(err)
	} else {
		resp.Status = out.Status
		resp.Q = out.Q
	}
	frame, encErr := EncodeResponse(resp)
	if encErr != nil {
		// Unreachable: outcomes are always encodable (q ∈ [0,1]); keep
		// the connection alive with an internal reject if it ever isn't.
		frame, _ = EncodeResponse(Response{Node: req.Node, Seq: req.Seq, SentMillis: req.SentMillis, Rejected: true, Reject: RejectInternal})
	}
	return frame
}

// writeResponses drains the response queue into the connection,
// coalescing bursts into one buffered write and flushing only when the
// queue momentarily empties. Each burst re-arms the write deadline, so a
// peer that stops reading cannot park the writer goroutine forever.
func writeResponses(conn net.Conn, respCh <-chan []byte, idle time.Duration) {
	w := bufio.NewWriterSize(conn, 64<<10)
	for {
		frame, ok := <-respCh
		if !ok {
			armDeadline(conn.SetWriteDeadline, idle)
			_ = w.Flush()
			return
		}
		armDeadline(conn.SetWriteDeadline, idle)
		if _, err := w.Write(frame); err != nil {
			drainFrames(respCh)
			return
		}
	coalesce: // fold everything already queued before paying a flush
		for {
			select {
			case more, ok := <-respCh:
				if !ok {
					_ = w.Flush()
					return
				}
				if _, err := w.Write(more); err != nil {
					drainFrames(respCh)
					return
				}
			default:
				break coalesce
			}
		}
		if err := w.Flush(); err != nil {
			drainFrames(respCh)
			return
		}
	}
}

// drainFrames discards queued responses after a write failure so the
// submit workers never block on a dead connection.
func drainFrames(respCh <-chan []byte) {
	for range respCh {
	}
}
