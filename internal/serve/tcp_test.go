package serve

import (
	"io"
	"net"
	"testing"
	"time"

	"cqm/internal/particle"
)

// binaryFront starts a binary listener for srv and returns its address.
func binaryFront(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(ln) }()
	t.Cleanup(func() {
		_ = ln.Close()
		if err := <-done; err != nil {
			t.Errorf("ServeBinary: %v", err)
		}
	})
	return ln.Addr().String()
}

// dialFront dials the binary front with a generous read deadline so a
// misbehaving server fails the test instead of hanging it.
func dialFront(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	return conn
}

// readFrames collects response frames until the server hangs up.
func readFrames(t *testing.T, conn net.Conn) []Response {
	t.Helper()
	var out []Response
	var frame [particle.FrameLen]byte
	for {
		if _, err := io.ReadFull(conn, frame[:]); err != nil {
			return out
		}
		resp, err := DecodeResponse(frame[:])
		if err != nil {
			t.Fatalf("undecodable response frame: %v", err)
		}
		out = append(out, resp)
	}
}

// halfClose signals write-side EOF while keeping the read side open.
func halfClose(t *testing.T, conn net.Conn) {
	t.Helper()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
		return
	}
	t.Fatal("connection does not support half-close")
}

func TestTCPShortHeaderRejectedAndClosed(t *testing.T) {
	srv := biasServer(t, 0.75, Config{})
	conn := dialFront(t, binaryFront(t, srv))

	// Ten bytes of a 23-byte header section, then EOF mid-frame.
	if _, err := conn.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	halfClose(t, conn)
	frames := readFrames(t, conn)
	if len(frames) != 1 || !frames[0].Rejected || frames[0].Reject != RejectProtocol {
		t.Fatalf("frames = %+v, want one protocol reject", frames)
	}
}

func TestTCPDropBetweenHeaderAndCues(t *testing.T) {
	srv := biasServer(t, 0.75, Config{})
	conn := dialFront(t, binaryFront(t, srv))

	frame, err := EncodeRequest(penRequest(1, 1, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver exactly the header and cue count, then hang up: the server
	// is mid-frame and must answer a best-effort protocol reject, not
	// stall or silently drop.
	if _, err := conn.Write(frame[:particle.FrameLen+1]); err != nil {
		t.Fatal(err)
	}
	halfClose(t, conn)
	frames := readFrames(t, conn)
	if len(frames) != 1 || !frames[0].Rejected || frames[0].Reject != RejectProtocol {
		t.Fatalf("frames = %+v, want one protocol reject", frames)
	}
}

func TestTCPCueCRCMismatchMidStream(t *testing.T) {
	srv := biasServer(t, 0.75, Config{})
	conn := dialFront(t, binaryFront(t, srv))

	good, err := EncodeRequest(penRequest(1, 7, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := EncodeRequest(penRequest(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	bad[particle.FrameLen+3] ^= 0xFF // flip a cue byte; the CRC no longer matches

	if _, err := conn.Write(append(append([]byte{}, good...), bad...)); err != nil {
		t.Fatal(err)
	}
	halfClose(t, conn)
	frames := readFrames(t, conn)
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want scored response + protocol reject: %+v", len(frames), frames)
	}
	// Completion order is not guaranteed between the scored response and
	// the reader's reject, so match by content.
	var scored, rejected int
	for _, f := range frames {
		switch {
		case !f.Rejected && f.Seq == 7:
			scored++
		case f.Rejected && f.Reject == RejectProtocol:
			rejected++
		default:
			t.Fatalf("unexpected frame %+v", f)
		}
	}
	if scored != 1 || rejected != 1 {
		t.Fatalf("scored %d, rejected %d: %+v", scored, rejected, frames)
	}
}

func TestTCPDribblerDisconnected(t *testing.T) {
	srv := biasServer(t, 0.75, Config{IdleTimeout: 100 * time.Millisecond})
	conn := dialFront(t, binaryFront(t, srv))

	frame, err := EncodeRequest(penRequest(1, 1, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	// Dribble one byte every 20ms: the whole frame would take ~660ms,
	// far past the 100ms per-frame idle window — the server must hang up
	// rather than wait the dribble out.
	start := time.Now()
	disconnected := false
	for _, b := range frame {
		if _, err := conn.Write([]byte{b}); err != nil {
			disconnected = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	frames := readFrames(t, conn)
	elapsed := time.Since(start)
	if !disconnected && len(frames) > 0 {
		t.Fatalf("dribbled frame was answered: %+v", frames)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dribbler held the connection %v", elapsed)
	}
	stats := srv.Stats()
	if stats.Admitted != 0 {
		t.Fatalf("dribbled partial frame was admitted: %+v", stats)
	}
}

func TestTCPIdleTimeoutDisabled(t *testing.T) {
	// A negative IdleTimeout must leave slow frames alone: the same
	// dribble cadence that gets disconnected above is answered here.
	srv := biasServer(t, 0.75, Config{IdleTimeout: -1})
	conn := dialFront(t, binaryFront(t, srv))

	frame, err := EncodeRequest(penRequest(1, 3, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range frame {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatalf("write: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	halfClose(t, conn)
	frames := readFrames(t, conn)
	if len(frames) != 1 || frames[0].Rejected || frames[0].Seq != 3 {
		t.Fatalf("frames = %+v, want one scored response", frames)
	}
}

func TestArmDeadlineDisabled(t *testing.T) {
	for _, idle := range []time.Duration{0, -time.Second} {
		armDeadline(func(time.Time) error {
			t.Fatalf("deadline armed with idle %v", idle)
			return nil
		}, idle)
	}
	var got time.Time
	armDeadline(func(d time.Time) error { got = d; return nil }, time.Minute)
	if time.Until(got) < 50*time.Second {
		t.Fatalf("deadline %v not ~1 minute out", got)
	}
}

func TestNewHTTPServerHardenedTimeouts(t *testing.T) {
	// Regression pin: the HTTP front must never ship with a bare
	// &http.Server{} again — every slow-client timeout is set.
	s := NewHTTPServer(nil)
	if s.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow-loris headers can pin connections")
	}
	if s.ReadTimeout <= 0 || s.WriteTimeout <= 0 {
		t.Error("Read/Write timeouts unset: a stalled exchange can pin a goroutine")
	}
	if s.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: dead keep-alive connections are never reclaimed")
	}
}
