package serve

import (
	"time"

	"cqm/internal/obs"
)

// Metric names of the serving layer.
const (
	// MetricAdmitted counts requests accepted into a shard queue.
	MetricAdmitted = "cqm_serve_admitted_total"
	// MetricRejected counts explicit rejections, labelled by reason.
	MetricRejected = "cqm_serve_rejected_total"
	// MetricScored counts scored requests, labelled by status.
	MetricScored = "cqm_serve_scored_total"
	// MetricBatches counts ScoreBatch invocations across all shards.
	MetricBatches = "cqm_serve_batches_total"
	// MetricBatchSize is the distribution of frames folded per batch.
	MetricBatchSize = "cqm_serve_batch_size"
	// MetricQueueDepth is the current depth of each shard queue.
	MetricQueueDepth = "cqm_serve_queue_depth"
	// MetricShardRestarts counts shard workers restarted after a panic.
	MetricShardRestarts = "cqm_serve_shard_restarts_total"
	// MetricQueueSojourn is the distribution of queue sojourn times in
	// milliseconds, observed at dequeue — the load shedder's signal.
	MetricQueueSojourn = "cqm_serve_queue_sojourn_ms"
)

// batchSizeBuckets cover 1..the largest plausible batch in powers of two.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// sojournBuckets cover 10µs..10s of queue delay in decades with a 1-2-5
// ladder, in milliseconds.
var sojournBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// serveMetrics are the pre-resolved serving metrics; the zero value is
// instrumentation off, one nil-check per update.
type serveMetrics struct {
	admitted     *obs.Counter
	rejOverload  *obs.Counter
	rejDraining  *obs.Counter
	rejNoModel   *obs.Counter
	rejInternal  *obs.Counter
	rejDeadline  *obs.Counter
	rejShed      *obs.Counter
	accepted     *obs.Counter
	discarded    *obs.Counter
	epsilon      *obs.Counter
	batches      *obs.Counter
	restarts     *obs.Counter
	batchSize    *obs.Histogram
	queueSojourn *obs.Histogram
}

// newServeMetrics resolves the server's metrics once.
func newServeMetrics(reg *obs.Registry) serveMetrics {
	if reg == nil {
		return serveMetrics{}
	}
	reg.Help(MetricAdmitted, "Requests admitted into a shard queue.")
	reg.Help(MetricRejected, "Requests explicitly rejected, by reason.")
	reg.Help(MetricScored, "Requests scored, by decision status.")
	reg.Help(MetricBatches, "ScoreBatch invocations across all shards.")
	reg.Help(MetricBatchSize, "Frames folded into each ScoreBatch call.")
	reg.Help(MetricShardRestarts, "Shard workers restarted after a panic.")
	reg.Help(MetricQueueSojourn, "Queue sojourn at dequeue in milliseconds.")
	return serveMetrics{
		admitted:     reg.Counter(MetricAdmitted),
		rejOverload:  reg.Counter(MetricRejected, "reason", RejectOverloaded.String()),
		rejDraining:  reg.Counter(MetricRejected, "reason", RejectDraining.String()),
		rejNoModel:   reg.Counter(MetricRejected, "reason", RejectUnavailable.String()),
		rejInternal:  reg.Counter(MetricRejected, "reason", RejectInternal.String()),
		rejDeadline:  reg.Counter(MetricRejected, "reason", RejectDeadline.String()),
		rejShed:      reg.Counter(MetricRejected, "reason", RejectShed.String()),
		accepted:     reg.Counter(MetricScored, "status", StatusAccepted.String()),
		discarded:    reg.Counter(MetricScored, "status", StatusDiscarded.String()),
		epsilon:      reg.Counter(MetricScored, "status", StatusEpsilon.String()),
		batches:      reg.Counter(MetricBatches),
		restarts:     reg.Counter(MetricShardRestarts),
		batchSize:    reg.Histogram(MetricBatchSize, batchSizeBuckets),
		queueSojourn: reg.Histogram(MetricQueueSojourn, sojournBuckets),
	}
}

// reject tallies one explicit rejection.
func (m serveMetrics) reject(code RejectCode) {
	switch code {
	case RejectOverloaded:
		m.rejOverload.Inc()
	case RejectDraining:
		m.rejDraining.Inc()
	case RejectUnavailable:
		m.rejNoModel.Inc()
	case RejectDeadline:
		m.rejDeadline.Inc()
	case RejectShed:
		m.rejShed.Inc()
	default:
		m.rejInternal.Inc()
	}
}

// sojourn observes one dequeue-time queue delay.
func (m serveMetrics) sojourn(d time.Duration) {
	m.queueSojourn.Observe(float64(d) / float64(time.Millisecond))
}

// scored tallies one scoring outcome.
func (m serveMetrics) scored(s Status) {
	switch s {
	case StatusAccepted:
		m.accepted.Inc()
	case StatusDiscarded:
		m.discarded.Inc()
	default:
		m.epsilon.Inc()
	}
}
