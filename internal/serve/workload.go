package serve

import (
	"fmt"
	"math/rand"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/fault"
	"cqm/internal/feature"
	"cqm/internal/particle"
	"cqm/internal/sensor"
)

// Item is one pre-generated scoring request payload: a realistic cue
// vector and the class a (possibly wrong) classifier would publish with
// it.
type Item struct {
	// Cues is the extracted cue vector of one sensor window.
	Cues []float64
	// ClassID is the class identifier the request carries.
	ClassID byte
}

// WorkloadConfig parameterizes the deterministic request pool a load run
// replays.
type WorkloadConfig struct {
	// Seed drives every random choice (scenario noise, fault schedules,
	// class errors).
	Seed int64
	// FaultFraction is the fraction of scenario streams recorded with an
	// injected sensor fault (0..1). Faulted streams produce the
	// degraded, ambiguous windows that exercise the ε and discard paths.
	// Default 0.25.
	FaultFraction float64
	// ErrorRate is the fraction of items whose published class is
	// deliberately flipped to a wrong one, emulating classifier
	// mistakes. Default 0.15.
	ErrorRate float64
	// WindowSize is the readings-per-window of the cue extraction.
	// Default 100 (one second at the default sampling rate).
	WindowSize int
}

// withDefaults fills zero fields.
func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.FaultFraction == 0 {
		c.FaultFraction = 0.25
	}
	if c.ErrorRate == 0 {
		c.ErrorRate = 0.15
	}
	if c.WindowSize == 0 {
		c.WindowSize = 100
	}
	return c
}

// Workload is a deterministic pool of scoring-request payloads shared by
// any number of simulated pens: pen p's round r request is Item(p, r), a
// pure function of (seed, p, r), so a million pens need no per-pen state
// and two runs with the same seed replay the same traffic.
type Workload struct {
	items []Item
}

// workloadStyles are the user styles the scenario mix cycles through —
// the nominal user plus the exaggerated and sloppy variants the dataset
// generator uses elsewhere.
var workloadStyles = []sensor.Style{
	sensor.DefaultStyle(),
	{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
	{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9},
}

// workloadFaults builds the fault set injected into the faulted fraction
// of streams, seeded per stream.
func workloadFaults(stream int) []fault.SensorFault {
	switch stream % 4 {
	case 0:
		return []fault.SensorFault{&fault.StuckAxis{Axis: fault.AxisY, Start: 5}}
	case 1:
		return []fault.SensorFault{&fault.Saturation{Gain: 2.5}}
	case 2:
		return []fault.SensorFault{&fault.SpikeNoise{Prob: 0.03}}
	default:
		return []fault.SensorFault{&fault.Dropout{Start: 6, Duration: 2}}
	}
}

// NewWorkload records the scenario mix and extracts the request pool:
// office sessions across user styles, a FaultFraction of the streams
// degraded by injected sensor faults, windows reduced to cue vectors, and
// an ErrorRate of the published classes flipped to a wrong class.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.FaultFraction < 0 || cfg.FaultFraction > 1 {
		return nil, fmt.Errorf("serve: fault fraction %v outside [0,1]", cfg.FaultFraction)
	}
	if cfg.ErrorRate < 0 || cfg.ErrorRate > 1 {
		return nil, fmt.Errorf("serve: error rate %v outside [0,1]", cfg.ErrorRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const streams = 8
	faulted := int(float64(streams) * cfg.FaultFraction)
	var items []Item
	for i := 0; i < streams; i++ {
		scenario := sensor.OfficeSession(workloadStyles[i%len(workloadStyles)])
		readings, err := scenario.Run(rng)
		if err != nil {
			return nil, fmt.Errorf("serve: recording workload stream %d: %w", i, err)
		}
		if i < faulted {
			inj := fault.NewInjector(cfg.Seed+int64(i), workloadFaults(i)...)
			if readings, err = inj.Apply(readings); err != nil {
				return nil, fmt.Errorf("serve: injecting faults into stream %d: %w", i, err)
			}
		}
		windows, err := (feature.Windower{Size: cfg.WindowSize}).Slide(readings)
		if err != nil {
			return nil, fmt.Errorf("serve: windowing stream %d: %w", i, err)
		}
		for _, w := range windows {
			class := w.Truth
			if rng.Float64() < cfg.ErrorRate {
				class = wrongClass(class, rng)
			}
			items = append(items, Item{Cues: w.Cues, ClassID: byte(class.ID())})
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("serve: workload produced no items")
	}
	return &Workload{items: items}, nil
}

// wrongClass picks a uniformly random context different from truth.
func wrongClass(truth sensor.Context, rng *rand.Rand) sensor.Context {
	all := sensor.AllContexts()
	pick := all[rng.Intn(len(all))]
	if pick == truth {
		pick = all[(pick.ID())%len(all)] // next class in id order
	}
	return pick
}

// Len returns the pool size.
func (w *Workload) Len() int { return len(w.items) }

// Item returns pen p's round-r payload: the pool entry at a per-pen
// offset derived from the pen's node hash, advanced once per round.
func (w *Workload) Item(pen, round int) Item {
	node := PenNode(pen)
	off := int(fnv64a(node[:]) % uint64(len(w.items)))
	return w.items[(off+round)%len(w.items)]
}

// PenNode derives the stable 8-byte node id of simulated pen i.
func PenNode(i int) particle.NodeID {
	return particle.NodeIDFromString(fmt.Sprintf("p%07d", i))
}

// TrainQuickModel trains a small but real recognition stack — classifier
// on a clean session, quality FIS on mixed-style office sessions — and
// returns the measure with its analysis threshold. It is the in-process
// model source for cqmserve and cqmload runs that are not handed an
// artifact; with the same seed and any worker count the resulting model
// is bit-identical.
func TrainQuickModel(seed int64, workers int) (*core.Measure, float64, error) {
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{Segments: []sensor.Segment{
			{Context: sensor.ContextLying, Duration: 12},
			{Context: sensor.ContextWriting, Duration: 12},
			{Context: sensor.ContextPlaying, Duration: 12},
		}}},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		return nil, 0, err
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		return nil, 0, err
	}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		return nil, 0, err
	}
	observations, err := core.Observe(clf, mixed)
	if err != nil {
		return nil, 0, err
	}
	build := core.BuildConfig{}
	build.Clustering.Workers = workers
	build.Hybrid.Workers = workers
	measure, err := core.Build(observations, nil, build)
	if err != nil {
		return nil, 0, err
	}
	analysis, err := core.Analyze(measure, observations)
	if err != nil {
		return nil, 0, err
	}
	return measure, analysis.Threshold, nil
}
