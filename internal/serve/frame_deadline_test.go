package serve

import (
	"bufio"
	"bytes"
	"errors"
	"testing"

	"cqm/internal/particle"
)

func TestDeadlineRequestRoundTrip(t *testing.T) {
	req := penRequest(3, 9, 0.25)
	req.DeadlineMillis = 1500
	frame, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := particle.PacketType(frame[2]); got != TypeScoreRequestDeadline {
		// Offset 2 is the packet-type byte of the particle header.
		t.Fatalf("wire type 0x%02X, want 0x%02X", byte(got), byte(TypeScoreRequestDeadline))
	}
	if want := particle.FrameLen + 1 + deadlineFieldLen + 8*len(req.Cues) + 2; len(frame) != want {
		t.Fatalf("frame length %d, want %d", len(frame), want)
	}

	dec, err := DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if dec.DeadlineMillis != 1500 {
		t.Fatalf("decoded budget %d, want 1500", dec.DeadlineMillis)
	}
	if dec.Node != req.Node || dec.Seq != req.Seq || len(dec.Cues) != len(req.Cues) {
		t.Fatalf("decoded %+v, want %+v", dec, req)
	}

	// The stream reader must handle the wider section too.
	read, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if read.DeadlineMillis != 1500 {
		t.Fatalf("stream-read budget %d, want 1500", read.DeadlineMillis)
	}
}

func TestPlainRequestStaysBitCompatible(t *testing.T) {
	// A zero budget must select the original wire form: same type byte,
	// same length, no deadline field — old clients and captures stay valid.
	req := penRequest(3, 9, 0.25)
	frame, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := particle.PacketType(frame[2]); got != TypeScoreRequest {
		t.Fatalf("wire type 0x%02X, want 0x%02X", byte(got), byte(TypeScoreRequest))
	}
	if want := particle.FrameLen + 1 + 8*len(req.Cues) + 2; len(frame) != want {
		t.Fatalf("frame length %d, want %d", len(frame), want)
	}
	dec, err := DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if dec.DeadlineMillis != 0 {
		t.Fatalf("plain request decoded budget %d", dec.DeadlineMillis)
	}
}

func TestDeadlineFieldCoveredByCRC(t *testing.T) {
	req := penRequest(1, 1, 0.5)
	req.DeadlineMillis = 250
	frame, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	frame[particle.FrameLen+2] ^= 0x01 // flip a budget byte
	if _, err := DecodeRequest(frame); !errors.Is(err, ErrCueCRC) {
		t.Fatalf("corrupted budget decoded: %v", err)
	}
}
