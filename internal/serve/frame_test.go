package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"cqm/internal/particle"
)

// sampleRequest is a representative valid request.
func sampleRequest() Request {
	return Request{
		Node:       particle.NodeIDFromString("pen-0042"),
		Seq:        1234,
		SentMillis: 567890,
		ClassID:    2,
		Cues:       []float64{0.25, -1.5, 3.75},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	want := sampleRequest()
	data, err := EncodeRequest(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestRequestRoundTripCueCounts(t *testing.T) {
	for n := 1; n <= MaxCues; n++ {
		req := sampleRequest()
		req.Cues = make([]float64, n)
		for i := range req.Cues {
			req.Cues[i] = float64(i) * 0.125
		}
		data, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := DecodeRequest(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("n=%d mismatch", n)
		}
	}
}

// encodeSample returns a valid encoded request for corruption tests.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	data, err := EncodeRequest(sampleRequest())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// reCueCRC recomputes the cue-section CRC of an encoded request after a
// deliberate mutation, so only the mutation under test is wrong.
func reCueCRC(data []byte) {
	tail := len(data) - 2
	binary.BigEndian.PutUint16(data[tail:], particle.CRC16(data[particle.FrameLen:tail]))
}

// reHeaderCRC recomputes the particle header CRC after a header mutation.
func reHeaderCRC(data []byte) {
	binary.BigEndian.PutUint16(data[20:22], particle.CRC16(data[:20]))
}

func TestDecodeRequestErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(t *testing.T, data []byte) []byte
		wantErr error
	}{
		{"empty", func(t *testing.T, d []byte) []byte { return nil }, ErrRequestLength},
		{"header only", func(t *testing.T, d []byte) []byte { return d[:particle.FrameLen] }, ErrRequestLength},
		{"truncated cues", func(t *testing.T, d []byte) []byte { return d[:len(d)-3] }, ErrRequestLength},
		{"trailing bytes", func(t *testing.T, d []byte) []byte { return append(d, 0xEE) }, ErrRequestLength},
		{"bad sync", func(t *testing.T, d []byte) []byte { d[0] = 0; return d }, particle.ErrSync},
		{"bad version", func(t *testing.T, d []byte) []byte { d[1] = 9; reHeaderCRC(d); return d }, particle.ErrVersion},
		{"header crc", func(t *testing.T, d []byte) []byte { d[5] ^= 0x10; return d }, particle.ErrCRC},
		{"wrong type", func(t *testing.T, d []byte) []byte { d[2] = byte(TypeAccepted); reHeaderCRC(d); return d }, ErrRequestType},
		{"quality annotated", func(t *testing.T, d []byte) []byte {
			binary.BigEndian.PutUint16(d[18:20], 0x1000)
			reHeaderCRC(d)
			return d
		}, ErrRequestQuality},
		{"zero cues", func(t *testing.T, d []byte) []byte {
			d = d[:particle.FrameLen+1+2]
			d[particle.FrameLen] = 0
			reCueCRC(d)
			return d
		}, ErrCueCount},
		{"too many cues", func(t *testing.T, d []byte) []byte { d[particle.FrameLen] = MaxCues + 1; return d }, ErrCueCount},
		{"cue crc", func(t *testing.T, d []byte) []byte { d[particle.FrameLen+3] ^= 0x40; return d }, ErrCueCRC},
		{"nan cue", func(t *testing.T, d []byte) []byte {
			binary.BigEndian.PutUint64(d[particle.FrameLen+1:], math.Float64bits(math.NaN()))
			reCueCRC(d)
			return d
		}, ErrCueValue},
		{"inf cue", func(t *testing.T, d []byte) []byte {
			binary.BigEndian.PutUint64(d[particle.FrameLen+1:], math.Float64bits(math.Inf(1)))
			reCueCRC(d)
			return d
		}, ErrCueValue},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(t, encodeSample(t))
			if _, err := DecodeRequest(data); !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestEncodeRequestValidates(t *testing.T) {
	req := sampleRequest()
	req.Cues = nil
	if _, err := EncodeRequest(req); !errors.Is(err, ErrCueCount) {
		t.Errorf("no cues: err = %v, want %v", err, ErrCueCount)
	}
	req = sampleRequest()
	req.Cues = make([]float64, MaxCues+1)
	if _, err := EncodeRequest(req); !errors.Is(err, ErrCueCount) {
		t.Errorf("too many cues: err = %v, want %v", err, ErrCueCount)
	}
	req = sampleRequest()
	req.Cues[1] = math.NaN()
	if _, err := EncodeRequest(req); !errors.Is(err, ErrCueValue) {
		t.Errorf("NaN cue: err = %v, want %v", err, ErrCueValue)
	}
}

func TestReadRequestStream(t *testing.T) {
	a, b := sampleRequest(), sampleRequest()
	b.Seq = 9999
	b.Cues = []float64{42}
	ea, err := EncodeRequest(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := EncodeRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	stream := bytes.NewReader(append(append([]byte(nil), ea...), eb...))

	got, err := ReadRequest(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Errorf("first frame mismatch: %+v", got)
	}
	got, err = ReadRequest(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("second frame mismatch: %+v", got)
	}
	// Clean boundary: plain EOF, not an unexpected one.
	if _, err := ReadRequest(stream); !errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("at boundary: err = %v, want io.EOF", err)
	}
}

func TestReadRequestTruncation(t *testing.T) {
	data := encodeSample(t)
	for _, cut := range []int{1, particle.FrameLen - 1, particle.FrameLen, particle.FrameLen + 1, len(data) - 1} {
		_, err := ReadRequest(bytes.NewReader(data[:cut]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut=%d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Node: particle.NodeIDFromString("pen-0001"), Seq: 7, SentMillis: 99, Status: StatusAccepted, Q: 0.75},
		{Node: particle.NodeIDFromString("pen-0002"), Seq: 8, SentMillis: 100, Status: StatusDiscarded, Q: 0.25},
		{Node: particle.NodeIDFromString("pen-0003"), Seq: 9, SentMillis: 101, Status: StatusEpsilon},
		{Node: particle.NodeIDFromString("pen-0004"), Seq: 10, SentMillis: 102, Rejected: true, Reject: RejectOverloaded},
		{Rejected: true, Reject: RejectDraining},
		{Rejected: true, Reject: RejectUnavailable},
		{Rejected: true, Reject: RejectProtocol},
		{Rejected: true, Reject: RejectInternal},
	}
	for _, want := range cases {
		frame, err := EncodeResponse(want)
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if len(frame) != particle.FrameLen {
			t.Fatalf("response frame %d bytes, want %d", len(frame), particle.FrameLen)
		}
		got, err := DecodeResponse(frame)
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		// q crosses the wire quantized; compare within the codec resolution
		// and the rest exactly.
		if math.Abs(got.Q-want.Q) > particle.QualityResolution {
			t.Errorf("q = %v, want %v ± %v", got.Q, want.Q, particle.QualityResolution)
		}
		got.Q = want.Q
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecodeResponseRejectsUnknownType(t *testing.T) {
	frame, err := particle.Encode(particle.ContextPacket{Type: 0x42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse(frame); !errors.Is(err, ErrRequestType) {
		t.Errorf("err = %v, want %v", err, ErrRequestType)
	}
}

func TestRejectCodeStrings(t *testing.T) {
	names := map[RejectCode]string{
		RejectOverloaded:  "overloaded",
		RejectDraining:    "draining",
		RejectUnavailable: "unavailable",
		RejectProtocol:    "protocol",
		RejectInternal:    "internal",
	}
	for code, want := range names {
		if got := code.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", code, got, want)
		}
	}
	if got := Status(99).String(); got != "Status(99)" {
		t.Errorf("unknown status = %q", got)
	}
}
