package serve

import (
	"fmt"
	"testing"
)

func TestRingValidates(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing(0) accepted")
	}
	if _, err := NewRingReplicas(2, 0); err == nil {
		t.Error("NewRingReplicas(2, 0) accepted")
	}
}

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("source-%d", i))
		sa, sb := a.Shard(key), b.Shard(key)
		if sa != sb {
			t.Fatalf("key %q: %d vs %d across identical rings", key, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("key %q: shard %d outside [0,4)", key, sa)
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, keys = 8, 16000
	r, err := NewRing(shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		node := PenNode(i)
		counts[r.Shard(node[:])]++
	}
	// Consistent hashing with 64 vnodes per shard is not perfectly
	// uniform; require every shard to land within a loose factor of the
	// fair share so gross imbalance (or a dead shard) fails.
	fair := keys / shards
	for s, c := range counts {
		if c < fair/4 || c > fair*4 {
			t.Errorf("shard %d holds %d keys, fair share %d", s, c, fair)
		}
	}
}

func TestRingStability(t *testing.T) {
	const keys = 8000
	small, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < keys; i++ {
		key := PenNode(i)
		if small.Shard(key[:]) != big.Shard(key[:]) {
			moved++
		}
	}
	// Growing 4 → 5 shards should remap roughly 1/5 of the keys; a naive
	// modulo map would remap ~4/5. Accept anything clearly on the
	// consistent side.
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Errorf("%.0f%% of keys moved adding one shard; want the consistent-hash minority", frac*100)
	}
}

func TestRingShardsAccessor(t *testing.T) {
	r, err := NewRingReplicas(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Shards(); got != 3 {
		t.Errorf("Shards() = %d, want 3", got)
	}
}
