package serve

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/fuzzy"
	"cqm/internal/obs"
	"cqm/internal/particle"
	"cqm/internal/quality"
)

// biasMeasure builds a two-input (one cue + class) quality FIS with one
// wide rule whose consequent is the constant bias: every finite cue scores
// exactly bias, and an extreme cue underflows every membership function
// into the ε state.
func biasMeasure(t testing.TB, bias float64) *core.Measure {
	t.Helper()
	sys, err := fuzzy.NewTSK(2, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 0.5, Sigma: 10}, {Mu: 0, Sigma: 10}},
		Coeffs:     []float64{0, 0, bias},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return core.MeasureFromSystem(sys)
}

// biasServer starts a server over a constant-bias model.
func biasServer(t testing.TB, bias float64, cfg Config) *Server {
	t.Helper()
	cfg.Handle = ckpt.NewHandle(biasMeasure(t, bias))
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	return s
}

// penRequest is a minimal valid one-cue request from the given pen.
func penRequest(pen int, seq uint16, cue float64) Request {
	return Request{Node: PenNode(pen), Seq: seq, Cues: []float64{cue}, ClassID: 1}
}

// waitUntil spins until cond holds; test-only synchronization with the
// shard and connection goroutines.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		runtime.Gosched()
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNewValidatesConfig(t *testing.T) {
	handle := ckpt.NewHandle(nil)
	bad := []Config{
		{},                                    // no handle
		{Handle: handle, Shards: -1},          // bad shard count
		{Handle: handle, QueueDepth: -1},      // bad queue depth
		{Handle: handle, BatchSize: -2},       // bad batch size
		{Handle: handle, Threshold: 1.5},      // threshold outside [0,1]
		{Handle: handle, Threshold: -0.00001}, // threshold outside [0,1]
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSubmitValidatesRequest(t *testing.T) {
	s := biasServer(t, 0.75, Config{})
	if _, err := s.Submit(Request{Node: PenNode(1)}); !errors.Is(err, ErrCueCount) {
		t.Errorf("no cues: err = %v, want %v", err, ErrCueCount)
	}
	if _, err := s.Submit(Request{Node: PenNode(1), Cues: []float64{math.Inf(1)}}); !errors.Is(err, ErrCueValue) {
		t.Errorf("inf cue: err = %v, want %v", err, ErrCueValue)
	}
}

func TestSubmitDecisions(t *testing.T) {
	s := biasServer(t, 0.75, Config{Threshold: 0.5, Shards: 2})

	out, err := s.Submit(penRequest(1, 1, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusAccepted || math.Abs(out.Q-0.75) > 1e-12 {
		t.Errorf("q>threshold: out = %+v, want accepted q=0.75", out)
	}

	// ε: a cue so far from every rule center that all memberships
	// underflow to zero.
	out, err = s.Submit(penRequest(2, 2, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusEpsilon {
		t.Errorf("extreme cue: out = %+v, want ε", out)
	}

	low := biasServer(t, 0.25, Config{Threshold: 0.5})
	out, err = low.Submit(penRequest(3, 3, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusDiscarded || math.Abs(out.Q-0.25) > 1e-12 {
		t.Errorf("q<=threshold: out = %+v, want discarded q=0.25", out)
	}

	stats := s.Stats()
	if stats.Admitted != 2 || stats.Accepted != 1 || stats.Epsilon != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSubmitNoModel(t *testing.T) {
	s, err := New(Config{Handle: ckpt.NewHandle(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	if _, err := s.Submit(penRequest(1, 1, 0.5)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want %v", err, ErrUnavailable)
	}
	stats := s.Stats()
	if stats.Admitted != 1 || stats.RejectedUnavailable != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Admitted != stats.Scored()+stats.RejectedUnavailable+stats.RejectedInternal {
		t.Errorf("accounting violated: %+v", stats)
	}
}

func TestOverloadBackpressure(t *testing.T) {
	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	s := biasServer(t, 0.75, Config{
		Shards:     1,
		QueueDepth: 1,
		BatchSize:  1,
		Threshold:  0.5,
		BatchObserver: func(m *core.Measure, outs []Outcome) {
			entered <- struct{}{}
			<-gate
		},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(penRequest(1, 1, 0.5)); err != nil {
			t.Errorf("first submit: %v", err)
		}
	}()
	<-entered // the shard is now busy inside the observer

	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(penRequest(2, 2, 0.5)); err != nil {
			t.Errorf("queued submit: %v", err)
		}
	}()
	waitUntil(t, "second request admitted", func() bool { return s.Stats().Admitted == 2 })

	// Queue depth 1 with the worker occupied: the third submit must be
	// explicitly rejected, not blocked or dropped.
	if _, err := s.Submit(penRequest(3, 3, 0.5)); !errors.Is(err, ErrOverloaded) {
		t.Errorf("overload: err = %v, want %v", err, ErrOverloaded)
	}

	close(gate)
	wg.Wait()
	stats := s.Stats()
	if stats.Admitted != 2 || stats.Scored() != 2 || stats.RejectedOverload != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestDrainAccountsForEveryAdmittedRequest(t *testing.T) {
	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	s := biasServer(t, 0.75, Config{
		Shards:     1,
		QueueDepth: 8,
		BatchSize:  1,
		Threshold:  0.5,
		BatchObserver: func(m *core.Measure, outs []Outcome) {
			entered <- struct{}{}
			<-gate
		},
	})

	var submits sync.WaitGroup
	for i := 0; i < 4; i++ {
		submits.Add(1)
		go func(i int) {
			defer submits.Done()
			if _, err := s.Submit(penRequest(i, uint16(i), 0.5)); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	<-entered // one in flight, the rest queued behind the gate
	waitUntil(t, "all four admitted", func() bool { return s.Stats().Admitted == 4 })

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	waitUntil(t, "draining flag", s.Draining)

	// Admissions during drain are refused explicitly.
	if _, err := s.Submit(penRequest(9, 9, 0.5)); !errors.Is(err, ErrDraining) {
		t.Errorf("during drain: err = %v, want %v", err, ErrDraining)
	}

	close(gate)
	submits.Wait()
	<-drained

	// The invariant the drain protocol guarantees: everything admitted was
	// answered — scored or explicitly rejected, never silently dropped.
	stats := s.Stats()
	if stats.Admitted != 4 {
		t.Fatalf("admitted = %d, want 4", stats.Admitted)
	}
	if got := stats.Scored() + stats.RejectedUnavailable + stats.RejectedInternal; got != stats.Admitted {
		t.Errorf("admitted %d but answered %d: %+v", stats.Admitted, got, stats)
	}
	if stats.RejectedDraining != 1 {
		t.Errorf("draining rejections = %d, want 1", stats.RejectedDraining)
	}

	// After drain: still refusing, still idempotent.
	if _, err := s.Submit(penRequest(10, 10, 0.5)); !errors.Is(err, ErrDraining) {
		t.Errorf("after drain: err = %v, want %v", err, ErrDraining)
	}
	s.Drain()
}

func TestShardBatchFolding(t *testing.T) {
	entered := make(chan struct{}, 64)
	gate := make(chan struct{})
	var once sync.Once
	s := biasServer(t, 0.75, Config{
		Shards:     1,
		QueueDepth: 64,
		BatchSize:  32,
		Threshold:  0.5,
		BatchObserver: func(m *core.Measure, outs []Outcome) {
			entered <- struct{}{}
			once.Do(func() { <-gate }) // hold only the first batch
		},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(penRequest(0, 0, 0.5)); err != nil {
			t.Errorf("submit: %v", err)
		}
	}()
	<-entered

	const queued = 8
	for i := 1; i <= queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Submit(penRequest(i, uint16(i), 0.5)); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	waitUntil(t, "queue to fill", func() bool { return s.Stats().Admitted == queued+1 })
	close(gate)
	wg.Wait()

	stats := s.Stats()
	if stats.Batches != 2 {
		t.Errorf("batches = %d, want 2 (1 gated + %d folded)", stats.Batches, queued)
	}
	if stats.MaxBatch != queued {
		t.Errorf("max batch = %d, want %d", stats.MaxBatch, queued)
	}
}

func TestServerMetricsAndQuality(t *testing.T) {
	reg := obs.NewRegistry()
	eng := quality.NewEngine(quality.Config{Threshold: 0.5})
	s := biasServer(t, 0.75, Config{Threshold: 0.5, Metrics: reg, Quality: eng})

	for i := 0; i < 5; i++ {
		if _, err := s.Submit(penRequest(7, uint16(i), 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(MetricAdmitted).Value(); got != 5 {
		t.Errorf("%s = %d, want 5", MetricAdmitted, got)
	}
	if got := reg.Counter(MetricScored, "status", StatusAccepted.String()).Value(); got != 5 {
		t.Errorf("%s{accepted} = %d, want 5", MetricScored, got)
	}
	if got := reg.Counter(MetricBatches).Value(); got < 1 {
		t.Errorf("%s = %d, want >= 1", MetricBatches, got)
	}

	// The quality engine saw the pen as a source.
	want := PenNode(7).String()
	found := false
	for _, src := range eng.Sources() {
		if src == want {
			found = true
		}
	}
	if !found {
		t.Errorf("quality engine sources %v missing %q", eng.Sources(), want)
	}
}

func TestShardOfMatchesRing(t *testing.T) {
	s := biasServer(t, 0.75, Config{Shards: 4})
	ring, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		node := PenNode(i)
		if got, want := s.ShardOf(node[:]), ring.Shard(node[:]); got != want {
			t.Fatalf("pen %d: ShardOf = %d, ring = %d", i, got, want)
		}
	}
	if s.Shards() != 4 {
		t.Errorf("Shards() = %d", s.Shards())
	}
	if math.Abs(s.Threshold()) > 0 {
		t.Errorf("Threshold() = %v, want 0", s.Threshold())
	}
}

func TestSubmitResponseEchoesIdentity(t *testing.T) {
	s := biasServer(t, 0.75, Config{Threshold: 0.5})
	req := Request{Node: particle.NodeIDFromString("pen-echo"), Seq: 41, SentMillis: 99, Cues: []float64{0.5}}
	frame := s.answer(req)
	resp, err := DecodeResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != req.Node || resp.Seq != req.Seq || resp.SentMillis != req.SentMillis {
		t.Errorf("echo mismatch: %+v", resp)
	}
	if resp.Rejected || resp.Status != StatusAccepted {
		t.Errorf("resp = %+v, want accepted", resp)
	}
}
