package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postJSON drives the handler with one request body.
func postJSON(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	h.ServeHTTP(rec, req)
	var payload map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("%s: non-JSON body %q: %v", path, rec.Body.String(), err)
	}
	return rec, payload
}

func TestHTTPScore(t *testing.T) {
	s := biasServer(t, 0.75, Config{Threshold: 0.5})
	h := s.HTTPHandler()

	rec, payload := postJSON(t, h, "/score", `{"source":"pen-1","seq":3,"sent_ms":42,"class":1,"cues":[0.5]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, payload)
	}
	if payload["status"] != "accepted" {
		t.Errorf("status = %v", payload["status"])
	}
	q, ok := payload["q"].(float64)
	if !ok || math.Abs(q-0.75) > 1e-12 {
		t.Errorf("q = %v, want 0.75", payload["q"])
	}
	if payload["source"] != "pen-1" || payload["seq"] != float64(3) || payload["sent_ms"] != float64(42) {
		t.Errorf("echo mismatch: %v", payload)
	}

	// ε omits q entirely.
	rec, payload = postJSON(t, h, "/score", `{"source":"pen-2","class":1,"cues":[1e9]}`)
	if rec.Code != http.StatusOK || payload["status"] != "epsilon" {
		t.Fatalf("ε: status %d payload %v", rec.Code, payload)
	}
	if _, has := payload["q"]; has {
		t.Errorf("ε carries q: %v", payload)
	}
}

func TestHTTPScoreErrors(t *testing.T) {
	s := biasServer(t, 0.75, Config{Threshold: 0.5})
	h := s.HTTPHandler()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/score", `{`, http.StatusBadRequest},
		{"no cues", "/score", `{"source":"p","class":1}`, http.StatusBadRequest},
		{"long source", "/score", `{"source":"way-too-long-name","class":1,"cues":[0.5]}`, http.StatusBadRequest},
		{"class range", "/score", `{"source":"p","class":300,"cues":[0.5]}`, http.StatusBadRequest},
		{"nan cue", "/score", `{"source":"p","class":1,"cues":["x"]}`, http.StatusBadRequest},
		{"batch bad json", "/score/batch", `[]`, http.StatusBadRequest},
		{"batch empty", "/score/batch", `{"requests":[]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, payload := postJSON(t, h, tc.path, tc.body)
			if rec.Code != tc.want {
				t.Errorf("status %d, want %d (%v)", rec.Code, tc.want, payload)
			}
		})
	}

	// Method gate.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/score", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /score: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/score/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /score/batch: %d", rec.Code)
	}
}

func TestHTTPScoreBatch(t *testing.T) {
	s := biasServer(t, 0.75, Config{Threshold: 0.5, Shards: 2})
	h := s.HTTPHandler()

	body := `{"requests":[
		{"source":"pen-1","seq":1,"class":1,"cues":[0.5]},
		{"source":"a-source-name-too-long","seq":2,"class":1,"cues":[0.5]},
		{"source":"pen-3","seq":3,"class":1,"cues":[1e9]}
	]}`
	rec, payload := postJSON(t, h, "/score/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, payload)
	}
	responses, ok := payload["responses"].([]any)
	if !ok || len(responses) != 3 {
		t.Fatalf("responses = %v", payload["responses"])
	}
	statuses := make([]string, len(responses))
	for i, r := range responses {
		m := r.(map[string]any)
		statuses[i], _ = m["status"].(string)
		if seq := m["seq"].(float64); int(seq) != i+1 {
			t.Errorf("response %d out of order: seq %v", i, seq)
		}
	}
	if statuses[0] != "accepted" || statuses[1] != "rejected" || statuses[2] != "epsilon" {
		t.Errorf("statuses = %v", statuses)
	}
	if reject := responses[1].(map[string]any)["reject"]; reject != "protocol" {
		t.Errorf("per-item reject = %v", reject)
	}
}

func TestHTTPDrainingAndUnavailable(t *testing.T) {
	s := biasServer(t, 0.75, Config{Threshold: 0.5})
	h := s.HTTPHandler()
	s.Drain()
	rec, _ := postJSON(t, h, "/score", `{"source":"p","class":1,"cues":[0.5]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining: status %d, want 503", rec.Code)
	}
	rec, payload := postJSON(t, h, "/score/batch", `{"requests":[{"source":"p","class":1,"cues":[0.5]}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch while draining: %d", rec.Code)
	}
	item := payload["responses"].([]any)[0].(map[string]any)
	if item["status"] != "rejected" || item["reject"] != "draining" {
		t.Errorf("batch item = %v", item)
	}
}
