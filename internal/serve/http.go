package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"cqm/internal/particle"
)

// maxJSONBody bounds a request body so a hostile client cannot balloon
// the decoder (the largest legitimate batch is far below this).
const maxJSONBody = 1 << 20

// JSONRequest is the HTTP form of a scoring request.
type JSONRequest struct {
	// Source identifies the producer (at most 8 bytes; it keys the
	// shard map).
	Source string `json:"source"`
	// Seq is the client's sequence number, echoed back.
	Seq uint16 `json:"seq"`
	// SentMillis is the client's send stamp, echoed back.
	SentMillis uint32 `json:"sent_ms,omitempty"`
	// Class is the classifier output c to score (0..255).
	Class int `json:"class"`
	// Cues is the classifier input v_C.
	Cues []float64 `json:"cues"`
	// DeadlineMillis, when non-zero, is the request's remaining deadline
	// budget in milliseconds: the server rejects rather than scores it
	// once the budget is spent.
	DeadlineMillis uint32 `json:"deadline_ms,omitempty"`
}

// JSONResponse is the HTTP form of a scoring response.
type JSONResponse struct {
	// Source and Seq echo the request.
	Source string `json:"source"`
	Seq    uint16 `json:"seq"`
	// SentMillis echoes the request stamp.
	SentMillis uint32 `json:"sent_ms,omitempty"`
	// Status is accepted|discarded|epsilon|rejected.
	Status string `json:"status"`
	// Q is the quality value, present for accepted and discarded.
	Q *float64 `json:"q,omitempty"`
	// Reject explains a rejected status.
	Reject string `json:"reject,omitempty"`
}

// jsonError is the HTTP error payload.
type jsonError struct {
	Error string `json:"error"`
}

// HTTP-specific protocol errors.
var (
	// ErrSourceLength reports a JSON source name longer than the 8-byte
	// node identifier (a longer name would silently collide after
	// truncation).
	ErrSourceLength = errors.New("serve: source name longer than 8 bytes")
	// ErrClassRange reports a class identifier outside the wire byte.
	ErrClassRange = errors.New("serve: class outside 0..255")
)

// toRequest converts and validates the JSON form.
func (j JSONRequest) toRequest() (Request, error) {
	if len(j.Source) > 8 {
		return Request{}, fmt.Errorf("%w: %q", ErrSourceLength, j.Source)
	}
	if j.Class < 0 || j.Class > 255 {
		return Request{}, fmt.Errorf("%w: %d", ErrClassRange, j.Class)
	}
	req := Request{
		Node:           particle.NodeIDFromString(j.Source),
		Seq:            j.Seq,
		SentMillis:     j.SentMillis,
		ClassID:        byte(j.Class),
		Cues:           j.Cues,
		DeadlineMillis: j.DeadlineMillis,
	}
	return req, req.Validate()
}

// HTTP front timeouts applied by NewHTTPServer. The header timeout is the
// slow-loris bound: a client must finish its request headers inside it or
// lose the connection.
const (
	httpReadHeaderTimeout = 10 * time.Second
	httpReadTimeout       = 30 * time.Second
	httpWriteTimeout      = 30 * time.Second
	httpIdleTimeout       = 2 * time.Minute
)

// NewHTTPServer wraps handler in an http.Server hardened for the open
// network: ReadHeaderTimeout caps how long a client may dribble request
// headers (the classic slow-loris hold), ReadTimeout/WriteTimeout bound a
// whole exchange, and IdleTimeout reclaims keep-alive connections. A bare
// &http.Server{} has none of these, so one slow client per goroutine can
// pin the front forever.
func NewHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: httpReadHeaderTimeout,
		ReadTimeout:       httpReadTimeout,
		WriteTimeout:      httpWriteTimeout,
		IdleTimeout:       httpIdleTimeout,
	}
}

// HTTPHandler returns the scoring API: POST /score for one request,
// POST /score/batch for {"requests": [...]}. Protocol faults answer 400,
// backpressure 429, draining and missing-model 503, and internal scoring
// failures 500. Mount it next to obs.NewMux's /metrics and /quality.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/score", s.handleScore)
	mux.HandleFunc("/score/batch", s.handleScoreBatch)
	return mux
}

// handleScore serves one scoring request.
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, jsonError{Error: "POST required"})
		return
	}
	var jreq JSONRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody))
	if err := dec.Decode(&jreq); err != nil {
		writeJSON(w, http.StatusBadRequest, jsonError{Error: err.Error()})
		return
	}
	req, err := jreq.toRequest()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, jsonError{Error: err.Error()})
		return
	}
	out, err := s.Submit(req)
	if err != nil {
		writeJSON(w, admissionStatus(err), jsonError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, outcomeJSON(jreq, out))
}

// handleScoreBatch serves a batch: every request is submitted
// concurrently (so shard batching applies) and the per-request outcomes
// — including per-request rejections — come back in order.
func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, jsonError{Error: "POST required"})
		return
	}
	var body struct {
		Requests []JSONRequest `json:"requests"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody))
	if err := dec.Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, jsonError{Error: err.Error()})
		return
	}
	if len(body.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, jsonError{Error: "empty batch"})
		return
	}
	responses := make([]JSONResponse, len(body.Requests))
	var wg sync.WaitGroup
	for i := range body.Requests {
		req, err := body.Requests[i].toRequest()
		if err != nil {
			responses[i] = rejectJSON(body.Requests[i], RejectProtocol)
			continue
		}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			out, err := s.Submit(req)
			if err != nil {
				responses[i] = rejectJSON(body.Requests[i], rejectCodeFor(err))
				return
			}
			responses[i] = outcomeJSON(body.Requests[i], out)
		}(i, req)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, struct {
		Responses []JSONResponse `json:"responses"`
	}{responses})
}

// outcomeJSON renders a scored outcome.
func outcomeJSON(jreq JSONRequest, out Outcome) JSONResponse {
	resp := JSONResponse{
		Source:     jreq.Source,
		Seq:        jreq.Seq,
		SentMillis: jreq.SentMillis,
		Status:     out.Status.String(),
	}
	if out.Status != StatusEpsilon {
		q := out.Q
		resp.Q = &q
	}
	return resp
}

// rejectJSON renders an explicit rejection.
func rejectJSON(jreq JSONRequest, code RejectCode) JSONResponse {
	return JSONResponse{
		Source:     jreq.Source,
		Seq:        jreq.Seq,
		SentMillis: jreq.SentMillis,
		Status:     "rejected",
		Reject:     code.String(),
	}
}

// admissionStatus maps a Submit error onto an HTTP status.
func admissionStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrInternal):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// rejectCodeFor maps a Submit error onto the wire reject code.
func rejectCodeFor(err error) RejectCode {
	switch {
	case errors.Is(err, ErrOverloaded):
		return RejectOverloaded
	case errors.Is(err, ErrDraining):
		return RejectDraining
	case errors.Is(err, ErrUnavailable):
		return RejectUnavailable
	case errors.Is(err, ErrDeadline):
		return RejectDeadline
	case errors.Is(err, ErrShed):
		return RejectShed
	case errors.Is(err, ErrInternal):
		return RejectInternal
	default:
		return RejectProtocol
	}
}

// writeJSON emits one JSON payload with the given status.
func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}
