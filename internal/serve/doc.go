// Package serve puts the Context Quality Measure on the wire: a sharded
// scoring service that sits between many unreliable context producers and
// the appliances consuming their classifications — the middleware access
// point the deployment story needs (ROADMAP item 1).
//
// The package is organized around four pieces:
//
//   - Frame codec (frame.go): a compact binary request/response framing
//     that reuses the 22-byte particle frame as its header and appends a
//     CRC-guarded cue section, so a scoring request is self-delimiting on
//     a byte stream and survives the same hostile-input discipline as the
//     RF codec.
//   - Consistent-hash ring (ring.go): source IDs map onto worker shards
//     through a fixed ring of virtual nodes, so the shard map is stable
//     under shard-count changes and ready for multi-node sharding.
//   - Server (server.go): per-shard bounded queues with admission control
//     and explicit backpressure, batch folding of queued requests into a
//     single core.Measure.ScoreBatch per wakeup, hot model reload through
//     ckpt.Handle (one model load per batch — a swap never mixes models
//     inside a batch), and a drain protocol that guarantees every admitted
//     request is scored or explicitly rejected, never silently dropped.
//   - Fronts (http.go, tcp.go): an HTTP/JSON API and a binary TCP
//     listener over the frame codec, both returning typed protocol errors
//     for malformed input and explicit 429/reject frames under overload.
//
// Determinism contract: scoring through the sharded path is bit-identical
// to a direct unsharded ScoreBatch over the same frames at every shard
// count — each score is an independent FIS evaluation, and the shard map
// only changes which worker performs it. The package never reads the wall
// clock; client-side load tooling (cmd/cqmload) owns all timing.
package serve
