package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/fuzzy"
	"cqm/internal/particle"
)

// fuzzSrv is one long-lived server shared by the fuzz workers; it is
// never drained (the fuzzing process just exits).
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

// fuzzServer builds the shared target: a 2-shard server over a one-cue
// constant-bias model, so one-cue requests score and any other cue count
// exercises the internal-reject path.
func fuzzServer() *Server {
	fuzzOnce.Do(func() {
		sys, err := fuzzy.NewTSK(2, []fuzzy.Rule{{
			Antecedent: []fuzzy.Gaussian{{Mu: 0.5, Sigma: 10}, {Mu: 0, Sigma: 10}},
			Coeffs:     []float64{0, 0, 0.75},
		}})
		if err != nil {
			panic(err)
		}
		fuzzSrv, err = New(Config{
			Shards:    2,
			Threshold: 0.5,
			Handle:    ckpt.NewHandle(core.MeasureFromSystem(sys)),
		})
		if err != nil {
			panic(err)
		}
	})
	return fuzzSrv
}

// FuzzServeFrame fuzzes the binary frame path: arbitrary bytes through
// DecodeRequest/ReadRequest must never panic and fail only with typed
// errors; whatever decodes must round-trip bit-identically and survive
// the full serving path down to a well-formed response frame.
func FuzzServeFrame(f *testing.F) {
	valid, err := EncodeRequest(Request{
		Node:       particle.NodeIDFromString("pen-0001"),
		Seq:        7,
		SentMillis: 1234,
		ClassID:    2,
		Cues:       []float64{0.5},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:10])                // truncated header
	f.Add(valid[:particle.FrameLen]) // header without cue section
	corrupt := append([]byte(nil), valid...)
	corrupt[particle.FrameLen+2] ^= 0x80
	f.Add(corrupt) // cue CRC mismatch
	multi, err := EncodeRequest(Request{Node: particle.NodeIDFromString("pen-0002"), Cues: []float64{1, 2, 3, 4}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(multi)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			// The stream reader must not panic on the same garbage. It may
			// legitimately succeed on a valid frame carrying trailing bytes
			// (it stops at the declared boundary); that prefix must then
			// decode on its own.
			if _, rerr := ReadRequest(bytes.NewReader(data)); rerr == nil {
				if _, perr := DecodeRequest(data[:requestLen(data)]); perr != nil {
					t.Fatalf("ReadRequest accepted what DecodeRequest rejects: %v (prefix err %v)", err, perr)
				}
			}
			return
		}
		// Round trip is bit-identical.
		re, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("re-encoding decoded request: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", re, data)
		}
		again, err := DecodeRequest(re)
		if err != nil || !reflect.DeepEqual(again, req) {
			t.Fatalf("second decode: %+v, %v", again, err)
		}
		streamed, err := ReadRequest(bytes.NewReader(data))
		if err != nil || !reflect.DeepEqual(streamed, req) {
			t.Fatalf("stream decode: %+v, %v", streamed, err)
		}
		// Full serving path: the answer is always one decodable response
		// frame echoing the request identity.
		frame := fuzzServer().answer(req)
		resp, err := DecodeResponse(frame)
		if err != nil {
			t.Fatalf("undecodable response: %v", err)
		}
		if resp.Node != req.Node || resp.Seq != req.Seq || resp.SentMillis != req.SentMillis {
			t.Fatalf("response identity mismatch: %+v for %+v", resp, req)
		}
	})
}

// requestLen returns the encoded length the frame's own header declares,
// clamped to len(data); used to check ReadRequest's prefix behavior.
func requestLen(data []byte) int {
	if len(data) < particle.FrameLen+1 {
		return len(data)
	}
	n := int(data[particle.FrameLen])
	total := particle.FrameLen + 1 + 8*n + 2
	if total > len(data) {
		return len(data)
	}
	return total
}

// FuzzServeJSON fuzzes the HTTP front: arbitrary bodies against /score
// and /score/batch must never panic, always answer JSON, and only with
// the documented status codes.
func FuzzServeJSON(f *testing.F) {
	f.Add([]byte(`{"source":"pen-1","seq":1,"class":1,"cues":[0.5]}`))
	f.Add([]byte(`{"source":"pen-1","class":1,"cues":[1e9]}`))
	f.Add([]byte(`{"requests":[{"source":"pen-1","class":1,"cues":[0.5]},{"source":"pen-2","class":2,"cues":[0.25,0.5]}]}`))
	f.Add([]byte(`{"source":"a-name-way-too-long","class":1,"cues":[0.5]}`))
	f.Add([]byte(`{"source":"p","class":900,"cues":[0.5]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusTooManyRequests:     true,
		http.StatusServiceUnavailable:  true,
		http.StatusInternalServerError: true,
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		h := fuzzServer().HTTPHandler()
		for _, path := range []string{"/score", "/score/batch"} {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
			h.ServeHTTP(rec, req)
			if !allowed[rec.Code] {
				t.Fatalf("%s: status %d for body %q", path, rec.Code, body)
			}
			if !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("%s: non-JSON answer %q", path, rec.Body.String())
			}
		}
	})
}

// FuzzResponseDecode fuzzes the response side of the codec: whatever
// DecodeResponse accepts must survive an encode/decode cycle unchanged
// (bytes may differ — decoding drops header fields a response does not
// model, like the class byte of a scored frame).
func FuzzResponseDecode(f *testing.F) {
	for _, r := range []Response{
		{Status: StatusAccepted, Q: 0.75},
		{Status: StatusEpsilon},
		{Rejected: true, Reject: RejectDraining},
	} {
		frame, err := EncodeResponse(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		re, err := EncodeResponse(resp)
		if err != nil {
			t.Fatalf("re-encoding decoded response %+v: %v", resp, err)
		}
		again, err := DecodeResponse(re)
		if err != nil {
			t.Fatalf("decoding re-encoded response: %v", err)
		}
		if !reflect.DeepEqual(again, resp) {
			t.Fatalf("response cycle drifted:\n got %+v\nwant %+v", again, resp)
		}
	})
}
