package serve

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/fuzzy"
	"cqm/internal/sensor"
)

// variedMeasure builds a two-rule quality FIS whose output genuinely
// depends on (cue, class), so the equivalence property is not vacuous:
// different frames produce different q, both decisions occur, and extreme
// cues fall into ε.
func variedMeasure(t testing.TB) *core.Measure {
	t.Helper()
	sys, err := fuzzy.NewTSK(2, []fuzzy.Rule{
		{
			Antecedent: []fuzzy.Gaussian{{Mu: 0.2, Sigma: 0.25}, {Mu: 1, Sigma: 1.2}},
			Coeffs:     []float64{0.6, 0.05, 0.1},
		},
		{
			Antecedent: []fuzzy.Gaussian{{Mu: 0.8, Sigma: 0.25}, {Mu: 2, Sigma: 1.2}},
			Coeffs:     []float64{-0.4, 0.08, 0.55},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.MeasureFromSystem(sys)
}

// equivalenceFrames generates a deterministic frame mix: 32 sources, 16
// rounds each, classes cycling through the context set, one in every 16
// cues extreme enough to underflow into ε.
func equivalenceFrames() []Request {
	rng := rand.New(rand.NewSource(7))
	const sources, rounds = 32, 16
	frames := make([]Request, 0, sources*rounds)
	for r := 0; r < rounds; r++ {
		for s := 0; s < sources; s++ {
			cue := rng.Float64()
			if (r*sources+s)%16 == 15 {
				cue = 1e9 // ε: no rule activates
			}
			frames = append(frames, Request{
				Node:       PenNode(s),
				Seq:        uint16(r),
				SentMillis: uint32(r * 1000),
				ClassID:    byte(1 + (s % 3)),
				Cues:       []float64{cue},
			})
		}
	}
	return frames
}

// directOutcomes scores frames through ScoreBatch with no serving layer at
// all — the reference the sharded server must match bit for bit.
func directOutcomes(t *testing.T, m *core.Measure, frames []Request, threshold float64) []Outcome {
	t.Helper()
	obs := make([]core.Observation, len(frames))
	for i, f := range frames {
		obs[i] = core.Observation{Cues: f.Cues, Class: sensor.ContextByID(int(f.ClassID))}
	}
	qs, ok, err := m.ScoreBatch(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]Outcome, len(frames))
	for i := range frames {
		switch {
		case !ok[i]:
			outs[i] = Outcome{Status: StatusEpsilon}
		case qs[i] > threshold:
			outs[i] = Outcome{Status: StatusAccepted, Q: qs[i]}
		default:
			outs[i] = Outcome{Status: StatusDiscarded, Q: qs[i]}
		}
	}
	return outs
}

// TestShardingEquivalence is the core serving property: for the same
// frames, a server with 1, 2, 4, or 8 shards produces bit-identical
// (q, decision, ε-routing) per source as one direct unsharded ScoreBatch
// call. Run under -race this also exercises the admission path
// concurrently.
func TestShardingEquivalence(t *testing.T) {
	m := variedMeasure(t)
	frames := equivalenceFrames()
	const threshold = 0.45
	want := directOutcomes(t, m, frames, threshold)

	// Guard against a vacuous property: the mix must exercise every
	// decision path.
	var accepted, discarded, epsilon int
	for _, o := range want {
		switch o.Status {
		case StatusAccepted:
			accepted++
		case StatusDiscarded:
			discarded++
		default:
			epsilon++
		}
	}
	if accepted == 0 || discarded == 0 || epsilon == 0 {
		t.Fatalf("degenerate mix: accepted=%d discarded=%d epsilon=%d", accepted, discarded, epsilon)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		t.Run(map[int]string{1: "1-shard", 2: "2-shards", 4: "4-shards", 8: "8-shards"}[shards], func(t *testing.T) {
			s, err := New(Config{
				Shards:    shards,
				Threshold: threshold,
				Handle:    ckpt.NewHandle(m),
			})
			if err != nil {
				t.Fatal(err)
			}
			got := make([]Outcome, len(frames))
			var wg sync.WaitGroup
			for i := range frames {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					out, err := s.Submit(frames[i])
					if err != nil {
						t.Errorf("frame %d: %v", i, err)
						return
					}
					got[i] = out
				}(i)
			}
			wg.Wait()
			s.Drain()

			if !reflect.DeepEqual(got, want) {
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("shards=%d frame %d (source %s): got %+v, want %+v",
							shards, i, frames[i].Node, got[i], want[i])
					}
				}
			}

			// Per-source view: group both sides by source and compare, the
			// property as the issue states it.
			group := func(outs []Outcome) map[string][]Outcome {
				by := make(map[string][]Outcome)
				for i, f := range frames {
					key := f.Node.String()
					by[key] = append(by[key], outs[i])
				}
				return by
			}
			if !reflect.DeepEqual(group(got), group(want)) {
				t.Fatalf("shards=%d: per-source outcomes diverge", shards)
			}

			stats := s.Stats()
			if int(stats.Admitted) != len(frames) || int(stats.Scored()) != len(frames) {
				t.Errorf("stats = %+v, want %d admitted and scored", stats, len(frames))
			}
		})
	}
}

// TestShardingEquivalenceRouting pins that every frame of one source lands
// on the same shard — the property that makes per-source ordering
// meaningful.
func TestShardingEquivalenceRouting(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		ring, err := NewRing(shards)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 64; s++ {
			node := PenNode(s)
			first := ring.Shard(node[:])
			for again := 0; again < 3; again++ {
				if got := ring.Shard(node[:]); got != first {
					t.Fatalf("shards=%d source %d: shard flapped %d -> %d", shards, s, first, got)
				}
			}
		}
	}
}
