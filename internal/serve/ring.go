package serve

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per shard on the ring.
// 64 vnodes keep the worst-case shard imbalance within a few percent at
// the shard counts the server runs (1..64) while the ring stays small
// enough to sit in cache.
const DefaultReplicas = 64

// ringPoint is one virtual node: a position on the hash circle owned by a
// shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring maps source identifiers onto shards by consistent hashing: each
// shard owns DefaultReplicas points on a 64-bit circle, and a source goes
// to the shard owning the first point at or after the source's hash. The
// map is a pure function of (shards, replicas), so every process in a
// deployment computes the same assignment, and changing the shard count
// moves only ~1/n of the keyspace instead of reshuffling everything.
type Ring struct {
	points []ringPoint
	shards int
}

// NewRing builds the ring for n shards with the default replica count.
func NewRing(n int) (*Ring, error) {
	return NewRingReplicas(n, DefaultReplicas)
}

// NewRingReplicas builds the ring for n shards with r virtual nodes per
// shard.
func NewRingReplicas(n, r int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: ring needs at least one shard, got %d", n)
	}
	if r < 1 {
		return nil, fmt.Errorf("serve: ring needs at least one replica, got %d", r)
	}
	points := make([]ringPoint, 0, n*r)
	var key []byte
	for s := 0; s < n; s++ {
		for v := 0; v < r; v++ {
			key = key[:0]
			key = append(key, "shard-"...)
			key = strconv.AppendInt(key, int64(s), 10)
			key = append(key, '-')
			key = strconv.AppendInt(key, int64(v), 10)
			points = append(points, ringPoint{hash: fnv64a(key), shard: s})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Ties (vanishingly rare) break on shard index so the ring is a
		// deterministic function of its inputs, not of sort stability.
		return points[i].shard < points[j].shard
	})
	return &Ring{points: points, shards: n}, nil
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Shard returns the shard owning the source identifier.
//
// The lookup is allocation-free and lock-free: the ring is immutable
// after construction.
func (r *Ring) Shard(source []byte) int {
	h := fnv64a(source)
	// First point at or after h, wrapping to the first point.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// fnv64a is the FNV-1a 64-bit hash — stable across processes and
// architectures, unlike Go's randomized map hash.
func fnv64a(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
