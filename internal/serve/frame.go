package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cqm/internal/particle"
)

// Wire format of a scoring request:
//
//	offset            size  field
//	0                 22    particle frame (header: sync, version, type,
//	                        node, seq, send time, class id, no quality)
//	22                1     cue count n (1..MaxCues)
//	23                4     deadline budget in milliseconds, big endian
//	                        (TypeScoreRequestDeadline only; 0 = expired)
//	23|27             8n    cues, IEEE-754 float64 big endian
//	…+8n              2     CRC-16/CCITT over every byte after the header
//
// A TypeScoreRequest frame has no deadline field: its cue section starts
// right after the count byte, which keeps the original wire format
// bit-compatible. A TypeScoreRequestDeadline frame inserts the 4-byte
// budget between the count and the cues; the budget is relative (time
// remaining at send), so it survives clock skew between client and server
// — the server converts it to an absolute expiry on arrival.
//
// A response is a bare 22-byte particle frame: the packet type carries the
// decision, the quality field carries q (quantized to the codec's q15
// resolution), and node, seq, and send time echo the request so a client
// can match responses to in-flight requests on a pipelined connection.

// Packet types of the serving protocol, occupying a disjoint range above
// the particle sensor types.
const (
	// TypeScoreRequest asks the server to score (cues, class).
	TypeScoreRequest particle.PacketType = 0x10
	// TypeAccepted reports q > threshold; the quality field carries q.
	TypeAccepted particle.PacketType = 0x11
	// TypeDiscarded reports q <= threshold; the quality field carries q.
	TypeDiscarded particle.PacketType = 0x12
	// TypeEpsilon reports the ε error state: quality not computable.
	TypeEpsilon particle.PacketType = 0x13
	// TypeRejected reports an unscored request; the class-id field
	// carries the RejectCode.
	TypeRejected particle.PacketType = 0x14
	// TypeScoreRequestDeadline is a score request carrying a per-request
	// deadline budget; the server rejects it (RejectDeadline) instead of
	// scoring it once the budget is spent.
	TypeScoreRequestDeadline particle.PacketType = 0x15
)

// MaxCues bounds the cue vector a request may carry.
const MaxCues = 16

// deadlineFieldLen is the width of the deadline budget field.
const deadlineFieldLen = 4

// maxRequestLen is the longest possible encoded request.
const maxRequestLen = particle.FrameLen + 1 + deadlineFieldLen + 8*MaxCues + 2

// Typed protocol errors of the serving frame codec. Header errors from
// the particle codec (particle.ErrSync, particle.ErrCRC, …) pass through
// wrapped, so both families are matchable with errors.Is.
var (
	// ErrRequestLength reports a request too short or too long for its
	// declared cue count.
	ErrRequestLength = errors.New("serve: bad request length")
	// ErrRequestType reports a header whose packet type is not
	// TypeScoreRequest.
	ErrRequestType = errors.New("serve: not a score request")
	// ErrCueCount reports a cue count outside 1..MaxCues.
	ErrCueCount = errors.New("serve: cue count outside range")
	// ErrCueCRC reports a corrupted cue section.
	ErrCueCRC = errors.New("serve: cue section CRC mismatch")
	// ErrCueValue reports a non-finite cue.
	ErrCueValue = errors.New("serve: non-finite cue")
	// ErrRequestQuality reports a request whose header carries a quality
	// annotation (requests ask for quality; they do not bring one).
	ErrRequestQuality = errors.New("serve: request carries a quality annotation")
)

// RejectCode explains an explicit rejection in a TypeRejected response.
type RejectCode byte

// Reject codes.
const (
	// RejectNone is the zero value (not a rejection).
	RejectNone RejectCode = 0
	// RejectOverloaded reports a full shard queue (back off and retry).
	RejectOverloaded RejectCode = 1
	// RejectDraining reports a server refusing new work during shutdown.
	RejectDraining RejectCode = 2
	// RejectUnavailable reports that no model is loaded yet.
	RejectUnavailable RejectCode = 3
	// RejectProtocol reports a malformed request (binary front only:
	// the reject echoes what little of the header could be read).
	RejectProtocol RejectCode = 4
	// RejectInternal reports a scoring failure that is not ε.
	RejectInternal RejectCode = 5
	// RejectDeadline reports an admitted request whose deadline budget
	// expired before a ScoreBatch slot was spent on it.
	RejectDeadline RejectCode = 6
	// RejectShed reports an admitted request dropped by adaptive load
	// shedding: queue sojourn stayed above the CoDel target for a full
	// interval, so the server trades this request for queue health.
	RejectShed RejectCode = 7
)

// String names the code for logs and JSON payloads.
func (c RejectCode) String() string {
	switch c {
	case RejectOverloaded:
		return "overloaded"
	case RejectDraining:
		return "draining"
	case RejectUnavailable:
		return "unavailable"
	case RejectProtocol:
		return "protocol"
	case RejectInternal:
		return "internal"
	case RejectDeadline:
		return "deadline"
	case RejectShed:
		return "shed"
	default:
		return fmt.Sprintf("RejectCode(%d)", byte(c))
	}
}

// Request is one decoded scoring request.
type Request struct {
	// Node identifies the producing source; it keys the shard map.
	Node particle.NodeID
	// Seq is the client's per-source sequence number, echoed back.
	Seq uint16
	// SentMillis is the client's send stamp, echoed back (the server
	// never interprets it — timing belongs to the client).
	SentMillis uint32
	// ClassID is the classifier output c to score.
	ClassID byte
	// Cues is the classifier input v_C (1..MaxCues finite values).
	Cues []float64
	// DeadlineMillis is the request's remaining deadline budget in
	// milliseconds at send time; 0 means no deadline. A non-zero budget
	// selects the TypeScoreRequestDeadline wire form and asks the server
	// to reject (RejectDeadline) rather than score once it is spent.
	DeadlineMillis uint32
}

// Validate checks the request against the codec's bounds.
func (r *Request) Validate() error {
	if len(r.Cues) < 1 || len(r.Cues) > MaxCues {
		return fmt.Errorf("%w: %d cues", ErrCueCount, len(r.Cues))
	}
	for i, c := range r.Cues {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: cue %d is %v", ErrCueValue, i, c)
		}
	}
	return nil
}

// EncodeRequest serializes a scoring request; a non-zero DeadlineMillis
// selects the deadline-carrying wire form.
func EncodeRequest(r Request) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	typ := TypeScoreRequest
	deadline := 0
	if r.DeadlineMillis > 0 {
		typ = TypeScoreRequestDeadline
		deadline = deadlineFieldLen
	}
	header, err := particle.Encode(particle.ContextPacket{
		Type:       typ,
		Node:       r.Node,
		Seq:        r.Seq,
		SentMillis: r.SentMillis,
		ClassID:    r.ClassID,
	})
	if err != nil {
		return nil, err
	}
	out := make([]byte, particle.FrameLen+1+deadline+8*len(r.Cues)+2)
	copy(out, header)
	out[particle.FrameLen] = byte(len(r.Cues))
	if deadline > 0 {
		binary.BigEndian.PutUint32(out[particle.FrameLen+1:], r.DeadlineMillis)
	}
	for i, c := range r.Cues {
		binary.BigEndian.PutUint64(out[particle.FrameLen+1+deadline+8*i:], math.Float64bits(c))
	}
	tail := particle.FrameLen + 1 + deadline + 8*len(r.Cues)
	binary.BigEndian.PutUint16(out[tail:], particle.CRC16(out[particle.FrameLen:tail]))
	return out, nil
}

// DecodeRequest parses and verifies one complete request frame.
func DecodeRequest(data []byte) (Request, error) {
	if len(data) < particle.FrameLen+1 {
		return Request{}, fmt.Errorf("%w: %d bytes", ErrRequestLength, len(data))
	}
	pkt, err := particle.Decode(data[:particle.FrameLen])
	if err != nil {
		return Request{}, err
	}
	req, n, deadline, err := requestFromHeader(pkt, data[particle.FrameLen])
	if err != nil {
		return Request{}, err
	}
	if len(data) != particle.FrameLen+1+deadline+8*n+2 {
		return Request{}, fmt.Errorf("%w: %d bytes for %d cues", ErrRequestLength, len(data), n)
	}
	if err := decodeSection(&req, data[particle.FrameLen:], deadline); err != nil {
		return Request{}, err
	}
	return req, nil
}

// requestFromHeader validates the decoded header and cue count, returning
// the partially filled request and the width of the deadline field (0 for
// the plain request form).
func requestFromHeader(pkt particle.ContextPacket, count byte) (Request, int, int, error) {
	deadline := 0
	switch pkt.Type {
	case TypeScoreRequest:
	case TypeScoreRequestDeadline:
		deadline = deadlineFieldLen
	default:
		return Request{}, 0, 0, fmt.Errorf("%w: type 0x%02X", ErrRequestType, byte(pkt.Type))
	}
	if pkt.HasQuality {
		return Request{}, 0, 0, ErrRequestQuality
	}
	n := int(count)
	if n < 1 || n > MaxCues {
		return Request{}, 0, 0, fmt.Errorf("%w: %d", ErrCueCount, n)
	}
	return Request{
		Node:       pkt.Node,
		Seq:        pkt.Seq,
		SentMillis: pkt.SentMillis,
		ClassID:    pkt.ClassID,
	}, n, deadline, nil
}

// decodeSection verifies the post-header section (count byte, optional
// deadline budget, cues, CRC) and fills req.Cues and req.DeadlineMillis.
// section starts at the count byte and spans exactly 1+deadline+8n+2
// bytes, with deadline the width reported by requestFromHeader.
func decodeSection(req *Request, section []byte, deadline int) error {
	n := int(section[0])
	body := section[:1+deadline+8*n]
	if got, want := binary.BigEndian.Uint16(section[len(body):]), particle.CRC16(body); got != want {
		return fmt.Errorf("%w: got 0x%04X, want 0x%04X", ErrCueCRC, got, want)
	}
	if deadline > 0 {
		req.DeadlineMillis = binary.BigEndian.Uint32(body[1:])
	}
	cues := make([]float64, n)
	for i := range cues {
		c := math.Float64frombits(binary.BigEndian.Uint64(body[1+deadline+8*i:]))
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: cue %d is %v", ErrCueValue, i, c)
		}
		cues[i] = c
	}
	req.Cues = cues
	return nil
}

// ReadRequest reads one self-delimiting request from a byte stream: the
// fixed header, the cue count, then exactly the declared cue (and, for the
// deadline form, budget) section. It returns the decoded request; io
// errors pass through (io.EOF at a clean frame boundary,
// io.ErrUnexpectedEOF inside a frame).
func ReadRequest(r io.Reader) (Request, error) {
	var buf [maxRequestLen]byte
	if _, err := io.ReadFull(r, buf[:particle.FrameLen+1]); err != nil {
		return Request{}, err
	}
	pkt, err := particle.Decode(buf[:particle.FrameLen])
	if err != nil {
		return Request{}, err
	}
	req, n, deadline, err := requestFromHeader(pkt, buf[particle.FrameLen])
	if err != nil {
		return Request{}, err
	}
	rest := deadline + 8*n + 2
	if _, err := io.ReadFull(r, buf[particle.FrameLen+1:particle.FrameLen+1+rest]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Request{}, err
	}
	if err := decodeSection(&req, buf[particle.FrameLen:particle.FrameLen+1+rest], deadline); err != nil {
		return Request{}, err
	}
	return req, nil
}

// Status is the serving outcome of one admitted request.
type Status byte

// Statuses.
const (
	// StatusAccepted reports q > threshold.
	StatusAccepted Status = iota
	// StatusDiscarded reports q <= threshold.
	StatusDiscarded
	// StatusEpsilon reports the ε error state.
	StatusEpsilon
)

// String names the status for logs and JSON payloads.
func (s Status) String() string {
	switch s {
	case StatusAccepted:
		return "accepted"
	case StatusDiscarded:
		return "discarded"
	case StatusEpsilon:
		return "epsilon"
	default:
		return fmt.Sprintf("Status(%d)", byte(s))
	}
}

// Response is one decoded scoring response.
type Response struct {
	// Node, Seq, and SentMillis echo the request.
	Node       particle.NodeID
	Seq        uint16
	SentMillis uint32
	// Rejected distinguishes explicit rejections from scored outcomes.
	Rejected bool
	// Reject explains a rejection (valid when Rejected).
	Reject RejectCode
	// Status is the scoring outcome (valid when !Rejected).
	Status Status
	// Q is the quality value (valid for StatusAccepted and
	// StatusDiscarded; quantized to particle.QualityResolution on the
	// wire).
	Q float64
}

// EncodeResponse serializes a response as a bare particle frame.
func EncodeResponse(r Response) ([]byte, error) {
	pkt := particle.ContextPacket{
		Node:       r.Node,
		Seq:        r.Seq,
		SentMillis: r.SentMillis,
	}
	switch {
	case r.Rejected:
		pkt.Type = TypeRejected
		pkt.ClassID = byte(r.Reject)
	case r.Status == StatusEpsilon:
		pkt.Type = TypeEpsilon
	case r.Status == StatusAccepted:
		pkt.Type = TypeAccepted
		pkt.Quality = r.Q
		pkt.HasQuality = true
	default:
		pkt.Type = TypeDiscarded
		pkt.Quality = r.Q
		pkt.HasQuality = true
	}
	return particle.Encode(pkt)
}

// DecodeResponse parses a response frame.
func DecodeResponse(frame []byte) (Response, error) {
	pkt, err := particle.Decode(frame)
	if err != nil {
		return Response{}, err
	}
	resp := Response{
		Node:       pkt.Node,
		Seq:        pkt.Seq,
		SentMillis: pkt.SentMillis,
	}
	switch pkt.Type {
	case TypeAccepted:
		resp.Status = StatusAccepted
		resp.Q = pkt.Quality
	case TypeDiscarded:
		resp.Status = StatusDiscarded
		resp.Q = pkt.Quality
	case TypeEpsilon:
		resp.Status = StatusEpsilon
	case TypeRejected:
		resp.Rejected = true
		resp.Reject = RejectCode(pkt.ClassID)
	default:
		return Response{}, fmt.Errorf("%w: type 0x%02X", ErrRequestType, byte(pkt.Type))
	}
	return resp, nil
}
