package serve

import (
	"io"
	"math"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/particle"
)

// writeModelArtifact persists m as a measure artifact at path.
func writeModelArtifact(t *testing.T, path string, m *core.Measure, epoch int) {
	t.Helper()
	man := ckpt.Manifest{
		Kind:      ckpt.KindMeasure,
		CreatedAt: time.Date(2026, 1, 1, 0, 0, epoch, 0, time.UTC),
		Epoch:     epoch,
	}
	if err := ckpt.WriteArtifact(path, man, m); err != nil {
		t.Fatal(err)
	}
}

// e2eClient drives one pipelined binary connection and tallies every
// response it gets back.
type e2eClient struct {
	conn       *net.TCPConn
	sent       atomic.Uint64
	responses  atomic.Uint64
	accepted   atomic.Uint64
	discarded  atomic.Uint64
	epsilon    atomic.Uint64
	rejected   atomic.Uint64
	readerDone chan struct{}
}

// dialE2E connects to the binary front and starts the response reader.
func dialE2E(t *testing.T, addr string) *e2eClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := &e2eClient{conn: conn.(*net.TCPConn), readerDone: make(chan struct{})}
	go func() {
		defer close(c.readerDone)
		var frame [particle.FrameLen]byte
		for {
			if _, err := io.ReadFull(c.conn, frame[:]); err != nil {
				return
			}
			resp, err := DecodeResponse(frame[:])
			if err != nil {
				t.Errorf("undecodable response: %v", err)
				return
			}
			c.responses.Add(1)
			switch {
			case resp.Rejected:
				c.rejected.Add(1)
			case resp.Status == StatusAccepted:
				c.accepted.Add(1)
			case resp.Status == StatusDiscarded:
				c.discarded.Add(1)
			default:
				c.epsilon.Add(1)
			}
		}
	}()
	return c
}

// send writes one request frame for the given pen; callers decide how to
// treat a failure (the sender goroutines must not Fatal).
func (c *e2eClient) send(pen int, seq uint16) error {
	frame, err := EncodeRequest(Request{
		Node: PenNode(pen),
		Seq:  seq,
		Cues: []float64{0.5},
	})
	if err != nil {
		return err
	}
	if _, err := c.conn.Write(frame); err != nil {
		return err
	}
	c.sent.Add(1)
	return nil
}

// TestE2ELifecycle is the serving lifecycle end to end over the binary
// front: load against model A, a hot model swap mid-stream (watcher poll,
// no mixed-model batch), then a drain initiated while clients are still
// sending — and at the end every sent frame has exactly one response:
// scored or explicitly rejected, never silently dropped.
func TestE2ELifecycle(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	writeModelArtifact(t, modelPath, biasMeasure(t, 0.25), 1)

	handle := ckpt.NewHandle(nil)
	watcher, err := ckpt.NewModelWatcher(ckpt.WatchConfig{Path: modelPath}, handle)
	if err != nil {
		t.Fatal(err)
	}
	if swapped, err := watcher.Poll(); err != nil || !swapped {
		t.Fatalf("initial poll: swapped=%v err=%v", swapped, err)
	}

	// The no-mixed-batch observer: model A scores every frame exactly
	// 0.25, model B exactly 0.75, so a batch holding both values would
	// prove a swap landed inside a batch.
	var batchMu sync.Mutex
	lowBatches, highBatches := 0, 0
	observer := func(m *core.Measure, outs []Outcome) {
		var q float64
		seen := false
		for _, o := range outs {
			if o.Status == StatusEpsilon {
				continue
			}
			if !seen {
				q, seen = o.Q, true
				continue
			}
			if math.Abs(o.Q-q) > 1e-12 {
				t.Errorf("mixed-model batch: q %v and %v in one ScoreBatch", q, o.Q)
			}
		}
		if !seen {
			return
		}
		batchMu.Lock()
		if q < 0.5 {
			lowBatches++
		} else {
			highBatches++
		}
		batchMu.Unlock()
	}

	srv, err := New(Config{
		Shards:        4,
		QueueDepth:    4096,
		BatchSize:     256,
		Threshold:     0.5,
		Handle:        handle,
		BatchObserver: observer,
	})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ServeBinary(ln) }()

	clients := []*e2eClient{dialE2E(t, ln.Addr().String()), dialE2E(t, ln.Addr().String())}

	// Phase 1: traffic against model A, fully answered before the swap.
	const phase1 = 500
	for i := 0; i < phase1; i++ {
		for ci, c := range clients {
			if err := c.send(ci*10000+i%200, uint16(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for ci, c := range clients {
		c := c
		waitUntil(t, "phase-1 responses", func() bool { return c.responses.Load() == c.sent.Load() })
		if c.discarded.Load() == 0 {
			t.Fatalf("client %d: no discards against the 0.25 model", ci)
		}
		if c.accepted.Load() != 0 {
			t.Fatalf("client %d: %d accepts against the 0.25 model", ci, c.accepted.Load())
		}
	}

	// Hot swap to model B mid-stream.
	writeModelArtifact(t, modelPath, biasMeasure(t, 0.75), 2)
	if swapped, err := watcher.Poll(); err != nil || !swapped {
		t.Fatalf("swap poll: swapped=%v err=%v", swapped, err)
	}

	// Phase 2: clients keep sending while the server is told to drain —
	// the kill-under-load half of the lifecycle.
	var stop atomic.Bool
	var senders sync.WaitGroup
	for ci, c := range clients {
		senders.Add(1)
		go func(ci int, c *e2eClient) {
			defer senders.Done()
			for seq := 0; !stop.Load(); seq++ {
				if err := c.send(ci*10000+seq%200, uint16(seq)); err != nil {
					t.Errorf("phase-2 send: %v", err)
					return
				}
			}
		}(ci, c)
	}
	preDrain := srv.Stats().Admitted
	waitUntil(t, "phase-2 traffic scored", func() bool { return srv.Stats().Admitted > preDrain+500 })

	srv.Drain() // while the senders are still firing
	stop.Store(true)
	senders.Wait()

	// Stop sending, let every in-flight response arrive, then read EOF.
	for _, c := range clients {
		if err := c.conn.CloseWrite(); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range clients {
		<-c.readerDone
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("ServeBinary: %v", err)
	}

	// Zero lost frames end to end: every sent frame got exactly one
	// response.
	var sent, responses, accepted, discarded, epsilon, rejected uint64
	for ci, c := range clients {
		if c.responses.Load() != c.sent.Load() {
			t.Errorf("client %d: sent %d, got %d responses", ci, c.sent.Load(), c.responses.Load())
		}
		sent += c.sent.Load()
		responses += c.responses.Load()
		accepted += c.accepted.Load()
		discarded += c.discarded.Load()
		epsilon += c.epsilon.Load()
		rejected += c.rejected.Load()
	}
	if responses != sent {
		t.Fatalf("sent %d frames, received %d responses", sent, responses)
	}

	// Server-side accounting agrees with what the clients saw.
	stats := srv.Stats()
	if stats.Admitted != stats.Scored() {
		t.Errorf("admitted %d != scored %d: %+v", stats.Admitted, stats.Scored(), stats)
	}
	if stats.RejectedUnavailable != 0 || stats.RejectedInternal != 0 {
		t.Errorf("unexpected rejects: %+v", stats)
	}
	if got := accepted + discarded + epsilon; got != stats.Scored() {
		t.Errorf("clients saw %d scored, server scored %d", got, stats.Scored())
	}
	if want := stats.RejectedDraining + stats.RejectedOverload; rejected != want {
		t.Errorf("clients saw %d rejects, server rejected %d", rejected, want)
	}

	// Both models actually served, and never inside one batch.
	batchMu.Lock()
	defer batchMu.Unlock()
	if lowBatches == 0 || highBatches == 0 {
		t.Errorf("model mix not exercised: %d low batches, %d high batches", lowBatches, highBatches)
	}
	if accepted == 0 || discarded == 0 {
		t.Errorf("decision mix not exercised: %d accepted, %d discarded", accepted, discarded)
	}
}

// TestE2EMalformedFrameClosesConnection pins the binary front's protocol
// fault handling: garbage answers one best-effort reject frame, then the
// connection closes (a desynchronized stream cannot continue).
func TestE2EMalformedFrameClosesConnection(t *testing.T) {
	srv := biasServer(t, 0.75, Config{Threshold: 0.5})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() { _ = srv.ServeBinary(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	var frame [particle.FrameLen]byte
	if _, err := io.ReadFull(conn, frame[:]); err != nil {
		t.Fatalf("reading reject frame: %v", err)
	}
	resp, err := DecodeResponse(frame[:])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Rejected || resp.Reject != RejectProtocol {
		t.Fatalf("resp = %+v, want protocol reject", resp)
	}
	// Then EOF: the server hung up.
	if _, err := io.ReadFull(conn, frame[:1]); err == nil {
		t.Fatal("connection still open after protocol fault")
	}
}
