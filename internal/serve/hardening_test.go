package serve

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cqm/internal/ckpt"
	"cqm/internal/core"
)

func TestHardeningConfigValidation(t *testing.T) {
	handle := ckpt.NewHandle(biasMeasure(t, 0.75))
	bad := []Config{
		{Handle: handle, ShedTarget: -time.Millisecond},
		{Handle: handle, ShedInterval: -time.Millisecond},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// A negative IdleTimeout is valid: it disables connection deadlines.
	srv, err := New(Config{Handle: handle, IdleTimeout: -1})
	if err != nil {
		t.Fatalf("negative idle timeout rejected: %v", err)
	}
	srv.Drain()
}

func TestDeadlineExpiredBeforeScoringRejected(t *testing.T) {
	// The first clock read (admission stamp) is T0; every later read —
	// including the shard's dequeue-time check — lands 10s later, far past
	// the request's 100ms budget.
	base := time.Unix(1000, 0)
	var calls atomic.Int64
	clock := func() time.Time {
		if calls.Add(1) == 1 {
			return base
		}
		return base.Add(10 * time.Second)
	}
	srv := biasServer(t, 0.75, Config{Clock: clock})

	req := penRequest(1, 1, 0.5)
	req.DeadlineMillis = 100
	if _, err := srv.Submit(req); !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	stats := srv.Stats()
	if stats.RejectedDeadline != 1 {
		t.Fatalf("RejectedDeadline = %d, want 1", stats.RejectedDeadline)
	}
	// A request without a deadline sails through the same late clock.
	if _, err := srv.Submit(penRequest(1, 2, 0.5)); err != nil {
		t.Fatalf("deadline-free request rejected: %v", err)
	}
	srv.Drain()
	stats = srv.Stats()
	if got := stats.Scored() + stats.AdmittedRejects(); got != stats.Admitted {
		t.Fatalf("invariant violated: admitted %d, answered %d", stats.Admitted, got)
	}
}

func TestShardPanicRecoveryKeepsServing(t *testing.T) {
	// An observer that panics after every batch exercises the supervisor on
	// each request: the batch is already answered when the panic fires, the
	// worker restarts, and the next request is served as if nothing
	// happened.
	srv := biasServer(t, 0.75, Config{
		BatchObserver: func(m *core.Measure, outs []Outcome) {
			panic("hostile observer")
		},
	})
	const n = 10
	for i := 0; i < n; i++ {
		out, err := srv.Submit(penRequest(i, uint16(i), 0.5))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if out.Status != StatusAccepted {
			t.Fatalf("request %d: %+v", i, out)
		}
	}
	waitUntil(t, "shard restarts recorded", func() bool {
		return srv.Stats().ShardRestarts >= n
	})
	srv.Drain()
	stats := srv.Stats()
	if stats.Scored() != n {
		t.Fatalf("scored %d, want %d", stats.Scored(), n)
	}
	if got := stats.Scored() + stats.AdmittedRejects(); got != stats.Admitted {
		t.Fatalf("invariant violated across panics: admitted %d, answered %d", stats.Admitted, got)
	}
}

func TestAnswerUnansweredSkipsNilledSlots(t *testing.T) {
	// The supervisor's contract: batch entries are nilled exactly when
	// answered, so recovery must answer only the non-nil remainder — never
	// double-answering, never leaking.
	srv := biasServer(t, 0.75, Config{})
	sh := &shard{srv: srv}
	a := &task{done: make(chan result, 1)}
	b := &task{done: make(chan result, 1)}
	sh.batch = []*task{a, nil, b}
	sh.answerUnanswered(RejectInternal)

	for i, tk := range []*task{a, b} {
		select {
		case r := <-tk.done:
			if r.reject != RejectInternal {
				t.Fatalf("task %d rejected with %v, want internal", i, r.reject)
			}
		default:
			t.Fatalf("task %d not answered", i)
		}
	}
	if len(sh.batch) != 0 {
		t.Fatalf("batch not emptied: %d entries", len(sh.batch))
	}
	if got := srv.Stats().RejectedInternal; got != 2 {
		t.Fatalf("RejectedInternal = %d, want 2", got)
	}
	// Idempotent: a second crash answers nothing further.
	sh.answerUnanswered(RejectInternal)
	if got := srv.Stats().RejectedInternal; got != 2 {
		t.Fatalf("double-answered: RejectedInternal = %d", got)
	}
}

func TestCodelControlLaw(t *testing.T) {
	target, interval := 5*time.Millisecond, 100*time.Millisecond
	c := codel{target: target, interval: interval}
	now := time.Unix(0, 0)
	high := 20 * time.Millisecond

	if c.drop(now, time.Millisecond) {
		t.Fatal("dropped below target")
	}
	if c.drop(now, high) {
		t.Fatal("dropped on first above-target observation (no grace)")
	}
	if c.drop(now.Add(interval/2), high) {
		t.Fatal("dropped inside the grace interval")
	}
	if !c.drop(now.Add(interval+time.Millisecond), high) {
		t.Fatal("did not drop after a full above-target interval")
	}
	// Immediately after a drop the next one is scheduled interval/sqrt(2)
	// away — the very next dequeue must pass.
	at := now.Add(interval + 2*time.Millisecond)
	if c.drop(at, high) {
		t.Fatal("dropped before the scheduled cadence")
	}
	// The cadence accelerates: with persistent excursion, drops come at
	// interval/sqrt(count) spacing.
	at = at.Add(time.Duration(float64(interval) / 1.41))
	if !c.drop(at, high) {
		t.Fatal("no drop at the accelerated cadence")
	}
	// Recovery: one below-target sojourn resets the controller entirely.
	if c.drop(at, time.Millisecond) {
		t.Fatal("dropped a below-target task")
	}
	if c.drop(at.Add(interval), high) {
		t.Fatal("dropped without a fresh grace interval after recovery")
	}

	off := codel{}
	if off.drop(now, time.Hour) {
		t.Fatal("disabled controller dropped")
	}
}

func TestCodelHysteresisResumesCadence(t *testing.T) {
	c := codel{target: time.Millisecond, interval: 100 * time.Millisecond}
	now := time.Unix(0, 0)
	high := 50 * time.Millisecond

	// Drive a long dropping episode to build up count.
	c.drop(now, high)                     // first above: grace
	now = now.Add(101 * time.Millisecond) // past grace
	for i := 0; i < 50; i++ {
		if c.drop(now, high) {
			now = now.Add(time.Millisecond)
		} else {
			now = now.Add(5 * time.Millisecond)
		}
	}
	episodes := c.count
	if episodes < 3 {
		t.Fatalf("episode built count %d, want ≥ 3", episodes)
	}
	// Brief recovery, then a new excursion: the count resumes near the old
	// value (count-2), not from 1.
	c.drop(now, 0)
	c.drop(now, high) // grace starts
	now = now.Add(101 * time.Millisecond)
	if !c.drop(now, high) {
		t.Fatal("no drop after re-entry grace")
	}
	if c.count != episodes-2+1 {
		t.Fatalf("re-entry count %d, want %d (hysteresis)", c.count, episodes-2+1)
	}
}
