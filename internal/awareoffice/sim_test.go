package awareoffice

import (
	"errors"
	"testing"
)

func TestSimulationRunsInTimeOrder(t *testing.T) {
	sim := NewSimulation(1)
	var order []int
	if err := sim.Schedule(2.0, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if err := sim.Schedule(1.0, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := sim.Schedule(3.0, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	sim.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if sim.Now() != 10 {
		t.Errorf("Now = %v, want 10", sim.Now())
	}
}

func TestSimulationTieBreakIsFIFO(t *testing.T) {
	sim := NewSimulation(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := sim.Schedule(1.0, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time actions reordered: %v", order)
		}
	}
}

func TestSimulationRunUntilBoundary(t *testing.T) {
	sim := NewSimulation(1)
	ran := false
	if err := sim.Schedule(5.0, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	sim.Run(4.9)
	if ran {
		t.Error("action beyond `until` executed")
	}
	if sim.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", sim.Pending())
	}
	sim.Run(5.0) // boundary inclusive
	if !ran {
		t.Error("action at `until` not executed")
	}
}

func TestSimulationNestedScheduling(t *testing.T) {
	sim := NewSimulation(1)
	var events []float64
	if err := sim.Schedule(1, func() {
		events = append(events, sim.Now())
		// Chain another action from within a running one.
		_ = sim.Schedule(sim.Now()+0.5, func() {
			events = append(events, sim.Now())
		})
	}); err != nil {
		t.Fatal(err)
	}
	sim.Run(3)
	if len(events) != 2 || events[0] != 1 || events[1] != 1.5 {
		t.Errorf("events = %v", events)
	}
}

func TestSimulationRandDeterministic(t *testing.T) {
	a := NewSimulation(7).Rand().Float64()
	b := NewSimulation(7).Rand().Float64()
	if a != b {
		t.Error("same-seed simulations expose different randomness")
	}
}

func TestSimulationRejectsPast(t *testing.T) {
	sim := NewSimulation(1)
	if err := sim.Schedule(2, func() {}); err != nil {
		t.Fatal(err)
	}
	sim.Run(5)
	if err := sim.Schedule(1, func() {}); !errors.Is(err, ErrPastDeadline) {
		t.Errorf("err = %v, want ErrPastDeadline", err)
	}
	// Scheduling exactly "now" is allowed.
	if err := sim.Schedule(sim.Now(), func() {}); err != nil {
		t.Errorf("scheduling now rejected: %v", err)
	}
}

func TestBusDeliversWithLatency(t *testing.T) {
	sim := NewSimulation(1)
	bus, err := NewBus(sim, Link{Latency: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []float64
	bus.Subscribe("camera", func(ev Event) { arrivals = append(arrivals, sim.Now()) })
	if err := sim.Schedule(1, func() {
		_ = bus.Publish(Event{Source: "pen", Sent: 1})
	}); err != nil {
		t.Fatal(err)
	}
	sim.Run(5)
	if len(arrivals) != 1 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 1.25 {
		t.Errorf("arrival at %v, want 1.25", arrivals[0])
	}
}

func TestBusNoSelfDelivery(t *testing.T) {
	sim := NewSimulation(1)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	bus.Subscribe("pen", func(Event) { count++ })
	_ = bus.Publish(Event{Source: "pen"})
	sim.Run(1)
	if count != 0 {
		t.Error("publisher received its own event")
	}
}

func TestBusLossPartition(t *testing.T) {
	sim := NewSimulation(2)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	bus.Subscribe("camera", func(Event) { got++ })
	if err := bus.SetLink("camera", Link{Loss: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_ = bus.Publish(Event{Source: "pen", Seq: i})
	}
	sim.Run(1)
	if got != 0 {
		t.Errorf("partitioned camera received %d events", got)
	}
	st := bus.Stats()
	if st.Published != 20 || st.Dropped != 20 {
		t.Errorf("stats: published %d dropped %d", st.Published, st.Dropped)
	}
}

func TestBusPartialLossStatistics(t *testing.T) {
	sim := NewSimulation(3)
	bus, err := NewBus(sim, Link{Loss: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	bus.Subscribe("camera", func(Event) { got++ })
	const n = 2000
	for i := 0; i < n; i++ {
		_ = bus.Publish(Event{Source: "pen", Seq: i})
	}
	sim.Run(1)
	if got < n/2-150 || got > n/2+150 {
		t.Errorf("with 50%% loss received %d of %d", got, n)
	}
}

func TestBusDuplication(t *testing.T) {
	sim := NewSimulation(4)
	bus, err := NewBus(sim, Link{Duplicate: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	bus.Subscribe("camera", func(Event) { got++ })
	_ = bus.Publish(Event{Source: "pen"})
	sim.Run(1)
	if got != 2 {
		t.Errorf("duplicate link delivered %d copies, want 2", got)
	}
}

func TestBusJitterBounded(t *testing.T) {
	sim := NewSimulation(5)
	bus, err := NewBus(sim, Link{Latency: 0.1, Jitter: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []float64
	bus.Subscribe("camera", func(Event) { arrivals = append(arrivals, sim.Now()) })
	for i := 0; i < 100; i++ {
		_ = bus.Publish(Event{Source: "pen", Seq: i})
	}
	sim.Run(1)
	for _, at := range arrivals {
		if at < 0.1 || at >= 0.3 {
			t.Fatalf("arrival %v outside [0.1, 0.3)", at)
		}
	}
}

func TestBusFanOut(t *testing.T) {
	sim := NewSimulation(6)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := 0, 0
	bus.Subscribe("camera", func(Event) { a++ })
	bus.Subscribe("door-display", func(Event) { b++ })
	_ = bus.Publish(Event{Source: "pen"})
	sim.Run(1)
	if a != 1 || b != 1 {
		t.Errorf("fan-out delivered %d/%d", a, b)
	}
}

func TestLinkValidation(t *testing.T) {
	sim := NewSimulation(7)
	bad := []Link{
		{Latency: -1},
		{Jitter: -1},
		{Loss: 2},
		{Loss: -0.1},
		{Duplicate: 1.5},
	}
	for i, l := range bad {
		if _, err := NewBus(sim, l); !errors.Is(err, ErrBadLink) {
			t.Errorf("bad link %d accepted: %v", i, err)
		}
	}
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.SetLink("x", Link{Loss: 3}); !errors.Is(err, ErrBadLink) {
		t.Errorf("SetLink bad: %v", err)
	}
}

func TestBusDeterministicForSeed(t *testing.T) {
	run := func(seed int64) []float64 {
		sim := NewSimulation(seed)
		bus, err := NewBus(sim, Link{Latency: 0.05, Jitter: 0.1, Loss: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		var arrivals []float64
		bus.Subscribe("camera", func(Event) { arrivals = append(arrivals, sim.Now()) })
		for i := 0; i < 50; i++ {
			_ = bus.Publish(Event{Source: "pen", Seq: i})
		}
		sim.Run(1)
		return arrivals
	}
	a := run(99)
	b := run(99)
	if len(a) != len(b) {
		t.Fatal("non-deterministic delivery count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic delivery times")
		}
	}
}
