package awareoffice

import (
	"errors"
	"fmt"
	"strconv"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/feature"
	"cqm/internal/parallel"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// Appliance errors.
var (
	// ErrNotWired reports an appliance used before Attach.
	ErrNotWired = errors.New("awareoffice: appliance not attached to a bus")
)

// MeasureSource supplies the current quality measure at scoring time — the
// hook hot-reload watchers (ckpt.Handle) plug into. Load may return nil
// when no model is available yet; the appliance then publishes legacy
// events without quality, exactly as with a nil Measure.
type MeasureSource interface {
	// Load returns the measure to score with right now.
	Load() *core.Measure
}

// Pen is the AwarePen appliance: it windows its accelerometer stream,
// classifies every window, scores the classification with the CQM, and
// publishes the result as a context event at the window's end time.
type Pen struct {
	// Name identifies the pen on the bus. Default "awarepen".
	Name string
	// Classifier is the pen's context recognition — any black box.
	Classifier classify.Classifier
	// Measure optionally annotates events with quality values; nil
	// publishes legacy events without quality.
	Measure *core.Measure
	// Source, when non-nil, takes precedence over Measure and is consulted
	// on every scoring decision — the hot-reload path. The measure is
	// snapshotted once per decision, so a concurrent swap never mixes two
	// models inside one batch or window.
	Source MeasureSource
	// WindowSize is the readings per classification window. Default 100.
	WindowSize int
	// Windower pipeline; nil uses the paper's per-axis stddev cues.
	Pipeline *feature.Pipeline
	// Degradation, when non-nil, runs the input-fault detectors over
	// every window; flagged windows are classified as usual but their
	// quality is forced into the ε error state (core.ScoreDegraded), so
	// the event goes out without a quality annotation and quality-aware
	// receivers discard it — graceful degradation through the paper's own
	// ε channel. Detection happens at windowing time and is a pure
	// function of the readings, so it is identical at any worker count.
	Degradation *feature.DegradationConfig
	// PreScoreWorkers, when >= 1, classifies every window at Feed time
	// and scores the classifications in one batch (1 = serial batch,
	// n = n workers) instead of per event as the simulation fires. The
	// published events are bit-identical to the legacy path — the
	// classifier and the measure are pure, so only the evaluation time
	// moves — except that a non-ε scoring failure surfaces as a Feed
	// error instead of a silently unannotated event. 0 keeps the legacy
	// per-event path.
	PreScoreWorkers int
	// Quality, when non-nil, receives one observation per published event
	// — the quality analytics engine's feed point. Observations happen at
	// publish time in virtual-time order, so engine state is bit-identical
	// between the per-event and pre-scored paths at any worker count.
	Quality *quality.Engine
	// Tracer, when non-nil, samples end-to-end pipeline traces starting at
	// the window's sample time. Nil disables tracing at zero cost.
	Tracer *quality.Tracer

	bus      *Bus
	seq      int
	degraded int
}

// Attach wires the pen to a bus.
func (p *Pen) Attach(bus *Bus) {
	p.bus = bus
}

// ScheduleReboot models a node reboot at virtual time at: the pen's
// sequence counter resets to zero, as a real Particle node's would after a
// power cycle. Receivers must tolerate the reset — the dedup window treats
// a sequence far behind the current one as a reboot and restarts tracking
// instead of rejecting the reborn node.
func (p *Pen) ScheduleReboot(sim *Simulation, at float64) error {
	return sim.Schedule(at, func() { p.seq = 0 })
}

// Feed schedules the classification and publication of the recording:
// each window produces one context event at the window's end time.
// It returns the number of scheduled events.
func (p *Pen) Feed(sim *Simulation, readings []sensor.Reading) (int, error) {
	if p.bus == nil {
		return 0, ErrNotWired
	}
	if p.Classifier == nil {
		return 0, fmt.Errorf("awareoffice: pen %q has no classifier", p.name())
	}
	size := p.WindowSize
	if size == 0 {
		size = 100
	}
	windows, err := (feature.Windower{Size: size, Pipeline: p.Pipeline, Degradation: p.Degradation}).Slide(readings)
	if err != nil {
		return 0, fmt.Errorf("awareoffice: windowing pen stream: %w", err)
	}
	for _, w := range windows {
		if w.Degraded.Any() {
			p.degraded++
		}
	}
	if p.PreScoreWorkers >= 1 {
		return p.feedPreScored(sim, windows)
	}
	scheduled := 0
	for _, w := range windows {
		w := w
		at := w.End
		if at < sim.Now() {
			at = sim.Now()
		}
		if err := sim.Schedule(at, func() {
			p.classifyAndPublish(w)
		}); err != nil {
			return scheduled, fmt.Errorf("awareoffice: scheduling window: %w", err)
		}
		scheduled++
	}
	return scheduled, nil
}

// penOutcome is one window's precomputed recognition result.
type penOutcome struct {
	class sensor.Context
	ok    bool // classification publishable
	q     float64
	hasQ  bool
}

// feedPreScored is Feed's batch path: classify every window up front,
// score all publishable classifications in one ScoreBatch, and schedule
// callbacks that only publish the precomputed outcomes.
func (p *Pen) feedPreScored(sim *Simulation, windows []feature.Window) (int, error) {
	outs := make([]penOutcome, len(windows))
	for i, w := range windows {
		class, err := p.Classifier.Classify(w.Cues)
		if err != nil || class == sensor.ContextUnknown {
			continue // stays silent, like the per-event path
		}
		outs[i].class = class
		outs[i].ok = true
	}
	if m := p.measure(); m != nil {
		var batchIdx []int
		var batch []core.Observation
		for i := range outs {
			if !outs[i].ok {
				continue
			}
			if windows[i].Degraded.Any() {
				// ε by construction: the event goes out without quality,
				// exactly like the per-event path's ScoreDegraded result.
				continue
			}
			batchIdx = append(batchIdx, i)
			batch = append(batch, core.Observation{Cues: windows[i].Cues, Class: outs[i].class})
		}
		if len(batch) > 0 {
			qs, ok, err := m.ScoreBatch(batch, parallel.New(p.PreScoreWorkers))
			if err != nil {
				return 0, fmt.Errorf("awareoffice: pre-scoring pen windows: %w", err)
			}
			for bi, i := range batchIdx {
				if ok[bi] {
					outs[i].q, outs[i].hasQ = qs[bi], true
				}
				// ε state: publish without quality, like the per-event path.
			}
		}
	}
	scheduled := 0
	for i, w := range windows {
		w, out := w, outs[i]
		at := w.End
		if at < sim.Now() {
			at = sim.Now()
		}
		if err := sim.Schedule(at, func() {
			p.publishPreScored(w, out)
		}); err != nil {
			return scheduled, fmt.Errorf("awareoffice: scheduling window: %w", err)
		}
		scheduled++
	}
	return scheduled, nil
}

// publishPreScored publishes one precomputed outcome at its window's end.
func (p *Pen) publishPreScored(w feature.Window, out penOutcome) {
	if !out.ok {
		return
	}
	ev := Event{
		Source:  p.name(),
		Context: out.class,
		Sent:    w.End,
		Seq:     p.seq,
	}
	p.seq++
	if out.hasQ {
		ev.Quality = out.q
		ev.HasQuality = true
	}
	p.observe(ev, w)
	// Publish errors cannot occur here: delivery times are >= now.
	_ = p.bus.Publish(ev)
}

// observe feeds the published event to the quality engine and, when the
// sampler picks it, starts a pipeline trace with the pen-side stages.
// Both publish paths call it with identical events, so tracking state is
// identical too.
func (p *Pen) observe(ev Event, w feature.Window) {
	p.Quality.Observe(quality.Observation{
		Source:   ev.Source,
		At:       ev.Sent,
		Q:        ev.Quality,
		HasQ:     ev.HasQuality,
		Degraded: w.Degraded.Any(),
	})
	if p.Tracer.Begin(ev.Source, ev.Seq, w.Start) {
		detail := "epsilon"
		if ev.HasQuality {
			detail = "q=" + strconv.FormatFloat(ev.Quality, 'f', 4, 64)
		}
		p.Tracer.Record(ev.Seq, quality.StageSample, w.Start, "")
		p.Tracer.Record(ev.Seq, quality.StageScore, ev.Sent, detail)
		p.Tracer.Record(ev.Seq, quality.StagePublish, ev.Sent, "")
	}
}

// classifyAndPublish runs the pen's recognition pipeline for one window.
func (p *Pen) classifyAndPublish(w feature.Window) {
	class, err := p.Classifier.Classify(w.Cues)
	if err != nil || class == sensor.ContextUnknown {
		// Out-of-range cues: the appliance stays silent, like a node whose
		// recognizer produced nothing publishable.
		return
	}
	ev := Event{
		Source:  p.name(),
		Context: class,
		Sent:    w.End,
		Seq:     p.seq,
	}
	p.seq++
	if m := p.measure(); m != nil {
		if q, err := p.scoreWindow(m, w, class); err == nil {
			ev.Quality = q
			ev.HasQuality = true
		}
		// ε state: publish without quality; receivers decide what to do
		// with unannotated events.
	}
	p.observe(ev, w)
	// Publish errors cannot occur here: delivery times are >= now.
	_ = p.bus.Publish(ev)
}

// scoreWindow scores one window's classification through the given
// measure snapshot, forcing windows flagged as degraded through the ε
// error state.
func (p *Pen) scoreWindow(m *core.Measure, w feature.Window, class sensor.Context) (float64, error) {
	if w.Degraded.Any() {
		return core.ScoreDegraded()
	}
	return m.Score(w.Cues, class)
}

// measure snapshots the quality measure for one scoring decision: the
// Source when set (hot reload), the static Measure field otherwise.
func (p *Pen) measure() *core.Measure {
	if p.Source != nil {
		return p.Source.Load()
	}
	return p.Measure
}

// DegradedWindows returns the number of fed windows flagged as degraded.
func (p *Pen) DegradedWindows() int { return p.degraded }

func (p *Pen) name() string {
	if p.Name == "" {
		return "awarepen"
	}
	return p.Name
}
