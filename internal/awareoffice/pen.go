package awareoffice

import (
	"errors"
	"fmt"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/feature"
	"cqm/internal/sensor"
)

// Appliance errors.
var (
	// ErrNotWired reports an appliance used before Attach.
	ErrNotWired = errors.New("awareoffice: appliance not attached to a bus")
)

// Pen is the AwarePen appliance: it windows its accelerometer stream,
// classifies every window, scores the classification with the CQM, and
// publishes the result as a context event at the window's end time.
type Pen struct {
	// Name identifies the pen on the bus. Default "awarepen".
	Name string
	// Classifier is the pen's context recognition — any black box.
	Classifier classify.Classifier
	// Measure optionally annotates events with quality values; nil
	// publishes legacy events without quality.
	Measure *core.Measure
	// WindowSize is the readings per classification window. Default 100.
	WindowSize int
	// Windower pipeline; nil uses the paper's per-axis stddev cues.
	Pipeline *feature.Pipeline

	bus *Bus
	seq int
}

// Attach wires the pen to a bus.
func (p *Pen) Attach(bus *Bus) {
	p.bus = bus
}

// Feed schedules the classification and publication of the recording:
// each window produces one context event at the window's end time.
// It returns the number of scheduled events.
func (p *Pen) Feed(sim *Simulation, readings []sensor.Reading) (int, error) {
	if p.bus == nil {
		return 0, ErrNotWired
	}
	if p.Classifier == nil {
		return 0, fmt.Errorf("awareoffice: pen %q has no classifier", p.name())
	}
	size := p.WindowSize
	if size == 0 {
		size = 100
	}
	windows, err := (feature.Windower{Size: size, Pipeline: p.Pipeline}).Slide(readings)
	if err != nil {
		return 0, fmt.Errorf("awareoffice: windowing pen stream: %w", err)
	}
	scheduled := 0
	for _, w := range windows {
		w := w
		at := w.End
		if at < sim.Now() {
			at = sim.Now()
		}
		if err := sim.Schedule(at, func() {
			p.classifyAndPublish(w)
		}); err != nil {
			return scheduled, fmt.Errorf("awareoffice: scheduling window: %w", err)
		}
		scheduled++
	}
	return scheduled, nil
}

// classifyAndPublish runs the pen's recognition pipeline for one window.
func (p *Pen) classifyAndPublish(w feature.Window) {
	class, err := p.Classifier.Classify(w.Cues)
	if err != nil || class == sensor.ContextUnknown {
		// Out-of-range cues: the appliance stays silent, like a node whose
		// recognizer produced nothing publishable.
		return
	}
	ev := Event{
		Source:  p.name(),
		Context: class,
		Sent:    w.End,
		Seq:     p.seq,
	}
	p.seq++
	if p.Measure != nil {
		if q, err := p.Measure.Score(w.Cues, class); err == nil {
			ev.Quality = q
			ev.HasQuality = true
		}
		// ε state: publish without quality; receivers decide what to do
		// with unannotated events.
	}
	// Publish errors cannot occur here: delivery times are >= now.
	_ = p.bus.Publish(ev)
}

func (p *Pen) name() string {
	if p.Name == "" {
		return "awarepen"
	}
	return p.Name
}
