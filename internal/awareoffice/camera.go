package awareoffice

import (
	"math"

	"cqm/internal/obs"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// Metric names of the camera appliance.
const (
	// MetricCameraDecisions counts handled events by decision
	// (accept|ignore|duplicate), per camera.
	MetricCameraDecisions = "awareoffice_camera_decisions_total"
	// MetricCameraSnapshots counts pictures taken, per camera.
	MetricCameraSnapshots = "awareoffice_camera_snapshots_total"
	// MetricCameraFallbacks counts timeout-triggered fallback snapshots,
	// per camera.
	MetricCameraFallbacks = "awareoffice_camera_fallbacks_total"
)

// Snapshot is one picture the camera took.
type Snapshot struct {
	// At is the virtual time of the shutter.
	At float64
	// TriggeredBy is the context event that ended the writing session; for
	// a fallback snapshot it is the last event accepted before the silence.
	TriggeredBy Event
	// Fallback marks a snapshot taken by the silence timeout rather than
	// an observed context switch.
	Fallback bool
}

// Camera is the whiteboard camera appliance from the paper's motivation:
// it "takes a picture copy of the content when a writing session was
// over". It watches the pen's context events and fires when a writing
// phase transitions into a non-writing one.
//
// With UseQuality set, events carrying a quality at or below MinQuality —
// and events carrying no quality at all — are ignored, which is precisely
// the CQM integration the paper proposes for improving the camera's
// decision.
type Camera struct {
	// Name identifies the camera on the bus. Default "whiteboard-camera".
	Name string
	// UseQuality enables CQM filtering of incoming events.
	UseQuality bool
	// MinQuality is the acceptance threshold s when UseQuality is set.
	MinQuality float64
	// DebounceWindows is the number of consecutive agreeing events needed
	// before the camera believes a context switch. Default 1 (trust every
	// event); 2 reproduces a cautious appliance.
	DebounceWindows int
	// FallbackTimeout, when positive, is the graceful-degradation policy
	// for a silent or partitioned pen: if the camera believes writing is in
	// progress and hears nothing for this many virtual seconds, it assumes
	// the session ended, takes a fallback snapshot, and resets to an
	// unknown context. 0 disables the policy.
	FallbackTimeout float64
	// Tracer, when non-nil, records the fusion and decision stages of
	// sampled pipeline traces. Nil disables tracing at zero cost.
	Tracer *quality.Tracer

	current   sensor.Context
	pending   sensor.Context
	pendCount int
	writing   bool
	snapshots []Snapshot
	ignored   int
	accepted  int
	fallbacks int
	seen      seqDedup
	duplicate int
	sim       *Simulation
	watchGen  int
	met       cameraMetrics
}

// cameraMetrics are the camera's pre-resolved counters; nil fields are
// no-ops.
type cameraMetrics struct {
	accepted   *obs.Counter
	ignored    *obs.Counter
	duplicates *obs.Counter
	snapshots  *obs.Counter
	fallbacks  *obs.Counter
}

// Instrument registers the camera's decision and snapshot counters on
// reg; a nil registry turns instrumentation off.
func (c *Camera) Instrument(reg *obs.Registry) {
	if reg == nil {
		c.met = cameraMetrics{}
		return
	}
	reg.Help(MetricCameraDecisions, "Camera event handling by decision.")
	reg.Help(MetricCameraSnapshots, "Whiteboard pictures taken.")
	reg.Help(MetricCameraFallbacks, "Timeout-triggered fallback snapshots.")
	name := c.name()
	c.met = cameraMetrics{
		accepted:   reg.Counter(MetricCameraDecisions, "camera", name, "decision", "accept"),
		ignored:    reg.Counter(MetricCameraDecisions, "camera", name, "decision", "ignore"),
		duplicates: reg.Counter(MetricCameraDecisions, "camera", name, "decision", "duplicate"),
		snapshots:  reg.Counter(MetricCameraSnapshots, "camera", name),
		fallbacks:  reg.Counter(MetricCameraFallbacks, "camera", name),
	}
}

// Attach subscribes the camera to the bus.
func (c *Camera) Attach(bus *Bus) {
	c.sim = bus.sim
	bus.Subscribe(c.name(), c.handle)
}

// handle consumes one context event.
func (c *Camera) handle(ev Event) {
	// Duplicate suppression by publisher sequence number, keyed by
	// (source, seq) so two publishers sharing a sequence number never
	// collide, with a wraparound-aware sliding window bounding the state.
	if c.seen.Seen(ev.Source, ev.Seq) {
		c.duplicate++
		c.met.duplicates.Inc()
		c.decideTrace(ev, "duplicate")
		return
	}
	c.Tracer.Record(ev.Seq, quality.StageFuse, c.now(), c.name())

	if c.UseQuality {
		if !ev.HasQuality || ev.Quality <= c.MinQuality {
			c.ignored++
			c.met.ignored.Inc()
			c.decideTrace(ev, "ignore")
			return
		}
	}
	c.accepted++
	c.met.accepted.Inc()

	debounce := c.DebounceWindows
	if debounce < 1 {
		debounce = 1
	}
	if ev.Context != c.pending {
		c.pending = ev.Context
		c.pendCount = 0
	}
	c.pendCount++
	if c.pendCount < debounce {
		c.decideTrace(ev, "accept")
		c.armFallback(ev)
		return
	}
	next := c.pending
	if next == c.current {
		c.decideTrace(ev, "accept")
		c.armFallback(ev)
		return
	}
	// Believed context switch.
	if c.writing && next != sensor.ContextWriting {
		c.snapshots = append(c.snapshots, Snapshot{At: ev.Sent, TriggeredBy: ev})
		c.met.snapshots.Inc()
		c.decideTrace(ev, "snapshot")
	} else {
		c.decideTrace(ev, "switch")
	}
	c.current = next
	c.writing = next == sensor.ContextWriting
	c.armFallback(ev)
}

// now returns the camera's virtual time (0 before Attach).
func (c *Camera) now() float64 {
	if c.sim == nil {
		return 0
	}
	return c.sim.Now()
}

// decideTrace records the decision stage of a sampled pipeline trace.
func (c *Camera) decideTrace(ev Event, decision string) {
	c.Tracer.Record(ev.Seq, quality.StageDecide, c.now(), c.name()+":"+decision)
}

// armFallback (re)starts the silence watchdog after an accepted event:
// when writing is believed in progress and no newer accepted event arrives
// within FallbackTimeout, the camera assumes the session ended and takes a
// fallback snapshot. Every accepted event bumps the generation, cancelling
// older watchdogs.
func (c *Camera) armFallback(last Event) {
	c.watchGen++
	if c.FallbackTimeout <= 0 || c.sim == nil || !c.writing {
		return
	}
	gen := c.watchGen
	at := c.sim.Now() + c.FallbackTimeout
	// The deadline is in the future, so scheduling cannot fail.
	_ = c.sim.Schedule(at, func() {
		if gen != c.watchGen || !c.writing {
			return
		}
		c.snapshots = append(c.snapshots, Snapshot{At: at, TriggeredBy: last, Fallback: true})
		c.fallbacks++
		c.met.snapshots.Inc()
		c.met.fallbacks.Inc()
		c.current = sensor.ContextUnknown
		c.writing = false
	})
}

// Snapshots returns the pictures taken so far.
func (c *Camera) Snapshots() []Snapshot {
	out := make([]Snapshot, len(c.snapshots))
	copy(out, c.snapshots)
	return out
}

// Ignored returns the number of events rejected by the quality filter.
func (c *Camera) Ignored() int { return c.ignored }

// Accepted returns the number of events that passed duplicate suppression
// and the quality filter.
func (c *Camera) Accepted() int { return c.accepted }

// Fallbacks returns the number of timeout-triggered fallback snapshots.
func (c *Camera) Fallbacks() int { return c.fallbacks }

// Duplicates returns the number of duplicate deliveries suppressed.
func (c *Camera) Duplicates() int { return c.duplicate }

func (c *Camera) name() string {
	if c.Name == "" {
		return "whiteboard-camera"
	}
	return c.Name
}

// SnapshotScore compares taken snapshots against the true end-of-writing
// times of a scenario. A snapshot within tolerance of a truth is a hit;
// the rest are spurious. Each truth counts at most once.
type SnapshotScore struct {
	Truths   int
	Hits     int
	Spurious int
}

// Precision returns hits / (hits + spurious), or 0 with no snapshots.
func (s SnapshotScore) Precision() float64 {
	total := s.Hits + s.Spurious
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Recall returns hits / truths, or 0 with no truths.
func (s SnapshotScore) Recall() float64 {
	if s.Truths == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Truths)
}

// ScoreSnapshots matches snapshots to true end-of-writing times.
func ScoreSnapshots(snaps []Snapshot, truths []float64, tolerance float64) SnapshotScore {
	score := SnapshotScore{Truths: len(truths)}
	used := make([]bool, len(truths))
	for _, snap := range snaps {
		matched := false
		for i, truth := range truths {
			if used[i] {
				continue
			}
			if math.Abs(snap.At-truth) <= tolerance {
				used[i] = true
				matched = true
				break
			}
		}
		if matched {
			score.Hits++
		} else {
			score.Spurious++
		}
	}
	return score
}

// EndOfWritingTimes extracts the true end-of-writing instants from a
// labelled recording: times where ground truth leaves ContextWriting.
func EndOfWritingTimes(readings []sensor.Reading) []float64 {
	var out []float64
	for i := 1; i < len(readings); i++ {
		if readings[i-1].Truth == sensor.ContextWriting && readings[i].Truth != sensor.ContextWriting {
			out = append(out, readings[i].T)
		}
	}
	return out
}
