package awareoffice

import (
	"math/rand"
	"testing"

	"cqm/internal/fusion"
	"cqm/internal/sensor"
)

func TestDoorDisplayFusesMultiplePens(t *testing.T) {
	p := trainPipeline(t, 45)
	sim := NewSimulation(1)
	bus, err := NewBus(sim, Link{Latency: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	display := &DoorDisplay{}
	display.Attach(sim, bus)

	rng := rand.New(rand.NewSource(2))
	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
	}
	for i, style := range styles {
		pen := &Pen{
			Name:       "pen-" + string(rune('a'+i)),
			Classifier: p.clf,
			Measure:    p.measure,
		}
		pen.Attach(bus)
		readings, err := (&sensor.Scenario{
			Segments: []sensor.Segment{
				{Context: sensor.ContextWriting, Duration: 10},
				{Context: sensor.ContextLying, Duration: 6},
			},
			Style: style,
		}).Run(rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(20)

	if display.Fusions() == 0 {
		t.Fatal("display never fused")
	}
	history := display.History()
	// The room must pass through a working session and end idle.
	sawSession := false
	for _, s := range history {
		if s == fusion.RoomSession {
			sawSession = true
		}
	}
	if !sawSession {
		t.Error("display never showed a session")
	}
	if display.State() != fusion.RoomIdle {
		t.Errorf("final state = %v, want idle", display.State())
	}
}

func TestDoorDisplayDropsStaleSources(t *testing.T) {
	sim := NewSimulation(3)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	display := &DoorDisplay{StaleAfter: 1.0}
	display.Attach(sim, bus)

	// Two sources report; then only one keeps reporting. The silent
	// source must age out of the fusion set.
	_ = bus.Publish(Event{Source: "pen-a", Context: sensor.ContextWriting, Sent: 0, Seq: 0, Quality: 0.9, HasQuality: true})
	_ = bus.Publish(Event{Source: "pen-b", Context: sensor.ContextPlaying, Sent: 0, Seq: 1, Quality: 0.9, HasQuality: true})
	sim.Run(0.1)
	if display.ActiveSources() != 2 {
		t.Fatalf("active = %d, want 2", display.ActiveSources())
	}
	// Advance virtual time well past staleness, then one fresh report.
	if err := sim.Schedule(5, func() {
		_ = bus.Publish(Event{Source: "pen-a", Context: sensor.ContextWriting, Sent: 5, Seq: 2, Quality: 0.9, HasQuality: true})
	}); err != nil {
		t.Fatal(err)
	}
	sim.Run(6)
	if display.ActiveSources() != 1 {
		t.Errorf("active = %d, want 1 (pen-b stale)", display.ActiveSources())
	}
}

func TestDoorDisplayIgnoresUnknownContext(t *testing.T) {
	sim := NewSimulation(4)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	display := &DoorDisplay{}
	display.Attach(sim, bus)
	_ = bus.Publish(Event{Source: "pen", Context: sensor.ContextUnknown, Seq: 0})
	sim.Run(1)
	if display.Fusions() != 0 {
		t.Error("unknown-context event triggered a fusion")
	}
}
