// Package awareoffice simulates the distributed Ubicomp environment the
// paper's motivation is set in (§1, §3): smart appliances exchanging
// context events over an unreliable wireless medium.
//
// The environment is a deterministic discrete-event simulation — virtual
// time, a scheduling queue, and seeded randomness — rather than goroutines
// and wall clocks, so every experiment is reproducible bit for bit.
//
// Components:
//
//   - Simulation: the virtual clock and event queue.
//   - Bus: the context broadcast medium with per-link latency, jitter,
//     loss, and duplication (the Particle RF network stand-in).
//   - Pen: the AwarePen appliance — windows its accelerometer stream,
//     classifies each window, scores it with the CQM, and publishes
//     context events.
//   - Camera: the whiteboard camera appliance — watches the pen's context
//     and photographs the board when a writing session ends. With a
//     quality threshold it ignores low-quality context events; the E7
//     experiment compares its snapshot precision with and without the CQM.
package awareoffice
