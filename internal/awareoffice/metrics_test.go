package awareoffice

import (
	"testing"

	"cqm/internal/obs"
	"cqm/internal/sensor"
)

// publishAllocs measures the per-call allocations of Publish on a bus with
// a fully lossy link: every delivery is dropped at the loss gate, so the
// hot path runs to completion without scheduling closures.
func publishAllocs(t *testing.T, bus *Bus) float64 {
	t.Helper()
	ev := Event{Source: "pen", Context: sensor.ContextWriting, Quality: 0.8, HasQuality: true}
	return testing.AllocsPerRun(200, func() {
		if err := bus.Publish(ev); err != nil {
			t.Fatal(err)
		}
	})
}

func lossyBus(t *testing.T, seed int64) *Bus {
	t.Helper()
	bus, err := NewBus(NewSimulation(seed), Link{Loss: 1})
	if err != nil {
		t.Fatal(err)
	}
	bus.Subscribe("camera", func(Event) {})
	return bus
}

func TestPublishAllocationFree(t *testing.T) {
	// The acceptance criterion: instrumentation must not add allocations
	// to Publish. With pre-resolved atomic counters even the live
	// registry stays allocation-free on this path.
	cases := []struct {
		name string
		prep func(*Bus)
	}{
		{"bare", func(*Bus) {}},
		{"disabled", func(b *Bus) { b.Instrument(nil) }},
		{"live", func(b *Bus) { b.Instrument(obs.NewRegistry()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bus := lossyBus(t, 1)
			tc.prep(bus)
			if got := publishAllocs(t, bus); got != 0 {
				t.Errorf("Publish allocates %.1f/op, want 0", got)
			}
		})
	}
}

func TestBusCountersMatchStats(t *testing.T) {
	// Drive a lossy, corrupting bus and require the registry's counters to
	// agree exactly with the struct-level accounting.
	reg := obs.NewRegistry()
	sim := NewSimulation(7)
	bus, err := NewBus(sim, Link{Loss: 0.3, Duplicate: 0.2, BitErrorRate: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	bus.Instrument(reg)
	bus.Subscribe("camera-a", func(Event) {})
	bus.Subscribe("camera-b", func(Event) {})
	for i := 0; i < 400; i++ {
		ev := Event{Source: "pen", Context: sensor.ContextWriting, Seq: i}
		if err := bus.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(1000)

	st := bus.Stats()
	if st.Dropped == 0 || st.Corrupted == 0 {
		t.Fatalf("test link produced no loss/corruption: %+v", st)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter(MetricBusPublished); v != int64(st.Published) {
		t.Errorf("published counter %d != stats %d", v, st.Published)
	}
	for name, link := range st.Subscribers {
		checks := []struct {
			metric string
			want   int
		}{
			{MetricBusDelivered, link.Delivered},
			{MetricBusDropped, link.Dropped},
			{MetricBusCorrupted, link.Corrupted},
			{MetricBusDuplicated, link.Duplicated},
		}
		for _, c := range checks {
			if v, _ := snap.Counter(c.metric, "subscriber", name); v != int64(c.want) {
				t.Errorf("%s{subscriber=%q} = %d, want %d", c.metric, name, v, c.want)
			}
		}
	}
	// Aggregates are the sum of the per-subscriber series.
	sum := LinkStats{}
	for _, link := range st.Subscribers {
		sum.Delivered += link.Delivered
		sum.Dropped += link.Dropped
		sum.Corrupted += link.Corrupted
		sum.Duplicated += link.Duplicated
	}
	if sum.Delivered != st.Delivered || sum.Dropped != st.Dropped || sum.Corrupted != st.Corrupted {
		t.Errorf("aggregate stats %+v inconsistent with per-subscriber sum %+v", st, sum)
	}
}

func TestInstrumentCoversLaterSubscribers(t *testing.T) {
	reg := obs.NewRegistry()
	sim := NewSimulation(3)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	bus.Instrument(reg)
	bus.Subscribe("late", func(Event) {})
	if err := bus.Publish(Event{Source: "pen"}); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Snapshot().Counter(MetricBusDelivered, "subscriber", "late"); !ok || v != 1 {
		t.Errorf("late subscriber counter = %d, %v; want 1, true", v, ok)
	}
}
