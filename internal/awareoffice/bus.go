package awareoffice

import (
	"fmt"

	"cqm/internal/obs"
	"cqm/internal/particle"
	"cqm/internal/sensor"
)

// Event is one context broadcast: an appliance announces the context it
// recognized, optionally annotated with the CQM quality value — the
// interconnection the paper proposes so receivers can judge how much to
// trust the classification.
type Event struct {
	// Source is the publishing appliance's name.
	Source string
	// Context is the recognized context class.
	Context sensor.Context
	// Quality is the CQM q for this classification; valid when HasQuality.
	Quality float64
	// HasQuality distinguishes annotated events from legacy ones; an
	// ε-state classification is published with HasQuality=false.
	HasQuality bool
	// Sent is the virtual time the event was published.
	Sent float64
	// Seq is the publisher's sequence number (detects duplicates).
	Seq int
}

// Link models one directed network path: constant latency plus uniform
// jitter, independent loss and duplication probabilities, and an optional
// physical bit-error rate applied to the AwareCon wire encoding.
type Link struct {
	// Latency is the base one-way delay in seconds.
	Latency float64
	// Jitter adds uniform [0, Jitter) extra delay per delivery.
	Jitter float64
	// Loss is the probability a delivery is dropped.
	Loss float64
	// Duplicate is the probability a delivery arrives twice.
	Duplicate float64
	// BitErrorRate is the per-bit corruption probability of the radio
	// medium. When positive, every delivery is serialized into a Particle
	// frame (internal/particle), each bit flipped independently with this
	// probability, and decoded by the receiver; frames failing the CRC
	// are dropped, exactly like real hardware.
	BitErrorRate float64
}

func (l Link) validate() error {
	switch {
	case l.Latency < 0 || l.Jitter < 0:
		return fmt.Errorf("%w: latency %v jitter %v", ErrBadLink, l.Latency, l.Jitter)
	case l.Loss < 0 || l.Loss > 1:
		return fmt.Errorf("%w: loss %v", ErrBadLink, l.Loss)
	case l.Duplicate < 0 || l.Duplicate > 1:
		return fmt.Errorf("%w: duplicate %v", ErrBadLink, l.Duplicate)
	case l.BitErrorRate < 0 || l.BitErrorRate > 1:
		return fmt.Errorf("%w: bit error rate %v", ErrBadLink, l.BitErrorRate)
	default:
		return nil
	}
}

// LinkStats accounts the deliveries attempted to one subscriber.
type LinkStats struct {
	// Delivered counts events scheduled for delivery (duplicates count
	// twice, exactly like on the wire).
	Delivered int
	// Dropped counts deliveries lost to link loss.
	Dropped int
	// Corrupted counts deliveries dropped by a CRC failure after bit
	// errors.
	Corrupted int
	// Duplicated counts deliveries that arrived twice.
	Duplicated int
}

// BusStats is one consistent view of the bus's delivery accounting — the
// aggregate counters plus per-subscriber link statistics.
type BusStats struct {
	// Published counts events handed to Publish.
	Published int
	// Delivered counts deliveries scheduled across all subscribers.
	Delivered int
	// Dropped counts deliveries lost to link loss.
	Dropped int
	// Corrupted counts deliveries dropped by CRC failure.
	Corrupted int
	// Subscribers maps each subscriber name to its link statistics.
	Subscribers map[string]LinkStats
}

// Bus is the context broadcast medium: publish fans every event out to all
// subscribers over their links, applying loss, duplication, and delay in
// virtual time.
type Bus struct {
	sim         *Simulation
	defaultLink Link
	subscribers []*subscription
	links       map[string]Link // per-subscriber override
	stats       BusStats
	reg         *obs.Registry
	met         busMetrics
}

// busMetrics are the bus's pre-resolved aggregate counters; per-subscriber
// counters live on each subscription. Nil fields are no-ops.
type busMetrics struct {
	published *obs.Counter
}

// subMetrics are one subscriber's pre-resolved link counters.
type subMetrics struct {
	delivered  *obs.Counter
	dropped    *obs.Counter
	corrupted  *obs.Counter
	duplicated *obs.Counter
}

type subscription struct {
	name    string
	handler func(Event)
	stats   *LinkStats
	met     subMetrics
}

// NewBus returns a bus over the simulation with the given default link.
func NewBus(sim *Simulation, defaultLink Link) (*Bus, error) {
	if err := defaultLink.validate(); err != nil {
		return nil, err
	}
	return &Bus{
		sim:         sim,
		defaultLink: defaultLink,
		links:       make(map[string]Link),
	}, nil
}

// Metric names of the bus layer.
const (
	// MetricBusPublished counts events published.
	MetricBusPublished = "awareoffice_bus_published_total"
	// MetricBusDelivered counts deliveries scheduled, per subscriber.
	MetricBusDelivered = "awareoffice_bus_delivered_total"
	// MetricBusDropped counts deliveries lost to link loss, per subscriber.
	MetricBusDropped = "awareoffice_bus_dropped_total"
	// MetricBusCorrupted counts CRC-failed deliveries, per subscriber.
	MetricBusCorrupted = "awareoffice_bus_corrupted_total"
	// MetricBusDuplicated counts duplicated deliveries, per subscriber.
	MetricBusDuplicated = "awareoffice_bus_duplicated_total"
)

// Instrument registers the bus's delivery counters — the aggregate publish
// counter plus per-subscriber delivered/dropped/corrupted/duplicated
// series — on reg. Existing and future subscribers are both covered; a nil
// registry turns instrumentation off.
func (b *Bus) Instrument(reg *obs.Registry) {
	b.reg = reg
	if reg == nil {
		b.met = busMetrics{}
		for _, sub := range b.subscribers {
			sub.met = subMetrics{}
		}
		return
	}
	reg.Help(MetricBusPublished, "Context events published on the bus.")
	reg.Help(MetricBusDelivered, "Deliveries scheduled, by subscriber.")
	reg.Help(MetricBusDropped, "Deliveries lost to link loss, by subscriber.")
	reg.Help(MetricBusCorrupted, "Deliveries dropped by CRC failure, by subscriber.")
	reg.Help(MetricBusDuplicated, "Deliveries duplicated by the link, by subscriber.")
	b.met = busMetrics{published: reg.Counter(MetricBusPublished)}
	for _, sub := range b.subscribers {
		sub.met = newSubMetrics(reg, sub.name)
	}
}

// newSubMetrics resolves one subscriber's labelled counters.
func newSubMetrics(reg *obs.Registry, name string) subMetrics {
	return subMetrics{
		delivered:  reg.Counter(MetricBusDelivered, "subscriber", name),
		dropped:    reg.Counter(MetricBusDropped, "subscriber", name),
		corrupted:  reg.Counter(MetricBusCorrupted, "subscriber", name),
		duplicated: reg.Counter(MetricBusDuplicated, "subscriber", name),
	}
}

// Subscribe registers a handler under the subscriber's name. Handlers run
// in virtual time when deliveries arrive.
func (b *Bus) Subscribe(name string, handler func(Event)) {
	sub := &subscription{name: name, handler: handler, stats: &LinkStats{}}
	if b.reg != nil {
		sub.met = newSubMetrics(b.reg, name)
	}
	b.subscribers = append(b.subscribers, sub)
}

// SetLink overrides the link used for deliveries to one subscriber —
// degrade or partition a single appliance. A loss of 1 is a partition.
func (b *Bus) SetLink(subscriber string, link Link) error {
	if err := link.validate(); err != nil {
		return err
	}
	b.links[subscriber] = link
	return nil
}

// Publish broadcasts the event to every subscriber except its source.
func (b *Bus) Publish(ev Event) error {
	b.stats.Published++
	b.met.published.Inc()
	for _, sub := range b.subscribers {
		if sub.name == ev.Source {
			continue
		}
		link := b.defaultLink
		if l, ok := b.links[sub.name]; ok {
			link = l
		}
		deliveries := 1
		if b.sim.rng.Float64() < link.Loss {
			b.stats.Dropped++
			sub.stats.Dropped++
			sub.met.dropped.Inc()
			continue
		}
		if b.sim.rng.Float64() < link.Duplicate {
			deliveries = 2
			sub.stats.Duplicated++
			sub.met.duplicated.Inc()
		}
		for d := 0; d < deliveries; d++ {
			event := ev
			if link.BitErrorRate > 0 {
				decoded, ok := b.transmit(ev, link.BitErrorRate)
				if !ok {
					b.stats.Corrupted++
					sub.stats.Corrupted++
					sub.met.corrupted.Inc()
					continue
				}
				event = decoded
			}
			delay := link.Latency
			if link.Jitter > 0 {
				delay += link.Jitter * b.sim.rng.Float64()
			}
			handler := sub.handler
			b.stats.Delivered++
			sub.stats.Delivered++
			sub.met.delivered.Inc()
			if err := b.sim.Schedule(b.sim.Now()+delay, func() {
				handler(event)
			}); err != nil {
				return fmt.Errorf("awareoffice: scheduling delivery to %s: %w", sub.name, err)
			}
		}
	}
	return nil
}

// transmit runs the event through the Particle wire encoding with random
// bit corruption; ok is false when the receiver's CRC check rejects the
// frame.
func (b *Bus) transmit(ev Event, ber float64) (Event, bool) {
	pkt := particle.ContextPacket{
		Type:       particle.TypeContext,
		Node:       particle.NodeIDFromString(ev.Source),
		Seq:        uint16(ev.Seq),
		SentMillis: uint32(ev.Sent * 1000),
		ClassID:    byte(ev.Context.ID()),
		Quality:    ev.Quality,
		HasQuality: ev.HasQuality,
	}
	frame, err := particle.Encode(pkt)
	if err != nil {
		return Event{}, false
	}
	for bit := 0; bit < len(frame)*8; bit++ {
		if b.sim.rng.Float64() < ber {
			frame = particle.FlipBit(frame, bit)
		}
	}
	decoded, err := particle.Decode(frame)
	if err != nil {
		return Event{}, false
	}
	out := Event{
		Source:     decoded.Node.String(),
		Context:    sensor.ContextByID(int(decoded.ClassID)),
		Quality:    decoded.Quality,
		HasQuality: decoded.HasQuality,
		Sent:       float64(decoded.SentMillis) / 1000,
		Seq:        int(decoded.Seq),
	}
	return out, true
}

// Corrupted returns the number of deliveries dropped by CRC failure —
// shorthand for Stats().Corrupted.
func (b *Bus) Corrupted() int { return b.stats.Corrupted }

// Stats returns one consistent snapshot of the bus's delivery accounting,
// aggregate counters and per-subscriber link statistics together.
func (b *Bus) Stats() BusStats {
	out := b.stats
	out.Subscribers = make(map[string]LinkStats, len(b.subscribers))
	for _, sub := range b.subscribers {
		out.Subscribers[sub.name] = *sub.stats
	}
	return out
}
