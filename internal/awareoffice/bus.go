package awareoffice

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"

	"cqm/internal/obs"
	"cqm/internal/particle"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// Reliability errors.
var (
	// ErrBadReliability reports invalid retransmission parameters.
	ErrBadReliability = errors.New("awareoffice: invalid reliability parameters")
	// ErrBusClosed reports a publish attempted after Close.
	ErrBusClosed = errors.New("awareoffice: bus closed")
)

// Event is one context broadcast: an appliance announces the context it
// recognized, optionally annotated with the CQM quality value — the
// interconnection the paper proposes so receivers can judge how much to
// trust the classification.
type Event struct {
	// Source is the publishing appliance's name.
	Source string
	// Context is the recognized context class.
	Context sensor.Context
	// Quality is the CQM q for this classification; valid when HasQuality.
	Quality float64
	// HasQuality distinguishes annotated events from legacy ones; an
	// ε-state classification is published with HasQuality=false.
	HasQuality bool
	// Sent is the virtual time the event was published.
	Sent float64
	// Seq is the publisher's sequence number (detects duplicates). The
	// wire encodes it in 16 bits, so receivers must treat it as wrapping
	// modulo 65536.
	Seq int
}

// LossModel is a stateful drop decision replacing a Link's i.i.d. Loss
// probability — burst channels like fault.GilbertElliott. A model attached
// to the default link is shared by every subscriber without an override,
// which correlates their loss bursts exactly like a shared radio medium;
// use SetLink with per-subscriber models for independent channels.
type LossModel interface {
	// Drop decides whether one delivery is lost, drawing only from rng.
	Drop(rng *rand.Rand) bool
}

// FrameFault mutates an encoded Particle frame in flight — truncation,
// targeted bit damage — before the receiver decodes it. Frames that fail
// the length or CRC check afterwards are dropped and counted as corrupted,
// exactly like bit-error losses.
type FrameFault interface {
	// Corrupt returns the (possibly shortened or altered) frame, drawing
	// only from rng.
	Corrupt(frame []byte, rng *rand.Rand) []byte
}

// Link models one directed network path: constant latency plus uniform
// jitter, independent loss and duplication probabilities, and an optional
// physical bit-error rate applied to the AwareCon wire encoding.
type Link struct {
	// Latency is the base one-way delay in seconds.
	Latency float64
	// Jitter adds uniform [0, Jitter) extra delay per delivery.
	Jitter float64
	// Loss is the probability a delivery is dropped. Ignored when
	// LossModel is set.
	Loss float64
	// Duplicate is the probability a delivery arrives twice.
	Duplicate float64
	// BitErrorRate is the per-bit corruption probability of the radio
	// medium. When positive, every delivery is serialized into a Particle
	// frame (internal/particle), each bit flipped independently with this
	// probability, and decoded by the receiver; frames failing the CRC
	// are dropped, exactly like real hardware.
	BitErrorRate float64
	// LossModel, when non-nil, replaces Loss with a stateful decision —
	// the hook for burst channels.
	LossModel LossModel
	// FrameFault, when non-nil, forces the wire encoding on every
	// delivery (even at BitErrorRate 0) and lets the fault mutate the
	// frame in flight.
	FrameFault FrameFault
}

func (l Link) validate() error {
	switch {
	case l.Latency < 0 || l.Jitter < 0:
		return fmt.Errorf("%w: latency %v jitter %v", ErrBadLink, l.Latency, l.Jitter)
	case l.Loss < 0 || l.Loss > 1:
		return fmt.Errorf("%w: loss %v", ErrBadLink, l.Loss)
	case l.Duplicate < 0 || l.Duplicate > 1:
		return fmt.Errorf("%w: duplicate %v", ErrBadLink, l.Duplicate)
	case l.BitErrorRate < 0 || l.BitErrorRate > 1:
		return fmt.Errorf("%w: bit error rate %v", ErrBadLink, l.BitErrorRate)
	default:
		return nil
	}
}

// wired reports whether deliveries must pass through the Particle wire
// encoding.
func (l Link) wired() bool { return l.BitErrorRate > 0 || l.FrameFault != nil }

// Reliability configures the publisher-side ack/retransmit layer: when a
// delivery is lost (link loss or corruption), the bus re-attempts it after
// an exponentially growing backoff in virtual time, up to MaxRetries
// times. Receivers still deduplicate by (source, sequence) — the paper's
// at-least-once semantics with receiver-side suppression.
type Reliability struct {
	// MaxRetries bounds the re-attempts per delivery. Default 3.
	MaxRetries int
	// BaseBackoff is the first retry delay in virtual seconds; attempt n
	// waits BaseBackoff·2ⁿ. Default 0.05.
	BaseBackoff float64
	// MaxBackoff caps the exponential growth. Default 0.4.
	MaxBackoff float64
	// Jitter stretches each backoff by a uniform factor in [1, 1+Jitter),
	// decorrelating retry storms. 0 keeps backoff deterministic.
	Jitter float64
}

// DefaultReliability is the recommended retransmission policy: 3 retries,
// 50 ms base backoff doubling to a 400 ms cap, 25 % jitter.
func DefaultReliability() Reliability {
	return Reliability{MaxRetries: 3, BaseBackoff: 0.05, MaxBackoff: 0.4, Jitter: 0.25}
}

func (r Reliability) withDefaults() Reliability {
	if r.MaxRetries == 0 {
		r.MaxRetries = 3
	}
	if r.BaseBackoff == 0 {
		r.BaseBackoff = 0.05
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = 0.4
	}
	return r
}

func (r Reliability) validate() error {
	switch {
	case r.MaxRetries < 0:
		return fmt.Errorf("%w: max retries %d", ErrBadReliability, r.MaxRetries)
	case r.BaseBackoff <= 0 || r.MaxBackoff < r.BaseBackoff:
		return fmt.Errorf("%w: backoff base %v max %v", ErrBadReliability, r.BaseBackoff, r.MaxBackoff)
	case r.Jitter < 0:
		return fmt.Errorf("%w: jitter %v", ErrBadReliability, r.Jitter)
	default:
		return nil
	}
}

// backoff returns the retry delay after the given attempt number.
func (r Reliability) backoff(attempt int, rng *rand.Rand) float64 {
	d := r.BaseBackoff
	for i := 0; i < attempt && d < r.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	if r.Jitter > 0 {
		d *= 1 + r.Jitter*rng.Float64()
	}
	return d
}

// LinkStats accounts the deliveries attempted to one subscriber.
type LinkStats struct {
	// Delivered counts events scheduled for delivery (duplicates count
	// twice, exactly like on the wire).
	Delivered int
	// Dropped counts deliveries lost to link loss.
	Dropped int
	// Corrupted counts deliveries dropped by a CRC failure after bit
	// errors.
	Corrupted int
	// Duplicated counts deliveries that arrived twice.
	Duplicated int
	// Retransmits counts re-attempts scheduled by the reliability layer.
	Retransmits int
	// GaveUp counts deliveries abandoned after exhausting MaxRetries.
	GaveUp int
}

// PublisherStats is one publisher's send-window accounting under the
// reliability layer.
type PublisherStats struct {
	// Published counts events this publisher handed to Publish.
	Published int
	// Retransmits counts re-attempts scheduled for this publisher's
	// events across all subscribers.
	Retransmits int
	// GaveUp counts this publisher's deliveries abandoned after
	// exhausting retries.
	GaveUp int
	// Outstanding is the number of retransmissions currently scheduled
	// but not yet re-attempted — the open send window.
	Outstanding int
}

// BusStats is one consistent view of the bus's delivery accounting — the
// aggregate counters plus per-subscriber link statistics.
type BusStats struct {
	// Published counts events handed to Publish.
	Published int
	// Delivered counts deliveries scheduled across all subscribers.
	Delivered int
	// Dropped counts deliveries lost to link loss.
	Dropped int
	// Corrupted counts deliveries dropped by CRC failure.
	Corrupted int
	// Retransmits counts re-attempts scheduled by the reliability layer.
	Retransmits int
	// GaveUp counts deliveries abandoned after exhausting retries.
	GaveUp int
	// Subscribers maps each subscriber name to its link statistics.
	Subscribers map[string]LinkStats
	// Publishers maps each publisher name to its send-window statistics.
	Publishers map[string]PublisherStats
}

// Bus is the context broadcast medium: publish fans every event out to all
// subscribers over their links, applying loss, duplication, and delay in
// virtual time.
type Bus struct {
	sim         *Simulation
	defaultLink Link
	subscribers []*subscription
	links       map[string]Link // per-subscriber override
	stats       BusStats
	rel         *Reliability
	publishers  map[string]*publisherState
	reg         *obs.Registry
	met         busMetrics
	tracer      *quality.Tracer
	closed      bool
}

// busMetrics are the bus's pre-resolved aggregate counters; per-subscriber
// counters live on each subscription. Nil fields are no-ops.
type busMetrics struct {
	published *obs.Counter
}

// subMetrics are one subscriber's pre-resolved link counters.
type subMetrics struct {
	delivered   *obs.Counter
	dropped     *obs.Counter
	corrupted   *obs.Counter
	duplicated  *obs.Counter
	retransmits *obs.Counter
	gaveup      *obs.Counter
}

// publisherState tracks one publisher's send window with its pre-resolved
// counters.
type publisherState struct {
	stats PublisherStats
	met   pubMetrics
}

// pubMetrics are one publisher's pre-resolved send-window counters.
type pubMetrics struct {
	retransmits *obs.Counter
	gaveup      *obs.Counter
}

type subscription struct {
	name    string
	handler func(Event)
	stats   *LinkStats
	met     subMetrics
}

// NewBus returns a bus over the simulation with the given default link.
func NewBus(sim *Simulation, defaultLink Link) (*Bus, error) {
	if err := defaultLink.validate(); err != nil {
		return nil, err
	}
	return &Bus{
		sim:         sim,
		defaultLink: defaultLink,
		links:       make(map[string]Link),
		publishers:  make(map[string]*publisherState),
	}, nil
}

// Metric names of the bus layer.
const (
	// MetricBusPublished counts events published.
	MetricBusPublished = "awareoffice_bus_published_total"
	// MetricBusDelivered counts deliveries scheduled, per subscriber.
	MetricBusDelivered = "awareoffice_bus_delivered_total"
	// MetricBusDropped counts deliveries lost to link loss, per subscriber.
	MetricBusDropped = "awareoffice_bus_dropped_total"
	// MetricBusCorrupted counts CRC-failed deliveries, per subscriber.
	MetricBusCorrupted = "awareoffice_bus_corrupted_total"
	// MetricBusDuplicated counts duplicated deliveries, per subscriber.
	MetricBusDuplicated = "awareoffice_bus_duplicated_total"
	// MetricBusRetransmits counts reliability re-attempts, per subscriber.
	MetricBusRetransmits = "awareoffice_bus_retransmits_total"
	// MetricBusGaveUp counts deliveries abandoned after exhausting
	// retries, per subscriber.
	MetricBusGaveUp = "awareoffice_bus_gaveup_total"
	// MetricBusPublisherRetransmits counts re-attempts by publisher.
	MetricBusPublisherRetransmits = "awareoffice_bus_publisher_retransmits_total"
	// MetricBusPublisherGaveUp counts abandoned deliveries by publisher.
	MetricBusPublisherGaveUp = "awareoffice_bus_publisher_gaveup_total"
)

// Instrument registers the bus's delivery counters — the aggregate publish
// counter plus per-subscriber delivered/dropped/corrupted/duplicated
// series and per-publisher send-window counters — on reg. Existing and
// future subscribers and publishers are both covered; a nil registry turns
// instrumentation off.
func (b *Bus) Instrument(reg *obs.Registry) {
	b.reg = reg
	if reg == nil {
		b.met = busMetrics{}
		for _, sub := range b.subscribers {
			sub.met = subMetrics{}
		}
		for _, ps := range b.publishers {
			ps.met = pubMetrics{}
		}
		return
	}
	reg.Help(MetricBusPublished, "Context events published on the bus.")
	reg.Help(MetricBusDelivered, "Deliveries scheduled, by subscriber.")
	reg.Help(MetricBusDropped, "Deliveries lost to link loss, by subscriber.")
	reg.Help(MetricBusCorrupted, "Deliveries dropped by CRC failure, by subscriber.")
	reg.Help(MetricBusDuplicated, "Deliveries duplicated by the link, by subscriber.")
	reg.Help(MetricBusRetransmits, "Reliability re-attempts, by subscriber.")
	reg.Help(MetricBusGaveUp, "Deliveries abandoned after exhausting retries, by subscriber.")
	reg.Help(MetricBusPublisherRetransmits, "Reliability re-attempts, by publisher.")
	reg.Help(MetricBusPublisherGaveUp, "Abandoned deliveries, by publisher.")
	b.met = busMetrics{published: reg.Counter(MetricBusPublished)}
	for _, sub := range b.subscribers {
		sub.met = newSubMetrics(reg, sub.name)
	}
	for name, ps := range b.publishers {
		ps.met = newPubMetrics(reg, name)
	}
}

// newSubMetrics resolves one subscriber's labelled counters.
func newSubMetrics(reg *obs.Registry, name string) subMetrics {
	return subMetrics{
		delivered:   reg.Counter(MetricBusDelivered, "subscriber", name),
		dropped:     reg.Counter(MetricBusDropped, "subscriber", name),
		corrupted:   reg.Counter(MetricBusCorrupted, "subscriber", name),
		duplicated:  reg.Counter(MetricBusDuplicated, "subscriber", name),
		retransmits: reg.Counter(MetricBusRetransmits, "subscriber", name),
		gaveup:      reg.Counter(MetricBusGaveUp, "subscriber", name),
	}
}

// newPubMetrics resolves one publisher's labelled counters.
func newPubMetrics(reg *obs.Registry, name string) pubMetrics {
	return pubMetrics{
		retransmits: reg.Counter(MetricBusPublisherRetransmits, "publisher", name),
		gaveup:      reg.Counter(MetricBusPublisherGaveUp, "publisher", name),
	}
}

// Trace attaches a pipeline tracer: sampled deliveries record their
// drop, retransmit, and deliver stages with the subscriber in the
// detail. A nil tracer turns tracing off.
func (b *Bus) Trace(tr *quality.Tracer) {
	b.tracer = tr
}

// Subscribe registers a handler under the subscriber's name. Handlers run
// in virtual time when deliveries arrive.
func (b *Bus) Subscribe(name string, handler func(Event)) {
	sub := &subscription{name: name, handler: handler, stats: &LinkStats{}}
	if b.reg != nil {
		sub.met = newSubMetrics(b.reg, name)
	}
	b.subscribers = append(b.subscribers, sub)
}

// SetLink overrides the link used for deliveries to one subscriber —
// degrade or partition a single appliance. A loss of 1 is a partition.
func (b *Bus) SetLink(subscriber string, link Link) error {
	if err := link.validate(); err != nil {
		return err
	}
	b.links[subscriber] = link
	return nil
}

// SchedulePartition cuts one subscriber off the bus at virtual time start
// and heals the link at virtual time heal, restoring whatever link
// override (or default) was in effect when the partition began. Scheduled
// heals make partition experiments reproducible without hand-written
// callbacks.
func (b *Bus) SchedulePartition(subscriber string, start, heal float64) error {
	if heal < start {
		return fmt.Errorf("%w: partition heal %v before start %v", ErrBadLink, heal, start)
	}
	var saved Link
	var hadOverride bool
	if err := b.sim.Schedule(start, func() {
		saved, hadOverride = b.links[subscriber]
		b.links[subscriber] = Link{Loss: 1}
	}); err != nil {
		return err
	}
	return b.sim.Schedule(heal, func() {
		if hadOverride {
			b.links[subscriber] = saved
			return
		}
		delete(b.links, subscriber)
	})
}

// EnableReliability turns on publisher-side retransmission with the given
// policy (zero fields take defaults). Lost and corrupted deliveries are
// re-attempted after exponential backoff in virtual time until they
// succeed or MaxRetries is exhausted.
func (b *Bus) EnableReliability(cfg Reliability) error {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	b.rel = &cfg
	return nil
}

// linkFor resolves the link currently in effect for one subscriber.
func (b *Bus) linkFor(name string) Link {
	if l, ok := b.links[name]; ok {
		return l
	}
	return b.defaultLink
}

// publisher returns the send-window state for a source, creating it on
// first sight.
func (b *Bus) publisher(name string) *publisherState {
	ps, ok := b.publishers[name]
	if !ok {
		ps = &publisherState{}
		if b.reg != nil {
			ps.met = newPubMetrics(b.reg, name)
		}
		b.publishers[name] = ps
	}
	return ps
}

// Close shuts the bus down: every later Publish fails with ErrBusClosed.
// Deliveries and retransmissions already scheduled in virtual time still
// fire — Close fences new traffic, it does not tear down the simulation.
// Closing an already-closed bus is a no-op.
func (b *Bus) Close() {
	b.closed = true
}

// Closed reports whether the bus has been shut down.
func (b *Bus) Closed() bool { return b.closed }

// Publish broadcasts the event to every subscriber except its source.
func (b *Bus) Publish(ev Event) error {
	if b.closed {
		return fmt.Errorf("%w: dropping publish from %s", ErrBusClosed, ev.Source)
	}
	b.stats.Published++
	b.met.published.Inc()
	b.publisher(ev.Source).stats.Published++
	for _, sub := range b.subscribers {
		if sub.name == ev.Source {
			continue
		}
		if err := b.attempt(sub, ev, 0); err != nil {
			return err
		}
	}
	return nil
}

// attempt runs one delivery attempt to one subscriber: the loss gate, the
// duplication gate, and per-delivery wire corruption and delay. Failed
// attempts are handed to the reliability layer (when enabled) for
// retransmission.
func (b *Bus) attempt(sub *subscription, ev Event, try int) error {
	link := b.linkFor(sub.name)
	var lost bool
	if link.LossModel != nil {
		lost = link.LossModel.Drop(b.sim.rng)
	} else {
		lost = b.sim.rng.Float64() < link.Loss
	}
	if lost {
		b.stats.Dropped++
		sub.stats.Dropped++
		sub.met.dropped.Inc()
		if b.tracer != nil {
			b.tracer.Record(ev.Seq, quality.StageDrop, b.sim.Now(), "loss:"+sub.name)
		}
		return b.retry(sub, ev, try)
	}
	deliveries := 1
	if b.sim.rng.Float64() < link.Duplicate {
		deliveries = 2
		sub.stats.Duplicated++
		sub.met.duplicated.Inc()
	}
	scheduled := false
	for d := 0; d < deliveries; d++ {
		event := ev
		if link.wired() {
			decoded, ok := b.transmit(ev, link)
			if !ok {
				b.stats.Corrupted++
				sub.stats.Corrupted++
				sub.met.corrupted.Inc()
				if b.tracer != nil {
					b.tracer.Record(ev.Seq, quality.StageDrop, b.sim.Now(), "corrupt:"+sub.name)
				}
				continue
			}
			event = decoded
		}
		delay := link.Latency
		if link.Jitter > 0 {
			delay += link.Jitter * b.sim.rng.Float64()
		}
		handler := sub.handler
		b.stats.Delivered++
		sub.stats.Delivered++
		sub.met.delivered.Inc()
		b.tracer.Record(ev.Seq, quality.StageDeliver, b.sim.Now()+delay, sub.name)
		if err := b.sim.Schedule(b.sim.Now()+delay, func() {
			handler(event)
		}); err != nil {
			return fmt.Errorf("awareoffice: scheduling delivery to %s: %w", sub.name, err)
		}
		scheduled = true
	}
	if !scheduled {
		// Every delivery of this attempt was corrupted on the wire.
		return b.retry(sub, ev, try)
	}
	return nil
}

// retry hands one failed attempt to the reliability layer: schedule a
// retransmission after backoff, or give up once retries are exhausted.
func (b *Bus) retry(sub *subscription, ev Event, try int) error {
	if b.rel == nil {
		return nil
	}
	ps := b.publisher(ev.Source)
	if try >= b.rel.MaxRetries {
		b.stats.GaveUp++
		sub.stats.GaveUp++
		sub.met.gaveup.Inc()
		ps.stats.GaveUp++
		ps.met.gaveup.Inc()
		if b.tracer != nil {
			b.tracer.Record(ev.Seq, quality.StageDrop, b.sim.Now(), "gaveup:"+sub.name)
		}
		return nil
	}
	b.stats.Retransmits++
	sub.stats.Retransmits++
	sub.met.retransmits.Inc()
	ps.stats.Retransmits++
	ps.met.retransmits.Inc()
	ps.stats.Outstanding++
	backoff := b.rel.backoff(try, b.sim.rng)
	if b.tracer != nil {
		b.tracer.Record(ev.Seq, quality.StageRetransmit, b.sim.Now()+backoff,
			"try"+strconv.Itoa(try+1)+":"+sub.name)
	}
	return b.sim.Schedule(b.sim.Now()+backoff, func() {
		ps.stats.Outstanding--
		// Delivery times are >= now, so the re-attempt cannot fail to
		// schedule.
		_ = b.attempt(sub, ev, try+1)
	})
}

// transmit runs the event through the Particle wire encoding with random
// bit corruption and any configured frame fault; ok is false when the
// receiver's length or CRC check rejects the frame.
func (b *Bus) transmit(ev Event, link Link) (Event, bool) {
	pkt := particle.ContextPacket{
		Type:       particle.TypeContext,
		Node:       particle.NodeIDFromString(ev.Source),
		Seq:        uint16(ev.Seq),
		SentMillis: uint32(ev.Sent * 1000),
		ClassID:    byte(ev.Context.ID()),
		Quality:    ev.Quality,
		HasQuality: ev.HasQuality,
	}
	frame, err := particle.Encode(pkt)
	if err != nil {
		return Event{}, false
	}
	if link.FrameFault != nil {
		frame = link.FrameFault.Corrupt(frame, b.sim.rng)
	}
	if link.BitErrorRate > 0 {
		for bit := 0; bit < len(frame)*8; bit++ {
			if b.sim.rng.Float64() < link.BitErrorRate {
				frame = particle.FlipBit(frame, bit)
			}
		}
	}
	return eventFromFrame(frame)
}

// eventFromFrame decodes one received frame into a context event; ok is
// false when the frame fails the receiver's validation.
func eventFromFrame(frame []byte) (Event, bool) {
	decoded, err := particle.Decode(frame)
	if err != nil {
		return Event{}, false
	}
	out := Event{
		Source:     decoded.Node.String(),
		Context:    sensor.ContextByID(int(decoded.ClassID)),
		Quality:    decoded.Quality,
		HasQuality: decoded.HasQuality,
		Sent:       float64(decoded.SentMillis) / 1000,
		Seq:        int(decoded.Seq),
	}
	return out, true
}

// Corrupted returns the number of deliveries dropped by CRC failure —
// shorthand for Stats().Corrupted.
func (b *Bus) Corrupted() int { return b.stats.Corrupted }

// Stats returns one consistent snapshot of the bus's delivery accounting:
// aggregate counters, per-subscriber link statistics, and per-publisher
// send-window statistics together.
func (b *Bus) Stats() BusStats {
	out := b.stats
	out.Subscribers = make(map[string]LinkStats, len(b.subscribers))
	for _, sub := range b.subscribers {
		out.Subscribers[sub.name] = *sub.stats
	}
	out.Publishers = make(map[string]PublisherStats, len(b.publishers))
	for name, ps := range b.publishers {
		out.Publishers[name] = ps.stats
	}
	return out
}
