package awareoffice

import (
	"math/rand"
	"reflect"
	"testing"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/fault"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// qualityStack is the recognition stack plus the training-time analysis
// the drift reference is calibrated from.
type qualityStack struct {
	clf      classify.Classifier
	measure  *core.Measure
	analysis *core.Analysis
}

// trainQualityStack trains classifier, quality measure, and analysis on
// synthetic office data, mirroring the awareoffice binary's stack.
func trainQualityStack(t testing.TB, seed int64) *qualityStack {
	t.Helper()
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{
			Segments: []sensor.Segment{
				{Context: sensor.ContextLying, Duration: 10},
				{Context: sensor.ContextWriting, Duration: 10},
				{Context: sensor.ContextPlaying, Duration: 10},
			},
		}},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := core.Observe(clf, mixed)
	if err != nil {
		t.Fatal(err)
	}
	measure, err := core.Build(obs, nil, core.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := core.Analyze(measure, obs)
	if err != nil {
		t.Fatal(err)
	}
	return &qualityStack{clf: clf, measure: measure, analysis: analysis}
}

// qualityRun is the outcome of one simulated multi-session office run
// with a sensor fault injected into the middle third.
type qualityRun struct {
	report           *quality.Report
	faultLo, faultHi float64
	delivered        int
}

// runFaultScenario replays a deterministic multi-session office run —
// burst loss on the link, a saturation fault injected into the middle
// third of the sessions — and returns the quality report. It mirrors the
// awareoffice binary's session loop.
func runFaultScenario(t testing.TB, stack *qualityStack, seed int64, sessions, workers int) qualityRun {
	t.Helper()
	sim := NewSimulation(seed)
	link := Link{Latency: 0.02, Jitter: 0.03}
	link.LossModel = &fault.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.45, LossBad: 1}
	bus, err := NewBus(sim, link)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	bus.Subscribe("listener", func(Event) { delivered++ })

	engine := quality.NewEngine(quality.Config{
		Threshold: stack.analysis.Threshold,
		Reference: quality.NewReference(stack.analysis),
	})
	pen := &Pen{
		Classifier:      stack.clf,
		Measure:         stack.measure,
		PreScoreWorkers: workers,
		Quality:         engine,
	}
	pen.Attach(bus)

	injected := &fault.Saturation{Gain: 4}
	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
	}
	rng := rand.New(rand.NewSource(seed + 11))
	faultRng := rand.New(rand.NewSource(seed + 12))
	lo, hi := sessions/3, 2*sessions/3
	run := qualityRun{faultLo: -1, faultHi: -1}
	offset := 0.0
	for i := 0; i < sessions; i++ {
		readings, err := sensor.OfficeSession(styles[i%len(styles)]).Run(rng)
		if err != nil {
			t.Fatal(err)
		}
		if i >= lo && i < hi {
			if readings, err = injected.Apply(readings, faultRng); err != nil {
				t.Fatal(err)
			}
		}
		for k := range readings {
			readings[k].T += offset
		}
		if i >= lo && i < hi {
			if run.faultLo < 0 {
				run.faultLo = readings[0].T
			}
			run.faultHi = readings[len(readings)-1].T
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			t.Fatal(err)
		}
		offset = readings[len(readings)-1].T + 2
	}
	sim.Run(offset + 5)
	run.report = engine.Report()
	run.delivered = delivered
	return run
}

// TestQualityDetectsFaultWindow is the end-to-end acceptance scenario:
// under burst loss with a stuck-axis sensor fault in the middle third of
// the sessions, the Page–Hinkley detector fires during the fault window
// and nowhere else, the report degrades, and detection epochs replay
// bit-identically across repeated runs.
func TestQualityDetectsFaultWindow(t *testing.T) {
	stack := trainQualityStack(t, 40)
	run := runFaultScenario(t, stack, 7, 9, 0)
	if run.delivered == 0 {
		t.Fatal("no events delivered")
	}
	if len(run.report.Sources) != 1 {
		t.Fatalf("%d sources, want 1", len(run.report.Sources))
	}
	src := run.report.Sources[0]
	if src.PageHinkley.Fired == 0 {
		t.Fatal("Page–Hinkley did not fire during the fault run")
	}
	for _, ep := range src.PageHinkley.Epochs {
		if ep.At < run.faultLo || ep.At > run.faultHi {
			t.Errorf("drift epoch at t=%.1f outside the fault window [%.1f, %.1f]",
				ep.At, run.faultLo, run.faultHi)
		}
	}
	if run.report.Health == quality.HealthOptimal {
		t.Error("report stayed optimal despite the fault")
	}

	// Bit-identical replay: same seed, same epochs, same report.
	again := runFaultScenario(t, stack, 7, 9, 0)
	if !reflect.DeepEqual(run.report, again.report) {
		t.Errorf("replay diverged:\n got %+v\nwant %+v", again.report, run.report)
	}
}

// TestQualityCleanRunStaysHealthy is the false-alarm guard: without a
// fault the same scenario must produce no Page–Hinkley alarms and an
// optimal health grade.
func TestQualityCleanRunStaysHealthy(t *testing.T) {
	stack := trainQualityStack(t, 40)
	sim := NewSimulation(7)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	engine := quality.NewEngine(quality.Config{
		Threshold: stack.analysis.Threshold,
		Reference: quality.NewReference(stack.analysis),
	})
	pen := &Pen{Classifier: stack.clf, Measure: stack.measure, Quality: engine}
	pen.Attach(bus)
	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
	}
	rng := rand.New(rand.NewSource(18))
	offset := 0.0
	for i := 0; i < 6; i++ {
		readings, err := sensor.OfficeSession(styles[i%len(styles)]).Run(rng)
		if err != nil {
			t.Fatal(err)
		}
		for k := range readings {
			readings[k].T += offset
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			t.Fatal(err)
		}
		offset = readings[len(readings)-1].T + 2
	}
	sim.Run(offset + 5)
	rep := engine.Report()
	if len(rep.Sources) != 1 {
		t.Fatalf("%d sources, want 1", len(rep.Sources))
	}
	if fired := rep.Sources[0].PageHinkley.Fired; fired != 0 {
		t.Errorf("%d Page–Hinkley alarms on a clean run (epochs %v)",
			fired, rep.Sources[0].PageHinkley.Epochs)
	}
	if rep.Health != quality.HealthOptimal {
		t.Errorf("clean-run health = %s (%v), alerts %v", rep.Health, rep.HealthScore, rep.Alerts)
	}
}

// TestQualityTrackingWorkerInvariance is the parallelism property test:
// the quality report — statistics, drift epochs, alerts — must be
// bit-identical whether the pen pre-scores serially or with 4 workers.
func TestQualityTrackingWorkerInvariance(t *testing.T) {
	stack := trainQualityStack(t, 40)
	serial := runFaultScenario(t, stack, 7, 9, 1)
	for _, workers := range []int{2, 4} {
		got := runFaultScenario(t, stack, 7, 9, workers)
		if !reflect.DeepEqual(got.report, serial.report) {
			t.Errorf("workers=%d: report differs from serial run\n got %+v\nwant %+v",
				workers, got.report, serial.report)
		}
	}
}
