package awareoffice

import (
	"math/rand"
	"reflect"
	"testing"

	"cqm/internal/fault"
	"cqm/internal/feature"
	"cqm/internal/sensor"
)

// stubClassifier labels every window ContextWriting — enough to generate
// deterministic bus traffic without training a real recognizer.
type stubClassifier struct{}

func (stubClassifier) Classify([]float64) (sensor.Context, error) {
	return sensor.ContextWriting, nil
}

func (stubClassifier) Name() string { return "stub" }

// recorder is a bus subscriber that keeps every delivered event.
type recorder struct {
	name   string
	events []Event
}

func (r *recorder) attach(bus *Bus) {
	bus.Subscribe(r.name, func(ev Event) { r.events = append(r.events, ev) })
}

func TestSeqWraparoundNotDuplicate(t *testing.T) {
	w := &sourceWindow{}
	// March straight through the 16-bit wrap: every new sequence is fresh.
	for s := 65530; s < 65536+10; s++ {
		if w.seen(uint16(s)) {
			t.Fatalf("seq %d (wire %d) flagged duplicate on first sight", s, uint16(s))
		}
	}
	// Replays on both sides of the wrap are still caught.
	for _, s := range []uint16{65535, 0, 3, 9} {
		if !w.seen(s) {
			t.Fatalf("replayed seq %d not flagged duplicate", s)
		}
	}
}

func TestSeqDedupRebootHeuristic(t *testing.T) {
	w := &sourceWindow{}
	if w.seen(5000) {
		t.Fatal("first sequence flagged duplicate")
	}
	// A sequence more than a full window in the past is a rebooted
	// publisher restarting its numbering, not a duplicate.
	if w.seen(0) {
		t.Fatal("post-reboot seq 0 flagged duplicate")
	}
	if w.seen(1) {
		t.Fatal("post-reboot seq 1 flagged duplicate")
	}
	if !w.seen(0) {
		t.Fatal("replay after reboot not flagged duplicate")
	}
}

func TestSeqDedupReordering(t *testing.T) {
	w := &sourceWindow{}
	for _, s := range []uint16{10, 12, 11, 14} {
		if w.seen(s) {
			t.Fatalf("fresh seq %d flagged duplicate", s)
		}
	}
	for _, s := range []uint16{12, 11, 10, 14} {
		if !w.seen(s) {
			t.Fatalf("replayed seq %d not flagged duplicate", s)
		}
	}
}

func TestCameraDedupKeyedBySource(t *testing.T) {
	// Two publishers sharing a sequence number must not suppress each
	// other — the old map keyed by Seq alone did exactly that.
	cam := &Camera{}
	cam.handle(Event{Source: "pen-a", Context: sensor.ContextWriting, Seq: 7})
	cam.handle(Event{Source: "pen-b", Context: sensor.ContextWriting, Seq: 7})
	if got := cam.Duplicates(); got != 0 {
		t.Fatalf("distinct sources sharing a seq suppressed %d times, want 0", got)
	}
	if got := cam.Accepted(); got != 2 {
		t.Fatalf("accepted %d events, want 2", got)
	}
	cam.handle(Event{Source: "pen-a", Context: sensor.ContextWriting, Seq: 7})
	if got := cam.Duplicates(); got != 1 {
		t.Fatalf("true replay suppressed %d times, want 1", got)
	}
}

func TestCameraDedupStateBounded(t *testing.T) {
	cam := &Camera{}
	// A long-running publisher cycles its 16-bit sequence space many
	// times; the receiver's dedup state must stay one fixed-size window.
	for s := 0; s < 300000; s++ {
		cam.handle(Event{Source: "pen", Context: sensor.ContextWriting, Seq: s})
	}
	if got := cam.seen.Sources(); got != 1 {
		t.Fatalf("tracking %d sources, want 1", got)
	}
	if got := cam.Duplicates(); got != 0 {
		t.Fatalf("monotonic stream suppressed %d times, want 0", got)
	}
}

func TestPenScheduleReboot(t *testing.T) {
	sim := NewSimulation(3)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{name: "rec"}
	rec.attach(bus)
	pen := &Pen{Classifier: stubClassifier{}}
	pen.Attach(bus)

	rng := rand.New(rand.NewSource(3))
	readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rng)
	if err != nil {
		t.Fatal(err)
	}
	end := readings[len(readings)-1].T
	if _, err := pen.Feed(sim, readings); err != nil {
		t.Fatal(err)
	}
	if err := pen.ScheduleReboot(sim, end+1); err != nil {
		t.Fatal(err)
	}
	second := make([]sensor.Reading, len(readings))
	copy(second, readings)
	for i := range second {
		second[i].T += end + 2
	}
	if _, err := pen.Feed(sim, second); err != nil {
		t.Fatal(err)
	}
	sim.Run(2*end + 5)

	// The sequence numbering must restart at zero after the reboot.
	reboots := 0
	for i := 1; i < len(rec.events); i++ {
		if rec.events[i].Seq == 0 && rec.events[i-1].Seq > 0 {
			reboots++
		}
	}
	if reboots != 1 {
		t.Fatalf("observed %d sequence resets, want 1", reboots)
	}
}

func TestSchedulePartitionAndHeal(t *testing.T) {
	sim := NewSimulation(5)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{name: "island"}
	rec.attach(bus)
	custom := Link{Latency: 0.5}
	if err := bus.SetLink("island", custom); err != nil {
		t.Fatal(err)
	}
	if err := bus.SchedulePartition("island", 1, 2); err != nil {
		t.Fatal(err)
	}
	for i, at := range []float64{0.25, 1.5, 2.5} {
		i, at := i, at
		if err := sim.Schedule(at, func() {
			if err := bus.Publish(Event{Source: "pen", Seq: i, Sent: at}); err != nil {
				t.Errorf("publish at %v: %v", at, err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(10)

	if got := len(rec.events); got != 2 {
		t.Fatalf("delivered %d events across partition, want 2 (the mid-partition one lost)", got)
	}
	for _, ev := range rec.events {
		if ev.Seq == 1 {
			t.Fatal("mid-partition event delivered")
		}
	}
	// The heal must restore the pre-partition override, not the default.
	if got := bus.linkFor("island"); got != custom {
		t.Fatalf("healed link = %+v, want restored override %+v", got, custom)
	}
}

func TestSchedulePartitionRejectsBackwardHeal(t *testing.T) {
	sim := NewSimulation(5)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.SchedulePartition("x", 2, 1); err == nil {
		t.Fatal("heal before start accepted")
	}
}

func TestReliabilityBackoffPolicy(t *testing.T) {
	r := Reliability{}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	want := []float64{0.05, 0.1, 0.2, 0.4, 0.4, 0.4}
	for try, w := range want {
		if got := r.backoff(try, rng); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", try, got, w)
		}
	}
	j := Reliability{Jitter: 0.5}.withDefaults()
	for try := 0; try < 6; try++ {
		base := r.backoff(try, rng)
		got := j.backoff(try, rng)
		if got < base || got >= base*1.5 {
			t.Fatalf("jittered backoff(%d) = %v outside [%v, %v)", try, got, base, base*1.5)
		}
	}
}

func TestReliabilityValidation(t *testing.T) {
	sim := NewSimulation(1)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.EnableReliability(Reliability{MaxRetries: -1}); err == nil {
		t.Fatal("negative retries accepted")
	}
	if err := bus.EnableReliability(Reliability{BaseBackoff: 1, MaxBackoff: 0.5}); err == nil {
		t.Fatal("max backoff below base accepted")
	}
	if err := bus.EnableReliability(Reliability{}); err != nil {
		t.Fatalf("default reliability rejected: %v", err)
	}
}

// runBurstSession feeds sessions of stub-classified traffic through a bus
// with the given link and reliability, returning the camera's accepted
// event count.
func runBurstSession(t *testing.T, link Link, rel *Reliability) int {
	t.Helper()
	sim := NewSimulation(11)
	bus, err := NewBus(sim, link)
	if err != nil {
		t.Fatal(err)
	}
	if rel != nil {
		if err := bus.EnableReliability(*rel); err != nil {
			t.Fatal(err)
		}
	}
	cam := &Camera{}
	cam.Attach(bus)
	pen := &Pen{Classifier: stubClassifier{}}
	pen.Attach(bus)
	rng := rand.New(rand.NewSource(11))
	offset := 0.0
	for i := 0; i < 6; i++ {
		readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rng)
		if err != nil {
			t.Fatal(err)
		}
		for k := range readings {
			readings[k].T += offset
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			t.Fatal(err)
		}
		offset = readings[len(readings)-1].T + 2
	}
	sim.Run(offset + 30)
	return cam.Accepted()
}

func TestRetransmitRecoversBurstLoss(t *testing.T) {
	base := Link{Latency: 0.02}
	baseline := runBurstSession(t, base, nil)
	if baseline == 0 {
		t.Fatal("lossless baseline accepted no events")
	}

	lossy := base
	lossy.LossModel = &fault.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.45, LossBad: 1}
	rel := DefaultReliability()
	recovered := runBurstSession(t, lossy, &rel)

	if got, want := float64(recovered), 0.95*float64(baseline); got < want {
		t.Fatalf("accepted %d of %d baseline events (%.1f%%), want >= 95%%",
			recovered, baseline, 100*got/float64(baseline))
	}

	// Without the reliability layer the same channel visibly hurts.
	lossyAgain := base
	lossyAgain.LossModel = &fault.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.45, LossBad: 1}
	unprotected := runBurstSession(t, lossyAgain, nil)
	if unprotected >= recovered {
		t.Fatalf("retransmit did not help: %d unprotected >= %d recovered", unprotected, recovered)
	}
}

func TestCameraFallbackTimeout(t *testing.T) {
	sim := NewSimulation(9)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	cam := &Camera{FallbackTimeout: 5}
	cam.Attach(bus)
	// The pen reports writing twice, then falls silent (crash, partition).
	for i, at := range []float64{1, 2} {
		i, at := i, at
		if err := sim.Schedule(at, func() {
			_ = bus.Publish(Event{Source: "pen", Context: sensor.ContextWriting, Seq: i, Sent: at})
		}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(20)

	if got := cam.Fallbacks(); got != 1 {
		t.Fatalf("fallback snapshots = %d, want 1", got)
	}
	snaps := cam.Snapshots()
	if len(snaps) != 1 || !snaps[0].Fallback {
		t.Fatalf("snapshots = %+v, want one fallback", snaps)
	}
	// The shutter fires one timeout after the last accepted event.
	if got := snaps[0].At; got < 7 || got > 7.1 {
		t.Fatalf("fallback at %v, want ~7 (last event at 2 + timeout 5)", got)
	}
	// A live pen keeps re-arming the watchdog: no fallback fires.
	sim2 := NewSimulation(9)
	bus2, err := NewBus(sim2, Link{})
	if err != nil {
		t.Fatal(err)
	}
	live := &Camera{FallbackTimeout: 5}
	live.Attach(bus2)
	for i := 0; i < 10; i++ {
		i := i
		at := float64(i) * 2
		if err := sim2.Schedule(at, func() {
			_ = bus2.Publish(Event{Source: "pen", Context: sensor.ContextWriting, Seq: i, Sent: at})
		}); err != nil {
			t.Fatal(err)
		}
	}
	sim2.Run(21)
	if got := live.Fallbacks(); got != 0 {
		t.Fatalf("live pen triggered %d fallbacks, want 0", got)
	}
}

// epsilonFaultCases enumerates one representative of every sensor fault
// class with a detector tuned to catch it.
func epsilonFaultCases() []struct {
	name  string
	fault fault.SensorFault
} {
	return []struct {
		name  string
		fault fault.SensorFault
	}{
		{"stuck-axis", &fault.StuckAxis{Axis: fault.AxisZ}},
		{"saturation", &fault.Saturation{Gain: 40}},
		// The gap start is deliberately off the 1 s window grid so the
		// discontinuity falls inside a window rather than on a boundary.
		{"dropout", &fault.Dropout{Start: 10.5, Duration: 3}},
		{"spike", &fault.SpikeNoise{Prob: 0.9, Amplitude: 5}},
		{"clock-drift", &fault.ClockDrift{Rate: 0.5}},
	}
}

// runEpsilonPipeline pushes one faulted recording through the whole chain
// (sensor → pen → bus → camera) and returns the recorded event stream plus
// the filtering camera's ignore count.
func runEpsilonPipeline(t *testing.T, p *pipeline, f fault.SensorFault, workers int) ([]Event, int) {
	t.Helper()
	sim := NewSimulation(21)
	bus, err := NewBus(sim, Link{Latency: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{name: "rec"}
	rec.attach(bus)
	cam := &Camera{Name: "cam", UseQuality: true, MinQuality: 0.5}
	cam.Attach(bus)
	pen := &Pen{
		Classifier:      p.clf,
		Measure:         p.measure,
		Degradation:     &feature.DegradationConfig{NominalStep: 0.01},
		PreScoreWorkers: workers,
	}
	pen.Attach(bus)

	rng := rand.New(rand.NewSource(21))
	readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rng)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(21, f)
	readings, err = inj.Apply(readings)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pen.Feed(sim, readings); err != nil {
		t.Fatal(err)
	}
	sim.Run(readings[len(readings)-1].T + 10)
	if pen.DegradedWindows() == 0 {
		t.Fatalf("fault %s: no window flagged degraded", f.Name())
	}
	return rec.events, cam.Ignored()
}

func TestSensorFaultsForceEpsilonEndToEnd(t *testing.T) {
	p := trainPipeline(t, 7)
	for _, tc := range epsilonFaultCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var streams [][]Event
			for _, workers := range []int{1, 4} {
				events, ignored := runEpsilonPipeline(t, p, tc.fault, workers)
				if len(events) == 0 {
					t.Fatal("no events reached the bus")
				}
				epsilon := 0
				for _, ev := range events {
					if !ev.HasQuality {
						epsilon++
					}
				}
				if epsilon == 0 {
					t.Fatalf("fault %s: no ε (quality-free) events published", tc.name)
				}
				if ignored < epsilon {
					t.Fatalf("camera ignored %d events, want >= %d ε events", ignored, epsilon)
				}
				streams = append(streams, events)
			}
			// Determinism contract: the event stream is identical at any
			// worker count.
			if !reflect.DeepEqual(streams[0], streams[1]) {
				t.Fatal("event streams differ between 1 and 4 workers")
			}
		})
	}
}

func TestFaultedStreamIdenticalAcrossWorkerCounts(t *testing.T) {
	p := trainPipeline(t, 13)
	run := func(workers int) []Event {
		sim := NewSimulation(31)
		link := Link{
			Latency:    0.02,
			Jitter:     0.03,
			LossModel:  fault.BurstLoss(0.1),
			FrameFault: &fault.Truncate{Prob: 0.05},
		}
		bus, err := NewBus(sim, link)
		if err != nil {
			t.Fatal(err)
		}
		if err := bus.EnableReliability(DefaultReliability()); err != nil {
			t.Fatal(err)
		}
		rec := &recorder{name: "rec"}
		rec.attach(bus)
		pen := &Pen{
			Classifier:      p.clf,
			Measure:         p.measure,
			Degradation:     &feature.DegradationConfig{},
			PreScoreWorkers: workers,
		}
		pen.Attach(bus)
		rng := rand.New(rand.NewSource(31))
		readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rng)
		if err != nil {
			t.Fatal(err)
		}
		inj := fault.NewInjector(31, &fault.SpikeNoise{Prob: 0.1})
		if readings, err = inj.Apply(readings); err != nil {
			t.Fatal(err)
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			t.Fatal(err)
		}
		sim.Run(readings[len(readings)-1].T + 10)
		return rec.events
	}
	one, four := run(1), run(4)
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("faulted event streams differ: %d events at 1 worker, %d at 4", len(one), len(four))
	}
}
