package awareoffice

// dedupWindowBits is the number of recent sequence numbers tracked per
// source: 1024 bits = 128 bytes per publisher, enough to cover any
// realistic reordering (retransmit backoff, jitter, duplicates) while
// keeping receiver state bounded no matter how long the simulation runs.
const dedupWindowBits = 1024

// seqDedup is a wraparound-aware duplicate detector keyed by
// (source, sequence). The wire encodes sequence numbers in 16 bits, so a
// long-running publisher wraps from 65535 back to 0; naive "have I seen
// this seq" maps would both misclassify post-wrap events as duplicates and
// grow without bound. seqDedup instead keeps, per source, a sliding bitmap
// over the last dedupWindowBits sequence numbers below the highest seen,
// comparing sequences with RFC 1982 serial-number arithmetic.
//
// A sequence far behind the window (more than dedupWindowBits in the
// past) is treated as a publisher reboot with sequence reset: the window
// restarts at that sequence instead of rejecting the reborn node forever.
type seqDedup struct {
	sources map[string]*sourceWindow
}

// sourceWindow is one publisher's sliding duplicate window.
type sourceWindow struct {
	primed  bool
	highest uint16
	// bits[i/64]>>(i%64) tracks seq (highest − i); bit 0 is highest itself.
	bits [dedupWindowBits / 64]uint64
}

// Seen records the sequence and reports whether it was already present.
func (d *seqDedup) Seen(source string, seq int) bool {
	if d.sources == nil {
		d.sources = make(map[string]*sourceWindow)
	}
	w, ok := d.sources[source]
	if !ok {
		w = &sourceWindow{}
		d.sources[source] = w
	}
	return w.seen(uint16(seq))
}

// Sources returns the number of publishers currently tracked.
func (d *seqDedup) Sources() int { return len(d.sources) }

// seen advances or probes the window for one 16-bit sequence number.
func (w *sourceWindow) seen(s uint16) bool {
	if !w.primed {
		w.reset(s)
		return false
	}
	// RFC 1982 serial comparison: positive delta means s is newer.
	delta := int(int16(s - w.highest))
	switch {
	case delta > 0:
		w.advance(delta)
		w.highest = s
		w.bits[0] |= 1
		return false
	case delta == 0:
		return true
	case -delta >= dedupWindowBits:
		// Too old to sit in the window: a rebooted publisher restarting
		// its numbering (or an absurdly late packet). Restart the window
		// so the reborn node is not rejected forever.
		w.reset(s)
		return false
	default:
		off := -delta
		word, bit := off/64, uint(off%64)
		if w.bits[word]&(1<<bit) != 0 {
			return true
		}
		w.bits[word] |= 1 << bit
		return false
	}
}

// reset restarts the window at sequence s with only s marked.
func (w *sourceWindow) reset(s uint16) {
	*w = sourceWindow{primed: true, highest: s}
	w.bits[0] = 1
}

// advance shifts the bitmap by n positions toward older sequences.
func (w *sourceWindow) advance(n int) {
	if n >= dedupWindowBits {
		w.bits = [dedupWindowBits / 64]uint64{}
		return
	}
	words, bits := n/64, uint(n%64)
	for i := len(w.bits) - 1; i >= 0; i-- {
		var v uint64
		if i-words >= 0 {
			v = w.bits[i-words] << bits
			if bits > 0 && i-words-1 >= 0 {
				v |= w.bits[i-words-1] >> (64 - bits)
			}
		}
		w.bits[i] = v
	}
}
