package awareoffice

import (
	"errors"
	"math/rand"
	"testing"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/sensor"
)

// pipeline bundles a trained classifier and quality measure for the
// appliance tests.
type pipeline struct {
	clf     classify.Classifier
	measure *core.Measure
}

// trainPipeline builds the AwarePen recognition stack on synthetic data.
func trainPipeline(t testing.TB, seed int64) *pipeline {
	t.Helper()
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{
			Segments: []sensor.Segment{
				{Context: sensor.ContextLying, Duration: 10},
				{Context: sensor.ContextWriting, Duration: 10},
				{Context: sensor.ContextPlaying, Duration: 10},
			},
		}},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		t.Fatal(err)
	}
	wild := sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(wild),
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := core.Observe(clf, mixed)
	if err != nil {
		t.Fatal(err)
	}
	measure, err := core.Build(obs, nil, core.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{clf: clf, measure: measure}
}

func TestPenPublishesClassifiedWindows(t *testing.T) {
	p := trainPipeline(t, 40)
	sim := NewSimulation(1)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	bus.Subscribe("listener", func(ev Event) { events = append(events, ev) })

	pen := &Pen{Classifier: p.clf, Measure: p.measure}
	pen.Attach(bus)
	readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	scheduled, err := pen.Feed(sim, readings)
	if err != nil {
		t.Fatal(err)
	}
	if scheduled != 26 {
		t.Errorf("scheduled %d events, want 26", scheduled)
	}
	sim.Run(30)
	if len(events) == 0 {
		t.Fatal("no events delivered")
	}
	withQuality := 0
	for _, ev := range events {
		if ev.Source != "awarepen" {
			t.Errorf("source = %q", ev.Source)
		}
		if ev.Context == sensor.ContextUnknown {
			t.Error("published unknown context")
		}
		if ev.HasQuality {
			withQuality++
			if ev.Quality < 0 || ev.Quality > 1 {
				t.Errorf("quality %v outside [0,1]", ev.Quality)
			}
		}
	}
	if withQuality == 0 {
		t.Error("no event carried a quality annotation")
	}
}

func TestPenWithoutMeasurePublishesLegacyEvents(t *testing.T) {
	p := trainPipeline(t, 41)
	sim := NewSimulation(1)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	bus.Subscribe("listener", func(ev Event) { events = append(events, ev) })
	pen := &Pen{Classifier: p.clf} // no Measure
	pen.Attach(bus)
	readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pen.Feed(sim, readings); err != nil {
		t.Fatal(err)
	}
	sim.Run(30)
	for _, ev := range events {
		if ev.HasQuality {
			t.Fatal("legacy pen published quality")
		}
	}
}

func TestPenErrors(t *testing.T) {
	pen := &Pen{}
	sim := NewSimulation(1)
	if _, err := pen.Feed(sim, nil); !errors.Is(err, ErrNotWired) {
		t.Errorf("unwired: %v", err)
	}
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	pen.Attach(bus)
	if _, err := pen.Feed(sim, nil); err == nil {
		t.Error("pen without classifier accepted")
	}
}

func TestCameraTakesSnapshotAtEndOfWriting(t *testing.T) {
	p := trainPipeline(t, 42)
	sim := NewSimulation(5)
	bus, err := NewBus(sim, Link{Latency: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	cam := &Camera{}
	cam.Attach(bus)
	pen := &Pen{Classifier: p.clf, Measure: p.measure}
	pen.Attach(bus)

	readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pen.Feed(sim, readings); err != nil {
		t.Fatal(err)
	}
	sim.Run(30)

	snaps := cam.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("camera never fired")
	}
	truths := EndOfWritingTimes(readings)
	if len(truths) != 2 {
		t.Fatalf("scenario has %d end-of-writing moments, want 2", len(truths))
	}
	score := ScoreSnapshots(snaps, truths, 1.5)
	if score.Recall() < 0.5 {
		t.Errorf("recall = %v, want >= 0.5", score.Recall())
	}
}

func TestCameraQualityFilterIgnoresLowQuality(t *testing.T) {
	p := trainPipeline(t, 43)
	sim := NewSimulation(7)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	cam := &Camera{UseQuality: true, MinQuality: 0.99}
	cam.Attach(bus)
	pen := &Pen{Classifier: p.clf, Measure: p.measure}
	pen.Attach(bus)
	wild := sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}
	readings, err := sensor.OfficeSession(wild).Run(rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pen.Feed(sim, readings); err != nil {
		t.Fatal(err)
	}
	sim.Run(30)
	if cam.Ignored() == 0 {
		t.Error("an extreme threshold ignored nothing")
	}
}

func TestCameraSuppressesDuplicates(t *testing.T) {
	sim := NewSimulation(9)
	bus, err := NewBus(sim, Link{Duplicate: 1})
	if err != nil {
		t.Fatal(err)
	}
	cam := &Camera{}
	cam.Attach(bus)
	// A writing phase followed by lying: two logical events, each
	// duplicated by the link.
	_ = bus.Publish(Event{Source: "pen", Context: sensor.ContextWriting, Seq: 0, Sent: 0})
	sim.Run(0.1)
	_ = bus.Publish(Event{Source: "pen", Context: sensor.ContextLying, Seq: 1, Sent: 0.1})
	sim.Run(1)
	if got := len(cam.Snapshots()); got != 1 {
		t.Errorf("snapshots = %d, want 1 (duplicates suppressed)", got)
	}
	if cam.Duplicates() != 2 {
		t.Errorf("duplicates = %d, want 2", cam.Duplicates())
	}
}

func TestCameraDebounce(t *testing.T) {
	sim := NewSimulation(10)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	cam := &Camera{DebounceWindows: 2}
	cam.Attach(bus)
	publish := func(seq int, c sensor.Context) {
		_ = bus.Publish(Event{Source: "pen", Context: c, Seq: seq, Sent: sim.Now()})
		sim.Run(sim.Now() + 0.1)
	}
	// Enter writing (twice to pass debounce), then one spurious playing
	// event, then writing again: no snapshot, the glitch was debounced.
	publish(0, sensor.ContextWriting)
	publish(1, sensor.ContextWriting)
	publish(2, sensor.ContextPlaying)
	publish(3, sensor.ContextWriting)
	publish(4, sensor.ContextWriting)
	if got := len(cam.Snapshots()); got != 0 {
		t.Errorf("debounced camera took %d snapshots, want 0", got)
	}
	// A real transition (two agreeing events) fires.
	publish(5, sensor.ContextLying)
	publish(6, sensor.ContextLying)
	if got := len(cam.Snapshots()); got != 1 {
		t.Errorf("snapshots = %d, want 1", got)
	}
}

func TestScoreSnapshots(t *testing.T) {
	snaps := []Snapshot{{At: 10}, {At: 20}, {At: 35}}
	truths := []float64{10.2, 19.5}
	score := ScoreSnapshots(snaps, truths, 1.0)
	if score.Hits != 2 || score.Spurious != 1 || score.Truths != 2 {
		t.Errorf("score = %+v", score)
	}
	if score.Precision() != 2.0/3.0 {
		t.Errorf("Precision = %v", score.Precision())
	}
	if score.Recall() != 1 {
		t.Errorf("Recall = %v", score.Recall())
	}
	var zero SnapshotScore
	if zero.Precision() != 0 || zero.Recall() != 0 {
		t.Error("zero score rates should be 0")
	}
}

func TestScoreSnapshotsEachTruthCountsOnce(t *testing.T) {
	snaps := []Snapshot{{At: 10}, {At: 10.1}, {At: 10.2}}
	truths := []float64{10}
	score := ScoreSnapshots(snaps, truths, 1.0)
	if score.Hits != 1 || score.Spurious != 2 {
		t.Errorf("score = %+v, want 1 hit 2 spurious", score)
	}
}

func TestEndOfWritingTimes(t *testing.T) {
	readings := []sensor.Reading{
		{T: 0, Truth: sensor.ContextWriting},
		{T: 1, Truth: sensor.ContextWriting},
		{T: 2, Truth: sensor.ContextPlaying},
		{T: 3, Truth: sensor.ContextWriting},
		{T: 4, Truth: sensor.ContextLying},
	}
	got := EndOfWritingTimes(readings)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("got %v, want [2 4]", got)
	}
	if EndOfWritingTimes(nil) != nil {
		t.Error("nil readings should give nil")
	}
}
