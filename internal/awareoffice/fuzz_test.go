package awareoffice

import (
	"encoding/binary"
	"testing"

	"cqm/internal/particle"
)

// FuzzBusDeliver drives the bus's receive path with arbitrary frames: the
// decoder must never panic or produce an out-of-range event, and any
// accepted event must pass cleanly through a camera's duplicate
// suppression and quality filter.
func FuzzBusDeliver(f *testing.F) {
	valid, err := particle.Encode(particle.ContextPacket{
		Type:       particle.TypeContext,
		Node:       particle.NodeIDFromString("awarepen"),
		Seq:        41,
		SentMillis: 9000,
		ClassID:    1,
		Quality:    0.8,
		HasQuality: true,
	})
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:10])
	skewed := append([]byte(nil), valid...)
	skewed[1] = particle.Version + 1
	binary.BigEndian.PutUint16(skewed[20:22], particle.CRC16(skewed[:20]))
	f.Add(skewed)
	f.Add(particle.FlipBit(valid, 17))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		ev, ok := eventFromFrame(frame)
		if !ok {
			return
		}
		if ev.HasQuality && (ev.Quality < 0 || ev.Quality > 1) {
			t.Fatalf("event quality %v outside [0,1]", ev.Quality)
		}
		if ev.Seq < 0 || ev.Seq > 0xFFFF {
			t.Fatalf("event seq %d outside uint16 range", ev.Seq)
		}
		cam := &Camera{UseQuality: true, MinQuality: 0.5}
		cam.handle(ev)
		cam.handle(ev)
		if got := cam.Duplicates(); got != 1 {
			t.Fatalf("replayed event suppressed %d times, want 1", got)
		}
	})
}
