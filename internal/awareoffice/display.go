package awareoffice

import (
	"cqm/internal/fusion"
	"cqm/internal/sensor"
)

// DoorDisplay is the AwareOffice's room-state display: it subscribes to
// every pen's context events, keeps the freshest report per source, fuses
// them (quality-weighted by default), and aggregates the fused stream into
// a higher-level room state — the §5 "higher level context processor"
// living directly on the distributed bus.
type DoorDisplay struct {
	// Name identifies the display on the bus. Default "door-display".
	Name string
	// Strategy selects the fusion rule; zero value = quality-weighted.
	Strategy fusion.Strategy
	// StaleAfter drops a source's report when it is older than this many
	// seconds of virtual time. Default 3.
	StaleAfter float64
	// Aggregator maps fused contexts to room states; its zero value uses
	// the fusion defaults.
	Aggregator fusion.Aggregator

	sim     *Simulation
	latest  map[string]Event
	history []fusion.RoomState
	fused   int
}

// Attach subscribes the display to the bus and keeps the simulation for
// staleness checks.
func (d *DoorDisplay) Attach(sim *Simulation, bus *Bus) {
	d.sim = sim
	bus.Subscribe(d.name(), d.handle)
}

func (d *DoorDisplay) name() string {
	if d.Name == "" {
		return "door-display"
	}
	return d.Name
}

// handle stores the report and refreshes the fused room state.
func (d *DoorDisplay) handle(ev Event) {
	if d.latest == nil {
		d.latest = make(map[string]Event)
	}
	if ev.Context == sensor.ContextUnknown {
		return
	}
	d.latest[ev.Source] = ev

	strategy := d.Strategy
	if strategy == 0 {
		strategy = fusion.QualityWeighted
	}
	stale := d.StaleAfter
	if stale == 0 {
		stale = 3
	}
	reports := make([]fusion.Report, 0, len(d.latest))
	now := 0.0
	if d.sim != nil {
		now = d.sim.Now()
	}
	for src, e := range d.latest {
		if d.sim != nil && now-e.Sent > stale {
			delete(d.latest, src)
			continue
		}
		reports = append(reports, fusion.Report{
			Source:     src,
			Class:      e.Context,
			Quality:    e.Quality,
			HasQuality: e.HasQuality,
		})
	}
	consensus, err := fusion.Fuse(reports, strategy)
	if err != nil {
		return
	}
	d.fused++
	d.history = append(d.history, d.Aggregator.Observe(consensus.Class))
}

// State returns the currently displayed room state.
func (d *DoorDisplay) State() fusion.RoomState {
	return d.Aggregator.State()
}

// History returns the displayed room state after every fused update.
func (d *DoorDisplay) History() []fusion.RoomState {
	out := make([]fusion.RoomState, len(d.history))
	copy(out, d.history)
	return out
}

// Fusions returns the number of successful fusion updates.
func (d *DoorDisplay) Fusions() int { return d.fused }

// ActiveSources returns the number of sources with a fresh report.
func (d *DoorDisplay) ActiveSources() int { return len(d.latest) }
