package awareoffice

import (
	"testing"

	"cqm/internal/sensor"
)

// TestPartitionAndHeal simulates a camera losing connectivity mid-session
// and recovering: events during the partition are lost, but the camera
// resumes correct operation afterwards without duplicate confusion.
func TestPartitionAndHeal(t *testing.T) {
	sim := NewSimulation(30)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	cam := &Camera{}
	cam.Attach(bus)

	publish := func(at float64, seq int, c sensor.Context) {
		if err := sim.Schedule(at, func() {
			_ = bus.Publish(Event{Source: "pen", Context: c, Seq: seq, Sent: at})
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: a writing session, delivered.
	publish(1, 0, sensor.ContextWriting)
	publish(2, 1, sensor.ContextWriting)
	// Partition the camera before the session ends.
	if err := sim.Schedule(2.5, func() {
		if err := bus.SetLink("whiteboard-camera", Link{Loss: 1}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// The end-of-writing happens during the partition: the event is lost,
	// so this snapshot opportunity is missed.
	publish(3, 2, sensor.ContextLying)
	// Heal the partition.
	if err := sim.Schedule(4, func() {
		if err := bus.SetLink("whiteboard-camera", Link{}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Phase 2 after healing: a full writing session with a visible end.
	publish(5, 3, sensor.ContextWriting)
	publish(6, 4, sensor.ContextWriting)
	publish(7, 5, sensor.ContextLying)
	sim.Run(10)

	snaps := cam.Snapshots()
	// Exactly one snapshot: the partition ate the first end-of-writing,
	// the healed link delivered the second.
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1 (one missed during partition)", len(snaps))
	}
	if snaps[0].TriggeredBy.Seq != 5 {
		t.Errorf("snapshot triggered by seq %d, want 5", snaps[0].TriggeredBy.Seq)
	}
	dropped := bus.Stats().Dropped
	if dropped == 0 {
		t.Error("partition dropped nothing")
	}
}

// TestPartitionOnlyAffectsTargetSubscriber verifies per-subscriber link
// overrides: a second camera keeps receiving during the partition.
func TestPartitionOnlyAffectsTargetSubscriber(t *testing.T) {
	sim := NewSimulation(31)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	a := &Camera{Name: "cam-a"}
	a.Attach(bus)
	b := &Camera{Name: "cam-b"}
	b.Attach(bus)
	if err := bus.SetLink("cam-a", Link{Loss: 1}); err != nil {
		t.Fatal(err)
	}
	_ = bus.Publish(Event{Source: "pen", Context: sensor.ContextWriting, Seq: 0, Sent: 0})
	sim.Run(0.5)
	_ = bus.Publish(Event{Source: "pen", Context: sensor.ContextLying, Seq: 1, Sent: 0.5})
	sim.Run(2)
	if len(a.Snapshots()) != 0 {
		t.Error("partitioned camera fired")
	}
	if len(b.Snapshots()) != 1 {
		t.Errorf("healthy camera snapshots = %d, want 1", len(b.Snapshots()))
	}
}
