package awareoffice

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
)

// Simulation errors.
var (
	// ErrPastDeadline reports scheduling behind the virtual clock.
	ErrPastDeadline = errors.New("awareoffice: scheduling into the past")
	// ErrBadLink reports invalid link parameters.
	ErrBadLink = errors.New("awareoffice: invalid link parameters")
)

// Simulation is a deterministic discrete-event simulator: a virtual clock
// and a time-ordered queue of pending actions.
type Simulation struct {
	now   float64
	queue taskHeap
	seq   int64 // tie-breaker preserving scheduling order at equal times
	rng   *rand.Rand
}

// NewSimulation returns a simulation whose randomness (network effects)
// derives from seed.
func NewSimulation(seed int64) *Simulation {
	return &Simulation{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// Rand exposes the simulation's deterministic randomness source.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// Schedule queues fn to run at virtual time `at`. Scheduling strictly in
// the past is rejected; scheduling "now" is allowed and runs after the
// current action completes.
func (s *Simulation) Schedule(at float64, fn func()) error {
	if at < s.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrPastDeadline, at, s.now)
	}
	heap.Push(&s.queue, &task{at: at, seq: s.seq, fn: fn})
	s.seq++
	return nil
}

// Run drains the queue until no action remains at or before `until`,
// advancing the virtual clock. Actions scheduled during the run execute in
// time order.
func (s *Simulation) Run(until float64) {
	for s.queue.Len() > 0 {
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued actions.
func (s *Simulation) Pending() int { return s.queue.Len() }

// task is one scheduled action.
type task struct {
	at  float64
	seq int64
	fn  func()
}

// taskHeap orders tasks by time, then scheduling order.
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }

func (h taskHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *taskHeap) Push(x any) { *h = append(*h, x.(*task)) }

func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
