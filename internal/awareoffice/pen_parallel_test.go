package awareoffice

import (
	"math/rand"
	"reflect"
	"testing"

	"cqm/internal/sensor"
)

// runPenSession replays one office session through a fresh simulation and
// returns every delivered event.
func runPenSession(t *testing.T, p *pipeline, preScoreWorkers int) []Event {
	t.Helper()
	sim := NewSimulation(1)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	bus.Subscribe("listener", func(ev Event) { events = append(events, ev) })
	pen := &Pen{Classifier: p.clf, Measure: p.measure, PreScoreWorkers: preScoreWorkers}
	pen.Attach(bus)
	readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pen.Feed(sim, readings); err != nil {
		t.Fatal(err)
	}
	sim.Run(30)
	return events
}

// TestPenPreScoreEquivalence is the simulation property test: the batch
// pre-scoring path must deliver an event stream bit-identical to the
// legacy per-event path, at every worker count. reflect.DeepEqual on the
// Event structs compares the float quality values exactly — that is the
// point.
func TestPenPreScoreEquivalence(t *testing.T) {
	p := trainPipeline(t, 40)
	legacy := runPenSession(t, p, 0)
	if len(legacy) == 0 {
		t.Fatal("no events delivered on the legacy path")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := runPenSession(t, p, workers)
		if !reflect.DeepEqual(got, legacy) {
			t.Fatalf("PreScoreWorkers=%d: event stream differs from legacy path\n got %d events %+v\nwant %d events %+v",
				workers, len(got), got, len(legacy), legacy)
		}
	}
}
