package awareoffice

import (
	"errors"
	"math"
	"testing"

	"cqm/internal/sensor"
)

func TestBitErrorCleanChannelPreservesEvents(t *testing.T) {
	sim := NewSimulation(20)
	bus, err := NewBus(sim, Link{BitErrorRate: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	bus.Subscribe("camera", func(ev Event) { got = append(got, ev) })
	sent := Event{
		Source:     "awarepen",
		Context:    sensor.ContextWriting,
		Quality:    0.8112,
		HasQuality: true,
		Sent:       1.25,
		Seq:        42,
	}
	_ = bus.Publish(sent)
	sim.Run(1)
	if len(got) != 1 {
		t.Fatalf("delivered %d events", len(got))
	}
	ev := got[0]
	if ev.Source != sent.Source || ev.Context != sent.Context || ev.Seq != sent.Seq {
		t.Errorf("wire round trip changed event: %+v", ev)
	}
	if !ev.HasQuality || math.Abs(ev.Quality-sent.Quality) > 1e-4 {
		t.Errorf("quality %v -> %v beyond wire resolution", sent.Quality, ev.Quality)
	}
	if math.Abs(ev.Sent-sent.Sent) > 1e-3 {
		t.Errorf("send time %v -> %v", sent.Sent, ev.Sent)
	}
}

func TestBitErrorNoisyChannelDropsCorrupted(t *testing.T) {
	sim := NewSimulation(21)
	// ~1% per bit over a 176-bit frame: most frames corrupt.
	bus, err := NewBus(sim, Link{BitErrorRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	bus.Subscribe("camera", func(Event) { got++ })
	const n = 300
	for i := 0; i < n; i++ {
		_ = bus.Publish(Event{Source: "pen", Context: sensor.ContextLying, Seq: i})
	}
	sim.Run(1)
	if bus.Corrupted() == 0 {
		t.Fatal("noisy channel corrupted nothing")
	}
	if got+bus.Corrupted() != n {
		t.Errorf("accounting broken: %d delivered + %d corrupted != %d", got, bus.Corrupted(), n)
	}
	// P(clean frame) = 0.99^176 ≈ 0.17.
	if got == 0 || got > n/2 {
		t.Errorf("delivered %d of %d; expected a heavily corrupted channel", got, n)
	}
}

func TestBitErrorNeverDeliversGarbage(t *testing.T) {
	// Whatever the corruption, every delivered event must carry a valid
	// context and an in-range quality: the CRC guards semantic integrity.
	sim := NewSimulation(22)
	bus, err := NewBus(sim, Link{BitErrorRate: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	bus.Subscribe("camera", func(ev Event) {
		if ev.HasQuality && (ev.Quality < 0 || ev.Quality > 1) {
			t.Errorf("garbage quality delivered: %v", ev.Quality)
		}
	})
	for i := 0; i < 500; i++ {
		_ = bus.Publish(Event{
			Source:     "pen",
			Context:    sensor.ContextPlaying,
			Quality:    0.9,
			HasQuality: true,
			Seq:        i,
		})
	}
	sim.Run(1)
}

func TestBitErrorRateValidation(t *testing.T) {
	sim := NewSimulation(23)
	if _, err := NewBus(sim, Link{BitErrorRate: -0.1}); !errors.Is(err, ErrBadLink) {
		t.Errorf("negative BER: %v", err)
	}
	if _, err := NewBus(sim, Link{BitErrorRate: 1.5}); !errors.Is(err, ErrBadLink) {
		t.Errorf("BER > 1: %v", err)
	}
}
