package awareoffice

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cqm/internal/core"
	"cqm/internal/fuzzy"
	"cqm/internal/sensor"
)

// swapSource is a MeasureSource whose model the test can replace between
// feeds — the minimal stand-in for a hot-reload handle.
type swapSource struct{ m *core.Measure }

func (s *swapSource) Load() *core.Measure { return s.m }

// biasMeasure builds a quality FIS over (cue..., class) whose single wide
// rule always fires with the constant consequent bias, so every score is
// exactly bias.
func biasMeasure(t *testing.T, inputs int, bias float64) *core.Measure {
	t.Helper()
	ant := make([]fuzzy.Gaussian, inputs)
	for i := range ant {
		ant[i] = fuzzy.Gaussian{Mu: 0, Sigma: 1e6}
	}
	coeffs := make([]float64, inputs+1)
	coeffs[inputs] = bias
	sys, err := fuzzy.NewTSK(inputs, []fuzzy.Rule{{Antecedent: ant, Coeffs: coeffs}})
	if err != nil {
		t.Fatal(err)
	}
	return core.MeasureFromSystem(sys)
}

// nearBias reports whether q is the rule's constant bias up to the one
// rounding step of the single-rule weighted average.
func nearBias(q, bias float64) bool {
	return math.Abs(q-bias) < 1e-9
}

// constClassifier recognizes every window as one fixed context.
type constClassifier struct{ class sensor.Context }

func (c constClassifier) Classify([]float64) (sensor.Context, error) { return c.class, nil }
func (c constClassifier) Name() string                               { return "const" }

// feedSession runs one office session through the pen and returns the
// events a listener received.
func feedSession(t *testing.T, pen *Pen, seed int64) []Event {
	t.Helper()
	sim := NewSimulation(1)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	bus.Subscribe("listener", func(ev Event) { events = append(events, ev) })
	pen.Attach(bus)
	readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pen.Feed(sim, readings); err != nil {
		t.Fatal(err)
	}
	sim.Run(1e9)
	if len(events) == 0 {
		t.Fatal("no events published")
	}
	return events
}

func TestPenSourceOverridesMeasure(t *testing.T) {
	// Source must take precedence over the legacy Measure field, in both
	// the per-event and the pre-scored path.
	for _, tc := range []struct {
		name    string
		workers int
	}{{"per-event", 0}, {"pre-scored", 2}} {
		name, workers := tc.name, tc.workers
		t.Run(name, func(t *testing.T) {
			// cues are 3 per window (per-axis stddev) + the class input.
			src := &swapSource{m: biasMeasure(t, 4, 0.75)}
			pen := &Pen{
				Classifier:      constClassifier{class: sensor.ContextWriting},
				Measure:         biasMeasure(t, 4, 0.25),
				Source:          src,
				PreScoreWorkers: workers,
			}
			for _, ev := range feedSession(t, pen, 7) {
				if !ev.HasQuality || !nearBias(ev.Quality, 0.75) {
					t.Fatalf("event quality %v (has=%v), want 0.75 via Source",
						ev.Quality, ev.HasQuality)
				}
			}
		})
	}
}

func TestPenSourceHotSwapBetweenFeeds(t *testing.T) {
	src := &swapSource{m: biasMeasure(t, 4, 0.25)}
	pen := &Pen{
		Classifier: constClassifier{class: sensor.ContextWriting},
		Source:     src,
	}
	for _, ev := range feedSession(t, pen, 7) {
		if !ev.HasQuality || !nearBias(ev.Quality, 0.25) {
			t.Fatalf("pre-swap quality %v, want 0.25", ev.Quality)
		}
	}
	src.m = biasMeasure(t, 4, 0.75) // hot swap
	for _, ev := range feedSession(t, pen, 7) {
		if !ev.HasQuality || !nearBias(ev.Quality, 0.75) {
			t.Fatalf("post-swap quality %v, want 0.75", ev.Quality)
		}
	}
}

func TestPenSourceEmptyPublishesLegacy(t *testing.T) {
	// A source with no model yet (cold start before any artifact lands)
	// publishes legacy events without quality instead of dropping them.
	pen := &Pen{
		Classifier: constClassifier{class: sensor.ContextWriting},
		Source:     &swapSource{},
	}
	for _, ev := range feedSession(t, pen, 7) {
		if ev.HasQuality {
			t.Fatalf("empty source produced quality %v", ev.Quality)
		}
	}
}

func TestBusClose(t *testing.T) {
	sim := NewSimulation(1)
	bus, err := NewBus(sim, Link{})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	bus.Subscribe("listener", func(Event) { delivered++ })
	if err := bus.Publish(Event{Source: "pen"}); err != nil {
		t.Fatal(err)
	}
	if bus.Closed() {
		t.Error("bus closed before Close")
	}
	bus.Close()
	bus.Close() // idempotent
	if !bus.Closed() {
		t.Error("Closed() false after Close")
	}
	if err := bus.Publish(Event{Source: "pen"}); !errors.Is(err, ErrBusClosed) {
		t.Errorf("publish after close: err = %v, want ErrBusClosed", err)
	}
	sim.Run(1e9)
	// The pre-close delivery still fires; the post-close one never entered
	// the bus.
	if delivered != 1 {
		t.Errorf("delivered %d events, want 1", delivered)
	}
	if got := bus.Stats().Published; got != 1 {
		t.Errorf("published stat %d, want 1", got)
	}
}
