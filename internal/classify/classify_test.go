package classify

import (
	"errors"
	"testing"

	"cqm/internal/anfis"
	"cqm/internal/dataset"
	"cqm/internal/fuzzy"
	"cqm/internal/sensor"
)

// awarePenData generates a labelled AwarePen cue set for training tests.
func awarePenData(t testing.TB, seed int64) *dataset.Set {
	t.Helper()
	scenarios := []*sensor.Scenario{
		sensor.OfficeSession(sensor.DefaultStyle()),
		sensor.OfficeSession(sensor.Style{Amplitude: 1.2, Tempo: 0.9, Irregularity: 0.3}),
		{
			Segments: []sensor.Segment{
				{Context: sensor.ContextLying, Duration: 6},
				{Context: sensor.ContextPlaying, Duration: 6},
				{Context: sensor.ContextWriting, Duration: 6},
			},
		},
	}
	set, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios:  scenarios,
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// pureOnly filters the set down to transition-free windows.
func pureOnly(set *dataset.Set) *dataset.Set {
	out := &dataset.Set{}
	for _, smp := range set.Samples {
		if smp.Pure {
			out.Append(smp)
		}
	}
	return out
}

func TestTSKTrainerAccuracyOnPureWindows(t *testing.T) {
	set := awarePenData(t, 31)
	tr := &TSKTrainer{}
	c, err := tr.Train(set)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(c, pureOnly(set))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("TSK accuracy on pure windows = %v, want >= 0.85", acc)
	}
}

func TestTSKClassesSorted(t *testing.T) {
	set := awarePenData(t, 32)
	c, err := (&TSKTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	tsk := c.(*TSK)
	classes := tsk.Classes()
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	for i := 1; i < len(classes); i++ {
		if classes[i] <= classes[i-1] {
			t.Errorf("classes not sorted: %v", classes)
		}
	}
	if tsk.System() == nil {
		t.Error("System() returned nil")
	}
}

func TestTSKHybridRefinementDoesNotHurt(t *testing.T) {
	set := awarePenData(t, 33)
	pure := pureOnly(set)
	plain, err := (&TSKTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := (&TSKTrainer{Hybrid: true, HybridConfig: anfis.Config{Epochs: 15}}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	accPlain, err := Accuracy(plain, pure)
	if err != nil {
		t.Fatal(err)
	}
	accRefined, err := Accuracy(refined, pure)
	if err != nil {
		t.Fatal(err)
	}
	if accRefined < accPlain-0.1 {
		t.Errorf("hybrid refinement collapsed accuracy: %v -> %v", accPlain, accRefined)
	}
}

func TestTSKUnknownOnNoActivation(t *testing.T) {
	sys, err := fuzzy.NewTSK(1, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 0, Sigma: 1e-3}},
		Coeffs:     []float64{0, 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c := &TSK{sys: sys, classes: []sensor.Context{sensor.ContextLying}}
	got, err := c.Classify([]float64{1e9})
	if err != nil {
		t.Fatalf("no-activation should not error: %v", err)
	}
	if got != sensor.ContextUnknown {
		t.Errorf("got %v, want unknown", got)
	}
}

func TestTSKUntrained(t *testing.T) {
	var c TSK
	if _, err := c.Classify([]float64{1}); !errors.Is(err, ErrUntrained) {
		t.Errorf("err = %v, want ErrUntrained", err)
	}
}

func TestBaselineAccuracies(t *testing.T) {
	set := awarePenData(t, 34)
	pure := pureOnly(set)
	trainers := []struct {
		name string
		tr   Trainer
		min  float64
	}{
		{"knn", &KNNTrainer{K: 3}, 0.9},
		{"naive-bayes", &NaiveBayesTrainer{}, 0.85},
		{"nearest-centroid", NearestCentroidTrainer{}, 0.7},
	}
	for _, tt := range trainers {
		t.Run(tt.name, func(t *testing.T) {
			c, err := tt.tr.Train(set)
			if err != nil {
				t.Fatal(err)
			}
			if c.Name() == "" {
				t.Error("empty Name")
			}
			acc, err := Accuracy(c, pure)
			if err != nil {
				t.Fatal(err)
			}
			if acc < tt.min {
				t.Errorf("accuracy = %v, want >= %v", acc, tt.min)
			}
		})
	}
}

func TestClassifiersRejectWrongDim(t *testing.T) {
	set := awarePenData(t, 35)
	for _, tr := range []Trainer{&KNNTrainer{}, &NaiveBayesTrainer{}, NearestCentroidTrainer{}} {
		c, err := tr.Train(set)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Classify([]float64{1}); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: err = %v, want ErrBadInput", c.Name(), err)
		}
	}
}

func TestClassifiersUntrained(t *testing.T) {
	classifiers := []Classifier{&KNN{}, &NaiveBayes{}, &NearestCentroid{}}
	for _, c := range classifiers {
		if _, err := c.Classify([]float64{1, 2, 3}); !errors.Is(err, ErrUntrained) {
			t.Errorf("%s: err = %v, want ErrUntrained", c.Name(), err)
		}
	}
}

func TestTrainersRejectBadSets(t *testing.T) {
	trainers := []Trainer{&TSKTrainer{}, &KNNTrainer{}, &NaiveBayesTrainer{}, NearestCentroidTrainer{}}
	empty := &dataset.Set{}
	ragged := &dataset.Set{}
	ragged.Append(
		dataset.Sample{Cues: []float64{1}, Truth: sensor.ContextLying},
		dataset.Sample{Cues: []float64{1, 2}, Truth: sensor.ContextWriting},
	)
	unlabelled := &dataset.Set{}
	unlabelled.Append(dataset.Sample{Cues: []float64{1}, Truth: sensor.ContextUnknown})
	for _, tr := range trainers {
		if _, err := tr.Train(empty); !errors.Is(err, dataset.ErrEmpty) {
			t.Errorf("%T empty: %v", tr, err)
		}
		if _, err := tr.Train(ragged); !errors.Is(err, ErrBadInput) {
			t.Errorf("%T ragged: %v", tr, err)
		}
		if _, err := tr.Train(unlabelled); !errors.Is(err, ErrNoClasses) {
			t.Errorf("%T unlabelled: %v", tr, err)
		}
	}
}

func TestKNNDeterministicTieBreak(t *testing.T) {
	set := &dataset.Set{}
	// Two equidistant neighbours with different labels; k=2 ties 1:1 and
	// must deterministically pick the smaller class identifier.
	set.Append(
		dataset.Sample{Cues: []float64{-1}, Truth: sensor.ContextPlaying},
		dataset.Sample{Cues: []float64{1}, Truth: sensor.ContextLying},
	)
	c, err := (&KNNTrainer{K: 2}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Classify([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != sensor.ContextLying {
		t.Errorf("tie broke to %v, want lying (smaller identifier)", got)
	}
}

func TestKNNDoesNotAliasTrainingSet(t *testing.T) {
	set := &dataset.Set{}
	set.Append(
		dataset.Sample{Cues: []float64{0}, Truth: sensor.ContextLying},
		dataset.Sample{Cues: []float64{5}, Truth: sensor.ContextPlaying},
	)
	c, err := (&KNNTrainer{K: 1}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	set.Samples[0].Cues[0] = 100 // mutate after training
	got, err := c.Classify([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got != sensor.ContextLying {
		t.Errorf("training mutation leaked into classifier: got %v", got)
	}
}

func TestNaiveBayesPriorsFavorFrequentClass(t *testing.T) {
	set := &dataset.Set{}
	// Same distribution for both classes but very different priors.
	for i := 0; i < 19; i++ {
		set.Append(dataset.Sample{Cues: []float64{0.5}, Truth: sensor.ContextWriting})
	}
	set.Append(dataset.Sample{Cues: []float64{0.5}, Truth: sensor.ContextPlaying})
	c, err := (&NaiveBayesTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Classify([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != sensor.ContextWriting {
		t.Errorf("got %v, want the 19:1 prior class", got)
	}
}

func TestAccuracyEmptySet(t *testing.T) {
	c := &NearestCentroid{dim: 1, trained: true}
	if _, err := Accuracy(c, &dataset.Set{}); !errors.Is(err, dataset.ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func BenchmarkTSKClassify(b *testing.B) {
	set := awarePenData(b, 36)
	c, err := (&TSKTrainer{}).Train(set)
	if err != nil {
		b.Fatal(err)
	}
	cues := set.Samples[0].Cues
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Classify(cues); err != nil {
			b.Fatal(err)
		}
	}
}
