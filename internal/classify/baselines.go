package classify

import (
	"fmt"
	"math"
	"sort"

	"cqm/internal/dataset"
	"cqm/internal/mat"
	"cqm/internal/sensor"
)

// KNN is a k-nearest-neighbour classifier over Euclidean cue distance.
// It serves as one of the black boxes for the classifier-agnosticism
// experiment: the CQM never sees inside it.
type KNN struct {
	k       int
	dim     int
	cues    [][]float64
	labels  []sensor.Context
	trained bool
}

// Compile-time interface check.
var _ Classifier = (*KNN)(nil)

// Name returns "knn".
func (k *KNN) Name() string { return "knn" }

// Classify votes among the k nearest training samples; ties break toward
// the smaller class identifier for determinism.
func (k *KNN) Classify(cues []float64) (sensor.Context, error) {
	if !k.trained {
		return sensor.ContextUnknown, ErrUntrained
	}
	if len(cues) != k.dim {
		return sensor.ContextUnknown, fmt.Errorf("%w: %d cues, want %d", ErrBadInput, len(cues), k.dim)
	}
	type neigh struct {
		d     float64
		label sensor.Context
	}
	neighbours := make([]neigh, len(k.cues))
	for i, c := range k.cues {
		neighbours[i] = neigh{d: mat.SquaredDistance(cues, c), label: k.labels[i]}
	}
	sort.Slice(neighbours, func(i, j int) bool {
		if neighbours[i].d != neighbours[j].d {
			return neighbours[i].d < neighbours[j].d
		}
		return neighbours[i].label < neighbours[j].label
	})
	votes := make(map[sensor.Context]int)
	limit := k.k
	if limit > len(neighbours) {
		limit = len(neighbours)
	}
	for _, n := range neighbours[:limit] {
		votes[n.label]++
	}
	best := sensor.ContextUnknown
	bestVotes := -1
	for _, c := range sensor.AllContexts() {
		if v := votes[c]; v > bestVotes {
			best, bestVotes = c, v
		}
	}
	return best, nil
}

// KNNTrainer fits a KNN classifier.
type KNNTrainer struct {
	// K is the neighbourhood size. Default 5.
	K int
}

// Compile-time interface check.
var _ Trainer = (*KNNTrainer)(nil)

// Train memorizes the training set.
func (tr *KNNTrainer) Train(set *dataset.Set) (Classifier, error) {
	dim, err := validateTrainingSet(set)
	if err != nil {
		return nil, err
	}
	k := tr.K
	if k == 0 {
		k = 5
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadInput, k)
	}
	clone := set.Clone()
	labels := make([]sensor.Context, clone.Len())
	for i, smp := range clone.Samples {
		labels[i] = smp.Truth
	}
	return &KNN{k: k, dim: dim, cues: clone.Cues(), labels: labels, trained: true}, nil
}

// NaiveBayes is a Gaussian naive-Bayes classifier: per class and cue
// dimension a normal density, combined under the independence assumption.
type NaiveBayes struct {
	dim     int
	classes []sensor.Context
	priors  map[sensor.Context]float64
	mu      map[sensor.Context][]float64
	sigma   map[sensor.Context][]float64
	trained bool
}

// Compile-time interface check.
var _ Classifier = (*NaiveBayes)(nil)

// Name returns "naive-bayes".
func (nb *NaiveBayes) Name() string { return "naive-bayes" }

// Classify returns the class with maximum log-posterior.
func (nb *NaiveBayes) Classify(cues []float64) (sensor.Context, error) {
	if !nb.trained {
		return sensor.ContextUnknown, ErrUntrained
	}
	if len(cues) != nb.dim {
		return sensor.ContextUnknown, fmt.Errorf("%w: %d cues, want %d", ErrBadInput, len(cues), nb.dim)
	}
	best := sensor.ContextUnknown
	bestLL := math.Inf(-1)
	for _, c := range nb.classes {
		ll := math.Log(nb.priors[c])
		for j, x := range cues {
			s := nb.sigma[c][j]
			d := x - nb.mu[c][j]
			ll += -0.5*d*d/(s*s) - math.Log(s)
		}
		if ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best, nil
}

// NaiveBayesTrainer fits per-class Gaussians with a variance floor.
type NaiveBayesTrainer struct {
	// MinSigma floors the per-dimension standard deviations. Default 1e-4.
	MinSigma float64
}

// Compile-time interface check.
var _ Trainer = (*NaiveBayesTrainer)(nil)

// Train estimates class priors and per-dimension Gaussian parameters.
func (tr *NaiveBayesTrainer) Train(set *dataset.Set) (Classifier, error) {
	dim, err := validateTrainingSet(set)
	if err != nil {
		return nil, err
	}
	floor := tr.MinSigma
	if floor == 0 {
		floor = 1e-4
	}
	byClass := make(map[sensor.Context][][]float64)
	for _, smp := range set.Samples {
		byClass[smp.Truth] = append(byClass[smp.Truth], smp.Cues)
	}
	delete(byClass, sensor.ContextUnknown)
	nb := &NaiveBayes{
		dim:     dim,
		priors:  make(map[sensor.Context]float64),
		mu:      make(map[sensor.Context][]float64),
		sigma:   make(map[sensor.Context][]float64),
		trained: true,
	}
	total := 0
	for _, rows := range byClass {
		total += len(rows)
	}
	for c, rows := range byClass {
		nb.classes = append(nb.classes, c)
		nb.priors[c] = float64(len(rows)) / float64(total)
		mu := make([]float64, dim)
		sigma := make([]float64, dim)
		for _, row := range rows {
			for j, v := range row {
				mu[j] += v
			}
		}
		for j := range mu {
			mu[j] /= float64(len(rows))
		}
		for _, row := range rows {
			for j, v := range row {
				d := v - mu[j]
				sigma[j] += d * d
			}
		}
		for j := range sigma {
			sigma[j] = math.Sqrt(sigma[j] / float64(len(rows)))
			if sigma[j] < floor {
				sigma[j] = floor
			}
		}
		nb.mu[c] = mu
		nb.sigma[c] = sigma
	}
	sort.Slice(nb.classes, func(i, j int) bool { return nb.classes[i] < nb.classes[j] })
	return nb, nil
}

// NearestCentroid classifies to the class whose training-cue centroid is
// closest — the simplest possible baseline.
type NearestCentroid struct {
	dim       int
	classes   []sensor.Context
	centroids map[sensor.Context][]float64
	trained   bool
}

// Compile-time interface check.
var _ Classifier = (*NearestCentroid)(nil)

// Name returns "nearest-centroid".
func (nc *NearestCentroid) Name() string { return "nearest-centroid" }

// Classify returns the class of the nearest centroid.
func (nc *NearestCentroid) Classify(cues []float64) (sensor.Context, error) {
	if !nc.trained {
		return sensor.ContextUnknown, ErrUntrained
	}
	if len(cues) != nc.dim {
		return sensor.ContextUnknown, fmt.Errorf("%w: %d cues, want %d", ErrBadInput, len(cues), nc.dim)
	}
	best := sensor.ContextUnknown
	bestD := math.Inf(1)
	for _, c := range nc.classes {
		if d := mat.SquaredDistance(cues, nc.centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best, nil
}

// NearestCentroidTrainer fits class centroids.
type NearestCentroidTrainer struct{}

// Compile-time interface check.
var _ Trainer = (*NearestCentroidTrainer)(nil)

// Train computes the per-class cue centroids.
func (NearestCentroidTrainer) Train(set *dataset.Set) (Classifier, error) {
	dim, err := validateTrainingSet(set)
	if err != nil {
		return nil, err
	}
	sums := make(map[sensor.Context][]float64)
	counts := make(map[sensor.Context]int)
	for _, smp := range set.Samples {
		if smp.Truth == sensor.ContextUnknown {
			continue
		}
		if sums[smp.Truth] == nil {
			sums[smp.Truth] = make([]float64, dim)
		}
		for j, v := range smp.Cues {
			sums[smp.Truth][j] += v
		}
		counts[smp.Truth]++
	}
	nc := &NearestCentroid{dim: dim, centroids: make(map[sensor.Context][]float64), trained: true}
	for c, sum := range sums {
		for j := range sum {
			sum[j] /= float64(counts[c])
		}
		nc.centroids[c] = sum
		nc.classes = append(nc.classes, c)
	}
	sort.Slice(nc.classes, func(i, j int) bool { return nc.classes[i] < nc.classes[j] })
	return nc, nil
}
