package classify

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"cqm/internal/fuzzy"
	"cqm/internal/sensor"
)

// ErrUnknownKind reports deserialization of an unrecognized classifier.
var ErrUnknownKind = errors.New("classify: unknown classifier kind")

// envelope wraps any serialized classifier with its kind tag.
type envelope struct {
	Kind  string          `json:"kind"`
	Model json.RawMessage `json:"model"`
}

// MarshalClassifier serializes any classifier produced by this package
// into a self-describing JSON envelope.
func MarshalClassifier(c Classifier) ([]byte, error) {
	var (
		model any
		err   error
	)
	switch t := c.(type) {
	case *TSK:
		model, err = t.dto()
	case *KNN:
		model, err = t.dto()
	case *NaiveBayes:
		model, err = t.dto()
	case *NearestCentroid:
		model, err = t.dto()
	case *DecisionTree:
		model, err = t.dto()
	case *Softmax:
		model, err = t.dto()
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownKind, c)
	}
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(model)
	if err != nil {
		return nil, fmt.Errorf("classify: encoding %s: %w", c.Name(), err)
	}
	return json.Marshal(envelope{Kind: c.Name(), Model: raw})
}

// UnmarshalClassifier restores a classifier from its envelope.
func UnmarshalClassifier(data []byte) (Classifier, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("classify: decoding envelope: %w", err)
	}
	switch env.Kind {
	case "tsk-fis":
		return tskFromJSON(env.Model)
	case "knn":
		return knnFromJSON(env.Model)
	case "naive-bayes":
		return naiveBayesFromJSON(env.Model)
	case "nearest-centroid":
		return centroidFromJSON(env.Model)
	case "decision-tree":
		return treeFromJSON(env.Model)
	case "softmax":
		return softmaxFromJSON(env.Model)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, env.Kind)
	}
}

// --- TSK ---

type tskDTO struct {
	System  *fuzzy.TSK `json:"system"`
	Classes []int      `json:"classes"`
}

func (t *TSK) dto() (any, error) {
	if t.sys == nil {
		return nil, ErrUntrained
	}
	classes := make([]int, len(t.classes))
	for i, c := range t.classes {
		classes[i] = c.ID()
	}
	return tskDTO{System: t.sys, Classes: classes}, nil
}

func tskFromJSON(raw json.RawMessage) (*TSK, error) {
	var dto tskDTO
	if err := json.Unmarshal(raw, &dto); err != nil {
		return nil, fmt.Errorf("classify: decoding tsk: %w", err)
	}
	if dto.System == nil || len(dto.Classes) == 0 {
		return nil, fmt.Errorf("classify: tsk model incomplete")
	}
	classes := make([]sensor.Context, len(dto.Classes))
	for i, id := range dto.Classes {
		classes[i] = sensor.ContextByID(id)
		if classes[i] == sensor.ContextUnknown {
			return nil, fmt.Errorf("classify: tsk class id %d unknown", id)
		}
	}
	return &TSK{sys: dto.System, classes: classes}, nil
}

// --- KNN ---

type knnDTO struct {
	K      int         `json:"k"`
	Dim    int         `json:"dim"`
	Cues   [][]float64 `json:"cues"`
	Labels []int       `json:"labels"`
}

func (k *KNN) dto() (any, error) {
	if !k.trained {
		return nil, ErrUntrained
	}
	labels := make([]int, len(k.labels))
	for i, l := range k.labels {
		labels[i] = l.ID()
	}
	return knnDTO{K: k.k, Dim: k.dim, Cues: k.cues, Labels: labels}, nil
}

func knnFromJSON(raw json.RawMessage) (*KNN, error) {
	var dto knnDTO
	if err := json.Unmarshal(raw, &dto); err != nil {
		return nil, fmt.Errorf("classify: decoding knn: %w", err)
	}
	if dto.K < 1 || dto.Dim < 1 || len(dto.Cues) != len(dto.Labels) || len(dto.Cues) == 0 {
		return nil, fmt.Errorf("classify: knn model incomplete")
	}
	labels := make([]sensor.Context, len(dto.Labels))
	for i, id := range dto.Labels {
		labels[i] = sensor.ContextByID(id)
	}
	return &KNN{k: dto.K, dim: dto.Dim, cues: dto.Cues, labels: labels, trained: true}, nil
}

// --- NaiveBayes ---

type naiveBayesDTO struct {
	Dim     int               `json:"dim"`
	Classes []int             `json:"classes"`
	Priors  map[int]float64   `json:"priors"`
	Mu      map[int][]float64 `json:"mu"`
	Sigma   map[int][]float64 `json:"sigma"`
}

func (nb *NaiveBayes) dto() (any, error) {
	if !nb.trained {
		return nil, ErrUntrained
	}
	dto := naiveBayesDTO{
		Dim:    nb.dim,
		Priors: make(map[int]float64, len(nb.priors)),
		Mu:     make(map[int][]float64, len(nb.mu)),
		Sigma:  make(map[int][]float64, len(nb.sigma)),
	}
	for _, c := range nb.classes {
		dto.Classes = append(dto.Classes, c.ID())
		dto.Priors[c.ID()] = nb.priors[c]
		dto.Mu[c.ID()] = nb.mu[c]
		dto.Sigma[c.ID()] = nb.sigma[c]
	}
	return dto, nil
}

func naiveBayesFromJSON(raw json.RawMessage) (*NaiveBayes, error) {
	var dto naiveBayesDTO
	if err := json.Unmarshal(raw, &dto); err != nil {
		return nil, fmt.Errorf("classify: decoding naive-bayes: %w", err)
	}
	if dto.Dim < 1 || len(dto.Classes) == 0 {
		return nil, fmt.Errorf("classify: naive-bayes model incomplete")
	}
	nb := &NaiveBayes{
		dim:     dto.Dim,
		priors:  make(map[sensor.Context]float64, len(dto.Classes)),
		mu:      make(map[sensor.Context][]float64, len(dto.Classes)),
		sigma:   make(map[sensor.Context][]float64, len(dto.Classes)),
		trained: true,
	}
	for _, id := range dto.Classes {
		c := sensor.ContextByID(id)
		if len(dto.Mu[id]) != dto.Dim || len(dto.Sigma[id]) != dto.Dim {
			return nil, fmt.Errorf("classify: naive-bayes class %d parameters incomplete", id)
		}
		nb.classes = append(nb.classes, c)
		nb.priors[c] = dto.Priors[id]
		nb.mu[c] = dto.Mu[id]
		nb.sigma[c] = dto.Sigma[id]
	}
	return nb, nil
}

// --- NearestCentroid ---

type centroidDTO struct {
	Dim       int               `json:"dim"`
	Centroids map[int][]float64 `json:"centroids"`
}

func (nc *NearestCentroid) dto() (any, error) {
	if !nc.trained {
		return nil, ErrUntrained
	}
	dto := centroidDTO{Dim: nc.dim, Centroids: make(map[int][]float64, len(nc.centroids))}
	for c, v := range nc.centroids {
		dto.Centroids[c.ID()] = v
	}
	return dto, nil
}

func centroidFromJSON(raw json.RawMessage) (*NearestCentroid, error) {
	var dto centroidDTO
	if err := json.Unmarshal(raw, &dto); err != nil {
		return nil, fmt.Errorf("classify: decoding nearest-centroid: %w", err)
	}
	if dto.Dim < 1 || len(dto.Centroids) == 0 {
		return nil, fmt.Errorf("classify: nearest-centroid model incomplete")
	}
	nc := &NearestCentroid{
		dim:       dto.Dim,
		centroids: make(map[sensor.Context][]float64, len(dto.Centroids)),
		trained:   true,
	}
	ids := make([]int, 0, len(dto.Centroids))
	for id := range dto.Centroids {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic load order, and deterministic error on bad data
	for _, id := range ids {
		v := dto.Centroids[id]
		c := sensor.ContextByID(id)
		if len(v) != dto.Dim {
			return nil, fmt.Errorf("classify: centroid for class %d has %d dims, want %d", id, len(v), dto.Dim)
		}
		nc.centroids[c] = v
		nc.classes = append(nc.classes, c)
	}
	sortContexts(nc.classes)
	return nc, nil
}

// --- DecisionTree ---

type treeNodeDTO struct {
	Feature   int          `json:"feature,omitempty"`
	Threshold float64      `json:"threshold,omitempty"`
	Left      *treeNodeDTO `json:"left,omitempty"`
	Right     *treeNodeDTO `json:"right,omitempty"`
	Class     int          `json:"class,omitempty"`
	Leaf      bool         `json:"leaf"`
}

type treeDTO struct {
	Dim  int          `json:"dim"`
	Root *treeNodeDTO `json:"root"`
}

func (dt *DecisionTree) dto() (any, error) {
	if !dt.trained {
		return nil, ErrUntrained
	}
	return treeDTO{Dim: dt.dim, Root: nodeToDTO(dt.root)}, nil
}

func nodeToDTO(n *treeNode) *treeNodeDTO {
	if n == nil {
		return nil
	}
	return &treeNodeDTO{
		Feature:   n.feature,
		Threshold: n.threshold,
		Left:      nodeToDTO(n.left),
		Right:     nodeToDTO(n.right),
		Class:     int(n.class),
		Leaf:      n.leaf,
	}
}

func treeFromJSON(raw json.RawMessage) (*DecisionTree, error) {
	var dto treeDTO
	if err := json.Unmarshal(raw, &dto); err != nil {
		return nil, fmt.Errorf("classify: decoding decision-tree: %w", err)
	}
	if dto.Dim < 1 || dto.Root == nil {
		return nil, fmt.Errorf("classify: decision-tree model incomplete")
	}
	root, err := nodeFromDTO(dto.Root, dto.Dim)
	if err != nil {
		return nil, err
	}
	return &DecisionTree{root: root, dim: dto.Dim, trained: true}, nil
}

func nodeFromDTO(d *treeNodeDTO, dim int) (*treeNode, error) {
	if d.Leaf {
		return &treeNode{leaf: true, class: sensor.Context(d.Class)}, nil
	}
	if d.Left == nil || d.Right == nil {
		return nil, fmt.Errorf("classify: split node missing children")
	}
	if d.Feature < 0 || d.Feature >= dim {
		return nil, fmt.Errorf("classify: split feature %d outside [0,%d)", d.Feature, dim)
	}
	left, err := nodeFromDTO(d.Left, dim)
	if err != nil {
		return nil, err
	}
	right, err := nodeFromDTO(d.Right, dim)
	if err != nil {
		return nil, err
	}
	return &treeNode{feature: d.Feature, threshold: d.Threshold, left: left, right: right}, nil
}

// --- Softmax ---

type softmaxDTO struct {
	Dim     int         `json:"dim"`
	Classes []int       `json:"classes"`
	Weights [][]float64 `json:"weights"`
	Mean    []float64   `json:"mean"`
	Scale   []float64   `json:"scale"`
}

func (s *Softmax) dto() (any, error) {
	if !s.trained {
		return nil, ErrUntrained
	}
	classes := make([]int, len(s.classes))
	for i, c := range s.classes {
		classes[i] = c.ID()
	}
	return softmaxDTO{
		Dim:     s.dim,
		Classes: classes,
		Weights: s.weights,
		Mean:    s.mean,
		Scale:   s.scale,
	}, nil
}

func softmaxFromJSON(raw json.RawMessage) (*Softmax, error) {
	var dto softmaxDTO
	if err := json.Unmarshal(raw, &dto); err != nil {
		return nil, fmt.Errorf("classify: decoding softmax: %w", err)
	}
	if dto.Dim < 1 || len(dto.Classes) == 0 ||
		len(dto.Weights) != len(dto.Classes) ||
		len(dto.Mean) != dto.Dim || len(dto.Scale) != dto.Dim {
		return nil, fmt.Errorf("classify: softmax model incomplete")
	}
	for k, w := range dto.Weights {
		if len(w) != dto.Dim+1 {
			return nil, fmt.Errorf("classify: softmax class %d weight vector has %d entries, want %d",
				k, len(w), dto.Dim+1)
		}
	}
	classes := make([]sensor.Context, len(dto.Classes))
	for i, id := range dto.Classes {
		classes[i] = sensor.ContextByID(id)
	}
	return &Softmax{
		dim:     dto.Dim,
		classes: classes,
		weights: dto.Weights,
		mean:    dto.Mean,
		scale:   dto.Scale,
		trained: true,
	}, nil
}

// sortContexts orders classes by identifier.
func sortContexts(cs []sensor.Context) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j] < cs[j-1]; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
