package classify

import (
	"fmt"
	"sort"

	"cqm/internal/dataset"
	"cqm/internal/sensor"
)

// DecisionTree is a CART-style classification tree over cue vectors —
// another black box for the agnosticism experiments, and the kind of
// lightweight classifier an embedded Particle node could actually run.
type DecisionTree struct {
	root    *treeNode
	dim     int
	trained bool
}

// treeNode is one node: either a split (Feature/Threshold with children)
// or a leaf (Class).
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	class     sensor.Context
	leaf      bool
}

// Compile-time interface check.
var _ Classifier = (*DecisionTree)(nil)

// Name returns "decision-tree".
func (dt *DecisionTree) Name() string { return "decision-tree" }

// Classify walks the tree to a leaf.
func (dt *DecisionTree) Classify(cues []float64) (sensor.Context, error) {
	if !dt.trained {
		return sensor.ContextUnknown, ErrUntrained
	}
	if len(cues) != dt.dim {
		return sensor.ContextUnknown, fmt.Errorf("%w: %d cues, want %d", ErrBadInput, len(cues), dt.dim)
	}
	node := dt.root
	for !node.leaf {
		if cues[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.class, nil
}

// Depth returns the tree height (a leaf-only tree has depth 1).
func (dt *DecisionTree) Depth() int {
	return depthOf(dt.root)
}

func depthOf(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// DecisionTreeTrainer grows a CART tree by Gini impurity.
type DecisionTreeTrainer struct {
	// MaxDepth bounds the tree height. Default 6.
	MaxDepth int
	// MinSamples stops splitting below this node size. Default 4.
	MinSamples int
}

// Compile-time interface check.
var _ Trainer = (*DecisionTreeTrainer)(nil)

// Train grows the tree.
func (tr *DecisionTreeTrainer) Train(set *dataset.Set) (Classifier, error) {
	dim, err := validateTrainingSet(set)
	if err != nil {
		return nil, err
	}
	maxDepth := tr.MaxDepth
	if maxDepth == 0 {
		maxDepth = 6
	}
	minSamples := tr.MinSamples
	if minSamples == 0 {
		minSamples = 4
	}
	if maxDepth < 1 || minSamples < 1 {
		return nil, fmt.Errorf("%w: depth %d, min samples %d", ErrBadInput, maxDepth, minSamples)
	}
	idx := make([]int, set.Len())
	for i := range idx {
		idx[i] = i
	}
	root := grow(set, idx, dim, maxDepth, minSamples)
	return &DecisionTree{root: root, dim: dim, trained: true}, nil
}

// grow recursively builds the subtree for the samples in idx.
func grow(set *dataset.Set, idx []int, dim, depth, minSamples int) *treeNode {
	majority, pure := majorityClass(set, idx)
	if depth <= 1 || len(idx) < minSamples || pure {
		return &treeNode{leaf: true, class: majority}
	}
	feature, threshold, ok := bestSplit(set, idx, dim)
	if !ok {
		return &treeNode{leaf: true, class: majority}
	}
	var left, right []int
	for _, i := range idx {
		if set.Samples[i].Cues[feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &treeNode{leaf: true, class: majority}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      grow(set, left, dim, depth-1, minSamples),
		right:     grow(set, right, dim, depth-1, minSamples),
	}
}

// majorityClass returns the most frequent class among idx (ties toward
// the smaller identifier) and whether the node is pure.
func majorityClass(set *dataset.Set, idx []int) (sensor.Context, bool) {
	counts := make(map[sensor.Context]int, 3)
	for _, i := range idx {
		counts[set.Samples[i].Truth]++
	}
	best := sensor.ContextUnknown
	bestN := -1
	for _, c := range sensor.AllContexts() {
		if n := counts[c]; n > bestN {
			best, bestN = c, n
		}
	}
	return best, len(counts) == 1
}

// bestSplit scans every feature's candidate thresholds (midpoints between
// consecutive distinct sorted values) for the lowest weighted Gini.
func bestSplit(set *dataset.Set, idx []int, dim int) (feature int, threshold float64, ok bool) {
	bestGini := gini(set, idx)
	if bestGini == 0 {
		return 0, 0, false
	}
	found := false
	values := make([]float64, 0, len(idx))
	for f := 0; f < dim; f++ {
		values = values[:0]
		for _, i := range idx {
			values = append(values, set.Samples[i].Cues[f])
		}
		sort.Float64s(values)
		for k := 1; k < len(values); k++ {
			if values[k] == values[k-1] { //lint:ignore floatcmp dedupe of identical values in a sorted slice is exact by construction
				continue
			}
			thr := 0.5 * (values[k] + values[k-1])
			var left, right []int
			for _, i := range idx {
				if set.Samples[i].Cues[f] <= thr {
					left = append(left, i)
				} else {
					right = append(right, i)
				}
			}
			w := float64(len(left))/float64(len(idx))*gini(set, left) +
				float64(len(right))/float64(len(idx))*gini(set, right)
			if w < bestGini-1e-12 {
				bestGini = w
				feature, threshold, found = f, thr, true
			}
		}
	}
	return feature, threshold, found
}

// gini returns the Gini impurity of the samples in idx.
func gini(set *dataset.Set, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	counts := make(map[sensor.Context]int, 3)
	for _, i := range idx {
		counts[set.Samples[i].Truth]++
	}
	impurity := 1.0
	n := float64(len(idx))
	for _, c := range counts {
		p := float64(c) / n
		impurity -= p * p
	}
	return impurity
}
