package classify

import (
	"errors"
	"testing"

	"cqm/internal/anfis"
	"cqm/internal/sensor"
)

func TestClassifierPersistenceRoundTrip(t *testing.T) {
	set := awarePenData(t, 70)
	trainers := []Trainer{
		&TSKTrainer{Hybrid: true, HybridConfig: anfis.Config{Epochs: 5}},
		&KNNTrainer{K: 3},
		&NaiveBayesTrainer{},
		NearestCentroidTrainer{},
		&DecisionTreeTrainer{},
		&SoftmaxTrainer{Epochs: 80},
	}
	for _, tr := range trainers {
		orig, err := tr.Train(set)
		if err != nil {
			t.Fatalf("%T: %v", tr, err)
		}
		data, err := MarshalClassifier(orig)
		if err != nil {
			t.Fatalf("%s marshal: %v", orig.Name(), err)
		}
		back, err := UnmarshalClassifier(data)
		if err != nil {
			t.Fatalf("%s unmarshal: %v", orig.Name(), err)
		}
		if back.Name() != orig.Name() {
			t.Fatalf("kind changed: %s -> %s", orig.Name(), back.Name())
		}
		// Behavioural equivalence over the whole data set.
		for i, smp := range set.Samples {
			a, errA := orig.Classify(smp.Cues)
			b, errB := back.Classify(smp.Cues)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s: error divergence at %d: %v vs %v", orig.Name(), i, errA, errB)
			}
			if a != b {
				t.Fatalf("%s: sample %d classified %v vs %v after round trip", orig.Name(), i, a, b)
			}
		}
	}
}

func TestMarshalUntrained(t *testing.T) {
	for _, c := range []Classifier{&TSK{}, &KNN{}, &NaiveBayes{}, &NearestCentroid{}, &DecisionTree{}, &Softmax{}} {
		if _, err := MarshalClassifier(c); !errors.Is(err, ErrUntrained) {
			t.Errorf("%T: err = %v, want ErrUntrained", c, err)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", `{nope`},
		{"unknown kind", `{"kind":"svm","model":{}}`},
		{"tsk incomplete", `{"kind":"tsk-fis","model":{}}`},
		{"knn incomplete", `{"kind":"knn","model":{"k":0}}`},
		{"bayes incomplete", `{"kind":"naive-bayes","model":{"dim":0}}`},
		{"centroid incomplete", `{"kind":"nearest-centroid","model":{"dim":1}}`},
		{"tree incomplete", `{"kind":"decision-tree","model":{"dim":1}}`},
		{"tree bad feature", `{"kind":"decision-tree","model":{"dim":1,"root":{"leaf":false,"feature":5,"left":{"leaf":true,"class":1},"right":{"leaf":true,"class":2}}}}`},
		{"softmax incomplete", `{"kind":"softmax","model":{"dim":2,"classes":[1],"weights":[[1]],"mean":[0,0],"scale":[1,1]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalClassifier([]byte(tc.data)); err == nil {
				t.Error("accepted")
			}
		})
	}
}

// foreignClassifier satisfies Classifier but is not one of this package's
// serializable types.
type foreignClassifier struct{}

func (foreignClassifier) Classify([]float64) (sensor.Context, error) {
	return sensor.ContextLying, nil
}

func (foreignClassifier) Name() string { return "foreign" }

func TestMarshalForeignClassifier(t *testing.T) {
	if _, err := MarshalClassifier(foreignClassifier{}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("err = %v, want ErrUnknownKind", err)
	}
}
