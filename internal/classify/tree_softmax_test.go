package classify

import (
	"errors"
	"math"
	"testing"

	"cqm/internal/dataset"
	"cqm/internal/sensor"
)

func TestDecisionTreeAccuracy(t *testing.T) {
	set := awarePenData(t, 50)
	c, err := (&DecisionTreeTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(c, pureOnly(set))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("tree accuracy = %v, want >= 0.9", acc)
	}
}

func TestDecisionTreeDepthBound(t *testing.T) {
	set := awarePenData(t, 51)
	c, err := (&DecisionTreeTrainer{MaxDepth: 2}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	tree := c.(*DecisionTree)
	if d := tree.Depth(); d > 2 {
		t.Errorf("depth %d exceeds bound 2", d)
	}
}

func TestDecisionTreePureLeaf(t *testing.T) {
	// Single-class data: the root must be a pure leaf.
	set := &dataset.Set{}
	for i := 0; i < 10; i++ {
		set.Append(dataset.Sample{Cues: []float64{float64(i)}, Truth: sensor.ContextLying})
	}
	c, err := (&DecisionTreeTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	tree := c.(*DecisionTree)
	if tree.Depth() != 1 {
		t.Errorf("pure data grew depth %d, want 1", tree.Depth())
	}
	got, err := c.Classify([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if got != sensor.ContextLying {
		t.Errorf("got %v", got)
	}
}

func TestDecisionTreeSeparatesSyntheticSplit(t *testing.T) {
	// A 1-D threshold problem the tree must nail exactly.
	set := &dataset.Set{}
	for i := 0; i < 20; i++ {
		truth := sensor.ContextLying
		x := float64(i)
		if i >= 10 {
			truth = sensor.ContextPlaying
		}
		set.Append(dataset.Sample{Cues: []float64{x}, Truth: truth})
	}
	c, err := (&DecisionTreeTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		want := sensor.ContextLying
		if i >= 10 {
			want = sensor.ContextPlaying
		}
		got, err := c.Classify([]float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("x=%d: got %v, want %v", i, got, want)
		}
	}
}

func TestDecisionTreeErrors(t *testing.T) {
	var dt DecisionTree
	if _, err := dt.Classify([]float64{1}); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained: %v", err)
	}
	set := awarePenData(t, 52)
	c, err := (&DecisionTreeTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify([]float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("wrong dim: %v", err)
	}
	if _, err := (&DecisionTreeTrainer{MaxDepth: -1}).Train(set); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad depth: %v", err)
	}
}

func TestSoftmaxAccuracy(t *testing.T) {
	set := awarePenData(t, 53)
	c, err := (&SoftmaxTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(c, pureOnly(set))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("softmax accuracy = %v, want >= 0.85", acc)
	}
}

func TestSoftmaxProbabilitiesSumToOne(t *testing.T) {
	set := awarePenData(t, 54)
	c, err := (&SoftmaxTrainer{}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	sm := c.(*Softmax)
	for _, smp := range set.Samples[:20] {
		probs, err := sm.Probabilities(smp.Cues)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of range", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
		// The argmax probability must match Classify.
		got, err := sm.Classify(smp.Cues)
		if err != nil {
			t.Fatal(err)
		}
		for cls, p := range probs {
			if p > probs[got]+1e-12 {
				t.Fatalf("Classify picked %v but %v has higher probability", got, cls)
			}
		}
	}
}

func TestSoftmaxErrors(t *testing.T) {
	var sm Softmax
	if _, err := sm.Classify([]float64{1}); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained: %v", err)
	}
	if _, err := sm.Probabilities([]float64{1}); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained probs: %v", err)
	}
	set := awarePenData(t, 55)
	c, err := (&SoftmaxTrainer{Epochs: 10}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify([]float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("wrong dim: %v", err)
	}
	if _, err := (&SoftmaxTrainer{LearningRate: -1}).Train(set); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad lr: %v", err)
	}
}

func TestSoftmaxDeterministic(t *testing.T) {
	set := awarePenData(t, 56)
	a, err := (&SoftmaxTrainer{Epochs: 50}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&SoftmaxTrainer{Epochs: 50}).Train(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range set.Samples[:10] {
		ca, _ := a.Classify(smp.Cues)
		cb, _ := b.Classify(smp.Cues)
		if ca != cb {
			t.Fatal("softmax training not deterministic")
		}
	}
}

func TestNewBaselinesConstantFeatureSafe(t *testing.T) {
	// A constant cue dimension must not blow up standardization or split
	// search.
	set := &dataset.Set{}
	for i := 0; i < 12; i++ {
		truth := sensor.ContextLying
		if i%2 == 0 {
			truth = sensor.ContextWriting
		}
		set.Append(dataset.Sample{Cues: []float64{5, float64(i % 2)}, Truth: truth})
	}
	for _, tr := range []Trainer{&SoftmaxTrainer{Epochs: 50}, &DecisionTreeTrainer{}} {
		c, err := tr.Train(set)
		if err != nil {
			t.Fatalf("%T: %v", tr, err)
		}
		got, err := c.Classify([]float64{5, 0})
		if err != nil {
			t.Fatalf("%T classify: %v", tr, err)
		}
		if got != sensor.ContextWriting {
			t.Errorf("%T: got %v, want writing", tr, got)
		}
	}
}
