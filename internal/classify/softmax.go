package classify

import (
	"fmt"
	"math"
	"sort"

	"cqm/internal/dataset"
	"cqm/internal/sensor"
)

// Softmax is a multinomial logistic-regression classifier trained by
// batch gradient descent on standardized cues.
type Softmax struct {
	dim     int
	classes []sensor.Context
	// weights[k] holds the class-k coefficient vector plus bias term.
	weights [][]float64
	mean    []float64
	scale   []float64
	trained bool
}

// Compile-time interface check.
var _ Classifier = (*Softmax)(nil)

// Name returns "softmax".
func (s *Softmax) Name() string { return "softmax" }

// Classify returns the class with the highest logit.
func (s *Softmax) Classify(cues []float64) (sensor.Context, error) {
	if !s.trained {
		return sensor.ContextUnknown, ErrUntrained
	}
	if len(cues) != s.dim {
		return sensor.ContextUnknown, fmt.Errorf("%w: %d cues, want %d", ErrBadInput, len(cues), s.dim)
	}
	x := s.standardize(cues)
	best := sensor.ContextUnknown
	bestLogit := math.Inf(-1)
	for k, class := range s.classes {
		logit := s.weights[k][s.dim] // bias
		for j, v := range x {
			logit += s.weights[k][j] * v
		}
		if logit > bestLogit {
			best, bestLogit = class, logit
		}
	}
	return best, nil
}

// Probabilities returns the per-class softmax distribution for the cues,
// keyed by class, in training-class order.
func (s *Softmax) Probabilities(cues []float64) (map[sensor.Context]float64, error) {
	if !s.trained {
		return nil, ErrUntrained
	}
	if len(cues) != s.dim {
		return nil, fmt.Errorf("%w: %d cues, want %d", ErrBadInput, len(cues), s.dim)
	}
	x := s.standardize(cues)
	logits := make([]float64, len(s.classes))
	maxLogit := math.Inf(-1)
	for k := range s.classes {
		l := s.weights[k][s.dim]
		for j, v := range x {
			l += s.weights[k][j] * v
		}
		logits[k] = l
		if l > maxLogit {
			maxLogit = l
		}
	}
	var z float64
	for k := range logits {
		logits[k] = math.Exp(logits[k] - maxLogit)
		z += logits[k]
	}
	out := make(map[sensor.Context]float64, len(s.classes))
	for k, class := range s.classes {
		out[class] = logits[k] / z
	}
	return out, nil
}

func (s *Softmax) standardize(cues []float64) []float64 {
	x := make([]float64, len(cues))
	for j, v := range cues {
		x[j] = (v - s.mean[j]) / s.scale[j]
	}
	return x
}

// SoftmaxTrainer fits the model by full-batch gradient descent with L2
// regularization.
type SoftmaxTrainer struct {
	// Epochs is the gradient-descent iteration count. Default 300.
	Epochs int
	// LearningRate is the step size. Default 0.5.
	LearningRate float64
	// L2 is the ridge penalty on the weights (not the bias). Default 1e-3.
	L2 float64
}

// Compile-time interface check.
var _ Trainer = (*SoftmaxTrainer)(nil)

// Train fits the softmax model.
func (tr *SoftmaxTrainer) Train(set *dataset.Set) (Classifier, error) {
	dim, err := validateTrainingSet(set)
	if err != nil {
		return nil, err
	}
	epochs := tr.Epochs
	if epochs == 0 {
		epochs = 300
	}
	lr := tr.LearningRate
	if lr == 0 {
		lr = 0.5
	}
	l2 := tr.L2
	if l2 == 0 {
		l2 = 1e-3
	}
	if epochs < 1 || lr <= 0 || l2 < 0 {
		return nil, fmt.Errorf("%w: epochs %d lr %v l2 %v", ErrBadInput, epochs, lr, l2)
	}

	// Class inventory, sorted for determinism.
	classSet := make(map[sensor.Context]struct{})
	for _, smp := range set.Samples {
		if smp.Truth != sensor.ContextUnknown {
			classSet[smp.Truth] = struct{}{}
		}
	}
	classes := make([]sensor.Context, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	classIndex := make(map[sensor.Context]int, len(classes))
	for k, c := range classes {
		classIndex[c] = k
	}

	// Standardization statistics.
	mean := make([]float64, dim)
	scale := make([]float64, dim)
	n := float64(set.Len())
	for _, smp := range set.Samples {
		for j, v := range smp.Cues {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for _, smp := range set.Samples {
		for j, v := range smp.Cues {
			d := v - mean[j]
			scale[j] += d * d
		}
	}
	for j := range scale {
		scale[j] = math.Sqrt(scale[j] / n)
		if scale[j] < 1e-9 {
			scale[j] = 1
		}
	}

	model := &Softmax{
		dim:     dim,
		classes: classes,
		mean:    mean,
		scale:   scale,
		trained: true,
	}
	model.weights = make([][]float64, len(classes))
	for k := range model.weights {
		model.weights[k] = make([]float64, dim+1)
	}

	// Pre-standardize the training matrix.
	xs := make([][]float64, set.Len())
	ys := make([]int, set.Len())
	for i, smp := range set.Samples {
		xs[i] = model.standardize(smp.Cues)
		ys[i] = classIndex[smp.Truth]
	}

	grads := make([][]float64, len(classes))
	for k := range grads {
		grads[k] = make([]float64, dim+1)
	}
	probs := make([]float64, len(classes))
	for epoch := 0; epoch < epochs; epoch++ {
		for k := range grads {
			for j := range grads[k] {
				grads[k][j] = 0
			}
		}
		for i, x := range xs {
			maxLogit := math.Inf(-1)
			for k := range classes {
				l := model.weights[k][dim]
				for j, v := range x {
					l += model.weights[k][j] * v
				}
				probs[k] = l
				if l > maxLogit {
					maxLogit = l
				}
			}
			var z float64
			for k := range probs {
				probs[k] = math.Exp(probs[k] - maxLogit)
				z += probs[k]
			}
			for k := range classes {
				p := probs[k] / z
				err := p
				if k == ys[i] {
					err -= 1
				}
				for j, v := range x {
					grads[k][j] += err * v
				}
				grads[k][dim] += err
			}
		}
		for k := range classes {
			for j := 0; j <= dim; j++ {
				g := grads[k][j] / n
				if j < dim {
					g += l2 * model.weights[k][j]
				}
				model.weights[k][j] -= lr * g
			}
		}
	}
	return model, nil
}
