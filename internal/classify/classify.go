// Package classify provides the context-classification layer the CQM
// wraps. The quality system treats whatever produced the class as a black
// box (paper §2: "We consider the context algorithm as a black-box where
// our context system could be added to"), so this package defines the
// Classifier interface and several interchangeable implementations:
//
//   - TSK: the AwarePen's own classifier — a TSK-FIS mapping the three
//     per-axis standard deviation cues onto a continuous class value that
//     is rounded to the nearest class identifier (paper §3.1).
//   - KNN, NaiveBayes, NearestCentroid: standard baselines used by the
//     classifier-agnosticism experiment (E5).
package classify

import (
	"errors"
	"fmt"

	"cqm/internal/dataset"
	"cqm/internal/sensor"
)

// Classification errors.
var (
	// ErrUntrained reports classification before training.
	ErrUntrained = errors.New("classify: classifier is not trained")
	// ErrBadInput reports a cue vector of the wrong dimension.
	ErrBadInput = errors.New("classify: bad input")
	// ErrNoClasses reports training data without class labels.
	ErrNoClasses = errors.New("classify: no classes in training data")
)

// Classifier assigns a cue vector to a context class. Implementations are
// deterministic after training so the quality pipeline can be reproduced.
type Classifier interface {
	// Classify returns the context for the cue vector.
	Classify(cues []float64) (sensor.Context, error)
	// Name identifies the algorithm in reports.
	Name() string
}

// Trainer fits a Classifier to a labelled set.
type Trainer interface {
	// Train returns a classifier fitted to the set.
	Train(set *dataset.Set) (Classifier, error)
}

// Accuracy evaluates a classifier on a labelled set and returns the
// fraction of correct classifications.
func Accuracy(c Classifier, set *dataset.Set) (float64, error) {
	if set.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	correct := 0
	for _, smp := range set.Samples {
		got, err := c.Classify(smp.Cues)
		if err != nil {
			return 0, fmt.Errorf("classify: evaluating %s: %w", c.Name(), err)
		}
		if got == smp.Truth {
			correct++
		}
	}
	return float64(correct) / float64(set.Len()), nil
}

// validateTrainingSet performs the shared training-set checks and returns
// the cue dimensionality.
func validateTrainingSet(set *dataset.Set) (int, error) {
	if set == nil || set.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	dim := len(set.Samples[0].Cues)
	if dim == 0 {
		return 0, fmt.Errorf("%w: zero-dimensional cues", ErrBadInput)
	}
	seen := false
	for i, smp := range set.Samples {
		if len(smp.Cues) != dim {
			return 0, fmt.Errorf("%w: sample %d has %d cues, want %d", ErrBadInput, i, len(smp.Cues), dim)
		}
		if smp.Truth != sensor.ContextUnknown {
			seen = true
		}
	}
	if !seen {
		return 0, ErrNoClasses
	}
	return dim, nil
}
