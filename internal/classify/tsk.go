package classify

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cqm/internal/anfis"
	"cqm/internal/cluster"
	"cqm/internal/dataset"
	"cqm/internal/fuzzy"
	"cqm/internal/sensor"
)

// TSK is the AwarePen's own classifier: a TSK-FIS maps the cue vector onto
// a continuous value that is rounded to the nearest class identifier
// (paper §3.1: "a TSK-FIS is used that maps standard deviations from three
// acceleration sensor outputs onto context classes").
type TSK struct {
	sys     *fuzzy.TSK
	classes []sensor.Context
}

// Compile-time interface check.
var _ Classifier = (*TSK)(nil)

// Name returns "tsk-fis".
func (t *TSK) Name() string { return "tsk-fis" }

// System returns the underlying fuzzy system (for inspection and
// serialization); mutating the returned system mutates the classifier.
func (t *TSK) System() *fuzzy.TSK { return t.sys }

// Classes returns the contexts the classifier can produce, in identifier
// order.
func (t *TSK) Classes() []sensor.Context {
	out := make([]sensor.Context, len(t.classes))
	copy(out, t.classes)
	return out
}

// Classify evaluates the FIS and rounds to the nearest known class
// identifier. Inputs that fire no rule are mapped to ContextUnknown with a
// nil error: an online appliance must keep running on out-of-range cues.
func (t *TSK) Classify(cues []float64) (sensor.Context, error) {
	if t.sys == nil || len(t.classes) == 0 {
		return sensor.ContextUnknown, ErrUntrained
	}
	out, err := t.sys.Eval(cues)
	if err != nil {
		if errors.Is(err, fuzzy.ErrNoActivation) {
			return sensor.ContextUnknown, nil
		}
		return sensor.ContextUnknown, fmt.Errorf("classify: TSK eval: %w", err)
	}
	best := t.classes[0]
	bestDist := math.Abs(out - float64(best.ID()))
	for _, c := range t.classes[1:] {
		if d := math.Abs(out - float64(c.ID())); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best, nil
}

// TSKTrainer builds the classifier with the same automated pipeline as the
// quality FIS: subtractive clustering, least squares, optional ANFIS
// hybrid-learning refinement.
type TSKTrainer struct {
	// Clustering configures rule extraction; the zero value uses Chiu's
	// defaults.
	Clustering cluster.SubtractiveConfig
	// Hybrid enables ANFIS refinement after the initial construction.
	Hybrid bool
	// HybridConfig configures the refinement when Hybrid is set; the zero
	// value uses the anfis defaults.
	HybridConfig anfis.Config
}

// Compile-time interface check.
var _ Trainer = (*TSKTrainer)(nil)

// Train fits the TSK classifier. Targets are the numeric class
// identifiers, exactly like the AwarePen's pre-trained system.
func (tr *TSKTrainer) Train(set *dataset.Set) (Classifier, error) {
	if _, err := validateTrainingSet(set); err != nil {
		return nil, err
	}
	data := &anfis.Data{X: set.Cues(), Y: make([]float64, set.Len())}
	classSet := make(map[sensor.Context]struct{})
	for i, smp := range set.Samples {
		data.Y[i] = float64(smp.Truth.ID())
		classSet[smp.Truth] = struct{}{}
	}
	delete(classSet, sensor.ContextUnknown)
	classes := make([]sensor.Context, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	sys, err := anfis.Build(data, anfis.BuildConfig{Clustering: tr.Clustering})
	if err != nil {
		return nil, fmt.Errorf("classify: building TSK classifier: %w", err)
	}
	if tr.Hybrid {
		if _, err := anfis.Train(sys, data, nil, tr.HybridConfig); err != nil {
			return nil, fmt.Errorf("classify: refining TSK classifier: %w", err)
		}
	}
	return &TSK{sys: sys, classes: classes}, nil
}
