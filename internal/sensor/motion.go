package sensor

import (
	"math"
	"math/rand"
)

// Accel is one 3-axis acceleration reading in g units.
type Accel struct {
	X, Y, Z float64
}

// MotionModel produces the true (noise-free) acceleration of the pen at
// time t seconds. Models are stateful per recording — obtain a fresh one
// per trace via its factory so phases and gestures differ between traces.
type MotionModel interface {
	// Accelerate returns the acceleration at time t. Implementations may
	// draw from rng to evolve internal gesture state.
	Accelerate(t float64, rng *rand.Rand) Accel
}

// Style captures a user's personal movement characteristics. The paper
// observed that users "having a different style of using the pen while
// writing" are much harder to classify; styles far from the defaults
// reproduce exactly that.
type Style struct {
	// Amplitude scales all voluntary movement. 1 is the nominal user.
	Amplitude float64
	// Tempo scales the movement frequencies. 1 is nominal.
	Tempo float64
	// Irregularity in [0,1] adds random pauses and jerk to writing and
	// playing motion. 0 is a perfectly steady user.
	Irregularity float64
}

// DefaultStyle is the nominal user the classifier is trained for.
func DefaultStyle() Style {
	return Style{Amplitude: 1, Tempo: 1, Irregularity: 0.2}
}

// normalized fills zero fields with nominal values so the zero Style is
// usable.
func (s Style) normalized() Style {
	if s.Amplitude == 0 {
		s.Amplitude = 1
	}
	if s.Tempo == 0 {
		s.Tempo = 1
	}
	if s.Irregularity < 0 {
		s.Irregularity = 0
	}
	if s.Irregularity > 1 {
		s.Irregularity = 1
	}
	return s
}

// gravity is Earth's acceleration in g units along the resting pen's Z.
const gravity = 1.0

// lyingModel: the pen rests on the whiteboard tray. Only micro-vibration
// from the building reaches the sensor.
type lyingModel struct {
	style Style
}

// NewLying returns the motion model for the "lying still" context.
func NewLying(style Style) MotionModel {
	return &lyingModel{style: style.normalized()}
}

// Accelerate returns gravity plus negligible micro-vibration.
func (m *lyingModel) Accelerate(_ float64, rng *rand.Rand) Accel {
	const vib = 0.002
	return Accel{
		X: vib * rng.NormFloat64(),
		Y: vib * rng.NormFloat64(),
		Z: gravity + vib*rng.NormFloat64(),
	}
}

// writingModel: medium-frequency, small-amplitude strokes. Writing is a
// quasi-periodic motion around 4–6 Hz in the board plane with stroke
// direction drifting as words progress, plus short pen lifts between
// words whose rate grows with the user's irregularity.
type writingModel struct {
	style     Style
	phaseX    float64
	phaseY    float64
	liftUntil float64
	nextLift  float64
}

// NewWriting returns the motion model for the "writing" context.
func NewWriting(style Style) MotionModel {
	return &writingModel{style: style.normalized()}
}

// Accelerate synthesizes stroke oscillation with inter-word pen lifts.
func (m *writingModel) Accelerate(t float64, rng *rand.Rand) Accel {
	s := m.style
	// Pen lifts: brief near-still gaps between words.
	if t >= m.nextLift {
		gap := 0.08 + 0.3*s.Irregularity*rng.Float64()
		m.liftUntil = t + gap
		// Word length shrinks (more pauses) for irregular users.
		m.nextLift = m.liftUntil + (1.2-0.8*s.Irregularity)*(0.5+rng.Float64())
	}
	if t < m.liftUntil {
		const settle = 0.01
		return Accel{
			X: settle * rng.NormFloat64(),
			Y: settle * rng.NormFloat64(),
			Z: gravity + settle*rng.NormFloat64(),
		}
	}
	freqX := 5.2 * s.Tempo
	freqY := 4.1 * s.Tempo
	m.phaseX += 0.02 * s.Irregularity * rng.NormFloat64()
	m.phaseY += 0.02 * s.Irregularity * rng.NormFloat64()
	amp := 0.16 * s.Amplitude
	jerk := 0.03 * s.Irregularity
	return Accel{
		X: amp*math.Sin(2*math.Pi*freqX*t+m.phaseX) + jerk*rng.NormFloat64(),
		Y: 0.7*amp*math.Sin(2*math.Pi*freqY*t+m.phaseY) + jerk*rng.NormFloat64(),
		// Writing tilts the pen slightly off vertical.
		Z: gravity*0.95 + 0.04*amp*math.Sin(2*math.Pi*freqX*t) + jerk*rng.NormFloat64(),
	}
}

// playingModel: large, slow, irregular swings — twirling the pen, tapping
// it, waving it while thinking. Dominated by 0.8–2.5 Hz components with
// amplitudes several times larger than writing, and occasional impact
// spikes from tapping.
type playingModel struct {
	style    Style
	phase    float64
	freq     float64
	nextTurn float64
	tapUntil float64
	nextTap  float64
}

// NewPlaying returns the motion model for the "playing around" context.
func NewPlaying(style Style) MotionModel {
	return &playingModel{style: style.normalized(), freq: 1.4}
}

// Accelerate synthesizes swinging with gesture changes and tap spikes.
func (m *playingModel) Accelerate(t float64, rng *rand.Rand) Accel {
	s := m.style
	if t >= m.nextTurn {
		// Pick a new swing rhythm.
		m.freq = (0.8 + 1.7*rng.Float64()) * s.Tempo
		m.phase = 2 * math.Pi * rng.Float64()
		m.nextTurn = t + 0.7 + 1.5*rng.Float64()
	}
	if t >= m.nextTap {
		m.tapUntil = t + 0.03
		m.nextTap = t + 0.5 + 2.5*rng.Float64()*(1.2-s.Irregularity)
	}
	amp := 0.85 * s.Amplitude
	a := Accel{
		X: amp*math.Sin(2*math.Pi*m.freq*t+m.phase) + 0.08*rng.NormFloat64(),
		Y: amp*0.8*math.Cos(2*math.Pi*m.freq*0.9*t+m.phase) + 0.08*rng.NormFloat64(),
		Z: gravity + amp*0.5*math.Sin(2*math.Pi*m.freq*0.5*t) + 0.08*rng.NormFloat64(),
	}
	if t < m.tapUntil {
		// Impact spike from tapping the pen on the table.
		a.X += 1.5 * s.Amplitude * rng.NormFloat64()
		a.Z += 1.5 * s.Amplitude * rng.NormFloat64()
	}
	return a
}

// NewModel returns a fresh motion model for the context. It returns nil
// for ContextUnknown; callers must check.
func NewModel(c Context, style Style) MotionModel {
	switch c {
	case ContextLying:
		return NewLying(style)
	case ContextWriting:
		return NewWriting(style)
	case ContextPlaying:
		return NewPlaying(style)
	default:
		return nil
	}
}
