package sensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContextStringAndID(t *testing.T) {
	tests := []struct {
		c    Context
		name string
		id   int
	}{
		{ContextLying, "lying", 1},
		{ContextWriting, "writing", 2},
		{ContextPlaying, "playing", 3},
		{ContextUnknown, "unknown", 0},
	}
	for _, tt := range tests {
		if tt.c.String() != tt.name {
			t.Errorf("String = %q, want %q", tt.c.String(), tt.name)
		}
		if tt.c.ID() != tt.id {
			t.Errorf("ID = %d, want %d", tt.c.ID(), tt.id)
		}
	}
	if Context(99).String() == "" {
		t.Error("out-of-range String empty")
	}
}

func TestContextByID(t *testing.T) {
	for _, c := range AllContexts() {
		if got := ContextByID(c.ID()); got != c {
			t.Errorf("ContextByID(%d) = %v, want %v", c.ID(), got, c)
		}
	}
	if ContextByID(99) != ContextUnknown || ContextByID(0) != ContextUnknown {
		t.Error("invalid IDs should map to ContextUnknown")
	}
}

// stddevOf records the model and returns per-axis standard deviations.
func stddevOf(t *testing.T, c Context, style Style, seed int64) (sx, sy, sz float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var acc Accelerometer
	readings, err := acc.Record(NewModel(c, style), c, 3.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys, zs []float64
	for _, r := range readings {
		xs = append(xs, r.Accel.X)
		ys = append(ys, r.Accel.Y)
		zs = append(zs, r.Accel.Z)
	}
	return stddev(xs), stddev(ys), stddev(zs)
}

func stddev(xs []float64) float64 {
	var mu float64
	for _, x := range xs {
		mu += x
	}
	mu /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

func TestContextsAreSeparableByStdDev(t *testing.T) {
	// The AwarePen classifier works on per-axis standard deviations, so
	// the motion models must order cleanly for the nominal user:
	// lying << writing << playing on the X axis.
	lx, _, _ := stddevOf(t, ContextLying, DefaultStyle(), 1)
	wx, _, _ := stddevOf(t, ContextWriting, DefaultStyle(), 2)
	px, _, _ := stddevOf(t, ContextPlaying, DefaultStyle(), 3)
	if !(lx < wx/3) {
		t.Errorf("lying stddev %v not well below writing %v", lx, wx)
	}
	if !(wx < px/1.5) {
		t.Errorf("writing stddev %v not well below playing %v", wx, px)
	}
}

func TestLyingMeasuresGravity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var acc Accelerometer
	readings, err := acc.Record(NewLying(DefaultStyle()), ContextLying, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	var zs float64
	for _, r := range readings {
		zs += r.Accel.Z
	}
	meanZ := zs / float64(len(readings))
	if math.Abs(meanZ-1) > 0.05 {
		t.Errorf("resting Z mean = %v, want ~1 g", meanZ)
	}
}

func TestStyleChangesWritingEnergy(t *testing.T) {
	// A heavy-handed user produces larger writing stddev than a light one.
	light := Style{Amplitude: 0.4, Tempo: 1, Irregularity: 0.1}
	heavy := Style{Amplitude: 2.0, Tempo: 1, Irregularity: 0.1}
	lx, _, _ := stddevOf(t, ContextWriting, light, 5)
	hx, _, _ := stddevOf(t, ContextWriting, heavy, 5)
	if lx >= hx {
		t.Errorf("light user stddev %v >= heavy %v", lx, hx)
	}
}

func TestOffStyleWritingApproachesPlaying(t *testing.T) {
	// The adversarial style the evaluation uses: writing with huge
	// amplitude looks similar to nominal playing — the ambiguity the CQM
	// must flag.
	wild := Style{Amplitude: 3.5, Tempo: 1.3, Irregularity: 0.9}
	wx, _, _ := stddevOf(t, ContextWriting, wild, 6)
	px, _, _ := stddevOf(t, ContextPlaying, DefaultStyle(), 7)
	if wx < px*0.3 {
		t.Errorf("wild writing stddev %v nowhere near playing %v — ambiguity lost", wx, px)
	}
}

func TestRecordSampleCountAndTimestamps(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	acc := Accelerometer{SampleRate: 50}
	readings, err := acc.Record(NewLying(Style{}), ContextLying, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != 100 {
		t.Fatalf("got %d samples, want 100", len(readings))
	}
	for i := 1; i < len(readings); i++ {
		dt := readings[i].T - readings[i-1].T
		if math.Abs(dt-0.02) > 1e-9 {
			t.Fatalf("sample %d spacing %v, want 0.02", i, dt)
		}
	}
	for _, r := range readings {
		if r.Truth != ContextLying {
			t.Fatal("ground truth not stamped")
		}
	}
}

func TestRecordSaturates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	acc := Accelerometer{RangeG: 0.5, NoiseSigma: 1e-9, DriftRate: 1e-9}
	readings, err := acc.Record(NewPlaying(Style{Amplitude: 5}), ContextPlaying, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range readings {
		for _, v := range []float64{r.Accel.X, r.Accel.Y, r.Accel.Z} {
			if v > 0.5+1e-9 || v < -0.5-1e-9 {
				t.Fatalf("sample %v exceeds ±0.5 g range", v)
			}
		}
	}
}

func TestRecordQuantizes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	acc := Accelerometer{Bits: 4, RangeG: 2}
	readings, err := acc.Record(NewWriting(Style{}), ContextWriting, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	lsb := 4.0 / 16.0
	for _, r := range readings {
		steps := r.Accel.X / lsb
		if math.Abs(steps-math.Round(steps)) > 1e-9 {
			t.Fatalf("X = %v is not a multiple of the LSB %v", r.Accel.X, lsb)
		}
	}
}

func TestRecordErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var acc Accelerometer
	if _, err := acc.Record(nil, ContextLying, 1, rng); !errors.Is(err, ErrNoModel) {
		t.Errorf("nil model: %v", err)
	}
	if _, err := acc.Record(NewLying(Style{}), ContextLying, 0, rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero duration: %v", err)
	}
	bad := []Accelerometer{
		{SampleRate: -5},
		{NoiseSigma: -1},
		{DriftRate: -1},
		{RangeG: -2},
	}
	for i, cfg := range bad {
		if _, err := cfg.Record(NewLying(Style{}), ContextLying, 1, rng); !errors.Is(err, ErrBadConfig) {
			t.Errorf("bad config %d: %v", i, err)
		}
	}
}

func TestScenarioRunTruthSwitches(t *testing.T) {
	s := &Scenario{
		Segments: []Segment{
			{Context: ContextWriting, Duration: 3},
			{Context: ContextLying, Duration: 3},
		},
	}
	rng := rand.New(rand.NewSource(12))
	readings, err := s.Run(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) == 0 {
		t.Fatal("no readings")
	}
	// Truth starts at writing, ends at lying, and changes exactly once.
	if readings[0].Truth != ContextWriting {
		t.Errorf("first truth = %v", readings[0].Truth)
	}
	if last := readings[len(readings)-1].Truth; last != ContextLying {
		t.Errorf("last truth = %v", last)
	}
	changes := 0
	for i := 1; i < len(readings); i++ {
		if readings[i].Truth != readings[i-1].Truth {
			changes++
		}
	}
	if changes != 1 {
		t.Errorf("truth changed %d times, want 1", changes)
	}
	// Timestamps strictly increase across segment boundaries.
	for i := 1; i < len(readings); i++ {
		if readings[i].T <= readings[i-1].T {
			t.Fatalf("timestamps not increasing at %d: %v then %v", i, readings[i-1].T, readings[i].T)
		}
	}
}

func TestScenarioTransitionIsAmbiguous(t *testing.T) {
	// Within the transition window around a writing→playing switch the
	// signal should carry intermediate energy: more than pure writing's
	// immediate neighborhood would suggest a sharp jump.
	s := &Scenario{
		Segments: []Segment{
			{Context: ContextWriting, Duration: 4},
			{Context: ContextPlaying, Duration: 4},
		},
		Transition: 1.0,
	}
	rng := rand.New(rand.NewSource(13))
	readings, err := s.Run(rng)
	if err != nil {
		t.Fatal(err)
	}
	window := func(lo, hi float64) []float64 {
		var xs []float64
		for _, r := range readings {
			if r.T >= lo && r.T < hi {
				xs = append(xs, r.Accel.X)
			}
		}
		return xs
	}
	pureWrite := stddev(window(1, 2.5))
	blendZone := stddev(window(3.2, 4.2))
	purePlay := stddev(window(5.5, 7))
	if !(pureWrite < blendZone) {
		t.Errorf("blend zone stddev %v not above writing %v", blendZone, pureWrite)
	}
	if !(blendZone < purePlay*1.2) {
		t.Errorf("blend zone stddev %v wildly above playing %v", blendZone, purePlay)
	}
}

func TestScenarioValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	cases := []*Scenario{
		{},
		{Segments: []Segment{{Context: ContextWriting, Duration: -1}}},
		{Segments: []Segment{{Context: ContextUnknown, Duration: 1}}},
		{Segments: []Segment{{Context: ContextWriting, Duration: 1}}, Transition: -1},
	}
	for i, s := range cases {
		if _, err := s.Run(rng); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestOfficeSessionRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	readings, err := OfficeSession(DefaultStyle()).Run(rng)
	if err != nil {
		t.Fatal(err)
	}
	// 26 seconds at 100 Hz.
	if len(readings) != 2600 {
		t.Errorf("got %d readings, want 2600", len(readings))
	}
	seen := map[Context]bool{}
	for _, r := range readings {
		seen[r.Truth] = true
	}
	for _, c := range AllContexts() {
		if !seen[c] {
			t.Errorf("context %v never appears", c)
		}
	}
}

func TestModelDeterminismProperty(t *testing.T) {
	// Identical seeds yield identical recordings.
	f := func(seed int64) bool {
		s := OfficeSession(DefaultStyle())
		a, err := s.Run(rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		b, err := s.Run(rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestReadingsWithinRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var acc Accelerometer
		ctx := AllContexts()[int(uint64(seed)%3)]
		readings, err := acc.Record(NewModel(ctx, DefaultStyle()), ctx, 1.0, rng)
		if err != nil {
			return false
		}
		for _, r := range readings {
			for _, v := range []float64{r.Accel.X, r.Accel.Y, r.Accel.Z} {
				if math.IsNaN(v) || v > 2+1e-9 || v < -2-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
