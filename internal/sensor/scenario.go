package sensor

import (
	"fmt"
	"math/rand"
)

// Segment is one scripted phase of a scenario: the pen is in the given
// context for Duration seconds.
type Segment struct {
	Context  Context
	Duration float64
}

// Scenario scripts a recording session: a sequence of context segments
// joined by gradual transitions, recorded by one accelerometer for one
// user style.
type Scenario struct {
	// Segments in playback order; at least one is required.
	Segments []Segment
	// Style is the user's movement style; the zero value is normalized to
	// the nominal user.
	Style Style
	// Transition is the blend time in seconds between consecutive
	// segments during which the old and new motion overlap. These windows
	// are exactly where the paper reports low classification quality.
	// Default 0.6.
	Transition float64
	// Sensor is the accelerometer configuration (zero value = defaults).
	Sensor Accelerometer
}

// validate applies defaults and checks the script.
func (s *Scenario) validate() error {
	if len(s.Segments) == 0 {
		return fmt.Errorf("%w: scenario without segments", ErrBadConfig)
	}
	for i, seg := range s.Segments {
		if seg.Duration <= 0 {
			return fmt.Errorf("%w: segment %d duration %v", ErrBadConfig, i, seg.Duration)
		}
		if NewModel(seg.Context, s.Style) == nil {
			return fmt.Errorf("%w: segment %d context %v", ErrNoModel, i, seg.Context)
		}
	}
	if s.Transition < 0 {
		return fmt.Errorf("%w: transition %v", ErrBadConfig, s.Transition)
	}
	return nil
}

// Run records the scripted session. Within a transition the outgoing and
// incoming motions are cross-faded; ground truth switches at the blend
// midpoint, so windows covering a transition genuinely mix both motions —
// the ambiguity the quality measure must detect.
func (s *Scenario) Run(rng *rand.Rand) ([]Reading, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	transition := s.Transition
	if transition == 0 {
		transition = 0.6
	}
	acc := s.Sensor.withDefaults()
	if err := acc.validate(); err != nil {
		return nil, err
	}

	var out []Reading
	offset := 0.0
	for i, seg := range s.Segments {
		model := NewModel(seg.Context, s.Style)
		var blend blendSpec
		if i+1 < len(s.Segments) {
			// Blend into the next segment over the final `transition`
			// seconds of this one.
			bl := transition
			if bl > seg.Duration/2 {
				bl = seg.Duration / 2
			}
			blend = blendSpec{
				active: true,
				start:  seg.Duration - bl,
				len:    bl,
				next:   NewModel(s.Segments[i+1].Context, s.Style),
				nextC:  s.Segments[i+1].Context,
			}
		}
		readings, err := acc.Record(&blendModel{
			base:  model,
			blend: blend,
		}, seg.Context, seg.Duration, rng)
		if err != nil {
			return nil, fmt.Errorf("sensor: segment %d: %w", i, err)
		}
		// Re-stamp times and flip ground truth past the blend midpoint.
		for k := range readings {
			if blend.active && readings[k].T > blend.start+blend.len/2 {
				readings[k].Truth = blend.nextC
			}
			readings[k].T += offset
		}
		out = append(out, readings...)
		offset += seg.Duration
	}
	return out, nil
}

// blendSpec describes the cross-fade at the end of a segment.
type blendSpec struct {
	active bool
	start  float64 // segment-local time the fade begins
	len    float64
	next   MotionModel
	nextC  Context
}

// blendModel wraps a segment's model and cross-fades into the next one.
type blendModel struct {
	base  MotionModel
	blend blendSpec
}

// Accelerate mixes base and next motion linearly across the fade window.
func (b *blendModel) Accelerate(t float64, rng *rand.Rand) Accel {
	a := b.base.Accelerate(t, rng)
	if !b.blend.active || t < b.blend.start || b.blend.len <= 0 {
		return a
	}
	w := (t - b.blend.start) / b.blend.len
	if w > 1 {
		w = 1
	}
	n := b.blend.next.Accelerate(t, rng)
	return Accel{
		X: (1-w)*a.X + w*n.X,
		Y: (1-w)*a.Y + w*n.Y,
		Z: (1-w)*a.Z + w*n.Z,
	}
}

// OfficeSession returns the canonical AwareOffice scenario from the
// paper's motivation: writing on the board, pausing to think while
// playing with the pen, continuing to write, then putting the pen down.
func OfficeSession(style Style) *Scenario {
	return &Scenario{
		Segments: []Segment{
			{Context: ContextWriting, Duration: 8},
			{Context: ContextPlaying, Duration: 4},
			{Context: ContextWriting, Duration: 8},
			{Context: ContextLying, Duration: 6},
		},
		Style: style,
	}
}
