package sensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Sensing errors.
var (
	// ErrBadConfig reports an invalid accelerometer configuration.
	ErrBadConfig = errors.New("sensor: invalid configuration")
	// ErrNoModel reports recording with a nil motion model (e.g. an
	// unknown context).
	ErrNoModel = errors.New("sensor: no motion model")
)

// Accelerometer models the ADXL-style 3-axis sensor on the Particle
// Computer node: additive white noise, slow offset drift, saturation at
// the measurement range, and ADC quantization.
type Accelerometer struct {
	// SampleRate in Hz. Default 100 (Particle node sampling the paper's
	// era hardware comfortably sustains).
	SampleRate float64
	// NoiseSigma is the white-noise standard deviation in g. Default 0.01.
	NoiseSigma float64
	// DriftRate is the per-second standard deviation of the random-walk
	// offset drift in g. Default 0.001.
	DriftRate float64
	// RangeG saturates measurements at ±RangeG. Default 2 (ADXL202-like).
	RangeG float64
	// Bits is the ADC resolution; readings quantize to 2^Bits steps over
	// the full range. Default 10. Negative disables quantization.
	Bits int
}

// withDefaults fills zero fields with hardware-plausible defaults.
func (a Accelerometer) withDefaults() Accelerometer {
	if a.SampleRate == 0 {
		a.SampleRate = 100
	}
	if a.NoiseSigma == 0 {
		a.NoiseSigma = 0.01
	}
	if a.DriftRate == 0 {
		a.DriftRate = 0.001
	}
	if a.RangeG == 0 {
		a.RangeG = 2
	}
	if a.Bits == 0 {
		a.Bits = 10
	}
	return a
}

func (a Accelerometer) validate() error {
	switch {
	case a.SampleRate <= 0:
		return fmt.Errorf("%w: sample rate %v", ErrBadConfig, a.SampleRate)
	case a.NoiseSigma < 0:
		return fmt.Errorf("%w: noise sigma %v", ErrBadConfig, a.NoiseSigma)
	case a.DriftRate < 0:
		return fmt.Errorf("%w: drift rate %v", ErrBadConfig, a.DriftRate)
	case a.RangeG <= 0:
		return fmt.Errorf("%w: range %v g", ErrBadConfig, a.RangeG)
	default:
		return nil
	}
}

// Reading is one time-stamped, labelled accelerometer sample.
type Reading struct {
	// T is the sample time in seconds from recording start.
	T float64
	// Accel is the measured (noisy, quantized) acceleration.
	Accel Accel
	// Truth is the ground-truth context active when the sample was taken.
	Truth Context
}

// Record samples the motion model for the given duration. The returned
// readings carry the context label as ground truth.
func (a Accelerometer) Record(model MotionModel, truth Context, duration float64, rng *rand.Rand) ([]Reading, error) {
	a = a.withDefaults()
	if err := a.validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("%w for context %v", ErrNoModel, truth)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("%w: duration %v", ErrBadConfig, duration)
	}
	n := int(duration * a.SampleRate)
	if n < 1 {
		n = 1
	}
	dt := 1 / a.SampleRate
	driftStep := a.DriftRate * math.Sqrt(dt)
	var driftX, driftY, driftZ float64
	out := make([]Reading, n)
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		true3 := model.Accelerate(t, rng)
		driftX += driftStep * rng.NormFloat64()
		driftY += driftStep * rng.NormFloat64()
		driftZ += driftStep * rng.NormFloat64()
		out[i] = Reading{
			T:     t,
			Truth: truth,
			Accel: Accel{
				X: a.digitize(true3.X + driftX + a.NoiseSigma*rng.NormFloat64()),
				Y: a.digitize(true3.Y + driftY + a.NoiseSigma*rng.NormFloat64()),
				Z: a.digitize(true3.Z + driftZ + a.NoiseSigma*rng.NormFloat64()),
			},
		}
	}
	return out, nil
}

// digitize applies saturation and ADC quantization.
func (a Accelerometer) digitize(v float64) float64 {
	if v > a.RangeG {
		v = a.RangeG
	}
	if v < -a.RangeG {
		v = -a.RangeG
	}
	if a.Bits < 0 {
		return v
	}
	steps := math.Pow(2, float64(a.Bits))
	lsb := 2 * a.RangeG / steps
	return math.Round(v/lsb) * lsb
}
