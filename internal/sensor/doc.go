// Package sensor simulates the AwarePen's sensing hardware: a 3-axis
// accelerometer (the paper's "adxl" cues) on a Particle Computer node
// attached to a whiteboard marker.
//
// The paper's evaluation data comes from physical recordings we cannot
// access, so this package provides the closest synthetic equivalent
// (DESIGN.md §2): parametric motion models for the three contexts the
// AwarePen distinguishes — lying still, writing, and playing around — with
// per-user style variation, sensor noise, drift and quantization, plus a
// scenario scripter that produces labelled streams with gradual context
// transitions.
//
// The transitions and user styles are deliberate: the paper reports that
// classification quality collapses exactly there ("a user writing …, then
// for some seconds playing with the pen when thinking and then continuing
// writing"), and the CQM needs genuinely ambiguous windows to learn from.
package sensor
