package sensor

import "fmt"

// Context is a context class of the AwarePen.
type Context int

// The AwarePen's three contexts (paper §3.1). Values start at 1 so the
// zero value is detectably "unknown"; the integer doubles as the class
// identifier c fed into the quality FIS input vector v_Q.
const (
	ContextUnknown Context = iota
	ContextLying
	ContextWriting
	ContextPlaying
)

// AllContexts lists the recognizable contexts in identifier order.
func AllContexts() []Context {
	return []Context{ContextLying, ContextWriting, ContextPlaying}
}

// String returns the context name used throughout logs and reports.
func (c Context) String() string {
	switch c {
	case ContextLying:
		return "lying"
	case ContextWriting:
		return "writing"
	case ContextPlaying:
		return "playing"
	case ContextUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Context(%d)", int(c))
	}
}

// ID returns the numeric class identifier used as the FIS input c.
func (c Context) ID() int { return int(c) }

// ContextByID returns the context with the given identifier, or
// ContextUnknown when the identifier names no context.
func ContextByID(id int) Context {
	c := Context(id)
	switch c {
	case ContextLying, ContextWriting, ContextPlaying:
		return c
	default:
		return ContextUnknown
	}
}
