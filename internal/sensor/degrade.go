package sensor

import "sort"

// Degradation primitives: cheap, deterministic statistics over a window of
// readings that expose the signatures of common sensor faults — a frozen
// axis, a clipped front end, a sampling gap, a drifting clock. The feature
// layer combines them into per-window degradation flags; they live here so
// anything holding raw readings can ask the same questions.

// ConstantAxes reports, per axis, whether the axis is bit-exact constant
// over the whole window. With a noisy quantized accelerometer a genuinely
// still sensor almost never produces a perfectly constant axis, so a
// constant axis is the signature of a stuck-at fault. Windows shorter than
// two readings report no constant axes.
func ConstantAxes(readings []Reading) [3]bool {
	if len(readings) < 2 {
		return [3]bool{}
	}
	out := [3]bool{true, true, true}
	first := readings[0].Accel
	for _, r := range readings[1:] {
		if r.Accel.X != first.X { //lint:ignore floatcmp a stuck axis repeats the exact same bits; tolerance would mask it
			out[0] = false
		}
		if r.Accel.Y != first.Y { //lint:ignore floatcmp a stuck axis repeats the exact same bits; tolerance would mask it
			out[1] = false
		}
		if r.Accel.Z != first.Z { //lint:ignore floatcmp a stuck axis repeats the exact same bits; tolerance would mask it
			out[2] = false
		}
	}
	return out
}

// SaturatedFraction returns the fraction of readings with at least one
// axis at or beyond ±limit — the flat-topped plateaus of an over-driven
// front end. An empty window (or a non-positive limit) yields 0.
func SaturatedFraction(readings []Reading, limit float64) float64 {
	if len(readings) == 0 || limit <= 0 {
		return 0
	}
	hit := 0
	for _, r := range readings {
		if abs(r.Accel.X) >= limit || abs(r.Accel.Y) >= limit || abs(r.Accel.Z) >= limit {
			hit++
		}
	}
	return float64(hit) / float64(len(readings))
}

// MaxStep returns the largest time step between consecutive readings; a
// step far above the median exposes a sampling gap. Windows shorter than
// two readings yield 0.
func MaxStep(readings []Reading) float64 {
	max := 0.0
	for i := 1; i < len(readings); i++ {
		if d := readings[i].T - readings[i-1].T; d > max {
			max = d
		}
	}
	return max
}

// MedianStep returns the median time step between consecutive readings —
// the window's effective sample period, robust against a single gap.
// Windows shorter than two readings yield 0.
func MedianStep(readings []Reading) float64 {
	if len(readings) < 2 {
		return 0
	}
	steps := make([]float64, len(readings)-1)
	for i := 1; i < len(readings); i++ {
		steps[i-1] = readings[i].T - readings[i-1].T
	}
	sort.Float64s(steps)
	mid := len(steps) / 2
	if len(steps)%2 == 1 {
		return steps[mid]
	}
	return (steps[mid-1] + steps[mid]) / 2
}

// abs avoids pulling math in for one call site.
func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
