package adapt

import "testing"

// FuzzAdaptJournalDecode pins the decoder's two contracts: DecodeRecord
// never panics whatever the input, and any line it accepts round-trips
// through EncodeRecord to an identical record. A decoder that panics on a
// torn tail would turn a crash-recovery path into a second crash.
func FuzzAdaptJournalDecode(f *testing.F) {
	for _, r := range fullCycleRecords() {
		line, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"record":{},"crc32c":""}`))
	f.Add([]byte(`{"record":{"seq":1},"crc32c":"00000000"}`))
	f.Add([]byte(`{"record":[1,2,3],"crc32c":"deadbeef"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte("{\"record\":{\"seq\":1,\"cycle\":1,\"kind\":\"trigger\",\"at\":1e308},\"crc32c\":\"ffffffff\"}"))

	f.Fuzz(func(t *testing.T, line []byte) {
		r, err := DecodeRecord(line)
		if err != nil {
			return
		}
		reencoded, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("decoded record refuses to re-encode: %v", err)
		}
		r2, err := DecodeRecord(reencoded)
		if err != nil {
			t.Fatalf("re-encoded record refuses to decode: %v", err)
		}
		// Accepted non-canonical spellings (whitespace, field order) must
		// still carry the same checksum-verified payload; record equality
		// across the round trip pins that.
		if r != r2 {
			t.Fatalf("round trip changed the record: %+v vs %+v", r, r2)
		}
	})
}
