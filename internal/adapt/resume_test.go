package adapt

import (
	"errors"
	"strings"
	"testing"

	"cqm/internal/core"
	"cqm/internal/quality"
)

var errTrainBoom = errors.New("boom")

// errorTrain always fails, driving the retrain-failed path.
func errorTrain(_, _ []core.Observation, _, _ string) (*core.Measure, retrainInfo, error) {
	return nil, retrainInfo{}, errTrainBoom
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil || !strings.Contains(err.Error(), "Dir and ModelPath") {
		t.Errorf("New with no paths: err = %v", err)
	}
	if _, err := New(Config{Dir: t.TempDir(), ModelPath: "m.json"}); err == nil || !strings.Contains(err.Error(), "Watcher and Handle") {
		t.Errorf("New with no watcher: err = %v", err)
	}
}

// TestResumeAfterFailedCycle restarts the supervisor over a journal whose
// last cycle failed: the fail streak and cool-down must be reconstructed
// from the terminal record, so the back-off survives a process restart.
func TestResumeAfterFailedCycle(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	h := newHarness(t, dir, cfg, biasMeasure(t, 0.9), errorTrain)

	for i := 0; i < 10; i++ {
		h.sup.Decide(mkDecision(float64(i), 0.9, 0.5))
	}
	h.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: 10})
	h.sup.Decide(mkDecision(10, 0.9, 0.5))
	if err := h.sup.Drain(); err != nil {
		t.Fatal(err)
	}
	before := h.sup.Status()
	if before.FailStreak != 1 || before.Retrains != 0 || before.Triggers != 1 {
		t.Fatalf("status after failed retrain = %+v", before)
	}
	h.sup.Close()

	resumed := newHarness(t, dir, cfg, biasMeasure(t, 0.9), errorTrain)
	defer resumed.sup.Close()
	after := resumed.sup.Status()
	if after.FailStreak != before.FailStreak {
		t.Errorf("fail streak %d after resume, want %d", after.FailStreak, before.FailStreak)
	}
	if after.CooldownUntil != before.CooldownUntil {
		t.Errorf("cooldown until %v after resume, want %v", after.CooldownUntil, before.CooldownUntil)
	}
	// A trigger inside the restored cool-down stays ignored.
	if resumed.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: after.CooldownUntil - 1}) {
		t.Error("trigger inside restored cool-down was staged")
	}
	if !resumed.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: after.CooldownUntil + 1}) {
		t.Error("trigger past restored cool-down was ignored")
	}
}
