package adapt

import (
	"fmt"
	"path/filepath"
	"strings"

	"cqm/internal/obs"
)

// DemoConfig parameterizes the self-healing demo sweep.
type DemoConfig struct {
	// Dir is the working directory; each run gets a subdirectory.
	Dir string
	// Seed drives the whole sweep.
	Seed int64
	// Workers parallelizes training.
	Workers int
	// Metrics, when non-nil, instruments every run.
	Metrics *obs.Registry
}

// RunDemo runs the full self-healing demo: every scenario mode once, each
// checked against its mode-specific acceptance criteria, plus a replay of
// the heal scenario at a different worker count that must reproduce the
// journal and model bytes exactly. It returns a rendered report; any
// lifecycle or determinism violation returns an error (the CI smoke's
// failure signal).
func RunDemo(cfg DemoConfig) (string, error) {
	model, threshold, err := quickModel(cfg.Seed, cfg.Workers)
	if err != nil {
		return "", fmt.Errorf("adapt: training demo incumbent: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Self-healing lifecycle demo (seed %d)\n", cfg.Seed)
	fmt.Fprintf(&b, "%-12s %-42s %8s %8s %8s\n", "mode", "journal", "healthy", "drift", "after")
	results := make(map[string]*ScenarioResult, len(ScenarioModes))
	for _, mode := range ScenarioModes {
		res, err := RunScenario(ScenarioConfig{
			Dir:       filepath.Join(cfg.Dir, mode),
			Mode:      mode,
			Seed:      cfg.Seed,
			Workers:   cfg.Workers,
			Model:     model,
			Threshold: threshold,
			Metrics:   cfg.Metrics,
		})
		if err != nil {
			return b.String(), fmt.Errorf("adapt: %s scenario: %w", mode, err)
		}
		if err := CheckScenario(res); err != nil {
			return b.String(), err
		}
		results[mode] = res
		kinds := make([]string, len(res.Records))
		for i, r := range res.Records {
			kinds[i] = r.Kind
		}
		fmt.Fprintf(&b, "%-12s %-42s %8.3f %8.3f %8.3f\n",
			mode, strings.Join(kinds, ">"), res.AcceptHealthy, res.AcceptDrift, res.AcceptAfter)
	}

	// Replay determinism: the same heal scenario at a different worker
	// count must produce byte-identical journal and model artifacts.
	replayWorkers := 4
	if cfg.Workers == 4 {
		replayWorkers = 1
	}
	replay, err := RunScenario(ScenarioConfig{
		Dir:       filepath.Join(cfg.Dir, "replay"),
		Mode:      ModeHeal,
		Seed:      cfg.Seed,
		Workers:   replayWorkers,
		Model:     model,
		Threshold: threshold,
		Metrics:   cfg.Metrics,
	})
	if err != nil {
		return b.String(), fmt.Errorf("adapt: replay scenario: %w", err)
	}
	base := results[ModeHeal]
	if replay.JournalCRC != base.JournalCRC || replay.ModelCRC != base.ModelCRC {
		return b.String(), fmt.Errorf(
			"adapt: replay at %d workers diverged: journal %s vs %s, model %s vs %s",
			replayWorkers, replay.JournalCRC, base.JournalCRC, replay.ModelCRC, base.ModelCRC)
	}
	fmt.Fprintf(&b, "replay at %d workers: journal %s, model %s (bit-identical)\n",
		replayWorkers, replay.JournalCRC, replay.ModelCRC)
	return b.String(), nil
}
