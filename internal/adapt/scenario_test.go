package adapt

import (
	"encoding/json"
	"sync"
	"testing"

	"cqm/internal/core"
)

// trainedOnce caches the quick incumbent: every scenario test shares the
// same seed-42 model, and training it once keeps the suite fast.
var trainedOnce struct {
	sync.Once
	model     *core.Measure
	threshold float64
	err       error
}

func scenarioConfig(t *testing.T, mode string, seed int64, workers int) ScenarioConfig {
	t.Helper()
	trainedOnce.Do(func() {
		trainedOnce.model, trainedOnce.threshold, trainedOnce.err = quickModel(42, 4)
	})
	if trainedOnce.err != nil {
		t.Fatalf("training incumbent: %v", trainedOnce.err)
	}
	return ScenarioConfig{
		Dir:       t.TempDir(),
		Mode:      mode,
		Seed:      seed,
		Workers:   workers,
		Model:     trainedOnce.model,
		Threshold: trainedOnce.threshold,
	}
}

func kindsOf(records []Record) []string {
	out := make([]string, len(records))
	for i, r := range records {
		out[i] = r.Kind
	}
	return out
}

func TestScenarioHeal(t *testing.T) {
	res, err := RunScenario(scenarioConfig(t, ModeHeal, 42, 4))
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	t.Logf("kinds=%v healthy=%.3f drift=%.3f after=%.3f gen=%d",
		kindsOf(res.Records), res.AcceptHealthy, res.AcceptDrift, res.AcceptAfter, res.Generation)
	if err := CheckScenario(res); err != nil {
		b, _ := json.MarshalIndent(res.Records, "", "  ")
		t.Fatalf("CheckScenario: %v\nrecords: %s", err, b)
	}
}

func TestScenarioQuarantine(t *testing.T) {
	res, err := RunScenario(scenarioConfig(t, ModeQuarantine, 42, 4))
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	t.Logf("kinds=%v healthy=%.3f drift=%.3f after=%.3f",
		kindsOf(res.Records), res.AcceptHealthy, res.AcceptDrift, res.AcceptAfter)
	if err := CheckScenario(res); err != nil {
		b, _ := json.MarshalIndent(res.Records, "", "  ")
		t.Fatalf("CheckScenario: %v\nrecords: %s", err, b)
	}
}

func TestScenarioRollback(t *testing.T) {
	res, err := RunScenario(scenarioConfig(t, ModeRollback, 42, 4))
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	t.Logf("kinds=%v healthy=%.3f drift=%.3f after=%.3f",
		kindsOf(res.Records), res.AcceptHealthy, res.AcceptDrift, res.AcceptAfter)
	if err := CheckScenario(res); err != nil {
		b, _ := json.MarshalIndent(res.Records, "", "  ")
		t.Fatalf("CheckScenario: %v\nrecords: %s", err, b)
	}
}

// TestScenarioReplayBitIdentical runs the heal scenario twice, at one and
// at four workers, and demands byte-identical journals and model bytes:
// the adaptation loop is a pure function of the seed.
func TestScenarioReplayBitIdentical(t *testing.T) {
	base, err := RunScenario(scenarioConfig(t, ModeHeal, 42, 1))
	if err != nil {
		t.Fatalf("RunScenario workers=1: %v", err)
	}
	for _, workers := range []int{1, 4} {
		res, err := RunScenario(scenarioConfig(t, ModeHeal, 42, workers))
		if err != nil {
			t.Fatalf("RunScenario workers=%d: %v", workers, err)
		}
		if res.JournalCRC != base.JournalCRC {
			t.Errorf("workers=%d journal CRC %s, want %s", workers, res.JournalCRC, base.JournalCRC)
		}
		if res.ModelCRC != base.ModelCRC {
			t.Errorf("workers=%d model CRC %s, want %s", workers, res.ModelCRC, base.ModelCRC)
		}
		if res.LastGoodCRC != base.LastGoodCRC {
			t.Errorf("workers=%d lastgood CRC %s, want %s", workers, res.LastGoodCRC, base.LastGoodCRC)
		}
	}
}
