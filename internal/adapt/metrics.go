package adapt

import "cqm/internal/obs"

// Metric names of the adaptation supervisor, all under cqm_adapt_*.
const (
	// MetricTriggers counts drift triggers accepted into a cycle.
	MetricTriggers = "cqm_adapt_triggers_total"
	// MetricTriggersIgnored counts triggers dropped by cool-down or because
	// a cycle was already in flight.
	MetricTriggersIgnored = "cqm_adapt_triggers_ignored_total"
	// MetricRetrainsStarted counts shadow retrains begun.
	MetricRetrainsStarted = "cqm_adapt_retrains_started_total"
	// MetricRetrainsSucceeded counts retrains that produced a candidate.
	MetricRetrainsSucceeded = "cqm_adapt_retrains_succeeded_total"
	// MetricRetrainsFailed counts retrains that errored out.
	MetricRetrainsFailed = "cqm_adapt_retrains_failed_total"
	// MetricQuarantined counts candidates rejected at the validation gate.
	MetricQuarantined = "cqm_adapt_quarantined_total"
	// MetricPromotions counts hot promotions of a candidate into serving.
	MetricPromotions = "cqm_adapt_promotions_total"
	// MetricRollbacks counts automatic restorations of the last-good model.
	MetricRollbacks = "cqm_adapt_rollbacks_total"
	// MetricCanaryPasses counts canary windows the promoted model survived.
	MetricCanaryPasses = "cqm_adapt_canary_passes_total"
	// MetricState is the supervisor state as an integer (see State values).
	MetricState = "cqm_adapt_state"
	// MetricCooldownUntil is the virtual time before which triggers are
	// ignored.
	MetricCooldownUntil = "cqm_adapt_cooldown_until"
	// MetricCycle is the current (or last) adaptation cycle number.
	MetricCycle = "cqm_adapt_cycle"
	// MetricWindowSize is the number of pseudo-labelled observations
	// currently buffered for the next retrain window.
	MetricWindowSize = "cqm_adapt_window_size"
	// MetricErrors counts internal errors on paths with no caller to
	// return them to (journal append or last-good persistence failing
	// inside the canary close) — journal/disk divergence signals.
	MetricErrors = "cqm_adapt_errors_total"
)

// adaptMetrics are the pre-resolved supervisor metrics; the zero value (no
// registry) makes every update a nil-safe no-op.
type adaptMetrics struct {
	triggers        *obs.Counter
	triggersIgnored *obs.Counter
	retrainsStarted *obs.Counter
	retrainsOK      *obs.Counter
	retrainsFailed  *obs.Counter
	quarantined     *obs.Counter
	promotions      *obs.Counter
	rollbacks       *obs.Counter
	canaryPasses    *obs.Counter
	errors          *obs.Counter
	state           *obs.Gauge
	cooldownUntil   *obs.Gauge
	cycle           *obs.Gauge
	windowSize      *obs.Gauge
}

// newAdaptMetrics resolves the supervisor metrics once.
func newAdaptMetrics(reg *obs.Registry) adaptMetrics {
	if reg == nil {
		return adaptMetrics{}
	}
	reg.Help(MetricTriggers, "Drift triggers accepted into an adaptation cycle.")
	reg.Help(MetricTriggersIgnored, "Drift triggers dropped by cool-down or an in-flight cycle.")
	reg.Help(MetricRetrainsStarted, "Shadow retrains begun.")
	reg.Help(MetricRetrainsSucceeded, "Shadow retrains that produced a candidate model.")
	reg.Help(MetricRetrainsFailed, "Shadow retrains that errored out.")
	reg.Help(MetricQuarantined, "Candidates rejected at the validation gate.")
	reg.Help(MetricPromotions, "Candidates hot-promoted into serving.")
	reg.Help(MetricRollbacks, "Automatic rollbacks to the last-good model.")
	reg.Help(MetricCanaryPasses, "Canary windows the promoted model survived.")
	reg.Help(MetricState, "Supervisor state (0 idle, 1 retraining, 2 gated, 3 promoting, 4 canary).")
	reg.Help(MetricCooldownUntil, "Virtual time before which new triggers are ignored.")
	reg.Help(MetricCycle, "Current or last adaptation cycle number.")
	reg.Help(MetricWindowSize, "Pseudo-labelled observations buffered for the next retrain window.")
	reg.Help(MetricErrors, "Internal adaptation errors with no caller to surface them (journal/disk divergence).")
	return adaptMetrics{
		triggers:        reg.Counter(MetricTriggers),
		triggersIgnored: reg.Counter(MetricTriggersIgnored),
		retrainsStarted: reg.Counter(MetricRetrainsStarted),
		retrainsOK:      reg.Counter(MetricRetrainsSucceeded),
		retrainsFailed:  reg.Counter(MetricRetrainsFailed),
		quarantined:     reg.Counter(MetricQuarantined),
		promotions:      reg.Counter(MetricPromotions),
		rollbacks:       reg.Counter(MetricRollbacks),
		canaryPasses:    reg.Counter(MetricCanaryPasses),
		errors:          reg.Counter(MetricErrors),
		state:           reg.Gauge(MetricState),
		cooldownUntil:   reg.Gauge(MetricCooldownUntil),
		cycle:           reg.Gauge(MetricCycle),
		windowSize:      reg.Gauge(MetricWindowSize),
	}
}
