package adapt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fullCycleRecords is a valid five-record heal cycle.
func fullCycleRecords() []Record {
	return []Record{
		{Seq: 1, Cycle: 1, Kind: KindTrigger, At: 10, Source: "pen", TriggerKind: "drift-ph", Window: WindowArtifactName, WindowHash: "abc", WindowLen: 8, BaselineAccept: 0.9},
		{Seq: 2, Cycle: 1, Kind: KindRetrainDone, At: 10, Candidate: CandidateArtifactName, Epochs: 3, StopReason: "stub"},
		{Seq: 3, Cycle: 1, Kind: KindGatePass, At: 10, CandidateRMSE: 0.2, IncumbentRMSE: 0.3, Agreement: 1},
		{Seq: 4, Cycle: 1, Kind: KindPromoted, At: 10, BaselineAccept: 0.9},
		{Seq: 5, Cycle: 1, Kind: KindCanaryPass, At: 14, BaselineAccept: 0.9, CanaryAccept: 1, CooldownUntil: 24},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fullCycleRecords() {
		r.Seq = 0 // Append assigns
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopening: %v", err)
	}
	defer re.Close()
	got := re.Records()
	want := fullCycleRecords()
	if len(got) != len(want) {
		t.Fatalf("%d records after reopen, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := fullCycleRecords()
	for _, r := range recs[:2] {
		r.Seq = 0
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, JournalName)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ name, tail string }{
		{"partial-line-no-newline", `{"record":{"seq":3,"cy`},
		{"garbage-with-newline", "not json at all\n"},
		{"bad-crc-final", `{"record":{"seq":3,"cycle":1,"kind":"gate-pass","at":10},"crc32c":"00000000"}` + "\n"},
	} {
		tail := tc.tail
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte(nil), good...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			re, err := OpenJournal(dir)
			if err != nil {
				t.Fatalf("torn tail not truncated: %v", err)
			}
			defer re.Close()
			if n := len(re.Records()); n != 2 {
				t.Fatalf("%d records, want 2", n)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(good) {
				t.Error("journal bytes not restored to the committed prefix")
			}
		})
	}
}

func TestJournalMidCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fullCycleRecords()[:3] {
		r.Seq = 0
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, JournalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first line's payload.
	corrupted := strings.Replace(string(data), `"kind":"trigger"`, `"kind":"trigggr"`, 1)
	if corrupted == string(data) {
		t.Fatal("corruption did not apply")
	}
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("mid-journal corruption: err = %v, want ErrJournalCorrupt", err)
	}
}

func TestDecodeRecordCRCMismatch(t *testing.T) {
	line, err := EncodeRecord(Record{Seq: 1, Cycle: 1, Kind: KindTrigger, At: 1})
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(line), `"at":1`, `"at":2`, 1)
	if tampered == string(line) {
		t.Fatal("tamper did not apply")
	}
	if _, err := DecodeRecord([]byte(tampered)); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("tampered record: err = %v, want ErrJournalCorrupt", err)
	}
	if _, err := DecodeRecord(line); err != nil {
		t.Fatalf("untampered record: %v", err)
	}
}

func TestVerifyRecordsInvariants(t *testing.T) {
	base := fullCycleRecords()
	if err := VerifyRecords(base); err != nil {
		t.Fatalf("valid journal rejected: %v", err)
	}
	if err := VerifyRecords(nil); err != nil {
		t.Fatalf("empty journal rejected: %v", err)
	}
	// A journal ending mid-cycle (open cycle as the final records) is
	// legal — that is exactly the crash-resume state.
	if err := VerifyRecords(base[:3]); err != nil {
		t.Fatalf("open-cycle journal rejected: %v", err)
	}

	mutate := func(f func(r []Record) []Record) []Record {
		c := append([]Record(nil), fullCycleRecords()...)
		return f(c)
	}
	bad := map[string][]Record{
		"seq gap": mutate(func(r []Record) []Record {
			r[2].Seq = 7
			return r
		}),
		"opens with non-trigger": mutate(func(r []Record) []Record {
			return r[1:]
		}),
		"illegal transition": mutate(func(r []Record) []Record {
			r[2].Kind = KindPromoted // retrain-done → promoted skips the gate
			return r
		}),
		"cycle number jump": mutate(func(r []Record) []Record {
			r[0].Cycle = 3
			for i := range r {
				r[i].Cycle = 3
			}
			return r
		}),
		"cycle switch mid-open": mutate(func(r []Record) []Record {
			r[3].Cycle = 2
			return r
		}),
		"time goes backwards": mutate(func(r []Record) []Record {
			r[4].At = 5 // before the trigger at 10
			return r
		}),
		"record after terminal without trigger": mutate(func(r []Record) []Record {
			return append(r, Record{Seq: 6, Cycle: 2, Kind: KindRetrainDone, At: 20})
		}),
	}
	for name, recs := range bad {
		if err := VerifyRecords(recs); !errors.Is(err, ErrJournalInvariant) {
			t.Errorf("%s: err = %v, want ErrJournalInvariant", name, err)
		}
	}
}

func TestVerifyJournalMissingArtifacts(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := fullCycleRecords()[0]
	r.Seq = 0
	if err := j.Append(r); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := VerifyJournal(dir); !errors.Is(err, ErrJournalInvariant) {
		t.Fatalf("missing window artifact: err = %v, want ErrJournalInvariant", err)
	}
	// Write-ahead restored: the artifact exists, verification passes.
	if err := os.MkdirAll(filepath.Join(dir, CycleDirName(1)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, CycleDirName(1), WindowArtifactName), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyJournal(dir); err != nil {
		t.Fatalf("VerifyJournal with artifact present: %v", err)
	}
}
