package adapt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/fuzzy"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// biasMeasure builds a minimal valid quality FIS over (cue, class): one
// wide rule whose consequent is the constant bias, so every score is bias.
func biasMeasure(t *testing.T, bias float64) *core.Measure {
	t.Helper()
	sys, err := fuzzy.NewTSK(2, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 0.5, Sigma: 10}, {Mu: 0, Sigma: 10}},
		Coeffs:     []float64{0, 0, bias},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return core.MeasureFromSystem(sys)
}

// harness wires a supervisor over a temp dir with a bias incumbent and a
// stubbed retrain, mirroring how cqmserve assembles the lifecycle.
type harness struct {
	dir       string
	modelPath string
	handle    *ckpt.Handle
	watcher   *ckpt.ModelWatcher
	sup       *Supervisor
}

// newHarness opens (or, called again on the same dir, resumes) the
// supervisor. The incumbent artifact is only written when the model file
// does not exist yet — a resume must serve whatever model the crashed
// process had promoted.
func newHarness(t *testing.T, dir string, cfg Config, incumbent *core.Measure,
	trainFn func(train, check []core.Observation, cycleDir, windowHash string) (*core.Measure, retrainInfo, error)) *harness {
	t.Helper()
	h := &harness{dir: dir, modelPath: filepath.Join(dir, "model.json")}
	if _, err := os.Stat(h.modelPath); err != nil {
		if err := ckpt.WriteArtifact(h.modelPath, ckpt.Manifest{Kind: ckpt.KindMeasure}, incumbent); err != nil {
			t.Fatal(err)
		}
	}
	h.handle = ckpt.NewHandle(nil)
	var err error
	h.watcher, err = ckpt.NewModelWatcher(ckpt.WatchConfig{Path: h.modelPath, DeferLastGood: true}, h.handle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.watcher.Poll(); err != nil {
		t.Fatal(err)
	}
	cfg.Dir = filepath.Join(dir, "state")
	cfg.ModelPath = h.modelPath
	cfg.Watcher = h.watcher
	cfg.Handle = h.handle
	h.sup, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trainFn != nil {
		h.sup.trainFn = trainFn
	}
	return h
}

// smallConfig is the base supervisor tuning of the unit tests.
func smallConfig() Config {
	return Config{
		Threshold:    0.5,
		WindowSize:   16,
		MinWindow:    8,
		CanaryWindow: 4,
		CooldownBase: 10,
		CooldownMax:  40,
	}
}

// stubTrain returns a fixed prebuilt candidate — deterministic bytes, no
// real training.
func stubTrain(candidate *core.Measure) func([]core.Observation, []core.Observation, string, string) (*core.Measure, retrainInfo, error) {
	return func(_, _ []core.Observation, _, _ string) (*core.Measure, retrainInfo, error) {
		return candidate, retrainInfo{epochs: 3, stopReason: "stub"}, nil
	}
}

// mkDecision is one synthetic accepted/rejected decision at virtual time
// at.
func mkDecision(at, q, threshold float64) Decision {
	return Decision{
		Source: "pen", At: at, Cues: []float64{0.5}, Class: sensor.Context(0),
		Q: q, HasQ: true, Accepted: q > threshold,
	}
}

func mustCRC(t *testing.T, path string) string {
	t.Helper()
	crc, err := fileCRC(path)
	if err != nil {
		t.Fatal(err)
	}
	return crc
}

// driveCycle feeds the fixed 20-decision schedule that produces exactly
// one full heal cycle (trigger at decision 10, canary closing at decision
// 14), starting at decision index start. When stopAfter >= 0 the drive
// "crashes" — returns the next index without running further transitions —
// as soon as the journal holds stopAfter records. Returns the index after
// the last fed decision and whether the schedule completed.
func driveCycle(t *testing.T, sup *Supervisor, start, stopAfter int) (int, bool) {
	t.Helper()
	crashed := func() bool {
		return stopAfter >= 0 && len(sup.Journal()) >= stopAfter
	}
	for i := start; i < 20; i++ {
		if i == 10 {
			sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: float64(i)})
		}
		sup.Decide(mkDecision(float64(i), 0.9, 0.5))
		if crashed() {
			return i + 1, false
		}
		for {
			worked, err := sup.Step()
			if err != nil {
				t.Fatalf("Step at decision %d: %v", i, err)
			}
			if !worked {
				break
			}
			if crashed() {
				return i + 1, false
			}
		}
	}
	return 20, true
}

// TestKillResumeEveryBoundary is the crash-safety property test: the full
// heal cycle is replayed with a simulated crash at every journal record
// boundary, and each resumed run must finish with byte-identical journal,
// model, and last-good artifacts to the uninterrupted run.
func TestKillResumeEveryBoundary(t *testing.T) {
	incumbent := biasMeasure(t, 0.7)
	candidate := biasMeasure(t, 0.8)

	// Uninterrupted reference run.
	refDir := t.TempDir()
	ref := newHarness(t, refDir, smallConfig(), incumbent, stubTrain(candidate))
	if _, done := driveCycle(t, ref.sup, 0, -1); !done {
		t.Fatal("reference run did not complete")
	}
	refRecords := ref.sup.Journal()
	if err := VerifyRecords(refRecords); err != nil {
		t.Fatalf("reference journal invalid: %v", err)
	}
	wantKinds := []string{KindTrigger, KindRetrainDone, KindGatePass, KindPromoted, KindCanaryPass}
	if len(refRecords) != len(wantKinds) {
		t.Fatalf("reference journal has %d records, want %d", len(refRecords), len(wantKinds))
	}
	for i, k := range wantKinds {
		if refRecords[i].Kind != k {
			t.Fatalf("reference record %d kind %q, want %q", i, refRecords[i].Kind, k)
		}
	}
	if err := ref.sup.Close(); err != nil {
		t.Fatal(err)
	}
	refJournal := mustCRC(t, filepath.Join(refDir, "state", JournalName))
	refModel := mustCRC(t, ref.modelPath)
	refLastGood := mustCRC(t, ref.watcher.LastGoodPath())

	for stopAfter := 1; stopAfter <= len(wantKinds)-1; stopAfter++ {
		dir := t.TempDir()
		// Run until the crash point. The dying supervisor is abandoned
		// without Close, like a killed process.
		crashing := newHarness(t, dir, smallConfig(), incumbent, stubTrain(candidate))
		next, done := driveCycle(t, crashing.sup, 0, stopAfter)
		if done {
			t.Fatalf("stopAfter=%d: run completed without crashing", stopAfter)
		}
		if got := len(crashing.sup.Journal()); got != stopAfter {
			t.Fatalf("stopAfter=%d: crashed with %d records", stopAfter, got)
		}

		// Resume: fresh process state over the same directory. Pending
		// transitions drain first (the uninterrupted run also finishes
		// the step loop before the next decision), then the remaining
		// schedule plays out.
		resumed := newHarness(t, dir, smallConfig(), incumbent, stubTrain(candidate))
		if err := resumed.sup.Drain(); err != nil {
			t.Fatalf("stopAfter=%d: resume drain: %v", stopAfter, err)
		}
		if _, done := driveCycle(t, resumed.sup, next, -1); !done {
			t.Fatalf("stopAfter=%d: resumed run did not complete", stopAfter)
		}
		if err := resumed.sup.Close(); err != nil {
			t.Fatal(err)
		}

		if got := mustCRC(t, filepath.Join(dir, "state", JournalName)); got != refJournal {
			t.Errorf("stopAfter=%d: journal CRC %s, want %s\nresumed records: %+v",
				stopAfter, got, refJournal, resumed.sup.Journal())
		}
		if got := mustCRC(t, resumed.modelPath); got != refModel {
			t.Errorf("stopAfter=%d: model CRC %s, want %s", stopAfter, got, refModel)
		}
		if got := mustCRC(t, resumed.watcher.LastGoodPath()); got != refLastGood {
			t.Errorf("stopAfter=%d: last-good CRC %s, want %s", stopAfter, got, refLastGood)
		}
		if _, err := VerifyJournal(filepath.Join(dir, "state")); err != nil {
			t.Errorf("stopAfter=%d: VerifyJournal: %v", stopAfter, err)
		}
	}
}

// TestFlapStormCooldown floods the supervisor with a trigger per decision
// while every retrain fails, and asserts the exponential cool-down bounds
// the cycle count and follows the doubling-capped schedule.
func TestFlapStormCooldown(t *testing.T) {
	incumbent := biasMeasure(t, 0.7)
	boom := errors.New("synthetic retrain crash")
	h := newHarness(t, t.TempDir(), smallConfig(), incumbent,
		func(_, _ []core.Observation, _, _ string) (*core.Measure, retrainInfo, error) {
			return nil, retrainInfo{}, boom
		})
	const storm = 500
	for i := 0; i < storm; i++ {
		at := float64(i)
		h.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: at})
		h.sup.Decide(mkDecision(at, 0.9, 0.5))
		if err := h.sup.Drain(); err != nil {
			t.Fatalf("Drain at %d: %v", i, err)
		}
	}
	records := h.sup.Journal()
	if err := VerifyRecords(records); err != nil {
		t.Fatalf("journal invalid after storm: %v", err)
	}

	var triggers []Record
	var failures []Record
	for _, r := range records {
		switch r.Kind {
		case KindTrigger:
			triggers = append(triggers, r)
		case KindRetrainFailed:
			failures = append(failures, r)
		default:
			t.Fatalf("unexpected record kind %q in storm journal", r.Kind)
		}
	}
	if len(triggers) != len(failures) {
		t.Fatalf("%d triggers but %d failures", len(triggers), len(failures))
	}
	// 500 virtual seconds of continuous triggering against the 10/20/40/40…
	// schedule admits at most ~14 cycles; anything near the storm size
	// means the cool-down is not holding.
	if len(triggers) == 0 || len(triggers) > 16 {
		t.Fatalf("storm opened %d cycles, want 1..16", len(triggers))
	}
	cfg := smallConfig()
	for i, f := range failures {
		cooldown := f.CooldownUntil - f.At
		want := cfg.CooldownBase
		for k := 1; k <= i && want < cfg.CooldownMax; k++ {
			want *= 2
		}
		if want > cfg.CooldownMax {
			want = cfg.CooldownMax
		}
		if cooldown != want {
			t.Errorf("failure %d: cooldown %.0f, want %.0f", i, cooldown, want)
		}
		if i+1 < len(triggers) && triggers[i+1].At < f.CooldownUntil {
			t.Errorf("cycle %d opened at %.0f inside cooldown (until %.0f)", i+1, triggers[i+1].At, f.CooldownUntil)
		}
	}
}

// TestHotPathNonBlockingDuringRetrain pins the locking contract behind
// "Trigger and Decide are the fast inputs": while the shadow retrain runs,
// the supervisor mutex is released, so Decide, Trigger, and Status return
// immediately and a concurrent Step is a no-op rather than a second
// retrain.
func TestHotPathNonBlockingDuringRetrain(t *testing.T) {
	incumbent := biasMeasure(t, 0.7)
	candidate := biasMeasure(t, 0.8)
	started := make(chan struct{})
	release := make(chan struct{})
	h := newHarness(t, t.TempDir(), smallConfig(), incumbent,
		func(_, _ []core.Observation, _, _ string) (*core.Measure, retrainInfo, error) {
			close(started)
			<-release
			return candidate, retrainInfo{epochs: 3, stopReason: "stub"}, nil
		})
	for i := 0; i < 10; i++ {
		h.sup.Decide(mkDecision(float64(i), 0.9, 0.5))
	}
	h.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: 10})
	if _, err := h.sup.Step(); err != nil { // opens the cycle
		t.Fatal(err)
	}
	stepDone := make(chan error, 1)
	go func() {
		_, err := h.sup.Step() // runs the blocked retrain
		stepDone <- err
	}()
	<-started

	hotDone := make(chan struct{})
	go func() {
		defer close(hotDone)
		h.sup.Decide(mkDecision(11, 0.9, 0.5))
		h.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: 11})
		_ = h.sup.Status()
		if st := h.sup.State(); st != StateRetraining {
			t.Errorf("state %v during retrain, want retraining", st)
		}
		worked, err := h.sup.Step()
		if err != nil {
			t.Errorf("concurrent Step during retrain: %v", err)
		}
		if worked {
			t.Error("concurrent Step reported a transition while a retrain was in flight")
		}
	}()
	select {
	case <-hotDone:
	case <-time.After(10 * time.Second):
		t.Fatal("hot-path calls blocked behind the in-flight retrain")
	}
	close(release)
	if err := <-stepDone; err != nil {
		t.Fatal(err)
	}
	if err := h.sup.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := h.sup.State(); st != StateCanary {
		t.Fatalf("state %v after drained cycle, want canary", st)
	}
	wantKinds := []string{KindTrigger, KindRetrainDone, KindGatePass, KindPromoted}
	recs := h.sup.Journal()
	if len(recs) != len(wantKinds) {
		t.Fatalf("journal has %d records, want %d: %+v", len(recs), len(wantKinds), recs)
	}
	for i, k := range wantKinds {
		if recs[i].Kind != k {
			t.Errorf("record %d kind %q, want %q", i, recs[i].Kind, k)
		}
	}
}

// TestTriggerIgnoredStates verifies Trigger's admission rules: staged only
// when idle, nothing already staged, and outside cool-down.
func TestTriggerIgnoredStates(t *testing.T) {
	incumbent := biasMeasure(t, 0.7)
	h := newHarness(t, t.TempDir(), smallConfig(), incumbent, stubTrain(biasMeasure(t, 0.8)))
	tr := quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: 1}
	if !h.sup.Trigger(tr) {
		t.Fatal("first trigger not staged")
	}
	if h.sup.Trigger(tr) {
		t.Fatal("second trigger staged while one pending")
	}
	// Fill the window and open the cycle; mid-cycle triggers are ignored.
	for i := 0; i < 10; i++ {
		h.sup.Decide(mkDecision(float64(i+2), 0.9, 0.5))
	}
	if _, err := h.sup.Step(); err != nil {
		t.Fatal(err)
	}
	if h.sup.State() != StateRetraining {
		t.Fatalf("state %v after cycle open", h.sup.State())
	}
	if h.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: 12}) {
		t.Fatal("trigger staged while cycle open")
	}
}

// TestCanaryPassSurfacesLastGoodError forces the canary-pass MarkGood to
// fail (the watched artifact vanishes mid-canary) and asserts the cycle
// still closes as a pass while the failure is surfaced through
// Status.LastError instead of vanishing.
func TestCanaryPassSurfacesLastGoodError(t *testing.T) {
	incumbent := biasMeasure(t, 0.7)
	h := newHarness(t, t.TempDir(), smallConfig(), incumbent, stubTrain(biasMeasure(t, 0.8)))
	for i := 0; i < 10; i++ {
		h.sup.Decide(mkDecision(float64(i), 0.9, 0.5))
	}
	h.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: 10})
	if err := h.sup.Drain(); err != nil {
		t.Fatal(err)
	}
	if h.sup.State() != StateCanary {
		t.Fatalf("state %v after drain, want canary", h.sup.State())
	}
	if err := os.Remove(h.modelPath); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.sup.Decide(mkDecision(float64(11+i), 0.9, 0.5))
	}
	recs := h.sup.Journal()
	if len(recs) == 0 || recs[len(recs)-1].Kind != KindCanaryPass {
		t.Fatalf("journal %+v, want terminal canary-pass", recs)
	}
	st := h.sup.Status()
	if st.LastError == "" {
		t.Fatal("Status.LastError empty after failed last-good adoption")
	}
	if h.sup.State() != StateIdle {
		t.Fatalf("state %v after canary pass, want idle", h.sup.State())
	}
}

// TestLabelOverride verifies the Label channel poisons the stored window
// without touching the accept baseline.
func TestLabelOverride(t *testing.T) {
	incumbent := biasMeasure(t, 0.7)
	h := newHarness(t, t.TempDir(), smallConfig(), incumbent, stubTrain(biasMeasure(t, 0.8)))
	flip := false
	for i := 0; i < 8; i++ {
		d := mkDecision(float64(i), 0.9, 0.5) // accepted
		d.Label = &flip                       // but labelled false
		h.sup.Decide(d)
	}
	h.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: 8})
	if _, err := h.sup.Step(); err != nil {
		t.Fatal(err)
	}
	recs := h.sup.Journal()
	if len(recs) != 1 || recs[0].Kind != KindTrigger {
		t.Fatalf("journal %+v, want one trigger", recs)
	}
	if recs[0].BaselineAccept != 1 {
		t.Errorf("baseline %.2f, want 1 (Accepted stayed honest)", recs[0].BaselineAccept)
	}
	payload, err := h.sup.loadWindowForTest()
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range payload.Observations {
		if o.Correct {
			t.Errorf("window obs %d label true, want flipped false", i)
		}
	}
}

// loadWindowForTest exposes the open cycle's persisted window.
func (s *Supervisor) loadWindowForTest() (windowPayload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadWindow()
}
