package adapt

import (
	"math"

	"cqm/internal/core"
)

// Gate decision constants for the accept/discard agreement comparison.
const (
	// decideAccept: the model scored the observation above the threshold.
	decideAccept int8 = 1
	// decideDiscard: scored at or below the threshold.
	decideDiscard int8 = 0
	// decideEpsilon: the model could not score the observation.
	decideEpsilon int8 = -1
)

// validationStride picks every strideth buffered observation as held-out
// validation; the rest train. Deterministic, interleaved so both slices
// cover the whole drifted window.
const validationStride = 4

// splitWindow partitions the snapshotted window into train and held-out
// validation slices: index i goes to validation when
// i%validationStride == validationStride-1.
func splitWindow(window []core.Observation) (train, validation []core.Observation) {
	train = make([]core.Observation, 0, len(window))
	validation = make([]core.Observation, 0, len(window)/validationStride+1)
	for i, o := range window {
		if i%validationStride == validationStride-1 {
			validation = append(validation, o)
		} else {
			train = append(train, o)
		}
	}
	return train, validation
}

// evalModel scores m over the validation slice: the RMSE against the
// pseudo-label targets (1 for accepted, 0 for discarded; an ε score
// contributes the worst-case error of 1, mirroring anfis.RMSE), and the
// per-observation accept/discard/ε decision at threshold.
func evalModel(m *core.Measure, validation []core.Observation, threshold float64) (rmse float64, decisions []int8) {
	decisions = make([]int8, len(validation))
	var ss float64
	for i, o := range validation {
		q, err := m.Score(o.Cues, o.Class)
		if err != nil {
			decisions[i] = decideEpsilon
			ss += 1
			continue
		}
		if q > threshold {
			decisions[i] = decideAccept
		} else {
			decisions[i] = decideDiscard
		}
		target := 0.0
		if o.Correct {
			target = 1
		}
		d := q - target
		ss += d * d
	}
	if len(validation) > 0 {
		rmse = math.Sqrt(ss / float64(len(validation)))
	}
	return rmse, decisions
}

// agreementOf returns the fraction of validation observations on which two
// models made the same operational decision (accept, discard, or ε).
func agreementOf(a, b []int8) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// gateVerdict is the validation gate's structured outcome.
type gateVerdict struct {
	pass          bool
	reason        string // empty on pass
	candidateRMSE float64
	incumbentRMSE float64
	agreement     float64
}

// gate compares candidate against incumbent on the held-out validation
// slice. The pseudo-label targets come from the incumbent's own accept
// decisions, so demanding a strict RMSE win would be self-defeating — the
// incumbent is near-optimal on its own binarization by construction.
// Instead the RMSE check is a regression guard (the candidate must stay
// within rmseSlack of the incumbent; a diverged or garbage retrain fails
// it by a wide margin) and the agreement floor catches candidates whose
// operational decisions departed from the incumbent — the signature of a
// poisoned label channel. The post-promotion canary, not this gate, rules
// on live outcomes.
func gate(candidate, incumbent *core.Measure, validation []core.Observation, threshold, minAgreement, rmseSlack float64) gateVerdict {
	candRMSE, candDec := evalModel(candidate, validation, threshold)
	incRMSE, incDec := evalModel(incumbent, validation, threshold)
	v := gateVerdict{
		candidateRMSE: candRMSE,
		incumbentRMSE: incRMSE,
		agreement:     agreementOf(candDec, incDec),
	}
	switch {
	case candRMSE > incRMSE+rmseSlack:
		v.reason = "candidate validation RMSE regressed past incumbent plus slack"
	case v.agreement < minAgreement:
		v.reason = "accept/discard agreement below floor"
	default:
		v.pass = true
	}
	return v
}
