package adapt

import (
	"errors"
	"strings"
	"testing"
)

func TestStateString(t *testing.T) {
	for want, s := range map[string]State{
		"idle": StateIdle, "retraining": StateRetraining, "gated": StateGated,
		"promoting": StatePromoting, "canary": StateCanary,
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
	if got := State(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown state String() = %q, want the numeric fallback", got)
	}
}

func TestRate(t *testing.T) {
	if got := rate(3, 4); got != 0.75 {
		t.Errorf("rate(3,4) = %v", got)
	}
	if got := rate(0, 0); got != 0 {
		t.Errorf("rate(0,0) = %v, want 0", got)
	}
}

// TestCheckScenarioPolarity pins the acceptance criteria themselves: a
// result telling the wrong story for its mode must be rejected, so a
// regression in the lifecycle cannot hide behind a green smoke.
func TestCheckScenarioPolarity(t *testing.T) {
	healRecords := func() []Record {
		return fullCycleRecords()
	}
	quarantineRecords := []Record{
		{Seq: 1, Cycle: 1, Kind: KindTrigger, At: 10},
		{Seq: 2, Cycle: 1, Kind: KindRetrainDone, At: 10},
		{Seq: 3, Cycle: 1, Kind: KindQuarantine, At: 10, Reason: "agreement"},
	}
	rollbackRecords := []Record{
		{Seq: 1, Cycle: 1, Kind: KindTrigger, At: 10},
		{Seq: 2, Cycle: 1, Kind: KindRetrainDone, At: 10},
		{Seq: 3, Cycle: 1, Kind: KindGatePass, At: 10},
		{Seq: 4, Cycle: 1, Kind: KindPromoted, At: 10},
		{Seq: 5, Cycle: 1, Kind: KindRollback, At: 14},
	}
	goodHeal := &ScenarioResult{
		Mode: ModeHeal, Records: healRecords(),
		AcceptHealthy: 0.9, AcceptDrift: 0.7, AcceptAfter: 0.85,
		ModelCRC: "aa", LastGoodCRC: "aa",
	}
	if err := CheckScenario(goodHeal); err != nil {
		t.Fatalf("valid heal result rejected: %v", err)
	}
	if err := CheckScenario(&ScenarioResult{Mode: ModeQuarantine, Records: quarantineRecords}); err != nil {
		t.Fatalf("valid quarantine result rejected: %v", err)
	}
	if err := CheckScenario(&ScenarioResult{
		Mode: ModeRollback, Records: rollbackRecords, ModelCRC: "aa", LastGoodCRC: "aa",
	}); err != nil {
		t.Fatalf("valid rollback result rejected: %v", err)
	}

	bad := []*ScenarioResult{
		// Heal journal that never promoted.
		{Mode: ModeHeal, Records: quarantineRecords, AcceptDrift: 0.7, AcceptAfter: 0.85, ModelCRC: "aa", LastGoodCRC: "aa"},
		// Heal that did not restore accept quality.
		{Mode: ModeHeal, Records: healRecords(), AcceptDrift: 0.8, AcceptAfter: 0.8, ModelCRC: "aa", LastGoodCRC: "aa"},
		// Heal whose last-good was never advanced to the promoted model.
		{Mode: ModeHeal, Records: healRecords(), AcceptDrift: 0.7, AcceptAfter: 0.85, ModelCRC: "aa", LastGoodCRC: "bb"},
		// Quarantine journal that promoted anyway.
		{Mode: ModeQuarantine, Records: healRecords()},
		// Rollback journal whose canary passed.
		{Mode: ModeRollback, Records: healRecords(), ModelCRC: "aa", LastGoodCRC: "aa"},
		// Rollback that left the bad model serving.
		{Mode: ModeRollback, Records: rollbackRecords, ModelCRC: "aa", LastGoodCRC: "bb"},
	}
	for i, res := range bad {
		if err := CheckScenario(res); err == nil {
			t.Errorf("bad result %d accepted", i)
		}
	}

	// An invalid journal fails before any mode-specific criterion.
	broken := healRecords()
	broken[1].Seq = 9
	if err := CheckScenario(&ScenarioResult{Mode: ModeHeal, Records: broken}); !errors.Is(err, ErrJournalInvariant) {
		t.Errorf("invalid journal: err = %v, want ErrJournalInvariant", err)
	}
}
