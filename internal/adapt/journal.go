// Package adapt is the self-healing model lifecycle: a crash-safe
// supervisor that turns structured quality triggers into a
// retrain→validate→promote→watch state machine with automatic rollback.
//
// Every transition is committed by one record in an append-only,
// checksummed journal; the record is the commit point, and any artifact a
// record references (the retrain window snapshot, the candidate model) is
// persisted atomically before the record that names it. A crash at any
// journal boundary therefore resumes deterministically: the journal is
// replayed, the open cycle's state is reconstructed, and the pending
// transition re-runs on the same persisted inputs. The package never reads
// a wall clock or randomness — all timestamps are virtual, carried in from
// the decision stream — so under virtual time with a fixed seed the entire
// loop replays bit-identically.
package adapt

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// JournalName is the journal file name inside the adaptation directory.
const JournalName = "journal.log"

// Record kinds, in state-machine order. A cycle opens with KindTrigger and
// closes with exactly one terminal record.
const (
	// KindTrigger opens a cycle: a drift trigger was accepted and the
	// retrain window snapshot persisted.
	KindTrigger = "trigger"
	// KindRetrainDone commits a finished shadow retrain; the candidate
	// artifact referenced by the record is on disk.
	KindRetrainDone = "retrain-done"
	// KindRetrainFailed terminally abandons a cycle whose retrain errored.
	KindRetrainFailed = "retrain-failed"
	// KindGatePass commits a validation-gate pass; promotion is next.
	KindGatePass = "gate-pass"
	// KindQuarantine terminally rejects a candidate at the validation gate,
	// with a structured reason.
	KindQuarantine = "quarantine"
	// KindPromoted commits a hot promotion: the candidate is the serving
	// model and the canary watch is open.
	KindPromoted = "promoted"
	// KindCanaryPass terminally closes a cycle whose promoted model held
	// the pre-promotion baseline through the canary window.
	KindCanaryPass = "canary-pass"
	// KindRollback terminally closes a cycle by restoring the last-good
	// model after a canary regression.
	KindRollback = "rollback"
	// KindAbandoned terminally closes a cycle that could not proceed (e.g.
	// the incumbent disappeared mid-cycle).
	KindAbandoned = "abandoned"
)

// Typed journal errors.
var (
	// ErrJournalCorrupt reports a record that fails to decode or checksum
	// somewhere other than the torn tail.
	ErrJournalCorrupt = errors.New("adapt: journal corrupt")
	// ErrJournalInvariant reports a journal whose record sequence violates
	// the state-machine invariants.
	ErrJournalInvariant = errors.New("adapt: journal invariant violated")
)

// Record is one journaled lifecycle transition. Seq is contiguous from 1
// across the whole journal; Cycle groups the records of one adaptation
// cycle. At is the record's virtual-time anchor: the trigger time for
// mid-cycle transitions (retrain and gating consume no virtual time) and
// the completing decision's time for canary outcomes.
type Record struct {
	// Seq is the 1-based journal sequence number.
	Seq int64 `json:"seq"`
	// Cycle is the 1-based adaptation-cycle number.
	Cycle int64 `json:"cycle"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// At is the virtual-time anchor in seconds.
	At float64 `json:"at"`
	// Source is the quality-stream source that triggered the cycle.
	Source string `json:"source,omitempty"`
	// TriggerKind is the detector that fired (quality.TriggerPH/TriggerKS).
	TriggerKind string `json:"trigger_kind,omitempty"`
	// Window is the retrain-window artifact file name inside the cycle dir.
	Window string `json:"window,omitempty"`
	// WindowHash fingerprints the window payload (ckpt.HashConfig).
	WindowHash string `json:"window_hash,omitempty"`
	// WindowLen is the number of pseudo-labelled observations snapshotted.
	WindowLen int `json:"window_len,omitempty"`
	// Candidate is the candidate-model artifact file name in the cycle dir.
	Candidate string `json:"candidate,omitempty"`
	// Epochs is the number of shadow-retrain epochs that ran.
	Epochs int `json:"epochs,omitempty"`
	// StopReason is the anfis stop reason of the shadow retrain.
	StopReason string `json:"stop_reason,omitempty"`
	// CandidateRMSE and IncumbentRMSE are the validation-slice errors the
	// gate compared.
	CandidateRMSE float64 `json:"candidate_rmse,omitempty"`
	// IncumbentRMSE is documented with CandidateRMSE.
	IncumbentRMSE float64 `json:"incumbent_rmse,omitempty"`
	// Agreement is the accept/discard agreement on the validation slice.
	Agreement float64 `json:"agreement,omitempty"`
	// Reason is the structured reason of a quarantine, rollback, failure,
	// or abandonment.
	Reason string `json:"reason,omitempty"`
	// BaselineAccept is the pre-promotion accept rate the canary compares
	// against.
	BaselineAccept float64 `json:"baseline_accept,omitempty"`
	// CanaryAccept is the accept rate observed over the canary window.
	CanaryAccept float64 `json:"canary_accept,omitempty"`
	// CooldownUntil is the virtual time before which new triggers are
	// ignored, set on terminal records.
	CooldownUntil float64 `json:"cooldown_until,omitempty"`
}

// journalLine is the on-disk line format: the record payload plus a CRC32C
// (Castagnoli, lowercase hex) of the compact payload bytes — the same
// integrity scheme ckpt artifacts use, one line per record.
type journalLine struct {
	Record   json.RawMessage `json:"record"`
	Checksum string          `json:"crc32c"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksumOf(data []byte) string {
	sum := crc32.Checksum(data, castagnoli)
	return hex.EncodeToString([]byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
}

// EncodeRecord renders one journal line (without the trailing newline).
func EncodeRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("adapt: encoding record: %w", err)
	}
	line, err := json.Marshal(journalLine{Record: payload, Checksum: checksumOf(payload)})
	if err != nil {
		return nil, fmt.Errorf("adapt: encoding journal line: %w", err)
	}
	return line, nil
}

// DecodeRecord parses and verifies one journal line. It never panics,
// whatever the input — FuzzAdaptJournalDecode pins that.
func DecodeRecord(line []byte) (Record, error) {
	var jl journalLine
	if err := json.Unmarshal(line, &jl); err != nil {
		return Record{}, fmt.Errorf("%w: line: %v", ErrJournalCorrupt, err)
	}
	if len(jl.Record) == 0 {
		return Record{}, fmt.Errorf("%w: empty record", ErrJournalCorrupt)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, jl.Record); err != nil {
		return Record{}, fmt.Errorf("%w: record: %v", ErrJournalCorrupt, err)
	}
	if got := checksumOf(compact.Bytes()); got != jl.Checksum {
		return Record{}, fmt.Errorf("%w: crc32c %s, line says %q", ErrJournalCorrupt, got, jl.Checksum)
	}
	var r Record
	if err := json.Unmarshal(jl.Record, &r); err != nil {
		return Record{}, fmt.Errorf("%w: record: %v", ErrJournalCorrupt, err)
	}
	return r, nil
}

// Journal is the append-only transition log. Appends are the commit points
// of the state machine: each record is written as one checksummed line,
// fsynced before Append returns.
type Journal struct {
	path    string
	f       *os.File
	records []Record
}

// OpenJournal opens (or creates) the journal at dir/JournalName and
// replays it. A torn final line — the footprint of a crash mid-append — is
// truncated away silently; a corrupt line anywhere else is refused with
// ErrJournalCorrupt, because silent loss of committed records would break
// the resume contract.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("adapt: creating journal dir: %w", err)
	}
	path := filepath.Join(dir, JournalName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("adapt: reading journal: %w", err)
	}

	var records []Record
	goodLen := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No newline: a torn tail by definition.
			break
		}
		line := data[off : off+nl]
		r, decErr := DecodeRecord(line)
		if decErr != nil {
			if off+nl+1 >= len(data) {
				// Corrupt final line: torn mid-append, truncate.
				break
			}
			return nil, fmt.Errorf("%w: record %d undecodable with committed records after it: %v",
				ErrJournalCorrupt, len(records)+1, decErr)
		}
		records = append(records, r)
		off += nl + 1
		goodLen = off
	}
	if err := VerifyRecords(records); err != nil {
		return nil, err
	}
	if goodLen < len(data) {
		if err := os.Truncate(path, int64(goodLen)); err != nil {
			return nil, fmt.Errorf("adapt: truncating torn journal tail: %w", err)
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("adapt: opening journal for append: %w", err)
	}
	return &Journal{path: path, f: f, records: records}, nil
}

// Append commits one record: sequence-stamped, checksummed, written, and
// fsynced. The record's Seq field is assigned here.
func (j *Journal) Append(r Record) error {
	r.Seq = int64(len(j.records)) + 1
	line, err := EncodeRecord(r)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("adapt: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("adapt: syncing journal: %w", err)
	}
	j.records = append(j.records, r)
	return nil
}

// Records returns the committed records, oldest first. The slice is shared;
// callers must not mutate it.
func (j *Journal) Records() []Record { return j.records }

// Close releases the journal file handle.
func (j *Journal) Close() error { return j.f.Close() }

// terminalKinds closes a cycle.
var terminalKinds = map[string]bool{
	KindRetrainFailed: true,
	KindQuarantine:    true,
	KindCanaryPass:    true,
	KindRollback:      true,
	KindAbandoned:     true,
}

// nextKinds maps each non-terminal kind to its legal successors within a
// cycle.
var nextKinds = map[string]map[string]bool{
	KindTrigger: {
		KindRetrainDone: true, KindRetrainFailed: true, KindAbandoned: true,
	},
	KindRetrainDone: {
		KindGatePass: true, KindQuarantine: true, KindAbandoned: true,
	},
	KindGatePass: {
		KindPromoted: true, KindAbandoned: true,
	},
	KindPromoted: {
		KindCanaryPass: true, KindRollback: true, KindAbandoned: true,
	},
}

// VerifyRecords checks the journal's state-machine invariants: contiguous
// sequence numbers, cycles numbered consecutively and opened only by
// triggers, legal transitions within each cycle, at most one open (non
// terminated) cycle and only as the final records, and non-decreasing
// virtual time within a cycle. The cqmeval -adapt smoke fails the build on
// any violation.
func VerifyRecords(records []Record) error {
	openCycle := int64(0) // cycle currently open, 0 when none
	lastKind := ""
	lastAt := 0.0
	cycles := int64(0)
	for i, r := range records {
		if r.Seq != int64(i)+1 {
			return fmt.Errorf("%w: record %d has seq %d", ErrJournalInvariant, i+1, r.Seq)
		}
		if openCycle == 0 {
			if r.Kind != KindTrigger {
				return fmt.Errorf("%w: record %d kind %q outside any open cycle", ErrJournalInvariant, r.Seq, r.Kind)
			}
			if r.Cycle != cycles+1 {
				return fmt.Errorf("%w: record %d opens cycle %d after cycle %d", ErrJournalInvariant, r.Seq, r.Cycle, cycles)
			}
			cycles = r.Cycle
			openCycle = r.Cycle
			lastKind = r.Kind
			lastAt = r.At
			continue
		}
		if r.Cycle != openCycle {
			return fmt.Errorf("%w: record %d belongs to cycle %d while cycle %d is open", ErrJournalInvariant, r.Seq, r.Cycle, openCycle)
		}
		if !nextKinds[lastKind][r.Kind] {
			return fmt.Errorf("%w: record %d transition %q→%q", ErrJournalInvariant, r.Seq, lastKind, r.Kind)
		}
		if r.At < lastAt {
			return fmt.Errorf("%w: record %d time %v before %v", ErrJournalInvariant, r.Seq, r.At, lastAt)
		}
		lastAt = r.At
		lastKind = r.Kind
		if terminalKinds[r.Kind] {
			openCycle = 0
		}
	}
	return nil
}

// VerifyJournal opens and verifies the journal in dir without mutating it,
// returning the records. Referenced artifacts of the open cycle (window,
// candidate) are checked for existence so the write-ahead contract —
// artifacts land before the record naming them — is enforced, not assumed.
func VerifyJournal(dir string) ([]Record, error) {
	data, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		return nil, fmt.Errorf("adapt: reading journal: %w", err)
	}
	var records []Record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		r, decErr := DecodeRecord(data[off : off+nl])
		if decErr != nil {
			if off+nl+1 >= len(data) {
				break
			}
			return nil, decErr
		}
		records = append(records, r)
		off += nl + 1
	}
	if err := VerifyRecords(records); err != nil {
		return records, err
	}
	for _, r := range records {
		if r.Window != "" {
			if _, err := os.Stat(filepath.Join(dir, CycleDirName(r.Cycle), r.Window)); err != nil {
				return records, fmt.Errorf("%w: record %d references missing window artifact %s: %v",
					ErrJournalInvariant, r.Seq, r.Window, err)
			}
		}
		if r.Candidate != "" {
			if _, err := os.Stat(filepath.Join(dir, CycleDirName(r.Cycle), r.Candidate)); err != nil {
				return records, fmt.Errorf("%w: record %d references missing candidate artifact %s: %v",
					ErrJournalInvariant, r.Seq, r.Candidate, err)
			}
		}
	}
	return records, nil
}

// CycleDirName returns the per-cycle artifact directory name.
func CycleDirName(cycle int64) string {
	return fmt.Sprintf("cycle-%06d", cycle)
}
