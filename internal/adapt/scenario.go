package adapt

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/fault"
	"cqm/internal/feature"
	"cqm/internal/obs"
	"cqm/internal/quality"
	"cqm/internal/sensor"
	"cqm/internal/serve"
)

// quickModel trains the scenario's incumbent — the same quick model the
// serving load harness uses.
func quickModel(seed int64, workers int) (*core.Measure, float64, error) {
	return serve.TrainQuickModel(seed, workers)
}

// Scenario modes.
const (
	// ModeHeal is the happy path: drift → shadow retrain → gate pass →
	// promotion → canary pass, accept quality restored.
	ModeHeal = "heal"
	// ModeQuarantine poisons the retrain window (flipped pseudo-labels) so
	// the candidate is rejected at the validation gate.
	ModeQuarantine = "quarantine"
	// ModeRollback poisons the window AND disables the gate, forcing a bad
	// promotion the canary watch must undo.
	ModeRollback = "rollback"
)

// ScenarioModes lists the modes RunScenario accepts, in demo order.
var ScenarioModes = []string{ModeHeal, ModeQuarantine, ModeRollback}

// ScenarioConfig parameterizes one self-healing scenario run.
type ScenarioConfig struct {
	// Dir is the scenario working directory (model, last-good, journal).
	Dir string
	// Mode is ModeHeal, ModeQuarantine, or ModeRollback.
	Mode string
	// Seed drives every random choice; same seed, same journal bytes.
	Seed int64
	// Workers parallelizes training (bit-identical at every setting).
	Workers int
	// Model and Threshold, when Model is non-nil, skip the in-scenario
	// quick-model training (the caller trained once for several runs).
	Model *core.Measure
	// Threshold is documented with Model.
	Threshold float64
	// Metrics, when non-nil, instruments the run.
	Metrics *obs.Registry
}

// ScenarioResult is the observable outcome of a scenario run: the journal,
// phase accept rates, and content fingerprints for bit-identity checks.
type ScenarioResult struct {
	// Mode echoes the scenario mode.
	Mode string `json:"mode"`
	// Records is the full adaptation journal.
	Records []Record `json:"records"`
	// AcceptHealthy is the accept rate over the healthy phase.
	AcceptHealthy float64 `json:"accept_healthy"`
	// AcceptDrift is the accept rate over the drift phase up to the first
	// promotion (or its end when nothing promotes).
	AcceptDrift float64 `json:"accept_drift"`
	// AcceptAfter is the accept rate over the final tail, after the loop
	// settled.
	AcceptAfter float64 `json:"accept_after"`
	// Generation is the watcher swap count at the end of the run.
	Generation int64 `json:"generation"`
	// JournalCRC fingerprints the journal bytes.
	JournalCRC string `json:"journal_crc"`
	// ModelCRC fingerprints the final serving-model artifact bytes.
	ModelCRC string `json:"model_crc"`
	// LastGoodCRC fingerprints the final last-good artifact bytes.
	LastGoodCRC string `json:"lastgood_crc"`
}

// scenarioItem is one pre-generated decision payload.
type scenarioItem struct {
	cues  []float64
	class sensor.Context
}

// genItems records sensor sessions in the given style, optionally
// degraded, and reduces them to (cues, truth) decision payloads.
func genItems(seed int64, style sensor.Style, faults []fault.SensorFault, sessions int) ([]scenarioItem, error) {
	rng := rand.New(rand.NewSource(seed))
	var items []scenarioItem
	for s := 0; s < sessions; s++ {
		readings, err := sensor.OfficeSession(style).Run(rng)
		if err != nil {
			return nil, fmt.Errorf("adapt: recording scenario session: %w", err)
		}
		if len(faults) > 0 {
			inj := fault.NewInjector(seed+int64(s), faults...)
			if readings, err = inj.Apply(readings); err != nil {
				return nil, fmt.Errorf("adapt: injecting scenario faults: %w", err)
			}
		}
		windows, err := (feature.Windower{Size: 100}).Slide(readings)
		if err != nil {
			return nil, fmt.Errorf("adapt: windowing scenario session: %w", err)
		}
		for _, w := range windows {
			items = append(items, scenarioItem{cues: w.Cues, class: w.Truth})
		}
	}
	return items, nil
}

// driftFaults is the mid-run distribution shift: a sensor whose analog
// front-end starts saturating, compressing cue dynamics. The shift keeps
// most windows inside rule coverage (so the quality engine sees the q
// decline rather than an ε flood the Page–Hinkley detector is blind to)
// while depressing accept quality enough to trigger adaptation.
func driftFaults() []fault.SensorFault {
	return []fault.SensorFault{&fault.Saturation{Gain: 1.5}}
}

// RunScenario runs one complete self-healing scenario under virtual time:
// a healthy phase, an injected distribution shift that fires the quality
// engine's drift detector, and the supervisor's full react cycle. The run
// is a pure function of the config — same seed, same journal, same model
// bytes — which the replay test and the CI smoke pin.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	switch cfg.Mode {
	case ModeHeal, ModeQuarantine, ModeRollback:
	default:
		return nil, fmt.Errorf("adapt: unknown scenario mode %q", cfg.Mode)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("adapt: scenario dir must be set")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	measure, threshold := cfg.Model, cfg.Threshold
	if measure == nil {
		var err error
		measure, threshold, err = quickModel(cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
	}

	modelPath := filepath.Join(cfg.Dir, "model.json")
	if err := ckpt.WriteArtifact(modelPath, ckpt.Manifest{Kind: ckpt.KindMeasure}, measure); err != nil {
		return nil, err
	}
	handle := ckpt.NewHandle(nil)
	watcher, err := ckpt.NewModelWatcher(ckpt.WatchConfig{
		Path:          modelPath,
		DeferLastGood: true,
		Metrics:       cfg.Metrics,
	}, handle)
	if err != nil {
		return nil, err
	}
	if _, err := watcher.Poll(); err != nil {
		return nil, err
	}
	// The incumbent is the rollback target from the start.
	if err := watcher.MarkGood(); err != nil {
		return nil, err
	}

	sup, err := New(Config{
		Dir:             filepath.Join(cfg.Dir, "adapt"),
		ModelPath:       modelPath,
		Watcher:         watcher,
		Handle:          handle,
		Threshold:       threshold,
		WindowSize:      192,
		MinWindow:       96,
		MaxEpochs:       16,
		MinAgreement:    0.5,
		DisableGate:     cfg.Mode == ModeRollback,
		CanaryWindow:    48,
		CanaryTolerance: 0.15,
		CooldownBase:    30,
		Metrics:         cfg.Metrics,
		Build:           scenarioBuild(cfg.Workers),
	})
	if err != nil {
		return nil, err
	}
	defer sup.Close()

	engine := quality.NewEngine(quality.Config{
		Window:    48,
		Threshold: threshold,
		// More sensitive than the production defaults: the scenario's
		// saturation drift depresses mean q by ~0.1, which Delta 0.2
		// would tolerate forever.
		PH:        quality.PHConfig{Delta: 0.05, Lambda: 2},
		Metrics:   cfg.Metrics,
		OnTrigger: func(t quality.Trigger) { sup.Trigger(t) },
	})

	healthy, err := genItems(cfg.Seed+2, sensor.DefaultStyle(), nil, 2)
	if err != nil {
		return nil, err
	}
	drifted, err := genItems(cfg.Seed+3, sensor.DefaultStyle(), driftFaults(), 5)
	if err != nil {
		return nil, err
	}

	poison := cfg.Mode == ModeQuarantine || cfg.Mode == ModeRollback
	res := &ScenarioResult{Mode: cfg.Mode}
	t := 0.0
	var accepts, total int

	feed := func(items []scenarioItem) error {
		for _, it := range items {
			t += 0.05
			q, scoreErr := handle.Load().Score(it.cues, it.class)
			hasQ := scoreErr == nil
			accepted := hasQ && q > threshold
			engine.Observe(quality.Observation{
				Source: "pen", At: t, Q: q, HasQ: hasQ,
			})
			d := Decision{
				Source: "pen", At: t, Cues: it.cues, Class: it.class,
				Q: q, HasQ: hasQ, Accepted: accepted,
			}
			// Poisoned modes corrupt the pseudo-label channel while the
			// supervisor is still buffering (pre-cycle); the honest stream
			// resumes once the window is snapshotted. Serving telemetry
			// (Accepted) stays honest throughout.
			if poison && hasQ && sup.State() == StateIdle {
				flip := !accepted
				d.Label = &flip
			}
			sup.Decide(d)
			if err := sup.Drain(); err != nil {
				return err
			}
			if accepted {
				accepts++
			}
			total++
		}
		return nil
	}

	// Healthy phase.
	if err := feed(healthy); err != nil {
		return nil, err
	}
	res.AcceptHealthy = rate(accepts, total)

	// Drift phase: the shift is injected and the loop reacts.
	accepts, total = 0, 0
	if err := feed(drifted); err != nil {
		return nil, err
	}
	res.AcceptDrift = rate(accepts, total)

	// Tail: more drifted traffic after the loop settled (canary completes
	// in here when still open).
	accepts, total = 0, 0
	tail, err := genItems(cfg.Seed+4, sensor.DefaultStyle(), driftFaults(), 3)
	if err != nil {
		return nil, err
	}
	if err := feed(tail); err != nil {
		return nil, err
	}
	res.AcceptAfter = rate(accepts, total)

	res.Records = sup.Journal()
	res.Generation = watcher.Generation()
	if res.JournalCRC, err = fileCRC(filepath.Join(cfg.Dir, "adapt", JournalName)); err != nil {
		return nil, err
	}
	if res.ModelCRC, err = fileCRC(modelPath); err != nil {
		return nil, err
	}
	if res.LastGoodCRC, err = fileCRC(watcher.LastGoodPath()); err != nil {
		return nil, err
	}
	if _, err := VerifyJournal(filepath.Join(cfg.Dir, "adapt")); err != nil {
		return nil, err
	}
	return res, nil
}

// scenarioBuild is the shadow-retrain configuration of the scenario.
func scenarioBuild(workers int) core.BuildConfig {
	var b core.BuildConfig
	b.Clustering.Radius = 0.5
	b.Clustering.Workers = workers
	b.Hybrid.Workers = workers
	b.Hybrid.DivergenceRetries = 2
	return b
}

// rate is accepts/total, 0 when empty.
func rate(accepts, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(accepts) / float64(total)
}

// fileCRC fingerprints a file's bytes (CRC32C hex).
func fileCRC(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("adapt: fingerprinting %s: %w", path, err)
	}
	return checksumOf(data), nil
}

// CheckScenario asserts the mode-specific acceptance criteria on a
// scenario result: the journal records the expected lifecycle, the
// invariants hold, and the serving outcome matches the story (healed,
// quarantined, or rolled back). The cqmeval -adapt smoke fails on any
// violation.
func CheckScenario(res *ScenarioResult) error {
	if err := VerifyRecords(res.Records); err != nil {
		return err
	}
	kinds := make(map[string]int)
	for _, r := range res.Records {
		kinds[r.Kind]++
	}
	need := func(kind string) error {
		if kinds[kind] == 0 {
			return fmt.Errorf("adapt: %s scenario journal has no %q record (got %v)", res.Mode, kind, kinds)
		}
		return nil
	}
	forbid := func(kind string) error {
		if kinds[kind] != 0 {
			return fmt.Errorf("adapt: %s scenario journal unexpectedly has %d %q record(s)", res.Mode, kinds[kind], kind)
		}
		return nil
	}
	switch res.Mode {
	case ModeHeal:
		for _, k := range []string{KindTrigger, KindRetrainDone, KindGatePass, KindPromoted, KindCanaryPass} {
			if err := need(k); err != nil {
				return err
			}
		}
		for _, k := range []string{KindQuarantine, KindRollback, KindRetrainFailed} {
			if err := forbid(k); err != nil {
				return err
			}
		}
		if res.AcceptAfter <= res.AcceptDrift {
			return fmt.Errorf("adapt: heal scenario did not restore accept quality: drift %.3f, after %.3f",
				res.AcceptDrift, res.AcceptAfter)
		}
		if res.ModelCRC != res.LastGoodCRC {
			return fmt.Errorf("adapt: heal scenario last-good does not hold the promoted model")
		}
	case ModeQuarantine:
		for _, k := range []string{KindTrigger, KindRetrainDone, KindQuarantine} {
			if err := need(k); err != nil {
				return err
			}
		}
		for _, k := range []string{KindPromoted, KindGatePass, KindRollback} {
			if err := forbid(k); err != nil {
				return err
			}
		}
	case ModeRollback:
		for _, k := range []string{KindTrigger, KindRetrainDone, KindGatePass, KindPromoted, KindRollback} {
			if err := need(k); err != nil {
				return err
			}
		}
		if err := forbid(KindCanaryPass); err != nil {
			return err
		}
		if res.ModelCRC != res.LastGoodCRC {
			return fmt.Errorf("adapt: rollback scenario serving model is not the restored last-good")
		}
	}
	return nil
}
