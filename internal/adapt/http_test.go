package adapt

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"cqm/internal/quality"
)

func TestStatusAndHandler(t *testing.T) {
	h := newHarness(t, t.TempDir(), smallConfig(), biasMeasure(t, 0.9), stubTrain(biasMeasure(t, 0.8)))
	defer h.sup.Close()

	st := h.sup.Status()
	if st.State != "idle" || st.Triggers != 0 || st.LastRecord != nil {
		t.Fatalf("fresh status = %+v, want idle with no history", st)
	}

	// One full heal cycle: trigger → retrain → gate → promote → canary.
	for i := 0; i < 20; i++ {
		at := float64(i)
		if i == 10 {
			h.sup.Trigger(quality.Trigger{Source: "pen", Kind: quality.TriggerPH, At: at})
		}
		h.sup.Decide(mkDecision(at, 0.9, 0.5))
		if err := h.sup.Drain(); err != nil {
			t.Fatal(err)
		}
	}

	st = h.sup.Status()
	if st.State != "idle" {
		t.Errorf("state = %q, want idle after completed cycle", st.State)
	}
	if st.Triggers != 1 || st.Retrains != 1 || st.Promotions != 1 || st.CanaryPass != 1 {
		t.Errorf("counters = %+v, want one trigger/retrain/promotion/canary pass", st)
	}
	if st.Quarantined != 0 || st.Rollbacks != 0 {
		t.Errorf("counters = %+v, want no quarantines or rollbacks", st)
	}
	if st.LastRecord == nil || st.LastRecord.Kind != KindCanaryPass {
		t.Errorf("last record = %+v, want canary-pass", st.LastRecord)
	}
	if st.CooldownUntil <= 0 {
		t.Errorf("cooldown until = %v, want positive after a closed cycle", st.CooldownUntil)
	}

	// The /adapt endpoint serves the same snapshot as JSON.
	rec := httptest.NewRecorder()
	h.sup.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/adapt", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var got Status
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decoding /adapt body: %v", err)
	}
	if got.Triggers != st.Triggers || got.Promotions != st.Promotions || got.State != st.State {
		t.Errorf("served status %+v, want %+v", got, st)
	}
}
