package adapt

import (
	"encoding/json"
	"net/http"
)

// Status is the supervisor's externally visible state, served on /adapt.
type Status struct {
	// State is the state-machine position ("idle", "retraining", ...).
	State string `json:"state"`
	// Cycle is the current or last adaptation cycle number.
	Cycle int64 `json:"cycle"`
	// CooldownUntil is the virtual time before which triggers are ignored.
	CooldownUntil float64 `json:"cooldown_until"`
	// FailStreak counts consecutive bad cycle outcomes (back-off input).
	FailStreak int `json:"fail_streak"`
	// WindowBuffered is the pseudo-labelled observations currently held.
	WindowBuffered int `json:"window_buffered"`
	// Counters over the whole journal.
	Triggers    int `json:"triggers"`
	Retrains    int `json:"retrains"`
	Quarantined int `json:"quarantined"`
	Promotions  int `json:"promotions"`
	Rollbacks   int `json:"rollbacks"`
	CanaryPass  int `json:"canary_passes"`
	// LastRecord is the newest journal record, if any.
	LastRecord *Record `json:"last_record,omitempty"`
	// LastError is the newest internal error that had no caller to return
	// to (journal append or last-good persistence failing during the
	// canary close) — non-empty means journal and disk may diverge.
	LastError string `json:"last_error,omitempty"`
}

// Status assembles the current status snapshot.
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		State:          s.state.String(),
		Cycle:          s.cycle,
		CooldownUntil:  s.cooldownUntil,
		FailStreak:     s.failStreak,
		WindowBuffered: s.windowN,
		LastError:      s.lastErr,
	}
	records := s.jr.Records()
	for _, r := range records {
		switch r.Kind {
		case KindTrigger:
			st.Triggers++
		case KindRetrainDone:
			st.Retrains++
		case KindQuarantine:
			st.Quarantined++
		case KindPromoted:
			st.Promotions++
		case KindRollback:
			st.Rollbacks++
		case KindCanaryPass:
			st.CanaryPass++
		}
	}
	if len(records) > 0 {
		last := records[len(records)-1]
		st.LastRecord = &last
	}
	return st
}

// Handler serves the status as JSON — the /adapt endpoint.
func (s *Supervisor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Status())
	})
}
