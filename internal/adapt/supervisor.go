package adapt

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/obs"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// KindAdaptWindow is the ckpt artifact kind of a snapshotted retrain
// window.
const KindAdaptWindow = "adapt-window"

// Artifact file names inside a cycle directory.
const (
	// WindowArtifactName holds the pseudo-labelled retrain window.
	WindowArtifactName = "window.json"
	// CandidateArtifactName holds the shadow-retrained candidate measure.
	CandidateArtifactName = "candidate.json"
)

// State is the supervisor's position in the adaptation state machine.
type State int

// Supervisor states. The journal is authoritative: each state is exactly
// "the last record of the open cycle" (idle when no cycle is open).
const (
	// StateIdle: no cycle open; triggers are considered.
	StateIdle State = iota
	// StateRetraining: a cycle is open, the window is snapshotted, the
	// shadow retrain has not committed yet.
	StateRetraining
	// StateGated: a candidate exists; the validation gate has not ruled.
	StateGated
	// StatePromoting: the gate passed; the hot swap has not committed.
	StatePromoting
	// StateCanary: the candidate serves; the canary watch is counting.
	StateCanary
)

// String returns the state's journal-friendly name.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateRetraining:
		return "retraining"
	case StateGated:
		return "gated"
	case StatePromoting:
		return "promoting"
	case StateCanary:
		return "canary"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Decision is one live scoring decision fed to the supervisor: the
// observation's cues and class, and the accept/discard/ε outcome. Accepted
// decisions become pseudo-labels (target 1), discarded ones negatives
// (target 0); ε decisions are excluded from the retrain window but count
// against the accept rate.
type Decision struct {
	// Source names the producing stream.
	Source string
	// At is the decision's virtual time in seconds.
	At float64
	// Cues is the classifier input of the scored observation.
	Cues []float64
	// Class is the classified context.
	Class sensor.Context
	// Q is the quality score, meaningful only when HasQ.
	Q float64
	// HasQ is false for ε decisions.
	HasQ bool
	// Accepted reports q > threshold — the serving outcome, counted by
	// the baseline and canary accept rates.
	Accepted bool
	// Label, when non-nil, overrides Accepted as the pseudo-label stored
	// in the retrain window. Label corruption is exactly the failure the
	// validation gate quarantines; the scenario harness uses this to
	// poison the training signal without distorting serving telemetry.
	Label *bool
}

// Config parameterizes a Supervisor. Dir, ModelPath, Watcher, and Handle
// are required; everything else has defaults.
type Config struct {
	// Dir is the adaptation state directory: the journal plus one
	// subdirectory per cycle (window snapshot, retrain checkpoints,
	// candidate).
	Dir string
	// ModelPath is the watched serving-model artifact promotions overwrite.
	ModelPath string
	// Watcher hot-reloads ModelPath; it should run with DeferLastGood so
	// the last-good copy stays the rollback target until a canary pass.
	Watcher *ckpt.ModelWatcher
	// Handle is the serving handle; the gate scores the incumbent from it.
	Handle *ckpt.Handle
	// Threshold is the acceptance threshold shared with serving.
	Threshold float64
	// WindowSize bounds the pseudo-labelled retrain buffer. Default 256.
	WindowSize int
	// MinWindow is the buffered-observation floor below which a trigger
	// waits. Default 64.
	MinWindow int
	// Build configures the shadow retrain (clustering, hybrid learning).
	// Observer, Resume, and Halt are managed by the supervisor.
	Build core.BuildConfig
	// MaxEpochs bounds the shadow retrain. Default 30.
	MaxEpochs int
	// MinAgreement is the accept/discard agreement floor of the validation
	// gate. Default 0.5.
	MinAgreement float64
	// RMSESlack is how far past the incumbent's validation RMSE the
	// candidate may land and still pass the gate's regression guard (the
	// pseudo-labels are the incumbent's own decisions, so a strict win is
	// unattainable by construction). Default 0.15.
	RMSESlack float64
	// DisableGate promotes every retrained candidate unconditionally —
	// the fault-injection knob the rollback scenario and chaos tests use.
	// The gate's numbers are still computed and journaled.
	DisableGate bool
	// CanaryWindow is the number of post-promotion decisions the canary
	// watch spans. Default 64.
	CanaryWindow int
	// CanaryTolerance is the absolute accept-rate drop below the
	// pre-promotion baseline that triggers rollback. Default 0.15.
	CanaryTolerance float64
	// CooldownBase is the virtual-seconds cool-down after a cycle ends; bad
	// outcomes double it per consecutive failure (exponential back-off).
	// Default 60.
	CooldownBase float64
	// CooldownMax caps the exponential back-off. Default 64×CooldownBase.
	CooldownMax float64
	// Metrics, when non-nil, registers the cqm_adapt_* series.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.WindowSize == 0 {
		c.WindowSize = 256
	}
	if c.MinWindow == 0 {
		c.MinWindow = 64
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 30
	}
	if c.MinAgreement == 0 {
		c.MinAgreement = 0.5
	}
	if c.RMSESlack == 0 {
		c.RMSESlack = 0.15
	}
	if c.CanaryWindow == 0 {
		c.CanaryWindow = 64
	}
	if c.CanaryTolerance == 0 {
		c.CanaryTolerance = 0.15
	}
	if c.CooldownBase == 0 {
		c.CooldownBase = 60
	}
	if c.CooldownMax == 0 {
		c.CooldownMax = 64 * c.CooldownBase
	}
	return c
}

// windowPayload is the adapt-window artifact payload: the pseudo-labelled
// observations a cycle retrains on, plus the trigger that caused them to
// be snapshotted.
type windowPayload struct {
	// Source is the triggering quality stream.
	Source string `json:"source"`
	// TriggerKind is the detector that fired.
	TriggerKind string `json:"trigger_kind"`
	// At is the trigger's virtual time.
	At float64 `json:"at"`
	// Observations are the buffered decisions, oldest first, with
	// Correct carrying the accept pseudo-label.
	Observations []core.Observation `json:"observations"`
}

// retrainInfo summarizes a finished shadow retrain for the journal.
type retrainInfo struct {
	epochs     int
	stopReason string
}

// cycleCtx is the open cycle's in-memory context, reconstructible from the
// journal at any record boundary.
type cycleCtx struct {
	cycle          int64
	at             float64
	source         string
	triggerKind    string
	windowName     string
	windowHash     string
	windowLen      int
	candidateName  string
	baselineAccept float64
	canarySeen     int
	canaryAccepted int
}

// Supervisor is the adaptation state machine. Trigger and Decide are the
// fast inputs (safe to call from scoring and engine hooks); Step performs
// at most one journaled transition per call. All methods are safe for
// concurrent use; determinism is the caller's contract — feed decisions
// and triggers in a deterministic order and call Step at deterministic
// points, and the journal, artifacts, and promoted models replay
// bit-identically.
type Supervisor struct {
	cfg Config
	met adaptMetrics

	mu    sync.Mutex
	jr    *Journal
	state State
	cycle int64
	cur   cycleCtx

	// Pseudo-label ring: non-ε decisions, oldest overwritten first.
	window     []core.Observation
	windowNext int
	windowN    int
	// Accept-outcome ring over every decision (ε included), for the
	// pre-promotion baseline.
	recent     []bool
	recentNext int
	recentN    int

	pending       *quality.Trigger
	cooldownUntil float64
	failStreak    int
	// training is true while a shadow retrain runs with the lock released;
	// it makes concurrent Step calls no-ops so only one retrain is in
	// flight.
	training bool
	// lastErr is the newest swallowed internal error (journal append or
	// last-good persistence failing on a path with no caller to return
	// to), exposed in Status so journal/disk divergence is visible.
	lastErr string

	// trainFn is the shadow-retrain implementation; tests stub it to avoid
	// real training in flap-storm and transition tests.
	trainFn func(train, check []core.Observation, cycleDir, windowHash string) (*core.Measure, retrainInfo, error)
}

// New opens (or resumes) a supervisor over Dir, recovering the state
// machine from the journal: committed records are replayed, the open cycle's
// context is reconstructed, and the pending transition re-runs on its
// persisted inputs at the next Step.
func New(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" || cfg.ModelPath == "" {
		return nil, fmt.Errorf("adapt: Dir and ModelPath must be set")
	}
	if cfg.Watcher == nil || cfg.Handle == nil {
		return nil, fmt.Errorf("adapt: Watcher and Handle must be set")
	}
	jr, err := OpenJournal(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg:    cfg,
		met:    newAdaptMetrics(cfg.Metrics),
		jr:     jr,
		window: make([]core.Observation, cfg.WindowSize),
		recent: make([]bool, cfg.CanaryWindow),
	}
	s.trainFn = s.realTrain
	s.replay()
	s.publishState()
	return s, nil
}

// replay reconstructs the supervisor state from the committed journal.
func (s *Supervisor) replay() {
	for _, r := range s.jr.Records() {
		if r.Cycle > s.cycle {
			s.cycle = r.Cycle
		}
		switch r.Kind {
		case KindTrigger:
			s.cur = cycleCtx{
				cycle:          r.Cycle,
				at:             r.At,
				source:         r.Source,
				triggerKind:    r.TriggerKind,
				windowName:     r.Window,
				windowHash:     r.WindowHash,
				windowLen:      r.WindowLen,
				baselineAccept: r.BaselineAccept,
			}
			s.state = StateRetraining
		case KindRetrainDone:
			s.cur.candidateName = r.Candidate
			s.state = StateGated
		case KindGatePass:
			s.state = StatePromoting
		case KindPromoted:
			// Canary counters are zero at every record boundary by
			// construction, so restarting them here is exact.
			s.cur.canarySeen = 0
			s.cur.canaryAccepted = 0
			s.state = StateCanary
		case KindCanaryPass:
			s.failStreak = 0
			s.cooldownUntil = r.CooldownUntil
			s.state = StateIdle
		case KindRetrainFailed, KindQuarantine, KindRollback:
			s.failStreak++
			s.cooldownUntil = r.CooldownUntil
			s.state = StateIdle
		case KindAbandoned:
			s.failStreak = 0
			s.cooldownUntil = r.CooldownUntil
			s.state = StateIdle
		}
	}
}

// Trigger offers a drift trigger to the supervisor. It is fast and
// non-blocking-safe for the quality engine's OnTrigger hook — the trigger
// is only staged here; the journaled cycle open happens at the next Step.
// It reports whether the trigger was staged (false: ignored by cool-down,
// an open cycle, or an already-staged trigger).
func (s *Supervisor) Trigger(t quality.Trigger) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateIdle || s.pending != nil || t.At < s.cooldownUntil {
		s.met.triggersIgnored.Inc()
		return false
	}
	s.pending = &t
	return true
}

// Decide feeds one live scoring decision: it maintains the pseudo-label
// window and the accept-rate baseline, and advances the canary watch when
// one is open (completing it — rollback or pass — on its closing
// decision).
func (s *Supervisor) Decide(d Decision) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recent[s.recentNext] = d.Accepted
	s.recentNext = (s.recentNext + 1) % len(s.recent)
	if s.recentN < len(s.recent) {
		s.recentN++
	}
	if d.HasQ {
		label := d.Accepted
		if d.Label != nil {
			label = *d.Label
		}
		s.window[s.windowNext] = core.Observation{
			Cues:    append([]float64(nil), d.Cues...),
			Class:   d.Class,
			Correct: label,
		}
		s.windowNext = (s.windowNext + 1) % len(s.window)
		if s.windowN < len(s.window) {
			s.windowN++
		}
		s.met.windowSize.Set(float64(s.windowN))
	}
	if s.state == StateCanary {
		s.cur.canarySeen++
		if d.Accepted {
			s.cur.canaryAccepted++
		}
		if s.cur.canarySeen >= s.cfg.CanaryWindow {
			s.finishCanary(d.At)
		}
	}
}

// Step performs at most one journaled state-machine transition: opening a
// cycle for a staged trigger, running the shadow retrain, ruling at the
// validation gate, or promoting. It reports whether a transition ran. The
// canary completes through Decide, not Step.
func (s *Supervisor) Step() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	worked := false
	switch s.state {
	case StateIdle:
		if s.pending == nil || s.windowN < s.cfg.MinWindow {
			return false, nil
		}
		worked, err = true, s.beginCycle()
	case StateRetraining:
		if s.training {
			// Another Step released the lock mid-retrain; the cycle
			// advances when that call commits its outcome.
			return false, nil
		}
		worked, err = true, s.retrain()
	case StateGated:
		worked, err = true, s.gateStep()
	case StatePromoting:
		worked, err = true, s.promote()
	case StateCanary:
		return false, nil
	}
	s.publishState()
	return worked, err
}

// beginCycle commits a staged trigger: the pseudo-label window is
// snapshotted to an artifact (write-ahead: the artifact lands before the
// record naming it), the cycle opens in the journal, and the state moves
// to retraining.
func (s *Supervisor) beginCycle() error {
	t := s.pending
	s.pending = nil
	cycle := s.cycle + 1
	dir := filepath.Join(s.cfg.Dir, CycleDirName(cycle))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("adapt: creating cycle dir: %w", err)
	}
	payload := windowPayload{
		Source:       t.Source,
		TriggerKind:  t.Kind,
		At:           t.At,
		Observations: s.snapshotWindow(),
	}
	hash, err := ckpt.HashConfig(payload)
	if err != nil {
		return err
	}
	if err := ckpt.WriteArtifact(filepath.Join(dir, WindowArtifactName),
		ckpt.Manifest{Kind: KindAdaptWindow}, payload); err != nil {
		return err
	}
	baseline := t.Window.AcceptRate
	if s.recentN > 0 {
		accepted := 0
		for i := 0; i < s.recentN; i++ {
			if s.recent[i] {
				accepted++
			}
		}
		baseline = float64(accepted) / float64(s.recentN)
	}
	rec := Record{
		Cycle:          cycle,
		Kind:           KindTrigger,
		At:             t.At,
		Source:         t.Source,
		TriggerKind:    t.Kind,
		Window:         WindowArtifactName,
		WindowHash:     hash,
		WindowLen:      len(payload.Observations),
		BaselineAccept: baseline,
	}
	if err := s.jr.Append(rec); err != nil {
		return err
	}
	s.cycle = cycle
	s.cur = cycleCtx{
		cycle:          cycle,
		at:             t.At,
		source:         t.Source,
		triggerKind:    t.Kind,
		windowName:     WindowArtifactName,
		windowHash:     hash,
		windowLen:      len(payload.Observations),
		baselineAccept: baseline,
	}
	s.state = StateRetraining
	s.met.triggers.Inc()
	return nil
}

// snapshotWindow copies the pseudo-label ring, oldest first.
func (s *Supervisor) snapshotWindow() []core.Observation {
	out := make([]core.Observation, 0, s.windowN)
	start := s.windowNext - s.windowN
	if start < 0 {
		start += len(s.window)
	}
	for i := 0; i < s.windowN; i++ {
		out = append(out, s.window[(start+i)%len(s.window)])
	}
	return out
}

// loadWindow reads the open cycle's window artifact. The persisted copy —
// not the live ring — is the retrain and gate input, so an interrupted
// cycle resumes on byte-identical data.
func (s *Supervisor) loadWindow() (windowPayload, error) {
	var payload windowPayload
	path := filepath.Join(s.cfg.Dir, CycleDirName(s.cur.cycle), s.cur.windowName)
	if _, err := ckpt.ReadArtifact(path, KindAdaptWindow, &payload); err != nil {
		return payload, err
	}
	return payload, nil
}

// retrain runs the shadow retrain on the snapshotted window and commits
// the outcome: a candidate artifact plus a retrain-done record, or a
// terminal retrain-failed record with back-off.
//
// Training is the one slow transition, so the supervisor lock is released
// for the duration of the trainFn call — Decide and Trigger are on the
// serving hot path and must never wait out a retrain. The inputs are
// snapshotted under the lock first (the persisted window artifact, not the
// live ring, is the training input anyway), and the state machine cannot
// move while unlocked: the state stays StateRetraining and s.training
// makes concurrent Step calls no-ops.
func (s *Supervisor) retrain() error {
	payload, err := s.loadWindow()
	if err != nil {
		return err
	}
	train, validation := splitWindow(payload.Observations)
	cycle := s.cur.cycle
	windowHash := s.cur.windowHash
	dir := filepath.Join(s.cfg.Dir, CycleDirName(cycle))
	s.met.retrainsStarted.Inc()
	s.training = true
	trainFn := s.trainFn
	s.mu.Unlock()
	candidate, info, trainErr := trainFn(train, validation, dir, windowHash)
	s.mu.Lock()
	s.training = false
	if trainErr != nil {
		s.met.retrainsFailed.Inc()
		return s.closeCycle(Record{
			Kind:   KindRetrainFailed,
			At:     s.cur.at,
			Reason: trainErr.Error(),
		}, true)
	}
	if err := ckpt.WriteArtifact(filepath.Join(dir, CandidateArtifactName),
		ckpt.Manifest{Kind: ckpt.KindMeasure, ConfigHash: windowHash, Epoch: int(cycle)},
		candidate); err != nil {
		return err
	}
	rec := Record{
		Cycle:      cycle,
		Kind:       KindRetrainDone,
		At:         s.cur.at,
		Candidate:  CandidateArtifactName,
		Epochs:     info.epochs,
		StopReason: info.stopReason,
	}
	if err := s.jr.Append(rec); err != nil {
		return err
	}
	s.cur.candidateName = CandidateArtifactName
	s.state = StateGated
	s.met.retrainsOK.Inc()
	return nil
}

// realTrain is the production shadow retrain: core.Build over the window
// slices through the existing anfis hybrid-learning path, checkpointed
// per epoch into the cycle directory and resumed from the newest usable
// checkpoint after a crash. The epoch budget is enforced twice — by the
// configured epoch count and by a Halt hook counting total epoch attempts
// including divergence retries — so a pathological retrain cannot run
// away.
func (s *Supervisor) realTrain(train, check []core.Observation, cycleDir, windowHash string) (*core.Measure, retrainInfo, error) {
	cp, err := ckpt.NewCheckpointer(ckpt.CheckpointConfig{
		Dir:        cycleDir,
		ConfigHash: windowHash,
		Metrics:    s.cfg.Metrics,
	})
	if err != nil {
		return nil, retrainInfo{}, err
	}
	build := s.cfg.Build
	build.Hybrid.Epochs = s.cfg.MaxEpochs
	attempts := 0
	budget := s.cfg.MaxEpochs + build.Hybrid.DivergenceRetries
	build.Hybrid.Halt = func(int) bool {
		attempts++
		return attempts > budget
	}
	build.Observer = cp
	if res, lsErr := ckpt.LatestState(cycleDir, windowHash, s.cfg.Metrics); lsErr == nil {
		build.Hybrid.Resume = res.State
	}
	m, err := core.Build(train, check, build)
	if err != nil {
		return nil, retrainInfo{}, err
	}
	info := retrainInfo{}
	if stop, ok := cp.LastStop(); ok {
		info.epochs = stop.Epochs
		info.stopReason = string(stop.Reason)
	}
	return m, info, nil
}

// gateStep rules on the open cycle's candidate: it reloads candidate and
// window from their artifacts (resume-exact), scores both models on the
// held-out validation slice, and commits gate-pass or quarantine.
func (s *Supervisor) gateStep() error {
	payload, err := s.loadWindow()
	if err != nil {
		return err
	}
	_, validation := splitWindow(payload.Observations)
	var candidate core.Measure
	candPath := filepath.Join(s.cfg.Dir, CycleDirName(s.cur.cycle), s.cur.candidateName)
	if _, err := ckpt.ReadArtifact(candPath, ckpt.KindMeasure, &candidate); err != nil {
		return err
	}
	incumbent := s.cfg.Handle.Load()
	if incumbent == nil {
		return s.closeCycle(Record{
			Kind:   KindAbandoned,
			At:     s.cur.at,
			Reason: "no incumbent model to gate against",
		}, false)
	}
	v := gate(&candidate, incumbent, validation, s.cfg.Threshold, s.cfg.MinAgreement, s.cfg.RMSESlack)
	if !v.pass && !s.cfg.DisableGate {
		s.met.quarantined.Inc()
		return s.closeCycle(Record{
			Kind:          KindQuarantine,
			At:            s.cur.at,
			Reason:        v.reason,
			CandidateRMSE: v.candidateRMSE,
			IncumbentRMSE: v.incumbentRMSE,
			Agreement:     v.agreement,
		}, true)
	}
	rec := Record{
		Cycle:         s.cur.cycle,
		Kind:          KindGatePass,
		At:            s.cur.at,
		CandidateRMSE: v.candidateRMSE,
		IncumbentRMSE: v.incumbentRMSE,
		Agreement:     v.agreement,
	}
	if s.cfg.DisableGate && !v.pass {
		rec.Reason = "gate disabled: " + v.reason
	}
	if err := s.jr.Append(rec); err != nil {
		return err
	}
	s.state = StatePromoting
	return nil
}

// promote hot-swaps the candidate into serving: the candidate artifact's
// bytes are copied atomically over the watched model path and the watcher
// polled once. The last-good copy is left holding the incumbent (the
// watcher runs deferred), so rollback stays possible until the canary
// rules. Re-running after a crash is idempotent — the same bytes land and
// the watcher swaps the same model.
func (s *Supervisor) promote() error {
	// The rollback target must exist before the incumbent is overwritten;
	// promoting without one would make a later rollback a no-op, so a
	// failed persist aborts the transition (state stays StatePromoting and
	// the next Step retries).
	if _, err := os.Stat(s.cfg.Watcher.LastGoodPath()); err != nil {
		if mgErr := s.cfg.Watcher.MarkGood(); mgErr != nil {
			return fmt.Errorf("adapt: persisting rollback target before promotion: %w", mgErr)
		}
	}
	candPath := filepath.Join(s.cfg.Dir, CycleDirName(s.cur.cycle), s.cur.candidateName)
	data, err := os.ReadFile(candPath)
	if err != nil {
		return fmt.Errorf("adapt: reading candidate for promotion: %w", err)
	}
	if err := ckpt.AtomicWriteFile(s.cfg.ModelPath, data, 0o644); err != nil {
		return err
	}
	if _, err := s.cfg.Watcher.Poll(); err != nil {
		// The candidate passed the gate but the watcher refused it (decode
		// or smoke). Restore the incumbent and abandon the cycle.
		if lg, rbErr := os.ReadFile(s.cfg.Watcher.LastGoodPath()); rbErr == nil {
			_ = ckpt.AtomicWriteFile(s.cfg.ModelPath, lg, 0o644)
			_, _ = s.cfg.Watcher.Poll()
		}
		return s.closeCycle(Record{
			Kind:   KindAbandoned,
			At:     s.cur.at,
			Reason: "watcher rejected promoted candidate: " + err.Error(),
		}, false)
	}
	rec := Record{
		Cycle:          s.cur.cycle,
		Kind:           KindPromoted,
		At:             s.cur.at,
		BaselineAccept: s.cur.baselineAccept,
	}
	if err := s.jr.Append(rec); err != nil {
		return err
	}
	s.cur.canarySeen = 0
	s.cur.canaryAccepted = 0
	s.state = StateCanary
	s.met.promotions.Inc()
	return nil
}

// finishCanary rules on a completed canary window at the closing
// decision's virtual time: a regression beyond tolerance restores the
// last-good model (rollback), anything else marks the promotion good.
// Called with the supervisor lock held.
func (s *Supervisor) finishCanary(at float64) {
	// Client-supplied decision stamps may jitter backwards; the journal's
	// within-cycle At is non-decreasing by contract.
	if at < s.cur.at {
		at = s.cur.at
	}
	canaryAccept := float64(s.cur.canaryAccepted) / float64(s.cur.canarySeen)
	if canaryAccept < s.cur.baselineAccept-s.cfg.CanaryTolerance {
		reason := "canary accept rate regressed beyond tolerance"
		if lg, err := os.ReadFile(s.cfg.Watcher.LastGoodPath()); err == nil {
			if err := ckpt.AtomicWriteFile(s.cfg.ModelPath, lg, 0o644); err == nil {
				_, _ = s.cfg.Watcher.Poll()
			} else {
				reason += "; restoring last-good failed: " + err.Error()
			}
		} else {
			reason += "; last-good unreadable: " + err.Error()
		}
		s.met.rollbacks.Inc()
		if err := s.closeCycle(Record{
			Kind:           KindRollback,
			At:             at,
			Reason:         reason,
			BaselineAccept: s.cur.baselineAccept,
			CanaryAccept:   canaryAccept,
		}, true); err != nil {
			// The rollback bytes are on disk but the journal still shows the
			// cycle in canary: surface the divergence (the canary stays open
			// in memory, so the next decision retries the idempotent close).
			s.recordErr(fmt.Errorf("adapt: journaling rollback: %w", err))
		}
		s.publishState()
		return
	}
	if err := s.cfg.Watcher.MarkGood(); err != nil {
		// Not fatal — the previous incumbent stays the rollback target,
		// which is stale but valid — yet it must not pass silently.
		s.recordErr(fmt.Errorf("adapt: adopting canary survivor as last-good: %w", err))
	}
	s.met.canaryPasses.Inc()
	if err := s.closeCycle(Record{
		Kind:           KindCanaryPass,
		At:             at,
		BaselineAccept: s.cur.baselineAccept,
		CanaryAccept:   canaryAccept,
	}, false); err != nil {
		s.recordErr(fmt.Errorf("adapt: journaling canary pass: %w", err))
	}
	s.publishState()
}

// recordErr surfaces an error from a path with no caller to return it to:
// stderr, the error counter, and Status.LastError. Called with the lock
// held.
func (s *Supervisor) recordErr(err error) {
	s.lastErr = err.Error()
	s.met.errors.Inc()
	fmt.Fprintf(os.Stderr, "%v\n", err)
}

// closeCycle commits a terminal record with the cool-down for the outcome:
// bad outcomes (failed) grow the exponential back-off, good ones reset it
// to the refractory base.
func (s *Supervisor) closeCycle(rec Record, failed bool) error {
	// The streak commits only with the record: a failed append leaves it
	// untouched so a retried close doesn't double-count the back-off.
	streak := 0
	if failed {
		streak = s.failStreak + 1
	}
	cooldown := s.cfg.CooldownBase
	for i := 1; i < streak && cooldown < s.cfg.CooldownMax; i++ {
		cooldown *= 2
	}
	if cooldown > s.cfg.CooldownMax {
		cooldown = s.cfg.CooldownMax
	}
	rec.Cycle = s.cur.cycle
	rec.CooldownUntil = rec.At + cooldown
	if err := s.jr.Append(rec); err != nil {
		return err
	}
	s.failStreak = streak
	s.cooldownUntil = rec.CooldownUntil
	s.state = StateIdle
	return nil
}

// publishState refreshes the state gauges. Called with the lock held.
func (s *Supervisor) publishState() {
	s.met.state.Set(float64(s.state))
	s.met.cooldownUntil.Set(s.cooldownUntil)
	s.met.cycle.Set(float64(s.cycle))
}

// Drain runs Step until no transition remains runnable (idle with nothing
// staged, waiting on the window floor, or watching a canary). It is the
// synchronous driver virtual-time harnesses use between batches.
func (s *Supervisor) Drain() error {
	for {
		worked, err := s.Step()
		if err != nil {
			return err
		}
		if !worked {
			return nil
		}
	}
}

// Journal exposes the committed records for inspection (tests, status).
func (s *Supervisor) Journal() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.jr.Records()...)
}

// State returns the current state.
func (s *Supervisor) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Close releases the journal handle.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jr.Close()
}
