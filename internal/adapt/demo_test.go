package adapt

import (
	"strings"
	"testing"

	"cqm/internal/obs"
)

// TestRunDemo exercises the full demo sweep — every scenario mode plus the
// cross-worker replay — with a live metrics registry, exactly as the CI
// smoke invokes it through cqmeval -adapt.
func TestRunDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("full demo sweep in -short mode")
	}
	reg := obs.NewRegistry()
	report, err := RunDemo(DemoConfig{Dir: t.TempDir(), Seed: 42, Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatalf("RunDemo: %v\n%s", err, report)
	}
	for _, want := range []string{"heal", "quarantine", "rollback", "bit-identical"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	snap := reg.Snapshot()
	counts := make(map[string]bool)
	for _, c := range snap.Counters {
		if c.Value > 0 {
			counts[c.Name] = true
		}
	}
	for _, name := range []string{MetricTriggers, MetricRetrainsStarted, MetricPromotions, MetricRollbacks, MetricQuarantined} {
		if !counts[name] {
			t.Errorf("metric %s never incremented across the demo sweep", name)
		}
	}
}
